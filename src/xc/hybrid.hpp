#pragma once

/// \file hybrid.hpp
/// Hybrid-functional parameters and the screened Coulomb kernel.
///
/// HSE-style short-range exact exchange: mixing fraction alpha = 0.25 and
/// screening parameter omega = 0.11 Bohr^-1 (HSE06). The kernel of the
/// Poisson-like solves in the Fock operator (paper Eq. 3) is
///   K(G) = 4 pi (1 - exp(-G^2 / (4 omega^2))) / G^2,
/// whose G -> 0 limit is finite: pi / omega^2. omega <= 0 selects the bare
/// (unscreened, PBE0-style) kernel with K(0) = 0 by convention.

#include <cmath>

#include "common/types.hpp"

namespace pwdft::xc {

struct HybridParams {
  bool enabled = true;
  double alpha = 0.25;  ///< exact-exchange mixing fraction
  double omega = 0.11;  ///< screening (Bohr^-1); <= 0 means bare Coulomb
};

/// Screened Coulomb kernel K(G^2); see file comment for conventions.
inline double exchange_kernel(double g2, double omega) {
  if (omega <= 0.0) {
    return g2 < 1e-12 ? 0.0 : 2.0 * constants::two_pi / g2;
  }
  const double w2_4 = 4.0 * omega * omega;
  if (g2 < 1e-12) return constants::pi / (omega * omega);
  return constants::four_pi * (1.0 - std::exp(-g2 / w2_4)) / g2;
}

}  // namespace pwdft::xc
