#include "xc/lda.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/types.hpp"

namespace pwdft::xc {

XcPoint lda_pz(double rho) {
  if (rho < 1e-14) return {0.0, 0.0};

  // Exchange: eps_x = -(3/4)(3/pi)^{1/3} rho^{1/3}, v_x = (4/3) eps_x.
  static const double cx = -0.75 * std::cbrt(3.0 / constants::pi);
  const double r13 = std::cbrt(rho);
  const double eps_x = cx * r13;
  const double v_x = (4.0 / 3.0) * eps_x;

  // Perdew-Zunger correlation, unpolarized parameters.
  const double rs = std::cbrt(3.0 / (constants::four_pi * rho));
  double eps_c, v_c;
  if (rs >= 1.0) {
    const double g = -0.1423, b1 = 1.0529, b2 = 0.3334;
    const double sq = std::sqrt(rs);
    const double den = 1.0 + b1 * sq + b2 * rs;
    eps_c = g / den;
    v_c = eps_c * (1.0 + (7.0 / 6.0) * b1 * sq + (4.0 / 3.0) * b2 * rs) / den;
  } else {
    const double A = 0.0311, B = -0.048, C = 0.0020, D = -0.0116;
    const double ln = std::log(rs);
    eps_c = A * ln + B + C * rs * ln + D * rs;
    v_c = A * ln + (B - A / 3.0) + (2.0 / 3.0) * C * rs * ln + ((2.0 * D - C) / 3.0) * rs;
  }
  return {eps_x + eps_c, v_x + v_c};
}

void lda_pz(std::span<const double> rho, std::span<double> eps, std::span<double> vxc) {
  PWDFT_CHECK(rho.size() == eps.size() && rho.size() == vxc.size(), "lda_pz: size mismatch");
  for (std::size_t i = 0; i < rho.size(); ++i) {
    const XcPoint p = lda_pz(rho[i]);
    eps[i] = p.eps;
    vxc[i] = p.vxc;
  }
}

}  // namespace pwdft::xc
