#pragma once

/// \file lda.hpp
/// Perdew-Zunger (1981) LDA exchange-correlation: the semi-local part of the
/// hybrid functional. (The paper uses HSE06 = PBE + screened exact exchange;
/// the semi-local flavor does not enter any measured quantity, so PZ-LDA is
/// used for its analytic simplicity — see DESIGN.md substitutions.)

#include <span>

namespace pwdft::xc {

struct XcPoint {
  double eps = 0.0;  ///< energy density per electron (Ha)
  double vxc = 0.0;  ///< potential d(rho*eps)/d(rho) (Ha)
};

/// Exchange-correlation at one density value (rho >= 0, Bohr^-3).
XcPoint lda_pz(double rho);

/// Vectorized form: fills eps[i], vxc[i] from rho[i].
void lda_pz(std::span<const double> rho, std::span<double> eps, std::span<double> vxc);

}  // namespace pwdft::xc
