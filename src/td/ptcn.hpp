#pragma once

/// \file ptcn.hpp
/// The parallel transport Crank-Nicolson propagator (paper Alg. 1).
///
/// Each step solves the implicit nonlinear equation (paper Eq. 5)
///   Psi_{n+1} + i dt/2 {H_{n+1} Psi_{n+1} - Psi_{n+1}(Psi^* H Psi)} = Psi_{n+1/2}
/// by a self-consistent field iteration with per-band Anderson mixing
/// (history 20), monitored by the electron density change (tol 1e-6), and
/// re-orthonormalizes via Cholesky at the end of the step (paper §3.3/§3.4).
/// Residuals are evaluated in the G-space layout (Alg. 3): Alltoallv
/// transposes (optionally single precision), a local GEMM for the overlap
/// matrix, an Allreduce, and a rotation GEMM.

#include <memory>
#include <span>
#include <vector>

#include "common/timer.hpp"
#include "ham/hamiltonian.hpp"
#include "parallel/overlap.hpp"
#include "parallel/transpose.hpp"
#include "scf/anderson.hpp"
#include "td/field.hpp"
#include "td/mts.hpp"

namespace pwdft::td {

struct PtCnOptions {
  double dt = 2.0;               ///< a.u. (50 as ~ 2.067 a.u.)
  double rho_tol = 1e-6;         ///< density error per electron (paper §4)
  int max_scf = 40;
  std::size_t anderson_depth = 20;  ///< paper §3.4
  double anderson_beta = 1.0;
  bool sp_comm = true;           ///< single-precision Alltoallv payloads (§3.3)
  /// Overlaps the propagator's loop transposes with compute through
  /// par::TransposeOverlap (paper §3.2 step 5 applied to Alg. 3): the
  /// Psi -> G transpose of each residual evaluation rides behind H Psi (the
  /// Fock band loop), and the loop-invariant Psi_half transpose rides
  /// behind the density build. Each stream packs up front, parks its
  /// exchange on the exec engine's async lane against its own dup()'ed
  /// communicator, and unpacks at wait() — bit-identical to the serialized
  /// path (overlap.hpp). Defaults to the PWDFT_COMM_OVERLAP resolution
  /// (overlap on).
  bool overlap_transpose = par::comm_overlap_env_default();
  /// Multiple time stepping of the exchange operator (td/mts.hpp). 0
  /// (default, the PWDFT_MTS_INTERVAL resolution) = off: exchange orbitals
  /// are re-registered from Psi_f every inner SCF iteration. k >= 1
  /// freezes the exchange operator across steps — rebuilt from Psi_n at
  /// step start every k-th step or when the drift bound trips, held frozen
  /// through the step's inner iterations. The cadence is counter-based and
  /// deterministic; composes with HamiltonianOptions::use_ace, which makes
  /// the frozen applies cheap (no pair solves between refreshes).
  int mts_interval = mts_interval_env_default();
  /// Early-refresh bound on the monitored per-band subspace drift
  /// max_j (1 - |<phi_frozen_j, psi_j>|^2); exceeding it forces an exact
  /// rebuild before the cadence is due. <= 0 refreshes every step.
  double mts_drift_tol = 1e-3;
};

struct PtCnStepReport {
  int scf_iterations = 0;
  double rho_error = 0.0;
  bool converged = false;
  /// Fock operator applications in this step (scf + initial residual);
  /// the paper counts 24 per step including the energy evaluation.
  int fock_applies = 0;
  /// MTS: whether the exchange operator was rebuilt at this step's start
  /// (always true when MTS is off and hybrid is on), and the monitored
  /// drift vs the frozen snapshot (0 on refresh steps).
  bool exchange_refreshed = false;
  double mts_drift = 0.0;
};

class PtCnPropagator {
 public:
  PtCnPropagator(ham::Hamiltonian& hamiltonian, par::BlockPartition bands, PtCnOptions opt,
                 int comm_size);

  /// Advances psi_local from t to t + dt. Collective over comm.
  PtCnStepReport step(CMatrix& psi_local, std::span<const double> occ_global, double t,
                      const ExternalField& field, par::Comm& comm,
                      TimerRegistry* timers = nullptr);

  const PtCnOptions& options() const { return opt_; }

 private:
  ham::Hamiltonian& ham_;
  par::BlockPartition bands_;
  PtCnOptions opt_;
  par::WavefunctionTranspose transpose_;
  std::vector<std::unique_ptr<scf::AndersonMixer>> mixers_;  ///< one per local band
  /// One overlap stream per concurrently in-flight transpose: the per-
  /// iteration Psi -> G stream and the loop-invariant Psi_half stream. Each
  /// lazily dup()s its own rendezvous domain on the first step() (step()
  /// must always be called with the same communicator); their traffic is
  /// folded into the parent's stats per step.
  par::TransposeOverlap psi_ovl_;
  par::TransposeOverlap half_ovl_;
  /// G-layout blocks written at wait(). Plain members rather than arena
  /// slots: they must survive across the overlap window.
  CMatrix psi_g_;
  CMatrix half_g_;
  /// Exchange-operator MTS state (frozen snapshot + refresh cadence).
  MtsScheduler mts_;
};

/// Computes R = c_psi * Psi + c_h * (H Psi - Psi S) - c_half * Psi_half with
/// S = Psi^H (H Psi), via the Alg. 3 G-space pipeline. psi_half may be null
/// (treated as zero). Exposed for tests and the Rn evaluation.
CMatrix pt_residual(const par::WavefunctionTranspose& transpose, par::Comm& comm,
                    const CMatrix& psi_band, const CMatrix& hpsi_band,
                    const CMatrix* psi_half_band, Complex c_psi, Complex c_h, Complex c_half,
                    bool sp_comm);

/// pt_residual with Psi (and optionally Psi_half) already transposed to the
/// G layout: the form the propagator uses so those transposes can run on
/// the async lane concurrently with H Psi, and so the loop-invariant
/// Psi_half transpose is paid once per step instead of once per SCF
/// iteration. Only H Psi is transposed here (on `comm`).
CMatrix pt_residual_from_g(const par::WavefunctionTranspose& transpose, par::Comm& comm,
                           const CMatrix& psi_g, const CMatrix& hpsi_band,
                           const CMatrix* half_g, Complex c_psi, Complex c_h, Complex c_half,
                           bool sp_comm);

/// Cholesky re-orthonormalization of a band-distributed block (paper §3.4).
void orthonormalize(const par::WavefunctionTranspose& transpose, par::Comm& comm,
                    CMatrix& psi_band, bool sp_comm);

}  // namespace pwdft::td
