#include "td/field.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pwdft::td {

LaserPulse::LaserPulse(double wavelength_nm, double e0_au, double t0_au, double sigma_au,
                       grid::Vec3 polarization, double t_max_au)
    : omega_(constants::photon_energy_ha(wavelength_nm)),
      e0_(e0_au),
      t0_(t0_au),
      sigma_(sigma_au),
      pol_(polarization) {
  PWDFT_CHECK(sigma_au > 0.0 && t_max_au > 0.0, "LaserPulse: bad envelope");
  const double pn = std::sqrt(grid::norm2(pol_));
  PWDFT_CHECK(pn > 0.0, "LaserPulse: zero polarization");
  pol_ = grid::scale(pol_, 1.0 / pn);

  // Cumulative trapezoid for a(t) = -int E; ~40 points per laser cycle.
  dt_ = std::min(0.1, constants::two_pi / omega_ / 40.0);
  const auto n = static_cast<std::size_t>(std::ceil(t_max_au / dt_)) + 2;
  a_cumulative_.resize(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) {
    const double t_prev = static_cast<double>(i - 1) * dt_;
    const double t_cur = static_cast<double>(i) * dt_;
    a_cumulative_[i] =
        a_cumulative_[i - 1] - 0.5 * dt_ * (scalar_efield(t_prev) + scalar_efield(t_cur));
  }
}

LaserPulse LaserPulse::paper_pulse(double e0_au) {
  const double t_total = constants::femtoseconds_to_au(30.0);
  const double t0 = constants::femtoseconds_to_au(15.0);
  const double sigma = constants::femtoseconds_to_au(2.5);
  return LaserPulse(380.0, e0_au, t0, sigma, {0.0, 0.0, 1.0}, t_total * 1.1);
}

double LaserPulse::scalar_efield(double t) const {
  const double u = t - t0_;
  return e0_ * std::exp(-u * u / (2.0 * sigma_ * sigma_)) * std::cos(omega_ * u);
}

grid::Vec3 LaserPulse::efield(double t) const { return grid::scale(pol_, scalar_efield(t)); }

grid::Vec3 LaserPulse::vector_potential(double t) const {
  if (t <= 0.0) return {0.0, 0.0, 0.0};
  const double x = t / dt_;
  const auto i = static_cast<std::size_t>(x);
  double a;
  if (i + 1 >= a_cumulative_.size()) {
    a = a_cumulative_.back();
  } else {
    const double w = x - static_cast<double>(i);
    a = (1.0 - w) * a_cumulative_[i] + w * a_cumulative_[i + 1];
  }
  return grid::scale(pol_, a);
}

double LaserPulse::photon_energy_ev() const { return omega_ / constants::hartree_per_ev; }

}  // namespace pwdft::td
