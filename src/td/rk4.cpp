#include "td/rk4.hpp"

#include "common/check.hpp"
#include "common/exec.hpp"
#include "ham/density.hpp"
#include "td/band_ops.hpp"

namespace pwdft::td {

Rk4Propagator::Rk4Propagator(ham::Hamiltonian& hamiltonian, par::BlockPartition bands,
                             Rk4Options opt)
    : ham_(hamiltonian), bands_(bands), opt_(opt) {
  PWDFT_CHECK(opt_.dt > 0.0, "Rk4Propagator: dt must be positive");
}

void Rk4Propagator::derivative(const CMatrix& psi, std::span<const double> occ_local,
                               std::span<const double> occ_global, double t,
                               const ExternalField& field, CMatrix& k, par::Comm& comm,
                               TimerRegistry* timers) {
  ham_.set_vector_potential(field.vector_potential(t));
  {
    ScopedTimer st(*timers, "density");
    auto rho = ham::compute_density(ham_.setup(), ham_.fft_dense(), psi, occ_local, comm, true,
                                    ham_.options().op_pipeline);
    ham_.update_density(rho);
  }
  if (ham_.hybrid_enabled()) {
    ham_.set_exchange_orbitals(psi, occ_global, bands_, comm);
  }
  ham_.apply(psi, k, comm, timers);
  // k = -i H psi.
  const std::size_t n = k.size();
  Complex* d = k.data();
  exec::parallel_for(
      n,
      [=](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) d[i] *= Complex{0.0, -1.0};
      },
      4096);
}

void Rk4Propagator::step(CMatrix& psi_local, std::span<const double> occ_global, double t,
                         const ExternalField& field, par::Comm& comm, TimerRegistry* timers) {
  TimerRegistry local_timers;
  if (!timers) timers = &local_timers;
  const std::size_t nb_loc = bands_.count(comm.rank());
  PWDFT_CHECK(psi_local.cols() == nb_loc, "Rk4Propagator: band layout mismatch");
  std::span<const double> occ_local(occ_global.data() + bands_.offset(comm.rank()), nb_loc);

  const double h = opt_.dt;
  const std::size_t n = psi_local.size();

  // Stage blocks live in the workspace arena: repeated steps allocate
  // nothing (Hamiltonian::apply resizes them in place, capacity retained).
  auto& ws = exec::workspace();
  CMatrix& k1 = ws.cmat(exec::Slot::rk4_k1, 0, 0);
  CMatrix& k2 = ws.cmat(exec::Slot::rk4_k2, 0, 0);
  CMatrix& k3 = ws.cmat(exec::Slot::rk4_k3, 0, 0);
  CMatrix& k4 = ws.cmat(exec::Slot::rk4_k4, 0, 0);
  CMatrix& stage = ws.cmat(exec::Slot::rk4_stage, psi_local.rows(), psi_local.cols());

  derivative(psi_local, occ_local, occ_global, t, field, k1, comm, timers);

  detail::assign_sum_scaled(psi_local, 0.5 * h, k1, stage);
  derivative(stage, occ_local, occ_global, t + 0.5 * h, field, k2, comm, timers);

  detail::assign_sum_scaled(psi_local, 0.5 * h, k2, stage);
  derivative(stage, occ_local, occ_global, t + 0.5 * h, field, k3, comm, timers);

  detail::assign_sum_scaled(psi_local, h, k3, stage);
  derivative(stage, occ_local, occ_global, t + h, field, k4, comm, timers);

  const double w = h / 6.0;
  {
    Complex* p = psi_local.data();
    const Complex* d1 = k1.data();
    const Complex* d2 = k2.data();
    const Complex* d3 = k3.data();
    const Complex* d4 = k4.data();
    exec::parallel_for(
        n,
        [=](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i)
            p[i] += w * (d1[i] + 2.0 * d2[i] + 2.0 * d3[i] + d4[i]);
        },
        4096);
  }
}

}  // namespace pwdft::td
