#include "td/observables.hpp"

#include <cmath>

#include "common/check.hpp"
#include "linalg/blas.hpp"

namespace pwdft::td {

grid::Vec3 compute_current(const ham::PlanewaveSetup& setup, const CMatrix& psi_local,
                           std::span<const double> occ_local, const grid::Vec3& a,
                           par::Comm& comm) {
  PWDFT_CHECK(psi_local.cols() == occ_local.size(), "compute_current: occupation mismatch");
  const auto& gv = setup.sphere.gvec();
  const std::size_t ng = setup.n_g();
  double j[3] = {0.0, 0.0, 0.0};
  for (std::size_t b = 0; b < psi_local.cols(); ++b) {
    const Complex* c = psi_local.col(b);
    double jx = 0.0, jy = 0.0, jz = 0.0;
    for (std::size_t i = 0; i < ng; ++i) {
      const double w = std::norm(c[i]);
      jx += (gv[i][0] + a[0]) * w;
      jy += (gv[i][1] + a[1]) * w;
      jz += (gv[i][2] + a[2]) * w;
    }
    j[0] += occ_local[b] * jx;
    j[1] += occ_local[b] * jy;
    j[2] += occ_local[b] * jz;
  }
  comm.allreduce_sum(j, 3);
  const double inv_vol = 1.0 / setup.volume();
  return {j[0] * inv_vol, j[1] * inv_vol, j[2] * inv_vol};
}

double excited_electrons(const ham::PlanewaveSetup& setup, const par::BlockPartition& bands,
                         const CMatrix& psi0_local, const CMatrix& psi_local,
                         std::span<const double> occ_global, par::Comm& comm) {
  PWDFT_CHECK(psi0_local.cols() == psi_local.cols(), "excited_electrons: band count mismatch");
  PWDFT_CHECK(occ_global.size() == bands.total(), "excited_electrons: occupation mismatch");

  par::WavefunctionTranspose tr(par::BlockPartition(setup.n_g(), comm.size()), bands);
  CMatrix psi0_g, psi_g;
  tr.band_to_g(comm, psi0_local, psi0_g, /*single_precision=*/false);
  tr.band_to_g(comm, psi_local, psi_g, /*single_precision=*/false);

  CMatrix s = linalg::overlap(psi0_g, psi_g);  // S_ij = <psi_i(0)|psi_j(t)>
  comm.allreduce_sum(s.data(), s.size());

  const std::size_t nb = bands.total();
  double n_exc = 0.0;
  for (std::size_t j = 0; j < nb; ++j) {
    double proj = 0.0;
    for (std::size_t i = 0; i < nb; ++i) proj += std::norm(s(i, j));
    n_exc += occ_global[j] * (1.0 - proj);
  }
  return n_exc;
}

std::vector<SpectrumPoint> dielectric_from_kick(std::span<const TimePoint> trace, double kappa,
                                                double eta, double omega_max,
                                                std::size_t n_omega) {
  PWDFT_CHECK(trace.size() >= 4, "dielectric_from_kick: trace too short");
  PWDFT_CHECK(std::abs(kappa) > 0.0, "dielectric_from_kick: zero kick");

  std::vector<SpectrumPoint> out(n_omega);
  const double t0 = trace.front().t;
  for (std::size_t k = 0; k < n_omega; ++k) {
    const double omega = omega_max * static_cast<double>(k + 1) / static_cast<double>(n_omega);
    Complex jw{0.0, 0.0};
    for (std::size_t i = 1; i < trace.size(); ++i) {
      const double tm = 0.5 * (trace[i].t + trace[i - 1].t) - t0;
      const double dt = trace[i].t - trace[i - 1].t;
      const double jm = 0.5 * (trace[i].current[2] + trace[i - 1].current[2]);
      jw += jm * std::exp(-eta * tm) * Complex{std::cos(omega * tm), std::sin(omega * tm)} * dt;
    }
    const Complex sigma = -jw / kappa;
    const Complex eps = 1.0 + constants::four_pi * imag_unit * sigma / omega;
    out[k] = {omega, eps.real(), eps.imag()};
  }
  return out;
}

}  // namespace pwdft::td
