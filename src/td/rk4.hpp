#pragma once

/// \file rk4.hpp
/// Explicit 4th-order Runge-Kutta propagator for the nonlinear TDKS equation
/// i d/dt Psi = H(t, P(Psi)) Psi — the paper's baseline integrator. Each
/// step needs 4 Hamiltonian (and hence 4 Fock) applications, and stability
/// restricts dt to the sub-attosecond regime (paper §6: 0.5 as), which is
/// what PT-CN's ~50 as steps beat by 20-30x.

#include <span>

#include "common/timer.hpp"
#include "ham/hamiltonian.hpp"
#include "parallel/distribution.hpp"
#include "td/field.hpp"

namespace pwdft::td {

struct Rk4Options {
  double dt = 0.02;  ///< a.u. (0.5 as ~ 0.0207 a.u.)
};

class Rk4Propagator {
 public:
  Rk4Propagator(ham::Hamiltonian& hamiltonian, par::BlockPartition bands, Rk4Options opt);

  /// Advances psi_local from t to t + dt. Collective.
  void step(CMatrix& psi_local, std::span<const double> occ_global, double t,
            const ExternalField& field, par::Comm& comm, TimerRegistry* timers = nullptr);

  double dt() const { return opt_.dt; }

 private:
  /// k = -i H(t, P(psi)) psi, rebuilding density/potentials/exchange.
  void derivative(const CMatrix& psi, std::span<const double> occ_local,
                  std::span<const double> occ_global, double t, const ExternalField& field,
                  CMatrix& k, par::Comm& comm, TimerRegistry* timers);

  ham::Hamiltonian& ham_;
  par::BlockPartition bands_;
  Rk4Options opt_;
};

}  // namespace pwdft::td
