#pragma once

/// \file band_ops.hpp
/// Band- and element-parallel primitives shared by the td propagators.
/// All of them write disjoint elements per task, so results are
/// bit-identical at any engine width (docs/threading.md).

#include <memory>
#include <vector>

#include "common/exec.hpp"
#include "linalg/matrix.hpp"
#include "scf/anderson.hpp"

namespace pwdft::td::detail {

/// dst += c * src, element-parallel.
inline void add_scaled(Complex c, const CMatrix& src, CMatrix& dst) {
  Complex* d = dst.data();
  const Complex* s = src.data();
  exec::parallel_for(
      dst.size(),
      [=](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) d[i] += c * s[i];
      },
      4096);
}

/// dst = a + w * b, element-parallel (the RK4 stage combination).
inline void assign_sum_scaled(const CMatrix& a, double w, const CMatrix& b, CMatrix& dst) {
  Complex* d = dst.data();
  const Complex* pa = a.data();
  const Complex* pb = b.data();
  exec::parallel_for(
      dst.size(),
      [=](std::size_t b0, std::size_t e) {
        for (std::size_t i = b0; i < e; ++i) d[i] = pa[i] + w * pb[i];
      },
      4096);
}

/// Per-band Anderson fixed-point update x_j <- mix_j(x_j, -r_j): the mixers
/// are fully independent per band, so the loop runs band-parallel; each
/// task's residual buffer comes from the executing thread's arena.
inline void anderson_mix_bands(std::vector<std::unique_ptr<scf::AndersonMixer>>& mixers,
                               const CMatrix& r, CMatrix& x) {
  const std::size_t ng = x.rows();
  exec::parallel_for(mixers.size(), [&](std::size_t jb, std::size_t je) {
    auto f = exec::workspace().cbuf(exec::Slot::mix_f, ng);
    for (std::size_t j = jb; j < je; ++j) {
      const Complex* rj = r.col(j);
      for (std::size_t i = 0; i < ng; ++i) f[i] = -rj[i];
      mixers[j]->mix({x.col(j), ng}, f, {x.col(j), ng});
    }
  });
}

}  // namespace pwdft::td::detail
