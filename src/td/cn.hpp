#pragma once

/// \file cn.hpp
/// Plain Crank-Nicolson propagator in the *Schrodinger gauge* — the ablation
/// of the paper's parallel transport contribution. It solves
///   Psi_{n+1} + i dt/2 H_{n+1} Psi_{n+1} = Psi_n - i dt/2 H_n Psi_n
/// with the same per-band Anderson-mixed SCF machinery as PT-CN but WITHOUT
/// the gauge term Psi (Psi^H H Psi). Without parallel transport the orbitals
/// keep their fast trivial phase rotation e^{-i eps t}; at eps*dt = O(1) the
/// fixed-point iteration stalls or diverges, which is precisely why the PT
/// gauge is needed to reach 50 as steps (paper §2; An & Lin). See
/// bench/ablation_gauge for the head-to-head comparison.

#include <memory>
#include <span>
#include <vector>

#include "common/timer.hpp"
#include "ham/hamiltonian.hpp"
#include "parallel/transpose.hpp"
#include "scf/anderson.hpp"
#include "td/field.hpp"
#include "td/ptcn.hpp"

namespace pwdft::td {

struct CnOptions {
  double dt = 0.2;
  double rho_tol = 1e-6;
  int max_scf = 40;
  std::size_t anderson_depth = 20;
  double anderson_beta = 1.0;
  bool sp_comm = false;
  /// Exchange-operator MTS, same semantics as PtCnOptions::mts_interval /
  /// mts_drift_tol (td/mts.hpp): 0 = legacy per-inner-iteration refresh.
  int mts_interval = mts_interval_env_default();
  double mts_drift_tol = 1e-3;
};

struct CnStepReport {
  int scf_iterations = 0;
  double rho_error = 0.0;
  bool converged = false;
  /// Max fixed-point residual norm observed (diagnostic for divergence).
  double max_residual_norm = 0.0;
  /// MTS: exchange rebuilt at step start / monitored drift (see
  /// PtCnStepReport).
  bool exchange_refreshed = false;
  double mts_drift = 0.0;
};

class CnPropagator {
 public:
  CnPropagator(ham::Hamiltonian& hamiltonian, par::BlockPartition bands, CnOptions opt,
               int comm_size);

  /// Advances psi_local from t to t + dt. Collective over comm.
  CnStepReport step(CMatrix& psi_local, std::span<const double> occ_global, double t,
                    const ExternalField& field, par::Comm& comm,
                    TimerRegistry* timers = nullptr);

 private:
  ham::Hamiltonian& ham_;
  par::BlockPartition bands_;
  CnOptions opt_;
  par::WavefunctionTranspose transpose_;
  std::vector<std::unique_ptr<scf::AndersonMixer>> mixers_;
  MtsScheduler mts_;
};

}  // namespace pwdft::td
