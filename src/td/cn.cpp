#include "td/cn.hpp"

#include "common/check.hpp"
#include "common/exec.hpp"
#include "ham/density.hpp"
#include "linalg/blas.hpp"
#include "td/band_ops.hpp"

namespace pwdft::td {

CnPropagator::CnPropagator(ham::Hamiltonian& hamiltonian, par::BlockPartition bands,
                           CnOptions opt, int comm_size)
    : ham_(hamiltonian),
      bands_(bands),
      opt_(opt),
      transpose_(par::BlockPartition(hamiltonian.setup().n_g(), comm_size), bands) {
  PWDFT_CHECK(opt_.dt > 0.0, "CnPropagator: dt must be positive");
}

CnStepReport CnPropagator::step(CMatrix& psi_local, std::span<const double> occ_global,
                                double t, const ExternalField& field, par::Comm& comm,
                                TimerRegistry* timers) {
  TimerRegistry local_timers;
  if (!timers) timers = &local_timers;
  const std::size_t ng = ham_.setup().n_g();
  const std::size_t nb_loc = bands_.count(comm.rank());
  PWDFT_CHECK(psi_local.rows() == ng && psi_local.cols() == nb_loc,
              "CnPropagator: band layout mismatch");
  std::span<const double> occ_local(occ_global.data() + bands_.offset(comm.rank()), nb_loc);

  if (mixers_.size() != nb_loc) {
    mixers_.clear();
    for (std::size_t j = 0; j < nb_loc; ++j)
      mixers_.push_back(std::make_unique<scf::AndersonMixer>(ng, opt_.anderson_depth,
                                                             opt_.anderson_beta));
  }
  for (auto& m : mixers_) m->reset();

  CnStepReport report;
  const Complex i_half_dt = imag_unit * (0.5 * opt_.dt);

  // RHS: Psi_half = Psi_n - i dt/2 H_n Psi_n  (no gauge term).
  ham_.set_vector_potential(field.vector_potential(t));
  auto rho = ham::compute_density(ham_.setup(), ham_.fft_dense(), psi_local, occ_local, comm,
                                  true, ham_.options().op_pipeline);
  ham_.update_density(rho);
  const MtsStepDecision mts = mts_.begin_step(ham_, psi_local, occ_global, bands_, comm,
                                              opt_.mts_interval, opt_.mts_drift_tol);
  report.exchange_refreshed = ham_.hybrid_enabled() && (!mts.active || mts.refreshed);
  report.mts_drift = mts.drift;
  CMatrix hpsi;
  ham_.apply(psi_local, hpsi, comm, timers);

  CMatrix psi_half = psi_local;
  detail::add_scaled(-i_half_dt, hpsi, psi_half);
  CMatrix psi_f = psi_half;

  auto rho_f = ham::compute_density(ham_.setup(), ham_.fft_dense(), psi_f, occ_local, comm, true,
                                    ham_.options().op_pipeline);
  ham_.set_vector_potential(field.vector_potential(t + opt_.dt));

  for (int it = 0; it < opt_.max_scf; ++it) {
    ham_.update_density(rho_f);
    if (ham_.hybrid_enabled() && !mts.active)
      ham_.set_exchange_orbitals(psi_f, occ_global, bands_, comm);
    ham_.apply(psi_f, hpsi, comm, timers);

    // R = Psi_f + i dt/2 H Psi_f - Psi_half — entirely band-local: the plain
    // CN residual needs no overlap matrix and hence no transpose/Allreduce.
    // The residual, the per-band norms, and the per-band Anderson mixes all
    // run band-parallel with disjoint writes (bit-identical at any width).
    CMatrix& rf = exec::workspace().cmat(exec::Slot::cn_r, ng, nb_loc);
    {
      Complex* r = rf.data();
      const Complex* pf = psi_f.data();
      const Complex* hp = hpsi.data();
      const Complex* ph = psi_half.data();
      exec::parallel_for(
          rf.size(),
          [=](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) r[i] = pf[i] + i_half_dt * hp[i] - ph[i];
          },
          4096);
    }

    auto norms = exec::workspace().rbuf(exec::Slot::band_norms, nb_loc);
    exec::parallel_for(nb_loc, [&](std::size_t jb, std::size_t je) {
      for (std::size_t j = jb; j < je; ++j) norms[j] = linalg::nrm2({rf.col(j), ng});
    });
    double rmax = 0.0;
    for (std::size_t j = 0; j < nb_loc; ++j) rmax = std::max(rmax, norms[j]);
    comm.allreduce_sum(&rmax, 1);  // cheap aggregate (sum as an upper proxy)
    report.max_residual_norm = std::max(report.max_residual_norm, rmax);

    detail::anderson_mix_bands(mixers_, rf, psi_f);

    auto rho_new = ham::compute_density(ham_.setup(), ham_.fft_dense(), psi_f, occ_local, comm, true,
                                    ham_.options().op_pipeline);
    report.rho_error = ham::density_error(ham_.setup(), rho_new, rho_f);
    rho_f = std::move(rho_new);
    report.scf_iterations = it + 1;
    if (report.rho_error < opt_.rho_tol) {
      report.converged = true;
      break;
    }
    if (!std::isfinite(report.rho_error) || report.rho_error > 1e3) break;  // diverged
  }

  orthonormalize(transpose_, comm, psi_f, opt_.sp_comm);
  psi_local = std::move(psi_f);
  return report;
}

}  // namespace pwdft::td
