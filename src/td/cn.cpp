#include "td/cn.hpp"

#include "common/check.hpp"
#include "common/exec.hpp"
#include "ham/density.hpp"
#include "linalg/blas.hpp"

namespace pwdft::td {

CnPropagator::CnPropagator(ham::Hamiltonian& hamiltonian, par::BlockPartition bands,
                           CnOptions opt, int comm_size)
    : ham_(hamiltonian),
      bands_(bands),
      opt_(opt),
      transpose_(par::BlockPartition(hamiltonian.setup().n_g(), comm_size), bands) {
  PWDFT_CHECK(opt_.dt > 0.0, "CnPropagator: dt must be positive");
}

CnStepReport CnPropagator::step(CMatrix& psi_local, std::span<const double> occ_global,
                                double t, const ExternalField& field, par::Comm& comm,
                                TimerRegistry* timers) {
  TimerRegistry local_timers;
  if (!timers) timers = &local_timers;
  const std::size_t ng = ham_.setup().n_g();
  const std::size_t nb_loc = bands_.count(comm.rank());
  PWDFT_CHECK(psi_local.rows() == ng && psi_local.cols() == nb_loc,
              "CnPropagator: band layout mismatch");
  std::span<const double> occ_local(occ_global.data() + bands_.offset(comm.rank()), nb_loc);

  if (mixers_.size() != nb_loc) {
    mixers_.clear();
    for (std::size_t j = 0; j < nb_loc; ++j)
      mixers_.push_back(std::make_unique<scf::AndersonMixer>(ng, opt_.anderson_depth,
                                                             opt_.anderson_beta));
  }
  for (auto& m : mixers_) m->reset();

  CnStepReport report;
  const Complex i_half_dt = imag_unit * (0.5 * opt_.dt);

  // RHS: Psi_half = Psi_n - i dt/2 H_n Psi_n  (no gauge term).
  ham_.set_vector_potential(field.vector_potential(t));
  auto rho = ham::compute_density(ham_.setup(), ham_.fft_dense(), psi_local, occ_local, comm);
  ham_.update_density(rho);
  if (ham_.hybrid_enabled()) ham_.set_exchange_orbitals(psi_local, occ_global, bands_, comm);
  CMatrix hpsi;
  ham_.apply(psi_local, hpsi, comm, timers);

  CMatrix psi_half = psi_local;
  for (std::size_t i = 0; i < psi_half.size(); ++i)
    psi_half.data()[i] -= i_half_dt * hpsi.data()[i];
  CMatrix psi_f = psi_half;

  auto rho_f = ham::compute_density(ham_.setup(), ham_.fft_dense(), psi_f, occ_local, comm);
  ham_.set_vector_potential(field.vector_potential(t + opt_.dt));

  for (int it = 0; it < opt_.max_scf; ++it) {
    ham_.update_density(rho_f);
    if (ham_.hybrid_enabled()) ham_.set_exchange_orbitals(psi_f, occ_global, bands_, comm);
    ham_.apply(psi_f, hpsi, comm, timers);

    // R = Psi_f + i dt/2 H Psi_f - Psi_half — entirely band-local: the plain
    // CN residual needs no overlap matrix and hence no transpose/Allreduce.
    CMatrix& rf = exec::workspace().cmat(exec::Slot::cn_r, ng, nb_loc);
    for (std::size_t i = 0; i < rf.size(); ++i)
      rf.data()[i] = psi_f.data()[i] + i_half_dt * hpsi.data()[i] - psi_half.data()[i];

    double rmax = 0.0;
    for (std::size_t j = 0; j < nb_loc; ++j)
      rmax = std::max(rmax, linalg::nrm2({rf.col(j), ng}));
    comm.allreduce_sum(&rmax, 1);  // cheap aggregate (sum as an upper proxy)
    report.max_residual_norm = std::max(report.max_residual_norm, rmax);

    auto f = exec::workspace().cbuf(exec::Slot::mix_f, ng);
    for (std::size_t j = 0; j < nb_loc; ++j) {
      const Complex* rj = rf.col(j);
      for (std::size_t i = 0; i < ng; ++i) f[i] = -rj[i];
      mixers_[j]->mix({psi_f.col(j), ng}, f, {psi_f.col(j), ng});
    }

    auto rho_new = ham::compute_density(ham_.setup(), ham_.fft_dense(), psi_f, occ_local, comm);
    report.rho_error = ham::density_error(ham_.setup(), rho_new, rho_f);
    rho_f = std::move(rho_new);
    report.scf_iterations = it + 1;
    if (report.rho_error < opt_.rho_tol) {
      report.converged = true;
      break;
    }
    if (!std::isfinite(report.rho_error) || report.rho_error > 1e3) break;  // diverged
  }

  orthonormalize(transpose_, comm, psi_f, opt_.sp_comm);
  psi_local = std::move(psi_f);
  return report;
}

}  // namespace pwdft::td
