#pragma once

/// \file observables.hpp
/// Physical observables along an rt-TDDFT trajectory: macroscopic current
/// (velocity gauge), number of excited electrons, and the dielectric
/// function from a delta-kick run (Yabana-Bertsch linear response).

#include <span>
#include <vector>

#include "ham/setup.hpp"
#include "linalg/matrix.hpp"
#include "parallel/comm.hpp"
#include "parallel/transpose.hpp"

namespace pwdft::td {

/// One recorded sample of the trajectory.
struct TimePoint {
  double t = 0.0;             ///< a.u.
  grid::Vec3 current{};       ///< macroscopic current density j(t)
  double n_excited = 0.0;     ///< electrons promoted out of the t=0 manifold
  double energy = 0.0;        ///< total energy (Ha), when recorded
  int scf_iterations = 0;     ///< PT-CN SCF count for the step ending here
  double rho_error = 0.0;     ///< final SCF density error
  double wall_seconds = 0.0;  ///< wall time of the step
  /// Exchange operator rebuilt at this step's start (always true without
  /// MTS when hybrid is on; the refresh pattern under MTS, td/mts.hpp).
  bool exchange_refreshed = false;
  double mts_drift = 0.0;  ///< monitored drift vs the frozen snapshot
};

/// j = (1/Omega) sum_i f_i sum_G (G + a) |c_iG|^2. Collective (band sum).
grid::Vec3 compute_current(const ham::PlanewaveSetup& setup, const CMatrix& psi_local,
                           std::span<const double> occ_local, const grid::Vec3& a,
                           par::Comm& comm);

/// n_exc(t) = sum_j f_j (1 - sum_i |<psi_i(0)|psi_j(t)>|^2), evaluated via
/// the G-space layout (one overlap GEMM + Allreduce). Collective.
double excited_electrons(const ham::PlanewaveSetup& setup, const par::BlockPartition& bands,
                         const CMatrix& psi0_local, const CMatrix& psi_local,
                         std::span<const double> occ_global, par::Comm& comm);

struct SpectrumPoint {
  double omega = 0.0;  ///< Ha
  double eps_re = 0.0;
  double eps_im = 0.0;
};

/// Dielectric function from a kick a(t>0) = kappa along z:
///   sigma(omega) = -jz(omega)/kappa,  eps = 1 + 4 pi i sigma / omega,
/// with exponential damping exp(-eta t) applied to j(t) - j(infinity-free).
std::vector<SpectrumPoint> dielectric_from_kick(std::span<const TimePoint> trace, double kappa,
                                                double eta, double omega_max, std::size_t n_omega);

}  // namespace pwdft::td
