#include "td/ptcn.hpp"

#include "common/check.hpp"
#include "common/exec.hpp"
#include "ham/density.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "td/band_ops.hpp"

namespace pwdft::td {

CMatrix pt_residual_from_g(const par::WavefunctionTranspose& transpose, par::Comm& comm,
                           const CMatrix& psi_g, const CMatrix& hpsi_band,
                           const CMatrix* half_g, Complex c_psi, Complex c_h, Complex c_half,
                           bool sp_comm) {
  // Alg. 3 with Psi (and Psi_half) already in the G-space layout: transpose
  // H Psi, form the overlap matrix with a local GEMM + Allreduce, rotate,
  // combine, convert back. The H Psi block comes from the rank's workspace
  // arena (each ThreadComm rank is its own thread, so arenas never collide
  // across ranks).
  auto& ws = exec::workspace();
  CMatrix& hpsi_g = ws.cmat(exec::Slot::pt_gb, 0, 0);
  transpose.band_to_g(comm, hpsi_band, hpsi_g, sp_comm);

  CMatrix s = linalg::overlap(psi_g, hpsi_g);
  comm.allreduce_sum(s.data(), s.size());

  // R_g = c_psi Psi + c_h (HPsi - Psi S) - c_half Psi_half; computed in
  // place in the HPsi block.
  CMatrix& r_g = hpsi_g;
  linalg::gemm('N', 'N', Complex{-1.0, 0.0}, psi_g, s, Complex{1.0, 0.0}, r_g);
  const std::size_t n = r_g.size();
  Complex* r = r_g.data();
  const Complex* pg = psi_g.data();
  const Complex* hg = half_g ? half_g->data() : nullptr;
  exec::parallel_for(
      n,
      [=](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          Complex v = c_h * r[i] + c_psi * pg[i];
          if (hg) v -= c_half * hg[i];
          r[i] = v;
        }
      },
      4096);

  CMatrix r_band;
  transpose.g_to_band(comm, r_g, r_band, sp_comm);
  return r_band;
}

CMatrix pt_residual(const par::WavefunctionTranspose& transpose, par::Comm& comm,
                    const CMatrix& psi_band, const CMatrix& hpsi_band,
                    const CMatrix* psi_half_band, Complex c_psi, Complex c_h, Complex c_half,
                    bool sp_comm) {
  auto& ws = exec::workspace();
  CMatrix& psi_g = ws.cmat(exec::Slot::pt_ga, 0, 0);
  CMatrix& half_g = ws.cmat(exec::Slot::pt_gc, 0, 0);
  transpose.band_to_g(comm, psi_band, psi_g, sp_comm);
  if (psi_half_band) transpose.band_to_g(comm, *psi_half_band, half_g, sp_comm);
  return pt_residual_from_g(transpose, comm, psi_g, hpsi_band,
                            psi_half_band ? &half_g : nullptr, c_psi, c_h, c_half, sp_comm);
}

void orthonormalize(const par::WavefunctionTranspose& transpose, par::Comm& comm,
                    CMatrix& psi_band, bool sp_comm) {
  CMatrix& psi_g = exec::workspace().cmat(exec::Slot::pt_ga, 0, 0);
  transpose.band_to_g(comm, psi_band, psi_g, sp_comm);
  CMatrix s = linalg::overlap(psi_g, psi_g);
  comm.allreduce_sum(s.data(), s.size());
  // Replicated Cholesky (the paper runs cuSOLVER on one GPU; the factor is
  // tiny compared with everything else) followed by the local column solve.
  linalg::potrf_lower(s);
  linalg::trsm_right_lower_conj(psi_g, s);
  transpose.g_to_band(comm, psi_g, psi_band, sp_comm);
}

PtCnPropagator::PtCnPropagator(ham::Hamiltonian& hamiltonian, par::BlockPartition bands,
                               PtCnOptions opt, int comm_size)
    : ham_(hamiltonian),
      bands_(bands),
      opt_(opt),
      transpose_(par::BlockPartition(hamiltonian.setup().n_g(), comm_size), bands),
      psi_ovl_(opt.overlap_transpose),
      half_ovl_(opt.overlap_transpose) {
  PWDFT_CHECK(opt_.dt > 0.0, "PtCnPropagator: dt must be positive");
}

PtCnStepReport PtCnPropagator::step(CMatrix& psi_local, std::span<const double> occ_global,
                                    double t, const ExternalField& field, par::Comm& comm,
                                    TimerRegistry* timers) {
  TimerRegistry local_timers;
  if (!timers) timers = &local_timers;
  const std::size_t ng = ham_.setup().n_g();
  const std::size_t nb_loc = bands_.count(comm.rank());
  PWDFT_CHECK(psi_local.rows() == ng && psi_local.cols() == nb_loc,
              "PtCnPropagator: band layout mismatch");
  std::span<const double> occ_local(occ_global.data() + bands_.offset(comm.rank()), nb_loc);

  // Lazily build one Anderson mixer per local band (paper §3.4: one small
  // least-squares problem per wavefunction, history <= 20).
  if (mixers_.size() != nb_loc) {
    mixers_.clear();
    for (std::size_t j = 0; j < nb_loc; ++j)
      mixers_.push_back(std::make_unique<scf::AndersonMixer>(ng, opt_.anderson_depth,
                                                             opt_.anderson_beta));
  }
  for (auto& m : mixers_) m->reset();

  PtCnStepReport report;
  const Complex i_half_dt = imag_unit * (0.5 * opt_.dt);

  // --- Initial residual Rn = Hn Psi_n - Psi_n (Psi^H Hn Psi) at time t. ---
  ham_.set_vector_potential(field.vector_potential(t));
  std::vector<double> rho;
  {
    ScopedTimer st(*timers, "density");
    rho = ham::compute_density(ham_.setup(), ham_.fft_dense(), psi_local, occ_local, comm,
                               true, ham_.options().op_pipeline);
  }
  {
    ScopedTimer st(*timers, "others");
    ham_.update_density(rho);
  }
  // Exchange cadence: with MTS off this registers Psi_n (and the loop
  // below re-registers Psi_f each iteration); with MTS on the scheduler
  // decides — deterministically — between rebuilding from Psi_n and
  // keeping the frozen operator, and the loop below leaves it frozen.
  const MtsStepDecision mts = mts_.begin_step(ham_, psi_local, occ_global, bands_, comm,
                                              opt_.mts_interval, opt_.mts_drift_tol);
  report.exchange_refreshed = ham_.hybrid_enabled() && (!mts.active || mts.refreshed);
  report.mts_drift = mts.drift;
  // The Psi -> G transpose rides behind H Psi: packed here, its exchange
  // parked on the async lane against the stream's dup()'ed communicator
  // while the Fock band loop broadcasts on `comm` (overlap.hpp).
  psi_ovl_.start_band_to_g(transpose_, comm, psi_local, psi_g_, opt_.sp_comm);
  CMatrix hpsi;
  ham_.apply(psi_local, hpsi, comm, timers);
  ++report.fock_applies;

  CMatrix rn;
  {
    ScopedTimer st(*timers, "residual");
    psi_ovl_.wait();
    rn = pt_residual_from_g(transpose_, comm, psi_g_, hpsi, nullptr, Complex{0.0, 0.0},
                            Complex{1.0, 0.0}, Complex{0.0, 0.0}, opt_.sp_comm);
  }

  // --- Psi_{n+1/2} = Psi_n - i dt/2 Rn; initial guess Psi_f = Psi_{n+1/2}.
  CMatrix psi_half = psi_local;
  detail::add_scaled(-i_half_dt, rn, psi_half);
  CMatrix psi_f = psi_half;

  // The Psi_half transpose is invariant across the SCF loop: pay it once
  // here instead of once per residual evaluation (Alg. 3 line 1), and let
  // its exchange ride behind the Psi_f density build on its own stream.
  {
    ScopedTimer st(*timers, "residual");
    half_ovl_.start_band_to_g(transpose_, comm, psi_half, half_g_, opt_.sp_comm);
  }

  std::vector<double> rho_f;
  {
    ScopedTimer st(*timers, "density");
    rho_f = ham::compute_density(ham_.setup(), ham_.fft_dense(), psi_f, occ_local, comm, true,
                                 ham_.options().op_pipeline);
  }
  {
    ScopedTimer st(*timers, "residual");
    half_ovl_.wait();
  }

  // --- SCF fixed-point loop at time t + dt. ---
  ham_.set_vector_potential(field.vector_potential(t + opt_.dt));
  for (int it = 0; it < opt_.max_scf; ++it) {
    {
      ScopedTimer st(*timers, "others");
      ham_.update_density(rho_f);
    }
    if (ham_.hybrid_enabled() && !mts.active)
      ham_.set_exchange_orbitals(psi_f, occ_global, bands_, comm);
    psi_ovl_.start_band_to_g(transpose_, comm, psi_f, psi_g_, opt_.sp_comm);
    ham_.apply(psi_f, hpsi, comm, timers);
    ++report.fock_applies;

    CMatrix rf;
    {
      ScopedTimer st(*timers, "residual");
      psi_ovl_.wait();
      rf = pt_residual_from_g(transpose_, comm, psi_g_, hpsi, &half_g_, Complex{1.0, 0.0},
                              i_half_dt, Complex{1.0, 0.0}, opt_.sp_comm);
    }

    {
      // Fixed point x = g(x) with g(x) = x - Rf, so the Anderson residual
      // input is f = -Rf.
      ScopedTimer st(*timers, "anderson");
      detail::anderson_mix_bands(mixers_, rf, psi_f);
    }

    std::vector<double> rho_new;
    {
      ScopedTimer st(*timers, "density");
      rho_new = ham::compute_density(ham_.setup(), ham_.fft_dense(), psi_f, occ_local, comm, true,
                                 ham_.options().op_pipeline);
    }
    report.rho_error = ham::density_error(ham_.setup(), rho_new, rho_f);
    rho_f = std::move(rho_new);
    report.scf_iterations = it + 1;
    if (report.rho_error < opt_.rho_tol) {
      report.converged = true;
      break;
    }
  }

  // --- Orthonormalize Psi_f -> Psi_{n+1} (paper §3.4). ---
  {
    ScopedTimer st(*timers, "ortho");
    orthonormalize(transpose_, comm, psi_f, opt_.sp_comm);
  }
  psi_local = std::move(psi_f);

  // Fold the overlap streams' traffic into the caller-visible record so the
  // comm-volume accounting (bench/real_comm_volume, perf model validation)
  // sees one total regardless of which domain carried each transpose.
  psi_ovl_.fold_stats(comm);
  half_ovl_.fold_stats(comm);
  return report;
}

}  // namespace pwdft::td
