#include "td/mts.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/env.hpp"
#include "linalg/blas.hpp"

namespace pwdft::td {

int mts_interval_env_default() {
  // Strict parse: PWDFT_MTS_INTERVAL=four used to atoi to 0 and silently
  // disable MTS; malformed values now throw (common/env.hpp).
  return static_cast<int>(env::integer("PWDFT_MTS_INTERVAL", 0, 0, 1 << 20));
}

double MtsScheduler::subspace_drift(const CMatrix& psi_local, par::Comm& comm) const {
  PWDFT_ASSERT(phi_frozen_.rows() == psi_local.rows() &&
               phi_frozen_.cols() == psi_local.cols());
  const std::size_t ng = psi_local.rows();
  double worst = 0.0;
  for (std::size_t j = 0; j < psi_local.cols(); ++j) {
    const Complex s = linalg::dotc({phi_frozen_.col(j), ng}, {psi_local.col(j), ng});
    worst = std::max(worst, 1.0 - std::norm(s));
  }
  comm.allreduce_sum(&worst, 1);
  return worst;
}

MtsStepDecision MtsScheduler::begin_step(ham::Hamiltonian& ham, const CMatrix& psi_local,
                                         std::span<const double> occ_global,
                                         const par::BlockPartition& bands, par::Comm& comm,
                                         int interval, double drift_tol) {
  MtsStepDecision d;
  if (!ham.hybrid_enabled()) return d;
  if (interval <= 0) {
    // Legacy cadence: register the step-start orbitals; the caller keeps
    // re-registering Psi_f inside its inner SCF loop.
    ham.set_exchange_orbitals(psi_local, occ_global, bands, comm);
    return d;
  }

  d.active = true;
  bool refresh = !have_frozen_ || steps_since_refresh_ >= interval;
  if (!refresh) {
    // The drift decision must be identical on every rank (it gates
    // collectives): subspace_drift ends in an Allreduce, so it is.
    d.drift = subspace_drift(psi_local, comm);
    refresh = d.drift > drift_tol;
  }

  if (refresh) {
    phi_frozen_ = psi_local;
    ham.request_ace_refresh();
    ham.set_exchange_orbitals(phi_frozen_, occ_global, bands, comm);
    serial_at_refresh_ = ham.exchange_serial();
    have_frozen_ = true;
    steps_since_refresh_ = 1;
    d.refreshed = true;
    d.drift = 0.0;
  } else {
    if (ham.exchange_serial() != serial_at_refresh_) {
      // Someone registered exchange orbitals since our refresh (per-step
      // energy recording does). Re-pin the frozen snapshot so the
      // trajectory does not depend on whether that happened.
      ham.request_ace_refresh();
      ham.set_exchange_orbitals(phi_frozen_, occ_global, bands, comm);
      serial_at_refresh_ = ham.exchange_serial();
    }
    ++steps_since_refresh_;
  }
  return d;
}

}  // namespace pwdft::td
