#pragma once

/// \file mts.hpp
/// Multiple time stepping (MTS) for the exchange operator, after Mandal,
/// Thakkar & Pal (arXiv:2110.07670): the cheap local/semilocal Hamiltonian
/// responds to the density every step and every inner iteration, while the
/// expensive exact-exchange operator is frozen across steps and rebuilt
/// only every `interval`-th step — or earlier, when a monitored drift bound
/// against the frozen orbital snapshot trips. Composes with ACE
/// (ham/ace.hpp): on non-refresh steps the compressed apply costs two
/// transposes and a small GEMM, and the exact Fock pair solves disappear
/// from the step entirely.
///
/// Determinism contract (docs/threading.md): the refresh cadence is
/// counter-based and the drift monitor is a deterministic reduction, so
/// the rebuild pattern — and with it the physics — is bit-identical across
/// thread width, dispatch path, pipeline mode, and HierComm layout, and
/// never depends on wall-clock time.

#include <span>

#include "ham/hamiltonian.hpp"
#include "linalg/matrix.hpp"
#include "parallel/comm.hpp"
#include "parallel/distribution.hpp"

namespace pwdft::td {

/// PWDFT_MTS_INTERVAL resolution: unset/0/invalid => 0 (MTS off — the
/// propagators re-register the exchange orbitals every inner SCF
/// iteration, the legacy cadence); k >= 1 => freeze the exchange operator
/// across steps and rebuild every k-th step.
int mts_interval_env_default();

/// What begin_step() decided for this step.
struct MtsStepDecision {
  bool active = false;     ///< MTS governs the exchange cadence of this step
  bool refreshed = false;  ///< the exchange operator was rebuilt this step
  double drift = 0.0;      ///< monitored drift vs the frozen snapshot (non-refresh steps)
};

/// Per-propagator MTS state: the frozen orbital snapshot, the step counter
/// driving the refresh cadence, and the Hamiltonian exchange serial that
/// detects registrations made behind the propagator's back.
class MtsScheduler {
 public:
  /// Step-start hook; collective over comm. With `interval` <= 0 (or
  /// exchange disabled) this performs the legacy step-start registration
  /// and reports MTS inactive — the caller then also re-registers inside
  /// its inner SCF loop. With MTS active it either rebuilds the exchange
  /// operator from psi_local (cadence due, or drift > drift_tol) or keeps
  /// the frozen operator; in the latter case, if anything registered
  /// exchange orbitals since the last refresh (e.g. per-step energy
  /// evaluation), the frozen snapshot is re-registered — with ACE the
  /// forced rebuild from identical inputs reproduces the previous
  /// projectors bit-for-bit, so the trajectory is independent of such
  /// interleaved registrations.
  MtsStepDecision begin_step(ham::Hamiltonian& ham, const CMatrix& psi_local,
                             std::span<const double> occ_global,
                             const par::BlockPartition& bands, par::Comm& comm, int interval,
                             double drift_tol);

 private:
  /// max_j (1 - |<phi_frozen_j, psi_j>|^2): per-band fidelity leakage out
  /// of the frozen exchange snapshot. Rank-local maxima are aggregated with
  /// allreduce_sum as a cheap deterministic upper proxy (cf. td/cn.cpp).
  double subspace_drift(const CMatrix& psi_local, par::Comm& comm) const;

  CMatrix phi_frozen_;
  std::uint64_t serial_at_refresh_ = 0;
  int steps_since_refresh_ = 0;
  bool have_frozen_ = false;
};

}  // namespace pwdft::td
