#pragma once

/// \file field.hpp
/// External fields for rt-TDDFT in the velocity gauge: the Hamiltonian
/// kinetic term is 1/2 |G + a(t)|^2 with a(t) = -integral_0^t E(t') dt'.
/// Provides the paper's 380 nm Gaussian-envelope laser pulse (Fig. 4b) and
/// the delta kick used for absorption spectra.

#include <vector>

#include "common/types.hpp"
#include "grid/lattice.hpp"

namespace pwdft::td {

class ExternalField {
 public:
  virtual ~ExternalField() = default;
  /// Vector potential a(t) (atomic units).
  virtual grid::Vec3 vector_potential(double t) const = 0;
  /// Electric field E(t) = -da/dt.
  virtual grid::Vec3 efield(double t) const = 0;
};

class ZeroField final : public ExternalField {
 public:
  grid::Vec3 vector_potential(double /*t*/) const override { return {0.0, 0.0, 0.0}; }
  grid::Vec3 efield(double /*t*/) const override { return {0.0, 0.0, 0.0}; }
};

/// a(t) = kappa * theta(t - t0): the Yabana-Bertsch kick for linear response.
class DeltaKick final : public ExternalField {
 public:
  explicit DeltaKick(grid::Vec3 kappa, double t0 = 0.0) : kappa_(kappa), t0_(t0) {}
  grid::Vec3 vector_potential(double t) const override {
    return t >= t0_ ? kappa_ : grid::Vec3{0.0, 0.0, 0.0};
  }
  grid::Vec3 efield(double /*t*/) const override { return {0.0, 0.0, 0.0}; }
  const grid::Vec3& kappa() const { return kappa_; }

 private:
  grid::Vec3 kappa_;
  double t0_;
};

/// E(t) = E0 exp(-(t-t0)^2 / (2 sigma^2)) cos(w (t-t0)) * polarization.
/// The vector potential is precomputed by cumulative integration.
class LaserPulse final : public ExternalField {
 public:
  LaserPulse(double wavelength_nm, double e0_au, double t0_au, double sigma_au,
             grid::Vec3 polarization, double t_max_au);

  /// The paper's pulse: 380 nm, 30 fs window, centered mid-window.
  /// e0_au ~ 0.01 a.u. ~ 0.5 V/Angstrom.
  static LaserPulse paper_pulse(double e0_au = 0.01);

  grid::Vec3 vector_potential(double t) const override;
  grid::Vec3 efield(double t) const override;

  double frequency() const { return omega_; }
  double photon_energy_ev() const;

 private:
  double scalar_efield(double t) const;
  double omega_;
  double e0_;
  double t0_;
  double sigma_;
  grid::Vec3 pol_;
  double dt_;
  std::vector<double> a_cumulative_;  ///< -integral of scalar E on a fine grid
};

}  // namespace pwdft::td
