#include "fft/fft_plan.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pwdft::fft {

namespace {

bool is_prime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d)
    if (n % d == 0) return false;
  return true;
}

/// Radix selection: prefer 4 (fewest passes among {2,3,4,5}), then 2, 3, 5,
/// then the smallest prime factor for exotic sizes.
std::size_t pick_radix(std::size_t n) {
  if (n % 4 == 0) return 4;
  if (n % 2 == 0) return 2;
  if (n % 3 == 0) return 3;
  if (n % 5 == 0) return 5;
  for (std::size_t d = 7; d * d <= n; d += 2)
    if (n % d == 0) return d;
  return n;  // prime
}

Complex unit_root(double num, double den) {
  // exp(-2*pi*i*num/den), the sign=-1 convention used by all tables.
  const double ang = -constants::two_pi * num / den;
  return {std::cos(ang), std::sin(ang)};
}

}  // namespace

bool FftPlan1D::fast_size(std::size_t n) {
  if (n == 0) return false;
  for (std::size_t f : {2ul, 3ul, 5ul})
    while (n % f == 0) n /= f;
  return n == 1;
}

FftPlan1D::FftPlan1D(std::size_t n) : n_(n) {
  PWDFT_CHECK(n >= 1, "FFT length must be positive");
  std::size_t m = n;
  while (true) {
    Level lv;
    lv.n = m;
    if (m <= 5 || is_prime(m)) {
      lv.leaf = true;
      lv.r = m;
      lv.n1 = 1;
      lv.tw_off = tw_.size();
      for (std::size_t j = 0; j < m; ++j) tw_.push_back(unit_root(double(j), double(m)));
      levels_.push_back(lv);
      break;
    }
    const std::size_t r = pick_radix(m);
    lv.r = r;
    lv.n1 = m / r;
    lv.tw_off = tw_.size();
    for (std::size_t q = 0; q < r; ++q)
      for (std::size_t k = 0; k < lv.n1; ++k)
        tw_.push_back(unit_root(double(q * k), double(m)));
    lv.cb_off = comb_.size();
    for (std::size_t j = 0; j < r; ++j)
      for (std::size_t q = 0; q < r; ++q)
        comb_.push_back(unit_root(double((j * q) % r), double(r)));
    levels_.push_back(lv);
    m = lv.n1;
  }
}

void FftPlan1D::execute(const Complex* in, std::size_t in_stride, Complex* out, Complex* work,
                        int sign) const {
  PWDFT_ASSERT(sign == 1 || sign == -1);
  exec_level(0, in, in_stride, out, work, sign);
}

void FftPlan1D::exec_level(std::size_t li, const Complex* in, std::size_t stride, Complex* out,
                           Complex* work, int sign) const {
  const Level& lv = levels_[li];
  const Complex* tw = tw_.data() + lv.tw_off;

  if (lv.leaf) {
    // Naive DFT: out[k] = sum_m in[m*stride] * w^{(k*m) mod n}.
    const std::size_t n = lv.n;
    if (n == 1) {
      out[0] = in[0];
      return;
    }
    for (std::size_t k = 0; k < n; ++k) {
      Complex acc = in[0];
      std::size_t idx = 0;
      for (std::size_t m2 = 1; m2 < n; ++m2) {
        idx += k;
        if (idx >= n) idx -= n;
        const Complex w = (sign < 0) ? tw[idx] : std::conj(tw[idx]);
        acc += in[m2 * stride] * w;
      }
      out[k] = acc;
    }
    return;
  }

  const std::size_t r = lv.r;
  const std::size_t n1 = lv.n1;

  // Decimation in time: child q transforms the subsequence in[q::r].
  // Child results land in work[q*n1 .. ), using out[q*n1 ..) as scratch.
  for (std::size_t q = 0; q < r; ++q)
    exec_level(li + 1, in + q * stride, stride * r, work + q * n1, out + q * n1, sign);

  // Twiddle multiply in place: w_hat[q*n1+k] = work[q*n1+k] * W_n^{qk}.
  if (sign < 0) {
    for (std::size_t i = 0; i < r * n1; ++i) work[i] *= tw[i];
  } else {
    for (std::size_t i = 0; i < r * n1; ++i) work[i] *= std::conj(tw[i]);
  }

  // Combine: out[j*n1+k] = sum_q w_hat[q*n1+k] * W_r^{jq}.
  if (r == 2) {
    for (std::size_t k = 0; k < n1; ++k) {
      const Complex a = work[k];
      const Complex b = work[n1 + k];
      out[k] = a + b;
      out[n1 + k] = a - b;
    }
    return;
  }
  if (r == 4) {
    // W_4 = -i for sign=-1, +i for sign=+1.
    const Complex mi = (sign < 0) ? Complex{0.0, -1.0} : Complex{0.0, 1.0};
    for (std::size_t k = 0; k < n1; ++k) {
      const Complex a = work[k];
      const Complex b = work[n1 + k];
      const Complex c = work[2 * n1 + k];
      const Complex d = work[3 * n1 + k];
      const Complex ac_p = a + c, ac_m = a - c;
      const Complex bd_p = b + d, bd_m = mi * (b - d);
      out[k] = ac_p + bd_p;
      out[n1 + k] = ac_m + bd_m;
      out[2 * n1 + k] = ac_p - bd_p;
      out[3 * n1 + k] = ac_m - bd_m;
    }
    return;
  }
  const Complex* cb = comb_.data() + lv.cb_off;
  for (std::size_t k = 0; k < n1; ++k) {
    for (std::size_t j = 0; j < r; ++j) {
      Complex acc{0.0, 0.0};
      const Complex* row = cb + j * r;
      if (sign < 0) {
        for (std::size_t q = 0; q < r; ++q) acc += work[q * n1 + k] * row[q];
      } else {
        for (std::size_t q = 0; q < r; ++q) acc += work[q * n1 + k] * std::conj(row[q]);
      }
      out[j * n1 + k] = acc;
    }
  }
}

}  // namespace pwdft::fft
