#include "fft/fft_plan.hpp"

#include <cmath>
#include <cstdlib>
#include <string_view>

#include "common/check.hpp"

// Vectorization hint for the SIMD kernels below. The loops are written so
// that plain -O2/-O3 auto-vectorization already applies (contiguous double
// lanes, no aliasing through distinct restrict-qualified pointers); the
// pragma additionally licenses the reassociation-free lane split when the
// compiler honors it (-fopenmp-simd, set in CMakeLists for GCC/Clang).
#if defined(__GNUC__) || defined(__clang__)
#define PWDFT_SIMD_LOOP _Pragma("omp simd")
#else
#define PWDFT_SIMD_LOOP
#endif

namespace pwdft::fft {

namespace {

bool is_prime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d)
    if (n % d == 0) return false;
  return true;
}

/// Radix selection: prefer 4 (fewest passes among {2,3,4,5}), then 2, 3, 5,
/// then the smallest prime factor for exotic sizes.
std::size_t pick_radix(std::size_t n) {
  if (n % 4 == 0) return 4;
  if (n % 2 == 0) return 2;
  if (n % 3 == 0) return 3;
  if (n % 5 == 0) return 5;
  for (std::size_t d = 7; d * d <= n; d += 2)
    if (n % d == 0) return d;
  return n;  // prime
}

Complex unit_root(double num, double den) {
  // exp(-2*pi*i*num/den), the sign=-1 convention used by all tables.
  const double ang = -constants::two_pi * num / den;
  return {std::cos(ang), std::sin(ang)};
}

// ---- SIMD kernels -------------------------------------------------------
//
// Each Complex is viewed as two adjacent doubles (guaranteed layout of
// std::complex<double>). The combine loops perform the scalar expressions'
// real/imaginary operations in the same order, just over raw lanes so the
// vectorizer can pack them; together with the exact butterfly leaves below,
// the kernel agrees with the scalar one to final-bit rounding (no
// reassociation — only FMA contraction and the leaves' exact constants
// differ), bounded by tests/test_fft_oracle.cpp.
//
// The per-level twiddle multiply is fused into each combine: one sweep over
// the work buffer per level instead of two (twiddle sweep + combine sweep).
// The q = 0 twiddle row is exactly one and is skipped — multiplying by 1.0
// is the identity — so the fused kernels compute the same values as the
// former two-sweep pair.

/// Fused twiddle + radix-2 combine: b' = w[n1+k] * tw[n1+k] (conj_tw:
/// conjugated), out[k] = a + b', out[n1+k] = a - b'.
void radix2_combine_tw_simd(const Complex* work_c, Complex* out_c, const Complex* tw_c,
                            std::size_t n1, bool conj_tw) {
  const double* __restrict__ w = reinterpret_cast<const double*>(work_c);
  double* __restrict__ o = reinterpret_cast<double*>(out_c);
  const double* __restrict__ tw = reinterpret_cast<const double*>(tw_c);
  const double s = conj_tw ? -1.0 : 1.0;
  const std::size_t m = 2 * n1;
  PWDFT_SIMD_LOOP
  for (std::size_t k = 0; k < n1; ++k) {
    const double ar = w[2 * k], ai = w[2 * k + 1];
    const double br = w[m + 2 * k], bi = w[m + 2 * k + 1];
    const double tr = tw[m + 2 * k], ti = s * tw[m + 2 * k + 1];
    const double wr = br * tr - bi * ti;
    const double wi = br * ti + bi * tr;
    o[2 * k] = ar + wr;
    o[2 * k + 1] = ai + wi;
    o[m + 2 * k] = ar - wr;
    o[m + 2 * k + 1] = ai - wi;
  }
}

/// Fused twiddle + radix-4 combine with the W_4 = -i (sign=-1) / +i
/// (sign=+1) butterfly: b, c, d are twiddled on load, the +-i multiply is a
/// lane swap plus sign flip, done explicitly.
void radix4_combine_tw_simd(const Complex* work_c, Complex* out_c, const Complex* tw_c,
                            std::size_t n1, int sign) {
  const double* __restrict__ w = reinterpret_cast<const double*>(work_c);
  double* __restrict__ o = reinterpret_cast<double*>(out_c);
  const double* __restrict__ tw = reinterpret_cast<const double*>(tw_c);
  // mi*(b-d) with mi = -i (forward): re = im(b-d), im = -re(b-d); s = +1.
  // mi = +i (inverse): re = -im(b-d), im = re(b-d); s = -1. The inverse
  // transform also conjugates the twiddles: same flag.
  const double s = (sign < 0) ? 1.0 : -1.0;
  const std::size_t m = 2 * n1;
  PWDFT_SIMD_LOOP
  for (std::size_t k = 0; k < n1; ++k) {
    const double ar = w[2 * k], ai = w[2 * k + 1];
    const double b0r = w[m + 2 * k], b0i = w[m + 2 * k + 1];
    const double c0r = w[2 * m + 2 * k], c0i = w[2 * m + 2 * k + 1];
    const double d0r = w[3 * m + 2 * k], d0i = w[3 * m + 2 * k + 1];
    const double tbr = tw[m + 2 * k], tbi = s * tw[m + 2 * k + 1];
    const double tcr = tw[2 * m + 2 * k], tci = s * tw[2 * m + 2 * k + 1];
    const double tdr = tw[3 * m + 2 * k], tdi = s * tw[3 * m + 2 * k + 1];
    const double br = b0r * tbr - b0i * tbi, bi = b0r * tbi + b0i * tbr;
    const double cr = c0r * tcr - c0i * tci, ci = c0r * tci + c0i * tcr;
    const double dr = d0r * tdr - d0i * tdi, di = d0r * tdi + d0i * tdr;
    const double acp_r = ar + cr, acp_i = ai + ci;
    const double acm_r = ar - cr, acm_i = ai - ci;
    const double bdp_r = br + dr, bdp_i = bi + di;
    const double bdm_r = s * (bi - di), bdm_i = -s * (br - dr);
    o[2 * k] = acp_r + bdp_r;
    o[2 * k + 1] = acp_i + bdp_i;
    o[m + 2 * k] = acm_r + bdm_r;
    o[m + 2 * k + 1] = acm_i + bdm_i;
    o[2 * m + 2 * k] = acp_r - bdp_r;
    o[2 * m + 2 * k + 1] = acp_i - bdp_i;
    o[3 * m + 2 * k] = acm_r - bdm_r;
    o[3 * m + 2 * k + 1] = acm_i - bdm_i;
  }
}

/// Fused twiddle + generic radix-r combine (r = 3, 5, odd primes): each
/// w_q (q >= 1) is twiddled in place once, immediately before its
/// accumulation round, so the former separate twiddle sweep disappears.
/// Accumulation stays in ascending q per output element — the same order
/// (and the same twiddled values) as the two-sweep version.
void generic_combine_tw_simd(Complex* work_c, Complex* out_c, const Complex* cb,
                             const Complex* tw_c, std::size_t r, std::size_t n1,
                             bool conj_tw) {
  double* __restrict__ w = reinterpret_cast<double*>(work_c);
  double* __restrict__ o = reinterpret_cast<double*>(out_c);
  const double* __restrict__ tw = reinterpret_cast<const double*>(tw_c);
  const double s = conj_tw ? -1.0 : 1.0;
  for (std::size_t q = 0; q < r; ++q) {
    double* wq = w + 2 * q * n1;
    if (q > 0) {
      const double* twq = tw + 2 * q * n1;
      PWDFT_SIMD_LOOP
      for (std::size_t k = 0; k < n1; ++k) {
        const double wr = wq[2 * k], wi = wq[2 * k + 1];
        const double tr = twq[2 * k], ti = s * twq[2 * k + 1];
        wq[2 * k] = wr * tr - wi * ti;
        wq[2 * k + 1] = wr * ti + wi * tr;
      }
    }
    for (std::size_t j = 0; j < r; ++j) {
      double* oj = o + 2 * j * n1;
      const Complex c = cb[j * r + q];
      const double cr = c.real(), ci = s * c.imag();
      if (q == 0) {
        PWDFT_SIMD_LOOP
        for (std::size_t k = 0; k < n1; ++k) {
          const double wr = wq[2 * k], wi = wq[2 * k + 1];
          oj[2 * k] = wr * cr - wi * ci;
          oj[2 * k + 1] = wr * ci + wi * cr;
        }
      } else {
        PWDFT_SIMD_LOOP
        for (std::size_t k = 0; k < n1; ++k) {
          const double wr = wq[2 * k], wi = wq[2 * k + 1];
          oj[2 * k] += wr * cr - wi * ci;
          oj[2 * k + 1] += wr * ci + wi * cr;
        }
      }
    }
  }
}

/// Exact butterfly leaves for the SIMD kernel: lengths 2 and 4 need no
/// twiddle table at all (roots are +-1, +-i), saving the naive-DFT table
/// walk at the bottom of every recursion. More accurate than the table
/// path (the table stores cos(pi/2) ~ 6e-17, the butterfly uses the exact
/// zero); the FFT oracle bounds both against the reference DFT.
inline void leaf2_butterfly(const Complex* in, std::size_t stride, Complex* out) {
  const Complex a = in[0], b = in[stride];
  out[0] = a + b;
  out[1] = a - b;
}

inline void leaf4_butterfly(const Complex* in, std::size_t stride, Complex* out, int sign) {
  const Complex a = in[0], b = in[stride], c = in[2 * stride], d = in[3 * stride];
  const Complex ac_p = a + c, ac_m = a - c;
  const Complex bd_p = b + d;
  const Complex bd = b - d;
  // -i*(b-d) for sign=-1, +i*(b-d) for sign=+1, as an exact lane swizzle.
  const Complex bd_m = (sign < 0) ? Complex{bd.imag(), -bd.real()}
                                  : Complex{-bd.imag(), bd.real()};
  out[0] = ac_p + bd_p;
  out[1] = ac_m + bd_m;
  out[2] = ac_p - bd_p;
  out[3] = ac_m - bd_m;
}

/// Winograd-style length-3 DFT: 1 real multiply pair instead of 4 complex
/// table multiplies.
inline void leaf3_butterfly(const Complex* in, std::size_t stride, Complex* out, int sign) {
  constexpr double kSin3 = 0.86602540378443864676;  // sin(2*pi/3)
  const Complex a = in[0], b = in[stride], c = in[2 * stride];
  const Complex bc_p = b + c, bc_m = b - c;
  const Complex t = a - 0.5 * bc_p;
  // -i*sin(2pi/3)*(b-c) for sign=-1, conjugated for +1.
  const Complex rot = (sign < 0) ? Complex{kSin3 * bc_m.imag(), -kSin3 * bc_m.real()}
                                 : Complex{-kSin3 * bc_m.imag(), kSin3 * bc_m.real()};
  out[0] = a + bc_p;
  out[1] = t + rot;
  out[2] = t - rot;
}

/// Winograd-style length-5 DFT: 4 real-scaled combinations instead of 16
/// complex table multiplies.
inline void leaf5_butterfly(const Complex* in, std::size_t stride, Complex* out, int sign) {
  constexpr double kC1 = 0.30901699437494742410;   // cos(2*pi/5)
  constexpr double kC2 = -0.80901699437494742410;  // cos(4*pi/5)
  constexpr double kS1 = 0.95105651629515357212;   // sin(2*pi/5)
  constexpr double kS2 = 0.58778525229247312917;   // sin(4*pi/5)
  const Complex a = in[0], b = in[stride], c = in[2 * stride], d = in[3 * stride],
                e = in[4 * stride];
  const Complex t1 = b + e, t2 = c + d, t3 = b - e, t4 = c - d;
  const Complex p1 = a + kC1 * t1 + kC2 * t2;
  const Complex p2 = a + kC2 * t1 + kC1 * t2;
  const Complex u1 = kS1 * t3 + kS2 * t4;
  const Complex u2 = kS2 * t3 - kS1 * t4;
  const Complex r1 = (sign < 0) ? Complex{u1.imag(), -u1.real()}
                                : Complex{-u1.imag(), u1.real()};
  const Complex r2 = (sign < 0) ? Complex{u2.imag(), -u2.real()}
                                : Complex{-u2.imag(), u2.real()};
  out[0] = a + t1 + t2;
  out[1] = p1 + r1;
  out[2] = p2 + r2;
  out[3] = p2 - r2;
  out[4] = p1 - r1;
}

}  // namespace

bool FftPlan1D::fast_size(std::size_t n) {
  if (n == 0) return false;
  for (std::size_t f : {2ul, 3ul, 5ul})
    while (n % f == 0) n /= f;
  return n == 1;
}

RadixKernel FftPlan1D::env_default() {
  static const RadixKernel k = [] {
    if (const char* e = std::getenv("PWDFT_FFT_KERNEL")) {
      const std::string_view v(e);
      if (v == "scalar") return RadixKernel::kScalar;
      if (v == "simd") return RadixKernel::kSimd;
      // Fail fast: silently falling back would let a typo (=Scalar, =SIMD)
      // run the wrong kernel through an entire validation experiment.
      PWDFT_CHECK(false, "PWDFT_FFT_KERNEL must be 'scalar' or 'simd'");
    }
    return RadixKernel::kSimd;
  }();
  return k;
}

FftPlan1D::FftPlan1D(std::size_t n, RadixKernel kernel)
    : n_(n), kernel_(kernel == RadixKernel::kAuto ? env_default() : kernel) {
  PWDFT_CHECK(n >= 1, "FFT length must be positive");
  std::size_t m = n;
  while (true) {
    Level lv;
    lv.n = m;
    if (m <= 5 || is_prime(m)) {
      lv.leaf = true;
      lv.r = m;
      lv.n1 = 1;
      lv.tw_off = tw_.size();
      for (std::size_t j = 0; j < m; ++j) tw_.push_back(unit_root(double(j), double(m)));
      levels_.push_back(lv);
      break;
    }
    const std::size_t r = pick_radix(m);
    lv.r = r;
    lv.n1 = m / r;
    lv.tw_off = tw_.size();
    for (std::size_t q = 0; q < r; ++q)
      for (std::size_t k = 0; k < lv.n1; ++k)
        tw_.push_back(unit_root(double(q * k), double(m)));
    lv.cb_off = comb_.size();
    for (std::size_t j = 0; j < r; ++j)
      for (std::size_t q = 0; q < r; ++q)
        comb_.push_back(unit_root(double((j * q) % r), double(r)));
    levels_.push_back(lv);
    m = lv.n1;
  }
}

void FftPlan1D::execute(const Complex* in, std::size_t in_stride, Complex* out, Complex* work,
                        int sign) const {
  PWDFT_ASSERT(sign == 1 || sign == -1);
  exec_level(0, in, in_stride, out, work, sign);
}

void FftPlan1D::exec_level(std::size_t li, const Complex* in, std::size_t stride, Complex* out,
                           Complex* work, int sign) const {
  const Level& lv = levels_[li];
  const Complex* tw = tw_.data() + lv.tw_off;

  if (lv.leaf) {
    // Naive DFT: out[k] = sum_m in[m*stride] * w^{(k*m) mod n}.
    const std::size_t n = lv.n;
    if (n == 1) {
      out[0] = in[0];
      return;
    }
    if (kernel_ == RadixKernel::kSimd) {
      if (n == 2) {
        leaf2_butterfly(in, stride, out);
        return;
      }
      if (n == 3) {
        leaf3_butterfly(in, stride, out, sign);
        return;
      }
      if (n == 4) {
        leaf4_butterfly(in, stride, out, sign);
        return;
      }
      if (n == 5) {
        leaf5_butterfly(in, stride, out, sign);
        return;
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      Complex acc = in[0];
      std::size_t idx = 0;
      for (std::size_t m2 = 1; m2 < n; ++m2) {
        idx += k;
        if (idx >= n) idx -= n;
        const Complex w = (sign < 0) ? tw[idx] : std::conj(tw[idx]);
        acc += in[m2 * stride] * w;
      }
      out[k] = acc;
    }
    return;
  }

  const std::size_t r = lv.r;
  const std::size_t n1 = lv.n1;
  const bool simd = kernel_ == RadixKernel::kSimd;

  // Decimation in time: child q transforms the subsequence in[q::r].
  // Child results land in work[q*n1 .. ), using out[q*n1 ..) as scratch.
  for (std::size_t q = 0; q < r; ++q)
    exec_level(li + 1, in + q * stride, stride * r, work + q * n1, out + q * n1, sign);

  // SIMD kernel: the twiddle multiply (w_hat[q*n1+k] = work[q*n1+k] *
  // W_n^{qk}) is fused into the combine — one sweep over the work buffer
  // per level (ROADMAP follow-up; values identical to the two-sweep form).
  if (simd) {
    if (r == 2) {
      radix2_combine_tw_simd(work, out, tw, n1, sign > 0);
    } else if (r == 4) {
      radix4_combine_tw_simd(work, out, tw, n1, sign);
    } else {
      generic_combine_tw_simd(work, out, comb_.data() + lv.cb_off, tw, r, n1, sign > 0);
    }
    return;
  }

  // Scalar reference kernel: twiddle sweep, then combine.
  if (sign < 0) {
    for (std::size_t i = 0; i < r * n1; ++i) work[i] *= tw[i];
  } else {
    for (std::size_t i = 0; i < r * n1; ++i) work[i] *= std::conj(tw[i]);
  }

  // Combine: out[j*n1+k] = sum_q w_hat[q*n1+k] * W_r^{jq}.
  if (r == 2) {
    for (std::size_t k = 0; k < n1; ++k) {
      const Complex a = work[k];
      const Complex b = work[n1 + k];
      out[k] = a + b;
      out[n1 + k] = a - b;
    }
    return;
  }
  if (r == 4) {
    // W_4 = -i for sign=-1, +i for sign=+1.
    const Complex mi = (sign < 0) ? Complex{0.0, -1.0} : Complex{0.0, 1.0};
    for (std::size_t k = 0; k < n1; ++k) {
      const Complex a = work[k];
      const Complex b = work[n1 + k];
      const Complex c = work[2 * n1 + k];
      const Complex d = work[3 * n1 + k];
      const Complex ac_p = a + c, ac_m = a - c;
      const Complex bd_p = b + d, bd_m = mi * (b - d);
      out[k] = ac_p + bd_p;
      out[n1 + k] = ac_m + bd_m;
      out[2 * n1 + k] = ac_p - bd_p;
      out[3 * n1 + k] = ac_m - bd_m;
    }
    return;
  }
  const Complex* cb = comb_.data() + lv.cb_off;
  for (std::size_t k = 0; k < n1; ++k) {
    for (std::size_t j = 0; j < r; ++j) {
      Complex acc{0.0, 0.0};
      const Complex* row = cb + j * r;
      if (sign < 0) {
        for (std::size_t q = 0; q < r; ++q) acc += work[q * n1 + k] * row[q];
      } else {
        for (std::size_t q = 0; q < r; ++q) acc += work[q * n1 + k] * std::conj(row[q]);
      }
      out[j * n1 + k] = acc;
    }
  }
}

}  // namespace pwdft::fft
