#pragma once

/// \file fft3d.hpp
/// 3-D complex FFT on a dense grid, with a batched, thread-parallel
/// interface and a whole-operator pipeline engine.
///
/// The batched entry points mirror the "batched cuFFT" optimization of the
/// paper (§3.2, step 2): the Fock exchange operator solves many Poisson-like
/// equations per band and submits them as one batch. On this CPU substrate a
/// batch is executed across the process-wide exec engine, which captures the
/// same plan-reuse/latency-amortization structure and adds thread
/// parallelism.
///
/// Dispatch: two execution paths cover every batched transform, selected at
/// construction (ExecPath) and bit-identical to each other:
///   - kForkJoin — one exec::parallel_for per axis pass (three pool wakes
///     and three full barriers per transform).
///   - kTaskGraph (default) — a persistent exec::TaskGraph per replay
///     shape, built lazily on first use and replayed afterwards: one pool
///     wake per call, per-batch chains with no global inter-stage barrier
///     (batch b can run its axis-2 pass while batch b' is still in axis 0).
///     This removes the dominant dispatch overhead for small grids (< 32³)
///     — the per-band pair-solve sizes the hybrid Fock loop lives in.
///
/// Whole-operator pipelines (run_pipeline): generalizing the per-batch
/// prologue/epilogue hooks of PR 4, a caller describes its full operator as
/// a sequence of stages — per-batch compute hooks, FFT pass sets, and
/// trailing cross-batch join stages — and the whole pipeline becomes ONE
/// cached graph replay. The narrow-band `ham::Hamiltonian::apply`
/// (scatter → inverse passes → V·ψ+nonlocal → forward passes → gather →
/// kinetic+add), `ham::compute_density` (scatter → inverse passes → |ψ|²
/// chunk accumulation → ordered reduction join) and the Fock window loop's
/// batched pair solves (pair multiply → forward → kernel multiply →
/// inverse → write-out) are built this way, so a whole operator application
/// costs one pool wake instead of one per stage. On the fork-join path (or
/// when the graph cache is full) the same stage list executes as one
/// parallel_for per stage — identical serial code per batch element, so the
/// two executions are bit-identical.
///
/// The engine is stateless apart from the internal graph cache (guarded by
/// a mutex; replay itself is lock-free): per-line scratch comes from the
/// calling thread's workspace arena (FftPlan1D::execute is documented
/// thread-safe), so one Fft3D instance may be used concurrently from any
/// number of threads (e.g. several ThreadComm ranks) and all transform
/// methods are const.
///
/// Determinism: every 1-D line is computed by exactly one thread running the
/// identical serial kernel (Fft3D::run_lines, shared by both dispatch
/// paths), so results are bit-identical to the serial loop at any thread
/// count and across dispatch paths. The inner radix kernel (scalar or SIMD,
/// fft_plan.hpp) is fixed at construction and never depends on the width.
///
/// Grid layout: linear index i = x + n0*(y + n1*z), x fastest.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "fft/fft_plan.hpp"

namespace pwdft::fft {

/// Batched-transform dispatch path (see file header).
///   kAuto resolves at construction via PWDFT_FFT_DISPATCH
///   ("forkjoin" or "graph"), defaulting to kTaskGraph.
enum class ExecPath { kAuto, kForkJoin, kTaskGraph };

/// Whole-operator pipeline mode of the narrow-band hot paths
/// (ham::Hamiltonian::apply, ham::compute_density, the Fock pair solves):
///   kFused  — the operator runs as one Fft3D::run_pipeline call (a single
///             cached-graph replay on the task-graph dispatch path);
///   kStaged — the legacy formulation: one batched dispatch per stage.
/// Both are bit-identical at any engine width (tests/test_band_parallel.cpp
/// sweeps mode × dispatch × width). kAuto resolves pipeline_env_default().
enum class PipelineMode { kAuto, kFused, kStaged };

/// Process-wide default: PWDFT_OPERATOR_PIPELINE=fused|staged (read once),
/// else kFused.
PipelineMode pipeline_env_default();

class Fft3D {
 public:
  explicit Fft3D(std::array<std::size_t, 3> dims, RadixKernel kernel = RadixKernel::kAuto,
                 ExecPath path = ExecPath::kAuto);
  ~Fft3D();
  Fft3D(const Fft3D&) = delete;
  Fft3D& operator=(const Fft3D&) = delete;

  const std::array<std::size_t, 3>& dims() const { return dims_; }
  /// Total number of grid points.
  std::size_t size() const { return dims_[0] * dims_[1] * dims_[2]; }
  /// The resolved radix kernel shared by the three axis plans.
  RadixKernel kernel() const { return plan_x_.kernel(); }
  /// The resolved dispatch path (kForkJoin or kTaskGraph, never kAuto).
  ExecPath path() const { return path_; }
  /// Process-wide default: PWDFT_FFT_DISPATCH=forkjoin|graph (read once),
  /// else kTaskGraph.
  static ExecPath path_env_default();

  /// Per-batch stage hook: runs once per batch member (or once per join
  /// job). On the task-graph path the hook is a graph node wired into the
  /// member's stage chain; on the fork-join path it runs as its own
  /// batch-parallel stage. Must write only batch `b`'s data and be safe to
  /// run concurrently across batches (except where Stage::chain serializes
  /// it). A plain function pointer so the graph cache can key on hook
  /// identity; per-call state arrives through the stage's `user`.
  using BatchHook = void (*)(void* user, std::size_t batch);

  /// One axis-pass line selection: lines == nullptr means all nlines lines.
  struct PassSpec {
    const std::uint32_t* lines = nullptr;
    std::size_t nlines = 0;
  };

  /// One stage of a whole-operator pipeline (run_pipeline). The *shape*
  /// fields (kind, hook identity, chain, njobs, sign, line-mask contents)
  /// key the graph cache; the *state* fields (`user`, `data`) vary freely
  /// per call against the same cached graph.
  struct Stage {
    enum class Kind { kHook, kPasses, kJoin };
    Kind kind = Kind::kHook;
    // kHook / kJoin: the node body and its per-call state.
    BatchHook hook = nullptr;
    void* user = nullptr;
    /// kHook only: when > 1, consecutive runs of `chain` batch members
    /// execute their hooks serially in batch order (batch b waits for
    /// b-1 unless b is a run boundary). The fixed-order-reduction device:
    /// ham::compute_density chains the |ψ|² accumulation of each density
    /// chunk's bands so the summation order never depends on scheduling.
    std::size_t chain = 0;
    /// kJoin only: number of job nodes; the hook is called as
    /// hook(user, job) for job in [0, njobs) after EVERY batch member has
    /// finished all preceding stages. Join stages must be trailing and
    /// run after any earlier join stage completes.
    std::size_t njobs = 0;
    // kPasses: one batched 3-D transform (three axis passes) over the
    // contiguous grids at `data`, masked per axis by `passes`.
    int sign = 0;
    Complex* data = nullptr;
    std::array<PassSpec, 3> passes{};

    static Stage make_hook(BatchHook h, void* user, std::size_t chain = 0) {
      Stage s;
      s.kind = Kind::kHook;
      s.hook = h;
      s.user = user;
      s.chain = chain;
      return s;
    }
    static Stage make_join(BatchHook h, void* user, std::size_t njobs) {
      Stage s;
      s.kind = Kind::kJoin;
      s.hook = h;
      s.user = user;
      s.njobs = njobs;
      return s;
    }
    static Stage make_passes(int sign, Complex* data, const std::array<PassSpec, 3>& p) {
      Stage s;
      s.kind = Kind::kPasses;
      s.sign = sign;
      s.data = data;
      s.passes = p;
      return s;
    }
  };

  /// A pass stage covering every line of all three axes (the unmasked
  /// transform of this engine's grid): the pipeline form of
  /// forward_many/inverse_many. Keeps the per-axis line-count layout in
  /// one place — callers must not hand-build the PassSpec triple.
  Stage full_passes_stage(int sign, Complex* data) const {
    return Stage::make_passes(sign, data,
                              {PassSpec{nullptr, dims_[1] * dims_[2]},
                               PassSpec{nullptr, dims_[0] * dims_[2]},
                               PassSpec{nullptr, dims_[0] * dims_[1]}});
  }

  /// Executes a whole-operator pipeline over `count` batch members (at most
  /// 8 stages). Task-graph path: one replay of a graph cached per
  /// (count, stage-shape sequence) — one pool wake for the whole operator,
  /// batch members pipelining through the stages independently. Fork-join
  /// path (or cache full): one batched dispatch per stage. Both execute the
  /// identical serial code per (stage, batch) and are bit-identical.
  void run_pipeline(std::size_t count, std::span<const Stage> stages) const;

  /// In-place unnormalized transforms. inverse(forward(x)) == size()*x.
  void forward(Complex* data) const;
  void inverse(Complex* data) const;

  /// Inverse followed by division by size(): a true inverse of forward().
  void inverse_scaled(Complex* data) const;

  /// Batched transforms over `count` contiguous grids.
  void forward_many(Complex* data, std::size_t count) const;
  void inverse_many(Complex* data, std::size_t count) const;

  /// Sphere-masked variants (the fused sphere<->grid path, see
  /// grid/transforms.hpp). All three axes run masked.
  ///
  /// inverse_many_active: the axis-0 pass runs only over `x_lines` (line
  /// l = y + n1*z) and the axis-1 pass only over `y_lines` (line
  /// l = x + n0*z). All other x-lines MUST already be zero (a freshly
  /// scattered sphere guarantees this) and `y_lines` must cover every
  /// z-plane that carries an active x-line; skipped axis-1 lines are then
  /// all-zero and their transform is the identity, making the result
  /// bit-identical to inverse_many while skipping the empty lines. An
  /// optional `prologue` hook (e.g. the per-batch sphere scatter) runs
  /// before each batch member's passes.
  void inverse_many_active(Complex* data, std::size_t count,
                           std::span<const std::uint32_t> x_lines,
                           std::span<const std::uint32_t> y_lines,
                           BatchHook prologue = nullptr, void* user = nullptr) const;
  /// forward_many_active: the axis-0 pass runs in full, the axis-1 pass
  /// only over `y_lines` (line l = x + n0*z) and the final axis-2 pass only
  /// over `z_lines` (line l = x + n0*y). `y_lines` must cover every x that
  /// appears in `z_lines` (SphereMap::y_lines_fwd does). Grid values on
  /// skipped axis-1 and axis-2 lines are left unspecified; values on the
  /// listed z-lines are bit-identical to forward_many. Use when only sphere
  /// points are gathered afterwards. An optional `epilogue` hook (e.g. the
  /// per-batch sphere gather) runs after each batch member's passes.
  void forward_many_active(Complex* data, std::size_t count,
                           std::span<const std::uint32_t> y_lines,
                           std::span<const std::uint32_t> z_lines,
                           BatchHook epilogue = nullptr, void* user = nullptr) const;

 private:
  struct CachedGraph;

  /// The shared serial kernel of both dispatch paths: transforms lines
  /// [li0, li1) of `axis` for batch member `batch`.
  void run_lines(Complex* data, int axis, int sign, const std::uint32_t* lines,
                 std::size_t li0, std::size_t li1, std::size_t batch) const;
  /// Fork-join axis pass over all batch members (one parallel_for).
  void axis_pass_many(Complex* data, std::size_t count, int axis, int sign,
                      const std::uint32_t* lines, std::size_t nlines) const;
  /// Runs the three passes (+ optional hooks) through the configured path:
  /// the historical prologue/passes/epilogue shape, now a 2–3 stage
  /// pipeline.
  void dispatch(Complex* data, std::size_t count, int sign,
                const std::array<PassSpec, 3>& passes, BatchHook prologue,
                BatchHook epilogue, void* user) const;
  void transform_many(Complex* data, std::size_t count, int sign) const;
  /// Executes the stage list as one batched dispatch per stage (fork-join
  /// path and the cache-full fallback of run_pipeline).
  void run_stages(std::size_t count, std::span<const Stage> stages) const;
  /// Looks up or lazily builds the cached graph for a pipeline shape;
  /// returns nullptr when the cache is full (caller falls back to
  /// run_stages).
  CachedGraph* graph_for(std::size_t count, std::span<const Stage> stages) const;

  std::array<std::size_t, 3> dims_;
  ExecPath path_;
  FftPlan1D plan_x_, plan_y_, plan_z_;
  /// Lazily built replay graphs, keyed by (batch count, per-stage shape:
  /// kind + hook identity + chain/njobs + sign + line-mask content).
  /// Entries are never evicted and their addresses are stable, so a replay
  /// needs the mutex only for the lookup.
  mutable std::mutex cache_mutex_;
  mutable std::vector<std::unique_ptr<CachedGraph>> cache_;
};

/// Process-wide engine cache: returns the one Fft3D for (dims, resolved
/// kernel, resolved dispatch path), constructing it on first request. Since
/// an Fft3D is safe for concurrent use and its graph cache only grows,
/// sharing one engine per grid shape means co-resident simulations (the
/// serve::JobEngine tenants, or several Simulations in one process) reuse
/// each other's warmed-up replay graphs instead of each rebuilding them.
/// Entries live for the life of the process.
std::shared_ptr<Fft3D> shared_engine(std::array<std::size_t, 3> dims,
                                     RadixKernel kernel = RadixKernel::kAuto,
                                     ExecPath path = ExecPath::kAuto);

}  // namespace pwdft::fft
