#pragma once

/// \file fft3d.hpp
/// 3-D complex FFT on a dense grid, with a batched interface.
///
/// The batched entry points mirror the "batched cuFFT" optimization of the
/// paper (§3.2, step 2): the Fock exchange operator solves many Poisson-like
/// equations per band and submits them as one batch. On this CPU substrate a
/// batch is a tight loop over transforms sharing one plan and workspace,
/// which captures the same plan-reuse/latency-amortization structure.
///
/// Grid layout: linear index i = x + n0*(y + n1*z), x fastest.

#include <array>
#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "fft/fft_plan.hpp"

namespace pwdft::fft {

class Fft3D {
 public:
  explicit Fft3D(std::array<std::size_t, 3> dims);

  const std::array<std::size_t, 3>& dims() const { return dims_; }
  /// Total number of grid points.
  std::size_t size() const { return dims_[0] * dims_[1] * dims_[2]; }

  /// In-place unnormalized transforms. inverse(forward(x)) == size()*x.
  void forward(Complex* data);
  void inverse(Complex* data);

  /// Inverse followed by division by size(): a true inverse of forward().
  void inverse_scaled(Complex* data);

  /// Batched transforms over `count` contiguous grids.
  void forward_many(Complex* data, std::size_t count);
  void inverse_many(Complex* data, std::size_t count);

 private:
  void transform(Complex* data, int sign);
  void axis_pass(Complex* data, int axis, int sign);

  std::array<std::size_t, 3> dims_;
  FftPlan1D plan_x_, plan_y_, plan_z_;
  std::vector<Complex> line_out_;  ///< per-line output buffer
  std::vector<Complex> work_;      ///< plan workspace
};

}  // namespace pwdft::fft
