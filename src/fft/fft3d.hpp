#pragma once

/// \file fft3d.hpp
/// 3-D complex FFT on a dense grid, with a batched, thread-parallel interface.
///
/// The batched entry points mirror the "batched cuFFT" optimization of the
/// paper (§3.2, step 2): the Fock exchange operator solves many Poisson-like
/// equations per band and submits them as one batch. On this CPU substrate a
/// batch is executed as one parallel_for over all 1-D lines of all batch
/// members on the process-wide exec engine, which captures the same
/// plan-reuse/latency-amortization structure and adds thread parallelism.
///
/// The engine is stateless: per-line scratch comes from the calling thread's
/// workspace arena (FftPlan1D::execute is documented thread-safe), so one
/// Fft3D instance may be used concurrently from any number of threads (e.g.
/// several ThreadComm ranks) and all methods are const.
///
/// Determinism: every 1-D line is computed by exactly one thread running the
/// identical serial kernel, so results are bit-identical to the serial loop
/// at any thread count. The inner radix kernel (scalar or SIMD,
/// fft_plan.hpp) is fixed at construction and never depends on the width.
///
/// Grid layout: linear index i = x + n0*(y + n1*z), x fastest.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "fft/fft_plan.hpp"

namespace pwdft::fft {

class Fft3D {
 public:
  explicit Fft3D(std::array<std::size_t, 3> dims, RadixKernel kernel = RadixKernel::kAuto);

  const std::array<std::size_t, 3>& dims() const { return dims_; }
  /// Total number of grid points.
  std::size_t size() const { return dims_[0] * dims_[1] * dims_[2]; }
  /// The resolved radix kernel shared by the three axis plans.
  RadixKernel kernel() const { return plan_x_.kernel(); }

  /// In-place unnormalized transforms. inverse(forward(x)) == size()*x.
  void forward(Complex* data) const;
  void inverse(Complex* data) const;

  /// Inverse followed by division by size(): a true inverse of forward().
  void inverse_scaled(Complex* data) const;

  /// Batched transforms over `count` contiguous grids.
  void forward_many(Complex* data, std::size_t count) const;
  void inverse_many(Complex* data, std::size_t count) const;

  /// Sphere-masked variants (the fused sphere<->grid path, see
  /// grid/transforms.hpp). All three axes run masked.
  ///
  /// inverse_many_active: the axis-0 pass runs only over `x_lines` (line
  /// l = y + n1*z) and the axis-1 pass only over `y_lines` (line
  /// l = x + n0*z). All other x-lines MUST already be zero (a freshly
  /// scattered sphere guarantees this) and `y_lines` must cover every
  /// z-plane that carries an active x-line; skipped axis-1 lines are then
  /// all-zero and their transform is the identity, making the result
  /// bit-identical to inverse_many while skipping the empty lines.
  void inverse_many_active(Complex* data, std::size_t count,
                           std::span<const std::uint32_t> x_lines,
                           std::span<const std::uint32_t> y_lines) const;
  /// forward_many_active: the axis-0 pass runs in full, the axis-1 pass
  /// only over `y_lines` (line l = x + n0*z) and the final axis-2 pass only
  /// over `z_lines` (line l = x + n0*y). `y_lines` must cover every x that
  /// appears in `z_lines` (SphereMap::y_lines_fwd does). Grid values on
  /// skipped axis-1 and axis-2 lines are left unspecified; values on the
  /// listed z-lines are bit-identical to forward_many. Use when only sphere
  /// points are gathered afterwards.
  void forward_many_active(Complex* data, std::size_t count,
                           std::span<const std::uint32_t> y_lines,
                           std::span<const std::uint32_t> z_lines) const;

 private:
  void transform_many(Complex* data, std::size_t count, int sign) const;
  /// One 1-D pass over `nlines` lines of each of `count` grids. `lines`
  /// selects line indices (nullptr = all lines 0..nlines-1).
  void axis_pass_many(Complex* data, std::size_t count, int axis, int sign,
                      const std::uint32_t* lines, std::size_t nlines) const;

  std::array<std::size_t, 3> dims_;
  FftPlan1D plan_x_, plan_y_, plan_z_;
};

}  // namespace pwdft::fft
