#pragma once

/// \file fft_plan.hpp
/// Mixed-radix 1-D complex FFT plans.
///
/// This is the stand-in for cuFFT/FFTW in this reproduction (neither is
/// available offline). The plan precomputes the factorization chain,
/// twiddle tables and small-radix combine matrices so that repeated
/// execution (millions of Poisson-like solves in the Fock exchange
/// operator, paper Eq. 3 / Alg. 2) performs no trigonometry.
///
/// Conventions:
///   forward (sign = -1):  X[k] = sum_m x[m] exp(-2*pi*i*k*m/n)   (unnormalized)
///   inverse (sign = +1):  x[m] = sum_k X[k] exp(+2*pi*i*k*m/n)   (unnormalized)
/// so inverse(forward(x)) == n * x.

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace pwdft::fft {

/// Inner-kernel flavor for the hot per-level loops (the radix-2/4 combines
/// and the twiddle multiply, which together dominate a 5-smooth transform).
///
///   kScalar — the straightforward std::complex loops (reference kernel).
///   kSimd   — the same math restructured over raw double lanes so the
///             compiler vectorizes it (no intrinsics; portable), with
///             exact butterfly leaves for lengths 2/3/4/5 in place of the
///             naive table walk. Agrees with kScalar to final-bit rounding
///             (the leaves use exact constants where the table stores
///             cos(pi/2) ~ 6e-17); both kernels are bounded against an
///             independent reference DFT by tests/test_fft_oracle.cpp.
///   kAuto   — resolves at plan time via env_default(): the value of
///             PWDFT_FFT_KERNEL ("scalar" or "simd"), else kSimd.
///
/// The choice is fixed at plan construction and never depends on the
/// engine width, so either kernel keeps the bit-identical-at-any-thread-
/// count contract of docs/threading.md.
enum class RadixKernel { kAuto, kScalar, kSimd };

/// A reusable plan for complex DFTs of a fixed length.
///
/// Supports any length: lengths factoring into {2,3,4,5} use fast
/// Cooley-Tukey passes; residual prime factors fall back to a naive
/// O(p^2) leaf (used only in tests; production grids are 5-smooth).
class FftPlan1D {
 public:
  explicit FftPlan1D(std::size_t n, RadixKernel kernel = RadixKernel::kAuto);

  std::size_t size() const { return n_; }

  /// The kernel this plan resolved to (kScalar or kSimd, never kAuto).
  RadixKernel kernel() const { return kernel_; }

  /// Process-wide default: PWDFT_FFT_KERNEL=scalar|simd (read once), else
  /// kSimd.
  static RadixKernel env_default();

  /// Required workspace (in Complex elements) for execute().
  std::size_t workspace_size() const { return n_; }

  /// Computes out[k] = sum_m in[m*in_stride] * exp(sign*2*pi*i*k*m/n).
  /// `out` and `work` must each hold n elements and be distinct from `in`
  /// and from each other. Thread-safe (plan state is read-only).
  void execute(const Complex* in, std::size_t in_stride, Complex* out, Complex* work,
               int sign) const;

  /// True iff n factors entirely into {2,3,5} (grid-friendly size).
  static bool fast_size(std::size_t n);

 private:
  struct Level {
    std::size_t n = 0;       ///< transform length at this level
    std::size_t r = 0;       ///< radix split off (n = r * n1)
    std::size_t n1 = 0;      ///< child transform length
    bool leaf = false;       ///< naive DFT of length n
    std::size_t tw_off = 0;  ///< offset into tw_ (size r*n1, or n for leaves)
    std::size_t cb_off = 0;  ///< offset into comb_ (size r*r; unused for leaves)
  };

  void exec_level(std::size_t li, const Complex* in, std::size_t stride, Complex* out,
                  Complex* work, int sign) const;

  std::size_t n_;
  RadixKernel kernel_;
  std::vector<Level> levels_;
  std::vector<Complex> tw_;    ///< twiddles for sign=-1 (conjugated on use for +1)
  std::vector<Complex> comb_;  ///< per-level radix-r DFT matrices, sign=-1
};

}  // namespace pwdft::fft
