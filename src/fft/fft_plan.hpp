#pragma once

/// \file fft_plan.hpp
/// Mixed-radix 1-D complex FFT plans.
///
/// This is the stand-in for cuFFT/FFTW in this reproduction (neither is
/// available offline). The plan precomputes the factorization chain,
/// twiddle tables and small-radix combine matrices so that repeated
/// execution (millions of Poisson-like solves in the Fock exchange
/// operator, paper Eq. 3 / Alg. 2) performs no trigonometry.
///
/// Conventions:
///   forward (sign = -1):  X[k] = sum_m x[m] exp(-2*pi*i*k*m/n)   (unnormalized)
///   inverse (sign = +1):  x[m] = sum_k X[k] exp(+2*pi*i*k*m/n)   (unnormalized)
/// so inverse(forward(x)) == n * x.

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace pwdft::fft {

/// A reusable plan for complex DFTs of a fixed length.
///
/// Supports any length: lengths factoring into {2,3,4,5} use fast
/// Cooley-Tukey passes; residual prime factors fall back to a naive
/// O(p^2) leaf (used only in tests; production grids are 5-smooth).
class FftPlan1D {
 public:
  explicit FftPlan1D(std::size_t n);

  std::size_t size() const { return n_; }

  /// Required workspace (in Complex elements) for execute().
  std::size_t workspace_size() const { return n_; }

  /// Computes out[k] = sum_m in[m*in_stride] * exp(sign*2*pi*i*k*m/n).
  /// `out` and `work` must each hold n elements and be distinct from `in`
  /// and from each other. Thread-safe (plan state is read-only).
  void execute(const Complex* in, std::size_t in_stride, Complex* out, Complex* work,
               int sign) const;

  /// True iff n factors entirely into {2,3,5} (grid-friendly size).
  static bool fast_size(std::size_t n);

 private:
  struct Level {
    std::size_t n = 0;       ///< transform length at this level
    std::size_t r = 0;       ///< radix split off (n = r * n1)
    std::size_t n1 = 0;      ///< child transform length
    bool leaf = false;       ///< naive DFT of length n
    std::size_t tw_off = 0;  ///< offset into tw_ (size r*n1, or n for leaves)
    std::size_t cb_off = 0;  ///< offset into comb_ (size r*r; unused for leaves)
  };

  void exec_level(std::size_t li, const Complex* in, std::size_t stride, Complex* out,
                  Complex* work, int sign) const;

  std::size_t n_;
  std::vector<Level> levels_;
  std::vector<Complex> tw_;    ///< twiddles for sign=-1 (conjugated on use for +1)
  std::vector<Complex> comb_;  ///< per-level radix-r DFT matrices, sign=-1
};

}  // namespace pwdft::fft
