#include "fft/fft3d.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/check.hpp"
#include "common/exec.hpp"

namespace pwdft::fft {

namespace {

/// Per-stage replay state: the pointers that vary per call while the graph
/// shape stays cached. Slot s of the array backs stage s of the pipeline.
struct StageState {
  Fft3D::BatchHook hook;
  void* user;
  Complex* data;
};

/// Replay argument block shared by every node of a cached graph.
struct ReplayCtx {
  const StageState* st;
};

/// Shared trampoline of every hook/join node: payload packs
/// (stage << 32 | batch-or-job), the per-call user pointer comes from the
/// replay context. One static function for all hook nodes keeps the graph
/// build allocation-light (exec::TaskGraph raw nodes).
void run_hook_node(void* ctx, std::uint64_t payload) {
  const auto* c = static_cast<const ReplayCtx*>(ctx);
  const std::size_t si = static_cast<std::size_t>(payload >> 32);
  const std::size_t b = static_cast<std::size_t>(payload & 0xffffffffu);
  c->st[si].hook(c->st[si].user, b);
}

std::uint64_t fnv1a(const std::uint32_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Fixed node sizing: at least the fork-join grain's worth of line data per
/// node (so a node amortizes its scheduling cost) and at most 32 nodes per
/// pass per batch member. Width-independent — the graph shape affects only
/// scheduling, never results.
constexpr std::size_t kMaxNodesPerPass = 32;

/// Defensive bound on cached replay shapes per Fft3D; novel shapes beyond it
/// fall back to the staged dispatch instead of growing without limit.
constexpr std::size_t kMaxCachedGraphs = 64;

/// Pipelines are short stage sequences (the longest in the tree — the fused
/// Hamiltonian apply — has 6); the replay state array is stack-sized to it.
constexpr std::size_t kMaxPipelineStages = 8;

}  // namespace

/// One cached replay shape: the per-stage key fields plus owned copies of
/// the line masks (the graph's nodes point into them, so the cache never
/// dangles if the caller's mask storage goes away).
struct Fft3D::CachedGraph {
  struct StageKey {
    Stage::Kind kind = Stage::Kind::kHook;
    BatchHook hook = nullptr;
    std::size_t chain = 0;
    std::size_t njobs = 0;
    int sign = 0;
    std::array<bool, 3> masked{};
    std::array<std::size_t, 3> nlines{};
    std::array<std::uint64_t, 3> hash{};
    std::array<std::vector<std::uint32_t>, 3> lines;
  };
  std::size_t count = 0;
  std::vector<StageKey> stages;
  exec::TaskGraph graph;
};

ExecPath Fft3D::path_env_default() {
  static const ExecPath p = [] {
    if (const char* e = std::getenv("PWDFT_FFT_DISPATCH")) {
      const std::string_view v(e);
      if (v == "forkjoin") return ExecPath::kForkJoin;
      if (v == "graph") return ExecPath::kTaskGraph;
      // Fail fast: a typo must not silently select the wrong dispatch path
      // for an entire experiment.
      PWDFT_CHECK(false, "PWDFT_FFT_DISPATCH must be 'forkjoin' or 'graph'");
    }
    return ExecPath::kTaskGraph;
  }();
  return p;
}

PipelineMode pipeline_env_default() {
  static const PipelineMode m = [] {
    if (const char* e = std::getenv("PWDFT_OPERATOR_PIPELINE")) {
      const std::string_view v(e);
      if (v == "fused") return PipelineMode::kFused;
      if (v == "staged") return PipelineMode::kStaged;
      PWDFT_CHECK(false, "PWDFT_OPERATOR_PIPELINE must be 'fused' or 'staged'");
    }
    return PipelineMode::kFused;
  }();
  return m;
}

Fft3D::Fft3D(std::array<std::size_t, 3> dims, RadixKernel kernel, ExecPath path)
    : dims_(dims),
      path_(path == ExecPath::kAuto ? path_env_default() : path),
      plan_x_(dims[0], kernel),
      plan_y_(dims[1], kernel),
      plan_z_(dims[2], kernel) {}

Fft3D::~Fft3D() = default;

std::shared_ptr<Fft3D> shared_engine(std::array<std::size_t, 3> dims, RadixKernel kernel,
                                     ExecPath path) {
  struct Key {
    std::array<std::size_t, 3> dims;
    RadixKernel kernel;
    ExecPath path;
    bool operator==(const Key&) const = default;
  };
  // The kAuto resolutions below mirror the Fft3D/FftPlan1D constructors, so
  // explicit-and-equivalent requests hit the same cache entry as kAuto ones.
  const Key key{dims, kernel == RadixKernel::kAuto ? FftPlan1D::env_default() : kernel,
                path == ExecPath::kAuto ? Fft3D::path_env_default() : path};
  static std::mutex mu;
  // Intentionally leaked: engines may still be referenced by objects whose
  // destruction order at exit is unknowable.
  static auto* cache = new std::vector<std::pair<Key, std::shared_ptr<Fft3D>>>();
  std::lock_guard<std::mutex> lock(mu);
  for (const auto& [k, engine] : *cache) {
    if (k == key) return engine;
  }
  auto engine = std::make_shared<Fft3D>(dims, key.kernel, key.path);
  cache->emplace_back(key, engine);
  return engine;
}

void Fft3D::run_lines(Complex* data, int axis, int sign, const std::uint32_t* lines,
                      std::size_t li0, std::size_t li1, std::size_t batch) const {
  const std::size_t n0 = dims_[0], n1 = dims_[1];
  const std::size_t grid = size();
  const FftPlan1D& plan = axis == 0 ? plan_x_ : axis == 1 ? plan_y_ : plan_z_;
  const std::size_t len = dims_[axis];
  const std::size_t stride = axis == 0 ? 1 : axis == 1 ? n0 : n0 * n1;
  auto& ws = exec::workspace();
  Complex* line_out = ws.cbuf(exec::Slot::fft_line, len).data();
  Complex* work = ws.cbuf(exec::Slot::fft_work, len).data();
  Complex* gbase = data + batch * grid;
  for (std::size_t li = li0; li < li1; ++li) {
    const std::size_t l = lines ? lines[li] : li;
    Complex* base;
    if (axis == 0) {
      base = gbase + l * n0;  // l = y + n1*z
    } else if (axis == 1) {
      const std::size_t x = l % n0, z = l / n0;
      base = gbase + x + n0 * n1 * z;
    } else {
      base = gbase + l;  // l = x + n0*y
    }
    plan.execute(base, stride, line_out, work, sign);
    for (std::size_t k = 0; k < len; ++k) base[k * stride] = line_out[k];
  }
}

void Fft3D::axis_pass_many(Complex* data, std::size_t count, int axis, int sign,
                           const std::uint32_t* lines, std::size_t nlines) const {
  const std::size_t len = dims_[axis];
  const std::size_t total = count * nlines;
  if (total == 0 || len == 0) return;

  // Keep each chunk >= ~32 KiB of line data so dispatch stays negligible.
  const std::size_t grain = std::max<std::size_t>(1, 2048 / len);

  exec::parallel_for(
      total,
      [&](std::size_t b, std::size_t e) {
        // Split the flattened (batch, line) range at batch boundaries; each
        // maximal run goes through the same serial kernel as a graph node.
        std::size_t t = b;
        while (t < e) {
          const std::size_t batch = t / nlines;
          const std::size_t li = t - batch * nlines;
          const std::size_t run = std::min(nlines - li, e - t);
          run_lines(data, axis, sign, lines, li, li + run, batch);
          t += run;
        }
      },
      grain);
}

namespace {

/// Shared shape validation of run_pipeline (both dispatch paths see the
/// same contract).
void validate_stages(std::span<const Fft3D::Stage> stages) {
  PWDFT_CHECK(!stages.empty() && stages.size() <= kMaxPipelineStages,
              "run_pipeline: need 1..8 stages");
  bool joined = false;
  for (const auto& s : stages) {
    switch (s.kind) {
      case Fft3D::Stage::Kind::kHook:
        PWDFT_CHECK(s.hook != nullptr, "run_pipeline: hook stage needs a hook");
        PWDFT_CHECK(!joined, "run_pipeline: per-batch stages cannot follow a join");
        break;
      case Fft3D::Stage::Kind::kPasses:
        PWDFT_CHECK(s.data != nullptr, "run_pipeline: pass stage needs data");
        PWDFT_CHECK(!joined, "run_pipeline: per-batch stages cannot follow a join");
        break;
      case Fft3D::Stage::Kind::kJoin:
        PWDFT_CHECK(s.hook != nullptr && s.njobs > 0,
                    "run_pipeline: join stage needs a hook and njobs > 0");
        joined = true;
        break;
    }
  }
}

}  // namespace

Fft3D::CachedGraph* Fft3D::graph_for(std::size_t count,
                                     std::span<const Stage> stages) const {
  // Hash the line masks outside the lock; contents are compared exactly on
  // a hash match (a 64-bit collision would otherwise replay the wrong
  // lines).
  std::array<std::array<std::uint64_t, 3>, kMaxPipelineStages> hash{};
  for (std::size_t si = 0; si < stages.size(); ++si)
    if (stages[si].kind == Stage::Kind::kPasses)
      for (int a = 0; a < 3; ++a)
        hash[si][a] = stages[si].passes[a].lines
                          ? fnv1a(stages[si].passes[a].lines, stages[si].passes[a].nlines)
                          : 0;

  std::lock_guard<std::mutex> lk(cache_mutex_);
  for (const auto& cg : cache_) {
    if (cg->count != count || cg->stages.size() != stages.size()) continue;
    bool same = true;
    for (std::size_t si = 0; same && si < stages.size(); ++si) {
      const auto& k = cg->stages[si];
      const auto& s = stages[si];
      same = k.kind == s.kind && k.hook == s.hook && k.chain == s.chain &&
             k.njobs == s.njobs && k.sign == s.sign;
      if (!same || s.kind != Stage::Kind::kPasses) continue;
      for (int a = 0; same && a < 3; ++a) {
        same = k.masked[a] == (s.passes[a].lines != nullptr) &&
               k.nlines[a] == s.passes[a].nlines && k.hash[a] == hash[si][a];
        if (same && s.passes[a].lines)
          same = std::equal(k.lines[a].begin(), k.lines[a].end(), s.passes[a].lines);
      }
    }
    if (same) return cg.get();
  }
  if (cache_.size() >= kMaxCachedGraphs) return nullptr;

  auto cg = std::make_unique<CachedGraph>();
  cg->count = count;
  cg->stages.resize(stages.size());
  for (std::size_t si = 0; si < stages.size(); ++si) {
    auto& k = cg->stages[si];
    const auto& s = stages[si];
    k.kind = s.kind;
    k.hook = s.hook;
    k.chain = s.chain;
    k.njobs = s.njobs;
    k.sign = s.sign;
    if (s.kind == Stage::Kind::kPasses)
      for (int a = 0; a < 3; ++a) {
        k.masked[a] = s.passes[a].lines != nullptr;
        k.nlines[a] = s.passes[a].nlines;
        k.hash[a] = hash[si][a];
        if (s.passes[a].lines)
          k.lines[a].assign(s.passes[a].lines, s.passes[a].lines + s.passes[a].nlines);
      }
  }

  // Per-batch chains: each member threads through the per-batch stages in
  // order. Pass stages expand to line-chunk nodes bracketed by gates (the
  // all-to-all dependency between consecutive passes of one member — a pass
  // reads every line the previous pass wrote); hook stages are one raw node
  // each, optionally chained to the same hook of the previous member in its
  // `chain` run (the fixed-order-reduction device). Members share no edges
  // otherwise, so independent batches pipeline through the stages freely.
  // Trailing join stages gate on every member's tail and then fan out their
  // job nodes.
  exec::TaskGraph& g = cg->graph;
  std::vector<exec::TaskGraph::NodeId> tail(count);
  std::vector<char> has_tail(count, 0);
  // Last batch member's hook node per stage (valid while building member b
  // for members < b): the chain predecessor.
  std::array<exec::TaskGraph::NodeId, kMaxPipelineStages> prev_hook{};
  std::vector<exec::TaskGraph::NodeId> chunk_ids;
  for (std::size_t b = 0; b < count; ++b) {
    for (std::size_t si = 0; si < stages.size(); ++si) {
      const auto& k = cg->stages[si];
      if (k.kind == Stage::Kind::kJoin) continue;  // built after the loop
      if (k.kind == Stage::Kind::kHook) {
        const auto id = g.add_node(&run_hook_node, (static_cast<std::uint64_t>(si) << 32) | b);
        if (has_tail[b]) g.add_edge(tail[b], id);
        if (k.chain > 1 && b % k.chain != 0) g.add_edge(prev_hook[si], id);
        prev_hook[si] = id;
        tail[b] = id;
        has_tail[b] = 1;
        continue;
      }
      for (int a = 0; a < 3; ++a) {
        const std::size_t nlines = k.nlines[a];
        const std::uint32_t* lines = k.masked[a] ? k.lines[a].data() : nullptr;
        const int sign = k.sign;
        const std::size_t len = dims_[a];
        if (nlines == 0 || len == 0) continue;
        const std::size_t min_lines = std::max<std::size_t>(1, 2048 / len);
        const std::size_t per =
            std::max(min_lines, (nlines + kMaxNodesPerPass - 1) / kMaxNodesPerPass);
        chunk_ids.clear();
        for (std::size_t l0 = 0; l0 < nlines; l0 += per) {
          const std::size_t l1 = std::min(nlines, l0 + per);
          const exec::TaskGraph::NodeId id =
              g.add_node([this, si, a, sign, lines, l0, l1, b](void* p) {
                run_lines(static_cast<const ReplayCtx*>(p)->st[si].data, a, sign, lines,
                          l0, l1, b);
              });
          if (has_tail[b]) g.add_edge(tail[b], id);
          chunk_ids.push_back(id);
        }
        tail[b] = chunk_ids.size() == 1 ? chunk_ids[0] : g.add_gate(chunk_ids);
        has_tail[b] = 1;
      }
    }
  }
  // Trailing joins: a gate collects the previous level (all member tails,
  // or the previous join's jobs), then the job nodes fan out from it.
  std::vector<exec::TaskGraph::NodeId> level;
  for (std::size_t b = 0; b < count; ++b)
    if (has_tail[b]) level.push_back(tail[b]);
  for (std::size_t si = 0; si < stages.size(); ++si) {
    const auto& k = cg->stages[si];
    if (k.kind != Stage::Kind::kJoin) continue;
    const exec::TaskGraph::NodeId gate =
        level.size() == 1 ? level[0] : g.add_gate(level);
    level.clear();
    for (std::size_t j = 0; j < k.njobs; ++j) {
      const auto id = g.add_node(&run_hook_node, (static_cast<std::uint64_t>(si) << 32) | j);
      g.add_edge(gate, id);
      level.push_back(id);
    }
  }
  g.seal();
  cache_.push_back(std::move(cg));
  return cache_.back().get();
}

void Fft3D::run_stages(std::size_t count, std::span<const Stage> stages) const {
  // One batched dispatch per stage; every hook call and per-line kernel is
  // the same serial code as the corresponding graph node, so this path is
  // bit-identical to the replay.
  for (const Stage& s : stages) {
    switch (s.kind) {
      case Stage::Kind::kHook:
        if (s.chain > 1) {
          // Chained hooks: parallel over runs, serial in batch order inside
          // a run (the same order the graph edges enforce).
          const std::size_t ngroups = (count + s.chain - 1) / s.chain;
          exec::parallel_for(ngroups, [&](std::size_t gb, std::size_t ge) {
            for (std::size_t gi = gb; gi < ge; ++gi) {
              const std::size_t b1 = std::min(count, (gi + 1) * s.chain);
              for (std::size_t b = gi * s.chain; b < b1; ++b) s.hook(s.user, b);
            }
          });
        } else {
          exec::parallel_for(count, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) s.hook(s.user, i);
          });
        }
        break;
      case Stage::Kind::kPasses:
        for (int a = 0; a < 3; ++a)
          axis_pass_many(s.data, count, a, s.sign, s.passes[a].lines, s.passes[a].nlines);
        break;
      case Stage::Kind::kJoin:
        exec::parallel_for(s.njobs, [&](std::size_t b, std::size_t e) {
          for (std::size_t j = b; j < e; ++j) s.hook(s.user, j);
        });
        break;
    }
  }
}

void Fft3D::run_pipeline(std::size_t count, std::span<const Stage> stages) const {
  if (count == 0) return;
  validate_stages(stages);
  if (path_ == ExecPath::kTaskGraph) {
    if (CachedGraph* cg = graph_for(count, stages)) {
      std::array<StageState, kMaxPipelineStages> st;
      for (std::size_t si = 0; si < stages.size(); ++si)
        st[si] = StageState{stages[si].hook, stages[si].user, stages[si].data};
      ReplayCtx ctx{st.data()};
      cg->graph.replay(&ctx);
      return;
    }
    // Cache full: fall through to the staged execution (identical results).
  }
  run_stages(count, stages);
}

void Fft3D::dispatch(Complex* data, std::size_t count, int sign,
                     const std::array<PassSpec, 3>& passes, BatchHook prologue,
                     BatchHook epilogue, void* user) const {
  // The historical hooked-transform shape as a 1–3 stage pipeline.
  std::array<Stage, 3> st;
  std::size_t n = 0;
  if (prologue) st[n++] = Stage::make_hook(prologue, user);
  st[n++] = Stage::make_passes(sign, data, passes);
  if (epilogue) st[n++] = Stage::make_hook(epilogue, user);
  run_pipeline(count, {st.data(), n});
}

void Fft3D::transform_many(Complex* data, std::size_t count, int sign) const {
  const std::size_t n0 = dims_[0], n1 = dims_[1], n2 = dims_[2];
  dispatch(data, count, sign,
           {PassSpec{nullptr, n1 * n2}, PassSpec{nullptr, n0 * n2}, PassSpec{nullptr, n0 * n1}},
           nullptr, nullptr, nullptr);
}

void Fft3D::forward(Complex* data) const { transform_many(data, 1, -1); }

void Fft3D::inverse(Complex* data) const { transform_many(data, 1, +1); }

void Fft3D::inverse_scaled(Complex* data) const {
  transform_many(data, 1, +1);
  const double inv = 1.0 / static_cast<double>(size());
  const std::size_t n = size();
  exec::parallel_for(
      n, [&](std::size_t b, std::size_t e) { for (std::size_t i = b; i < e; ++i) data[i] *= inv; },
      4096);
}

void Fft3D::forward_many(Complex* data, std::size_t count) const {
  transform_many(data, count, -1);
}

void Fft3D::inverse_many(Complex* data, std::size_t count) const {
  transform_many(data, count, +1);
}

void Fft3D::inverse_many_active(Complex* data, std::size_t count,
                                std::span<const std::uint32_t> x_lines,
                                std::span<const std::uint32_t> y_lines,
                                BatchHook prologue, void* user) const {
  const std::size_t n0 = dims_[0], n1 = dims_[1];
  dispatch(data, count, +1,
           {PassSpec{x_lines.data(), x_lines.size()}, PassSpec{y_lines.data(), y_lines.size()},
            PassSpec{nullptr, n0 * n1}},
           prologue, nullptr, user);
}

void Fft3D::forward_many_active(Complex* data, std::size_t count,
                                std::span<const std::uint32_t> y_lines,
                                std::span<const std::uint32_t> z_lines,
                                BatchHook epilogue, void* user) const {
  const std::size_t n1 = dims_[1], n2 = dims_[2];
  dispatch(data, count, -1,
           {PassSpec{nullptr, n1 * n2}, PassSpec{y_lines.data(), y_lines.size()},
            PassSpec{z_lines.data(), z_lines.size()}},
           nullptr, epilogue, user);
}

}  // namespace pwdft::fft
