#include "fft/fft3d.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pwdft::fft {

Fft3D::Fft3D(std::array<std::size_t, 3> dims)
    : dims_(dims), plan_x_(dims[0]), plan_y_(dims[1]), plan_z_(dims[2]) {
  const std::size_t nmax = std::max({dims[0], dims[1], dims[2]});
  line_out_.resize(nmax);
  work_.resize(nmax);
}

void Fft3D::axis_pass(Complex* data, int axis, int sign) {
  const std::size_t n0 = dims_[0], n1 = dims_[1], n2 = dims_[2];
  if (axis == 0) {
    const std::size_t nlines = n1 * n2;
    for (std::size_t l = 0; l < nlines; ++l) {
      Complex* base = data + l * n0;
      plan_x_.execute(base, 1, line_out_.data(), work_.data(), sign);
      std::copy_n(line_out_.data(), n0, base);
    }
  } else if (axis == 1) {
    for (std::size_t z = 0; z < n2; ++z) {
      for (std::size_t x = 0; x < n0; ++x) {
        Complex* base = data + x + n0 * n1 * z;
        plan_y_.execute(base, n0, line_out_.data(), work_.data(), sign);
        for (std::size_t y = 0; y < n1; ++y) base[y * n0] = line_out_[y];
      }
    }
  } else {
    const std::size_t stride = n0 * n1;
    for (std::size_t y = 0; y < n1; ++y) {
      for (std::size_t x = 0; x < n0; ++x) {
        Complex* base = data + x + n0 * y;
        plan_z_.execute(base, stride, line_out_.data(), work_.data(), sign);
        for (std::size_t z = 0; z < n2; ++z) base[z * stride] = line_out_[z];
      }
    }
  }
}

void Fft3D::transform(Complex* data, int sign) {
  axis_pass(data, 0, sign);
  axis_pass(data, 1, sign);
  axis_pass(data, 2, sign);
}

void Fft3D::forward(Complex* data) { transform(data, -1); }

void Fft3D::inverse(Complex* data) { transform(data, +1); }

void Fft3D::inverse_scaled(Complex* data) {
  transform(data, +1);
  const double inv = 1.0 / static_cast<double>(size());
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) data[i] *= inv;
}

void Fft3D::forward_many(Complex* data, std::size_t count) {
  const std::size_t n = size();
  for (std::size_t b = 0; b < count; ++b) transform(data + b * n, -1);
}

void Fft3D::inverse_many(Complex* data, std::size_t count) {
  const std::size_t n = size();
  for (std::size_t b = 0; b < count; ++b) transform(data + b * n, +1);
}

}  // namespace pwdft::fft
