#include "fft/fft3d.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/exec.hpp"

namespace pwdft::fft {

Fft3D::Fft3D(std::array<std::size_t, 3> dims, RadixKernel kernel)
    : dims_(dims),
      plan_x_(dims[0], kernel),
      plan_y_(dims[1], kernel),
      plan_z_(dims[2], kernel) {}

void Fft3D::axis_pass_many(Complex* data, std::size_t count, int axis, int sign,
                           const std::uint32_t* lines, std::size_t nlines) const {
  const std::size_t n0 = dims_[0], n1 = dims_[1];
  const std::size_t grid = size();
  const FftPlan1D& plan = axis == 0 ? plan_x_ : axis == 1 ? plan_y_ : plan_z_;
  const std::size_t len = dims_[axis];
  const std::size_t stride = axis == 0 ? 1 : axis == 1 ? n0 : n0 * n1;
  const std::size_t total = count * nlines;
  if (total == 0 || len == 0) return;

  // Keep each chunk >= ~32 KiB of line data so dispatch stays negligible.
  const std::size_t grain = std::max<std::size_t>(1, 2048 / len);

  exec::parallel_for(
      total,
      [&](std::size_t b, std::size_t e) {
        auto& ws = exec::workspace();
        Complex* line_out = ws.cbuf(exec::Slot::fft_line, len).data();
        Complex* work = ws.cbuf(exec::Slot::fft_work, len).data();
        for (std::size_t t = b; t < e; ++t) {
          const std::size_t batch = t / nlines;
          const std::size_t li = t - batch * nlines;
          const std::size_t l = lines ? lines[li] : li;
          Complex* base;
          if (axis == 0) {
            base = data + batch * grid + l * n0;  // l = y + n1*z
          } else if (axis == 1) {
            const std::size_t x = l % n0, z = l / n0;
            base = data + batch * grid + x + n0 * n1 * z;
          } else {
            base = data + batch * grid + l;  // l = x + n0*y
          }
          plan.execute(base, stride, line_out, work, sign);
          for (std::size_t k = 0; k < len; ++k) base[k * stride] = line_out[k];
        }
      },
      grain);
}

void Fft3D::transform_many(Complex* data, std::size_t count, int sign) const {
  const std::size_t n0 = dims_[0], n1 = dims_[1], n2 = dims_[2];
  axis_pass_many(data, count, 0, sign, nullptr, n1 * n2);
  axis_pass_many(data, count, 1, sign, nullptr, n0 * n2);
  axis_pass_many(data, count, 2, sign, nullptr, n0 * n1);
}

void Fft3D::forward(Complex* data) const { transform_many(data, 1, -1); }

void Fft3D::inverse(Complex* data) const { transform_many(data, 1, +1); }

void Fft3D::inverse_scaled(Complex* data) const {
  transform_many(data, 1, +1);
  const double inv = 1.0 / static_cast<double>(size());
  const std::size_t n = size();
  exec::parallel_for(
      n, [&](std::size_t b, std::size_t e) { for (std::size_t i = b; i < e; ++i) data[i] *= inv; },
      4096);
}

void Fft3D::forward_many(Complex* data, std::size_t count) const {
  transform_many(data, count, -1);
}

void Fft3D::inverse_many(Complex* data, std::size_t count) const {
  transform_many(data, count, +1);
}

void Fft3D::inverse_many_active(Complex* data, std::size_t count,
                                std::span<const std::uint32_t> x_lines,
                                std::span<const std::uint32_t> y_lines) const {
  const std::size_t n0 = dims_[0], n1 = dims_[1];
  axis_pass_many(data, count, 0, +1, x_lines.data(), x_lines.size());
  axis_pass_many(data, count, 1, +1, y_lines.data(), y_lines.size());
  axis_pass_many(data, count, 2, +1, nullptr, n0 * n1);
}

void Fft3D::forward_many_active(Complex* data, std::size_t count,
                                std::span<const std::uint32_t> y_lines,
                                std::span<const std::uint32_t> z_lines) const {
  const std::size_t n1 = dims_[1], n2 = dims_[2];
  axis_pass_many(data, count, 0, -1, nullptr, n1 * n2);
  axis_pass_many(data, count, 1, -1, y_lines.data(), y_lines.size());
  axis_pass_many(data, count, 2, -1, z_lines.data(), z_lines.size());
}

}  // namespace pwdft::fft
