#include "fft/fft3d.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/check.hpp"
#include "common/exec.hpp"

namespace pwdft::fft {

namespace {

/// Replay argument block shared by every node of a cached graph: the batch
/// base pointer varies per call, the graph structure does not.
struct ReplayCtx {
  Complex* data;
  void* user;  ///< opaque hook state (scatter/gather sources and sinks)
};

std::uint64_t fnv1a(const std::uint32_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Fixed node sizing: at least the fork-join grain's worth of line data per
/// node (so a node amortizes its scheduling cost) and at most 32 nodes per
/// pass per batch member. Width-independent — the graph shape affects only
/// scheduling, never results.
constexpr std::size_t kMaxNodesPerPass = 32;

/// Defensive bound on cached replay shapes per Fft3D; novel shapes beyond it
/// fall back to fork-join instead of growing without limit.
constexpr std::size_t kMaxCachedGraphs = 64;

}  // namespace

/// One cached replay shape: the key fields plus owned copies of the line
/// masks (the graph's nodes point into them, so the cache never dangles if
/// the caller's mask storage goes away).
struct Fft3D::CachedGraph {
  int sign = 0;
  std::size_t count = 0;
  std::array<bool, 3> masked{};
  std::array<std::size_t, 3> nlines{};
  std::array<std::uint64_t, 3> hash{};
  BatchHook prologue = nullptr;
  BatchHook epilogue = nullptr;
  std::array<std::vector<std::uint32_t>, 3> lines;
  exec::TaskGraph graph;
};

ExecPath Fft3D::path_env_default() {
  static const ExecPath p = [] {
    if (const char* e = std::getenv("PWDFT_FFT_DISPATCH")) {
      const std::string_view v(e);
      if (v == "forkjoin") return ExecPath::kForkJoin;
      if (v == "graph") return ExecPath::kTaskGraph;
      // Fail fast: a typo must not silently select the wrong dispatch path
      // for an entire experiment.
      PWDFT_CHECK(false, "PWDFT_FFT_DISPATCH must be 'forkjoin' or 'graph'");
    }
    return ExecPath::kTaskGraph;
  }();
  return p;
}

Fft3D::Fft3D(std::array<std::size_t, 3> dims, RadixKernel kernel, ExecPath path)
    : dims_(dims),
      path_(path == ExecPath::kAuto ? path_env_default() : path),
      plan_x_(dims[0], kernel),
      plan_y_(dims[1], kernel),
      plan_z_(dims[2], kernel) {}

Fft3D::~Fft3D() = default;

void Fft3D::run_lines(Complex* data, int axis, int sign, const std::uint32_t* lines,
                      std::size_t li0, std::size_t li1, std::size_t batch) const {
  const std::size_t n0 = dims_[0], n1 = dims_[1];
  const std::size_t grid = size();
  const FftPlan1D& plan = axis == 0 ? plan_x_ : axis == 1 ? plan_y_ : plan_z_;
  const std::size_t len = dims_[axis];
  const std::size_t stride = axis == 0 ? 1 : axis == 1 ? n0 : n0 * n1;
  auto& ws = exec::workspace();
  Complex* line_out = ws.cbuf(exec::Slot::fft_line, len).data();
  Complex* work = ws.cbuf(exec::Slot::fft_work, len).data();
  Complex* gbase = data + batch * grid;
  for (std::size_t li = li0; li < li1; ++li) {
    const std::size_t l = lines ? lines[li] : li;
    Complex* base;
    if (axis == 0) {
      base = gbase + l * n0;  // l = y + n1*z
    } else if (axis == 1) {
      const std::size_t x = l % n0, z = l / n0;
      base = gbase + x + n0 * n1 * z;
    } else {
      base = gbase + l;  // l = x + n0*y
    }
    plan.execute(base, stride, line_out, work, sign);
    for (std::size_t k = 0; k < len; ++k) base[k * stride] = line_out[k];
  }
}

void Fft3D::axis_pass_many(Complex* data, std::size_t count, int axis, int sign,
                           const std::uint32_t* lines, std::size_t nlines) const {
  const std::size_t len = dims_[axis];
  const std::size_t total = count * nlines;
  if (total == 0 || len == 0) return;

  // Keep each chunk >= ~32 KiB of line data so dispatch stays negligible.
  const std::size_t grain = std::max<std::size_t>(1, 2048 / len);

  exec::parallel_for(
      total,
      [&](std::size_t b, std::size_t e) {
        // Split the flattened (batch, line) range at batch boundaries; each
        // maximal run goes through the same serial kernel as a graph node.
        std::size_t t = b;
        while (t < e) {
          const std::size_t batch = t / nlines;
          const std::size_t li = t - batch * nlines;
          const std::size_t run = std::min(nlines - li, e - t);
          run_lines(data, axis, sign, lines, li, li + run, batch);
          t += run;
        }
      },
      grain);
}

Fft3D::CachedGraph* Fft3D::graph_for(std::size_t count, int sign,
                                     const std::array<PassSpec, 3>& passes,
                                     BatchHook prologue, BatchHook epilogue) const {
  std::array<std::uint64_t, 3> hash{};
  for (int a = 0; a < 3; ++a)
    hash[a] = passes[a].lines ? fnv1a(passes[a].lines, passes[a].nlines) : 0;

  std::lock_guard<std::mutex> lk(cache_mutex_);
  for (const auto& cg : cache_) {
    if (cg->sign != sign || cg->count != count || cg->prologue != prologue ||
        cg->epilogue != epilogue)
      continue;
    bool same = true;
    for (int a = 0; a < 3; ++a) {
      same = same && cg->masked[a] == (passes[a].lines != nullptr) &&
             cg->nlines[a] == passes[a].nlines && cg->hash[a] == hash[a];
      // The hash only prunes; the stored copy makes the match exact (a
      // 64-bit collision would otherwise replay the wrong line set).
      if (same && passes[a].lines)
        same = std::equal(cg->lines[a].begin(), cg->lines[a].end(), passes[a].lines);
    }
    if (same) return cg.get();
  }
  if (cache_.size() >= kMaxCachedGraphs) return nullptr;

  auto cg = std::make_unique<CachedGraph>();
  cg->sign = sign;
  cg->count = count;
  cg->prologue = prologue;
  cg->epilogue = epilogue;
  for (int a = 0; a < 3; ++a) {
    cg->masked[a] = passes[a].lines != nullptr;
    cg->nlines[a] = passes[a].nlines;
    cg->hash[a] = hash[a];
    if (passes[a].lines)
      cg->lines[a].assign(passes[a].lines, passes[a].lines + passes[a].nlines);
  }

  // Per-batch chains: prologue -> pass0 chunks -> gate -> pass1 chunks ->
  // gate -> pass2 chunks -> epilogue. Gates are empty nodes standing in for
  // the all-to-all dependency between consecutive passes of one member (a
  // pass reads every line the previous pass wrote); members share no edges,
  // so independent batches pipeline through the passes freely.
  exec::TaskGraph& g = cg->graph;
  for (std::size_t b = 0; b < count; ++b) {
    bool has_gate = false;
    exec::TaskGraph::NodeId gate = 0;
    if (prologue) {
      gate = g.add_node([prologue, b](void* p) {
        prologue(static_cast<const ReplayCtx*>(p)->user, b);
      });
      has_gate = true;
    }
    for (int a = 0; a < 3; ++a) {
      const std::size_t nlines = cg->nlines[a];
      const std::uint32_t* lines = cg->masked[a] ? cg->lines[a].data() : nullptr;
      const std::size_t len = dims_[a];
      if (nlines == 0 || len == 0) continue;
      const std::size_t min_lines = std::max<std::size_t>(1, 2048 / len);
      const std::size_t per =
          std::max(min_lines, (nlines + kMaxNodesPerPass - 1) / kMaxNodesPerPass);
      std::vector<exec::TaskGraph::NodeId> chunk_ids;
      for (std::size_t l0 = 0; l0 < nlines; l0 += per) {
        const std::size_t l1 = std::min(nlines, l0 + per);
        const exec::TaskGraph::NodeId id =
            g.add_node([this, a, sign, lines, l0, l1, b](void* p) {
              run_lines(static_cast<const ReplayCtx*>(p)->data, a, sign, lines, l0, l1, b);
            });
        if (has_gate) g.add_edge(gate, id);
        chunk_ids.push_back(id);
      }
      if (chunk_ids.size() == 1) {
        gate = chunk_ids[0];
      } else {
        gate = g.add_node([](void*) {});
        for (const auto id : chunk_ids) g.add_edge(id, gate);
      }
      has_gate = true;
    }
    if (epilogue) {
      const exec::TaskGraph::NodeId id = g.add_node([epilogue, b](void* p) {
        epilogue(static_cast<const ReplayCtx*>(p)->user, b);
      });
      if (has_gate) g.add_edge(gate, id);
    }
  }
  g.seal();
  cache_.push_back(std::move(cg));
  return cache_.back().get();
}

void Fft3D::dispatch(Complex* data, std::size_t count, int sign,
                     const std::array<PassSpec, 3>& passes, BatchHook prologue,
                     BatchHook epilogue, void* user) const {
  if (count == 0) return;
  if (path_ == ExecPath::kTaskGraph) {
    if (CachedGraph* cg = graph_for(count, sign, passes, prologue, epilogue)) {
      ReplayCtx ctx{data, user};
      cg->graph.replay(&ctx);
      return;
    }
    // Cache full: fall through to fork-join (identical results).
  }
  // Fork-join path: hooks run as their own batch-parallel stages; every
  // per-line kernel and per-batch hook is the same serial code as the graph
  // nodes, so the two paths are bit-identical.
  if (prologue) {
    exec::parallel_for(count, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) prologue(user, i);
    });
  }
  for (int a = 0; a < 3; ++a)
    axis_pass_many(data, count, a, sign, passes[a].lines, passes[a].nlines);
  if (epilogue) {
    exec::parallel_for(count, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) epilogue(user, i);
    });
  }
}

void Fft3D::transform_many(Complex* data, std::size_t count, int sign) const {
  const std::size_t n0 = dims_[0], n1 = dims_[1], n2 = dims_[2];
  dispatch(data, count, sign,
           {PassSpec{nullptr, n1 * n2}, PassSpec{nullptr, n0 * n2}, PassSpec{nullptr, n0 * n1}},
           nullptr, nullptr, nullptr);
}

void Fft3D::forward(Complex* data) const { transform_many(data, 1, -1); }

void Fft3D::inverse(Complex* data) const { transform_many(data, 1, +1); }

void Fft3D::inverse_scaled(Complex* data) const {
  transform_many(data, 1, +1);
  const double inv = 1.0 / static_cast<double>(size());
  const std::size_t n = size();
  exec::parallel_for(
      n, [&](std::size_t b, std::size_t e) { for (std::size_t i = b; i < e; ++i) data[i] *= inv; },
      4096);
}

void Fft3D::forward_many(Complex* data, std::size_t count) const {
  transform_many(data, count, -1);
}

void Fft3D::inverse_many(Complex* data, std::size_t count) const {
  transform_many(data, count, +1);
}

void Fft3D::inverse_many_active(Complex* data, std::size_t count,
                                std::span<const std::uint32_t> x_lines,
                                std::span<const std::uint32_t> y_lines,
                                BatchHook prologue, void* user) const {
  const std::size_t n0 = dims_[0], n1 = dims_[1];
  dispatch(data, count, +1,
           {PassSpec{x_lines.data(), x_lines.size()}, PassSpec{y_lines.data(), y_lines.size()},
            PassSpec{nullptr, n0 * n1}},
           prologue, nullptr, user);
}

void Fft3D::forward_many_active(Complex* data, std::size_t count,
                                std::span<const std::uint32_t> y_lines,
                                std::span<const std::uint32_t> z_lines,
                                BatchHook epilogue, void* user) const {
  const std::size_t n1 = dims_[1], n2 = dims_[2];
  dispatch(data, count, -1,
           {PassSpec{nullptr, n1 * n2}, PassSpec{y_lines.data(), y_lines.size()},
            PassSpec{z_lines.data(), z_lines.size()}},
           nullptr, epilogue, user);
}

}  // namespace pwdft::fft
