#pragma once

/// \file setup.hpp
/// Immutable per-problem context: crystal + cutoff + the two FFT grids
/// (wavefunction grid for Fock exchange, dense grid for density/potentials,
/// paper §4: e.g. Si1536 -> 60x90x120 and 120x180x240) + the G sphere and
/// its scatter maps.

#include <vector>

#include "crystal/crystal.hpp"
#include "grid/fftgrid.hpp"
#include "grid/gsphere.hpp"
#include "grid/transforms.hpp"

namespace pwdft::ham {

struct PlanewaveSetup {
  /// dense_factor doubles the density grid relative to the wavefunction
  /// grid (2 reproduces the paper; 1 is a cheaper mode for tests).
  PlanewaveSetup(crystal::Crystal c, double ecut_ha, int dense_factor = 2);

  crystal::Crystal crystal;
  double ecut;
  int dense_factor;
  grid::FftGrid wfc_grid;
  grid::FftGrid dense_grid;
  grid::GSphere sphere;
  /// Sphere -> grid index maps plus the FFT line masks used by the fused
  /// transforms (grid/transforms.hpp). The raw index map is smap_*.map.
  grid::SphereMap smap_wfc;
  grid::SphereMap smap_dense;
  /// Convenience views of the raw index maps.
  const std::vector<std::size_t>& map_wfc() const { return smap_wfc.map; }
  const std::vector<std::size_t>& map_dense() const { return smap_dense.map; }
  std::vector<double> dense_g2;  ///< |G|^2 at every dense-grid point

  double volume() const { return crystal.lattice().volume(); }
  std::size_t n_g() const { return sphere.size(); }
  std::size_t n_wfc() const { return wfc_grid.size(); }
  std::size_t n_dense() const { return dense_grid.size(); }
  /// Real-space quadrature weight on the dense grid: Omega / Ndense.
  double weight_dense() const { return volume() / static_cast<double>(n_dense()); }
  std::size_t n_bands() const { return crystal.n_occupied_bands(); }
};

}  // namespace pwdft::ham
