#pragma once

/// \file fock.hpp
/// The Fock exchange operator, Alg. 2 of the paper.
///
/// (VX psi_j)(r) = -alpha sum_i (f_i/2) phi_i(r) Integral K(r-r') phi_i*(r') psi_j(r') dr'
///
/// Orbitals phi are band-distributed; each band i is broadcast to all ranks
/// (paper: MPI_Bcast "in an as-needed basis"), then every rank solves its
/// local Poisson-like equations by FFT. Implementation options mirror the
/// paper's optimization steps (§3.2):
///   - batched:               batch the pair-density FFTs (step 2)
///   - single_precision_comm: broadcast wavefunctions as complex<float> (step 4)
///   - overlap:               prefetch the next window's broadcasts on the
///                            engine's async lane while the current window
///                            computes (step 5)
///   - band_window:           bands whose (band x batch) pair solves are
///                            distributed across the engine as one window
/// All options are numerically equivalent except single_precision_comm,
/// whose rounding is bounded by tests (paper: "negligible changes").

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fft/fft3d.hpp"
#include "ham/setup.hpp"
#include "linalg/matrix.hpp"
#include "parallel/comm.hpp"
#include "parallel/distribution.hpp"
#include "parallel/overlap.hpp"
#include "xc/hybrid.hpp"

namespace pwdft::ham {

/// PWDFT_BAND_REBALANCE resolution: 1/on => true, unset/0/off => false.
/// The dynamic redistribution is opt-in (it is bit-identical but moves
/// data, so the flat layout stays the default).
bool band_rebalance_env_default();

struct FockOptions {
  bool batched = true;
  std::size_t batch_size = 8;
  bool single_precision_comm = false;
  /// Prefetch the next window's orbital broadcasts on the engine's async
  /// lane while the current window computes (paper §3.2 step 5). Defaults
  /// to the PWDFT_COMM_OVERLAP resolution: overlap is the default
  /// execution mode, shared with the transpose overlap knob.
  bool overlap = par::comm_overlap_env_default();
  /// Bands per compute window: the band loop broadcasts a window of
  /// orbitals, then distributes the (band x batch) pair solves of the whole
  /// window across the exec engine. Each pair writes its contribution into
  /// a window-indexed buffer and the window is reduced in exact band order,
  /// so the result is independent of both the window size and the engine
  /// width (bit-identical at any thread count; docs/threading.md).
  /// Memory: the window buffer pins band_window * ncol * n_wfc complex
  /// doubles in the applying thread's arena (band_window extra copies of
  /// the block being applied to) — raise it for wide engines, lower it
  /// when memory-bound.
  std::size_t band_window = 4;
  /// Hybrid band×line scheduling: a window whose (band x batch) task count
  /// is below the engine width runs its tasks serially on the applying
  /// thread so each task's batched pair FFTs win the whole pool (line-level
  /// parallelism) instead of executing inline inside an underfilled band
  /// loop. Bit-identical either way (docs/threading.md).
  bool band_line_split = true;
  /// Dispatch path of the operator's internal wfc-grid FFTs. With the
  /// default (kAuto -> task graphs) every pair-solve block replays a cached
  /// persistent graph keyed by its block shape — one pool wake per batched
  /// transform instead of one fork-join per axis pass. Bit-identical to
  /// kForkJoin at any width (tests/test_exec.cpp pins both modes).
  fft::ExecPath fft_dispatch = fft::ExecPath::kAuto;
  /// Whole-operator pipeline mode of the batched pair solves: kFused chains
  /// pair-density multiply → forward passes → kernel multiply → inverse
  /// passes → write-out into ONE Fft3D::run_pipeline call per (band, block)
  /// task — a single cached-graph replay instead of two replays plus three
  /// serial loops — so the interior multiplies parallelize inside the same
  /// graph as their FFTs. kStaged keeps the per-stage formulation.
  /// Bit-identical at any width. kAuto resolves PWDFT_OPERATOR_PIPELINE
  /// (or inherits the Hamiltonian-level choice when owned by one).
  fft::PipelineMode op_pipeline = fft::PipelineMode::kAuto;
  /// Dynamic band redistribution of the pair-solve work (HONPAS-style,
  /// Shang et al. arXiv:2009.03555): apply_add() times its local pair-solve
  /// loop, allreduces the per-rank seconds, and greedily repartitions the
  /// applied block's columns (par::CostPartition::balance) so measured cost
  /// — not column count — is even. Columns are shuffled to the balanced
  /// layout with one Alltoallv, solved, and shuffled back; the broadcast
  /// sequence and the per-column arithmetic are unchanged, so results are
  /// bit-identical to the static layout whatever partition the measurements
  /// produce (docs/threading.md). Defaults to the PWDFT_BAND_REBALANCE
  /// resolution (off).
  bool band_rebalance = band_rebalance_env_default();
};

class FockOperator {
 public:
  FockOperator(const PlanewaveSetup& setup, xc::HybridParams hybrid, FockOptions opt = {});

  /// Registers the exchange orbitals Phi (band layout: local columns of the
  /// global band partition `bands`) with global occupations. Converts the
  /// local orbitals to the real-space wavefunction grid once.
  void set_orbitals(const CMatrix& phi_local, std::span<const double> occ_global,
                    const par::BlockPartition& bands, par::Comm& comm);

  bool has_orbitals() const { return !phi_real_.empty(); }

  /// y_local += VX * psi_local (sphere coefficients, any column count).
  /// Collective over comm: Alg. 2's broadcast loop over all global bands.
  void apply_add(const CMatrix& psi_local, CMatrix& y_local, par::Comm& comm);

  /// E_X = (1/2) sum_j f_j <psi_j | VX psi_j> over all ranks' bands.
  double exchange_energy(const CMatrix& psi_local, std::span<const double> occ_local,
                         par::Comm& comm);

  FockOptions& options() { return opt_; }
  const FockOptions& options() const { return opt_; }
  const xc::HybridParams& hybrid() const { return hybrid_; }

  /// Number of pair Poisson solves performed since construction
  /// (instrumentation for the bench harness; paper: ~95% of all FLOPs).
  std::uint64_t pair_solves() const { return pair_solves_; }
  /// Number of orbital broadcasts issued (Alg. 2 line 4).
  std::uint64_t broadcasts() const { return broadcasts_; }

  /// The column partition the last rebalanced apply_add() solved in (the
  /// identity layout until a measurement exists). Instrumentation for
  /// tests/benches.
  const par::CostPartition& rebalance_partition() const { return bal_; }
  /// Overrides the measured per-rank pair-solve seconds used by the next
  /// rebalanced apply_add() (test/bench hook: forces a deterministic
  /// redistribution without depending on wall-clock noise).
  void debug_set_rank_cost(std::vector<double> seconds) {
    measured_seconds_ = std::move(seconds);
  }

 private:
  /// Copies (owner) or receives (others) band `band` of the registered
  /// orbitals into `buf` on the real-space wfc grid. May run on the exec
  /// engine's async lane when overlap is enabled; the wire buffer comes from
  /// the executing thread's workspace arena.
  void fetch_orbital(std::size_t band, par::Comm& comm, std::span<Complex> buf);

  /// The Alg. 2 window pipeline over one column block; y_local += VX*psi.
  /// Handles ncol == 0 (broadcast participation only). Records the local
  /// pair-solve seconds into measured_seconds_ when `measure` is set.
  void apply_block(const CMatrix& psi_local, CMatrix& y_local, par::Comm& comm, bool measure);

  /// Rebuilds bal_ from the allreduced per-rank pair-solve seconds of the
  /// previous rebalanced apply (collective; identical on every rank).
  void update_balance(par::Comm& comm);

  const PlanewaveSetup& setup_;
  xc::HybridParams hybrid_;
  FockOptions opt_;
  /// Shared process-wide per (dims, kernel, dispatch) via fft::shared_engine.
  std::shared_ptr<fft::Fft3D> fft_wfc_;
  std::vector<double> kernel_;  ///< K(G)/Nwfc on the wavefunction grid
  par::BlockPartition bands_;
  std::vector<double> occ_;
  CMatrix phi_real_;  ///< local orbitals on the real-space wfc grid
  std::uint64_t pair_solves_ = 0;
  std::uint64_t broadcasts_ = 0;
  // Dynamic band rebalance state (band_rebalance option).
  par::CostPartition bal_;                ///< layout of the last rebalanced apply
  std::vector<double> measured_seconds_;  ///< per-rank pair-solve seconds (empty = none)
};

}  // namespace pwdft::ham
