#pragma once

/// \file density.hpp
/// Electron density evaluation (paper §3.4): each rank accumulates
/// |psi_i(r)|^2 over its local bands on the dense grid via FFTs, followed by
/// one Allreduce across all ranks.

#include <span>
#include <vector>

#include "fft/fft3d.hpp"
#include "ham/setup.hpp"
#include "linalg/matrix.hpp"
#include "parallel/comm.hpp"

namespace pwdft::ham {

/// rho(r) on the dense grid from band-distributed orbitals; occ_local are
/// the occupations of the local bands. Collective over `comm`.
///
/// `band_line_split` enables the hybrid band×line schedule: when the local
/// band count is below the engine width, the per-band transforms run as one
/// batched (band × FFT line) pass before the fixed-chunk accumulation.
/// `pipeline` (kAuto resolves PWDFT_OPERATOR_PIPELINE, default fused)
/// selects how that narrow formulation executes: kFused runs scatter →
/// inverse passes → |ψ|² chunk accumulation (chained in band order) →
/// ordered chunk reduction as ONE Fft3D::run_pipeline call — a single
/// cached-graph replay / one pool wake on the graph dispatch path — while
/// kStaged keeps the per-stage batched dispatches. All paths are
/// bit-identical at any width (docs/threading.md); tests force every
/// combination to pin the equivalence.
std::vector<double> compute_density(const PlanewaveSetup& setup, fft::Fft3D& fft_dense,
                                    const CMatrix& psi_local, std::span<const double> occ_local,
                                    par::Comm& comm, bool band_line_split = true,
                                    fft::PipelineMode pipeline = fft::PipelineMode::kAuto);

/// Integral of a dense-grid function: (Omega/N) * sum_r f(r).
double integrate_dense(const PlanewaveSetup& setup, std::span<const double> f);

/// Relative L1 density change per electron, the PT-CN SCF convergence
/// monitor (paper §4: stopping criterion 1e-6 on the density error).
double density_error(const PlanewaveSetup& setup, std::span<const double> rho_new,
                     std::span<const double> rho_old);

}  // namespace pwdft::ham
