#include "ham/fock.hpp"

#include <algorithm>
#include <future>

#include "common/check.hpp"
#include "linalg/blas.hpp"

namespace pwdft::ham {

FockOperator::FockOperator(const PlanewaveSetup& setup, xc::HybridParams hybrid, FockOptions opt)
    : setup_(setup), hybrid_(hybrid), opt_(opt), fft_wfc_(setup.wfc_grid.dims()) {
  // Precompute K(G)/N on the wavefunction grid (the paper evaluates the
  // exchange on the wavefunction grid, §4).
  const auto dims = setup_.wfc_grid.dims();
  const std::size_t n = setup_.n_wfc();
  kernel_.resize(n);
  const double inv_n = 1.0 / static_cast<double>(n);
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims[2]; ++z) {
    const int f2 = setup_.wfc_grid.freq(z, 2);
    for (std::size_t y = 0; y < dims[1]; ++y) {
      const int f1 = setup_.wfc_grid.freq(y, 1);
      for (std::size_t x = 0; x < dims[0]; ++x, ++idx) {
        const auto g = setup_.crystal.lattice().gvector(setup_.wfc_grid.freq(x, 0), f1, f2);
        kernel_[idx] = xc::exchange_kernel(grid::norm2(g), hybrid_.omega) * inv_n;
      }
    }
  }
}

void FockOperator::set_orbitals(const CMatrix& phi_local, std::span<const double> occ_global,
                                const par::BlockPartition& bands, par::Comm& comm) {
  PWDFT_CHECK(phi_local.rows() == setup_.n_g(), "FockOperator: orbital row mismatch");
  PWDFT_CHECK(occ_global.size() == bands.total(), "FockOperator: occupation count mismatch");
  PWDFT_CHECK(phi_local.cols() == bands.count(comm.rank()),
              "FockOperator: local band count mismatch");
  bands_ = bands;
  occ_.assign(occ_global.begin(), occ_global.end());

  const std::size_t nw = setup_.n_wfc();
  phi_real_.resize(nw, phi_local.cols());
  for (std::size_t j = 0; j < phi_local.cols(); ++j) {
    grid::GSphere::scatter({phi_local.col(j), setup_.n_g()}, setup_.map_wfc,
                           {phi_real_.col(j), nw});
    fft_wfc_.inverse(phi_real_.col(j));
  }
}

void FockOperator::fetch_orbital(std::size_t band, par::Comm& comm, std::vector<Complex>& buf) {
  const int owner = bands_.owner(band);
  const std::size_t nw = setup_.n_wfc();
  if (comm.rank() == owner) {
    const std::size_t local = band - bands_.offset(owner);
    std::copy_n(phi_real_.col(local), nw, buf.data());
  }
  ++broadcasts_;
  if (comm.size() == 1) return;
  if (opt_.single_precision_comm) {
    // Convert to complex<float> for the wire and back (paper §3.2 step 4).
    std::vector<std::complex<float>> wire(nw);
    if (comm.rank() == owner)
      for (std::size_t i = 0; i < nw; ++i) wire[i] = std::complex<float>(buf[i]);
    comm.bcast(wire.data(), nw, owner);
    for (std::size_t i = 0; i < nw; ++i) buf[i] = Complex(wire[i]);
  } else {
    comm.bcast(buf.data(), nw, owner);
  }
}

void FockOperator::apply_add(const CMatrix& psi_local, CMatrix& y_local, par::Comm& comm) {
  PWDFT_CHECK(has_orbitals(), "FockOperator: orbitals not set");
  PWDFT_CHECK(psi_local.rows() == setup_.n_g() && y_local.rows() == setup_.n_g() &&
                  psi_local.cols() == y_local.cols(),
              "FockOperator: shape mismatch");
  const std::size_t nw = setup_.n_wfc();
  const std::size_t ncol = psi_local.cols();
  const std::size_t nb = bands_.total();
  if (ncol == 0) {
    // Still participate in the collective broadcasts.
    std::vector<Complex> buf(nw);
    for (std::size_t i = 0; i < nb; ++i) fetch_orbital(i, comm, buf);
    return;
  }

  // psi on the real-space wavefunction grid.
  CMatrix psi_real(nw, ncol);
  for (std::size_t j = 0; j < ncol; ++j) {
    grid::GSphere::scatter({psi_local.col(j), setup_.n_g()}, setup_.map_wfc,
                           {psi_real.col(j), nw});
    fft_wfc_.inverse(psi_real.col(j));
  }

  CMatrix acc(nw, ncol, Complex{0.0, 0.0});
  const std::size_t bs = opt_.batched ? std::max<std::size_t>(1, opt_.batch_size) : 1;
  std::vector<Complex> pair(bs * nw);
  std::vector<Complex> buf_a(nw), buf_b(nw);

  // Prefetch pipeline (paper §3.2 step 5): with overlap enabled the next
  // band's broadcast runs on a helper thread while this band is computed.
  std::future<void> prefetch;
  std::vector<Complex>* current = &buf_a;
  std::vector<Complex>* next = &buf_b;
  fetch_orbital(0, comm, *current);

  for (std::size_t i = 0; i < nb; ++i) {
    if (i + 1 < nb) {
      if (opt_.overlap) {
        prefetch = std::async(std::launch::async,
                              [this, i, &comm, next] { fetch_orbital(i + 1, comm, *next); });
      } else {
        fetch_orbital(i + 1, comm, *next);
      }
    }

    const double f_i = occ_[i];
    if (f_i > 1e-12) {
      const double scale = -hybrid_.alpha * 0.5 * f_i;
      const Complex* qi = current->data();
      for (std::size_t j0 = 0; j0 < ncol; j0 += bs) {
        const std::size_t jn = std::min(bs, ncol - j0);
        for (std::size_t b = 0; b < jn; ++b) {
          const Complex* pj = psi_real.col(j0 + b);
          Complex* dst = pair.data() + b * nw;
          for (std::size_t r = 0; r < nw; ++r) dst[r] = std::conj(qi[r]) * pj[r];
        }
        fft_wfc_.forward_many(pair.data(), jn);
        for (std::size_t b = 0; b < jn; ++b) {
          Complex* dst = pair.data() + b * nw;
          for (std::size_t r = 0; r < nw; ++r) dst[r] *= kernel_[r];
        }
        fft_wfc_.inverse_many(pair.data(), jn);
        for (std::size_t b = 0; b < jn; ++b) {
          const Complex* v = pair.data() + b * nw;
          Complex* dst = acc.col(j0 + b);
          for (std::size_t r = 0; r < nw; ++r) dst[r] += scale * qi[r] * v[r];
        }
        pair_solves_ += jn;
      }
    }

    if (prefetch.valid()) prefetch.wait();
    std::swap(current, next);
  }

  // Back to sphere coefficients: c'(G) = forward(acc)(G) / (N * Omega).
  const double out_scale = 1.0 / (static_cast<double>(nw) * setup_.volume());
  std::vector<Complex> coeffs(setup_.n_g());
  for (std::size_t j = 0; j < ncol; ++j) {
    fft_wfc_.forward(acc.col(j));
    grid::GSphere::gather({acc.col(j), nw}, setup_.map_wfc, out_scale, coeffs);
    linalg::axpy(Complex{1.0, 0.0}, coeffs, {y_local.col(j), setup_.n_g()});
  }
}

double FockOperator::exchange_energy(const CMatrix& psi_local, std::span<const double> occ_local,
                                     par::Comm& comm) {
  PWDFT_CHECK(psi_local.cols() == occ_local.size(), "exchange_energy: occupation mismatch");
  CMatrix vx(setup_.n_g(), psi_local.cols(), Complex{0.0, 0.0});
  apply_add(psi_local, vx, comm);
  double e = 0.0;
  for (std::size_t j = 0; j < psi_local.cols(); ++j) {
    e += 0.5 * occ_local[j] *
         linalg::dotc({psi_local.col(j), setup_.n_g()}, {vx.col(j), setup_.n_g()}).real();
  }
  comm.allreduce_sum(&e, 1);
  return e;
}

}  // namespace pwdft::ham
