#include "ham/fock.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/exec.hpp"
#include "common/timer.hpp"
#include "grid/transforms.hpp"
#include "linalg/blas.hpp"
#include "parallel/transpose.hpp"

namespace pwdft::ham {

bool band_rebalance_env_default() { return env::flag("PWDFT_BAND_REBALANCE", false); }

namespace {

/// Stage hooks of the fused pair solve (one run_pipeline call per
/// (band-in-window, column-block) task): batch member b is column j0+b of
/// the block being applied to. Each hook runs the identical per-element
/// statements as the staged loops it replaces, so the two formulations are
/// bit-identical.
struct PairSolveHooks {
  const Complex* qi = nullptr;        ///< broadcast orbital, wfc grid
  const Complex* psi_real = nullptr;  ///< column j0 of the block, wfc grid
  Complex* pair = nullptr;            ///< jn contiguous pair densities
  const double* kern = nullptr;
  double scale = 0.0;
  Complex* out = nullptr;  ///< contribution slice for column j0
  std::size_t nw = 0;

  /// Pair density: conj(phi_i) * psi_j.
  static void form(void* user, std::size_t b) {
    const auto* c = static_cast<const PairSolveHooks*>(user);
    const Complex* pj = c->psi_real + b * c->nw;
    Complex* dst = c->pair + b * c->nw;
    for (std::size_t k = 0; k < c->nw; ++k) dst[k] = std::conj(c->qi[k]) * pj[k];
  }
  /// Poisson kernel multiply in G space (interior node between the two
  /// pass stages).
  static void kernel_mul(void* user, std::size_t b) {
    const auto* c = static_cast<const PairSolveHooks*>(user);
    Complex* dst = c->pair + b * c->nw;
    for (std::size_t k = 0; k < c->nw; ++k) dst[k] *= c->kern[k];
  }
  /// Write-out: scale * phi_i * v into the window contribution buffer.
  static void write_out(void* user, std::size_t b) {
    const auto* c = static_cast<const PairSolveHooks*>(user);
    const Complex* v = c->pair + b * c->nw;
    Complex* dst = c->out + b * c->nw;
    for (std::size_t k = 0; k < c->nw; ++k) dst[k] = c->scale * c->qi[k] * v[k];
  }
};

}  // namespace

FockOperator::FockOperator(const PlanewaveSetup& setup, xc::HybridParams hybrid, FockOptions opt)
    : setup_(setup),
      hybrid_(hybrid),
      opt_(opt),
      fft_wfc_(fft::shared_engine(setup.wfc_grid.dims(), fft::RadixKernel::kAuto, opt.fft_dispatch)) {
  if (opt_.op_pipeline == fft::PipelineMode::kAuto)
    opt_.op_pipeline = fft::pipeline_env_default();
  // Precompute K(G)/N on the wavefunction grid (the paper evaluates the
  // exchange on the wavefunction grid, §4).
  const auto dims = setup_.wfc_grid.dims();
  const std::size_t n = setup_.n_wfc();
  kernel_.resize(n);
  const double inv_n = 1.0 / static_cast<double>(n);
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims[2]; ++z) {
    const int f2 = setup_.wfc_grid.freq(z, 2);
    for (std::size_t y = 0; y < dims[1]; ++y) {
      const int f1 = setup_.wfc_grid.freq(y, 1);
      for (std::size_t x = 0; x < dims[0]; ++x, ++idx) {
        const auto g = setup_.crystal.lattice().gvector(setup_.wfc_grid.freq(x, 0), f1, f2);
        kernel_[idx] = xc::exchange_kernel(grid::norm2(g), hybrid_.omega) * inv_n;
      }
    }
  }
}

void FockOperator::set_orbitals(const CMatrix& phi_local, std::span<const double> occ_global,
                                const par::BlockPartition& bands, par::Comm& comm) {
  PWDFT_CHECK(phi_local.rows() == setup_.n_g(), "FockOperator: orbital row mismatch");
  PWDFT_CHECK(occ_global.size() == bands.total(), "FockOperator: occupation count mismatch");
  PWDFT_CHECK(phi_local.cols() == bands.count(comm.rank()),
              "FockOperator: local band count mismatch");
  bands_ = bands;
  occ_.assign(occ_global.begin(), occ_global.end());

  // All local orbitals to the real-space wfc grid as one fused batch.
  grid::sphere_to_grid_many(*fft_wfc_, setup_.smap_wfc, phi_local, phi_real_);
}

void FockOperator::fetch_orbital(std::size_t band, par::Comm& comm, std::span<Complex> buf) {
  const int owner = bands_.owner(band);
  const std::size_t nw = setup_.n_wfc();
  if (comm.rank() == owner) {
    const std::size_t local = band - bands_.offset(owner);
    std::copy_n(phi_real_.col(local), nw, buf.data());
  }
  ++broadcasts_;
  if (comm.size() == 1) return;
  if (opt_.single_precision_comm) {
    // Convert to complex<float> for the wire and back (paper §3.2 step 4).
    // The wire buffer lives in the calling thread's arena: when the fetch is
    // prefetched on the pool's async lane it uses that lane's workspace and
    // never races the compute thread's buffers.
    auto* wire = exec::workspace().fbuf(exec::Slot::fock_wire, nw).data();
    if (comm.rank() == owner)
      for (std::size_t i = 0; i < nw; ++i) wire[i] = std::complex<float>(buf[i]);
    comm.bcast(wire, nw, owner);
    for (std::size_t i = 0; i < nw; ++i) buf[i] = Complex(wire[i]);
  } else {
    comm.bcast(buf.data(), nw, owner);
  }
}

void FockOperator::apply_add(const CMatrix& psi_local, CMatrix& y_local, par::Comm& comm) {
  PWDFT_CHECK(has_orbitals(), "FockOperator: orbitals not set");
  PWDFT_CHECK(psi_local.rows() == setup_.n_g() && y_local.rows() == setup_.n_g() &&
                  psi_local.cols() == y_local.cols(),
              "FockOperator: shape mismatch");

  // Dynamic band rebalance (HONPAS-style): applies when the block being
  // applied to is laid out as the registered orbital partition on every
  // rank (the PT-CN/SCF hot path). The agreement check is itself a
  // collective, so all ranks take the same branch.
  bool rebal = false;
  if (opt_.band_rebalance && comm.size() > 1 && bands_.total() > 0) {
    double ok = psi_local.cols() == bands_.count(comm.rank()) ? 1.0 : 0.0;
    comm.allreduce_sum(&ok, 1);
    rebal = ok == static_cast<double>(comm.size());
  }
  if (!rebal) {
    apply_block(psi_local, y_local, comm, false);
    return;
  }

  update_balance(comm);
  const par::CostPartition uniform(bands_);
  if (bal_ == uniform) {
    // Identity layout (no measurement yet, or the measurements agree with
    // the near-equal split): solve in place, but keep measuring.
    apply_block(psi_local, y_local, comm, true);
    return;
  }

  // Shuffle the applied columns to the balanced layout, solve there, and
  // shuffle the contributions back (one Alltoallv each way). Every column
  // runs the identical per-element pipeline wherever it lands and the
  // broadcast sequence is column-count independent, so the result is
  // bit-identical to the static layout whatever partition the measured
  // costs produce (docs/threading.md).
  auto& ws = exec::workspace();
  CMatrix& psi_bal = ws.cmat(exec::Slot::fock_bal_psi, 0, 0);
  par::redistribute_columns(comm, uniform, bal_, psi_local, psi_bal);
  CMatrix& y_bal =
      ws.cmat(exec::Slot::fock_bal_y, setup_.n_g(), bal_.count(comm.rank()));
  y_bal.fill(Complex{0.0, 0.0});
  apply_block(psi_bal, y_bal, comm, true);
  CMatrix& y_back = ws.cmat(exec::Slot::fock_bal_back, 0, 0);
  par::redistribute_columns(comm, bal_, uniform, y_bal, y_back);
  for (std::size_t j = 0; j < psi_local.cols(); ++j)
    linalg::axpy(Complex{1.0, 0.0}, {y_back.col(j), setup_.n_g()},
                 {y_local.col(j), setup_.n_g()});
}

void FockOperator::update_balance(par::Comm& comm) {
  const int np = comm.size();
  if (bal_.parts() != np || bal_.total() != bands_.total())
    bal_ = par::CostPartition(bands_);  // identity until a measurement exists
  if (measured_seconds_.empty()) return;
  // Every rank contributes its measured slot; the allreduced vector — and
  // therefore the partition every rank computes from it — is identical
  // everywhere, keeping the shuffle collective-consistent.
  std::vector<double> secs(measured_seconds_);
  secs.resize(np, 0.0);
  comm.allreduce_sum(secs.data(), secs.size());
  // Per-column cost model: a rank's seconds smeared over the columns it
  // solved last time. Coarse (rank-level, not pair-level) but measured, and
  // enough to drain a skewed layout within a few applies.
  std::vector<double> costs(bands_.total(), 0.0);
  for (std::size_t j = 0; j < costs.size(); ++j) {
    const int o = bal_.owner(j);
    const std::size_t c = bal_.count(o);
    if (c > 0) costs[j] = secs[o] / static_cast<double>(c);
  }
  bal_ = par::CostPartition::balance(costs, np);
  measured_seconds_.clear();
}

void FockOperator::apply_block(const CMatrix& psi_local, CMatrix& y_local, par::Comm& comm,
                               bool measure) {
  const std::size_t nw = setup_.n_wfc();
  const std::size_t ncol = psi_local.cols();
  const std::size_t nb = bands_.total();
  auto& ws = exec::workspace();
  if (measure) {
    measured_seconds_.assign(comm.size(), 0.0);
  }
  if (ncol == 0) {
    // Still participate in the collective broadcasts (band order).
    auto buf = ws.cbuf(exec::Slot::fock_fetch, nw);
    for (std::size_t i = 0; i < nb; ++i) fetch_orbital(i, comm, buf);
    return;
  }

  // psi on the real-space wavefunction grid: fused scatter + batched FFT.
  CMatrix& psi_real = ws.cmat(exec::Slot::fock_psi_real, nw, ncol);
  grid::sphere_to_grid_many(*fft_wfc_, setup_.smap_wfc, psi_local, psi_real);

  CMatrix& acc = ws.cmat(exec::Slot::fock_acc, nw, ncol);
  acc.fill(Complex{0.0, 0.0});
  const std::size_t bs = opt_.batched ? std::max<std::size_t>(1, opt_.batch_size) : 1;
  const std::size_t nblocks = (ncol + bs - 1) / bs;
  const std::size_t win = std::max<std::size_t>(1, opt_.band_window);

  // Window pipeline (paper §3.2 steps 2+5): broadcast `win` bands, then
  // distribute the window's (band x batch) pair solves across the engine
  // while the next window's broadcasts run on the async lane. Every pair
  // task writes its contribution into its own slice of `contrib`; the
  // window is then reduced into `acc` in exact band order, so the result is
  // independent of the engine width AND of the window size.
  auto contrib = ws.cbuf(exec::Slot::fock_win, win * ncol * nw);
  auto fetch_bufs = ws.cbuf(exec::Slot::fock_fetch, 2 * win * nw);
  std::span<Complex> current = fetch_bufs.subspan(0, win * nw);
  std::span<Complex> next = fetch_bufs.subspan(win * nw, win * nw);

  // Fetches a window of orbital broadcasts, in band order (all ranks issue
  // the same bcast sequence whether or not they compute).
  auto fetch_window = [this, &comm, nb, nw](std::size_t b0, std::size_t n,
                                            std::span<Complex> bufs) {
    const std::size_t bn = std::min(n, nb - b0);
    for (std::size_t k = 0; k < bn; ++k)
      fetch_orbital(b0 + k, comm, bufs.subspan(k * nw, nw));
  };

  // The TaskGroup joins in-flight prefetches even if the compute section
  // throws, so a parked broadcast can never outlive `this` or `comm`.
  exec::TaskGroup prefetch;
  fetch_window(0, win, current);

  for (std::size_t w0 = 0; w0 < nb; w0 += win) {
    const std::size_t wn = std::min(win, nb - w0);
    if (w0 + win < nb) {
      if (opt_.overlap) {
        prefetch.run([=] { fetch_window(w0 + win, win, next); });
      } else {
        fetch_window(w0 + win, win, next);
      }
    }

    // One task per (band-in-window, column block): the dominant O(Ne^2)
    // loop. Each task forms its pair densities in its own thread's arena,
    // runs the batched Poisson solve inline (nested FFT parallel_for runs
    // inline on a worker), and writes scale * q_i * v into its disjoint
    // slice of `contrib`.
    const Complex* cur_p = current.data();
    Complex* contrib_p = contrib.data();
    auto pair_block = [&](std::size_t tb, std::size_t te) {
      for (std::size_t t = tb; t < te; ++t) {
        const std::size_t il = t / nblocks;
        const double f_i = occ_[w0 + il];
        if (f_i <= 1e-12) continue;
        const std::size_t j0 = (t % nblocks) * bs;
        const std::size_t jn = std::min(bs, ncol - j0);
        const double scale = -hybrid_.alpha * 0.5 * f_i;
        const Complex* qi = cur_p + il * nw;
        auto pair = exec::workspace().cbuf(exec::Slot::fock_pair, bs * nw);
        if (opt_.op_pipeline == fft::PipelineMode::kFused) {
          // The whole pair solve as one pipeline: the interior multiplies
          // are graph nodes chained between the pass stages, so the task is
          // a single cached-graph replay (keyed by the block shape jn)
          // instead of two replays bracketed by three serial loops.
          PairSolveHooks h{qi,    psi_real.col(j0),
                           pair.data(),  kernel_.data(),
                           scale, contrib_p + (il * ncol + j0) * nw,
                           nw};
          const std::array<fft::Fft3D::Stage, 5> stages = {
              fft::Fft3D::Stage::make_hook(&PairSolveHooks::form, &h),
              fft_wfc_->full_passes_stage(-1, pair.data()),
              fft::Fft3D::Stage::make_hook(&PairSolveHooks::kernel_mul, &h),
              fft_wfc_->full_passes_stage(+1, pair.data()),
              fft::Fft3D::Stage::make_hook(&PairSolveHooks::write_out, &h)};
          fft_wfc_->run_pipeline(jn, stages);
          continue;
        }
        for (std::size_t col = 0; col < jn; ++col) {
          const Complex* pj = psi_real.col(j0 + col);
          Complex* dst = pair.data() + col * nw;
          for (std::size_t k = 0; k < nw; ++k) dst[k] = std::conj(qi[k]) * pj[k];
        }
        fft_wfc_->forward_many(pair.data(), jn);
        const double* kern = kernel_.data();
        for (std::size_t col = 0; col < jn; ++col) {
          Complex* dst = pair.data() + col * nw;
          for (std::size_t k = 0; k < nw; ++k) dst[k] *= kern[k];
        }
        fft_wfc_->inverse_many(pair.data(), jn);
        for (std::size_t col = 0; col < jn; ++col) {
          const Complex* v = pair.data() + col * nw;
          Complex* dst = contrib_p + (il * ncol + j0 + col) * nw;
          for (std::size_t k = 0; k < nw; ++k) dst[k] = scale * qi[k] * v[k];
        }
      }
    };
    // Hybrid band×line schedule: a window narrower than the engine runs
    // its tasks serially here so each task's batched pair FFTs win the
    // pool — on the default dispatch path each batched transform replays
    // the persistent task graph cached for its block shape (one pool wake
    // per transform) instead of forking per axis pass. Identical per-task
    // operations either way, so the choice never changes results
    // (docs/threading.md).
    WallTimer pair_timer;
    if (opt_.band_line_split && exec::prefer_line_split(wn * nblocks)) {
      pair_block(0, wn * nblocks);
    } else {
      exec::parallel_for(wn * nblocks, pair_block);
    }
    // Rebalance cost input: the pair-solve compute only, excluding the
    // broadcast fetches and the prefetch join (whose rendezvous waits
    // reflect the imbalance being measured, not this rank's work).
    if (measure) measured_seconds_[comm.rank()] += pair_timer.seconds();
    for (std::size_t il = 0; il < wn; ++il)
      if (occ_[w0 + il] > 1e-12) pair_solves_ += ncol;

    // Deterministic reduction: every element accumulates the window's bands
    // in band order; elements are disjoint across chunks.
    Complex* acc_p = acc.data();
    exec::parallel_for_cols(
        ncol, nw, [&](std::size_t col, std::size_t r0, std::size_t len) {
          for (std::size_t il = 0; il < wn; ++il) {
            if (occ_[w0 + il] <= 1e-12) continue;
            const Complex* src = contrib_p + (il * ncol + col) * nw + r0;
            Complex* dst = acc_p + col * nw + r0;
            for (std::size_t k = 0; k < len; ++k) dst[k] += src[k];
          }
        });

    prefetch.wait();  // rethrows a failed prefetch
    std::swap(current, next);
  }

  // Back to sphere coefficients: c'(G) = forward(acc)(G) / (N * Omega), as
  // one fused batched FFT + gather.
  const double out_scale = 1.0 / (static_cast<double>(nw) * setup_.volume());
  CMatrix& coeffs = ws.cmat(exec::Slot::fock_coeffs, setup_.n_g(), ncol);
  grid::grid_to_sphere_many(*fft_wfc_, setup_.smap_wfc, acc, out_scale, coeffs);
  for (std::size_t j = 0; j < ncol; ++j)
    linalg::axpy(Complex{1.0, 0.0}, {coeffs.col(j), setup_.n_g()},
                 {y_local.col(j), setup_.n_g()});
}

double FockOperator::exchange_energy(const CMatrix& psi_local, std::span<const double> occ_local,
                                     par::Comm& comm) {
  PWDFT_CHECK(psi_local.cols() == occ_local.size(), "exchange_energy: occupation mismatch");
  CMatrix vx(setup_.n_g(), psi_local.cols(), Complex{0.0, 0.0});
  apply_add(psi_local, vx, comm);
  double e = 0.0;
  for (std::size_t j = 0; j < psi_local.cols(); ++j) {
    e += 0.5 * occ_local[j] *
         linalg::dotc({psi_local.col(j), setup_.n_g()}, {vx.col(j), setup_.n_g()}).real();
  }
  comm.allreduce_sum(&e, 1);
  return e;
}

}  // namespace pwdft::ham
