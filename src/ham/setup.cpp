#include "ham/setup.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pwdft::ham {

PlanewaveSetup::PlanewaveSetup(crystal::Crystal c, double ecut_ha, int dense_factor_in)
    : crystal(std::move(c)),
      ecut(ecut_ha),
      dense_factor(dense_factor_in),
      wfc_grid(grid::FftGrid::for_gmax(crystal.lattice(), std::sqrt(2.0 * ecut_ha))),
      dense_grid(wfc_grid.refined(dense_factor_in)),
      sphere(crystal.lattice(), ecut_ha, wfc_grid) {
  PWDFT_CHECK(dense_factor >= 1, "PlanewaveSetup: dense_factor must be >= 1");
  smap_wfc = grid::SphereMap(sphere.map_to(wfc_grid), wfc_grid.dims());
  smap_dense = grid::SphereMap(sphere.map_to(dense_grid), dense_grid.dims());

  dense_g2.resize(dense_grid.size());
  const auto dims = dense_grid.dims();
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims[2]; ++z) {
    const int f2 = dense_grid.freq(z, 2);
    for (std::size_t y = 0; y < dims[1]; ++y) {
      const int f1 = dense_grid.freq(y, 1);
      for (std::size_t x = 0; x < dims[0]; ++x, ++idx) {
        const auto g = crystal.lattice().gvector(dense_grid.freq(x, 0), f1, f2);
        dense_g2[idx] = grid::norm2(g);
      }
    }
  }
}

}  // namespace pwdft::ham
