#include "ham/ace.hpp"

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/exec.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace pwdft::ham {

bool ace_env_default() {
  // Strict parse: PWDFT_ACE=On/TRUE/yes used to be silently off (common/env.hpp).
  return env::flag("PWDFT_ACE", false);
}

int ace_refresh_env_default() {
  return static_cast<int>(env::integer("PWDFT_ACE_REFRESH", 1, 1, 1 << 20));
}

void AceOperator::build(FockOperator& fock, const CMatrix& phi_local, par::Comm& comm) {
  PWDFT_CHECK(fock.has_orbitals(), "AceOperator: Fock orbitals not set");
  const std::size_t ng = setup_.n_g();
  const std::size_t nb_loc = phi_local.cols();

  CMatrix w_local(ng, nb_loc, Complex{0.0, 0.0});
  fock.apply_add(phi_local, w_local, comm);

  psi_bands_ = par::BlockPartition(0, comm.size());  // reset below
  // Recover the global band partition from the local counts: the Fock
  // operator was given the same layout, so rebuild it identically.
  // (All shipped callers use BlockPartition(nb_total, nranks).)
  std::size_t nb_total = nb_loc;
  {
    double nb = static_cast<double>(nb_loc);
    comm.allreduce_sum(&nb, 1);
    nb_total = static_cast<std::size_t>(nb + 0.5);
  }
  psi_bands_ = par::BlockPartition(nb_total, comm.size());
  transpose_ = par::WavefunctionTranspose(par::BlockPartition(ng, comm.size()), psi_bands_);

  CMatrix phi_g, w_g;
  transpose_.band_to_g(comm, phi_local, phi_g, /*single_precision=*/false);
  transpose_.band_to_g(comm, w_local, w_g, /*single_precision=*/false);

  // M = Phi^H W (global): local product over this rank's G rows + Allreduce.
  CMatrix m = linalg::overlap(phi_g, w_g);
  comm.allreduce_sum(m.data(), m.size());

  // -M = L L^H with a tiny Tikhonov jitter for near-null exchange modes.
  CMatrix neg_m(nb_total, nb_total);
  double trace = 0.0;
  for (std::size_t i = 0; i < nb_total; ++i) trace += -m(i, i).real();
  const double jitter = std::max(trace, 1e-8) * 1e-12;
  for (std::size_t j = 0; j < nb_total; ++j)
    for (std::size_t i = 0; i < nb_total; ++i)
      neg_m(i, j) = -0.5 * (m(i, j) + std::conj(m(j, i)));
  for (std::size_t i = 0; i < nb_total; ++i) neg_m(i, i) += jitter;
  linalg::potrf_lower(neg_m);

  // Xi = W L^{-H} in the G layout.
  xi_g_ = std::move(w_g);
  linalg::trsm_right_lower_conj(xi_g_, neg_m);
  ++builds_;
}

void AceOperator::apply_add(const CMatrix& psi_local, CMatrix& y_local, par::Comm& comm) const {
  PWDFT_CHECK(ready(), "AceOperator: not built");
  const std::size_t ncol = psi_local.cols();

  // The transpose machinery requires the column partition to match the
  // layout Xi was built with; PT-CN always applies ACE to full band blocks.
  par::BlockPartition cols(psi_bands_.total(), comm.size());
  PWDFT_CHECK(cols.count(comm.rank()) == ncol, "AceOperator: column layout mismatch");

  // Scratch from the executing rank's arena: apply_add sits inside the
  // SCF/propagator inner loops, so steady state must not heap-allocate
  // (tests/test_alloc_free.cpp). Dedicated ace_* slots — pt_*/ham_* blocks
  // may be live around the enclosing Hamiltonian::apply.
  auto& ws = exec::workspace();
  CMatrix& psi_g = ws.cmat(exec::Slot::ace_ga, 0, 0);
  transpose_.band_to_g(comm, psi_local, psi_g, /*single_precision=*/false);

  // P = Xi^H psi (nb x nb), then contribution -Xi P, all in the G layout.
  CMatrix& p = ws.cmat(exec::Slot::ace_p, xi_g_.cols(), psi_g.cols());
  linalg::overlap_into(xi_g_, psi_g, p);
  comm.allreduce_sum(p.data(), p.size());

  CMatrix& contrib_g = ws.cmat(exec::Slot::ace_gb, psi_g.rows(), psi_g.cols());
  linalg::gemm('N', 'N', Complex{-1.0, 0.0}, xi_g_, p, Complex{0.0, 0.0}, contrib_g);

  CMatrix& contrib_band = ws.cmat(exec::Slot::ace_band, 0, 0);
  transpose_.g_to_band(comm, contrib_g, contrib_band, /*single_precision=*/false);
  for (std::size_t j = 0; j < ncol; ++j)
    linalg::axpy(Complex{1.0, 0.0}, {contrib_band.col(j), contrib_band.rows()},
                 {y_local.col(j), y_local.rows()});
}

}  // namespace pwdft::ham
