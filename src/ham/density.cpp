#include "ham/density.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pwdft::ham {

std::vector<double> compute_density(const PlanewaveSetup& setup, fft::Fft3D& fft_dense,
                                    const CMatrix& psi_local, std::span<const double> occ_local,
                                    par::Comm& comm) {
  PWDFT_CHECK(psi_local.cols() == occ_local.size(), "compute_density: occupations mismatch");
  const std::size_t nd = setup.n_dense();
  std::vector<double> rho(nd, 0.0);
  std::vector<Complex> work(nd);
  const double inv_vol = 1.0 / setup.volume();

  for (std::size_t j = 0; j < psi_local.cols(); ++j) {
    grid::GSphere::scatter({psi_local.col(j), setup.n_g()}, setup.map_dense, work);
    fft_dense.inverse(work.data());
    const double f = occ_local[j] * inv_vol;
    for (std::size_t i = 0; i < nd; ++i) rho[i] += f * std::norm(work[i]);
  }

  comm.allreduce_sum(rho.data(), rho.size());
  return rho;
}

double integrate_dense(const PlanewaveSetup& setup, std::span<const double> f) {
  PWDFT_CHECK(f.size() == setup.n_dense(), "integrate_dense: size mismatch");
  double acc = 0.0;
  for (double v : f) acc += v;
  return acc * setup.weight_dense();
}

double density_error(const PlanewaveSetup& setup, std::span<const double> rho_new,
                     std::span<const double> rho_old) {
  PWDFT_CHECK(rho_new.size() == rho_old.size(), "density_error: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < rho_new.size(); ++i) acc += std::abs(rho_new[i] - rho_old[i]);
  const double nelec = setup.crystal.n_electrons();
  return acc * setup.weight_dense() / nelec;
}

}  // namespace pwdft::ham
