#include "ham/density.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/exec.hpp"
#include "grid/transforms.hpp"

namespace pwdft::ham {

namespace {

/// Interior stage of the fused density pipeline: band b's |ψ|² accumulated
/// into its chunk's partial density. Chained per chunk (Stage::chain =
/// bands-per-chunk), so a chunk's bands add in exact band order — the same
/// per-element operation sequence as the chunk loop of the staged and band
/// paths, keeping all formulations bit-identical.
struct RhoAccumHook {
  const double* occ = nullptr;
  double inv_vol = 0.0;
  const Complex* grids = nullptr;  ///< batched dense-grid orbitals
  double* parts = nullptr;         ///< nchunks x nd chunk partials
  std::size_t nd = 0;
  std::size_t bper = 0;  ///< bands per chunk (the chain length)
  static void run(void* user, std::size_t b) {
    const auto* c = static_cast<const RhoAccumHook*>(user);
    double* part = c->parts + (b / c->bper) * c->nd;
    if (b % c->bper == 0) std::fill_n(part, c->nd, 0.0);
    const Complex* w = c->grids + b * c->nd;
    const double f = c->occ[b] * c->inv_vol;
    for (std::size_t i = 0; i < c->nd; ++i) part[i] += f * std::norm(w[i]);
  }
};

/// Trailing join stage: job j reduces its slice of the grid over the chunk
/// partials in chunk order (per-element independent, so the job count only
/// shapes scheduling, never results).
struct RhoReduceHook {
  const double* parts = nullptr;
  double* rho = nullptr;
  std::size_t nd = 0;
  std::size_t nchunks = 0;
  std::size_t njobs = 0;
  static void run(void* user, std::size_t job) {
    const auto* c = static_cast<const RhoReduceHook*>(user);
    const std::size_t per = (c->nd + c->njobs - 1) / c->njobs;
    const std::size_t i0 = job * per;
    const std::size_t i1 = std::min(c->nd, i0 + per);
    for (std::size_t i = i0; i < i1; ++i) {
      double acc = 0.0;
      for (std::size_t ch = 0; ch < c->nchunks; ++ch) acc += c->parts[ch * c->nd + i];
      c->rho[i] = acc;
    }
  }
};

}  // namespace

std::vector<double> compute_density(const PlanewaveSetup& setup, fft::Fft3D& fft_dense,
                                    const CMatrix& psi_local, std::span<const double> occ_local,
                                    par::Comm& comm, bool band_line_split,
                                    fft::PipelineMode pipeline) {
  PWDFT_CHECK(psi_local.cols() == occ_local.size(), "compute_density: occupations mismatch");
  const std::size_t nd = setup.n_dense();
  const std::size_t nb = psi_local.cols();
  std::vector<double> rho(nd, 0.0);
  const double inv_vol = 1.0 / setup.volume();
  if (nb == 0) {
    comm.allreduce_sum(rho.data(), rho.size());
    return rho;
  }

  // Band-parallel with a deterministic reduction: bands are grouped into a
  // fixed number of chunks (independent of the engine width), each chunk
  // accumulates its bands serially in band order into its own partial
  // density, and the partials are reduced in chunk order. The summation
  // tree therefore never depends on how chunks were scheduled, so the
  // result is bit-identical at any thread count. No per-call heap
  // allocation beyond the returned density.
  //
  // kMaxChunks is part of the bitwise contract (changing it changes the
  // rounding pattern once and for all) and trades parallelism against
  // arena memory: the partials pin min(nb, kMaxChunks) * nd doubles, while
  // engines wider than kMaxChunks idle through the per-band FFT phase.
  constexpr std::size_t kMaxChunks = 32;
  const std::size_t bper = (nb + kMaxChunks - 1) / kMaxChunks;
  const std::size_t nchunks = (nb + bper - 1) / bper;
  auto parts = exec::workspace().rbuf(exec::Slot::rho_part, nchunks * nd);

  // Hybrid band×line schedule: with fewer bands than engine threads the
  // chunk loop cannot fill the engine, so the transforms are hoisted into
  // one batched (band × FFT line) pass first and the chunk loop below reads
  // the precomputed grids. The accumulation statement is the same compiled
  // loop in either mode and the FFT per line is the identical serial
  // kernel, so the reduction tree — and every bit of rho — is unchanged.
  //
  // In the fused pipeline mode the whole narrow formulation — scatter,
  // masked inverse passes, chunk accumulation (chained in band order), and
  // the ordered chunk reduction — is ONE Fft3D::run_pipeline call: a single
  // cached-graph replay (one pool wake) on the graph dispatch path. Every
  // hook runs the same per-element statements in the same order as the
  // staged chunk loop, so all formulations stay bit-identical.
  if (pipeline == fft::PipelineMode::kAuto) pipeline = fft::pipeline_env_default();
  const CMatrix* pregrids = nullptr;
  if (band_line_split && exec::prefer_line_split(nb)) {
    CMatrix& grids = exec::workspace().cmat(exec::Slot::rho_grids, nd, nb);
    if (pipeline == fft::PipelineMode::kFused) {
      // Width-independent job count for the reduction slice nodes (part of
      // the graph shape, never of the results — each element reduces its
      // own chunk column independently).
      const std::size_t njobs = std::min<std::size_t>(32, (nd + 4095) / 4096);
      const std::size_t ng = setup.n_g();
      grid::ScatterHook scatter{setup.smap_dense.map.data(), ng, psi_local.data(), ng,
                                grids.data(),                nd};
      RhoAccumHook accum{occ_local.data(), inv_vol, grids.data(), parts.data(), nd, bper};
      RhoReduceHook reduce{parts.data(), rho.data(), nd, nchunks, njobs};
      const std::array<fft::Fft3D::Stage, 4> stages = {
          fft::Fft3D::Stage::make_hook(&grid::ScatterHook::run, &scatter),
          grid::inverse_passes_stage(setup.smap_dense, grids.data()),
          fft::Fft3D::Stage::make_hook(&RhoAccumHook::run, &accum, bper),
          fft::Fft3D::Stage::make_join(&RhoReduceHook::run, &reduce, njobs)};
      fft_dense.run_pipeline(nb, stages);
      comm.allreduce_sum(rho.data(), rho.size());
      return rho;
    }
    grid::sphere_to_grid_many(fft_dense, setup.smap_dense, psi_local, grids);
    pregrids = &grids;
  }

  exec::parallel_for(nchunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      double* part = parts.data() + c * nd;
      std::fill_n(part, nd, 0.0);
      const std::size_t j1 = std::min(nb, (c + 1) * bper);
      for (std::size_t j = c * bper; j < j1; ++j) {
        const Complex* w;
        if (pregrids) {
          w = pregrids->col(j);
        } else {
          // Per-band transform scratch from the executing thread's arena.
          auto work = exec::workspace().cbuf(exec::Slot::grid_a, nd);
          grid::sphere_to_grid(fft_dense, setup.smap_dense, {psi_local.col(j), setup.n_g()},
                               work);
          w = work.data();
        }
        const double f = occ_local[j] * inv_vol;
        for (std::size_t i = 0; i < nd; ++i) part[i] += f * std::norm(w[i]);
      }
    }
  });

  // Ordered reduction over chunks; grid points are disjoint across tasks.
  double* rho_p = rho.data();
  const double* parts_p = parts.data();
  exec::parallel_for(
      nd,
      [=](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          double acc = 0.0;
          for (std::size_t c = 0; c < nchunks; ++c) acc += parts_p[c * nd + i];
          rho_p[i] = acc;
        }
      },
      4096);

  comm.allreduce_sum(rho.data(), rho.size());
  return rho;
}

double integrate_dense(const PlanewaveSetup& setup, std::span<const double> f) {
  PWDFT_CHECK(f.size() == setup.n_dense(), "integrate_dense: size mismatch");
  double acc = 0.0;
  for (double v : f) acc += v;
  return acc * setup.weight_dense();
}

double density_error(const PlanewaveSetup& setup, std::span<const double> rho_new,
                     std::span<const double> rho_old) {
  PWDFT_CHECK(rho_new.size() == rho_old.size(), "density_error: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < rho_new.size(); ++i) acc += std::abs(rho_new[i] - rho_old[i]);
  const double nelec = setup.crystal.n_electrons();
  return acc * setup.weight_dense() / nelec;
}

}  // namespace pwdft::ham
