#include "ham/density.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/exec.hpp"
#include "grid/transforms.hpp"

namespace pwdft::ham {

std::vector<double> compute_density(const PlanewaveSetup& setup, fft::Fft3D& fft_dense,
                                    const CMatrix& psi_local, std::span<const double> occ_local,
                                    par::Comm& comm, bool band_line_split) {
  PWDFT_CHECK(psi_local.cols() == occ_local.size(), "compute_density: occupations mismatch");
  const std::size_t nd = setup.n_dense();
  const std::size_t nb = psi_local.cols();
  std::vector<double> rho(nd, 0.0);
  const double inv_vol = 1.0 / setup.volume();
  if (nb == 0) {
    comm.allreduce_sum(rho.data(), rho.size());
    return rho;
  }

  // Band-parallel with a deterministic reduction: bands are grouped into a
  // fixed number of chunks (independent of the engine width), each chunk
  // accumulates its bands serially in band order into its own partial
  // density, and the partials are reduced in chunk order. The summation
  // tree therefore never depends on how chunks were scheduled, so the
  // result is bit-identical at any thread count. No per-call heap
  // allocation beyond the returned density.
  //
  // kMaxChunks is part of the bitwise contract (changing it changes the
  // rounding pattern once and for all) and trades parallelism against
  // arena memory: the partials pin min(nb, kMaxChunks) * nd doubles, while
  // engines wider than kMaxChunks idle through the per-band FFT phase.
  constexpr std::size_t kMaxChunks = 32;
  const std::size_t bper = (nb + kMaxChunks - 1) / kMaxChunks;
  const std::size_t nchunks = (nb + bper - 1) / bper;
  auto parts = exec::workspace().rbuf(exec::Slot::rho_part, nchunks * nd);

  // Hybrid band×line schedule: with fewer bands than engine threads the
  // chunk loop cannot fill the engine, so the transforms are hoisted into
  // one batched (band × FFT line) pass first and the chunk loop below reads
  // the precomputed grids. The accumulation statement is the same compiled
  // loop in either mode and the FFT per line is the identical serial
  // kernel, so the reduction tree — and every bit of rho — is unchanged.
  const CMatrix* pregrids = nullptr;
  if (band_line_split && exec::prefer_line_split(nb)) {
    CMatrix& grids = exec::workspace().cmat(exec::Slot::rho_grids, nd, nb);
    grid::sphere_to_grid_many(fft_dense, setup.smap_dense, psi_local, grids);
    pregrids = &grids;
  }

  exec::parallel_for(nchunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      double* part = parts.data() + c * nd;
      std::fill_n(part, nd, 0.0);
      const std::size_t j1 = std::min(nb, (c + 1) * bper);
      for (std::size_t j = c * bper; j < j1; ++j) {
        const Complex* w;
        if (pregrids) {
          w = pregrids->col(j);
        } else {
          // Per-band transform scratch from the executing thread's arena.
          auto work = exec::workspace().cbuf(exec::Slot::grid_a, nd);
          grid::sphere_to_grid(fft_dense, setup.smap_dense, {psi_local.col(j), setup.n_g()},
                               work);
          w = work.data();
        }
        const double f = occ_local[j] * inv_vol;
        for (std::size_t i = 0; i < nd; ++i) part[i] += f * std::norm(w[i]);
      }
    }
  });

  // Ordered reduction over chunks; grid points are disjoint across tasks.
  double* rho_p = rho.data();
  const double* parts_p = parts.data();
  exec::parallel_for(
      nd,
      [=](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          double acc = 0.0;
          for (std::size_t c = 0; c < nchunks; ++c) acc += parts_p[c * nd + i];
          rho_p[i] = acc;
        }
      },
      4096);

  comm.allreduce_sum(rho.data(), rho.size());
  return rho;
}

double integrate_dense(const PlanewaveSetup& setup, std::span<const double> f) {
  PWDFT_CHECK(f.size() == setup.n_dense(), "integrate_dense: size mismatch");
  double acc = 0.0;
  for (double v : f) acc += v;
  return acc * setup.weight_dense();
}

double density_error(const PlanewaveSetup& setup, std::span<const double> rho_new,
                     std::span<const double> rho_old) {
  PWDFT_CHECK(rho_new.size() == rho_old.size(), "density_error: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < rho_new.size(); ++i) acc += std::abs(rho_new[i] - rho_old[i]);
  const double nelec = setup.crystal.n_electrons();
  return acc * setup.weight_dense() / nelec;
}

}  // namespace pwdft::ham
