#include "ham/density.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/exec.hpp"
#include "grid/transforms.hpp"

namespace pwdft::ham {

std::vector<double> compute_density(const PlanewaveSetup& setup, fft::Fft3D& fft_dense,
                                    const CMatrix& psi_local, std::span<const double> occ_local,
                                    par::Comm& comm) {
  PWDFT_CHECK(psi_local.cols() == occ_local.size(), "compute_density: occupations mismatch");
  const std::size_t nd = setup.n_dense();
  std::vector<double> rho(nd, 0.0);
  auto work = exec::workspace().cbuf(exec::Slot::grid_a, nd);
  const double inv_vol = 1.0 / setup.volume();

  // Band loop stays serial (rho accumulation order is part of the bitwise
  // contract); each band's transform and the point-wise accumulate run on
  // the engine. No per-call heap allocation beyond the returned density.
  for (std::size_t j = 0; j < psi_local.cols(); ++j) {
    grid::sphere_to_grid(fft_dense, setup.smap_dense, {psi_local.col(j), setup.n_g()}, work);
    const double f = occ_local[j] * inv_vol;
    double* rho_p = rho.data();
    const Complex* w = work.data();
    exec::parallel_for(
        nd,
        [=](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) rho_p[i] += f * std::norm(w[i]);
        },
        4096);
  }

  comm.allreduce_sum(rho.data(), rho.size());
  return rho;
}

double integrate_dense(const PlanewaveSetup& setup, std::span<const double> f) {
  PWDFT_CHECK(f.size() == setup.n_dense(), "integrate_dense: size mismatch");
  double acc = 0.0;
  for (double v : f) acc += v;
  return acc * setup.weight_dense();
}

double density_error(const PlanewaveSetup& setup, std::span<const double> rho_new,
                     std::span<const double> rho_old) {
  PWDFT_CHECK(rho_new.size() == rho_old.size(), "density_error: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < rho_new.size(); ++i) acc += std::abs(rho_new[i] - rho_old[i]);
  const double nelec = setup.crystal.n_electrons();
  return acc * setup.weight_dense() / nelec;
}

}  // namespace pwdft::ham
