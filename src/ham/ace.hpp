#pragma once

/// \file ace.hpp
/// Adaptively Compressed Exchange (ACE), Lin (2016) [paper ref 24].
///
/// The paper notes (§1) that on CPU machines PT-CN + ACE [22] reduces the
/// hybrid rt-TDDFT cost, while on Summit the direct PT treatment wins. We
/// implement ACE so that trade-off is an executable ablation
/// (bench/ablation_ace):
///   W  = VX * Phi,          M = Phi^H W  (Hermitian, negative definite)
///   -M = L L^H,             Xi = W L^{-H}
///   VX_ACE = -Xi Xi^H       (exact on span(Phi): VX_ACE Phi = VX Phi)
///
/// The operator is wired into the hot loops through
/// Hamiltonian::set_exchange_orbitals (ACE + refresh cadence) and the MTS
/// scheduler of the propagators (td/mts.hpp): one exact Fock apply per
/// build amortizes over every cheap apply_add() until the next refresh.

#include <span>

#include "ham/fock.hpp"
#include "parallel/transpose.hpp"

namespace pwdft::ham {

/// PWDFT_ACE resolution: 1/on => true, unset/0/off => false. Exchange is
/// applied through the exact Alg. 2 pair solves by default; ACE is opt-in
/// because it is exact only on span(Phi) (a controlled approximation off
/// it, gated by the golden-physics traces).
bool ace_env_default();

/// PWDFT_ACE_REFRESH resolution: rebuild the ACE projectors every k-th
/// orbital registration (k >= 1; unset/invalid => 1, i.e. every
/// registration — the exact legacy cadence).
int ace_refresh_env_default();

class AceOperator {
 public:
  explicit AceOperator(const PlanewaveSetup& setup) : setup_(setup) {}

  /// Builds the compressed operator from `fock`'s current orbitals; one
  /// exact Fock apply on Phi plus dense linear algebra in the G-space
  /// layout. Collective. Deterministic: serial dense algebra on G-layout
  /// blocks produced by the (bit-identical) transpose, so the result is
  /// identical across thread width, dispatch path, pipeline mode, and
  /// HierComm layout whenever the Fock apply is (docs/threading.md).
  void build(FockOperator& fock, const CMatrix& phi_local, par::Comm& comm);

  bool ready() const { return !xi_g_.empty(); }

  /// y_local += VX_ACE * psi_local (band layout). Collective: two
  /// transposes + one small Allreduce, no per-band broadcasts.
  /// Allocation-free: scratch lives in the ace_* workspace slots.
  void apply_add(const CMatrix& psi_local, CMatrix& y_local, par::Comm& comm) const;

  /// Number of projector builds since construction (instrumentation for
  /// the refresh-cadence tests and the ablation bench).
  std::uint64_t builds() const { return builds_; }

 private:
  const PlanewaveSetup& setup_;
  par::WavefunctionTranspose transpose_;
  par::BlockPartition psi_bands_;
  CMatrix xi_g_;  ///< (ng_local x nb) compressed exchange vectors, G layout
  std::uint64_t builds_ = 0;
};

}  // namespace pwdft::ham
