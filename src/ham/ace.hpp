#pragma once

/// \file ace.hpp
/// Adaptively Compressed Exchange (ACE), Lin (2016) [paper ref 24].
///
/// The paper notes (§1) that on CPU machines PT-CN + ACE [22] reduces the
/// hybrid rt-TDDFT cost, while on Summit the direct PT treatment wins. We
/// implement ACE so that trade-off is an executable ablation
/// (bench/ablation_ace):
///   W  = VX * Phi,          M = Phi^H W  (Hermitian, negative definite)
///   -M = L L^H,             Xi = W L^{-H}
///   VX_ACE = -Xi Xi^H       (exact on span(Phi): VX_ACE Phi = VX Phi)

#include <span>

#include "ham/fock.hpp"
#include "parallel/transpose.hpp"

namespace pwdft::ham {

class AceOperator {
 public:
  explicit AceOperator(const PlanewaveSetup& setup) : setup_(setup) {}

  /// Builds the compressed operator from `fock`'s current orbitals; one
  /// exact Fock apply on Phi plus dense linear algebra in the G-space
  /// layout. Collective.
  void build(FockOperator& fock, const CMatrix& phi_local, par::Comm& comm);

  bool ready() const { return !xi_g_.empty(); }

  /// y_local += VX_ACE * psi_local (band layout). Collective: two
  /// transposes + one small Allreduce, no per-band broadcasts.
  void apply_add(const CMatrix& psi_local, CMatrix& y_local, par::Comm& comm) const;

 private:
  const PlanewaveSetup& setup_;
  par::WavefunctionTranspose transpose_;
  par::BlockPartition psi_bands_;
  CMatrix xi_g_;  ///< (ng_local x nb) compressed exchange vectors, G layout
};

}  // namespace pwdft::ham
