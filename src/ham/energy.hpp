#pragma once

/// \file energy.hpp
/// Total-energy assembly for the hybrid Kohn-Sham functional:
///   E = T_s + E_loc + E_nl + E_H + E_xc(LDA) + E_X(screened Fock) + E_II.

#include <span>

#include "ham/hamiltonian.hpp"
#include "linalg/matrix.hpp"
#include "parallel/comm.hpp"

namespace pwdft::ham {

struct EnergyBreakdown {
  double kinetic = 0.0;
  double local_ps = 0.0;
  double nonlocal_ps = 0.0;
  double hartree = 0.0;
  double xc = 0.0;
  double fock = 0.0;
  double ewald = 0.0;
  double total() const {
    return kinetic + local_ps + nonlocal_ps + hartree + xc + fock + ewald;
  }
};

/// Evaluates the breakdown for band-distributed orbitals with a consistent
/// (psi, rho) pair. When the hybrid term is enabled the Fock orbitals must
/// already be set to psi (this costs the paper's "+1 Fock apply for total
/// energy evaluation" per step). Collective.
EnergyBreakdown compute_energy(Hamiltonian& hamiltonian, const CMatrix& psi_local,
                               std::span<const double> occ_local, std::span<const double> rho,
                               par::Comm& comm);

}  // namespace pwdft::ham
