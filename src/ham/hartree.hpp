#pragma once

/// \file hartree.hpp
/// Hartree potential: one Poisson solve in reciprocal space on the dense
/// grid, V_H(G) = 4 pi rho(G) / G^2 with the G = 0 term dropped
/// (neutralizing background; pairs with Ewald and the V_loc alpha term).

#include <span>
#include <vector>

#include "fft/fft3d.hpp"
#include "ham/setup.hpp"

namespace pwdft::ham {

std::vector<double> hartree_potential(const PlanewaveSetup& setup, fft::Fft3D& fft_dense,
                                      std::span<const double> rho);

/// E_H = (1/2) integral rho V_H.
double hartree_energy(const PlanewaveSetup& setup, std::span<const double> rho,
                      std::span<const double> vh);

}  // namespace pwdft::ham
