#pragma once

/// \file hamiltonian.hpp
/// The time-dependent Kohn-Sham Hamiltonian (paper Eq. 2):
///   H(t, P) = 1/2 |G + a(t)|^2  +  V_loc,ps + V_H[rho] + V_xc[rho]  +  V_nl  +  VX[P]
/// with a laser coupled in the velocity gauge through the vector potential
/// a(t). The Fock term can be applied directly (Alg. 2) or through ACE.

#include <memory>
#include <span>
#include <vector>

#include "common/timer.hpp"
#include "crystal/ewald.hpp"
#include "fft/fft3d.hpp"
#include "ham/ace.hpp"
#include "ham/fock.hpp"
#include "ham/setup.hpp"
#include "pseudo/local_pot.hpp"
#include "pseudo/nonlocal.hpp"
#include "xc/lda.hpp"

namespace pwdft::ham {

struct HamiltonianOptions {
  xc::HybridParams hybrid;
  FockOptions fock;
  bool use_nonlocal = true;
  /// Apply exchange through the ACE compression instead of direct Alg. 2:
  /// apply() then costs two transposes + one small Allreduce instead of a
  /// broadcast loop of pair solves, and one exact Fock apply per projector
  /// build amortizes over every apply until the next refresh. Defaults to
  /// the PWDFT_ACE resolution (off — ACE is exact only on span(Phi)).
  bool use_ace = ace_env_default();
  /// Rebuild the ACE projectors every k-th set_exchange_orbitals()
  /// registration (counter-based, deterministic; <= 0 resolves
  /// PWDFT_ACE_REFRESH, default 1 = every registration). The SCF outer
  /// loop and the MTS propagators force a rebuild at their own schedule
  /// points through request_ace_refresh() regardless of this cadence.
  int ace_refresh = 0;
  /// Hybrid band×line scheduling: when the local band count is below the
  /// engine width, apply() switches from the band-parallel loop (per-band
  /// FFTs inline) to one batched formulation whose FFT passes parallelize
  /// over the joint (band × FFT line) domain. Bit-identical to the band
  /// path at any width (docs/threading.md); costs ~3 * ncol * n_dense
  /// complex doubles of arena in the narrow-band case.
  bool band_line_split = true;
  /// Dispatch path of the dense-grid FFTs (and, unless fock.fft_dispatch
  /// overrides it, of the Fock operator's wfc-grid FFTs): kAuto resolves
  /// PWDFT_FFT_DISPATCH, defaulting to persistent task graphs. The fused
  /// sphere<->grid stages of apply() then each run as a single cached-graph
  /// replay instead of re-forking per FFT pass. Bit-identical to kForkJoin
  /// at any engine width.
  fft::ExecPath fft_dispatch = fft::ExecPath::kAuto;
  /// Whole-operator pipeline mode of the narrow (band×line split) apply():
  /// kFused runs scatter → inverse passes → V·ψ+nonlocal → forward passes →
  /// gather → kinetic+add as ONE Fft3D::run_pipeline call (a single
  /// cached-graph replay / one pool wake on the graph dispatch path);
  /// kStaged keeps the per-stage batched dispatches. Bit-identical at any
  /// width. kAuto resolves PWDFT_OPERATOR_PIPELINE (default fused); unless
  /// fock.op_pipeline overrides, the Fock operator inherits this choice.
  fft::PipelineMode op_pipeline = fft::PipelineMode::kAuto;
};

class Hamiltonian {
 public:
  Hamiltonian(const PlanewaveSetup& setup, const pseudo::PseudoSpecies& species,
              HamiltonianOptions options);

  const PlanewaveSetup& setup() const { return setup_; }
  const HamiltonianOptions& options() const { return options_; }

  /// Rebuilds V_H + V_xc from a dense-grid density (local operation; the
  /// density is replicated on every rank per paper §3.4).
  void update_density(std::span<const double> rho_dense);

  /// Sets the vector potential a(t) entering the kinetic term.
  void set_vector_potential(const grid::Vec3& a);
  const grid::Vec3& vector_potential() const { return a_; }

  /// Registers the exchange orbitals (PT-CN refreshes these every SCF
  /// iteration with Psi_f; the MTS scheduler pins a frozen snapshot at step
  /// starts). Always updates the Fock orbitals; rebuilds the ACE projectors
  /// on the ace_refresh cadence when ACE is enabled. Collective.
  void set_exchange_orbitals(const CMatrix& phi_local, std::span<const double> occ_global,
                             const par::BlockPartition& bands, par::Comm& comm);

  /// Forces the next set_exchange_orbitals() to rebuild the ACE projectors
  /// regardless of where the ace_refresh cadence stands (schedule anchor
  /// for the SCF outer loop and the propagators' MTS refresh steps).
  void request_ace_refresh() { ace_registrations_ = 0; }

  /// Monotone count of set_exchange_orbitals() registrations. Propagators
  /// freezing an exchange snapshot compare this against the value at their
  /// last refresh to detect (and deterministically repair) registrations
  /// made behind their back, e.g. by per-step energy evaluation.
  std::uint64_t exchange_serial() const { return exchange_serial_; }

  /// y = H psi for a block of local bands (sphere coefficients).
  /// Optional timers record "hpsi_local" and "hpsi_fock" phases.
  void apply(const CMatrix& psi_local, CMatrix& y_local, par::Comm& comm,
             TimerRegistry* timers = nullptr);

  bool hybrid_enabled() const { return options_.hybrid.enabled; }
  /// Toggles the exact-exchange term at runtime (the ground-state solver
  /// converges an LDA phase before switching the hybrid on).
  void set_hybrid_enabled(bool enabled) { options_.hybrid.enabled = enabled; }
  FockOperator& fock() { return fock_; }
  const FockOperator& fock() const { return fock_; }
  const AceOperator& ace() const { return ace_; }
  const pseudo::NonlocalProjectors* nonlocal() const { return nonlocal_.get(); }

  const std::vector<double>& v_local_ps() const { return v_loc_ps_; }
  const std::vector<double>& v_hartree() const { return v_hartree_; }
  const std::vector<double>& v_xc() const { return v_xc_; }
  const std::vector<double>& eps_xc() const { return eps_xc_; }
  double ewald_energy() const { return e_ewald_; }
  /// Kinetic coefficients 1/2 |G + a|^2 per sphere index.
  const std::vector<double>& kinetic() const { return kin_; }
  fft::Fft3D& fft_dense() { return *fft_dense_; }

 private:
  const PlanewaveSetup& setup_;
  HamiltonianOptions options_;
  /// Shared process-wide per (dims, kernel, dispatch) via fft::shared_engine:
  /// co-resident Hamiltonians on the same dense grid reuse one warmed graph
  /// cache (the serve::JobEngine runs several tenants per process).
  std::shared_ptr<fft::Fft3D> fft_dense_;
  std::vector<double> v_loc_ps_;
  std::vector<double> v_hartree_;
  std::vector<double> v_xc_;
  std::vector<double> eps_xc_;
  std::vector<double> v_total_;  ///< v_loc_ps + v_H + v_xc on the dense grid
  std::unique_ptr<pseudo::NonlocalProjectors> nonlocal_;
  FockOperator fock_;
  AceOperator ace_;
  std::uint64_t exchange_serial_ = 0;    ///< registrations since construction
  std::uint64_t ace_registrations_ = 0;  ///< position in the ace_refresh cadence
  grid::Vec3 a_{0.0, 0.0, 0.0};
  std::vector<double> kin_;
  double e_ewald_ = 0.0;
};

}  // namespace pwdft::ham
