#include "ham/energy.hpp"

#include "common/check.hpp"
#include "ham/density.hpp"

namespace pwdft::ham {

EnergyBreakdown compute_energy(Hamiltonian& hamiltonian, const CMatrix& psi_local,
                               std::span<const double> occ_local, std::span<const double> rho,
                               par::Comm& comm) {
  const auto& setup = hamiltonian.setup();
  const std::size_t ng = setup.n_g();
  const std::size_t nd = setup.n_dense();
  PWDFT_CHECK(psi_local.cols() == occ_local.size(), "compute_energy: occupation mismatch");
  PWDFT_CHECK(rho.size() == nd, "compute_energy: density size mismatch");

  EnergyBreakdown e;

  // Band-local pieces: kinetic (sphere sum) and nonlocal (dense real space).
  // energy_contribution(P, w) returns sum_p D |w * sum_r beta P|^2; with
  // psi(r) = P(r)/sqrt(Omega) the physical matrix element is
  // <beta|psi> = w * sum_r beta P / sqrt(Omega), so divide by Omega.
  std::vector<Complex> grid_work(nd);
  const auto& kin = hamiltonian.kinetic();
  const double w = setup.weight_dense();
  const double inv_vol = 1.0 / setup.volume();
  double band_acc[2] = {0.0, 0.0};
  for (std::size_t j = 0; j < psi_local.cols(); ++j) {
    const Complex* c = psi_local.col(j);
    double t = 0.0;
    for (std::size_t i = 0; i < ng; ++i) t += kin[i] * std::norm(c[i]);
    band_acc[0] += occ_local[j] * t;

    if (hamiltonian.nonlocal()) {
      grid::GSphere::scatter({c, ng}, setup.map_dense(), grid_work);
      hamiltonian.fft_dense().inverse(grid_work.data());
      band_acc[1] +=
          occ_local[j] * hamiltonian.nonlocal()->energy_contribution(grid_work, w) * inv_vol;
    }
  }
  comm.allreduce_sum(band_acc, 2);
  e.kinetic = band_acc[0];
  e.nonlocal_ps = band_acc[1];

  // Grid functionals (density replicated on every rank => local sums).
  double e_loc = 0.0, e_xc = 0.0, e_h = 0.0;
  const auto& vloc = hamiltonian.v_local_ps();
  const auto& eps = hamiltonian.eps_xc();
  const auto& vh = hamiltonian.v_hartree();
  for (std::size_t i = 0; i < nd; ++i) {
    e_loc += vloc[i] * rho[i];
    e_xc += eps[i] * rho[i];
    e_h += vh[i] * rho[i];
  }
  e.local_ps = e_loc * w;
  e.xc = e_xc * w;
  e.hartree = 0.5 * e_h * w;

  if (hamiltonian.hybrid_enabled()) {
    e.fock = hamiltonian.fock().exchange_energy(psi_local, occ_local, comm);
  }
  e.ewald = hamiltonian.ewald_energy();
  return e;
}

}  // namespace pwdft::ham
