#include "ham/hartree.hpp"

#include "common/check.hpp"
#include "ham/density.hpp"

namespace pwdft::ham {

std::vector<double> hartree_potential(const PlanewaveSetup& setup, fft::Fft3D& fft_dense,
                                      std::span<const double> rho) {
  const std::size_t nd = setup.n_dense();
  PWDFT_CHECK(rho.size() == nd, "hartree_potential: density size mismatch");

  std::vector<Complex> work(nd);
  for (std::size_t i = 0; i < nd; ++i) work[i] = Complex{rho[i], 0.0};
  fft_dense.forward(work.data());

  // rho(G) = forward(rho)/N; V(G) = 4 pi rho(G)/G^2; V(r) = inverse(V(G)).
  const double inv_n = 1.0 / static_cast<double>(nd);
  for (std::size_t i = 0; i < nd; ++i) {
    const double g2 = setup.dense_g2[i];
    work[i] *= (g2 < 1e-12) ? 0.0 : constants::four_pi * inv_n / g2;
  }
  fft_dense.inverse(work.data());

  std::vector<double> vh(nd);
  for (std::size_t i = 0; i < nd; ++i) vh[i] = work[i].real();
  return vh;
}

double hartree_energy(const PlanewaveSetup& setup, std::span<const double> rho,
                      std::span<const double> vh) {
  PWDFT_CHECK(rho.size() == vh.size(), "hartree_energy: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < rho.size(); ++i) acc += rho[i] * vh[i];
  return 0.5 * acc * setup.weight_dense();
}

}  // namespace pwdft::ham
