#include "ham/hartree.hpp"

#include "common/check.hpp"
#include "common/exec.hpp"
#include "ham/density.hpp"

namespace pwdft::ham {

std::vector<double> hartree_potential(const PlanewaveSetup& setup, fft::Fft3D& fft_dense,
                                      std::span<const double> rho) {
  const std::size_t nd = setup.n_dense();
  PWDFT_CHECK(rho.size() == nd, "hartree_potential: density size mismatch");

  auto work = exec::workspace().cbuf(exec::Slot::grid_b, nd);
  Complex* w = work.data();
  const double* rho_p = rho.data();
  exec::parallel_for(
      nd,
      [=](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) w[i] = Complex{rho_p[i], 0.0};
      },
      4096);
  fft_dense.forward(w);

  // rho(G) = forward(rho)/N; V(G) = 4 pi rho(G)/G^2; V(r) = inverse(V(G)).
  const double inv_n = 1.0 / static_cast<double>(nd);
  const double* g2_p = setup.dense_g2.data();
  exec::parallel_for(
      nd,
      [=](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const double g2 = g2_p[i];
          w[i] *= (g2 < 1e-12) ? 0.0 : constants::four_pi * inv_n / g2;
        }
      },
      4096);
  fft_dense.inverse(w);

  std::vector<double> vh(nd);
  double* vh_p = vh.data();
  exec::parallel_for(
      nd,
      [=](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) vh_p[i] = w[i].real();
      },
      4096);
  return vh;
}

double hartree_energy(const PlanewaveSetup& setup, std::span<const double> rho,
                      std::span<const double> vh) {
  PWDFT_CHECK(rho.size() == vh.size(), "hartree_energy: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < rho.size(); ++i) acc += rho[i] * vh[i];
  return 0.5 * acc * setup.weight_dense();
}

}  // namespace pwdft::ham
