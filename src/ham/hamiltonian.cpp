#include "ham/hamiltonian.hpp"

#include "common/check.hpp"
#include "common/exec.hpp"
#include "grid/transforms.hpp"
#include "ham/hartree.hpp"

namespace pwdft::ham {

namespace {

/// An unset Fock FFT dispatch / pipeline mode inherits the
/// Hamiltonian-level choice, so one option pins both the dense-grid and the
/// wfc-grid transforms. The pipeline mode itself resolves its env default
/// here so apply() branches on a fixed value.
HamiltonianOptions normalize(HamiltonianOptions o) {
  if (o.fock.fft_dispatch == fft::ExecPath::kAuto) o.fock.fft_dispatch = o.fft_dispatch;
  if (o.op_pipeline == fft::PipelineMode::kAuto) o.op_pipeline = fft::pipeline_env_default();
  if (o.fock.op_pipeline == fft::PipelineMode::kAuto) o.fock.op_pipeline = o.op_pipeline;
  if (o.ace_refresh <= 0) o.ace_refresh = ace_refresh_env_default();
  return o;
}

/// Interior stage of the fused apply() pipeline: column b of the dense-grid
/// orbitals multiplied by the total local potential (plus the nonlocal
/// projectors) into the vlocs block. The same per-element statements as the
/// staged formulation, so the two schedules are bit-identical.
struct VmulHook {
  const double* vt = nullptr;
  const Complex* grids = nullptr;
  Complex* vlocs = nullptr;
  std::size_t nd = 0;
  const pseudo::NonlocalProjectors* nonlocal = nullptr;
  double weight = 0.0;
  static void run(void* user, std::size_t b) {
    const auto* c = static_cast<const VmulHook*>(user);
    const Complex* g = c->grids + b * c->nd;
    Complex* p = c->vlocs + b * c->nd;
    const double* v = c->vt;
    for (std::size_t k = 0; k < c->nd; ++k) p[k] = v[k] * g[k];
    if (c->nonlocal) c->nonlocal->apply_add({g, c->nd}, {p, c->nd}, c->weight);
  }
};

/// Tail stage of the fused apply() pipeline: kinetic term plus the gathered
/// local-potential coefficients for column b. Two separate pure loops
/// (multiply, then add) exactly like the band and staged paths — a single
/// fused expression could contract to FMA and break bit-identity between
/// the schedules.
struct KineticAddHook {
  const double* kin = nullptr;
  const Complex* psi = nullptr;
  const Complex* coeffs = nullptr;
  Complex* y = nullptr;
  std::size_t ng = 0;
  static void run(void* user, std::size_t b) {
    const auto* c = static_cast<const KineticAddHook*>(user);
    const double* kk = c->kin;
    const Complex* p = c->psi + b * c->ng;
    const Complex* co = c->coeffs + b * c->ng;
    Complex* yb = c->y + b * c->ng;
    for (std::size_t k = 0; k < c->ng; ++k) yb[k] = kk[k] * p[k];
    for (std::size_t k = 0; k < c->ng; ++k) yb[k] += co[k];
  }
};

}  // namespace

Hamiltonian::Hamiltonian(const PlanewaveSetup& setup, const pseudo::PseudoSpecies& species,
                         HamiltonianOptions options)
    : setup_(setup),
      options_(normalize(options)),
      fft_dense_(fft::shared_engine(setup.dense_grid.dims(), fft::RadixKernel::kAuto,
                                     options_.fft_dispatch)),
      fock_(setup, options_.hybrid, options_.fock),
      ace_(setup) {
  v_loc_ps_ = pseudo::build_local_potential(setup_.crystal, species, setup_.dense_grid);
  if (options_.use_nonlocal && !species.channels.empty()) {
    nonlocal_ = std::make_unique<pseudo::NonlocalProjectors>(setup_.crystal, species,
                                                             setup_.dense_grid,
                                                             setup_.crystal.lattice());
  }
  e_ewald_ = crystal::ewald_energy(setup_.crystal);

  const std::size_t nd = setup_.n_dense();
  v_hartree_.assign(nd, 0.0);
  v_xc_.assign(nd, 0.0);
  eps_xc_.assign(nd, 0.0);
  v_total_ = v_loc_ps_;
  set_vector_potential({0.0, 0.0, 0.0});
}

void Hamiltonian::update_density(std::span<const double> rho_dense) {
  const std::size_t nd = setup_.n_dense();
  PWDFT_CHECK(rho_dense.size() == nd, "Hamiltonian: density size mismatch");
  v_hartree_ = hartree_potential(setup_, *fft_dense_, rho_dense);
  xc::lda_pz(rho_dense, eps_xc_, v_xc_);
  for (std::size_t i = 0; i < nd; ++i) v_total_[i] = v_loc_ps_[i] + v_hartree_[i] + v_xc_[i];
}

void Hamiltonian::set_vector_potential(const grid::Vec3& a) {
  a_ = a;
  const auto& gv = setup_.sphere.gvec();
  kin_.resize(gv.size());
  for (std::size_t i = 0; i < gv.size(); ++i) {
    const grid::Vec3 ga = grid::add(gv[i], a);
    kin_[i] = 0.5 * grid::norm2(ga);
  }
}

void Hamiltonian::set_exchange_orbitals(const CMatrix& phi_local,
                                        std::span<const double> occ_global,
                                        const par::BlockPartition& bands, par::Comm& comm) {
  if (!options_.hybrid.enabled) return;
  ++exchange_serial_;
  fock_.set_orbitals(phi_local, occ_global, bands, comm);
  if (options_.use_ace) {
    // Counter-based refresh cadence (never timer-driven, so the rebuild
    // pattern — and hence the physics — is deterministic): rebuild on every
    // ace_refresh-th registration, and always when no projectors exist yet.
    // request_ace_refresh() resets the counter so schedule anchors (SCF
    // outer steps, MTS refresh steps) rebuild unconditionally.
    if (!ace_.ready() || ace_registrations_ % static_cast<std::uint64_t>(options_.ace_refresh) == 0)
      ace_.build(fock_, phi_local, comm);
    ++ace_registrations_;
  }
}

void Hamiltonian::apply(const CMatrix& psi_local, CMatrix& y_local, par::Comm& comm,
                        TimerRegistry* timers) {
  const std::size_t ng = setup_.n_g();
  PWDFT_CHECK(psi_local.rows() == ng, "Hamiltonian::apply: row mismatch");
  y_local.resize(ng, psi_local.cols());

  {
    WallTimer t;
    const std::size_t nd = setup_.n_dense();
    const std::size_t ncol = psi_local.cols();
    const double weight = setup_.weight_dense();
    const double inv_nd = 1.0 / static_cast<double>(nd);
    const double* vt = v_total_.data();

    if (options_.band_line_split && ncol > 0 && exec::prefer_line_split(ncol)) {
      // Hybrid band×line schedule: fewer bands than engine threads, so the
      // band-parallel loop below would leave threads idle through every
      // FFT. Run the identical math as three batched stages instead — the
      // fused transforms parallelize over the joint (band × FFT line)
      // domain (each one a single replay of a cached task graph on the
      // default dispatch path), the point-wise stages over all elements.
      // Every per-line kernel and per-element operation matches the band
      // path exactly, so results are bit-identical whichever path the
      // width selects (docs/threading.md).
      auto& ws = exec::workspace();
      CMatrix& grids = ws.cmat(exec::Slot::ham_grids, nd, ncol);
      CMatrix& vlocs = ws.cmat(exec::Slot::ham_vlocs, nd, ncol);
      CMatrix& coeffs = ws.cmat(exec::Slot::ham_coeffs, ng, ncol);
      if (options_.op_pipeline == fft::PipelineMode::kFused) {
        // Whole-operator pipeline: the six stages below are ONE
        // Fft3D::run_pipeline call — a single cached-graph replay (one pool
        // wake) on the graph dispatch path, with band b free to run its
        // V·ψ stage while band b' is still scattering. Every hook executes
        // the same per-element statements as the staged branch, so the two
        // are bit-identical at any width (tests/test_band_parallel.cpp).
        grid::ScatterHook scatter{setup_.smap_dense.map.data(), ng,         psi_local.data(),
                                  ng,                           grids.data(), nd};
        VmulHook vmul{vt, grids.data(), vlocs.data(), nd, nonlocal_.get(), weight};
        grid::GatherHook gather{setup_.smap_dense.map.data(), ng,     vlocs.data(), nd,
                                inv_nd,                       coeffs.data(), ng};
        KineticAddHook tail{kin_.data(), psi_local.data(), coeffs.data(), y_local.data(), ng};
        const std::array<fft::Fft3D::Stage, 6> stages = {
            fft::Fft3D::Stage::make_hook(&grid::ScatterHook::run, &scatter),
            grid::inverse_passes_stage(setup_.smap_dense, grids.data()),
            fft::Fft3D::Stage::make_hook(&VmulHook::run, &vmul),
            grid::forward_passes_stage(setup_.smap_dense, vlocs.data()),
            fft::Fft3D::Stage::make_hook(&grid::GatherHook::run, &gather),
            fft::Fft3D::Stage::make_hook(&KineticAddHook::run, &tail)};
        fft_dense_->run_pipeline(ncol, stages);
      } else {
        grid::sphere_to_grid_many(*fft_dense_, setup_.smap_dense, psi_local, grids);
        const Complex* gw = grids.data();
        Complex* vp = vlocs.data();
        exec::parallel_for_cols(ncol, nd, [=](std::size_t col, std::size_t r0, std::size_t len) {
          const double* v = vt + r0;
          const Complex* g = gw + col * nd + r0;
          Complex* p = vp + col * nd + r0;
          for (std::size_t k = 0; k < len; ++k) p[k] = v[k] * g[k];
        });
        if (nonlocal_) {
          exec::parallel_for(ncol, [&](std::size_t jb, std::size_t je) {
            for (std::size_t j = jb; j < je; ++j)
              nonlocal_->apply_add({grids.col(j), nd}, {vlocs.col(j), nd}, weight);
          });
        }
        grid::grid_to_sphere_many(*fft_dense_, setup_.smap_dense, vlocs, inv_nd, coeffs);
        // Two separate stages (pure multiply, then pure add) exactly like
        // the band path — a single fused expression could contract to FMA
        // and break bit-identity between the two schedules.
        const double* kin = kin_.data();
        const Complex* co = coeffs.data();
        const Complex* ps = psi_local.data();
        Complex* yp = y_local.data();
        exec::parallel_for_cols(ncol, ng, [=](std::size_t col, std::size_t r0, std::size_t len) {
          const double* kk = kin + r0;
          const Complex* p = ps + col * ng + r0;
          Complex* y = yp + col * ng + r0;
          for (std::size_t k = 0; k < len; ++k) y[k] = kk[k] * p[k];
        });
        exec::parallel_for(
            ncol * ng,
            [=](std::size_t b, std::size_t e) {
              for (std::size_t i = b; i < e; ++i) yp[i] += co[i];
            },
            4096);
      }
    } else {
      // Band-parallel: each band writes only its own column of y, so the
      // loop runs on the engine with bit-identical results at any thread
      // count. Per-band scratch is drawn from the executing thread's arena
      // inside the task (two bands on one thread reuse the same buffers
      // serially).
      exec::parallel_for(ncol, [&](std::size_t jb, std::size_t je) {
        auto& ws = exec::workspace();
        auto grid_work = ws.cbuf(exec::Slot::grid_a, nd);
        auto vloc_part = ws.cbuf(exec::Slot::grid_b, nd);
        auto coeffs = ws.cbuf(exec::Slot::coeffs_a, ng);
        for (std::size_t j = jb; j < je; ++j) {
          const Complex* c = psi_local.col(j);
          Complex* y = y_local.col(j);
          // Kinetic term on the sphere.
          for (std::size_t i = 0; i < ng; ++i) y[i] = kin_[i] * c[i];

          // Local potential + nonlocal projectors in real space (dense
          // grid): fused sphere->grid, point-wise V, fused grid->sphere.
          // The forward pass only completes the z-lines that are gathered
          // afterwards.
          grid::sphere_to_grid(*fft_dense_, setup_.smap_dense, {c, ng}, grid_work);
          Complex* gw = grid_work.data();
          Complex* vp = vloc_part.data();
          for (std::size_t i = 0; i < nd; ++i) vp[i] = vt[i] * gw[i];
          if (nonlocal_) nonlocal_->apply_add(grid_work, vloc_part, weight);
          grid::grid_to_sphere(*fft_dense_, setup_.smap_dense, vloc_part, inv_nd, coeffs);
          for (std::size_t i = 0; i < ng; ++i) y[i] += coeffs[i];
        }
      });
    }
    if (timers) timers->add("hpsi_local", t.seconds());
  }

  if (options_.hybrid.enabled) {
    WallTimer t;
    PWDFT_CHECK(fock_.has_orbitals(), "Hamiltonian::apply: exchange orbitals not set");
    if (options_.use_ace) {
      ace_.apply_add(psi_local, y_local, comm);
    } else {
      fock_.apply_add(psi_local, y_local, comm);
    }
    if (timers) timers->add("hpsi_fock", t.seconds());
  }
}

}  // namespace pwdft::ham
