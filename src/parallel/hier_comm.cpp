#include "parallel/hier_comm.hpp"

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/exec.hpp"
#include "common/timer.hpp"

namespace pwdft::par {

HierComm::HierComm(Comm& world, int band_groups) : world_(&world), nbg_(band_groups) {
  PWDFT_CHECK(band_groups >= 1, "HierComm: need at least one band group");
  PWDFT_CHECK(world.size() % band_groups == 0,
              "HierComm: " << band_groups << " band groups do not divide " << world.size()
                           << " ranks");
  npg_ = world.size() / nbg_;
  const int r = world.rank();
  // Row-major 2D layout: consecutive world ranks share a band group, so the
  // grid communicator (the transpose rendezvous) is a contiguous rank block.
  grid_ = world.split(/*color=*/r / npg_, /*key=*/r % npg_);
  band_ = world.split(/*color=*/r % npg_, /*key=*/r / npg_);
  PWDFT_CHECK(grid_->size() == npg_ && band_->size() == nbg_,
              "HierComm: split produced an inconsistent layout");
}

int HierComm::band_groups_from_env(int world_size) {
  // Strict parse (common/env.hpp): a malformed count, or one that does not
  // divide the rank count, used to fall back silently to the flat layout —
  // an experiment asking for a 2D layout must not run 1D without saying so.
  const long v = env::integer("PWDFT_BAND_GROUPS", 1, 1, world_size);
  PWDFT_CHECK(world_size % v == 0, "PWDFT_BAND_GROUPS=" << v << " does not divide the rank count "
                                                        << world_size);
  return static_cast<int>(v);
}

namespace {

template <typename T>
std::span<T> hier_buf(exec::Slot slot, std::size_t n) {
  if constexpr (std::is_same_v<T, Complex>)
    return exec::workspace().cbuf(slot, n);
  else
    return exec::workspace().rbuf(slot, n);
}

}  // namespace

template <typename T>
void HierComm::staged_allreduce(T* data, std::size_t count) {
  // Two allgather hops move every rank's partial vector to every rank in
  // world-rank order (world rank = group * npg + grid rank, and both hops
  // keep their blocks rank-ordered), then each rank folds all P partials
  // locally starting from zero — the identical summation order, and thus
  // identical bits, as the flat thread-backed allreduce. The transport
  // volume is P * count, which is exactly what the flat rendezvous
  // implementation reads per rank as well; an MPI backend would trade this
  // for a grid-level reduce + band-level allreduce once callers opt out of
  // the bitwise contract.
  WallTimer t;
  const int np = size();
  const std::size_t bytes = count * sizeof(T);
  auto group = hier_buf<T>(exec::Slot::hier_group, static_cast<std::size_t>(npg_) * count);
  auto all = hier_buf<T>(exec::Slot::hier_world, static_cast<std::size_t>(np) * count);

  std::vector<std::size_t> counts(static_cast<std::size_t>(std::max(npg_, nbg_)));
  std::vector<std::size_t> displs(counts.size());
  for (int r = 0; r < npg_; ++r) {
    counts[r] = bytes;
    displs[r] = static_cast<std::size_t>(r) * bytes;
  }
  grid_->allgatherv_bytes(reinterpret_cast<const unsigned char*>(data), bytes,
                          reinterpret_cast<unsigned char*>(group.data()), counts.data(),
                          displs.data());
  const std::size_t gbytes = static_cast<std::size_t>(npg_) * bytes;
  for (int g = 0; g < nbg_; ++g) {
    counts[g] = gbytes;
    displs[g] = static_cast<std::size_t>(g) * gbytes;
  }
  band_->allgatherv_bytes(reinterpret_cast<const unsigned char*>(group.data()), gbytes,
                          reinterpret_cast<unsigned char*>(all.data()), counts.data(),
                          displs.data());

  // Ordered fold; elements are disjoint across tasks, every element adds
  // ranks 0..P-1 in order, so the result is width-independent.
  const T* all_p = all.data();
  exec::parallel_for(
      count,
      [=](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          T acc{};
          for (int r = 0; r < np; ++r) acc += all_p[static_cast<std::size_t>(r) * count + i];
          data[i] = acc;
        }
      },
      4096);
  stats_.add(CommOp::kAllreduce, bytes, t.seconds());
}

void HierComm::allreduce_sum(double* data, std::size_t count) { staged_allreduce(data, count); }

void HierComm::allreduce_sum(Complex* data, std::size_t count) { staged_allreduce(data, count); }

void HierComm::merge_substats() {
  stats_.merge(grid_->stats());
  stats_.merge(band_->stats());
  grid_->stats().reset();
  band_->stats().reset();
}

}  // namespace pwdft::par
