#include "parallel/comm.hpp"

#include "common/check.hpp"

namespace pwdft::par {

const char* comm_op_name(CommOp op) {
  switch (op) {
    case CommOp::kBcast:
      return "Bcast";
    case CommOp::kAllreduce:
      return "Allreduce";
    case CommOp::kAlltoallv:
      return "Alltoallv";
    case CommOp::kAllgatherv:
      return "Allgatherv";
    case CommOp::kSendRecv:
      return "SendRecv";
    case CommOp::kBarrier:
      return "Barrier";
    default:
      return "?";
  }
}

void SerialComm::barrier() { stats_.add(CommOp::kBarrier, 0, 0.0); }

void SerialComm::bcast_bytes(void* /*data*/, std::size_t /*bytes*/, int root) {
  PWDFT_CHECK(root == 0, "SerialComm: root out of range");
  stats_.add(CommOp::kBcast, 0, 0.0);  // nothing received on a 1-rank comm
}

void SerialComm::allreduce_sum(double* /*data*/, std::size_t /*count*/) {
  stats_.add(CommOp::kAllreduce, 0, 0.0);
}

void SerialComm::allreduce_sum(Complex* /*data*/, std::size_t /*count*/) {
  stats_.add(CommOp::kAllreduce, 0, 0.0);
}

void SerialComm::alltoallv_bytes(const unsigned char* send, const std::size_t* send_counts,
                                 const std::size_t* send_displs, unsigned char* recv,
                                 const std::size_t* recv_counts,
                                 const std::size_t* recv_displs) {
  PWDFT_CHECK(send_counts[0] == recv_counts[0], "SerialComm alltoallv: count mismatch");
  std::memcpy(recv + recv_displs[0], send + send_displs[0], send_counts[0]);
  stats_.add(CommOp::kAlltoallv, 0, 0.0);
}

void SerialComm::allgatherv_bytes(const unsigned char* send, std::size_t send_bytes,
                                  unsigned char* recv, const std::size_t* recv_counts,
                                  const std::size_t* recv_displs) {
  PWDFT_CHECK(recv_counts[0] == send_bytes, "SerialComm allgatherv: count mismatch");
  std::memcpy(recv + recv_displs[0], send, send_bytes);
  stats_.add(CommOp::kAllgatherv, 0, 0.0);
}

void SerialComm::send_bytes(const void*, std::size_t, int, int) {
  PWDFT_CHECK(false, "SerialComm: point-to-point send on a 1-rank communicator");
}

void SerialComm::recv_bytes(void*, std::size_t, int, int) {
  PWDFT_CHECK(false, "SerialComm: point-to-point recv on a 1-rank communicator");
}

std::unique_ptr<Comm> SerialComm::dup() { return std::make_unique<SerialComm>(); }

std::unique_ptr<Comm> SerialComm::split(int /*color*/, int /*key*/) {
  // The one rank is alone in its color group whatever the color is.
  return std::make_unique<SerialComm>();
}

}  // namespace pwdft::par
