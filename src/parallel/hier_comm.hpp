#pragma once

/// \file hier_comm.hpp
/// Hierarchical 2D (band-group × grid) communicator (paper §3.1, Fig. 1).
///
/// The paper distributes PT-CN over a 2D process grid: bands are split
/// across *band groups*, and within one group the planewave/grid work is
/// split across *grid ranks*. HierComm realizes that layout on top of the
/// flat Comm interface using Comm::split(), so SerialComm and ThreadComm —
/// and any future MPI comm — back it without changes:
///
///   world rank r  =  band_group(r) * n_grid_ranks + grid_rank(r)
///
///   grid():  the ranks of my band group (size n_grid_ranks). Wavefunction
///            transposes and G-space GEMMs of the group's band slice run
///            here — the Alltoallv rendezvous shrinks from P to P_g ranks
///            and the band groups transpose concurrently.
///   band():  the ranks sharing my grid slot across all groups (size
///            n_band_groups). Cross-group band reductions run here.
///   world(): the parent, untouched — whole-world collectives (the Fock
///            orbital broadcasts, Alg. 2) keep their flat rank order.
///
/// HierComm is itself a Comm over the world rank set, so every existing
/// operator runs on it unchanged. Its allreduce_sum is the *staged ordered*
/// reduction: partial vectors are allgathered up the two levels (grid, then
/// band) and every rank folds all P contributions locally in world-rank
/// order — the exact summation order of the flat ThreadComm allreduce, so
/// results stay bit-identical across 1D and 2D layouts (the determinism
/// contract of docs/threading.md survives the hierarchy). All other
/// collectives delegate to the world communicator.

#include <memory>

#include "parallel/comm.hpp"
#include "parallel/distribution.hpp"

namespace pwdft::par {

class HierComm final : public Comm {
 public:
  /// Collective on `world`; `band_groups` must divide world.size() and be
  /// identical on every rank. `world` must outlive the HierComm.
  HierComm(Comm& world, int band_groups);

  /// Resolves PWDFT_BAND_GROUPS (clamped to a divisor of world_size, so an
  /// oversized or non-dividing request falls back to 1 group = flat layout).
  static int band_groups_from_env(int world_size);

  Comm& world() { return *world_; }
  Comm& grid() { return *grid_; }
  Comm& band() { return *band_; }
  int n_band_groups() const { return nbg_; }
  int n_grid_ranks() const { return npg_; }
  int band_group() const { return world_->rank() / npg_; }
  int grid_rank() const { return world_->rank() % npg_; }

  /// The outer level of the nested band distribution: global bands split
  /// contiguously across band groups (each group's slice is then split
  /// across its grid ranks by the caller's BlockPartition of choice).
  BlockPartition group_bands(std::size_t n_bands) const {
    return BlockPartition(n_bands, nbg_);
  }

  /// Folds the sub-communicators' traffic into this (world-level) record so
  /// comm-volume accounting sees one total per rank.
  void merge_substats();

  // Comm interface (world rank set).
  int rank() const override { return world_->rank(); }
  int size() const override { return world_->size(); }
  void barrier() override { world_->barrier(); }
  void bcast_bytes(void* data, std::size_t bytes, int root) override {
    world_->bcast_bytes(data, bytes, root);
  }
  /// Staged ordered reduction (see file comment): grid-level allgather of
  /// the partial vectors, band-level allgather of the group blocks, then a
  /// local fold over all P partials in world-rank order. Bit-identical to
  /// the flat thread-backed allreduce.
  void allreduce_sum(double* data, std::size_t count) override;
  void allreduce_sum(Complex* data, std::size_t count) override;
  void alltoallv_bytes(const unsigned char* send, const std::size_t* send_counts,
                       const std::size_t* send_displs, unsigned char* recv,
                       const std::size_t* recv_counts, const std::size_t* recv_displs) override {
    world_->alltoallv_bytes(send, send_counts, send_displs, recv, recv_counts, recv_displs);
  }
  void allgatherv_bytes(const unsigned char* send, std::size_t send_bytes, unsigned char* recv,
                        const std::size_t* recv_counts, const std::size_t* recv_displs) override {
    world_->allgatherv_bytes(send, send_bytes, recv, recv_counts, recv_displs);
  }
  void send_bytes(const void* data, std::size_t bytes, int dest, int tag) override {
    world_->send_bytes(data, bytes, dest, tag);
  }
  void recv_bytes(void* data, std::size_t bytes, int src, int tag) override {
    world_->recv_bytes(data, bytes, src, tag);
  }
  std::unique_ptr<Comm> dup() override { return world_->dup(); }
  std::unique_ptr<Comm> split(int color, int key) override {
    return world_->split(color, key);
  }

 private:
  template <typename T>
  void staged_allreduce(T* data, std::size_t count);

  Comm* world_ = nullptr;
  std::unique_ptr<Comm> grid_;
  std::unique_ptr<Comm> band_;
  int nbg_ = 1;
  int npg_ = 1;
};

}  // namespace pwdft::par
