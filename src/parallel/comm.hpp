#pragma once

/// \file comm.hpp
/// Message-passing abstraction ("vmpi") standing in for MPI.
///
/// All distributed algorithms in this library (Alg. 2 Fock broadcast
/// pipeline, Alg. 3 residual evaluation, density Allreduce, wavefunction
/// transposes) are written against this interface, exactly as the paper's
/// PWDFT is written against MPI. Two implementations exist:
///   - SerialComm: the 1-rank case, all ops are local no-ops/copies;
///   - ThreadComm: N ranks as threads in one process with rendezvous
///     collectives (see thread_comm.hpp).
/// Every operation records call counts, payload bytes, and wall time into
/// CommStats; the perf model validates its volume formulas (paper §7)
/// against these measured numbers.

#include <array>
#include <cstddef>
#include <cstring>
#include <memory>
#include <string>

#include "common/types.hpp"

namespace pwdft::par {

enum class CommOp : int {
  kBcast = 0,
  kAllreduce,
  kAlltoallv,
  kAllgatherv,
  kSendRecv,
  kBarrier,
  kCount
};

const char* comm_op_name(CommOp op);

struct OpStats {
  std::size_t calls = 0;
  std::size_t bytes = 0;  ///< receive-side payload volume
  double seconds = 0.0;
};

/// Per-rank accumulated communication statistics.
class CommStats {
 public:
  void add(CommOp op, std::size_t bytes, double seconds) {
    auto& s = ops_[static_cast<int>(op)];
    ++s.calls;
    s.bytes += bytes;
    s.seconds += seconds;
  }
  const OpStats& get(CommOp op) const { return ops_[static_cast<int>(op)]; }
  /// Folds another rank-local record into this one (used to account traffic
  /// carried by a dup()'ed overlap communicator on its parent).
  void merge(const CommStats& other) {
    for (int op = 0; op < static_cast<int>(CommOp::kCount); ++op) {
      ops_[op].calls += other.ops_[op].calls;
      ops_[op].bytes += other.ops_[op].bytes;
      ops_[op].seconds += other.ops_[op].seconds;
    }
  }
  std::size_t total_bytes() const {
    std::size_t t = 0;
    for (const auto& s : ops_) t += s.bytes;
    return t;
  }
  void reset() { ops_ = {}; }

 private:
  std::array<OpStats, static_cast<int>(CommOp::kCount)> ops_{};
};

/// Abstract communicator. Methods are collective unless noted; every rank of
/// the communicator must call them in the same order (MPI semantics).
class Comm {
 public:
  virtual ~Comm() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  virtual void barrier() = 0;
  virtual void bcast_bytes(void* data, std::size_t bytes, int root) = 0;
  virtual void allreduce_sum(double* data, std::size_t count) = 0;
  virtual void allreduce_sum(Complex* data, std::size_t count) = 0;
  /// Byte-granularity all-to-all; counts/displs arrays have size() entries.
  virtual void alltoallv_bytes(const unsigned char* send, const std::size_t* send_counts,
                               const std::size_t* send_displs, unsigned char* recv,
                               const std::size_t* recv_counts, const std::size_t* recv_displs) = 0;
  virtual void allgatherv_bytes(const unsigned char* send, std::size_t send_bytes,
                                unsigned char* recv, const std::size_t* recv_counts,
                                const std::size_t* recv_displs) = 0;
  /// Point-to-point (not collective).
  virtual void send_bytes(const void* data, std::size_t bytes, int dest, int tag) = 0;
  virtual void recv_bytes(void* data, std::size_t bytes, int src, int tag) = 0;

  /// Collective: every rank obtains a communicator with the same ranks but
  /// an independent rendezvous domain (MPI_Comm_dup). Collectives on the
  /// duplicate never interleave with collectives on the parent, which is
  /// what makes it safe to run a transpose on the exec engine's async lane
  /// while the Fock band loop broadcasts on the parent (paper §3.2 step 5).
  /// The duplicate records its own CommStats; merge() them into the parent
  /// if the traffic should be accounted together.
  virtual std::unique_ptr<Comm> dup() = 0;

  /// Collective: partitions the ranks into sub-communicators, one per
  /// distinct `color` (MPI_Comm_split; every rank must pass a valid color —
  /// there is no MPI_UNDEFINED opt-out). Within a color, new ranks are
  /// assigned by ascending (key, parent rank). The sub-communicator owns an
  /// independent rendezvous domain, so its collectives never interleave
  /// with the parent's or a sibling color's — two band groups can run their
  /// grid-level transposes concurrently (see par::HierComm).
  virtual std::unique_ptr<Comm> split(int color, int key) = 0;

  /// Typed broadcast convenience.
  template <typename T>
  void bcast(T* data, std::size_t count, int root) {
    bcast_bytes(static_cast<void*>(data), count * sizeof(T), root);
  }

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

 protected:
  CommStats stats_;
};

/// Single-rank communicator; every collective is a local no-op.
class SerialComm final : public Comm {
 public:
  int rank() const override { return 0; }
  int size() const override { return 1; }
  void barrier() override;
  void bcast_bytes(void* data, std::size_t bytes, int root) override;
  void allreduce_sum(double* data, std::size_t count) override;
  void allreduce_sum(Complex* data, std::size_t count) override;
  void alltoallv_bytes(const unsigned char* send, const std::size_t* send_counts,
                       const std::size_t* send_displs, unsigned char* recv,
                       const std::size_t* recv_counts, const std::size_t* recv_displs) override;
  void allgatherv_bytes(const unsigned char* send, std::size_t send_bytes, unsigned char* recv,
                        const std::size_t* recv_counts, const std::size_t* recv_displs) override;
  void send_bytes(const void* data, std::size_t bytes, int dest, int tag) override;
  void recv_bytes(void* data, std::size_t bytes, int src, int tag) override;
  std::unique_ptr<Comm> dup() override;
  std::unique_ptr<Comm> split(int color, int key) override;
};

}  // namespace pwdft::par
