#include "parallel/thread_comm.hpp"

#include <algorithm>
#include <barrier>
#include <cstring>
#include <exception>
#include <thread>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace pwdft::par {

namespace detail {

struct SharedState {
  explicit SharedState(int n) : nranks(n), sync(n), ptrs(n), aux(n) {}

  int nranks;
  std::barrier<> sync;
  /// Per-rank published buffer pointer for the current collective.
  std::vector<const void*> ptrs;
  /// Per-rank published auxiliary pointer (counts/displs for alltoallv).
  std::vector<std::array<const std::size_t*, 2>> aux;

  // Point-to-point mailbox: key = (src, dst, tag).
  struct MailEntry {
    const void* data = nullptr;
    std::size_t bytes = 0;
    bool consumed = false;
  };
  std::mutex mail_mutex;
  std::condition_variable mail_cv;
  std::map<std::tuple<int, int, int>, MailEntry> mailbox;
};

}  // namespace detail

using detail::SharedState;

ThreadComm::ThreadComm(std::shared_ptr<SharedState> shared, int rank)
    : shared_(std::move(shared)), rank_(rank) {}

ThreadComm::~ThreadComm() = default;

int ThreadComm::size() const { return shared_->nranks; }

void ThreadComm::barrier() {
  WallTimer t;
  shared_->sync.arrive_and_wait();
  stats_.add(CommOp::kBarrier, 0, t.seconds());
}

void ThreadComm::bcast_bytes(void* data, std::size_t bytes, int root) {
  PWDFT_CHECK(root >= 0 && root < size(), "bcast: root out of range");
  WallTimer t;
  shared_->ptrs[rank_] = data;
  shared_->sync.arrive_and_wait();
  if (rank_ != root) std::memcpy(data, shared_->ptrs[root], bytes);
  shared_->sync.arrive_and_wait();
  stats_.add(CommOp::kBcast, rank_ == root ? 0 : bytes, t.seconds());
}

template <typename T>
void ThreadComm::allreduce_sum_impl(T* data, std::size_t count) {
  WallTimer t;
  shared_->ptrs[rank_] = data;
  shared_->sync.arrive_and_wait();
  std::vector<T> acc(count, T{});
  for (int r = 0; r < size(); ++r) {
    const T* src = static_cast<const T*>(shared_->ptrs[r]);
    for (std::size_t i = 0; i < count; ++i) acc[i] += src[i];
  }
  shared_->sync.arrive_and_wait();  // all ranks finished reading
  std::memcpy(data, acc.data(), count * sizeof(T));
  stats_.add(CommOp::kAllreduce, count * sizeof(T), t.seconds());
}

void ThreadComm::allreduce_sum(double* data, std::size_t count) {
  allreduce_sum_impl(data, count);
}

void ThreadComm::allreduce_sum(Complex* data, std::size_t count) {
  allreduce_sum_impl(data, count);
}

void ThreadComm::alltoallv_bytes(const unsigned char* send, const std::size_t* send_counts,
                                 const std::size_t* send_displs, unsigned char* recv,
                                 const std::size_t* recv_counts,
                                 const std::size_t* recv_displs) {
  WallTimer t;
  shared_->ptrs[rank_] = send;
  shared_->aux[rank_] = {send_counts, send_displs};
  shared_->sync.arrive_and_wait();
  std::size_t received = 0;
  for (int r = 0; r < size(); ++r) {
    const auto* src = static_cast<const unsigned char*>(shared_->ptrs[r]);
    const std::size_t* sc = shared_->aux[r][0];
    const std::size_t* sd = shared_->aux[r][1];
    PWDFT_CHECK(sc[rank_] == recv_counts[r],
                "alltoallv: rank " << r << " sends " << sc[rank_] << " bytes, expected "
                                   << recv_counts[r]);
    std::memcpy(recv + recv_displs[r], src + sd[rank_], sc[rank_]);
    if (r != rank_) received += sc[rank_];
  }
  shared_->sync.arrive_and_wait();
  stats_.add(CommOp::kAlltoallv, received, t.seconds());
}

void ThreadComm::allgatherv_bytes(const unsigned char* send, std::size_t send_bytes,
                                  unsigned char* recv, const std::size_t* recv_counts,
                                  const std::size_t* recv_displs) {
  WallTimer t;
  shared_->ptrs[rank_] = send;
  shared_->aux[rank_][0] = &send_bytes;
  shared_->sync.arrive_and_wait();
  std::size_t received = 0;
  for (int r = 0; r < size(); ++r) {
    const std::size_t bytes = *shared_->aux[r][0];
    PWDFT_CHECK(bytes == recv_counts[r], "allgatherv: count mismatch from rank " << r);
    std::memcpy(recv + recv_displs[r], shared_->ptrs[r], bytes);
    if (r != rank_) received += bytes;
  }
  shared_->sync.arrive_and_wait();
  stats_.add(CommOp::kAllgatherv, received, t.seconds());
}

void ThreadComm::send_bytes(const void* data, std::size_t bytes, int dest, int tag) {
  PWDFT_CHECK(dest >= 0 && dest < size() && dest != rank_, "send: bad destination");
  WallTimer t;
  const auto key = std::make_tuple(rank_, dest, tag);
  std::unique_lock lock(shared_->mail_mutex);
  shared_->mail_cv.wait(lock, [&] { return shared_->mailbox.find(key) == shared_->mailbox.end(); });
  shared_->mailbox[key] = {data, bytes, false};
  shared_->mail_cv.notify_all();
  shared_->mail_cv.wait(lock, [&] {
    auto it = shared_->mailbox.find(key);
    return it != shared_->mailbox.end() && it->second.consumed;
  });
  shared_->mailbox.erase(key);
  shared_->mail_cv.notify_all();
  stats_.add(CommOp::kSendRecv, bytes, t.seconds());
}

void ThreadComm::recv_bytes(void* data, std::size_t bytes, int src, int tag) {
  PWDFT_CHECK(src >= 0 && src < size() && src != rank_, "recv: bad source");
  WallTimer t;
  const auto key = std::make_tuple(src, rank_, tag);
  std::unique_lock lock(shared_->mail_mutex);
  shared_->mail_cv.wait(lock, [&] {
    auto it = shared_->mailbox.find(key);
    return it != shared_->mailbox.end() && !it->second.consumed;
  });
  auto& entry = shared_->mailbox[key];
  PWDFT_CHECK(entry.bytes == bytes, "recv: size mismatch (sent " << entry.bytes << ", expected "
                                                                 << bytes << ")");
  std::memcpy(data, entry.data, bytes);
  entry.consumed = true;
  shared_->mail_cv.notify_all();
  stats_.add(CommOp::kSendRecv, bytes, t.seconds());
}

std::unique_ptr<Comm> ThreadComm::dup() {
  // Rank 0 allocates the new rendezvous area and publishes the shared_ptr's
  // address through the parent's publish/barrier protocol; everyone copies
  // it (ref-count keeps it alive for all ranks).
  std::shared_ptr<SharedState> next;
  if (rank_ == 0) next = std::make_shared<SharedState>(shared_->nranks);
  shared_->ptrs[rank_] = &next;
  shared_->sync.arrive_and_wait();
  if (rank_ != 0)
    next = *static_cast<const std::shared_ptr<SharedState>*>(shared_->ptrs[0]);
  shared_->sync.arrive_and_wait();
  return std::make_unique<ThreadComm>(std::move(next), rank_);
}

std::unique_ptr<Comm> ThreadComm::split(int color, int key) {
  // Round 1: every rank publishes its (color, key) pair through the parent's
  // rendezvous area; everyone reads all pairs, so the membership and the new
  // rank order of every color group are known identically on all ranks.
  const int np = size();
  const std::array<int, 2> mine{color, key};
  shared_->ptrs[rank_] = mine.data();
  shared_->sync.arrive_and_wait();
  // Members of my color, ordered by (key, parent rank) — the MPI_Comm_split
  // rank rule. BlockPartition-style stability: parent rank breaks key ties.
  std::vector<std::pair<int, int>> members;  // (key, parent rank)
  for (int r = 0; r < np; ++r) {
    const int* p = static_cast<const int*>(shared_->ptrs[r]);
    if (p[0] == color) members.emplace_back(p[1], r);
  }
  shared_->sync.arrive_and_wait();  // all ranks finished reading the pairs
  std::sort(members.begin(), members.end());
  int new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i)
    if (members[i].second == rank_) new_rank = static_cast<int>(i);
  PWDFT_CHECK(new_rank >= 0, "split: rank not in its own color group");
  const int leader = members[0].second;  // parent rank of the group's rank 0

  // Round 2: each group's leader allocates the group's rendezvous area and
  // publishes the shared_ptr's address; members copy it (the ref-count keeps
  // it alive for everyone), exactly the dup() handshake per color.
  std::shared_ptr<SharedState> next;
  if (rank_ == leader) next = std::make_shared<SharedState>(static_cast<int>(members.size()));
  shared_->ptrs[rank_] = &next;
  shared_->sync.arrive_and_wait();
  if (rank_ != leader)
    next = *static_cast<const std::shared_ptr<SharedState>*>(shared_->ptrs[leader]);
  shared_->sync.arrive_and_wait();
  return std::make_unique<ThreadComm>(std::move(next), new_rank);
}

std::vector<CommStats> ThreadGroup::run(int nranks, const RankFn& fn) {
  PWDFT_CHECK(nranks >= 1, "ThreadGroup: need at least one rank");
  auto shared = std::make_shared<SharedState>(nranks);
  std::vector<CommStats> stats(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(nranks);

  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      ThreadComm comm(shared, r);
      try {
        fn(comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
      stats[r] = comm.stats();
    });
  }
  for (auto& th : threads) th.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return stats;
}

}  // namespace pwdft::par
