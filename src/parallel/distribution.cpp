#include "parallel/distribution.hpp"

// Header-only logic; translation unit kept so the library exposes a stable
// object for this module and for future non-inline additions.
