#include "parallel/transpose.hpp"

#include <complex>
#include <cstring>
#include <span>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/exec.hpp"
#include "parallel/overlap.hpp"

namespace pwdft::par {

namespace {

using ComplexF = std::complex<float>;

template <typename Wire>
std::span<Wire> wire_buf(exec::Slot slot, std::size_t n) {
  if constexpr (std::is_same_v<Wire, Complex>)
    return exec::workspace().cbuf(slot, n);
  else
    return exec::workspace().fbuf(slot, n);
}

/// Byte counts/displacements of one transpose direction: block (dst <- src)
/// carries the sub-matrix of src's local bands restricted to dst's G rows,
/// in band-major order.
struct Plan {
  std::vector<std::size_t> scounts, sdispls, rcounts, rdispls;
  std::size_t sbytes = 0, rbytes = 0;
};

template <typename Wire>
Plan make_plan(int np, int me, const BlockPartition& gvecs, const BlockPartition& bands,
               bool to_g) {
  Plan plan;
  plan.scounts.resize(np);
  plan.sdispls.resize(np);
  plan.rcounts.resize(np);
  plan.rdispls.resize(np);
  for (int r = 0; r < np; ++r) {
    // Element counts of the exchanged blocks.
    const std::size_t fwd = bands.count(me) * gvecs.count(r);  // me -> r (band_to_g)
    const std::size_t bwd = bands.count(r) * gvecs.count(me);  // r -> me (band_to_g)
    plan.scounts[r] = (to_g ? fwd : bwd) * sizeof(Wire);
    plan.rcounts[r] = (to_g ? bwd : fwd) * sizeof(Wire);
    plan.sdispls[r] = plan.sbytes;
    plan.rdispls[r] = plan.rbytes;
    plan.sbytes += plan.scounts[r];
    plan.rbytes += plan.rcounts[r];
  }
  return plan;
}

/// Pack phase: one task per (destination rank, local band) for band->G, per
/// global band for G->band; every wire element is written by exactly one
/// task, so the phase is bit-identical at any engine width.
template <typename Wire>
void pack_phase(const Plan& plan, int np, const BlockPartition& gvecs,
                const BlockPartition& bands, int me, bool to_g, const CMatrix& in,
                Wire* sendbuf) {
  const std::size_t nb_loc = bands.count(me);
  const std::size_t ng_loc = gvecs.count(me);
  const std::size_t nb_tot = bands.total();
  const std::size_t* sdispls = plan.sdispls.data();
  if (to_g) {
    PWDFT_CHECK(in.rows() == gvecs.total() && in.cols() == nb_loc,
                "band_to_g: bad band-local shape");
    exec::parallel_for(static_cast<std::size_t>(np) * nb_loc, [&](std::size_t b, std::size_t e) {
      for (std::size_t t = b; t < e; ++t) {
        const int r = static_cast<int>(t / nb_loc);
        const std::size_t j = t % nb_loc;
        const std::size_t g0 = gvecs.offset(r), gn = gvecs.count(r);
        const Complex* src = in.col(j) + g0;
        Wire* dst = sendbuf + sdispls[r] / sizeof(Wire) + j * gn;
        for (std::size_t i = 0; i < gn; ++i) dst[i] = Wire(src[i]);
      }
    });
  } else {
    PWDFT_CHECK(in.rows() == ng_loc && in.cols() == nb_tot, "g_to_band: bad G-local shape");
    exec::parallel_for(nb_tot, [&](std::size_t b, std::size_t e) {
      for (std::size_t j = b; j < e; ++j) {
        const int r = bands.owner(j);
        const Complex* src = in.col(j);
        Wire* dst = sendbuf + sdispls[r] / sizeof(Wire) + (j - bands.offset(r)) * ng_loc;
        for (std::size_t i = 0; i < ng_loc; ++i) dst[i] = Wire(src[i]);
      }
    });
  }
}

/// Exchange phase: the only phase that touches the communicator.
void exchange_phase(Comm& comm, const Plan& plan, const unsigned char* send,
                    unsigned char* recv) {
  comm.alltoallv_bytes(send, plan.scounts.data(), plan.sdispls.data(), recv,
                       plan.rcounts.data(), plan.rdispls.data());
}

/// Unpack phase: each task owns a full output column (or a disjoint row
/// range of one), so writes never race.
template <typename Wire>
void unpack_phase(const Plan& plan, int np, const BlockPartition& gvecs,
                  const BlockPartition& bands, int me, bool to_g, const Wire* recvbuf,
                  CMatrix& out) {
  const std::size_t nb_loc = bands.count(me);
  const std::size_t ng_loc = gvecs.count(me);
  const std::size_t nb_tot = bands.total();
  const std::size_t* rdispls = plan.rdispls.data();
  if (to_g) {
    out.resize(ng_loc, nb_tot);
    exec::parallel_for(nb_tot, [&](std::size_t b, std::size_t e) {
      for (std::size_t j = b; j < e; ++j) {
        const int r = bands.owner(j);
        const Wire* src = recvbuf + rdispls[r] / sizeof(Wire) + (j - bands.offset(r)) * ng_loc;
        Complex* dst = out.col(j);
        for (std::size_t i = 0; i < ng_loc; ++i) dst[i] = Complex(src[i]);
      }
    });
  } else {
    out.resize(gvecs.total(), nb_loc);
    exec::parallel_for(static_cast<std::size_t>(np) * nb_loc, [&](std::size_t b, std::size_t e) {
      for (std::size_t t = b; t < e; ++t) {
        const int r = static_cast<int>(t / nb_loc);
        const std::size_t j = t % nb_loc;
        const std::size_t g0 = gvecs.offset(r), gn = gvecs.count(r);
        const Wire* src = recvbuf + rdispls[r] / sizeof(Wire) + j * gn;
        Complex* dst = out.col(j) + g0;
        for (std::size_t i = 0; i < gn; ++i) dst[i] = Complex(src[i]);
      }
    });
  }
}

/// Synchronous call: the three phases back to back, wires from the calling
/// thread's workspace arena (steady-state calls allocate nothing).
template <typename Wire>
void transpose_impl(Comm& comm, const BlockPartition& gvecs, const BlockPartition& bands,
                    bool to_g, const CMatrix& in, CMatrix& out) {
  const int np = comm.size();
  const int me = comm.rank();
  const Plan plan = make_plan<Wire>(np, me, gvecs, bands, to_g);
  auto sendbuf = wire_buf<Wire>(exec::Slot::trans_send, plan.sbytes / sizeof(Wire));
  auto recvbuf = wire_buf<Wire>(exec::Slot::trans_recv, plan.rbytes / sizeof(Wire));
  pack_phase<Wire>(plan, np, gvecs, bands, me, to_g, in, sendbuf.data());
  exchange_phase(comm, plan, reinterpret_cast<const unsigned char*>(sendbuf.data()),
                 reinterpret_cast<unsigned char*>(recvbuf.data()));
  unpack_phase<Wire>(plan, np, gvecs, bands, me, to_g, recvbuf.data(), out);
}

}  // namespace

void WavefunctionTranspose::band_to_g(Comm& comm, const CMatrix& band_local, CMatrix& g_local,
                                      bool single_precision) const {
  if (single_precision)
    transpose_impl<ComplexF>(comm, gvecs_, bands_, true, band_local, g_local);
  else
    transpose_impl<Complex>(comm, gvecs_, bands_, true, band_local, g_local);
}

void WavefunctionTranspose::g_to_band(Comm& comm, const CMatrix& g_local, CMatrix& band_local,
                                      bool single_precision) const {
  if (single_precision)
    transpose_impl<ComplexF>(comm, gvecs_, bands_, false, g_local, band_local);
  else
    transpose_impl<Complex>(comm, gvecs_, bands_, false, g_local, band_local);
}

void redistribute_columns(Comm& comm, const CostPartition& from, const CostPartition& to,
                          const CMatrix& in, CMatrix& out) {
  const int np = comm.size();
  const int me = comm.rank();
  PWDFT_CHECK(from.parts() == np && to.parts() == np && from.total() == to.total(),
              "redistribute_columns: partition/communicator mismatch");
  PWDFT_CHECK(in.cols() == from.count(me), "redistribute_columns: bad local column count");
  const std::size_t rows = in.rows();
  const std::size_t colbytes = rows * sizeof(Complex);
  out.resize(rows, to.count(me));

  // Both partitions are contiguous and rank-ascending, so the columns bound
  // for (or arriving from) each peer form one contiguous range: the
  // Alltoallv runs straight out of `in` and into `out`, no pack phase.
  std::vector<std::size_t> scounts(np), sdispls(np), rcounts(np), rdispls(np);
  auto range = [](const CostPartition& a, int pa, const CostPartition& b, int pb,
                  std::size_t& start, std::size_t& len) {
    const std::size_t lo = std::max(a.offset(pa), b.offset(pb));
    const std::size_t hi =
        std::min(a.offset(pa) + a.count(pa), b.offset(pb) + b.count(pb));
    start = lo;
    len = hi > lo ? hi - lo : 0;
  };
  for (int r = 0; r < np; ++r) {
    std::size_t s0 = 0, slen = 0, r0 = 0, rlen = 0;
    range(from, me, to, r, s0, slen);  // my columns that r will own
    range(from, r, to, me, r0, rlen);  // r's columns that I will own
    scounts[r] = slen * colbytes;
    rcounts[r] = rlen * colbytes;
    sdispls[r] = (slen ? s0 - from.offset(me) : 0) * colbytes;
    rdispls[r] = (rlen ? r0 - to.offset(me) : 0) * colbytes;
  }
  comm.alltoallv_bytes(reinterpret_cast<const unsigned char*>(in.data()), scounts.data(),
                       sdispls.data(), reinterpret_cast<unsigned char*>(out.data()),
                       rcounts.data(), rdispls.data());
}

// ---------------------------------------------------------------------------
// TransposeOverlap (overlap.hpp): the split-phase path. Implemented here so
// the overlap engine and the synchronous call share one set of phase
// kernels — one mechanism, not two.

bool comm_overlap_env_default() { return env::flag("PWDFT_COMM_OVERLAP", true); }

struct TransposeOverlap::Pending {
  Plan plan;
  const WavefunctionTranspose* transpose = nullptr;
  CMatrix* out = nullptr;
  bool to_g = true;
  bool single = false;
  int np = 0, me = 0;
};

TransposeOverlap::TransposeOverlap(bool enabled) : enabled_(enabled) {}

TransposeOverlap::~TransposeOverlap() = default;  // lane_ joins first

void TransposeOverlap::start_band_to_g(const WavefunctionTranspose& t, Comm& comm,
                                       const CMatrix& band_local, CMatrix& g_out,
                                       bool single_precision) {
  if (!enabled_) {
    t.band_to_g(comm, band_local, g_out, single_precision);
    return;
  }
  start(t, comm, band_local, g_out, true, single_precision);
}

void TransposeOverlap::start_g_to_band(const WavefunctionTranspose& t, Comm& comm,
                                       const CMatrix& g_local, CMatrix& band_out,
                                       bool single_precision) {
  if (!enabled_) {
    t.g_to_band(comm, g_local, band_out, single_precision);
    return;
  }
  start(t, comm, g_local, band_out, false, single_precision);
}

void TransposeOverlap::start(const WavefunctionTranspose& t, Comm& comm, const CMatrix& in,
                             CMatrix& out, bool to_g, bool single_precision) {
  PWDFT_CHECK(!pending_, "TransposeOverlap: a transpose is already in flight");
  if (!ocomm_) ocomm_ = comm.dup();  // collective: first start() of every rank

  auto p = std::make_unique<Pending>();
  p->transpose = &t;
  p->out = &out;
  p->to_g = to_g;
  p->single = single_precision;
  p->np = ocomm_->size();
  p->me = ocomm_->rank();
  p->plan = single_precision
                ? make_plan<ComplexF>(p->np, p->me, t.gvecs(), t.bands(), to_g)
                : make_plan<Complex>(p->np, p->me, t.gvecs(), t.bands(), to_g);
  if (send_.size() < p->plan.sbytes) send_.resize(p->plan.sbytes);
  if (recv_.size() < p->plan.rbytes) recv_.resize(p->plan.rbytes);

  // Pack on the calling thread (engine-parallel) so the parked task is pure
  // wire exchange; the instance-owned buffers keep the bytes alive and
  // un-aliased for the helper's lifetime.
  if (single_precision)
    pack_phase<ComplexF>(p->plan, p->np, t.gvecs(), t.bands(), p->me, to_g, in,
                         reinterpret_cast<ComplexF*>(send_.data()));
  else
    pack_phase<Complex>(p->plan, p->np, t.gvecs(), t.bands(), p->me, to_g, in,
                        reinterpret_cast<Complex*>(send_.data()));

  pending_ = std::move(p);
  lane_.run([this] { exchange_phase(*ocomm_, pending_->plan, send_.data(), recv_.data()); });
}

void TransposeOverlap::wait() {
  if (!pending_) return;
  lane_.wait();  // rethrows a failed exchange
  const Pending& p = *pending_;
  const auto& t = *p.transpose;
  if (p.single)
    unpack_phase<ComplexF>(p.plan, p.np, t.gvecs(), t.bands(), p.me, p.to_g,
                           reinterpret_cast<const ComplexF*>(recv_.data()), *p.out);
  else
    unpack_phase<Complex>(p.plan, p.np, t.gvecs(), t.bands(), p.me, p.to_g,
                          reinterpret_cast<const Complex*>(recv_.data()), *p.out);
  pending_.reset();
}

void TransposeOverlap::fold_stats(Comm& parent) {
  if (!ocomm_) return;
  parent.stats().merge(ocomm_->stats());
  ocomm_->stats().reset();
}

}  // namespace pwdft::par
