#include "parallel/transpose.hpp"

#include <complex>
#include <span>

#include "common/check.hpp"
#include "common/exec.hpp"

namespace pwdft::par {

namespace {

using ComplexF = std::complex<float>;

template <typename Wire>
std::span<Wire> wire_buf(exec::Slot slot, std::size_t n) {
  if constexpr (std::is_same_v<Wire, Complex>)
    return exec::workspace().cbuf(slot, n);
  else
    return exec::workspace().fbuf(slot, n);
}

/// Runs one alltoallv where block (dst <- src) carries the sub-matrix of
/// src's local bands restricted to dst's G rows, in band-major order. The
/// wire buffers live in the calling thread's workspace arena (steady state
/// allocates nothing) and the pack/unpack column copies run on the exec
/// engine: every column is written by exactly one task, so the result is
/// bit-identical at any thread count.
template <typename Wire>
void transpose_impl(Comm& comm, const BlockPartition& gvecs, const BlockPartition& bands,
                    const CMatrix& band_local, CMatrix* g_out, const CMatrix* g_in,
                    CMatrix* band_out) {
  const int np = comm.size();
  const int me = comm.rank();
  const std::size_t nb_loc = bands.count(me);
  const std::size_t ng_loc = gvecs.count(me);
  const std::size_t nb_tot = bands.total();
  const bool to_g = (g_out != nullptr);

  std::vector<std::size_t> scounts(np), sdispls(np), rcounts(np), rdispls(np);
  std::size_t soff = 0, roff = 0;
  for (int r = 0; r < np; ++r) {
    // Element counts of the exchanged blocks.
    const std::size_t fwd = bands.count(me) * gvecs.count(r);  // me -> r (band_to_g)
    const std::size_t bwd = bands.count(r) * gvecs.count(me);  // r -> me (band_to_g)
    scounts[r] = (to_g ? fwd : bwd) * sizeof(Wire);
    rcounts[r] = (to_g ? bwd : fwd) * sizeof(Wire);
    sdispls[r] = soff;
    rdispls[r] = roff;
    soff += scounts[r];
    roff += rcounts[r];
  }

  auto sendbuf = wire_buf<Wire>(exec::Slot::trans_send, soff / sizeof(Wire));
  auto recvbuf = wire_buf<Wire>(exec::Slot::trans_recv, roff / sizeof(Wire));

  // Pack: one task per (destination rank, local band) or per global band.
  if (to_g) {
    PWDFT_CHECK(band_local.rows() == gvecs.total() && band_local.cols() == nb_loc,
                "band_to_g: bad band-local shape");
    exec::parallel_for(static_cast<std::size_t>(np) * nb_loc, [&](std::size_t b, std::size_t e) {
      for (std::size_t t = b; t < e; ++t) {
        const int r = static_cast<int>(t / nb_loc);
        const std::size_t j = t % nb_loc;
        const std::size_t g0 = gvecs.offset(r), gn = gvecs.count(r);
        const Complex* src = band_local.col(j) + g0;
        Wire* dst = sendbuf.data() + sdispls[r] / sizeof(Wire) + j * gn;
        for (std::size_t i = 0; i < gn; ++i) dst[i] = Wire(src[i]);
      }
    });
  } else {
    PWDFT_CHECK(g_in->rows() == ng_loc && g_in->cols() == nb_tot,
                "g_to_band: bad G-local shape");
    exec::parallel_for(nb_tot, [&](std::size_t b, std::size_t e) {
      for (std::size_t j = b; j < e; ++j) {
        const int r = bands.owner(j);
        const Complex* src = g_in->col(j);
        Wire* dst =
            sendbuf.data() + sdispls[r] / sizeof(Wire) + (j - bands.offset(r)) * ng_loc;
        for (std::size_t i = 0; i < ng_loc; ++i) dst[i] = Wire(src[i]);
      }
    });
  }

  comm.alltoallv_bytes(reinterpret_cast<const unsigned char*>(sendbuf.data()), scounts.data(),
                       sdispls.data(), reinterpret_cast<unsigned char*>(recvbuf.data()),
                       rcounts.data(), rdispls.data());

  // Unpack: each task owns a full output column (or a disjoint row range of
  // one), so writes never race.
  if (to_g) {
    g_out->resize(ng_loc, nb_tot);
    exec::parallel_for(nb_tot, [&](std::size_t b, std::size_t e) {
      for (std::size_t j = b; j < e; ++j) {
        const int r = bands.owner(j);
        const Wire* src =
            recvbuf.data() + rdispls[r] / sizeof(Wire) + (j - bands.offset(r)) * ng_loc;
        Complex* dst = g_out->col(j);
        for (std::size_t i = 0; i < ng_loc; ++i) dst[i] = Complex(src[i]);
      }
    });
  } else {
    band_out->resize(gvecs.total(), nb_loc);
    exec::parallel_for(static_cast<std::size_t>(np) * nb_loc, [&](std::size_t b, std::size_t e) {
      for (std::size_t t = b; t < e; ++t) {
        const int r = static_cast<int>(t / nb_loc);
        const std::size_t j = t % nb_loc;
        const std::size_t g0 = gvecs.offset(r), gn = gvecs.count(r);
        const Wire* src = recvbuf.data() + rdispls[r] / sizeof(Wire) + j * gn;
        Complex* dst = band_out->col(j) + g0;
        for (std::size_t i = 0; i < gn; ++i) dst[i] = Complex(src[i]);
      }
    });
  }
}

}  // namespace

void WavefunctionTranspose::band_to_g(Comm& comm, const CMatrix& band_local, CMatrix& g_local,
                                      bool single_precision) const {
  if (single_precision)
    transpose_impl<ComplexF>(comm, gvecs_, bands_, band_local, &g_local, nullptr, nullptr);
  else
    transpose_impl<Complex>(comm, gvecs_, bands_, band_local, &g_local, nullptr, nullptr);
}

void WavefunctionTranspose::g_to_band(Comm& comm, const CMatrix& g_local, CMatrix& band_local,
                                      bool single_precision) const {
  if (single_precision)
    transpose_impl<ComplexF>(comm, gvecs_, bands_, CMatrix{}, nullptr, &g_local, &band_local);
  else
    transpose_impl<Complex>(comm, gvecs_, bands_, CMatrix{}, nullptr, &g_local, &band_local);
}

}  // namespace pwdft::par
