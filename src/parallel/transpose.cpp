#include "parallel/transpose.hpp"

#include <complex>
#include <vector>

#include "common/check.hpp"

namespace pwdft::par {

namespace {

using ComplexF = std::complex<float>;

/// Runs one alltoallv where block (dst <- src) carries the sub-matrix of
/// src's local bands restricted to dst's G rows, in band-major order.
template <typename Wire>
void transpose_impl(Comm& comm, const BlockPartition& gvecs, const BlockPartition& bands,
                    const CMatrix& band_local, CMatrix* g_out, const CMatrix* g_in,
                    CMatrix* band_out) {
  const int np = comm.size();
  const int me = comm.rank();
  const std::size_t nb_loc = bands.count(me);
  const std::size_t ng_loc = gvecs.count(me);
  const bool to_g = (g_out != nullptr);

  std::vector<std::size_t> scounts(np), sdispls(np), rcounts(np), rdispls(np);
  std::size_t soff = 0, roff = 0;
  for (int r = 0; r < np; ++r) {
    // Element counts of the exchanged blocks.
    const std::size_t fwd = bands.count(me) * gvecs.count(r);  // me -> r (band_to_g)
    const std::size_t bwd = bands.count(r) * gvecs.count(me);  // r -> me (band_to_g)
    scounts[r] = (to_g ? fwd : bwd) * sizeof(Wire);
    rcounts[r] = (to_g ? bwd : fwd) * sizeof(Wire);
    sdispls[r] = soff;
    rdispls[r] = roff;
    soff += scounts[r];
    roff += rcounts[r];
  }

  std::vector<Wire> sendbuf(soff / sizeof(Wire));
  std::vector<Wire> recvbuf(roff / sizeof(Wire));

  // Pack.
  if (to_g) {
    PWDFT_CHECK(band_local.rows() == gvecs.total() && band_local.cols() == nb_loc,
                "band_to_g: bad band-local shape");
    std::size_t p = 0;
    for (int r = 0; r < np; ++r) {
      const std::size_t g0 = gvecs.offset(r), gn = gvecs.count(r);
      for (std::size_t j = 0; j < nb_loc; ++j) {
        const Complex* cj = band_local.col(j) + g0;
        for (std::size_t i = 0; i < gn; ++i) sendbuf[p++] = Wire(cj[i]);
      }
    }
  } else {
    PWDFT_CHECK(g_in->rows() == ng_loc && g_in->cols() == bands.total(),
                "g_to_band: bad G-local shape");
    std::size_t p = 0;
    for (int r = 0; r < np; ++r) {
      const std::size_t b0 = bands.offset(r), bn = bands.count(r);
      for (std::size_t j = 0; j < bn; ++j) {
        const Complex* cj = g_in->col(b0 + j);
        for (std::size_t i = 0; i < ng_loc; ++i) sendbuf[p++] = Wire(cj[i]);
      }
    }
  }

  comm.alltoallv_bytes(reinterpret_cast<const unsigned char*>(sendbuf.data()), scounts.data(),
                       sdispls.data(), reinterpret_cast<unsigned char*>(recvbuf.data()),
                       rcounts.data(), rdispls.data());

  // Unpack.
  if (to_g) {
    g_out->resize(ng_loc, bands.total());
    std::size_t p = 0;
    for (int r = 0; r < np; ++r) {
      const std::size_t b0 = bands.offset(r), bn = bands.count(r);
      for (std::size_t j = 0; j < bn; ++j) {
        Complex* cj = g_out->col(b0 + j);
        for (std::size_t i = 0; i < ng_loc; ++i) cj[i] = Complex(recvbuf[p++]);
      }
    }
  } else {
    band_out->resize(gvecs.total(), nb_loc);
    std::size_t p = 0;
    for (int r = 0; r < np; ++r) {
      const std::size_t g0 = gvecs.offset(r), gn = gvecs.count(r);
      for (std::size_t j = 0; j < nb_loc; ++j) {
        Complex* cj = band_out->col(j) + g0;
        for (std::size_t i = 0; i < gn; ++i) cj[i] = Complex(recvbuf[p++]);
      }
    }
  }
}

}  // namespace

void WavefunctionTranspose::band_to_g(Comm& comm, const CMatrix& band_local, CMatrix& g_local,
                                      bool single_precision) const {
  if (single_precision)
    transpose_impl<ComplexF>(comm, gvecs_, bands_, band_local, &g_local, nullptr, nullptr);
  else
    transpose_impl<Complex>(comm, gvecs_, bands_, band_local, &g_local, nullptr, nullptr);
}

void WavefunctionTranspose::g_to_band(Comm& comm, const CMatrix& g_local, CMatrix& band_local,
                                      bool single_precision) const {
  if (single_precision)
    transpose_impl<ComplexF>(comm, gvecs_, bands_, CMatrix{}, nullptr, &g_local, &band_local);
  else
    transpose_impl<Complex>(comm, gvecs_, bands_, CMatrix{}, nullptr, &g_local, &band_local);
}

}  // namespace pwdft::par
