#pragma once

/// \file distribution.hpp
/// Data distributions for the hybrid parallelization scheme (paper §3.1):
/// wavefunctions live in the *band index* layout (each rank owns a
/// contiguous block of columns) for H*Psi, and are transposed into the
/// *G-space* layout (each rank owns a contiguous block of rows) for
/// overlap-matrix style GEMMs.

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace pwdft::par {

/// Partition of [0, total) into `parts` contiguous near-equal blocks; the
/// first (total % parts) blocks get one extra element.
class BlockPartition {
 public:
  BlockPartition() = default;
  BlockPartition(std::size_t total, int parts) : total_(total), parts_(parts) {
    PWDFT_CHECK(parts >= 1, "BlockPartition: need at least one part");
  }

  std::size_t total() const { return total_; }
  int parts() const { return parts_; }

  std::size_t count(int p) const {
    check_part(p);
    const std::size_t base = total_ / parts_;
    const std::size_t rem = total_ % parts_;
    return base + (static_cast<std::size_t>(p) < rem ? 1 : 0);
  }

  std::size_t offset(int p) const {
    check_part(p);
    const std::size_t base = total_ / parts_;
    const std::size_t rem = total_ % parts_;
    const std::size_t up = static_cast<std::size_t>(p);
    return base * up + std::min(up, rem);
  }

  int owner(std::size_t index) const {
    PWDFT_CHECK(index < total_, "BlockPartition: index out of range");
    // Invert offset(): blocks of size base+1 come first.
    const std::size_t base = total_ / parts_;
    const std::size_t rem = total_ % parts_;
    const std::size_t big = (base + 1) * rem;
    if (index < big) return base + 1 == 0 ? 0 : static_cast<int>(index / (base + 1));
    return static_cast<int>(rem + (index - big) / base);
  }

 private:
  void check_part(int p) const {
    PWDFT_CHECK(p >= 0 && p < parts_, "BlockPartition: part " << p << " out of range");
  }
  std::size_t total_ = 0;
  int parts_ = 1;
};

/// The two partitions used by the hybrid scheme for one wavefunction set.
struct WavefunctionLayout {
  WavefunctionLayout() = default;
  WavefunctionLayout(std::size_t n_g, std::size_t n_bands, int nranks)
      : bands(n_bands, nranks), gvecs(n_g, nranks) {}
  BlockPartition bands;  ///< column (band-index) distribution
  BlockPartition gvecs;  ///< row (G-space) distribution
};

}  // namespace pwdft::par
