#pragma once

/// \file distribution.hpp
/// Data distributions for the hybrid parallelization scheme (paper §3.1):
/// wavefunctions live in the *band index* layout (each rank owns a
/// contiguous block of columns) for H*Psi, and are transposed into the
/// *G-space* layout (each rank owns a contiguous block of rows) for
/// overlap-matrix style GEMMs.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace pwdft::par {

/// Partition of [0, total) into `parts` contiguous near-equal blocks; the
/// first (total % parts) blocks get one extra element.
class BlockPartition {
 public:
  BlockPartition() = default;
  BlockPartition(std::size_t total, int parts) : total_(total), parts_(parts) {
    PWDFT_CHECK(parts >= 1, "BlockPartition: need at least one part");
  }

  std::size_t total() const { return total_; }
  int parts() const { return parts_; }

  std::size_t count(int p) const {
    check_part(p);
    const std::size_t base = total_ / parts_;
    const std::size_t rem = total_ % parts_;
    return base + (static_cast<std::size_t>(p) < rem ? 1 : 0);
  }

  std::size_t offset(int p) const {
    check_part(p);
    const std::size_t base = total_ / parts_;
    const std::size_t rem = total_ % parts_;
    const std::size_t up = static_cast<std::size_t>(p);
    return base * up + std::min(up, rem);
  }

  int owner(std::size_t index) const {
    PWDFT_CHECK(index < total_, "BlockPartition: index out of range");
    // Invert offset(): blocks of size base+1 come first.
    const std::size_t base = total_ / parts_;
    const std::size_t rem = total_ % parts_;
    const std::size_t big = (base + 1) * rem;
    if (index < big) return base + 1 == 0 ? 0 : static_cast<int>(index / (base + 1));
    return static_cast<int>(rem + (index - big) / base);
  }

 private:
  void check_part(int p) const {
    PWDFT_CHECK(p >= 0 && p < parts_, "BlockPartition: part " << p << " out of range");
  }
  std::size_t total_ = 0;
  int parts_ = 1;
};

/// Contiguous partition of [0, total) with arbitrary block boundaries: the
/// carrier of the dynamic band redistribution (HONPAS-style rebalance of
/// the exchange pair work). Same query interface as BlockPartition, but the
/// boundaries are data-driven instead of near-equal.
class CostPartition {
 public:
  CostPartition() = default;
  /// The near-equal boundaries of a BlockPartition (the identity layout).
  explicit CostPartition(const BlockPartition& b) : offsets_(b.parts() + 1) {
    for (int p = 0; p < b.parts(); ++p) offsets_[p] = b.offset(p);
    offsets_[b.parts()] = b.total();
  }

  /// Greedy contiguous rebalance: part p's boundary advances while taking
  /// the next item keeps the cumulative cost at least as close to the ideal
  /// target total*(p+1)/parts. Every part keeps >= 1 item while at least
  /// `parts` items remain, so costs can skew boundaries but never starve a
  /// rank of work that exists. Deterministic in `costs`; non-positive total
  /// cost falls back to the near-equal split.
  static CostPartition balance(std::span<const double> costs, int parts) {
    PWDFT_CHECK(parts >= 1, "CostPartition: need at least one part");
    const std::size_t n = costs.size();
    double total = 0.0;
    for (double c : costs) total += std::max(0.0, c);
    if (!(total > 0.0)) return CostPartition(BlockPartition(n, parts));
    CostPartition out;
    out.offsets_.assign(parts + 1, n);
    out.offsets_[0] = 0;
    std::size_t i = 0;
    double cum = 0.0;
    for (int p = 0; p < parts - 1; ++p) {
      const double target = total * static_cast<double>(p + 1) / parts;
      std::size_t taken = 0;
      while (i < n) {
        // Leave one item for each remaining part.
        if (n - i <= static_cast<std::size_t>(parts - 1 - p)) break;
        const double with = cum + std::max(0.0, costs[i]);
        if (taken > 0 && std::abs(with - target) > std::abs(cum - target)) break;
        cum = with;
        ++i;
        ++taken;
      }
      out.offsets_[p + 1] = i;
    }
    return out;
  }

  std::size_t total() const { return offsets_.empty() ? 0 : offsets_.back(); }
  int parts() const { return offsets_.empty() ? 1 : static_cast<int>(offsets_.size()) - 1; }

  std::size_t count(int p) const {
    check_part(p);
    return offsets_[p + 1] - offsets_[p];
  }
  std::size_t offset(int p) const {
    check_part(p);
    return offsets_[p];
  }
  int owner(std::size_t index) const {
    PWDFT_CHECK(index < total(), "CostPartition: index out of range");
    const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), index);
    return static_cast<int>(it - offsets_.begin()) - 1;
  }

  friend bool operator==(const CostPartition& a, const CostPartition& b) {
    return a.offsets_ == b.offsets_;
  }

 private:
  void check_part(int p) const {
    PWDFT_CHECK(p >= 0 && p < parts(), "CostPartition: part " << p << " out of range");
  }
  std::vector<std::size_t> offsets_;  ///< parts+1 boundaries, offsets_[0] == 0
};

/// The two partitions used by the hybrid scheme for one wavefunction set.
struct WavefunctionLayout {
  WavefunctionLayout() = default;
  WavefunctionLayout(std::size_t n_g, std::size_t n_bands, int nranks)
      : bands(n_bands, nranks), gvecs(n_g, nranks) {}
  BlockPartition bands;  ///< column (band-index) distribution
  BlockPartition gvecs;  ///< row (G-space) distribution
};

}  // namespace pwdft::par
