#include "parallel/socket_comm.hpp"

#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/env.hpp"
#include "common/exec.hpp"
#include "common/frame.hpp"
#include "common/timer.hpp"

namespace pwdft::par {

namespace {

/// Frame dialect (common/frame.hpp): own magic so a SocketComm rank and a
/// serve endpoint accidentally cross-wired reject each other's bytes as
/// kBadMagic instead of misreading them.
enum class CommMsg : std::uint32_t {
  kJoin = 1,        ///< rank -> rank 0: u32 rank, u32 nranks, str listener
  kTable = 2,       ///< rank 0 -> rank: u32 nranks, nranks x str listeners
  kIdent = 3,       ///< mesh dial: u32 new rank of the dialing peer
  kCollective = 4,  ///< u64 seq, u32 op, u32 src rank, raw data
  kP2p = 5,         ///< u32 tag, u32 src rank, raw data
};

constexpr frame::Protocol kProto{"PWDFTCM", 1, static_cast<std::uint32_t>(CommMsg::kJoin),
                                 static_cast<std::uint32_t>(CommMsg::kP2p), 1ull << 30};

constexpr std::size_t kCoHeader = 16;  ///< seq + op + src prefix of kCollective
constexpr std::size_t kP2pHeader = 8;  ///< tag + src prefix of kP2p

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_from(int timeout_ms) {
  return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

int remaining_ms(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
  return left > 0 ? static_cast<int>(std::min<long long>(left, 3600000)) : 0;
}

CommFault fault_of(frame::IoStatus s) {
  switch (s) {
    case frame::IoStatus::kOk: return CommFault::kIo;  // not a failure; unreachable
    case frame::IoStatus::kClosed: return CommFault::kPeerClosed;
    case frame::IoStatus::kTruncated: return CommFault::kTruncated;
    case frame::IoStatus::kBadMagic: return CommFault::kProtocol;
    case frame::IoStatus::kBadType: return CommFault::kProtocol;
    case frame::IoStatus::kVersionMismatch: return CommFault::kProtocol;
    case frame::IoStatus::kTooLarge: return CommFault::kProtocol;
    case frame::IoStatus::kTrailingBytes: return CommFault::kProtocol;
    case frame::IoStatus::kChecksumMismatch: return CommFault::kCorrupt;
    case frame::IoStatus::kTimeout: return CommFault::kTimeout;
    case frame::IoStatus::kIoError: return CommFault::kIo;
  }
  return CommFault::kIo;
}

[[noreturn]] void throw_fault(CommFault f, const std::string& what) {
  throw CommError(f, "SocketComm: " + what + " [" + comm_fault_name(f) + "]");
}

[[noreturn]] void throw_io(frame::IoStatus s, const std::string& what) {
  throw_fault(fault_of(s), what + ": " + frame::io_status_name(s));
}

void set_sock_opts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);  // no-op on unix sockets
}

/// Where this communicator (and its dup()/split() offspring) place their
/// mesh listeners: same transport as the rendezvous address.
std::string mesh_hint_from(const std::string& rendezvous) {
  if (rendezvous.rfind("unix:", 0) == 0) {
    const std::string path = rendezvous.substr(5);
    const std::size_t slash = path.rfind('/');
    return "unix:" + (slash == std::string::npos ? std::string(".") : path.substr(0, slash));
  }
  if (rendezvous.rfind("tcp:", 0) == 0) {
    const std::string rest = rendezvous.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon != std::string::npos && colon > 0) return "tcp:" + rest.substr(0, colon);
  }
  return "tcp:127.0.0.1";
}

frame::Listener open_mesh_listener(const std::string& hint) {
  static std::atomic<std::uint64_t> counter{0};
  if (hint.rfind("unix:", 0) == 0) {
    const std::string path = hint.substr(5) + "/m" + std::to_string(::getpid()) + "." +
                             std::to_string(counter.fetch_add(1));
    return frame::listen_on("unix:" + path);
  }
  return frame::listen_on(hint + ":0");
}

void close_listener(frame::Listener& l) {
  if (l.fd >= 0) ::close(l.fd);
  if (!l.unix_path.empty()) ::unlink(l.unix_path.c_str());
  l.fd = -1;
  l.unix_path.clear();
}

/// Closes the listener on every exit path (a failed handshake must not
/// leak the fd or the bound unix socket file). close_listener is
/// idempotent, so the explicit early close in the happy path still works.
struct ListenerGuard {
  frame::Listener& l;
  ~ListenerGuard() { close_listener(l); }
};

int accept_deadline(int listen_fd, Clock::time_point deadline, const char* what) {
  for (;;) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int left = remaining_ms(deadline);
    if (left <= 0) throw_fault(CommFault::kTimeout, std::string(what) + ": accept timed out");
    const int pr = ::poll(&pfd, 1, left);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_fault(CommFault::kIo, std::string(what) + ": poll: " + std::strerror(errno));
    }
    if (pr == 0) throw_fault(CommFault::kTimeout, std::string(what) + ": accept timed out");
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_fault(CommFault::kIo, std::string(what) + ": accept: " + std::strerror(errno));
  }
}

int dial_deadline(const std::string& address, Clock::time_point deadline, const char* what) {
  std::string why;
  for (;;) {
    const int fd = frame::try_dial(address, &why);
    if (fd >= 0) return fd;
    if (remaining_ms(deadline) <= 0)
      throw_fault(CommFault::kConnect,
                  std::string(what) + ": connect(" + address + ") failed: " + why);
    // The listener may simply not exist yet (peers race through the
    // rendezvous); retry until the deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void append_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  std::uint8_t tmp[4];
  frame::pack_u32(v, tmp);
  b.insert(b.end(), tmp, tmp + 4);
}

void append_str(std::vector<std::uint8_t>& b, const std::string& s) {
  append_u32(b, static_cast<std::uint32_t>(s.size()));
  b.insert(b.end(), s.begin(), s.end());
}

/// Minimal bounds-checked reader for the handshake payloads; any overrun
/// is a malformed handshake, i.e. kProtocol.
struct HandshakeReader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t pos = 0;
  std::uint32_t u32() {
    if (n - pos < 4) throw_fault(CommFault::kProtocol, "handshake payload overrun");
    const std::uint32_t v = frame::unpack_u32(p + pos);
    pos += 4;
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (n - pos < len) throw_fault(CommFault::kProtocol, "handshake payload overrun");
    std::string s(reinterpret_cast<const char*>(p + pos), len);
    pos += len;
    return s;
  }
};

void send_handshake(int fd, CommMsg type, const std::vector<std::uint8_t>& payload,
                    const char* what) {
  const frame::IoStatus st = frame::send_frame(fd, kProto, static_cast<std::uint32_t>(type),
                                               payload.data(), payload.size());
  if (st != frame::IoStatus::kOk) throw_io(st, std::string(what) + ": send handshake");
}

std::vector<std::uint8_t> recv_handshake(int fd, CommMsg want, const char* what) {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  const frame::IoStatus st = frame::recv_frame(fd, kProto, &type, &payload);
  if (st != frame::IoStatus::kOk) throw_io(st, std::string(what) + ": recv handshake");
  if (type != static_cast<std::uint32_t>(want))
    throw_fault(CommFault::kProtocol, std::string(what) + ": unexpected handshake frame type " +
                                          std::to_string(type));
  return payload;
}

}  // namespace

const char* comm_fault_name(CommFault f) {
  switch (f) {
    case CommFault::kTimeout: return "timeout";
    case CommFault::kPeerClosed: return "peer closed";
    case CommFault::kTruncated: return "truncated";
    case CommFault::kCorrupt: return "corrupt frame";
    case CommFault::kProtocol: return "protocol violation";
    case CommFault::kConnect: return "connect failed";
    case CommFault::kIo: return "io error";
  }
  return "unknown";
}

SocketCommOptions SocketCommOptions::from_env() {
  SocketCommOptions o;
  o.timeout_ms = static_cast<int>(env::integer("PWDFT_COMM_TIMEOUT_MS", 30000, 1, 3600000));
  return o;
}

SocketComm::SocketComm(int rank, std::vector<int> fds, SocketCommOptions opts,
                       std::string mesh_hint)
    : rank_(rank), fds_(std::move(fds)), opts_(opts), mesh_hint_(std::move(mesh_hint)) {
  stash_.resize(fds_.size());
}

SocketComm::~SocketComm() {
  for (int fd : fds_)
    if (fd >= 0) ::close(fd);
}

std::unique_ptr<SocketComm> SocketComm::connect(int rank, int nranks,
                                                const std::string& rendezvous,
                                                const SocketCommOptions& opts) {
  PWDFT_CHECK(nranks >= 1, "SocketComm: need at least one rank");
  PWDFT_CHECK(rank >= 0 && rank < nranks,
              "SocketComm: rank " << rank << " outside [0, " << nranks << ")");
  const std::string hint = mesh_hint_from(rendezvous);
  if (nranks == 1)
    return std::unique_ptr<SocketComm>(
        new SocketComm(0, std::vector<int>{-1}, opts, hint));

  const auto deadline = deadline_from(opts.timeout_ms);
  std::vector<int> fds(nranks, -1);

  if (rank == 0) {
    frame::Listener rv = frame::listen_on(rendezvous);
    ListenerGuard rv_guard{rv};
    std::vector<std::string> addrs(nranks);
    for (int joined = 1; joined < nranks; ++joined) {
      const int fd = accept_deadline(rv.fd, deadline, "rendezvous");
      set_sock_opts(fd, opts.timeout_ms);
      const std::vector<std::uint8_t> pay = recv_handshake(fd, CommMsg::kJoin, "rendezvous");
      HandshakeReader in{pay.data(), pay.size()};
      const std::uint32_t r = in.u32();
      const std::uint32_t n = in.u32();
      const std::string addr = in.str();
      if (n != static_cast<std::uint32_t>(nranks))
        throw_fault(CommFault::kProtocol, "rendezvous: peer expects " + std::to_string(n) +
                                              " ranks, this rank expects " +
                                              std::to_string(nranks));
      if (r < 1 || r >= static_cast<std::uint32_t>(nranks) || fds[r] != -1)
        throw_fault(CommFault::kProtocol, "rendezvous: duplicate or bad rank " +
                                              std::to_string(r) + " joined");
      fds[r] = fd;
      addrs[r] = addr;
    }
    close_listener(rv);
    std::vector<std::uint8_t> table;
    append_u32(table, static_cast<std::uint32_t>(nranks));
    for (const std::string& a : addrs) append_str(table, a);
    for (int r = 1; r < nranks; ++r) send_handshake(fds[r], CommMsg::kTable, table, "rendezvous");
  } else {
    // The peer mesh among ranks >= 1: rank j accepts from ranks > j and
    // dials ranks in [1, j); the (0, j) edges are the join connections.
    frame::Listener mesh = open_mesh_listener(hint);
    ListenerGuard mesh_guard{mesh};
    const int fd0 = dial_deadline(rendezvous, deadline, "rendezvous");
    set_sock_opts(fd0, opts.timeout_ms);
    std::vector<std::uint8_t> join;
    append_u32(join, static_cast<std::uint32_t>(rank));
    append_u32(join, static_cast<std::uint32_t>(nranks));
    append_str(join, mesh.address);
    send_handshake(fd0, CommMsg::kJoin, join, "rendezvous");
    const std::vector<std::uint8_t> pay = recv_handshake(fd0, CommMsg::kTable, "rendezvous");
    HandshakeReader in{pay.data(), pay.size()};
    const std::uint32_t n = in.u32();
    if (n != static_cast<std::uint32_t>(nranks))
      throw_fault(CommFault::kProtocol, "rendezvous: table size mismatch");
    std::vector<std::string> addrs(nranks);
    for (int r = 0; r < nranks; ++r) addrs[r] = in.str();
    fds[0] = fd0;

    for (int b = 1; b < rank; ++b) {
      fds[b] = dial_deadline(addrs[b], deadline, "mesh");
      set_sock_opts(fds[b], opts.timeout_ms);
      std::vector<std::uint8_t> ident;
      append_u32(ident, static_cast<std::uint32_t>(rank));
      send_handshake(fds[b], CommMsg::kIdent, ident, "mesh");
    }
    for (int count = rank + 1; count < nranks; ++count) {
      const int fd = accept_deadline(mesh.fd, deadline, "mesh");
      set_sock_opts(fd, opts.timeout_ms);
      const std::vector<std::uint8_t> ip = recv_handshake(fd, CommMsg::kIdent, "mesh");
      HandshakeReader ir{ip.data(), ip.size()};
      const std::uint32_t r = ir.u32();
      if (r <= static_cast<std::uint32_t>(rank) || r >= static_cast<std::uint32_t>(nranks) ||
          fds[r] != -1)
        throw_fault(CommFault::kProtocol,
                    "mesh: duplicate or bad peer rank " + std::to_string(r));
      fds[r] = fd;
    }
    close_listener(mesh);
  }
  return std::unique_ptr<SocketComm>(new SocketComm(rank, std::move(fds), opts, hint));
}

std::unique_ptr<SocketComm> SocketComm::connect_env() {
  const SocketCommOptions opts = SocketCommOptions::from_env();
  const long nranks = env::integer("PWDFT_RANKS", 1, 1, 4096);
  const long rank = env::integer("PWDFT_RANK", 0, 0, nranks - 1);
  const std::string listen = env::text("PWDFT_COMM_LISTEN", "tcp:127.0.0.1:0");
  PWDFT_CHECK(nranks == 1 || listen != "tcp:127.0.0.1:0",
              "SocketComm: PWDFT_COMM_LISTEN must name a fixed rendezvous address when "
              "PWDFT_RANKS > 1 (every rank must dial the same address)");
  return connect(static_cast<int>(rank), static_cast<int>(nranks), listen, opts);
}

// --- collective frame plumbing ---------------------------------------------

void SocketComm::send_collective(int dst, CommOp op, const unsigned char* data, std::size_t n) {
  std::vector<std::uint8_t> pay(kCoHeader + n);
  frame::pack_u64(seq_, pay.data());
  frame::pack_u32(static_cast<std::uint32_t>(op), pay.data() + 8);
  frame::pack_u32(static_cast<std::uint32_t>(rank_), pay.data() + 12);
  if (n > 0) std::memcpy(pay.data() + kCoHeader, data, n);
  std::vector<std::uint8_t> f =
      frame::encode(kProto, static_cast<std::uint32_t>(CommMsg::kCollective), pay.data(),
                    pay.size());
  if (inject_ == Inject::kFlipPayloadByte) {
    // Damage after encoding: the frame parses but its checksum no longer
    // matches, which the peer must report as kCorrupt.
    f[frame::kHeaderBytes] ^= 0x01;
    inject_ = Inject::kNone;
  } else if (inject_ == Inject::kTruncateFrame) {
    inject_ = Inject::kNone;
    const frame::IoStatus st = frame::write_all(fds_[dst], f.data(), f.size() / 2);
    ::shutdown(fds_[dst], SHUT_WR);  // peer sees EOF mid-frame: kTruncated
    if (st != frame::IoStatus::kOk)
      throw_io(st, "send to rank " + std::to_string(dst) + " (injected truncation)");
    return;
  }
  const frame::IoStatus st = frame::write_all(fds_[dst], f.data(), f.size());
  if (st != frame::IoStatus::kOk)
    throw_io(st, std::string(comm_op_name(op)) + ": send to rank " + std::to_string(dst));
}

std::vector<std::uint8_t> SocketComm::recv_collective(int src, CommOp op, std::size_t expect) {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> pay;
  const frame::IoStatus st = frame::recv_frame(fds_[src], kProto, &type, &pay);
  const std::string ctx =
      std::string(comm_op_name(op)) + ": recv from rank " + std::to_string(src);
  if (st != frame::IoStatus::kOk) throw_io(st, ctx);
  if (type != static_cast<std::uint32_t>(CommMsg::kCollective) || pay.size() < kCoHeader)
    throw_fault(CommFault::kProtocol, ctx + ": not a collective frame");
  const std::uint64_t seq = frame::unpack_u64(pay.data());
  const std::uint32_t fop = frame::unpack_u32(pay.data() + 8);
  const std::uint32_t fsrc = frame::unpack_u32(pay.data() + 12);
  if (seq != seq_ || fop != static_cast<std::uint32_t>(op) ||
      fsrc != static_cast<std::uint32_t>(src))
    throw_fault(CommFault::kProtocol,
                ctx + ": frame from collective #" + std::to_string(seq) + " op " +
                    std::to_string(fop) + ", expected #" + std::to_string(seq_) +
                    " (ranks out of step?)");
  if (pay.size() - kCoHeader != expect)
    throw_fault(CommFault::kProtocol, ctx + ": rank " + std::to_string(src) + " sent " +
                                          std::to_string(pay.size() - kCoHeader) +
                                          " bytes, expected " + std::to_string(expect));
  return pay;
}

void SocketComm::duplex_exchange(int dst, const std::uint8_t* out, std::size_t out_n, int src,
                                 std::uint8_t* in, std::size_t in_n) {
  const int out_fd = fds_[dst];
  const int in_fd = fds_[src];
  const auto deadline = deadline_from(opts_.timeout_ms);
  std::size_t wr = 0, rd = 0;
  while (wr < out_n || rd < in_n) {
    pollfd pfd[2];
    int nf = 0, wi = -1, ri = -1;
    if (wr < out_n) {
      pfd[nf] = {out_fd, POLLOUT, 0};
      wi = nf++;
    }
    if (rd < in_n) {
      if (wi >= 0 && in_fd == out_fd) {
        pfd[wi].events |= POLLIN;
        ri = wi;
      } else {
        pfd[nf] = {in_fd, POLLIN, 0};
        ri = nf++;
      }
    }
    const int left = remaining_ms(deadline);
    if (left <= 0) throw_fault(CommFault::kTimeout, "alltoallv: exchange timed out");
    const int pr = ::poll(pfd, static_cast<nfds_t>(nf), left);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_fault(CommFault::kIo, std::string("alltoallv: poll: ") + std::strerror(errno));
    }
    if (pr == 0) throw_fault(CommFault::kTimeout, "alltoallv: exchange timed out");
    if (wi >= 0 && (pfd[wi].revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
      const ssize_t w = ::send(out_fd, out + wr, out_n - wr, MSG_DONTWAIT | MSG_NOSIGNAL);
      if (w < 0) {
        if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
          if (errno == EPIPE || errno == ECONNRESET)
            throw_fault(CommFault::kPeerClosed,
                        "alltoallv: rank " + std::to_string(dst) + " went away mid-exchange");
          throw_fault(CommFault::kIo, std::string("alltoallv: send: ") + std::strerror(errno));
        }
      } else {
        wr += static_cast<std::size_t>(w);
      }
    }
    if (ri >= 0 && (pfd[ri].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      const ssize_t r = ::recv(in_fd, in + rd, in_n - rd, MSG_DONTWAIT);
      if (r < 0) {
        if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK)
          throw_fault(CommFault::kIo, std::string("alltoallv: recv: ") + std::strerror(errno));
      } else if (r == 0) {
        throw_fault(rd == 0 ? CommFault::kPeerClosed : CommFault::kTruncated,
                    "alltoallv: rank " + std::to_string(src) + " closed mid-exchange");
      } else {
        rd += static_cast<std::size_t>(r);
      }
    }
  }
}

// --- collectives -----------------------------------------------------------

void SocketComm::barrier() {
  WallTimer t;
  ++seq_;
  const int np = size();
  if (np > 1) {
    // Hub rendezvous on rank 0: arrivals in rank order, then releases. A
    // rank can only pass once every rank has arrived — the barrier
    // property — and every blocking read is timeout-bounded.
    if (rank_ == 0) {
      for (int r = 1; r < np; ++r) recv_collective(r, CommOp::kBarrier, 0);
      for (int r = 1; r < np; ++r) send_collective(r, CommOp::kBarrier, nullptr, 0);
    } else {
      send_collective(0, CommOp::kBarrier, nullptr, 0);
      recv_collective(0, CommOp::kBarrier, 0);
    }
  }
  stats_.add(CommOp::kBarrier, 0, t.seconds());
}

void SocketComm::bcast_bytes(void* data, std::size_t bytes, int root) {
  PWDFT_CHECK(root >= 0 && root < size(), "bcast: root out of range");
  WallTimer t;
  ++seq_;
  if (size() > 1) {
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r)
        if (r != root)
          send_collective(r, CommOp::kBcast, static_cast<const unsigned char*>(data), bytes);
    } else {
      const std::vector<std::uint8_t> pay = recv_collective(root, CommOp::kBcast, bytes);
      std::memcpy(data, pay.data() + kCoHeader, bytes);
    }
  }
  stats_.add(CommOp::kBcast, rank_ == root ? 0 : bytes, t.seconds());
}

template <typename T>
void SocketComm::allreduce_sum_impl(T* data, std::size_t count) {
  WallTimer t;
  ++seq_;
  const int np = size();
  const std::size_t bytes = count * sizeof(T);
  if (np > 1) {
    if (rank_ == 0) {
      // Zero-initialized accumulator folded in rank order 0..P-1: the
      // identical summation order — and therefore identical bits — as
      // ThreadComm::allreduce_sum_impl. Do not reassociate.
      std::vector<T> acc(count, T{});
      for (std::size_t i = 0; i < count; ++i) acc[i] += data[i];
      for (int r = 1; r < np; ++r) {
        const std::vector<std::uint8_t> pay = recv_collective(r, CommOp::kAllreduce, bytes);
        const T* src = reinterpret_cast<const T*>(pay.data() + kCoHeader);
        for (std::size_t i = 0; i < count; ++i) acc[i] += src[i];
      }
      std::memcpy(data, acc.data(), bytes);
      for (int r = 1; r < np; ++r)
        send_collective(r, CommOp::kAllreduce, reinterpret_cast<const unsigned char*>(data),
                        bytes);
    } else {
      send_collective(0, CommOp::kAllreduce, reinterpret_cast<const unsigned char*>(data),
                      bytes);
      const std::vector<std::uint8_t> pay = recv_collective(0, CommOp::kAllreduce, bytes);
      std::memcpy(data, pay.data() + kCoHeader, bytes);
    }
  }
  stats_.add(CommOp::kAllreduce, bytes, t.seconds());
}

void SocketComm::allreduce_sum(double* data, std::size_t count) {
  allreduce_sum_impl(data, count);
}

void SocketComm::allreduce_sum(Complex* data, std::size_t count) {
  allreduce_sum_impl(data, count);
}

void SocketComm::allgatherv_bytes(const unsigned char* send, std::size_t send_bytes,
                                  unsigned char* recv, const std::size_t* recv_counts,
                                  const std::size_t* recv_displs) {
  WallTimer t;
  ++seq_;
  const int np = size();
  PWDFT_CHECK(send_bytes == recv_counts[rank_],
              "allgatherv: count mismatch from rank " << rank_);
  std::vector<std::size_t> off(np + 1, 0);
  for (int r = 0; r < np; ++r) off[r + 1] = off[r] + recv_counts[r];
  const std::size_t total = off[np];
  if (np > 1) {
    if (rank_ == 0) {
      // Gather every block in rank order, then ship the concatenation to
      // each peer; receivers scatter it through their own displacements.
      std::vector<std::uint8_t> all(total);
      std::memcpy(all.data() + off[0], send, send_bytes);
      for (int r = 1; r < np; ++r) {
        const std::vector<std::uint8_t> pay =
            recv_collective(r, CommOp::kAllgatherv, recv_counts[r]);
        std::memcpy(all.data() + off[r], pay.data() + kCoHeader, recv_counts[r]);
      }
      for (int r = 1; r < np; ++r)
        send_collective(r, CommOp::kAllgatherv, all.data(), total);
      for (int r = 0; r < np; ++r)
        std::memcpy(recv + recv_displs[r], all.data() + off[r], recv_counts[r]);
    } else {
      send_collective(0, CommOp::kAllgatherv, send, send_bytes);
      const std::vector<std::uint8_t> pay = recv_collective(0, CommOp::kAllgatherv, total);
      for (int r = 0; r < np; ++r)
        std::memcpy(recv + recv_displs[r], pay.data() + kCoHeader + off[r], recv_counts[r]);
    }
  } else {
    std::memcpy(recv + recv_displs[0], send, send_bytes);
  }
  stats_.add(CommOp::kAllgatherv, total - recv_counts[rank_], t.seconds());
}

void SocketComm::alltoallv_bytes(const unsigned char* send, const std::size_t* send_counts,
                                 const std::size_t* send_displs, unsigned char* recv,
                                 const std::size_t* recv_counts,
                                 const std::size_t* recv_displs) {
  WallTimer t;
  ++seq_;
  const int np = size();
  PWDFT_CHECK(send_counts[rank_] == recv_counts[rank_],
              "alltoallv: rank " << rank_ << " sends " << send_counts[rank_]
                                 << " bytes to itself, expected " << recv_counts[rank_]);
  std::memcpy(recv + recv_displs[rank_], send + send_displs[rank_], send_counts[rank_]);
  std::size_t received = 0;
  // Ring schedule: round k pairs every rank with distinct peers (send to
  // rank+k, receive from rank-k), and the exchange itself is poll-driven
  // full duplex — neither side can block the other into a send/send
  // deadlock on large payloads.
  for (int k = 1; k < np; ++k) {
    const int dst = (rank_ + k) % np;
    const int src = (rank_ + np - k) % np;
    std::vector<std::uint8_t> pay(kCoHeader + send_counts[dst]);
    frame::pack_u64(seq_, pay.data());
    frame::pack_u32(static_cast<std::uint32_t>(CommOp::kAlltoallv), pay.data() + 8);
    frame::pack_u32(static_cast<std::uint32_t>(rank_), pay.data() + 12);
    if (send_counts[dst] > 0)
      std::memcpy(pay.data() + kCoHeader, send + send_displs[dst], send_counts[dst]);
    const std::vector<std::uint8_t> out =
        frame::encode(kProto, static_cast<std::uint32_t>(CommMsg::kCollective), pay.data(),
                      pay.size());
    const std::size_t in_n =
        frame::kHeaderBytes + kCoHeader + recv_counts[src] + frame::kFooterBytes;
    std::vector<std::uint8_t> in(in_n);
    duplex_exchange(dst, out.data(), out.size(), src, in.data(), in_n);

    std::uint32_t type = 0;
    std::vector<std::uint8_t> got;
    const frame::IoStatus st = frame::decode(kProto, in.data(), in.size(), &type, &got);
    const std::string ctx = "alltoallv: frame from rank " + std::to_string(src);
    if (st != frame::IoStatus::kOk) throw_io(st, ctx);
    if (type != static_cast<std::uint32_t>(CommMsg::kCollective) || got.size() < kCoHeader)
      throw_fault(CommFault::kProtocol, ctx + ": not a collective frame");
    if (frame::unpack_u64(got.data()) != seq_ ||
        frame::unpack_u32(got.data() + 8) != static_cast<std::uint32_t>(CommOp::kAlltoallv) ||
        frame::unpack_u32(got.data() + 12) != static_cast<std::uint32_t>(src))
      throw_fault(CommFault::kProtocol, ctx + ": ranks out of step");
    std::memcpy(recv + recv_displs[src], got.data() + kCoHeader, recv_counts[src]);
    received += recv_counts[src];
  }
  stats_.add(CommOp::kAlltoallv, received, t.seconds());
}

// --- point-to-point --------------------------------------------------------

void SocketComm::send_bytes(const void* data, std::size_t bytes, int dest, int tag) {
  PWDFT_CHECK(dest >= 0 && dest < size() && dest != rank_, "send: bad destination");
  WallTimer t;
  std::vector<std::uint8_t> pay(kP2pHeader + bytes);
  frame::pack_u32(static_cast<std::uint32_t>(tag), pay.data());
  frame::pack_u32(static_cast<std::uint32_t>(rank_), pay.data() + 4);
  if (bytes > 0) std::memcpy(pay.data() + kP2pHeader, data, bytes);
  const frame::IoStatus st = frame::send_frame(
      fds_[dest], kProto, static_cast<std::uint32_t>(CommMsg::kP2p), pay.data(), pay.size());
  if (st != frame::IoStatus::kOk) throw_io(st, "send to rank " + std::to_string(dest));
  stats_.add(CommOp::kSendRecv, bytes, t.seconds());
}

void SocketComm::recv_bytes(void* data, std::size_t bytes, int src, int tag) {
  PWDFT_CHECK(src >= 0 && src < size() && src != rank_, "recv: bad source");
  WallTimer t;
  const std::uint32_t want = static_cast<std::uint32_t>(tag);
  auto& parked = stash_[src];
  const auto deliver = [&](const std::vector<std::uint8_t>& body) {
    if (body.size() != bytes)
      throw_fault(CommFault::kProtocol, "recv: size mismatch (sent " +
                                            std::to_string(body.size()) + ", expected " +
                                            std::to_string(bytes) + ")");
    if (bytes > 0) std::memcpy(data, body.data(), bytes);
  };
  for (std::size_t i = 0; i < parked.size(); ++i) {
    if (parked[i].first == want) {
      deliver(parked[i].second);
      parked.erase(parked.begin() + static_cast<std::ptrdiff_t>(i));
      stats_.add(CommOp::kSendRecv, bytes, t.seconds());
      return;
    }
  }
  for (;;) {
    std::uint32_t type = 0;
    std::vector<std::uint8_t> pay;
    const frame::IoStatus st = frame::recv_frame(fds_[src], kProto, &type, &pay);
    const std::string ctx = "recv from rank " + std::to_string(src);
    if (st != frame::IoStatus::kOk) throw_io(st, ctx);
    if (type != static_cast<std::uint32_t>(CommMsg::kP2p) || pay.size() < kP2pHeader)
      throw_fault(CommFault::kProtocol, ctx + ": expected a point-to-point frame");
    const std::uint32_t ftag = frame::unpack_u32(pay.data());
    if (frame::unpack_u32(pay.data() + 4) != static_cast<std::uint32_t>(src))
      throw_fault(CommFault::kProtocol, ctx + ": frame claims a different source");
    std::vector<std::uint8_t> body(pay.begin() + kP2pHeader, pay.end());
    if (ftag == want) {
      deliver(body);
      stats_.add(CommOp::kSendRecv, bytes, t.seconds());
      return;
    }
    if (parked.size() >= 1024)
      throw_fault(CommFault::kProtocol, ctx + ": out-of-order message stash overflow");
    parked.emplace_back(ftag, std::move(body));
  }
}

// --- dup / split -----------------------------------------------------------

std::vector<std::vector<std::uint8_t>> SocketComm::allgather_var(
    const std::vector<std::uint8_t>& mine) {
  const int np = size();
  std::vector<std::uint8_t> lens(static_cast<std::size_t>(np) * 8);
  std::uint8_t mylen[8];
  frame::pack_u64(mine.size(), mylen);
  std::vector<std::size_t> counts(np, 8), displs(np);
  for (int r = 0; r < np; ++r) displs[r] = static_cast<std::size_t>(r) * 8;
  allgatherv_bytes(mylen, 8, lens.data(), counts.data(), displs.data());
  std::size_t total = 0;
  for (int r = 0; r < np; ++r) {
    counts[r] = frame::unpack_u64(lens.data() + static_cast<std::size_t>(r) * 8);
    displs[r] = total;
    total += counts[r];
  }
  std::vector<std::uint8_t> all(total);
  allgatherv_bytes(mine.data(), mine.size(), all.data(), counts.data(), displs.data());
  std::vector<std::vector<std::uint8_t>> out(np);
  for (int r = 0; r < np; ++r)
    out[r].assign(all.begin() + static_cast<std::ptrdiff_t>(displs[r]),
                  all.begin() + static_cast<std::ptrdiff_t>(displs[r] + counts[r]));
  return out;
}

std::vector<std::string> SocketComm::allgather_addresses(const std::string& mine) {
  const std::vector<std::vector<std::uint8_t>> blobs =
      allgather_var(std::vector<std::uint8_t>(mine.begin(), mine.end()));
  std::vector<std::string> out(blobs.size());
  for (std::size_t r = 0; r < blobs.size(); ++r)
    out[r].assign(blobs[r].begin(), blobs[r].end());
  return out;
}

std::vector<int> SocketComm::build_mesh(int my_rank, const std::vector<std::string>& addrs,
                                        int listen_fd) {
  const int nmem = static_cast<int>(addrs.size());
  const auto deadline = deadline_from(opts_.timeout_ms);
  std::vector<int> fds(nmem, -1);
  // Dial-lower / accept-higher: dials complete against the peer's listen
  // backlog even before it reaches accept(), so the order is deadlock-free.
  for (int b = 0; b < my_rank; ++b) {
    fds[b] = dial_deadline(addrs[b], deadline, "mesh");
    set_sock_opts(fds[b], opts_.timeout_ms);
    std::vector<std::uint8_t> ident;
    append_u32(ident, static_cast<std::uint32_t>(my_rank));
    send_handshake(fds[b], CommMsg::kIdent, ident, "mesh");
  }
  for (int count = my_rank + 1; count < nmem; ++count) {
    const int fd = accept_deadline(listen_fd, deadline, "mesh");
    set_sock_opts(fd, opts_.timeout_ms);
    const std::vector<std::uint8_t> pay = recv_handshake(fd, CommMsg::kIdent, "mesh");
    HandshakeReader in{pay.data(), pay.size()};
    const std::uint32_t r = in.u32();
    if (r <= static_cast<std::uint32_t>(my_rank) || r >= static_cast<std::uint32_t>(nmem) ||
        fds[r] != -1)
      throw_fault(CommFault::kProtocol, "mesh: duplicate or bad peer rank " + std::to_string(r));
    fds[r] = fd;
  }
  return fds;
}

std::unique_ptr<Comm> SocketComm::dup() {
  if (size() == 1)
    return std::unique_ptr<SocketComm>(
        new SocketComm(0, std::vector<int>{-1}, opts_, mesh_hint_));
  frame::Listener mesh = open_mesh_listener(mesh_hint_);
  ListenerGuard mesh_guard{mesh};
  // Publish every rank's fresh listener over the parent, then rebuild the
  // full mesh on new sockets — an independent rendezvous domain.
  const std::vector<std::string> addrs = allgather_addresses(mesh.address);
  std::vector<int> fds = build_mesh(rank_, addrs, mesh.fd);
  close_listener(mesh);
  return std::unique_ptr<SocketComm>(new SocketComm(rank_, std::move(fds), opts_, mesh_hint_));
}

std::unique_ptr<Comm> SocketComm::split(int color, int key) {
  frame::Listener mesh = open_mesh_listener(mesh_hint_);
  ListenerGuard mesh_guard{mesh};
  // Publish (color, key, listener address) from every rank over the parent.
  std::vector<std::uint8_t> mine;
  append_u32(mine, static_cast<std::uint32_t>(color));
  append_u32(mine, static_cast<std::uint32_t>(key));
  append_str(mine, mesh.address);
  const std::vector<std::vector<std::uint8_t>> blobs = allgather_var(mine);

  // Members of my color ordered by (key, parent rank) — the MPI_Comm_split
  // rank rule, identical to ThreadComm::split.
  struct Member {
    int key;
    int parent;
    std::string addr;
  };
  std::vector<Member> members;
  for (int r = 0; r < size(); ++r) {
    HandshakeReader in{blobs[r].data(), blobs[r].size()};
    const int c = static_cast<int>(in.u32());
    const int k = static_cast<int>(in.u32());
    const std::string addr = in.str();
    if (c == color) members.push_back({k, r, addr});
  }
  std::sort(members.begin(), members.end(), [](const Member& a, const Member& b) {
    return a.key != b.key ? a.key < b.key : a.parent < b.parent;
  });
  int new_rank = -1;
  std::vector<std::string> addrs;
  for (std::size_t i = 0; i < members.size(); ++i) {
    addrs.push_back(members[i].addr);
    if (members[i].parent == rank_) new_rank = static_cast<int>(i);
  }
  PWDFT_CHECK(new_rank >= 0, "split: rank not in its own color group");

  std::vector<int> fds = members.size() == 1 ? std::vector<int>{-1}
                                             : build_mesh(new_rank, addrs, mesh.fd);
  close_listener(mesh);
  return std::unique_ptr<SocketComm>(
      new SocketComm(new_rank, std::move(fds), opts_, mesh_hint_));
}

// --- SocketGroup -----------------------------------------------------------

namespace {

void remove_tree(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

}  // namespace

std::vector<SocketGroup::RankExit> SocketGroup::run_collect(int nranks, const RankFn& fn,
                                                            int timeout_sec) {
  PWDFT_CHECK(nranks >= 1, "SocketGroup: need at least one rank");
  char tmpl[] = "/tmp/pwdft_sg_XXXXXX";
  PWDFT_CHECK(::mkdtemp(tmpl) != nullptr,
              "SocketGroup: mkdtemp failed: " << std::strerror(errno));
  const std::string dir = tmpl;
  const std::string rendezvous = "unix:" + dir + "/rv";

  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<pid_t> pids(nranks, -1);
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = ::fork();
    PWDFT_CHECK(pid >= 0, "SocketGroup: fork failed: " << std::strerror(errno));
    if (pid == 0) {
      // Child: the inherited thread pool has no workers here; drop it
      // before anything can touch parallel_for.
      exec::reinit_after_fork();
      int code = 0;
      try {
        const auto comm = SocketComm::connect(r, nranks, rendezvous,
                                              SocketCommOptions::from_env());
        fn(*comm);
      } catch (const CommError& e) {
        std::fprintf(stderr, "[SocketGroup rank %d] %s\n", r, e.what());
        code = 4;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[SocketGroup rank %d] %s\n", r, e.what());
        code = 3;
      }
      std::fflush(stdout);
      std::fflush(stderr);
      ::_exit(code);  // skip parent atexit handlers / static destructors
    }
    pids[r] = pid;
  }

  std::vector<RankExit> exits(nranks);
  std::vector<bool> reaped(nranks, false);
  const auto deadline = deadline_from(timeout_sec * 1000);
  int live = nranks;
  bool killed = false;
  while (live > 0) {
    for (int r = 0; r < nranks; ++r) {
      if (reaped[r]) continue;
      int status = 0;
      const pid_t got = ::waitpid(pids[r], &status, WNOHANG);
      if (got == pids[r]) {
        reaped[r] = true;
        --live;
        if (WIFEXITED(status)) {
          exits[r].code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          exits[r].signaled = true;
          exits[r].code = WTERMSIG(status);
          exits[r].timed_out = killed;
        }
      }
    }
    if (live == 0) break;
    if (!killed && remaining_ms(deadline) <= 0) {
      // Deadline: a wedged collective must fail the test, not stall it.
      killed = true;
      for (int r = 0; r < nranks; ++r)
        if (!reaped[r]) ::kill(pids[r], SIGKILL);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  remove_tree(dir);
  return exits;
}

void SocketGroup::run(int nranks, const RankFn& fn, int timeout_sec) {
  const std::vector<RankExit> exits = run_collect(nranks, fn, timeout_sec);
  std::string bad;
  for (int r = 0; r < nranks; ++r) {
    const RankExit& e = exits[r];
    if (!e.signaled && e.code == 0) continue;
    bad += " rank " + std::to_string(r) +
           (e.timed_out ? " killed at the deadline"
            : e.signaled ? " died on signal " + std::to_string(e.code)
                         : " exited " + std::to_string(e.code));
  }
  PWDFT_CHECK(bad.empty(), "SocketGroup: " << nranks << "-rank run failed:" << bad);
}

}  // namespace pwdft::par
