#pragma once

/// \file socket_comm.hpp
/// Multi-process socket-backed implementation of the Comm interface.
///
/// N ranks living in N OS processes — forked by SocketGroup or launched
/// independently with PWDFT_RANK / PWDFT_RANKS / PWDFT_COMM_LISTEN — meet
/// at a rank-0 rendezvous listener, exchange peer-listener addresses, and
/// build a full mesh of stream sockets (unix or TCP loopback, following
/// the rendezvous transport). Every byte on those sockets travels as a
/// length-prefixed, FNV-1a-checksummed frame with the shared
/// common/frame.hpp layout (serve::wire's discipline, its own magic), so
/// a truncated, corrupt, or foreign frame is a typed CommError — never a
/// silent wrong answer, never a hang.
///
/// Determinism contract: allreduce_sum gathers every rank's contribution
/// to rank 0, folds them into a zero-initialized accumulator in rank
/// order 0..P-1 — the identical summation order as ThreadComm's
/// rendezvous allreduce — and broadcasts the result bytes. All collectives
/// are therefore bit-identical to the same program on ThreadComm
/// (pinned by tests/comm_conformance.hpp), and HierComm /
/// TransposeOverlap, written against the Comm interface, inherit the
/// backend for free.
///
/// Failure semantics: every blocking operation carries the
/// SocketCommOptions timeout (socket receive/send timeouts plus poll
/// deadlines), so a dead or wedged peer surfaces as CommError{kTimeout /
/// kPeerClosed / kTruncated / kCorrupt / ...} within the timeout. MPI
/// semantics apply: collectives and matching point-to-point calls must be
/// issued in the same order on every rank of a communicator; a frame from
/// the wrong collective is CommError{kProtocol}.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "parallel/comm.hpp"

namespace pwdft::par {

/// Typed failure cause carried by CommError. In-process only (never on the
/// wire), so values can be reordered freely.
enum class CommFault : int {
  kTimeout = 0,  ///< peer silent past the configured timeout
  kPeerClosed,   ///< peer closed or reset the connection between frames
  kTruncated,    ///< connection died mid-frame
  kCorrupt,      ///< frame arrived whole but failed its FNV-1a checksum
  kProtocol,     ///< well-formed frame from the wrong collective/peer/size
  kConnect,      ///< rendezvous or mesh connection could not be established
  kIo,           ///< any other socket-level failure
};

const char* comm_fault_name(CommFault f);

class CommError : public Error {
 public:
  CommError(CommFault fault, const std::string& what) : Error(what), fault_(fault) {}
  CommFault fault() const { return fault_; }

 private:
  CommFault fault_;
};

struct SocketCommOptions {
  /// Bound on every blocking socket operation (connect retries, accepts,
  /// frame sends/receives). A hung peer becomes CommError{kTimeout} within
  /// roughly this window instead of a deadlock.
  int timeout_ms = 30000;

  /// PWDFT_COMM_TIMEOUT_MS (strict parse, common/env.hpp).
  static SocketCommOptions from_env();
};

class SocketComm final : public Comm {
 public:
  /// Collective across the N processes: rank 0 listens on `rendezvous`
  /// ("unix:<path>" or "tcp:<host>:<port>"), ranks 1..N-1 dial it (with
  /// retry — rank 0 may not be up yet), and all end holding a full peer
  /// mesh. Throws CommError on timeout or a malformed handshake.
  static std::unique_ptr<SocketComm> connect(int rank, int nranks, const std::string& rendezvous,
                                             const SocketCommOptions& opts);

  /// Reads PWDFT_RANK / PWDFT_RANKS / PWDFT_COMM_LISTEN (+ timeout) and
  /// calls connect() — the entry point for independently launched ranks.
  static std::unique_ptr<SocketComm> connect_env();

  ~SocketComm() override;
  SocketComm(const SocketComm&) = delete;
  SocketComm& operator=(const SocketComm&) = delete;

  int rank() const override { return rank_; }
  int size() const override { return static_cast<int>(fds_.size()); }

  void barrier() override;
  void bcast_bytes(void* data, std::size_t bytes, int root) override;
  void allreduce_sum(double* data, std::size_t count) override;
  void allreduce_sum(Complex* data, std::size_t count) override;
  void alltoallv_bytes(const unsigned char* send, const std::size_t* send_counts,
                       const std::size_t* send_displs, unsigned char* recv,
                       const std::size_t* recv_counts, const std::size_t* recv_displs) override;
  void allgatherv_bytes(const unsigned char* send, std::size_t send_bytes, unsigned char* recv,
                        const std::size_t* recv_counts, const std::size_t* recv_displs) override;
  void send_bytes(const void* data, std::size_t bytes, int dest, int tag) override;
  void recv_bytes(void* data, std::size_t bytes, int src, int tag) override;

  /// Collective: a second full mesh over fresh sockets among the same
  /// ranks — an independent rendezvous domain, so collectives on the
  /// duplicate never interleave with the parent's (the TransposeOverlap
  /// contract).
  std::unique_ptr<Comm> dup() override;

  /// Collective: partitions the ranks by `color`; within a color, new
  /// ranks are ordered by (key, parent rank) — the MPI_Comm_split rule —
  /// and each group builds its own mesh (HierComm's substrate).
  std::unique_ptr<Comm> split(int color, int key) override;

  /// Fault injection for the conformance harness: the NEXT outbound
  /// collective frame is damaged after encoding (so the checksum no longer
  /// matches) or cut off mid-frame. The receiving peer must observe a
  /// typed CommError, never a hang or a silent wrong answer.
  enum class Inject { kNone, kFlipPayloadByte, kTruncateFrame };
  void debug_inject_fault(Inject f) { inject_ = f; }

 private:
  SocketComm(int rank, std::vector<int> fds, SocketCommOptions opts, std::string mesh_hint);

  template <typename T>
  void allreduce_sum_impl(T* data, std::size_t count);

  /// [u64 seq][u32 op][u32 src] + data, as one checksummed frame.
  void send_collective(int dst, CommOp op, const unsigned char* data, std::size_t n);
  /// Receives and validates the matching frame; `expect` is the exact data
  /// size (a size mismatch between peers is kProtocol, as in ThreadComm).
  std::vector<std::uint8_t> recv_collective(int src, CommOp op, std::size_t expect);
  /// Simultaneous send/receive of raw frame bytes against two peers (or
  /// one) without blocking either direction — the alltoallv exchange step.
  void duplex_exchange(int dst, const std::uint8_t* out, std::size_t out_n, int src,
                       std::uint8_t* in, std::size_t in_n);
  /// All ranks' variable-length payloads, in rank order (two allgatherv
  /// rounds: fixed-size lengths, then the data) — dup()/split() substrate.
  std::vector<std::vector<std::uint8_t>> allgather_var(const std::vector<std::uint8_t>& mine);
  std::vector<std::string> allgather_addresses(const std::string& mine);
  /// Dial-lower/accept-higher mesh construction among `addrs` (indexed by
  /// new rank; own slot ignored). Returns the fd table with -1 at my_rank.
  std::vector<int> build_mesh(int my_rank, const std::vector<std::string>& addrs, int listen_fd);

  int rank_ = 0;
  std::vector<int> fds_;  ///< peer fd per rank; own slot is -1
  SocketCommOptions opts_;
  /// "unix:<dir>" or "tcp:<host>": where dup()/split() listeners go.
  std::string mesh_hint_;
  std::uint64_t seq_ = 0;  ///< collective call counter, validated per frame
  Inject inject_ = Inject::kNone;
  /// Out-of-order point-to-point frames parked per source: (tag, data).
  std::vector<std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>> stash_;
};

/// Forks `nranks` child processes, each running `fn` over a SocketComm
/// mesh rendezvoused in a private temp directory — the multi-process
/// analogue of ThreadGroup::run, used by the conformance tests and the
/// scaling benches. The parent reaps every child under a hard deadline
/// (stragglers are SIGKILLed), so a deadlocked collective fails the caller
/// instead of hanging it.
class SocketGroup {
 public:
  using RankFn = std::function<void(Comm&)>;

  struct RankExit {
    bool signaled = false;   ///< child died on a signal
    bool timed_out = false;  ///< parent had to SIGKILL it at the deadline
    int code = 0;            ///< exit status, or the signal number
  };

  /// Runs the group and returns per-rank outcomes (exit 0 = fn returned,
  /// 3 = std::exception escaped, 4 = CommError escaped). Fault-injection
  /// tests that expect rank deaths inspect the vector themselves.
  static std::vector<RankExit> run_collect(int nranks, const RankFn& fn, int timeout_sec = 120);

  /// Runs the group and throws pwdft::Error unless every rank exited
  /// cleanly with status 0.
  static void run(int nranks, const RankFn& fn, int timeout_sec = 120);
};

}  // namespace pwdft::par
