#pragma once

/// \file thread_comm.hpp
/// Thread-backed implementation of the Comm interface.
///
/// ThreadGroup::run(n, fn) launches n ranks as std::threads; each receives a
/// ThreadComm bound to a shared rendezvous area. Collectives follow a
/// publish / barrier / read / barrier protocol, which gives true MPI
/// semantics (every rank sees every other rank's payload of the *same*
/// collective call) without any serialization of the algorithm code.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "parallel/comm.hpp"

namespace pwdft::par {

namespace detail {
struct SharedState;
}  // namespace detail

class ThreadComm final : public Comm {
 public:
  ThreadComm(std::shared_ptr<detail::SharedState> shared, int rank);
  ~ThreadComm() override;

  int rank() const override { return rank_; }
  int size() const override;

  void barrier() override;
  void bcast_bytes(void* data, std::size_t bytes, int root) override;
  void allreduce_sum(double* data, std::size_t count) override;
  void allreduce_sum(Complex* data, std::size_t count) override;
  void alltoallv_bytes(const unsigned char* send, const std::size_t* send_counts,
                       const std::size_t* send_displs, unsigned char* recv,
                       const std::size_t* recv_counts, const std::size_t* recv_displs) override;
  void allgatherv_bytes(const unsigned char* send, std::size_t send_bytes, unsigned char* recv,
                        const std::size_t* recv_counts, const std::size_t* recv_displs) override;
  void send_bytes(const void* data, std::size_t bytes, int dest, int tag) override;
  void recv_bytes(void* data, std::size_t bytes, int src, int tag) override;
  /// Collective: all ranks must call dup() at the same point. The duplicate
  /// shares the rank set but owns a fresh rendezvous area, so its
  /// collectives never interleave with the parent's.
  std::unique_ptr<Comm> dup() override;
  /// Collective: all ranks call split() at the same point; each color group
  /// gets a fresh rendezvous area of its own size.
  std::unique_ptr<Comm> split(int color, int key) override;

 private:
  template <typename T>
  void allreduce_sum_impl(T* data, std::size_t count);

  std::shared_ptr<detail::SharedState> shared_;
  int rank_;
};

/// Launches an SPMD region across `nranks` thread-backed ranks and joins.
/// The first exception thrown by any rank is rethrown after all join.
/// Returns the per-rank communication statistics.
class ThreadGroup {
 public:
  using RankFn = std::function<void(Comm&)>;
  static std::vector<CommStats> run(int nranks, const RankFn& fn);
};

}  // namespace pwdft::par
