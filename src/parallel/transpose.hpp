#pragma once

/// \file transpose.hpp
/// Band-index <-> G-space transposes via Alltoallv (paper §3.1, Fig. 1).
///
/// Band layout:  local matrix is (n_g  x  nb_local), bands [b0, b0+nb_local).
/// G layout:     local matrix is (ng_local x nb_total), rows [g0, g0+ng_local).
///
/// Payloads can be sent in double precision or converted to single precision
/// for the wire (paper §3.2 optimization 4 / §3.3), mirroring the
/// communication-volume halving on Summit; data is converted back to double
/// on arrival.
///
/// Wire buffers come from the calling thread's workspace arena (steady-state
/// calls allocate nothing) and the pack/unpack column copies run on the exec
/// engine (bit-identical at any thread count). Both methods are collectives
/// on `comm`. Internally each call is three phases — pack, exchange, unpack
/// — and par::TransposeOverlap (overlap.hpp) mounts those phases around
/// caller compute: pack up front, the exchange parked on the exec engine's
/// async lane against a Comm::dup()'ed communicator, unpack at wait().

#include "linalg/matrix.hpp"
#include "parallel/comm.hpp"
#include "parallel/distribution.hpp"

namespace pwdft::par {

class WavefunctionTranspose {
 public:
  WavefunctionTranspose() = default;
  WavefunctionTranspose(BlockPartition gvecs, BlockPartition bands)
      : gvecs_(gvecs), bands_(bands) {}

  /// band_local: (n_g x nb_local) -> g_local: (ng_local x nb_total).
  void band_to_g(Comm& comm, const CMatrix& band_local, CMatrix& g_local,
                 bool single_precision) const;

  /// g_local: (ng_local x nb_total) -> band_local: (n_g x nb_local).
  void g_to_band(Comm& comm, const CMatrix& g_local, CMatrix& band_local,
                 bool single_precision) const;

  const BlockPartition& gvecs() const { return gvecs_; }
  const BlockPartition& bands() const { return bands_; }

 private:
  BlockPartition gvecs_;
  BlockPartition bands_;
};

/// Moves a column-distributed matrix (full rows on every rank) from the
/// contiguous column partition `from` to `to` with one Alltoallv straight
/// out of / into the matrix storage (contiguous partitions make the
/// per-peer column ranges contiguous, so there is no pack/unpack phase).
/// Collective on comm; from/to must have comm.size() parts and equal
/// totals. Resizes `out` to (in.rows() x to.count(rank)). The carrier of
/// the Fock dynamic band rebalance; always double precision on the wire.
void redistribute_columns(Comm& comm, const CostPartition& from, const CostPartition& to,
                          const CMatrix& in, CMatrix& out);

}  // namespace pwdft::par
