#pragma once

/// \file overlap.hpp
/// Generalized communication/compute overlap for wavefunction transposes
/// (paper §3.2 step 5 applied to Alg. 3, generalizing the PR 2 idiom).
///
/// A WavefunctionTranspose call is three phases: pack (engine-parallel
/// column copies into the wire buffer), exchange (the Alltoallv), and
/// unpack (engine-parallel copies out). TransposeOverlap mounts those
/// phases around the caller's compute:
///
///   ovl.start_band_to_g(t, comm, psi, psi_g, sp);  // pack now, exchange parked
///   ham.apply(psi, hpsi, comm);                    // compute on the parent comm
///   ovl.wait();                                    // join exchange, unpack
///
/// start_*() packs on the calling thread (the pool parallelizes the column
/// copies), then parks ONLY the wire exchange on the exec engine's async
/// lane against a lazily dup()'ed communicator — an independent rendezvous
/// domain, so the in-flight Alltoallv can never interleave with the Fock
/// broadcasts (or any collective) the compute issues on the parent. wait()
/// joins the exchange and unpacks engine-parallel on the caller. The async
/// lane never wins the fork-join pool (docs/threading.md), so the parked
/// exchange cannot steal workers from the compute it hides behind.
///
/// Results are bit-identical to the synchronous call: pack/exchange/unpack
/// move bytes, they never reassociate arithmetic. With overlap disabled
/// (PWDFT_COMM_OVERLAP=0, or a disabled instance) start_*() degrades to the
/// synchronous transpose on the parent communicator and wait() is a no-op,
/// so call sites are written once against this interface.
///
/// Wire buffers are owned by the instance (monotonically grown, so steady
/// state allocates nothing) rather than taken from the workspace arena: a
/// synchronous transpose — or a second TransposeOverlap — issued while an
/// exchange is in flight can therefore never alias the in-flight wires.
///
/// Scheduling contract: start_*() and the first-use dup() are collective on
/// the parent; every rank must enable overlap identically and start/wait
/// the same transposes in the same order. One transpose may be in flight
/// per instance; use one instance per concurrent stream (each owns its own
/// dup'ed rendezvous domain). The owning thread must call start/wait; the
/// destructor joins any in-flight exchange.

#include <memory>
#include <vector>

#include "common/exec.hpp"
#include "linalg/matrix.hpp"
#include "parallel/comm.hpp"
#include "parallel/transpose.hpp"

namespace pwdft::par {

/// PWDFT_COMM_OVERLAP resolution: unset/1/on => true, 0/off => false.
/// Overlap is the default execution mode.
bool comm_overlap_env_default();

class TransposeOverlap {
 public:
  TransposeOverlap() : TransposeOverlap(comm_overlap_env_default()) {}
  explicit TransposeOverlap(bool enabled);
  ~TransposeOverlap();
  TransposeOverlap(const TransposeOverlap&) = delete;
  TransposeOverlap& operator=(const TransposeOverlap&) = delete;

  bool enabled() const { return enabled_; }

  /// Packs band_local and parks the band->G exchange; g_out is written by
  /// wait(). Synchronous on `comm` when disabled.
  void start_band_to_g(const WavefunctionTranspose& t, Comm& comm, const CMatrix& band_local,
                       CMatrix& g_out, bool single_precision);

  /// Packs g_local and parks the G->band exchange; band_out is written by
  /// wait(). Synchronous on `comm` when disabled.
  void start_g_to_band(const WavefunctionTranspose& t, Comm& comm, const CMatrix& g_local,
                       CMatrix& band_out, bool single_precision);

  /// Joins the in-flight exchange (rethrowing its error, if any) and
  /// unpacks into the output matrix. No-op when nothing is in flight.
  void wait();

  /// Folds the dup'ed communicator's traffic into `parent`'s record so
  /// comm-volume accounting sees one total (bench/real_comm_volume, perf
  /// model validation) regardless of which domain carried the transpose.
  void fold_stats(Comm& parent);

 private:
  struct Pending;  // transpose.cpp

  void start(const WavefunctionTranspose& t, Comm& comm, const CMatrix& in, CMatrix& out,
             bool to_g, bool single_precision);

  bool enabled_ = true;
  std::unique_ptr<Comm> ocomm_;  ///< lazily dup'ed exchange domain
  std::vector<unsigned char> send_, recv_;  ///< instance-owned wire buffers
  std::unique_ptr<Pending> pending_;
  /// Declared last: destroyed (and joined) before the wires and the comm.
  exec::TaskGroup lane_;
};

}  // namespace pwdft::par
