#pragma once

/// \file matrix.hpp
/// Minimal column-major dense matrix. Wavefunction blocks are stored as
/// CMatrix with one band per column (the paper's "band index" layout maps a
/// block of columns to each rank; the "G-space" layout maps a block of rows).

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace pwdft {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), d_(rows * cols) {}
  Matrix(std::size_t rows, std::size_t cols, T init)
      : rows_(rows), cols_(cols), d_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return d_.size(); }
  bool empty() const { return d_.empty(); }

  T& operator()(std::size_t i, std::size_t j) {
    PWDFT_ASSERT(i < rows_ && j < cols_);
    return d_[i + rows_ * j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    PWDFT_ASSERT(i < rows_ && j < cols_);
    return d_[i + rows_ * j];
  }

  T* data() { return d_.data(); }
  const T* data() const { return d_.data(); }
  T* col(std::size_t j) {
    PWDFT_ASSERT(j < cols_);
    return d_.data() + rows_ * j;
  }
  const T* col(std::size_t j) const {
    PWDFT_ASSERT(j < cols_);
    return d_.data() + rows_ * j;
  }

  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    d_.assign(rows * cols, T{});
  }
  /// Sets the shape reusing capacity. Surviving elements keep their raw
  /// values reinterpreted in the new shape — callers must overwrite them.
  /// Unlike resize(), does not zero-fill (used by the workspace arena).
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    d_.resize(rows * cols);
  }
  void fill(T v) { std::fill(d_.begin(), d_.end(), v); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.d_ == b.d_;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<T> d_;
};

using CMatrix = Matrix<Complex>;
using RMatrix = Matrix<double>;

}  // namespace pwdft
