#pragma once

/// \file blas.hpp
/// Complex dense kernels standing in for cuBLAS: GEMM (ops N/T/C), rank-k
/// overlap products, and level-1 helpers. The two hot paths in PT-CN are
///   S = X^H * Y   (overlap matrices, Alg. 3 step 2)
///   Y = X * S     (subspace rotations, Alg. 3 step 4)
/// and both have dedicated cache-friendly loops.

#include <span>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace pwdft::linalg {

/// C = alpha * op(A) * op(B) + beta * C, with op in {'N','T','C'}.
void gemm(char opa, char opb, Complex alpha, const CMatrix& a, const CMatrix& b, Complex beta,
          CMatrix& c);

/// Convenience: returns A^H * B (the overlap of two wavefunction blocks).
CMatrix overlap(const CMatrix& a, const CMatrix& b);

/// overlap() into caller-owned storage (resized); the allocation-free form
/// for hot paths whose result matrix lives in a workspace arena slot.
void overlap_into(const CMatrix& a, const CMatrix& b, CMatrix& s);

/// y += alpha * x
void axpy(Complex alpha, std::span<const Complex> x, std::span<Complex> y);

/// Conjugated dot product: sum_i conj(x_i) * y_i.
Complex dotc(std::span<const Complex> x, std::span<const Complex> y);

/// Euclidean norm.
double nrm2(std::span<const Complex> x);

/// x *= alpha
void scal(Complex alpha, std::span<Complex> x);

/// Frobenius norm of a matrix.
double frobenius_norm(const CMatrix& a);

}  // namespace pwdft::linalg
