#include "linalg/heig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace pwdft::linalg {

namespace {

double offdiag_norm(const CMatrix& a) {
  const std::size_t n = a.rows();
  double acc = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j + 1; i < n; ++i) acc += std::norm(a(i, j));
  return std::sqrt(2.0 * acc);
}

}  // namespace

void heig(const CMatrix& a_in, std::vector<double>& evals, CMatrix& v) {
  PWDFT_CHECK(a_in.rows() == a_in.cols(), "heig: matrix must be square");
  const std::size_t n = a_in.rows();

  // Hermitize defensively; callers assemble A from products that can carry
  // O(eps) asymmetry.
  CMatrix a(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      a(i, j) = 0.5 * (a_in(i, j) + std::conj(a_in(j, i)));

  v.resize(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = Complex{1.0, 0.0};

  double scale = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, std::abs(a(i, j)));
  if (scale == 0.0) scale = 1.0;
  const double tol = 1e-14 * scale * static_cast<double>(n);

  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps && offdiag_norm(a) > tol; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const Complex apq = a(p, q);
        const double mag = std::abs(apq);
        if (mag <= tol / static_cast<double>(n)) continue;

        // 2x2 block [[app, apq],[conj(apq), aqq]]. With apq = mag*e^{i*phi},
        // the unitary U = [[c, -s e^{i phi}],[s e^{-i phi}, c]] zeroes the
        // off-diagonal when tan(2 theta) = 2*mag / (app - aqq).
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();
        const Complex phase = apq / mag;  // e^{i phi}
        const double tau = (app - aqq) / (2.0 * mag);
        const double t = (tau >= 0.0) ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                      : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        // Column update: A <- A U.
        for (std::size_t i = 0; i < n; ++i) {
          const Complex aip = a(i, p), aiq = a(i, q);
          a(i, p) = c * aip + s * std::conj(phase) * aiq;
          a(i, q) = -s * phase * aip + c * aiq;
        }
        // Row update: A <- U^H A.
        for (std::size_t j = 0; j < n; ++j) {
          const Complex apj = a(p, j), aqj = a(q, j);
          a(p, j) = c * apj + s * phase * aqj;
          a(q, j) = -s * std::conj(phase) * apj + c * aqj;
        }
        // Accumulate eigenvectors: V <- V U.
        for (std::size_t i = 0; i < n; ++i) {
          const Complex vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip + s * std::conj(phase) * viq;
          v(i, q) = -s * phase * vip + c * viq;
        }
        a(p, q) = Complex{0.0, 0.0};
        a(q, p) = Complex{0.0, 0.0};
      }
    }
  }

  evals.resize(n);
  for (std::size_t i = 0; i < n; ++i) evals[i] = a(i, i).real();

  // Sort ascending, permuting eigenvector columns accordingly.
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(),
            [&](std::size_t x, std::size_t y) { return evals[x] < evals[y]; });
  std::vector<double> ev(n);
  CMatrix vs(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    ev[k] = evals[perm[k]];
    for (std::size_t i = 0; i < n; ++i) vs(i, k) = v(i, perm[k]);
  }
  evals = std::move(ev);
  v = std::move(vs);
}

}  // namespace pwdft::linalg
