#include "linalg/lsq.hpp"

#include "common/check.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace pwdft::linalg {

std::vector<Complex> lsq_solve(const CMatrix& a, std::span<const Complex> b, double lam) {
  PWDFT_CHECK(a.rows() == b.size(), "lsq: rhs size mismatch");
  const std::size_t n = a.cols();
  CMatrix gram = overlap(a, a);
  std::vector<Complex> rhs(n);
  for (std::size_t j = 0; j < n; ++j)
    rhs[j] = dotc(std::span<const Complex>(a.col(j), a.rows()), b);
  return lsq_solve_gram(gram, rhs, lam);
}

std::vector<Complex> lsq_solve_gram(const CMatrix& gram, std::span<const Complex> rhs,
                                    double lam) {
  PWDFT_CHECK(gram.rows() == gram.cols(), "lsq: Gram matrix must be square");
  PWDFT_CHECK(gram.rows() == rhs.size(), "lsq: rhs size mismatch");
  const std::size_t n = gram.rows();
  PWDFT_CHECK(lam >= 0.0, "lsq: negative regularization");

  // Scale-invariant regularization: lam is relative to the mean diagonal.
  double diag_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) diag_mean += gram(i, i).real();
  diag_mean = (n > 0) ? diag_mean / static_cast<double>(n) : 1.0;
  if (diag_mean <= 0.0) diag_mean = 1.0;

  CMatrix m(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      m(i, j) = 0.5 * (gram(i, j) + std::conj(gram(j, i)));
  for (std::size_t i = 0; i < n; ++i) m(i, i) += lam * diag_mean;

  std::vector<Complex> x(rhs.begin(), rhs.end());
  potrf_lower(m);
  solve_lower(m, x.data());
  solve_lower_conj(m, x.data());
  return x;
}

}  // namespace pwdft::linalg
