#include "linalg/lsq.hpp"

#include "common/check.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace pwdft::linalg {

std::vector<Complex> lsq_solve(const CMatrix& a, std::span<const Complex> b, double lam) {
  PWDFT_CHECK(a.rows() == b.size(), "lsq: rhs size mismatch");
  const std::size_t n = a.cols();
  CMatrix gram = overlap(a, a);
  std::vector<Complex> rhs(n);
  for (std::size_t j = 0; j < n; ++j)
    rhs[j] = dotc(std::span<const Complex>(a.col(j), a.rows()), b);
  return lsq_solve_gram(gram, rhs, lam);
}

std::vector<Complex> lsq_solve_gram(const CMatrix& gram, std::span<const Complex> rhs,
                                    double lam) {
  CMatrix m = gram;
  std::vector<Complex> x(rhs.begin(), rhs.end());
  lsq_solve_gram_inplace(m, x, lam);
  return x;
}

void lsq_solve_gram_inplace(CMatrix& gram, std::span<Complex> rhs, double lam) {
  PWDFT_CHECK(gram.rows() == gram.cols(), "lsq: Gram matrix must be square");
  PWDFT_CHECK(gram.rows() == rhs.size(), "lsq: rhs size mismatch");
  const std::size_t n = gram.rows();
  PWDFT_CHECK(lam >= 0.0, "lsq: negative regularization");

  // Scale-invariant regularization: lam is relative to the mean diagonal.
  double diag_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) diag_mean += gram(i, i).real();
  diag_mean = (n > 0) ? diag_mean / static_cast<double>(n) : 1.0;
  if (diag_mean <= 0.0) diag_mean = 1.0;

  // Hermitian average in place (pairwise, diagonal made exactly real),
  // then the Tikhonov shift.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const Complex a = gram(i, j), b = gram(j, i);
      gram(i, j) = 0.5 * (a + std::conj(b));
      gram(j, i) = 0.5 * (b + std::conj(a));
    }
    gram(j, j) = Complex{gram(j, j).real() + lam * diag_mean, 0.0};
  }

  potrf_lower(gram);
  solve_lower(gram, rhs.data());
  solve_lower_conj(gram, rhs.data());
}

}  // namespace pwdft::linalg
