#pragma once

/// \file lsq.hpp
/// Tikhonov-regularized complex least squares, min_x ||A x - b||^2 + lam ||x||^2,
/// solved via the normal equations. Sized for the Anderson mixing history
/// (paper §3.4: at most a 20x20 problem per mixed quantity).

#include <span>
#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace pwdft::linalg {

/// Solves the regularized normal equations (A^H A + lam I) x = A^H b.
/// `a` is m-by-n with m >= 1, n >= 1; returns x of size n.
std::vector<Complex> lsq_solve(const CMatrix& a, std::span<const Complex> b, double lam);

/// Variant taking the Gram matrix G = A^H A and rhs r = A^H b directly
/// (used when the Gram matrix is assembled distributedly via Allreduce).
std::vector<Complex> lsq_solve_gram(const CMatrix& gram, std::span<const Complex> rhs,
                                    double lam);

/// Allocation-free variant: conditions `gram` IN PLACE (Hermitian average +
/// mean-diagonal-relative Tikhonov shift, then its Cholesky factor) and
/// overwrites `rhs` with the solution. The single source of the
/// regularization recipe — lsq_solve_gram and AndersonMixer::mix (which
/// passes arena-backed storage) both call it.
void lsq_solve_gram_inplace(CMatrix& gram, std::span<Complex> rhs, double lam);

}  // namespace pwdft::linalg
