#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pwdft::linalg {

void potrf_lower(CMatrix& a) {
  PWDFT_CHECK(a.rows() == a.cols(), "potrf: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j).real();
    for (std::size_t k = 0; k < j; ++k) diag -= std::norm(a(j, k));
    PWDFT_CHECK(diag > 0.0, "potrf: matrix not positive definite at column " << j);
    const double ljj = std::sqrt(diag);
    a(j, j) = Complex{ljj, 0.0};
    for (std::size_t i = j + 1; i < n; ++i) {
      Complex v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * std::conj(a(j, k));
      a(i, j) = v / ljj;
    }
    for (std::size_t i = 0; i < j; ++i) a(i, j) = Complex{0.0, 0.0};
  }
}

void trsm_right_lower_conj(CMatrix& x, const CMatrix& l) {
  PWDFT_CHECK(l.rows() == l.cols() && l.rows() == x.cols(), "trsm: shape mismatch");
  const std::size_t m = x.rows(), n = x.cols();
  // Solve Q * L^H = X column-by-column:  q_j = (x_j - sum_{k<j} q_k conj(L(j,k))) / L(j,j).
  for (std::size_t j = 0; j < n; ++j) {
    Complex* xj = x.col(j);
    for (std::size_t k = 0; k < j; ++k) {
      const Complex f = std::conj(l(j, k));
      if (f == Complex{0.0, 0.0}) continue;
      const Complex* xk = x.col(k);
      for (std::size_t i = 0; i < m; ++i) xj[i] -= f * xk[i];
    }
    const Complex d = l(j, j);
    PWDFT_CHECK(std::abs(d) > 0.0, "trsm: singular triangular factor");
    const Complex inv = Complex{1.0, 0.0} / d;
    for (std::size_t i = 0; i < m; ++i) xj[i] *= inv;
  }
}

void solve_lower(const CMatrix& l, Complex* b) {
  const std::size_t n = l.rows();
  for (std::size_t i = 0; i < n; ++i) {
    Complex v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * b[k];
    b[i] = v / l(i, i);
  }
}

void solve_lower_conj(const CMatrix& l, Complex* b) {
  const std::size_t n = l.rows();
  for (std::size_t ii = n; ii-- > 0;) {
    Complex v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= std::conj(l(k, ii)) * b[k];
    b[ii] = v / std::conj(l(ii, ii));
  }
}

}  // namespace pwdft::linalg
