#include "linalg/blas.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pwdft::linalg {

namespace {

std::size_t op_rows(char op, const CMatrix& m) { return op == 'N' ? m.rows() : m.cols(); }
std::size_t op_cols(char op, const CMatrix& m) { return op == 'N' ? m.cols() : m.rows(); }

Complex op_elem(char op, const CMatrix& m, std::size_t i, std::size_t j) {
  switch (op) {
    case 'N':
      return m(i, j);
    case 'T':
      return m(j, i);
    default:
      return std::conj(m(j, i));
  }
}

/// C = alpha * A^H * B + beta * C; A is k-by-m, B is k-by-n, columns
/// contiguous, so each C(i,j) is a contiguous conjugated dot product.
void gemm_cn(Complex alpha, const CMatrix& a, const CMatrix& b, Complex beta, CMatrix& c) {
  const std::size_t m = a.cols(), n = b.cols(), k = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    const Complex* bj = b.col(j);
    for (std::size_t i = 0; i < m; ++i) {
      const Complex* ai = a.col(i);
      Complex acc{0.0, 0.0};
      for (std::size_t l = 0; l < k; ++l) acc += std::conj(ai[l]) * bj[l];
      // beta == 0 must not read C: the destination may be a reused arena
      // block holding stale (possibly non-finite) values.
      c(i, j) = beta == Complex{0.0, 0.0} ? alpha * acc : alpha * acc + beta * c(i, j);
    }
  }
}

/// C = alpha * A * B + beta * C with A m-by-k, B k-by-n. Column-major
/// friendly: accumulate C's column j as a linear combination of A's columns.
void gemm_nn(Complex alpha, const CMatrix& a, const CMatrix& b, Complex beta, CMatrix& c) {
  const std::size_t m = a.rows(), n = b.cols(), k = a.cols();
  for (std::size_t j = 0; j < n; ++j) {
    Complex* cj = c.col(j);
    if (beta == Complex{0.0, 0.0}) {
      for (std::size_t i = 0; i < m; ++i) cj[i] = Complex{0.0, 0.0};
    } else if (beta != Complex{1.0, 0.0}) {
      for (std::size_t i = 0; i < m; ++i) cj[i] *= beta;
    }
    for (std::size_t l = 0; l < k; ++l) {
      const Complex f = alpha * b(l, j);
      if (f == Complex{0.0, 0.0}) continue;
      const Complex* al = a.col(l);
      for (std::size_t i = 0; i < m; ++i) cj[i] += f * al[i];
    }
  }
}

}  // namespace

void gemm(char opa, char opb, Complex alpha, const CMatrix& a, const CMatrix& b, Complex beta,
          CMatrix& c) {
  PWDFT_CHECK(opa == 'N' || opa == 'T' || opa == 'C', "bad opa");
  PWDFT_CHECK(opb == 'N' || opb == 'T' || opb == 'C', "bad opb");
  const std::size_t m = op_rows(opa, a);
  const std::size_t n = op_cols(opb, b);
  const std::size_t k = op_cols(opa, a);
  PWDFT_CHECK(op_rows(opb, b) == k, "gemm: inner dimensions mismatch");
  PWDFT_CHECK(c.rows() == m && c.cols() == n, "gemm: C has wrong shape");

  if (opa == 'C' && opb == 'N') {
    gemm_cn(alpha, a, b, beta, c);
    return;
  }
  if (opa == 'N' && opb == 'N') {
    gemm_nn(alpha, a, b, beta, c);
    return;
  }
  // Generic fallback for the remaining op combinations (cold paths).
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      Complex acc{0.0, 0.0};
      for (std::size_t l = 0; l < k; ++l) acc += op_elem(opa, a, i, l) * op_elem(opb, b, l, j);
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
}

CMatrix overlap(const CMatrix& a, const CMatrix& b) {
  CMatrix s;
  overlap_into(a, b, s);
  return s;
}

void overlap_into(const CMatrix& a, const CMatrix& b, CMatrix& s) {
  PWDFT_CHECK(a.rows() == b.rows(), "overlap: row mismatch");
  s.resize(a.cols(), b.cols());
  gemm('C', 'N', Complex{1.0, 0.0}, a, b, Complex{0.0, 0.0}, s);
}

void axpy(Complex alpha, std::span<const Complex> x, std::span<Complex> y) {
  PWDFT_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Complex dotc(std::span<const Complex> x, std::span<const Complex> y) {
  PWDFT_ASSERT(x.size() == y.size());
  Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < x.size(); ++i) acc += std::conj(x[i]) * y[i];
  return acc;
}

double nrm2(std::span<const Complex> x) {
  double acc = 0.0;
  for (const Complex& v : x) acc += std::norm(v);
  return std::sqrt(acc);
}

void scal(Complex alpha, std::span<Complex> x) {
  for (Complex& v : x) v *= alpha;
}

double frobenius_norm(const CMatrix& a) {
  return nrm2(std::span<const Complex>(a.data(), a.size()));
}

}  // namespace pwdft::linalg
