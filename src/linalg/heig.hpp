#pragma once

/// \file heig.hpp
/// Hermitian eigensolver (cyclic complex Jacobi). Used for the Rayleigh-Ritz
/// step of LOBPCG and for small subspace diagonalizations; matrix sizes in
/// this code are at most a few hundred, where Jacobi is robust and accurate.

#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace pwdft::linalg {

/// Computes all eigenvalues (ascending) and eigenvectors of a Hermitian
/// matrix. Only the values implied by hermitizing (A + A^H)/2 are used.
/// On return, v.col(k) is the eigenvector for evals[k], and V is unitary.
void heig(const CMatrix& a, std::vector<double>& evals, CMatrix& v);

}  // namespace pwdft::linalg
