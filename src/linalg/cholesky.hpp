#pragma once

/// \file cholesky.hpp
/// Cholesky factorization and the triangular solve used for wavefunction
/// re-orthogonalization at the end of each PT-CN step (paper §3.4):
///   S = Psi^H Psi = L L^H,   Psi_ortho = Psi L^{-H}.

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace pwdft::linalg {

/// In-place lower Cholesky factorization of a Hermitian positive definite
/// matrix. On return the lower triangle (incl. diagonal) holds L and the
/// strict upper triangle is zeroed. Throws pwdft::Error if not HPD.
void potrf_lower(CMatrix& a);

/// X := X * L^{-H} where L is lower triangular (from potrf_lower).
/// This orthonormalizes the columns of X when L came from X^H X.
void trsm_right_lower_conj(CMatrix& x, const CMatrix& l);

/// Solve L y = b (forward substitution), L lower triangular, in place.
void solve_lower(const CMatrix& l, Complex* b);

/// Solve L^H y = b (back substitution), in place.
void solve_lower_conj(const CMatrix& l, Complex* b);

}  // namespace pwdft::linalg
