#include "scf/scf.hpp"

#include <cmath>
#include <iostream>

#include "common/check.hpp"
#include "common/random.hpp"
#include "ham/density.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "scf/anderson.hpp"

namespace pwdft::scf {

GroundStateSolver::GroundStateSolver(const ham::PlanewaveSetup& setup,
                                     ham::Hamiltonian& hamiltonian)
    : setup_(setup), ham_(hamiltonian) {}

CMatrix GroundStateSolver::initial_guess(std::size_t nbands, std::uint64_t seed) const {
  const std::size_t ng = setup_.n_g();
  PWDFT_CHECK(nbands <= ng, "initial_guess: more bands than planewaves");
  Rng rng(seed);
  CMatrix psi(ng, nbands);
  const auto& g2 = setup_.sphere.g2();
  for (std::size_t j = 0; j < nbands; ++j) {
    for (std::size_t i = 0; i < ng; ++i) {
      // Damp high-frequency components so LOBPCG starts near the low
      // subspace; 1/(1+|G|^2) mirrors the Teter preconditioner shape.
      psi(i, j) = rng.complex_normal() / (1.0 + g2[i]);
    }
  }
  CMatrix s = linalg::overlap(psi, psi);
  linalg::potrf_lower(s);
  linalg::trsm_right_lower_conj(psi, s);
  return psi;
}

ScfResult GroundStateSolver::scf_phase(CMatrix& psi, std::span<const double> occ,
                                       const ScfOptions& opt, int max_iter) {
  par::SerialComm comm;
  ScfResult res;

  std::vector<double> rho =
      ham::compute_density(setup_, ham_.fft_dense(), psi, occ, comm, true,
                           ham_.options().op_pipeline);
  ham_.update_density(rho);

  AndersonMixer mixer(setup_.n_dense(), opt.anderson_depth, opt.mix_beta);
  par::BlockPartition bands(psi.cols(), 1);

  auto apply = [&](const CMatrix& in, CMatrix& out) {
    out.resize(in.rows(), in.cols());
    ham_.apply(in, out, comm);
  };

  for (int it = 0; it < max_iter; ++it) {
    if (ham_.hybrid_enabled()) {
      // Exchange orbitals stay frozen within a phase; only the semi-local
      // potential responds to the mixed density here.
    }
    LobpcgResult lr = lobpcg(apply, ham_.kinetic(), psi, opt.lobpcg);
    res.eigenvalues = lr.eigenvalues;

    std::vector<double> rho_out =
        ham::compute_density(setup_, ham_.fft_dense(), psi, occ, comm, true,
                           ham_.options().op_pipeline);
    res.rho_error = ham::density_error(setup_, rho_out, rho);
    res.scf_iterations = it + 1;
    if (opt.verbose) {
      std::cerr << "  scf " << it + 1 << ": drho = " << res.rho_error
                << ", lobpcg res = " << lr.max_residual << "\n";
    }
    if (res.rho_error < opt.tol_rho) {
      res.converged = true;
      rho = std::move(rho_out);
      ham_.update_density(rho);
      break;
    }

    std::vector<double> f(setup_.n_dense());
    for (std::size_t i = 0; i < f.size(); ++i) f[i] = rho_out[i] - rho[i];
    mixer.mix_real(rho, f, rho);
    for (double& v : rho) v = std::max(v, 0.0);
    ham_.update_density(rho);
  }
  return res;
}

ScfResult GroundStateSolver::solve(CMatrix& psi, std::span<const double> occ,
                                   const ScfOptions& opt) {
  par::SerialComm comm;
  par::BlockPartition bands(psi.cols(), 1);

  // Phase 1: converge the semi-local (LDA) problem with exchange off.
  const bool want_hybrid = ham_.hybrid_enabled();
  ham_.set_hybrid_enabled(false);
  ScfResult res = scf_phase(psi, occ, opt, opt.max_iter);

  if (!want_hybrid) {
    std::vector<double> rho = ham::compute_density(setup_, ham_.fft_dense(), psi, occ, comm, true,
                           ham_.options().op_pipeline);
    ham_.update_density(rho);
    res.energy = ham::compute_energy(ham_, psi, occ, rho, comm);
    return res;
  }

  // Phase 2: hybrid outer loop; each outer iteration freezes VX[Phi] and
  // re-solves the inner SCF.
  ham_.set_hybrid_enabled(true);
  double e_prev = 0.0;
  bool have_prev = false;
  for (int outer = 0; outer < opt.hybrid_outer_max; ++outer) {
    // ACE refresh schedule for the ground state: rebuild the projectors at
    // every outer step (the inner LOBPCG phase then amortizes one exact
    // Fock apply over all of its H applications), independent of where the
    // PWDFT_ACE_REFRESH registration cadence happens to stand.
    ham_.request_ace_refresh();
    ham_.set_exchange_orbitals(psi, occ, bands, comm);
    ScfResult inner = scf_phase(psi, occ, opt, std::max(4, opt.max_iter / 4));
    res.scf_iterations += inner.scf_iterations;
    res.eigenvalues = inner.eigenvalues;
    res.rho_error = inner.rho_error;
    res.outer_iterations = outer + 1;

    std::vector<double> rho = ham::compute_density(setup_, ham_.fft_dense(), psi, occ, comm, true,
                           ham_.options().op_pipeline);
    ham_.update_density(rho);
    ham_.set_exchange_orbitals(psi, occ, bands, comm);
    res.energy = ham::compute_energy(ham_, psi, occ, rho, comm);
    if (opt.verbose) {
      std::cerr << "hybrid outer " << outer + 1 << ": E = " << res.energy.total() << "\n";
    }
    if (have_prev && std::abs(res.energy.total() - e_prev) < opt.hybrid_outer_tol) {
      res.converged = true;
      break;
    }
    e_prev = res.energy.total();
    have_prev = true;
  }
  return res;
}

}  // namespace pwdft::scf
