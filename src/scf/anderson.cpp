#include "scf/anderson.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/exec.hpp"
#include "linalg/blas.hpp"
#include "linalg/lsq.hpp"

namespace pwdft::scf {

AndersonMixer::AndersonMixer(std::size_t n, std::size_t depth, double beta,
                             double regularization)
    : n_(n), depth_(depth), beta_(beta), reg_(regularization) {
  PWDFT_CHECK(n > 0, "AndersonMixer: empty vector");
  PWDFT_CHECK(depth >= 1, "AndersonMixer: depth must be >= 1");
  prev_x_.resize(n);
  prev_f_.resize(n);
  dx_.resize(n, depth);
  df_.resize(n, depth);
}

void AndersonMixer::reset() {
  n_hist_ = 0;
  next_col_ = 0;
  have_prev_ = false;
}

void AndersonMixer::mix(std::span<const Complex> x, std::span<const Complex> f,
                        std::span<Complex> out) {
  PWDFT_CHECK(x.size() == n_ && f.size() == n_ && out.size() == n_,
              "AndersonMixer: size mismatch");

  if (have_prev_) {
    // Append difference columns (ring buffer overwrites the oldest).
    Complex* dxc = dx_.col(next_col_);
    Complex* dfc = df_.col(next_col_);
    for (std::size_t i = 0; i < n_; ++i) {
      dxc[i] = x[i] - prev_x_[i];
      dfc[i] = f[i] - prev_f_[i];
    }
    next_col_ = (next_col_ + 1) % depth_;
    if (n_hist_ < depth_) ++n_hist_;
  }
  std::copy(x.begin(), x.end(), prev_x_.begin());
  std::copy(f.begin(), f.end(), prev_f_.begin());
  have_prev_ = true;

  if (n_hist_ == 0) {
    // First iteration: plain damped update x + beta f.
    for (std::size_t i = 0; i < n_; ++i) out[i] = x[i] + beta_ * f[i];
    return;
  }

  // Solve min_gamma ||f - dF gamma|| over the active history columns.
  //
  // The ring buffer keeps the active set in slots 0..n_hist-1, so the
  // regularized normal equations are built directly on the history columns
  // — no per-call copies. The Gram system lives in the executing thread's
  // arena, keeping the band-parallel PT-CN mixing loop (and the whole SCF
  // iteration around it) allocation-free (tests/test_alloc_free.cpp).
  auto& ws = exec::workspace();
  CMatrix& m = ws.cmat(exec::Slot::mix_gram, n_hist_, n_hist_);
  auto gamma = ws.cbuf(exec::Slot::mix_rhs, n_hist_);
  for (std::size_t j = 0; j < n_hist_; ++j) {
    // The Gram matrix is exactly Hermitian (dotc(a,b) == conj(dotc(b,a)),
    // term for term), so only the lower triangle is computed.
    for (std::size_t i = j; i < n_hist_; ++i) {
      m(i, j) = linalg::dotc({df_.col(i), n_}, {df_.col(j), n_});
      if (i != j) m(j, i) = std::conj(m(i, j));
    }
    gamma[j] = linalg::dotc({df_.col(j), n_}, f);
  }
  linalg::lsq_solve_gram_inplace(m, gamma, reg_);

  // out = (x - dX gamma) + beta (f - dF gamma).
  for (std::size_t i = 0; i < n_; ++i) out[i] = x[i] + beta_ * f[i];
  for (std::size_t k = 0; k < n_hist_; ++k) {
    const Complex g = gamma[k];
    if (g == Complex{0.0, 0.0}) continue;
    const Complex* dxc = dx_.col(k);
    const Complex* dfc = df_.col(k);
    for (std::size_t i = 0; i < n_; ++i) out[i] -= g * (dxc[i] + beta_ * dfc[i]);
  }
}

void AndersonMixer::mix_real(std::span<const double> x, std::span<const double> f,
                             std::span<double> out) {
  PWDFT_CHECK(x.size() == n_ && f.size() == n_ && out.size() == n_,
              "AndersonMixer: size mismatch");
  auto buf = exec::workspace().cbuf(exec::Slot::mix_real, 3 * n_);
  const std::span<Complex> xc = buf.subspan(0, n_);
  const std::span<Complex> fc = buf.subspan(n_, n_);
  const std::span<Complex> oc = buf.subspan(2 * n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    xc[i] = Complex{x[i], 0.0};
    fc[i] = Complex{f[i], 0.0};
  }
  mix(xc, fc, oc);
  for (std::size_t i = 0; i < n_; ++i) out[i] = oc[i].real();
}

}  // namespace pwdft::scf
