#include "scf/lobpcg.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/exec.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/heig.hpp"

namespace pwdft::scf {

namespace {

/// Teter-Payne-Allan preconditioner value for x = Ekin(G)/Ekin(band).
double teter(double x) {
  const double x2 = x * x, x3 = x2 * x, x4 = x2 * x2;
  const double num = 27.0 + 18.0 * x + 12.0 * x2 + 8.0 * x3;
  return num / (num + 16.0 * x4);
}

/// Cholesky-QR orthonormalization in place; returns false on breakdown.
bool ortho(CMatrix& s) {
  CMatrix g = linalg::overlap(s, s);
  try {
    linalg::potrf_lower(g);
  } catch (const Error&) {
    return false;
  }
  linalg::trsm_right_lower_conj(s, g);
  return true;
}

}  // namespace

LobpcgResult lobpcg(const ApplyFn& apply_h, const std::vector<double>& precond_kin, CMatrix& x,
                    const LobpcgOptions& opt) {
  const std::size_t n = x.rows();
  const std::size_t nb = x.cols();
  PWDFT_CHECK(nb >= 1 && n >= nb, "lobpcg: bad block shape");
  PWDFT_CHECK(precond_kin.empty() || precond_kin.size() == n,
              "lobpcg: preconditioner size mismatch");

  LobpcgResult res;
  PWDFT_CHECK(ortho(x), "lobpcg: initial block is rank deficient");

  CMatrix hx(n, nb);
  apply_h(x, hx);

  CMatrix p, hp;  // empty until the second iteration
  std::vector<double> theta(nb, 0.0);

  auto& ws = exec::workspace();

  for (int it = 0; it < opt.max_iter; ++it) {
    // Ritz values within X and residuals R = HX - X (X^H HX). All per-
    // iteration blocks are drawn from the workspace arena: after the first
    // iteration the solver performs no heap allocation for them.
    CMatrix xhx = linalg::overlap(x, hx);
    CMatrix& r = ws.cmat(exec::Slot::lob_r, n, nb);
    std::copy_n(hx.data(), hx.size(), r.data());
    linalg::gemm('N', 'N', Complex{-1.0, 0.0}, x, xhx, Complex{1.0, 0.0}, r);
    for (std::size_t j = 0; j < nb; ++j) theta[j] = xhx(j, j).real();

    // Per-band norms run band-parallel into disjoint slots; the max is
    // taken serially afterwards (max is exact, but the per-band norms must
    // each be computed by one thread to stay bit-identical).
    auto norms = ws.rbuf(exec::Slot::band_norms, nb);
    exec::parallel_for(nb, [&](std::size_t jb, std::size_t je) {
      for (std::size_t j = jb; j < je; ++j)
        norms[j] = linalg::nrm2({r.col(j), n}) / std::max(1.0, std::abs(theta[j]));
    });
    double max_res = 0.0;
    for (std::size_t j = 0; j < nb; ++j) max_res = std::max(max_res, norms[j]);
    res.max_residual = max_res;
    res.iterations = it;
    if (max_res < opt.tol) {
      res.converged = true;
      break;
    }

    // Preconditioned residuals; bands are independent, so the Teter scaling
    // runs band-parallel on the engine.
    CMatrix& w = ws.cmat(exec::Slot::lob_w, n, nb);
    std::copy_n(r.data(), r.size(), w.data());
    if (!precond_kin.empty()) {
      const double* pk = precond_kin.data();
      exec::parallel_for(nb, [&](std::size_t jb, std::size_t je) {
        for (std::size_t j = jb; j < je; ++j) {
          double ek = 1e-12;
          const Complex* cx = x.col(j);
          for (std::size_t i = 0; i < n; ++i) ek += pk[i] * std::norm(cx[i]);
          Complex* cw = w.col(j);
          for (std::size_t i = 0; i < n; ++i) cw[i] *= teter(pk[i] / ek);
        }
      });
    }

    // Assemble the trial subspace S = [X W P] and orthonormalize; HS is
    // transformed by the same right-multiplications as S, so we track it by
    // recomputing only H W (and reusing HX / HP).
    const bool have_p = p.cols() == nb;
    const std::size_t ns = nb * (have_p ? 3 : 2);
    CMatrix& s = ws.cmat(exec::Slot::lob_s, n, ns);
    CMatrix& hs = ws.cmat(exec::Slot::lob_hs, n, ns);
    // Column copies are independent: run them band-parallel on the engine.
    auto put = [&](std::size_t col0, const CMatrix& src, CMatrix& dst) {
      exec::parallel_for(src.cols(), [&](std::size_t jb, std::size_t je) {
        for (std::size_t j = jb; j < je; ++j) std::copy_n(src.col(j), n, dst.col(col0 + j));
      });
    };
    put(0, x, s);
    put(nb, w, s);
    if (have_p) put(2 * nb, p, s);

    CMatrix g = linalg::overlap(s, s);
    bool ok = true;
    try {
      linalg::potrf_lower(g);
    } catch (const Error&) {
      ok = false;
    }
    if (!ok) {
      // Drop P and retry; if that still fails the block has converged to
      // numerical rank deficiency and we stop.
      if (!have_p) break;
      s.reshape(n, 2 * nb);
      put(0, x, s);
      put(nb, w, s);
      g = linalg::overlap(s, s);
      try {
        linalg::potrf_lower(g);
      } catch (const Error&) {
        break;
      }
    }
    linalg::trsm_right_lower_conj(s, g);

    CMatrix& hw = ws.cmat(exec::Slot::lob_hw, n, nb);
    apply_h(w, hw);
    hs.reshape(n, s.cols());
    put(0, hx, hs);
    put(nb, hw, hs);
    if (s.cols() == 3 * nb) put(2 * nb, hp, hs);
    linalg::trsm_right_lower_conj(hs, g);

    // Rayleigh-Ritz on the subspace.
    CMatrix shs = linalg::overlap(s, hs);
    std::vector<double> evals;
    CMatrix c;
    linalg::heig(shs, evals, c);

    CMatrix c_min(s.cols(), nb);
    for (std::size_t j = 0; j < nb; ++j)
      for (std::size_t i = 0; i < s.cols(); ++i) c_min(i, j) = c(i, j);

    CMatrix& x_new = ws.cmat(exec::Slot::lob_xnew, n, nb);
    CMatrix& hx_new = ws.cmat(exec::Slot::lob_hxnew, n, nb);
    linalg::gemm('N', 'N', Complex{1.0, 0.0}, s, c_min, Complex{0.0, 0.0}, x_new);
    linalg::gemm('N', 'N', Complex{1.0, 0.0}, hs, c_min, Complex{0.0, 0.0}, hx_new);

    // Conjugate direction: the W/P part of the Ritz combination.
    CMatrix c_tail = c_min;
    for (std::size_t j = 0; j < nb; ++j)
      for (std::size_t i = 0; i < nb; ++i) c_tail(i, j) = Complex{0.0, 0.0};
    p.resize(n, nb);
    hp.resize(n, nb);
    linalg::gemm('N', 'N', Complex{1.0, 0.0}, s, c_tail, Complex{0.0, 0.0}, p);
    linalg::gemm('N', 'N', Complex{1.0, 0.0}, hs, c_tail, Complex{0.0, 0.0}, hp);

    // x_new/hx_new live in the arena: copy out instead of moving so the
    // arena keeps its capacity for the next iteration.
    std::copy_n(x_new.data(), x_new.size(), x.data());
    std::copy_n(hx_new.data(), hx_new.size(), hx.data());
  }

  // Final Ritz values.
  CMatrix xhx = linalg::overlap(x, hx);
  res.eigenvalues.resize(nb);
  for (std::size_t j = 0; j < nb; ++j) res.eigenvalues[j] = xhx(j, j).real();
  return res;
}

}  // namespace pwdft::scf
