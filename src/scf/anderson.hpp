#pragma once

/// \file anderson.hpp
/// Anderson mixing (Anderson 1965, paper ref [2]) for nonlinear fixed-point
/// problems x = g(x), driven by residuals f = g(x) - x.
///
/// Used in two places, as in the paper:
///  - ground-state SCF: mixing the (real) electron density;
///  - PT-CN: mixing each wavefunction band (complex, history depth <= 20,
///    one small least-squares problem per band, §3.4).
///
/// Given histories {x_k} and {f_k}, the update solves
///   min_gamma || f_m - dF gamma ||^2      (Tikhonov-regularized)
///   x_{m+1} = (x_m - dX gamma) + beta (f_m - dF gamma)
/// where dX, dF hold the last `depth` difference columns.

#include <span>
#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace pwdft::scf {

class AndersonMixer {
 public:
  /// n: vector length; depth: max history (paper uses 20); beta: simple
  /// mixing fraction applied to the residual.
  AndersonMixer(std::size_t n, std::size_t depth, double beta, double regularization = 1e-12);

  /// Computes the next iterate from (x, f = g(x) - x) into `out`
  /// (out may alias x). Updates the internal history. Allocation-free after
  /// warm-up: the Gram system is built directly on the ring-buffer columns
  /// in the executing thread's workspace arena, so the band-parallel PT-CN
  /// mixing loop never touches the heap (tests/test_alloc_free.cpp).
  void mix(std::span<const Complex> x, std::span<const Complex> f, std::span<Complex> out);

  /// Convenience for real vectors (density mixing).
  void mix_real(std::span<const double> x, std::span<const double> f, std::span<double> out);

  void reset();
  std::size_t history_size() const { return n_hist_; }
  std::size_t depth() const { return depth_; }

 private:
  std::size_t n_;
  std::size_t depth_;
  double beta_;
  double reg_;
  std::vector<Complex> prev_x_, prev_f_;
  CMatrix dx_, df_;  ///< difference histories (ring buffer of columns)
  std::size_t n_hist_ = 0;
  std::size_t next_col_ = 0;
  bool have_prev_ = false;
};

}  // namespace pwdft::scf
