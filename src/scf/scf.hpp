#pragma once

/// \file scf.hpp
/// Ground-state SCF driver: LDA phase (density-mixed SCF with LOBPCG inner
/// solves) followed by a hybrid outer loop that freezes the Fock operator
/// per outer iteration (the standard nested structure for hybrid DFT).
/// Deterministic given the seed, which lets distributed drivers reproduce
/// the same ground state on every rank without communication.

#include <cstdint>
#include <span>

#include "ham/energy.hpp"
#include "ham/hamiltonian.hpp"
#include "scf/lobpcg.hpp"

namespace pwdft::scf {

struct ScfOptions {
  int max_iter = 60;
  double tol_rho = 1e-8;        ///< density error per electron
  double mix_beta = 0.5;
  std::size_t anderson_depth = 8;
  LobpcgOptions lobpcg{.max_iter = 8, .tol = 1e-8, .verbose = false};
  int hybrid_outer_max = 10;
  double hybrid_outer_tol = 1e-7;  ///< on the total energy change (Ha)
  bool verbose = false;
};

struct ScfResult {
  ham::EnergyBreakdown energy;
  std::vector<double> eigenvalues;
  int scf_iterations = 0;
  int outer_iterations = 0;
  double rho_error = 0.0;
  bool converged = false;
};

class GroundStateSolver {
 public:
  /// Serial solver (one rank); distributed runs replicate it per rank.
  GroundStateSolver(const ham::PlanewaveSetup& setup, ham::Hamiltonian& hamiltonian);

  /// Randomized, cutoff-damped, orthonormal initial orbitals.
  CMatrix initial_guess(std::size_t nbands, std::uint64_t seed = 42) const;

  /// Runs LDA SCF, then (if the Hamiltonian has hybrid enabled) the hybrid
  /// outer loop. psi enters as the initial guess and exits converged.
  ScfResult solve(CMatrix& psi, std::span<const double> occ, const ScfOptions& opt);

 private:
  /// One SCF phase with the current exchange operator held fixed.
  ScfResult scf_phase(CMatrix& psi, std::span<const double> occ, const ScfOptions& opt,
                      int max_iter);

  const ham::PlanewaveSetup& setup_;
  ham::Hamiltonian& ham_;
};

}  // namespace pwdft::scf
