#pragma once

/// \file lobpcg.hpp
/// Locally optimal block preconditioned conjugate gradient eigensolver with
/// the Teter-Payne-Allan planewave preconditioner. Used to compute the
/// hybrid-DFT ground state that seeds every rt-TDDFT run (the paper starts
/// its dynamics from a converged hybrid ground state).

#include <functional>
#include <vector>

#include "linalg/matrix.hpp"

namespace pwdft::scf {

/// Applies the (Hermitian) operator: y = H x, shapes (n x m) -> (n x m).
using ApplyFn = std::function<void(const CMatrix&, CMatrix&)>;

struct LobpcgOptions {
  int max_iter = 50;
  double tol = 1e-7;  ///< on ||H x - theta x|| / max(1, |theta|)
  bool verbose = false;
};

struct LobpcgResult {
  std::vector<double> eigenvalues;
  int iterations = 0;
  double max_residual = 0.0;
  bool converged = false;
};

/// Minimizes the Rayleigh quotient over blocks of x.cols() vectors.
/// `precond_kin` holds the per-row kinetic energies used by the Teter
/// preconditioner (empty disables preconditioning). x must enter with full
/// column rank; it exits with orthonormal Ritz vectors.
LobpcgResult lobpcg(const ApplyFn& apply_h, const std::vector<double>& precond_kin, CMatrix& x,
                    const LobpcgOptions& opt);

}  // namespace pwdft::scf
