#pragma once

/// \file checkpoint.hpp
/// Binary checkpointing of wavefunctions and densities so long rt-TDDFT
/// trajectories (the paper's production runs are 600 steps / 30 fs) can be
/// split across job allocations. Format: a fixed header with problem
/// metadata that is validated on load, followed by raw little-endian
/// doubles.

#include <string>
#include <vector>

#include "ham/setup.hpp"
#include "linalg/matrix.hpp"

namespace pwdft::io {

struct CheckpointMeta {
  std::uint64_t n_g = 0;
  std::uint64_t n_bands = 0;
  std::uint64_t n_dense = 0;
  double ecut = 0.0;
  double time_au = 0.0;  ///< simulation time of the snapshot
  std::uint64_t step = 0;

  static CheckpointMeta from_setup(const ham::PlanewaveSetup& setup, std::size_t n_bands,
                                   double time_au, std::uint64_t step);
};

/// Writes wavefunctions (sphere coefficients, full band set) + metadata.
void save_wavefunctions(const std::string& path, const CheckpointMeta& meta,
                        const CMatrix& psi);

/// Reads a checkpoint; throws pwdft::Error on a malformed file. When
/// `expected` is non-null its n_g/n_bands/ecut must match (restart safety).
CheckpointMeta load_wavefunctions(const std::string& path, CMatrix& psi,
                                  const CheckpointMeta* expected = nullptr);

/// Dense-grid density snapshots.
void save_density(const std::string& path, const CheckpointMeta& meta,
                  const std::vector<double>& rho);
CheckpointMeta load_density(const std::string& path, std::vector<double>& rho,
                            const CheckpointMeta* expected = nullptr);

}  // namespace pwdft::io
