#pragma once

/// \file checkpoint.hpp
/// Crash-safe binary checkpointing of wavefunctions, densities, and generic
/// double blobs so long rt-TDDFT trajectories (the paper's production runs
/// are 600 steps / 30 fs) can be split across job allocations and survive
/// preemption (serve::JobEngine checkpoints every running job through this
/// layer).
///
/// Durability contract:
///   - Saves are atomic: the payload is written to `<path>.tmp`, flushed,
///     and renamed into place, so a crash mid-write can never destroy the
///     previous good snapshot or leave a torn file at the final path.
///   - Format v2: an 8-byte magic whose last byte is the format version,
///     the CheckpointMeta serialized field-by-field (fixed-width
///     little-endian, no raw struct dumps), the payload, and a trailing
///     FNV-1a-64 checksum over header + payload, validated on load.
///   - Loads reject short files, checksum mismatches, and trailing bytes
///     after the checksum (garbage appended to a snapshot used to load
///     silently); v1 files (raw-struct header, no checksum) are still read
///     for backward compatibility, and any other version fails with a clear
///     message.

#include <cstdint>
#include <string>
#include <vector>

#include "ham/setup.hpp"
#include "linalg/matrix.hpp"

namespace pwdft::io {

struct CheckpointMeta {
  std::uint64_t n_g = 0;
  std::uint64_t n_bands = 0;
  std::uint64_t n_dense = 0;
  double ecut = 0.0;
  double time_au = 0.0;  ///< simulation time of the snapshot
  std::uint64_t step = 0;

  static CheckpointMeta from_setup(const ham::PlanewaveSetup& setup, std::size_t n_bands,
                                   double time_au, std::uint64_t step);
};

/// Writes wavefunctions (sphere coefficients, full band set) + metadata.
/// Atomic: `<path>.tmp` + rename (see the durability contract above).
void save_wavefunctions(const std::string& path, const CheckpointMeta& meta,
                        const CMatrix& psi);

/// Reads a checkpoint; throws pwdft::Error on a malformed file (bad magic,
/// unsupported version, short read, checksum mismatch, trailing bytes).
/// When `expected` is non-null its n_g/n_bands/ecut must match (restart
/// safety).
CheckpointMeta load_wavefunctions(const std::string& path, CMatrix& psi,
                                  const CheckpointMeta* expected = nullptr);

/// Dense-grid density snapshots. Same durability contract.
void save_density(const std::string& path, const CheckpointMeta& meta,
                  const std::vector<double>& rho);
CheckpointMeta load_density(const std::string& path, std::vector<double>& rho,
                            const CheckpointMeta* expected = nullptr);

/// Generic double-vector snapshot in the same v2 envelope (own magic, own
/// element count — the meta shape fields describe the *run*, not the blob).
/// serve::JobEngine persists flattened trajectory traces through this.
void save_blob(const std::string& path, const CheckpointMeta& meta,
               const std::vector<double>& data);
CheckpointMeta load_blob(const std::string& path, std::vector<double>& data);

}  // namespace pwdft::io
