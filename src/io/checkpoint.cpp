#include "io/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/check.hpp"

namespace pwdft::io {

namespace {

// Bulk payloads (Complex / double arrays) are written with raw f.write on the
// in-memory representation; the on-disk format is defined little-endian.
static_assert(std::endian::native == std::endian::little,
              "checkpoint format is little-endian; big-endian hosts need byte swaps");
static_assert(sizeof(double) == 8 && sizeof(Complex) == 16);

// Magic layout: "PWDFT" + two-char family + ASCII version digit.
constexpr char kFamilyPsi[2] = {'P', 'S'};
constexpr char kFamilyRho[2] = {'R', 'H'};
constexpr char kFamilyBlob[2] = {'B', 'L'};

constexpr std::uint64_t kHeaderBytesV2 = 8 + 6 * 8;  // magic + six meta fields
constexpr std::uint64_t kFooterBytes = 8;            // FNV-1a-64 checksum

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void update(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
};

void pack_u64(std::uint64_t v, unsigned char out[8]) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
}

std::uint64_t unpack_u64(const unsigned char in[8]) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

/// Atomic checkpoint writer: streams into `<path>.tmp`, hashing every byte,
/// then appends the checksum footer, flushes, and renames into place. A crash
/// anywhere before the rename leaves the previous snapshot untouched.
class Writer {
 public:
  explicit Writer(const std::string& path)
      : final_path_(path),
        tmp_path_(path + ".tmp"),
        f_(tmp_path_, std::ios::binary | std::ios::trunc) {
    PWDFT_CHECK(f_.good(), "checkpoint: cannot open " << tmp_path_ << " for writing");
  }

  void bytes(const void* p, std::size_t n) {
    f_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    hash_.update(p, n);
  }

  void u64(std::uint64_t v) {
    unsigned char b[8];
    pack_u64(v, b);
    bytes(b, 8);
  }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void commit() {
    unsigned char b[8];
    pack_u64(hash_.h, b);  // footer is not part of its own hash
    f_.write(reinterpret_cast<const char*>(b), 8);
    f_.flush();
    PWDFT_CHECK(f_.good(), "checkpoint: short write to " << tmp_path_);
    f_.close();
    PWDFT_CHECK(!f_.fail(), "checkpoint: failed to close " << tmp_path_);
    PWDFT_CHECK(std::rename(tmp_path_.c_str(), final_path_.c_str()) == 0,
                "checkpoint: cannot rename " << tmp_path_ << " to " << final_path_);
  }

 private:
  std::string final_path_;
  std::string tmp_path_;
  std::ofstream f_;
  Fnv1a hash_;
};

/// Checkpoint reader: hashes every byte it hands out so finish() can compare
/// against the stored footer, and knows the file size up front so payload
/// lengths are validated *before* any allocation (a bit-flipped band count
/// must produce a clear error, not a 2^60-byte resize).
class Reader {
 public:
  explicit Reader(const std::string& path) : path_(path), f_(path, std::ios::binary) {
    PWDFT_CHECK(f_.good(), "checkpoint: cannot open " << path);
    f_.seekg(0, std::ios::end);
    size_ = static_cast<std::uint64_t>(f_.tellg());
    f_.seekg(0, std::ios::beg);
  }

  const std::string& path() const { return path_; }
  std::uint64_t file_size() const { return size_; }

  void bytes(void* p, std::size_t n, const char* what) {
    f_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    PWDFT_CHECK(f_.gcount() == static_cast<std::streamsize>(n) && !f_.bad(),
                "checkpoint: truncated " << what << " in " << path_);
    hash_.update(p, n);
  }

  std::uint64_t u64(const char* what) {
    unsigned char b[8];
    bytes(b, 8, what);
    return unpack_u64(b);
  }

  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }

  /// v2 epilogue: exactly one checksum footer, matching the hash of
  /// everything before it, and then EOF.
  void finish() {
    const std::uint64_t computed = hash_.h;
    unsigned char b[8];
    f_.read(reinterpret_cast<char*>(b), 8);
    PWDFT_CHECK(f_.gcount() == 8 && !f_.bad(), "checkpoint: truncated checksum in " << path_);
    PWDFT_CHECK(unpack_u64(b) == computed,
                "checkpoint: checksum mismatch in " << path_ << " (file is corrupt)");
    f_.peek();
    PWDFT_CHECK(f_.eof(), "checkpoint: trailing bytes after checksum in " << path_);
  }

 private:
  std::string path_;
  std::ifstream f_;
  std::uint64_t size_ = 0;
  Fnv1a hash_;
};

/// Validates magic + family and returns the format version (1 or 2).
int read_magic(Reader& r, const char family[2]) {
  char got[8];
  r.bytes(got, 8, "magic");
  PWDFT_CHECK(std::memcmp(got, "PWDFT", 5) == 0 && got[5] == family[0] && got[6] == family[1],
              "checkpoint: bad magic in " << r.path() << " (not a PWDFT" << family[0]
                                          << family[1] << " snapshot)");
  const char ver = got[7];
  PWDFT_CHECK(ver == '1' || ver == '2', "checkpoint: unsupported format version '"
                                            << ver << "' in " << r.path()
                                            << " (this build reads v1 and v2)");
  return ver - '0';
}

void write_meta_v2(Writer& w, const char family[2], const CheckpointMeta& m) {
  const char magic[8] = {'P', 'W', 'D', 'F', 'T', family[0], family[1], '2'};
  w.bytes(magic, 8);
  w.u64(m.n_g);
  w.u64(m.n_bands);
  w.u64(m.n_dense);
  w.f64(m.ecut);
  w.f64(m.time_au);
  w.u64(m.step);
}

CheckpointMeta read_meta_v2(Reader& r) {
  CheckpointMeta m;
  m.n_g = r.u64("header");
  m.n_bands = r.u64("header");
  m.n_dense = r.u64("header");
  m.ecut = r.f64("header");
  m.time_au = r.f64("header");
  m.step = r.u64("header");
  return m;
}

// Legacy v1 header: the struct was dumped raw (48 bytes, no padding on the
// platforms that wrote it, no checksum). Kept read-only for old snapshots.
CheckpointMeta read_meta_v1(Reader& r) {
  static_assert(sizeof(CheckpointMeta) == 48, "v1 compatibility relies on this layout");
  CheckpointMeta m;
  r.bytes(&m, sizeof(m), "header");
  return m;
}

/// v2 files have an exact size: header (+ any extra fields) + payload +
/// footer. Checked before allocating the payload buffer; distinguishes
/// truncation from appended garbage in the error.
void check_exact_size_v2(const Reader& r, std::uint64_t extra_header_bytes,
                         std::uint64_t payload_bytes) {
  const std::uint64_t want = kHeaderBytesV2 + extra_header_bytes + payload_bytes + kFooterBytes;
  PWDFT_CHECK(r.file_size() >= want, "checkpoint: truncated payload in "
                                         << r.path() << " (" << r.file_size() << " bytes, want "
                                         << want << ")");
  PWDFT_CHECK(r.file_size() == want, "checkpoint: trailing bytes in "
                                         << r.path() << " (" << r.file_size() << " bytes, want "
                                         << want << ")");
}

void check_compatible(const CheckpointMeta& got, const CheckpointMeta* expected) {
  if (!expected) return;
  PWDFT_CHECK(got.n_g == expected->n_g, "checkpoint: planewave count mismatch (file "
                                            << got.n_g << ", run " << expected->n_g << ")");
  PWDFT_CHECK(got.n_bands == expected->n_bands, "checkpoint: band count mismatch");
  PWDFT_CHECK(std::abs(got.ecut - expected->ecut) < 1e-12, "checkpoint: cutoff mismatch");
}

}  // namespace

CheckpointMeta CheckpointMeta::from_setup(const ham::PlanewaveSetup& setup,
                                          std::size_t n_bands, double time_au,
                                          std::uint64_t step) {
  CheckpointMeta m;
  m.n_g = setup.n_g();
  m.n_bands = n_bands;
  m.n_dense = setup.n_dense();
  m.ecut = setup.ecut;
  m.time_au = time_au;
  m.step = step;
  return m;
}

void save_wavefunctions(const std::string& path, const CheckpointMeta& meta,
                        const CMatrix& psi) {
  PWDFT_CHECK(psi.rows() == meta.n_g && psi.cols() == meta.n_bands,
              "checkpoint: wavefunction shape does not match metadata");
  Writer w(path);
  write_meta_v2(w, kFamilyPsi, meta);
  w.bytes(psi.data(), psi.size() * sizeof(Complex));
  w.commit();
}

CheckpointMeta load_wavefunctions(const std::string& path, CMatrix& psi,
                                  const CheckpointMeta* expected) {
  Reader r(path);
  const int ver = read_magic(r, kFamilyPsi);
  const CheckpointMeta m = ver == 2 ? read_meta_v2(r) : read_meta_v1(r);
  check_compatible(m, expected);
  const std::uint64_t payload = m.n_g * m.n_bands * sizeof(Complex);
  if (ver == 2) check_exact_size_v2(r, 0, payload);
  psi.resize(m.n_g, m.n_bands);
  r.bytes(psi.data(), payload, "payload");
  if (ver == 2) r.finish();
  return m;
}

void save_density(const std::string& path, const CheckpointMeta& meta,
                  const std::vector<double>& rho) {
  PWDFT_CHECK(rho.size() == meta.n_dense, "checkpoint: density size does not match metadata");
  Writer w(path);
  write_meta_v2(w, kFamilyRho, meta);
  w.bytes(rho.data(), rho.size() * sizeof(double));
  w.commit();
}

CheckpointMeta load_density(const std::string& path, std::vector<double>& rho,
                            const CheckpointMeta* expected) {
  Reader r(path);
  const int ver = read_magic(r, kFamilyRho);
  const CheckpointMeta m = ver == 2 ? read_meta_v2(r) : read_meta_v1(r);
  if (expected) {
    PWDFT_CHECK(m.n_dense == expected->n_dense, "checkpoint: dense-grid size mismatch");
  }
  const std::uint64_t payload = m.n_dense * sizeof(double);
  if (ver == 2) check_exact_size_v2(r, 0, payload);
  rho.resize(m.n_dense);
  r.bytes(rho.data(), payload, "payload");
  if (ver == 2) r.finish();
  return m;
}

void save_blob(const std::string& path, const CheckpointMeta& meta,
               const std::vector<double>& data) {
  Writer w(path);
  write_meta_v2(w, kFamilyBlob, meta);
  w.u64(data.size());
  w.bytes(data.data(), data.size() * sizeof(double));
  w.commit();
}

CheckpointMeta load_blob(const std::string& path, std::vector<double>& data) {
  Reader r(path);
  const int ver = read_magic(r, kFamilyBlob);
  PWDFT_CHECK(ver == 2, "checkpoint: blob snapshots have no v1 format (" << path << ")");
  const CheckpointMeta m = read_meta_v2(r);
  const std::uint64_t count = r.u64("blob count");
  check_exact_size_v2(r, 8, count * sizeof(double));
  data.resize(count);
  r.bytes(data.data(), count * sizeof(double), "payload");
  r.finish();
  return m;
}

}  // namespace pwdft::io
