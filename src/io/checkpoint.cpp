#include "io/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "common/check.hpp"

namespace pwdft::io {

namespace {

constexpr char kMagicPsi[8] = {'P', 'W', 'D', 'F', 'T', 'P', 'S', '1'};
constexpr char kMagicRho[8] = {'P', 'W', 'D', 'F', 'T', 'R', 'H', '1'};

void write_meta(std::ofstream& f, const char magic[8], const CheckpointMeta& m) {
  f.write(magic, 8);
  f.write(reinterpret_cast<const char*>(&m), sizeof(m));
}

CheckpointMeta read_meta(std::ifstream& f, const char magic[8], const std::string& path) {
  char got[8];
  f.read(got, 8);
  PWDFT_CHECK(f.good() && std::memcmp(got, magic, 8) == 0,
              "checkpoint: bad magic in " << path);
  CheckpointMeta m;
  f.read(reinterpret_cast<char*>(&m), sizeof(m));
  PWDFT_CHECK(f.good(), "checkpoint: truncated header in " << path);
  return m;
}

void check_compatible(const CheckpointMeta& got, const CheckpointMeta* expected) {
  if (!expected) return;
  PWDFT_CHECK(got.n_g == expected->n_g, "checkpoint: planewave count mismatch (file "
                                            << got.n_g << ", run " << expected->n_g << ")");
  PWDFT_CHECK(got.n_bands == expected->n_bands, "checkpoint: band count mismatch");
  PWDFT_CHECK(std::abs(got.ecut - expected->ecut) < 1e-12, "checkpoint: cutoff mismatch");
}

}  // namespace

CheckpointMeta CheckpointMeta::from_setup(const ham::PlanewaveSetup& setup,
                                          std::size_t n_bands, double time_au,
                                          std::uint64_t step) {
  CheckpointMeta m;
  m.n_g = setup.n_g();
  m.n_bands = n_bands;
  m.n_dense = setup.n_dense();
  m.ecut = setup.ecut;
  m.time_au = time_au;
  m.step = step;
  return m;
}

void save_wavefunctions(const std::string& path, const CheckpointMeta& meta,
                        const CMatrix& psi) {
  PWDFT_CHECK(psi.rows() == meta.n_g && psi.cols() == meta.n_bands,
              "checkpoint: wavefunction shape does not match metadata");
  std::ofstream f(path, std::ios::binary);
  PWDFT_CHECK(f.good(), "checkpoint: cannot open " << path << " for writing");
  write_meta(f, kMagicPsi, meta);
  f.write(reinterpret_cast<const char*>(psi.data()),
          static_cast<std::streamsize>(psi.size() * sizeof(Complex)));
  PWDFT_CHECK(f.good(), "checkpoint: short write to " << path);
}

CheckpointMeta load_wavefunctions(const std::string& path, CMatrix& psi,
                                  const CheckpointMeta* expected) {
  std::ifstream f(path, std::ios::binary);
  PWDFT_CHECK(f.good(), "checkpoint: cannot open " << path);
  const CheckpointMeta m = read_meta(f, kMagicPsi, path);
  check_compatible(m, expected);
  psi.resize(m.n_g, m.n_bands);
  f.read(reinterpret_cast<char*>(psi.data()),
         static_cast<std::streamsize>(psi.size() * sizeof(Complex)));
  PWDFT_CHECK(f.good(), "checkpoint: truncated payload in " << path);
  return m;
}

void save_density(const std::string& path, const CheckpointMeta& meta,
                  const std::vector<double>& rho) {
  PWDFT_CHECK(rho.size() == meta.n_dense, "checkpoint: density size does not match metadata");
  std::ofstream f(path, std::ios::binary);
  PWDFT_CHECK(f.good(), "checkpoint: cannot open " << path << " for writing");
  write_meta(f, kMagicRho, meta);
  f.write(reinterpret_cast<const char*>(rho.data()),
          static_cast<std::streamsize>(rho.size() * sizeof(double)));
  PWDFT_CHECK(f.good(), "checkpoint: short write to " << path);
}

CheckpointMeta load_density(const std::string& path, std::vector<double>& rho,
                            const CheckpointMeta* expected) {
  std::ifstream f(path, std::ios::binary);
  PWDFT_CHECK(f.good(), "checkpoint: cannot open " << path);
  const CheckpointMeta m = read_meta(f, kMagicRho, path);
  if (expected) {
    PWDFT_CHECK(m.n_dense == expected->n_dense, "checkpoint: dense-grid size mismatch");
  }
  rho.resize(m.n_dense);
  f.read(reinterpret_cast<char*>(rho.data()),
         static_cast<std::streamsize>(rho.size() * sizeof(double)));
  PWDFT_CHECK(f.good(), "checkpoint: truncated payload in " << path);
  return m;
}

}  // namespace pwdft::io
