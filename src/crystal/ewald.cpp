#include "crystal/ewald.hpp"

#include <cmath>
#include <complex>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace pwdft::crystal {

double ewald_energy(const Crystal& crystal, const EwaldOptions& opt) {
  const auto& lat = crystal.lattice();
  const double vol = lat.volume();
  const std::size_t na = crystal.n_atoms();

  std::vector<double> z(na);
  std::vector<grid::Vec3> pos(na);
  double ztot = 0.0, z2tot = 0.0;
  for (std::size_t i = 0; i < na; ++i) {
    z[i] = crystal.species()[static_cast<std::size_t>(crystal.atoms()[i].species)].zval;
    pos[i] = crystal.position(i);
    ztot += z[i];
    z2tot += z[i] * z[i];
  }

  // Automatic splitting: balances real and reciprocal sum work.
  double eta = opt.eta;
  if (eta <= 0.0) {
    eta = constants::pi * std::pow(static_cast<double>(na) / (vol * vol), 1.0 / 3.0);
    eta = std::max(eta, 0.05);
  }
  const double sqrt_eta = std::sqrt(eta);

  // Cutoffs from the asymptotics erfc(x) ~ e^{-x^2}: keep terms above tol.
  const double tol = opt.tolerance;
  const double rcut = std::sqrt(std::max(1.0, -std::log(tol))) / sqrt_eta * 1.2;
  const double gcut = 2.0 * sqrt_eta * std::sqrt(std::max(1.0, -std::log(tol))) * 1.2;

  // Real-space sum over periodic images within rcut.
  const auto& a = lat.vectors();
  auto len = [](const grid::Vec3& v) { return std::sqrt(grid::norm2(v)); };
  const int nr0 = static_cast<int>(std::ceil(rcut / len(a[0]))) + 1;
  const int nr1 = static_cast<int>(std::ceil(rcut / len(a[1]))) + 1;
  const int nr2 = static_cast<int>(std::ceil(rcut / len(a[2]))) + 1;

  double e_real = 0.0;
  for (std::size_t i = 0; i < na; ++i) {
    for (std::size_t j = 0; j < na; ++j) {
      const grid::Vec3 dij = grid::sub(pos[i], pos[j]);
      for (int c0 = -nr0; c0 <= nr0; ++c0) {
        for (int c1 = -nr1; c1 <= nr1; ++c1) {
          for (int c2 = -nr2; c2 <= nr2; ++c2) {
            if (i == j && c0 == 0 && c1 == 0 && c2 == 0) continue;
            const grid::Vec3 rvec = grid::add(
                dij, grid::add(grid::add(grid::scale(a[0], c0), grid::scale(a[1], c1)),
                               grid::scale(a[2], c2)));
            const double r = len(rvec);
            if (r > rcut) continue;
            e_real += 0.5 * z[i] * z[j] * std::erfc(sqrt_eta * r) / r;
          }
        }
      }
    }
  }

  // Reciprocal-space sum over G != 0 within gcut.
  const auto& b = lat.recip();
  const int ng0 = static_cast<int>(std::ceil(gcut / len(b[0]))) + 1;
  const int ng1 = static_cast<int>(std::ceil(gcut / len(b[1]))) + 1;
  const int ng2 = static_cast<int>(std::ceil(gcut / len(b[2]))) + 1;

  double e_recip = 0.0;
  for (int n0 = -ng0; n0 <= ng0; ++n0) {
    for (int n1 = -ng1; n1 <= ng1; ++n1) {
      for (int n2 = -ng2; n2 <= ng2; ++n2) {
        if (n0 == 0 && n1 == 0 && n2 == 0) continue;
        const grid::Vec3 g = lat.gvector(n0, n1, n2);
        const double g2 = grid::norm2(g);
        if (g2 > gcut * gcut) continue;
        Complex s{0.0, 0.0};
        for (std::size_t i = 0; i < na; ++i) {
          const double phase = grid::dot(g, pos[i]);
          s += z[i] * Complex{std::cos(phase), std::sin(phase)};
        }
        e_recip += constants::two_pi / vol * std::exp(-g2 / (4.0 * eta)) / g2 * std::norm(s);
      }
    }
  }

  const double e_self = -sqrt_eta / std::sqrt(constants::pi) * z2tot;
  const double e_background = -constants::pi / (2.0 * vol * eta) * ztot * ztot;

  return e_real + e_recip + e_self + e_background;
}

}  // namespace pwdft::crystal
