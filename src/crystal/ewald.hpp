#pragma once

/// \file ewald.hpp
/// Ewald summation for the ion-ion interaction energy of point charges in a
/// periodic cell with a neutralizing background (the standard planewave-DFT
/// convention; pairs with the removed G=0 components of V_loc and V_H).

#include "crystal/crystal.hpp"

namespace pwdft::crystal {

struct EwaldOptions {
  /// Splitting parameter eta (Bohr^-2); <= 0 selects automatically.
  double eta = -1.0;
  /// Relative accuracy target controlling real/reciprocal cutoffs.
  double tolerance = 1e-10;
};

/// Total ion-ion energy (Hartree) including self-energy and background terms.
double ewald_energy(const Crystal& crystal, const EwaldOptions& opt = {});

}  // namespace pwdft::crystal
