#include "crystal/crystal.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/types.hpp"

namespace pwdft::crystal {

Crystal::Crystal(grid::Lattice lattice, std::vector<SpeciesInfo> species, std::vector<Atom> atoms)
    : lattice_(lattice), species_(std::move(species)), atoms_(std::move(atoms)) {
  for (const auto& at : atoms_) {
    PWDFT_CHECK(at.species >= 0 && static_cast<std::size_t>(at.species) < species_.size(),
                "Crystal: atom references unknown species");
  }
}

Crystal Crystal::silicon_supercell(int nx, int ny, int nz) {
  PWDFT_CHECK(nx >= 1 && ny >= 1 && nz >= 1, "silicon_supercell: bad cell counts");
  const double a = 5.43 * constants::bohr_per_angstrom;  // 10.2612 Bohr
  auto lattice = grid::Lattice::orthorhombic(a * nx, a * ny, a * nz);

  // Diamond structure: fcc sites + basis offset (1/4,1/4,1/4).
  static const grid::Vec3 base[8] = {
      {0.00, 0.00, 0.00}, {0.00, 0.50, 0.50}, {0.50, 0.00, 0.50}, {0.50, 0.50, 0.00},
      {0.25, 0.25, 0.25}, {0.25, 0.75, 0.75}, {0.75, 0.25, 0.75}, {0.75, 0.75, 0.25}};

  std::vector<Atom> atoms;
  atoms.reserve(static_cast<std::size_t>(8 * nx * ny * nz));
  for (int cz = 0; cz < nz; ++cz) {
    for (int cy = 0; cy < ny; ++cy) {
      for (int cx = 0; cx < nx; ++cx) {
        for (const auto& b : base) {
          atoms.push_back(Atom{0,
                               {(b[0] + cx) / nx, (b[1] + cy) / ny, (b[2] + cz) / nz}});
        }
      }
    }
  }
  return Crystal(lattice, {SpeciesInfo{"Si", 4.0}}, std::move(atoms));
}

double Crystal::n_electrons() const {
  double n = 0.0;
  for (const auto& at : atoms_) n += species_[static_cast<std::size_t>(at.species)].zval;
  return n;
}

std::size_t Crystal::n_occupied_bands() const {
  const double ne = n_electrons();
  const auto nb = static_cast<std::size_t>(std::llround(ne / 2.0));
  PWDFT_CHECK(std::abs(ne - 2.0 * static_cast<double>(nb)) < 1e-9,
              "Crystal: odd electron count; closed-shell occupations required");
  return nb;
}

grid::Vec3 Crystal::position(std::size_t a) const {
  PWDFT_CHECK(a < atoms_.size(), "Crystal: atom index out of range");
  return lattice_.cartesian(atoms_[a].frac);
}

Crystal Crystal::translated(const grid::Vec3& frac_shift) const {
  std::vector<Atom> atoms = atoms_;
  for (auto& at : atoms) {
    for (int d = 0; d < 3; ++d) {
      double f = at.frac[static_cast<std::size_t>(d)] + frac_shift[static_cast<std::size_t>(d)];
      f -= std::floor(f);
      at.frac[static_cast<std::size_t>(d)] = f;
    }
  }
  return Crystal(lattice_, species_, std::move(atoms));
}

}  // namespace pwdft::crystal
