#pragma once

/// \file crystal.hpp
/// Atomic structure: species, atoms, and the silicon supercell builders used
/// throughout the paper's evaluation (8-atom simple-cubic diamond cells,
/// a = 5.43 A, supercells 1x1x3 ... 4x6x8 => 48 ... 1536 atoms).

#include <string>
#include <vector>

#include "grid/lattice.hpp"

namespace pwdft::crystal {

struct SpeciesInfo {
  std::string symbol;
  double zval = 0.0;  ///< valence charge (electrons contributed per atom)
};

struct Atom {
  int species = 0;          ///< index into Crystal::species()
  grid::Vec3 frac{};        ///< fractional coordinates in [0,1)
};

class Crystal {
 public:
  Crystal(grid::Lattice lattice, std::vector<SpeciesInfo> species, std::vector<Atom> atoms);

  /// Diamond-structure silicon supercell of nx x ny x nz conventional cubic
  /// cells (8 atoms each), lattice constant 5.43 A (paper §4).
  static Crystal silicon_supercell(int nx, int ny, int nz);

  const grid::Lattice& lattice() const { return lattice_; }
  const std::vector<SpeciesInfo>& species() const { return species_; }
  const std::vector<Atom>& atoms() const { return atoms_; }

  std::size_t n_atoms() const { return atoms_.size(); }
  /// Total valence electron count.
  double n_electrons() const;
  /// Number of doubly-occupied bands = n_electrons / 2 (closed shell).
  std::size_t n_occupied_bands() const;

  /// Cartesian position of atom a (Bohr).
  grid::Vec3 position(std::size_t a) const;

  /// Returns a copy with every atom displaced by `shift` (fractional);
  /// used by translation-invariance tests.
  Crystal translated(const grid::Vec3& frac_shift) const;

 private:
  grid::Lattice lattice_;
  std::vector<SpeciesInfo> species_;
  std::vector<Atom> atoms_;
};

}  // namespace pwdft::crystal
