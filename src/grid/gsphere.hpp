#pragma once

/// \file gsphere.hpp
/// The planewave basis sphere: all G with |G|^2/2 <= Ecut, together with
/// scatter/gather maps between sphere coefficients and FFT grids.
///
/// Conventions (see also ham/density.cpp):
///   psi(r) = sum_G c_G e^{i G.r} / sqrt(Omega),  sum_G |c_G|^2 = 1.
/// Real-space values on a grid are obtained by scattering c into the grid
/// and running an unnormalized inverse FFT; gathering divides by Ngrid.

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "grid/fftgrid.hpp"
#include "grid/lattice.hpp"

namespace pwdft::grid {

class GSphere {
 public:
  /// Builds the sphere for a kinetic-energy cutoff (Hartree). The sphere
  /// must fit inside `wfc_grid` (checked).
  GSphere(const Lattice& lat, double ecut, const FftGrid& wfc_grid);

  std::size_t size() const { return g2_.size(); }
  double ecut() const { return ecut_; }

  const std::vector<double>& g2() const { return g2_; }
  const std::vector<Vec3>& gvec() const { return gvec_; }
  const std::vector<std::array<int, 3>>& miller() const { return miller_; }
  /// Index (into the sphere) of the G = 0 vector.
  std::size_t g0_index() const { return g0_index_; }

  /// Map from sphere index to linear index in `grid` (which may be the
  /// wavefunction grid or any denser grid).
  std::vector<std::size_t> map_to(const FftGrid& grid) const;

  /// grid <- 0; grid[map[i]] = coeffs[i].
  static void scatter(std::span<const Complex> coeffs, std::span<const std::size_t> map,
                      std::span<Complex> grid);
  /// coeffs[i] = grid[map[i]] * scale.
  static void gather(std::span<const Complex> grid, std::span<const std::size_t> map,
                     double scale, std::span<Complex> coeffs);

 private:
  double ecut_ = 0.0;
  std::vector<double> g2_;
  std::vector<Vec3> gvec_;
  std::vector<std::array<int, 3>> miller_;
  std::size_t g0_index_ = 0;
};

}  // namespace pwdft::grid
