#include "grid/transforms.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/exec.hpp"
#include "grid/gsphere.hpp"

namespace pwdft::grid {

SphereMap::SphereMap(std::vector<std::size_t> map_in, const std::array<std::size_t, 3>& dims_in)
    : map(std::move(map_in)), dims(dims_in) {
  const std::size_t n0 = dims[0], n1 = dims[1];
  PWDFT_CHECK(grid_size() > 0, "SphereMap: empty grid");
  x_lines.reserve(map.size());
  z_lines.reserve(map.size());
  for (const std::size_t m : map) {
    PWDFT_CHECK(m < grid_size(), "SphereMap: index outside the grid");
    x_lines.push_back(static_cast<std::uint32_t>(m / n0));          // y + n1*z
    z_lines.push_back(static_cast<std::uint32_t>(m % (n0 * n1)));   // x + n0*y
  }
  auto uniquify = [](std::vector<std::uint32_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    v.shrink_to_fit();
  };
  uniquify(x_lines);
  uniquify(z_lines);
}

double SphereMap::x_fill() const {
  const std::size_t total = dims[1] * dims[2];
  return total == 0 ? 0.0 : static_cast<double>(x_lines.size()) / static_cast<double>(total);
}

void sphere_to_grid(const fft::Fft3D& fft, const SphereMap& sm, std::span<const Complex> coeffs,
                    std::span<Complex> grid) {
  PWDFT_ASSERT(grid.size() == sm.grid_size());
  GSphere::scatter(coeffs, sm.map, grid);
  fft.inverse_many_active(grid.data(), 1, sm.x_lines);
}

void grid_to_sphere(const fft::Fft3D& fft, const SphereMap& sm, std::span<Complex> grid,
                    double scale, std::span<Complex> coeffs) {
  PWDFT_ASSERT(grid.size() == sm.grid_size());
  fft.forward_many_active(grid.data(), 1, sm.z_lines);
  GSphere::gather(grid, sm.map, scale, coeffs);
}

void sphere_to_grid_many(const fft::Fft3D& fft, const SphereMap& sm, const CMatrix& coeffs,
                         CMatrix& grids) {
  const std::size_t ng = sm.map.size();
  const std::size_t nw = sm.grid_size();
  const std::size_t ncol = coeffs.cols();
  PWDFT_CHECK(coeffs.rows() == ng, "sphere_to_grid_many: coefficient rows mismatch");
  grids.reshape(nw, ncol);
  // Scatter all columns in parallel (each column writes disjoint memory),
  // then run the whole block as one batched partial-pass inverse FFT.
  exec::parallel_for(ncol, [&](std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e; ++j)
      GSphere::scatter({coeffs.col(j), ng}, sm.map, {grids.col(j), nw});
  });
  fft.inverse_many_active(grids.data(), ncol, sm.x_lines);
}

void grid_to_sphere_many(const fft::Fft3D& fft, const SphereMap& sm, CMatrix& grids, double scale,
                         CMatrix& coeffs) {
  const std::size_t ng = sm.map.size();
  const std::size_t nw = sm.grid_size();
  const std::size_t ncol = grids.cols();
  PWDFT_CHECK(grids.rows() == nw, "grid_to_sphere_many: grid rows mismatch");
  coeffs.reshape(ng, ncol);
  fft.forward_many_active(grids.data(), ncol, sm.z_lines);
  exec::parallel_for(ncol, [&](std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e; ++j)
      GSphere::gather({grids.col(j), nw}, sm.map, scale, {coeffs.col(j), ng});
  });
}

}  // namespace pwdft::grid
