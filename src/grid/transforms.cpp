#include "grid/transforms.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/exec.hpp"
#include "grid/gsphere.hpp"

namespace pwdft::grid {

SphereMap::SphereMap(std::vector<std::size_t> map_in, const std::array<std::size_t, 3>& dims_in)
    : map(std::move(map_in)), dims(dims_in) {
  const std::size_t n0 = dims[0], n1 = dims[1];
  PWDFT_CHECK(grid_size() > 0, "SphereMap: empty grid");
  x_lines.reserve(map.size());
  z_lines.reserve(map.size());
  for (const std::size_t m : map) {
    PWDFT_CHECK(m < grid_size(), "SphereMap: index outside the grid");
    x_lines.push_back(static_cast<std::uint32_t>(m / n0));          // y + n1*z
    z_lines.push_back(static_cast<std::uint32_t>(m % (n0 * n1)));   // x + n0*y
  }
  auto uniquify = [](std::vector<std::uint32_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    v.shrink_to_fit();
  };
  uniquify(x_lines);
  uniquify(z_lines);

  // Axis-1 masks (line l = x + n0*z). Forward: the masked axis-2 pass reads
  // whole z-columns at (x, y) in z_lines, so axis-1 output is needed at
  // every z for each x with sphere support. Inverse: after the masked
  // axis-0 pass, data is nonzero only on x_lines (y, z), so a z-plane with
  // no active x-line contributes all-zero axis-1 lines, skipped exactly.
  const std::size_t n2 = dims[2];
  std::vector<char> x_active(n0, 0);
  for (const std::uint32_t zl : z_lines) x_active[zl % n0] = 1;
  std::vector<char> z_active(n2, 0);
  for (const std::uint32_t xl : x_lines) z_active[xl / n1] = 1;
  y_lines_fwd.reserve(n0 * n2);
  y_lines_inv.reserve(n0 * n2);
  for (std::size_t z = 0; z < n2; ++z)
    for (std::size_t x = 0; x < n0; ++x) {
      if (x_active[x]) y_lines_fwd.push_back(static_cast<std::uint32_t>(x + n0 * z));
      if (z_active[z]) y_lines_inv.push_back(static_cast<std::uint32_t>(x + n0 * z));
    }
  y_lines_fwd.shrink_to_fit();
  y_lines_inv.shrink_to_fit();
}

double SphereMap::x_fill() const {
  const std::size_t total = dims[1] * dims[2];
  return total == 0 ? 0.0 : static_cast<double>(x_lines.size()) / static_cast<double>(total);
}

double SphereMap::y_fill_fwd() const {
  const std::size_t total = dims[0] * dims[2];
  return total == 0 ? 0.0
                    : static_cast<double>(y_lines_fwd.size()) / static_cast<double>(total);
}

// The scatter (gather) of each batch member runs as a prologue (epilogue
// or interior) node of that member's FFT pass chain inside Fft3D's cached
// replay graph, so one pool wake covers the whole fused conversion — and
// whole-operator pipelines (ham/) mount the same hooks around their own
// compute stages. Plain function pointers + a per-call context struct, so
// the graph cache keys on hook identity while the matrices vary per call.

void ScatterHook::run(void* user, std::size_t b) {
  const auto* c = static_cast<const ScatterHook*>(user);
  GSphere::scatter({c->coeffs + b * c->coeff_stride, c->ng}, {c->map, c->ng},
                   {c->grids + b * c->nw, c->nw});
}

void GatherHook::run(void* user, std::size_t b) {
  const auto* c = static_cast<const GatherHook*>(user);
  GSphere::gather({c->grids + b * c->nw, c->nw}, {c->map, c->ng}, c->scale,
                  {c->coeffs + b * c->coeff_stride, c->ng});
}

fft::Fft3D::Stage inverse_passes_stage(const SphereMap& sm, Complex* grids) {
  const std::size_t n0 = sm.dims[0], n1 = sm.dims[1];
  return fft::Fft3D::Stage::make_passes(
      +1, grids,
      {fft::Fft3D::PassSpec{sm.x_lines.data(), sm.x_lines.size()},
       fft::Fft3D::PassSpec{sm.y_lines_inv.data(), sm.y_lines_inv.size()},
       fft::Fft3D::PassSpec{nullptr, n0 * n1}});
}

fft::Fft3D::Stage forward_passes_stage(const SphereMap& sm, Complex* grids) {
  const std::size_t n1 = sm.dims[1], n2 = sm.dims[2];
  return fft::Fft3D::Stage::make_passes(
      -1, grids,
      {fft::Fft3D::PassSpec{nullptr, n1 * n2},
       fft::Fft3D::PassSpec{sm.y_lines_fwd.data(), sm.y_lines_fwd.size()},
       fft::Fft3D::PassSpec{sm.z_lines.data(), sm.z_lines.size()}});
}

void sphere_to_grid(const fft::Fft3D& fft, const SphereMap& sm, std::span<const Complex> coeffs,
                    std::span<Complex> grid) {
  PWDFT_ASSERT(grid.size() == sm.grid_size());
  ScatterHook ctx{sm.map.data(), sm.map.size(), coeffs.data(), 0, grid.data(), grid.size()};
  fft.inverse_many_active(grid.data(), 1, sm.x_lines, sm.y_lines_inv, &ScatterHook::run, &ctx);
}

void grid_to_sphere(const fft::Fft3D& fft, const SphereMap& sm, std::span<Complex> grid,
                    double scale, std::span<Complex> coeffs) {
  PWDFT_ASSERT(grid.size() == sm.grid_size());
  GatherHook ctx{sm.map.data(), sm.map.size(), grid.data(), grid.size(),
                 scale,         coeffs.data(), 0};
  fft.forward_many_active(grid.data(), 1, sm.y_lines_fwd, sm.z_lines, &GatherHook::run, &ctx);
}

void sphere_to_grid_many(const fft::Fft3D& fft, const SphereMap& sm, const CMatrix& coeffs,
                         CMatrix& grids) {
  const std::size_t ng = sm.map.size();
  const std::size_t nw = sm.grid_size();
  const std::size_t ncol = coeffs.cols();
  PWDFT_CHECK(coeffs.rows() == ng, "sphere_to_grid_many: coefficient rows mismatch");
  grids.reshape(nw, ncol);
  // One fused replay: each column's scatter node feeds its own partial-pass
  // chain, so column j can be deep in its FFT passes while column k is
  // still scattering (no global scatter barrier).
  ScatterHook ctx{sm.map.data(), ng, coeffs.data(), ng, grids.data(), nw};
  fft.inverse_many_active(grids.data(), ncol, sm.x_lines, sm.y_lines_inv, &ScatterHook::run,
                          &ctx);
}

void grid_to_sphere_many(const fft::Fft3D& fft, const SphereMap& sm, CMatrix& grids, double scale,
                         CMatrix& coeffs) {
  const std::size_t ng = sm.map.size();
  const std::size_t nw = sm.grid_size();
  const std::size_t ncol = grids.cols();
  PWDFT_CHECK(grids.rows() == nw, "grid_to_sphere_many: grid rows mismatch");
  coeffs.reshape(ng, ncol);
  GatherHook ctx{sm.map.data(), ng, grids.data(), nw, scale, coeffs.data(), ng};
  fft.forward_many_active(grids.data(), ncol, sm.y_lines_fwd, sm.z_lines, &GatherHook::run,
                          &ctx);
}

}  // namespace pwdft::grid
