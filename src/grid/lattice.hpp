#pragma once

/// \file lattice.hpp
/// Simulation cell (Bravais lattice) and its reciprocal lattice.
/// Vectors are rows of a 3x3 matrix in Bohr; reciprocal vectors satisfy
/// b_i . a_j = 2*pi*delta_ij.

#include <array>

#include "common/types.hpp"

namespace pwdft::grid {

using Vec3 = std::array<double, 3>;
using Mat3 = std::array<Vec3, 3>;

inline double dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}
inline Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]};
}
inline Vec3 add(const Vec3& a, const Vec3& b) { return {a[0] + b[0], a[1] + b[1], a[2] + b[2]}; }
inline Vec3 sub(const Vec3& a, const Vec3& b) { return {a[0] - b[0], a[1] - b[1], a[2] - b[2]}; }
inline Vec3 scale(const Vec3& a, double s) { return {a[0] * s, a[1] * s, a[2] * s}; }
inline double norm2(const Vec3& a) { return dot(a, a); }

class Lattice {
 public:
  /// Identity cell of 1 Bohr; useful only as a placeholder.
  Lattice();
  explicit Lattice(const Mat3& a);
  static Lattice orthorhombic(double ax, double ay, double az);
  /// Simple cubic cell of edge a.
  static Lattice cubic(double a) { return orthorhombic(a, a, a); }

  const Mat3& vectors() const { return a_; }
  const Mat3& recip() const { return b_; }
  double volume() const { return volume_; }

  /// Cartesian position of fractional coordinates.
  Vec3 cartesian(const Vec3& frac) const;
  /// Fractional coordinates of a Cartesian position.
  Vec3 fractional(const Vec3& cart) const;
  /// G vector for integer Miller-like indices (n1, n2, n3).
  Vec3 gvector(int n1, int n2, int n3) const;

 private:
  Mat3 a_;
  Mat3 b_;
  double volume_ = 0.0;
};

}  // namespace pwdft::grid
