#pragma once

/// \file fftgrid.hpp
/// FFT grid dimension selection and index <-> frequency mapping.
///
/// For the paper's setup (Si, Ecut = 10 Ha, a = 5.43 A) this reproduces
/// exactly 15 points per unit-cell edge, i.e. the 60x90x120 wavefunction
/// grid of the 4x6x8 supercell (NG = 648000), with the density grid doubled
/// in each dimension (120x180x240).

#include <array>
#include <cstddef>

#include "grid/lattice.hpp"

namespace pwdft::grid {

class FftGrid {
 public:
  FftGrid() = default;
  explicit FftGrid(std::array<std::size_t, 3> dims);

  /// Smallest grid that resolves all G with |G| <= gmax, with 5-smooth dims.
  static FftGrid for_gmax(const Lattice& lat, double gmax);

  /// Smallest 5-smooth integer >= n.
  static std::size_t good_size(std::size_t n);

  const std::array<std::size_t, 3>& dims() const { return dims_; }
  std::size_t size() const { return dims_[0] * dims_[1] * dims_[2]; }

  /// Signed frequency of grid index i along an axis (standard FFT order).
  int freq(std::size_t i, int axis) const;
  /// Largest representable |frequency| along an axis.
  int max_freq(int axis) const { return static_cast<int>(dims_[axis] - 1) / 2; }

  /// Linear index for signed frequencies (f in [-(n-1)/2, n/2]).
  std::size_t index_of(int f0, int f1, int f2) const;

  /// A grid with each dimension scaled by `factor` (the dense/density grid).
  FftGrid refined(int factor) const;

 private:
  std::array<std::size_t, 3> dims_{0, 0, 0};
};

}  // namespace pwdft::grid
