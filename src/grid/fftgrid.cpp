#include "grid/fftgrid.hpp"

#include <cmath>

#include "common/check.hpp"
#include "fft/fft_plan.hpp"

namespace pwdft::grid {

FftGrid::FftGrid(std::array<std::size_t, 3> dims) : dims_(dims) {
  PWDFT_CHECK(dims[0] >= 1 && dims[1] >= 1 && dims[2] >= 1, "FftGrid: empty dimension");
}

std::size_t FftGrid::good_size(std::size_t n) {
  if (n == 0) return 1;
  while (!fft::FftPlan1D::fast_size(n)) ++n;
  return n;
}

FftGrid FftGrid::for_gmax(const Lattice& lat, double gmax) {
  std::array<std::size_t, 3> dims;
  for (int ax = 0; ax < 3; ++ax) {
    // n_i = G . a_i / (2*pi) <= gmax * |a_i| / (2*pi); exact for orthogonal
    // cells and a safe (over-)bound in general.
    const double alen = std::sqrt(norm2(lat.vectors()[static_cast<std::size_t>(ax)]));
    const int nmax = static_cast<int>(std::floor(gmax * alen / constants::two_pi + 1e-8));
    dims[static_cast<std::size_t>(ax)] = good_size(static_cast<std::size_t>(2 * nmax + 1));
  }
  return FftGrid(dims);
}

int FftGrid::freq(std::size_t i, int axis) const {
  const std::size_t n = dims_[static_cast<std::size_t>(axis)];
  PWDFT_ASSERT(i < n);
  return (i <= (n - 1) / 2) ? static_cast<int>(i) : static_cast<int>(i) - static_cast<int>(n);
}

std::size_t FftGrid::index_of(int f0, int f1, int f2) const {
  auto wrap = [&](int f, int axis) -> std::size_t {
    const int n = static_cast<int>(dims_[static_cast<std::size_t>(axis)]);
    PWDFT_CHECK(f > -n && f < n, "FftGrid: frequency out of range");
    return static_cast<std::size_t>(f >= 0 ? f : f + n);
  };
  return wrap(f0, 0) + dims_[0] * (wrap(f1, 1) + dims_[1] * wrap(f2, 2));
}

FftGrid FftGrid::refined(int factor) const {
  PWDFT_CHECK(factor >= 1, "FftGrid: bad refinement factor");
  return FftGrid({good_size(dims_[0] * static_cast<std::size_t>(factor)),
                  good_size(dims_[1] * static_cast<std::size_t>(factor)),
                  good_size(dims_[2] * static_cast<std::size_t>(factor))});
}

}  // namespace pwdft::grid
