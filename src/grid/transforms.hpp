#pragma once

/// \file transforms.hpp
/// Fused sphere <-> grid transforms.
///
/// A planewave sphere occupies a small corner of its FFT grid (about pi/6 of
/// the wavefunction grid and 1/8 of that on the 2x dense grid), so after
/// scattering coefficients most x-lines of the grid are identically zero and
/// their axis-0 FFT pass is a no-op. Conversely, before gathering only the
/// z-lines that contain sphere points need their final axis-2 pass. The
/// middle (axis-1) pass is masked too, in both directions:
///  - inverse: a z-plane with no active x-line holds only zeros after the
///    masked axis-0 pass, so every axis-1 line in it transforms to zero and
///    is skipped exactly (y_lines_inv);
///  - forward: the masked axis-2 pass only reads columns whose x appears in
///    some active z-line, so axis-1 lines at other x are never consumed and
///    are skipped (y_lines_fwd).
/// SphereMap precomputes all four line sets once; sphere_to_grid /
/// grid_to_sphere then run the scatter (or gather) and the partial-pass
/// batched FFT as one call, with results bit-identical to the two-step
/// scatter + full-FFT path at every thread count.
///
/// Dispatch: on Fft3D's task-graph path (the default) each fused call is a
/// single replay of a cached graph — the per-batch scatter (gather) runs as
/// a prologue (epilogue) node of that batch member's FFT pass chain, so the
/// whole conversion costs one pool wake and batch members pipeline through
/// scatter and passes independently. On the fork-join path the hooks run as
/// their own batch-parallel stage; both paths execute the identical serial
/// code per batch and are bit-identical.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "fft/fft3d.hpp"
#include "linalg/matrix.hpp"

namespace pwdft::grid {

/// Sphere -> grid index map plus the FFT line masks for partial passes.
struct SphereMap {
  SphereMap() = default;
  /// `map[i]` is the linear grid index of sphere point i on a grid of the
  /// given dims (layout x fastest: i = x + n0*(y + n1*z)).
  SphereMap(std::vector<std::size_t> map_in, const std::array<std::size_t, 3>& dims_in);

  std::vector<std::size_t> map;
  std::array<std::size_t, 3> dims{0, 0, 0};
  std::vector<std::uint32_t> x_lines;  ///< sorted active axis-0 lines (l = y + n1*z)
  std::vector<std::uint32_t> z_lines;  ///< sorted active axis-2 lines (l = x + n0*y)
  /// Axis-1 lines (l = x + n0*z) needed by the forward pass: all z for every
  /// x that appears in z_lines.
  std::vector<std::uint32_t> y_lines_fwd;
  /// Axis-1 lines (l = x + n0*z) with nonzero input in the inverse pass: all
  /// x for every z that appears in x_lines.
  std::vector<std::uint32_t> y_lines_inv;

  std::size_t grid_size() const { return dims[0] * dims[1] * dims[2]; }
  /// Fraction of x-lines that carry sphere support (instrumentation).
  double x_fill() const;
  /// Fraction of axis-1 lines the forward pass runs (instrumentation).
  double y_fill_fwd() const;
};

/// Per-batch sphere-scatter hook, public so whole-operator pipelines
/// (fft::Fft3D::run_pipeline) can mount the scatter of column b as an
/// interior/prologue stage of their own fused graphs: `run(user, b)` with
/// `user` pointing at a ScatterHook scatters column b of `coeffs` into
/// column b of `grids` (zero-filling off-sphere points). The struct is the
/// per-call stage state; `&ScatterHook::run` is the cache-keyed identity.
struct ScatterHook {
  const std::size_t* map = nullptr;  ///< sphere -> grid index map
  std::size_t ng = 0;                ///< sphere points per column
  const Complex* coeffs = nullptr;   ///< column-major, column stride coeff_stride
  std::size_t coeff_stride = 0;
  Complex* grids = nullptr;          ///< column-major, column stride nw
  std::size_t nw = 0;                ///< grid points per column
  static void run(void* user, std::size_t b);
};

/// Per-batch sphere-gather hook (the forward-side counterpart):
/// `run(user, b)` gathers column b of `grids` into column b of `coeffs`,
/// scaling by `scale`.
struct GatherHook {
  const std::size_t* map = nullptr;
  std::size_t ng = 0;
  const Complex* grids = nullptr;
  std::size_t nw = 0;
  double scale = 1.0;
  Complex* coeffs = nullptr;
  std::size_t coeff_stride = 0;
  static void run(void* user, std::size_t b);
};

/// Pipeline pass stages over `sm`'s masks: the inverse (sphere -> grid)
/// passes expect freshly scattered data at `grids` (off-sphere x-lines
/// zero); the forward (grid -> sphere) passes complete only the z-lines
/// that a subsequent gather reads. Same masks — and bit-identical results —
/// as inverse_many_active / forward_many_active.
fft::Fft3D::Stage inverse_passes_stage(const SphereMap& sm, Complex* grids);
fft::Fft3D::Stage forward_passes_stage(const SphereMap& sm, Complex* grids);

/// grid <- inverse_fft(scatter(coeffs)): one fused call. `grid` is fully
/// overwritten. Bit-identical to GSphere::scatter + Fft3D::inverse.
void sphere_to_grid(const fft::Fft3D& fft, const SphereMap& sm, std::span<const Complex> coeffs,
                    std::span<Complex> grid);

/// coeffs <- gather(forward_fft(grid)) * scale: one fused call. `grid` is
/// clobbered; off-sphere z-lines hold unspecified values afterwards. The
/// gathered coefficients are bit-identical to Fft3D::forward +
/// GSphere::gather.
void grid_to_sphere(const fft::Fft3D& fft, const SphereMap& sm, std::span<Complex> grid,
                    double scale, std::span<Complex> coeffs);

/// Column-batched variants: column j of `coeffs` (sphere layout) maps to
/// column j of `grids` (grid layout); all columns are transformed as one
/// batch on the exec engine.
void sphere_to_grid_many(const fft::Fft3D& fft, const SphereMap& sm, const CMatrix& coeffs,
                         CMatrix& grids);
void grid_to_sphere_many(const fft::Fft3D& fft, const SphereMap& sm, CMatrix& grids, double scale,
                         CMatrix& coeffs);

}  // namespace pwdft::grid
