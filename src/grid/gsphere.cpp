#include "grid/gsphere.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pwdft::grid {

GSphere::GSphere(const Lattice& lat, double ecut, const FftGrid& wfc_grid) : ecut_(ecut) {
  PWDFT_CHECK(ecut > 0.0, "GSphere: cutoff must be positive");
  const double g2max = 2.0 * ecut;

  const int m0 = wfc_grid.max_freq(0);
  const int m1 = wfc_grid.max_freq(1);
  const int m2 = wfc_grid.max_freq(2);

  for (int n2 = -m2; n2 <= m2; ++n2) {
    for (int n1 = -m1; n1 <= m1; ++n1) {
      for (int n0 = -m0; n0 <= m0; ++n0) {
        const Vec3 g = lat.gvector(n0, n1, n2);
        const double g2 = norm2(g);
        if (g2 <= g2max + 1e-12) {
          if (n0 == 0 && n1 == 0 && n2 == 0) g0_index_ = g2_.size();
          g2_.push_back(g2);
          gvec_.push_back(g);
          miller_.push_back({n0, n1, n2});
        }
      }
    }
  }
  PWDFT_CHECK(!g2_.empty(), "GSphere: no planewaves inside the cutoff");

  // Verify the enclosing grid resolves the sphere: any |G| <= gmax has
  // |n_i| <= max_freq(i) by construction of the loop bounds; additionally
  // check the grid is not smaller than Nyquist for the largest Miller index.
  for (const auto& m : miller_) {
    PWDFT_CHECK(std::abs(m[0]) <= m0 && std::abs(m[1]) <= m1 && std::abs(m[2]) <= m2,
                "GSphere: sphere does not fit in the FFT grid");
  }
}

std::vector<std::size_t> GSphere::map_to(const FftGrid& grid) const {
  std::vector<std::size_t> map(size());
  for (std::size_t i = 0; i < size(); ++i) {
    const auto& m = miller_[i];
    map[i] = grid.index_of(m[0], m[1], m[2]);
  }
  return map;
}

void GSphere::scatter(std::span<const Complex> coeffs, std::span<const std::size_t> map,
                      std::span<Complex> grid) {
  PWDFT_ASSERT(coeffs.size() == map.size());
  std::fill(grid.begin(), grid.end(), Complex{0.0, 0.0});
  for (std::size_t i = 0; i < coeffs.size(); ++i) grid[map[i]] = coeffs[i];
}

void GSphere::gather(std::span<const Complex> grid, std::span<const std::size_t> map,
                     double scale, std::span<Complex> coeffs) {
  PWDFT_ASSERT(coeffs.size() == map.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) coeffs[i] = grid[map[i]] * scale;
}

}  // namespace pwdft::grid
