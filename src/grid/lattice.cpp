#include "grid/lattice.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pwdft::grid {

Lattice::Lattice() : Lattice(Mat3{Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}}) {}

Lattice::Lattice(const Mat3& a) : a_(a) {
  const Vec3 a23 = cross(a[1], a[2]);
  const double det = dot(a[0], a23);
  PWDFT_CHECK(std::abs(det) > 1e-12, "Lattice: degenerate cell");
  volume_ = std::abs(det);
  const double f = constants::two_pi / det;
  b_[0] = scale(cross(a[1], a[2]), f);
  b_[1] = scale(cross(a[2], a[0]), f);
  b_[2] = scale(cross(a[0], a[1]), f);
}

Lattice Lattice::orthorhombic(double ax, double ay, double az) {
  return Lattice(Mat3{Vec3{ax, 0, 0}, Vec3{0, ay, 0}, Vec3{0, 0, az}});
}

Vec3 Lattice::cartesian(const Vec3& f) const {
  return add(add(scale(a_[0], f[0]), scale(a_[1], f[1])), scale(a_[2], f[2]));
}

Vec3 Lattice::fractional(const Vec3& c) const {
  // f_i = (c . b_i) / (2*pi) from b_i . a_j = 2*pi*delta_ij.
  return {dot(c, b_[0]) / constants::two_pi, dot(c, b_[1]) / constants::two_pi,
          dot(c, b_[2]) / constants::two_pi};
}

Vec3 Lattice::gvector(int n1, int n2, int n3) const {
  return add(add(scale(b_[0], n1), scale(b_[1], n2)), scale(b_[2], n3));
}

}  // namespace pwdft::grid
