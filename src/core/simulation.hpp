#pragma once

/// \file simulation.hpp
/// High-level facade used by the examples: build a silicon supercell, run
/// the hybrid ground state, propagate with PT-CN or RK4, and record
/// observables. Serial (one rank); the distributed code paths are exercised
/// directly through the module APIs (see tests/ and bench/).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ham/energy.hpp"
#include "ham/hamiltonian.hpp"
#include "ham/setup.hpp"
#include "scf/scf.hpp"
#include "td/field.hpp"
#include "td/observables.hpp"
#include "td/ptcn.hpp"
#include "td/rk4.hpp"

namespace pwdft::core {

struct SimulationOptions {
  int cells[3] = {1, 1, 1};   ///< supercell in 8-atom cubic cells
  double ecut = 10.0;         ///< Ha (paper value)
  int dense_factor = 2;       ///< density grid refinement (paper value)
  bool hybrid = true;         ///< HSE-style screened exchange
  bool nonlocal = true;       ///< synthetic KB projectors
  /// Apply exchange through ACE (PWDFT_ACE resolution, default off); the
  /// projector-refresh cadence follows HamiltonianOptions::ace_refresh
  /// (<= 0 resolves PWDFT_ACE_REFRESH).
  bool use_ace = ham::ace_env_default();
  int ace_refresh = 0;
  xc::HybridParams hybrid_params{};
  ham::FockOptions fock{};
  scf::ScfOptions scf{};
  /// FFT dispatch for every grid in the simulation (kAuto resolves
  /// PWDFT_FFT_DISPATCH, default persistent task graphs); results are
  /// bit-identical across paths.
  fft::ExecPath fft_dispatch = fft::ExecPath::kAuto;
  /// Whole-operator pipeline mode for the narrow-band hot paths
  /// (Hamiltonian apply, density, Fock pair solves): kAuto resolves
  /// PWDFT_OPERATOR_PIPELINE, default fused — each narrow operator
  /// application is one cached-graph replay. Bit-identical across modes.
  fft::PipelineMode op_pipeline = fft::PipelineMode::kAuto;
  std::uint64_t seed = 42;
};

enum class Integrator { kPtCn, kRk4 };

struct PropagateOptions {
  Integrator integrator = Integrator::kPtCn;
  double dt_as = 50.0;  ///< time step in attoseconds
  int steps = 10;
  const td::ExternalField* field = nullptr;  ///< nullptr = no field
  bool record_energy = true;
  bool record_excitation = true;
  td::PtCnOptions ptcn{};  ///< dt is overridden from dt_as

  // --- Resume support (serve::JobEngine checkpoint/restart) -------------
  // A PT-CN step is a pure function of (psi, t) at the default exchange
  // cadence (docs/threading.md), so continuing a killed trajectory from a
  // checkpoint is exact: restore psi via restore_wavefunctions(), then
  // propagate with t0/step0 from the checkpoint meta and
  // record_initial=false. The stitched trace is bit-identical to the
  // uninterrupted run.
  double t0 = 0.0;             ///< simulation time at entry (a.u.)
  std::uint64_t step0 = 0;     ///< global index of the first step taken here
  bool record_initial = true;  ///< record the t = t0 sample (off on resume)
  /// Excitation reference: n_excited compares against these orbitals
  /// (default: psi at entry, i.e. the ground state on a fresh run). A
  /// resumed run must pass its ground-state orbitals or n_excited would be
  /// measured against the mid-trajectory restart state.
  const CMatrix* psi0_reference = nullptr;
  /// Per-step hook, called after each step is recorded with the global step
  /// index (step0 + steps taken), the trace recorded so far by this call
  /// (including the t = t0 sample when record_initial is on), and the
  /// current state. Return false to stop before the next step (cooperative
  /// preemption); the trace so far is returned as usual. The JobEngine's
  /// checkpoint cadence and kill switch both live here.
  std::function<bool(std::uint64_t step, const std::vector<td::TimePoint>& trace,
                     const CMatrix& psi, double t)>
      on_step;
};

class Simulation {
 public:
  explicit Simulation(const SimulationOptions& opt);

  /// Multi-tenant form: share an already-built PlanewaveSetup (every
  /// accessor of which is const) across co-resident Simulations instead of
  /// re-deriving the G-sphere and grids per tenant. `opt` must describe the
  /// same cell/cutoff the setup was built from; the serve::JobEngine's
  /// setup cache keys on exactly those fields.
  Simulation(std::shared_ptr<const ham::PlanewaveSetup> setup, const SimulationOptions& opt);

  const ham::PlanewaveSetup& setup() const { return *setup_; }
  /// The shared setup handle (for caching layers above this one).
  const std::shared_ptr<const ham::PlanewaveSetup>& shared_setup() const { return setup_; }
  ham::Hamiltonian& hamiltonian() { return *ham_; }
  const CMatrix& wavefunctions() const { return psi_; }
  const std::vector<double>& occupations() const { return occ_; }

  /// Runs (LDA then hybrid) SCF; must be called before propagate().
  scf::ScfResult ground_state();

  /// Installs checkpointed wavefunctions as the current state (shape must
  /// match the setup) and marks the simulation ready to propagate without
  /// an SCF run. Combined with PropagateOptions::t0/step0 this is the
  /// crash-restart entry point; see the resume notes on PropagateOptions.
  void restore_wavefunctions(const CMatrix& psi);

  /// Propagates and returns one TimePoint per step (plus the t=t0 sample
  /// unless record_initial is off).
  std::vector<td::TimePoint> propagate(const PropagateOptions& opt);

  /// Total energy of the current state (rebuilds density and exchange).
  ham::EnergyBreakdown current_energy();

 private:
  SimulationOptions opt_;
  std::shared_ptr<const ham::PlanewaveSetup> setup_;
  pseudo::PseudoSpecies species_;
  std::unique_ptr<ham::Hamiltonian> ham_;
  par::SerialComm comm_;
  CMatrix psi_;
  std::vector<double> occ_;
  bool ground_state_done_ = false;
};

}  // namespace pwdft::core
