#include "core/simulation.hpp"

#include "common/check.hpp"
#include "common/timer.hpp"
#include "ham/density.hpp"

namespace pwdft::core {

Simulation::Simulation(const SimulationOptions& opt)
    : Simulation(std::make_shared<const ham::PlanewaveSetup>(
                     crystal::Crystal::silicon_supercell(opt.cells[0], opt.cells[1],
                                                         opt.cells[2]),
                     opt.ecut, opt.dense_factor),
                 opt) {}

Simulation::Simulation(std::shared_ptr<const ham::PlanewaveSetup> setup,
                       const SimulationOptions& opt)
    : opt_(opt),
      setup_(std::move(setup)),
      species_(pseudo::PseudoSpecies::silicon(opt.nonlocal)) {
  ham::HamiltonianOptions hopt;
  hopt.hybrid = opt.hybrid_params;
  hopt.hybrid.enabled = opt.hybrid;
  hopt.fock = opt.fock;
  hopt.use_nonlocal = opt.nonlocal;
  hopt.use_ace = opt.use_ace;
  hopt.ace_refresh = opt.ace_refresh;
  hopt.fft_dispatch = opt.fft_dispatch;
  hopt.op_pipeline = opt.op_pipeline;
  ham_ = std::make_unique<ham::Hamiltonian>(*setup_, species_, hopt);
  occ_.assign(setup_->n_bands(), 2.0);
}

scf::ScfResult Simulation::ground_state() {
  scf::GroundStateSolver solver(*setup_, *ham_);
  psi_ = solver.initial_guess(setup_->n_bands(), opt_.seed);
  scf::ScfResult res = solver.solve(psi_, occ_, opt_.scf);
  ground_state_done_ = true;
  return res;
}

void Simulation::restore_wavefunctions(const CMatrix& psi) {
  PWDFT_CHECK(psi.rows() == setup_->n_g() && psi.cols() == setup_->n_bands(),
              "Simulation: restored wavefunctions have shape "
                  << psi.rows() << "x" << psi.cols() << ", this run needs " << setup_->n_g()
                  << "x" << setup_->n_bands());
  psi_ = psi;
  ground_state_done_ = true;
}

ham::EnergyBreakdown Simulation::current_energy() {
  PWDFT_CHECK(ground_state_done_, "Simulation: run ground_state() first");
  auto rho =
      ham::compute_density(*setup_, ham_->fft_dense(), psi_, occ_, comm_, true, opt_.op_pipeline);
  ham_->update_density(rho);
  par::BlockPartition bands(psi_.cols(), 1);
  if (ham_->hybrid_enabled()) ham_->set_exchange_orbitals(psi_, occ_, bands, comm_);
  return ham::compute_energy(*ham_, psi_, occ_, rho, comm_);
}

std::vector<td::TimePoint> Simulation::propagate(const PropagateOptions& opt) {
  PWDFT_CHECK(ground_state_done_, "Simulation: run ground_state() first");
  const double dt = constants::attoseconds_to_au(opt.dt_as);
  par::BlockPartition bands(psi_.cols(), 1);

  td::ZeroField zero;
  const td::ExternalField& field = opt.field ? *opt.field : zero;

  td::PtCnOptions pt_opt = opt.ptcn;
  pt_opt.dt = dt;
  td::PtCnPropagator ptcn(*ham_, bands, pt_opt, comm_.size());
  td::Rk4Propagator rk4(*ham_, bands, td::Rk4Options{dt});

  const CMatrix psi0 = opt.psi0_reference ? *opt.psi0_reference : psi_;
  std::vector<td::TimePoint> trace;
  trace.reserve(opt.steps + 1);

  auto record = [&](double t, int scf_iters, double rho_err, double wall, bool refreshed,
                    double drift) {
    td::TimePoint p;
    p.t = t;
    p.exchange_refreshed = refreshed;
    p.mts_drift = drift;
    const grid::Vec3 a = field.vector_potential(t);
    ham_->set_vector_potential(a);
    p.current = td::compute_current(*setup_, psi_, occ_, a, comm_);
    if (opt.record_excitation)
      p.n_excited = td::excited_electrons(*setup_, bands, psi0, psi_, occ_, comm_);
    if (opt.record_energy) {
      auto rho = ham::compute_density(*setup_, ham_->fft_dense(), psi_, occ_, comm_, true,
                                      opt_.op_pipeline);
      ham_->update_density(rho);
      if (ham_->hybrid_enabled()) ham_->set_exchange_orbitals(psi_, occ_, bands, comm_);
      p.energy = ham::compute_energy(*ham_, psi_, occ_, rho, comm_).total();
    }
    p.scf_iterations = scf_iters;
    p.rho_error = rho_err;
    p.wall_seconds = wall;
    trace.push_back(p);
  };

  if (opt.record_initial) record(opt.t0, 0, 0.0, 0.0, false, 0.0);
  double t = opt.t0;
  for (int s = 0; s < opt.steps; ++s) {
    WallTimer timer;
    int scf_iters = 0;
    double rho_err = 0.0;
    bool refreshed = false;
    double drift = 0.0;
    if (opt.integrator == Integrator::kPtCn) {
      auto rep = ptcn.step(psi_, occ_, t, field, comm_);
      scf_iters = rep.scf_iterations;
      rho_err = rep.rho_error;
      refreshed = rep.exchange_refreshed;
      drift = rep.mts_drift;
    } else {
      rk4.step(psi_, occ_, t, field, comm_);
    }
    t += dt;
    record(t, scf_iters, rho_err, timer.seconds(), refreshed, drift);
    const std::uint64_t global_step = opt.step0 + static_cast<std::uint64_t>(s) + 1;
    if (opt.on_step && !opt.on_step(global_step, trace, psi_, t)) break;
  }
  return trace;
}

}  // namespace pwdft::core
