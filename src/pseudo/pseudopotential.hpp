#pragma once

/// \file pseudopotential.hpp
/// Analytic norm-conserving-style pseudopotential for silicon.
///
/// Substitution note (see DESIGN.md): the paper uses SG15 ONCV
/// pseudopotentials, whose tabulated data is not available offline. We use
/// the Appelbaum-Hamann local model potential (PRB 8, 1777 (1973)),
///   v(r) = -Z erf(sqrt(alpha) r)/r + (v1 + v2 r^2) exp(-alpha r^2),
/// a standard bulk-silicon test potential accurate in exactly the paper's
/// Ecut = 10 Ha regime, plus synthetic Kleinman-Bylander Gaussian projectors
/// so the nonlocal (real-space sparse projector) code path of §3.2 is
/// exercised with the same computational structure.
///
/// Fourier transform used by local_pot.cpp (Hartree units, per atom):
///   v(G)    = exp(-G^2/(4a)) * [ -4 pi Z / G^2
///             + (pi/a)^{3/2} (v1 + v2 (3/(2a) - G^2/(4a^2))) ],   G != 0
///   v(G=0)  = Z pi / a + (pi/a)^{3/2} (v1 + 3 v2/(2a))
/// where the divergent -4 pi Z/G^2 piece at G=0 is dropped by convention
/// (it cancels against the Hartree G=0 term and the Ewald background).

#include <vector>

#include "common/types.hpp"

namespace pwdft::pseudo {

struct LocalParams {
  double zval = 4.0;    ///< valence charge
  double alpha = 0.6102;  ///< Gaussian width (Bohr^-2), Appelbaum-Hamann
  double v1 = 3.042 / 2.0;   ///< Ha (A-H value 3.042 Ry)
  double v2 = -1.372 / 2.0;  ///< Ha/Bohr^2 (A-H value -1.372 Ry)
};

/// One Kleinman-Bylander channel: sum_m D |beta_lm><beta_lm| with a
/// Gaussian radial shape of width sigma; D is the KB energy (Ha).
struct ProjectorChannel {
  int l = 0;          ///< angular momentum (0 or 1 supported)
  double sigma = 1.0; ///< radial width (Bohr)
  double energy = 0.0;  ///< KB coefficient D (Ha)
  double rcut = 4.0;  ///< real-space truncation radius (Bohr)
};

struct PseudoSpecies {
  LocalParams local;
  std::vector<ProjectorChannel> channels;

  /// Silicon defaults; `with_nonlocal` adds the synthetic s & p projectors.
  static PseudoSpecies silicon(bool with_nonlocal = true);
};

/// Local form factor v(|G|) in Ha*Bohr^3 for G != 0 (see file comment).
double local_form_factor(const LocalParams& p, double g2);

/// The finite G = 0 value with the Coulomb divergence removed.
double local_form_factor_g0(const LocalParams& p);

/// Real-space potential v(r) in Ha (for cross-checks and documentation).
double local_potential_r(const LocalParams& p, double r);

}  // namespace pwdft::pseudo
