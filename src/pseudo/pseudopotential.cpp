#include "pseudo/pseudopotential.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pwdft::pseudo {

PseudoSpecies PseudoSpecies::silicon(bool with_nonlocal) {
  PseudoSpecies s;
  s.local = LocalParams{};  // Appelbaum-Hamann silicon values
  if (with_nonlocal) {
    // Synthetic KB channels (documented substitution; see DESIGN.md). The
    // repulsive s channel plays the role of the ONCV s nonlocality that the
    // purely local A-H model lacks: it pushes a spurious low s-like state
    // above the valence manifold so the Gamma-only folded spectrum of the
    // 8-atom cell is insulating (gap ~0.13 Ha between bands 16 and 17 at
    // Ecut = 4 Ha), matching the paper's insulating-silicon setup. The weak
    // p channel exercises the l = 1 sparse-projector code path.
    s.channels.push_back(ProjectorChannel{0, 1.0, 0.5, 4.0});
    s.channels.push_back(ProjectorChannel{1, 1.2, 0.05, 4.5});
  }
  return s;
}

double local_form_factor(const LocalParams& p, double g2) {
  PWDFT_ASSERT(g2 > 0.0);
  const double a = p.alpha;
  const double gauss = std::exp(-g2 / (4.0 * a));
  const double pref = std::pow(constants::pi / a, 1.5);
  const double coulomb = -constants::four_pi * p.zval / g2;
  const double shortrange = pref * (p.v1 + p.v2 * (1.5 / a - g2 / (4.0 * a * a)));
  return gauss * (coulomb + shortrange);
}

double local_form_factor_g0(const LocalParams& p) {
  const double a = p.alpha;
  const double pref = std::pow(constants::pi / a, 1.5);
  return p.zval * constants::pi / a + pref * (p.v1 + 1.5 * p.v2 / a);
}

double local_potential_r(const LocalParams& p, double r) {
  const double a = p.alpha;
  if (r < 1e-10) {
    // erf(x)/x -> 2/sqrt(pi) as x -> 0.
    return -p.zval * 2.0 * std::sqrt(a / constants::pi) + p.v1;
  }
  return -p.zval * std::erf(std::sqrt(a) * r) / r +
         (p.v1 + p.v2 * r * r) * std::exp(-a * r * r);
}

}  // namespace pwdft::pseudo
