#pragma once

/// \file local_pot.hpp
/// Assembly of the total local ionic potential V_loc(r) on a dense FFT grid
/// via structure factors:  V(G) = (1/Omega) sum_a e^{-i G.tau_a} v_a(|G|).

#include <vector>

#include "crystal/crystal.hpp"
#include "grid/fftgrid.hpp"
#include "pseudo/pseudopotential.hpp"

namespace pwdft::pseudo {

/// Returns V_loc on the real-space grid (Ha). All species share `species`
/// (single-species crystals only, which covers the paper's silicon systems).
std::vector<double> build_local_potential(const crystal::Crystal& crystal,
                                          const PseudoSpecies& species,
                                          const grid::FftGrid& grid);

}  // namespace pwdft::pseudo
