#include "pseudo/local_pot.hpp"

#include <cmath>

#include "common/check.hpp"
#include "fft/fft3d.hpp"

namespace pwdft::pseudo {

std::vector<double> build_local_potential(const crystal::Crystal& crystal,
                                          const PseudoSpecies& species,
                                          const grid::FftGrid& grid) {
  const auto& lat = crystal.lattice();
  const double vol = lat.volume();
  const auto dims = grid.dims();
  const std::size_t n = grid.size();
  const std::size_t na = crystal.n_atoms();

  // Per-atom, per-axis phase tables: e^{-i 2 pi f_axis * n_axis} for every
  // grid frequency. The structure factor then factorizes (orthorhombic or
  // not: G.tau = 2 pi sum_d n_d f_d holds for fractional coordinates).
  std::array<std::vector<Complex>, 3> phase;
  for (int ax = 0; ax < 3; ++ax) {
    phase[static_cast<std::size_t>(ax)].resize(na * dims[static_cast<std::size_t>(ax)]);
    for (std::size_t a = 0; a < na; ++a) {
      const double f = crystal.atoms()[a].frac[static_cast<std::size_t>(ax)];
      for (std::size_t i = 0; i < dims[static_cast<std::size_t>(ax)]; ++i) {
        const double ang = -constants::two_pi * grid.freq(i, ax) * f;
        phase[static_cast<std::size_t>(ax)][a * dims[static_cast<std::size_t>(ax)] + i] =
            Complex{std::cos(ang), std::sin(ang)};
      }
    }
  }

  std::vector<Complex> vg(n, Complex{0.0, 0.0});
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims[2]; ++z) {
    const int f2 = grid.freq(z, 2);
    for (std::size_t y = 0; y < dims[1]; ++y) {
      const int f1 = grid.freq(y, 1);
      for (std::size_t x = 0; x < dims[0]; ++x, ++idx) {
        const int f0 = grid.freq(x, 0);
        const auto g = lat.gvector(f0, f1, f2);
        const double g2 = grid::norm2(g);
        const double ff = (g2 < 1e-12) ? local_form_factor_g0(species.local)
                                       : local_form_factor(species.local, g2);
        Complex s{0.0, 0.0};
        for (std::size_t a = 0; a < na; ++a) {
          s += phase[0][a * dims[0] + x] * phase[1][a * dims[1] + y] *
               phase[2][a * dims[2] + z];
        }
        vg[idx] = s * (ff / vol);
      }
    }
  }

  // V(r) = sum_G V(G) e^{i G.r}: one unnormalized inverse FFT.
  const auto plan = fft::shared_engine(dims);
  plan->inverse(vg.data());

  std::vector<double> vr(n);
  for (std::size_t i = 0; i < n; ++i) vr[i] = vg[i].real();
  return vr;
}

}  // namespace pwdft::pseudo
