#include "pseudo/nonlocal.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pwdft::pseudo {

namespace {

/// Gaussian radial shapes: l=0: exp(-r^2/(2 s^2)); l=1: (r_d/s) exp(-r^2/(2 s^2)).
double radial(int l, double sigma, double r2) {
  const double g = std::exp(-r2 / (2.0 * sigma * sigma));
  return l == 0 ? g : g / sigma;  // l=1 carries the extra r_d factor outside
}

}  // namespace

NonlocalProjectors::NonlocalProjectors(const crystal::Crystal& crystal,
                                       const PseudoSpecies& species, const grid::FftGrid& grid,
                                       const grid::Lattice& lattice) {
  const auto dims = grid.dims();
  const auto& a = lattice.vectors();
  const double vol = lattice.volume();
  const double weight = vol / static_cast<double>(grid.size());

  // Grid spacing along each lattice direction (orthorhombic cells in all
  // shipped systems; bounds stay valid as an overestimate otherwise).
  std::array<double, 3> h{};
  for (std::size_t d = 0; d < 3; ++d)
    h[d] = std::sqrt(grid::norm2(a[d])) / static_cast<double>(dims[d]);

  for (std::size_t ai = 0; ai < crystal.n_atoms(); ++ai) {
    const grid::Vec3 tau = crystal.position(ai);
    for (const auto& ch : species.channels) {
      PWDFT_CHECK(ch.l == 0 || ch.l == 1, "NonlocalProjectors: only l=0,1 supported");
      const int nm = (ch.l == 0) ? 1 : 3;
      for (int m = 0; m < nm; ++m) {
        Projector p;
        p.energy = ch.energy;

        // Enumerate grid points within rcut of tau, with periodic wrap.
        std::array<int, 3> span{};
        for (std::size_t d = 0; d < 3; ++d)
          span[d] = static_cast<int>(std::ceil(ch.rcut / h[d])) + 1;
        const grid::Vec3 tfrac = lattice.fractional(tau);
        std::array<int, 3> center{};
        for (std::size_t d = 0; d < 3; ++d)
          center[d] = static_cast<int>(std::llround(tfrac[d] * static_cast<double>(dims[d])));

        double norm2_acc = 0.0;
        for (int dz = -span[2]; dz <= span[2]; ++dz) {
          for (int dy = -span[1]; dy <= span[1]; ++dy) {
            for (int dx = -span[0]; dx <= span[0]; ++dx) {
              const int gx = center[0] + dx, gy = center[1] + dy, gz = center[2] + dz;
              // Fractional offset of this grid point relative to the atom.
              const grid::Vec3 df = {
                  static_cast<double>(gx) / static_cast<double>(dims[0]) - tfrac[0],
                  static_cast<double>(gy) / static_cast<double>(dims[1]) - tfrac[1],
                  static_cast<double>(gz) / static_cast<double>(dims[2]) - tfrac[2]};
              const grid::Vec3 r = lattice.cartesian(df);
              const double r2 = grid::norm2(r);
              if (r2 > ch.rcut * ch.rcut) continue;

              auto wrap = [](int i, std::size_t n) {
                int v = i % static_cast<int>(n);
                if (v < 0) v += static_cast<int>(n);
                return static_cast<std::size_t>(v);
              };
              const std::size_t gi =
                  wrap(gx, dims[0]) + dims[0] * (wrap(gy, dims[1]) + dims[1] * wrap(gz, dims[2]));

              double v = radial(ch.l, ch.sigma, r2);
              if (ch.l == 1) v *= r[static_cast<std::size_t>(m)];
              if (std::abs(v) < 1e-14) continue;
              p.idx.push_back(gi);
              p.val.push_back(v);
              norm2_acc += v * v;
            }
          }
        }
        PWDFT_CHECK(!p.idx.empty(), "NonlocalProjectors: projector sphere misses the grid");
        const double inv_norm = 1.0 / std::sqrt(norm2_acc * weight);
        for (double& v : p.val) v *= inv_norm;
        projectors_.push_back(std::move(p));
      }
    }
  }
}

void NonlocalProjectors::apply_add(std::span<const Complex> psi_real, std::span<Complex> out,
                                   double weight) const {
  for (const auto& p : projectors_) {
    Complex amp{0.0, 0.0};
    const std::size_t m = p.idx.size();
    for (std::size_t k = 0; k < m; ++k) amp += p.val[k] * psi_real[p.idx[k]];
    amp *= weight * p.energy;
    for (std::size_t k = 0; k < m; ++k) out[p.idx[k]] += amp * p.val[k];
  }
}

double NonlocalProjectors::energy_contribution(std::span<const Complex> psi_real,
                                               double weight) const {
  double e = 0.0;
  for (const auto& p : projectors_) {
    Complex amp{0.0, 0.0};
    const std::size_t m = p.idx.size();
    for (std::size_t k = 0; k < m; ++k) amp += p.val[k] * psi_real[p.idx[k]];
    e += p.energy * std::norm(amp * weight);
  }
  return e;
}

std::size_t NonlocalProjectors::storage_bytes() const {
  std::size_t b = 0;
  for (const auto& p : projectors_)
    b += p.idx.size() * (sizeof(std::size_t) + sizeof(double));
  return b;
}

}  // namespace pwdft::pseudo
