#pragma once

/// \file nonlocal.hpp
/// Kleinman-Bylander nonlocal projectors stored as real-space sparse vectors
/// (paper §3.2: "we choose the real space representation for the nonlocal
/// projectors, which can be stored as sparse vectors", replicated on every
/// rank so the apply needs no communication).

#include <span>
#include <vector>

#include "common/types.hpp"
#include "crystal/crystal.hpp"
#include "grid/fftgrid.hpp"
#include "pseudo/pseudopotential.hpp"

namespace pwdft::pseudo {

/// One projector: a sparse real-space function beta(r) on the grid within
/// rcut of its atom, normalized to unit L2 norm, with KB energy D.
struct Projector {
  std::vector<std::size_t> idx;  ///< grid indices inside the sphere
  std::vector<double> val;       ///< beta at those points (real)
  double energy = 0.0;           ///< KB coefficient D (Ha)
};

class NonlocalProjectors {
 public:
  /// Builds all projectors for the crystal on `grid` (the grid on which
  /// H*psi real-space products are formed).
  NonlocalProjectors(const crystal::Crystal& crystal, const PseudoSpecies& species,
                     const grid::FftGrid& grid, const grid::Lattice& lattice);

  std::size_t n_projectors() const { return projectors_.size(); }
  const std::vector<Projector>& projectors() const { return projectors_; }

  /// Adds V_nl * psi to `out`, both real-space arrays on the build grid.
  /// `weight` is the quadrature weight Omega/Ngrid.
  void apply_add(std::span<const Complex> psi_real, std::span<Complex> out,
                 double weight) const;

  /// sum_p D_p |<beta_p|psi>|^2 for one orbital (its nonlocal energy).
  double energy_contribution(std::span<const Complex> psi_real, double weight) const;

  /// Total bytes of the sparse storage (paper: ~432 MB for Si1536,
  /// replicated per rank; used by the memory model).
  std::size_t storage_bytes() const;

 private:
  std::vector<Projector> projectors_;
};

}  // namespace pwdft::pseudo
