#pragma once

/// \file workload.hpp
/// Problem-size model for the paper's silicon systems (§4): Natom atoms,
/// Ne = 2 Natom bands, wavefunction grid NG = 648000 * Natom/1536
/// (exactly 15^3 points per 8-atom cell), dense density grid 8x NG,
/// PT-CN with 22 SCF iterations and 24 Fock applications per 50 as step.

#include <cstddef>

namespace pwdft::perf {

struct Workload {
  std::size_t natoms = 1536;
  std::size_t ne = 3072;      ///< number of bands (wavefunctions)
  double ng = 648000.0;       ///< wavefunction grid points (NG)
  double ndense = 5184000.0;  ///< density grid points
  int nscf = 22;              ///< SCF iterations per PT-CN step (paper avg)
  int fock_applies = 24;      ///< 22 SCF + residual Rn + energy (paper §7)
  int anderson_depth = 20;
  double dt_as = 50.0;
  double rk4_dt_as = 0.5;

  /// Bytes of one wavefunction on the wire (paper: 5.0 MB single precision).
  double wfc_bytes(bool single_precision) const { return ng * (single_precision ? 8.0 : 16.0); }

  /// Total per-step communication volume of the Fock broadcasts received by
  /// one rank: Ne * NG * bytes (paper §3.2: Np*NG*Ne across ranks).
  double fock_bcast_bytes_per_rank(bool single_precision) const {
    return static_cast<double>(ne) * wfc_bytes(single_precision);
  }

  static Workload silicon(std::size_t natoms);
};

}  // namespace pwdft::perf
