#pragma once

/// \file report.hpp
/// Paper-style table/series generators. Each function regenerates one table
/// or figure of the evaluation section from the performance model; the bench
/// binaries print these and EXPERIMENTS.md records paper-vs-model values.

#include "common/table.hpp"
#include "perf/model.hpp"

namespace pwdft::perf {

/// The GPU counts of the paper's Table 1 / Table 2 columns.
std::vector<int> paper_gpu_counts();

/// Table 1: component wall-clock breakdown + speedup vs the CPU reference.
Table table1(const SummitModel& model, const std::vector<int>& gpus, int cpu_cores = 3072);

/// Table 2: MPI / memcpy / compute totals per step.
Table table2(const SummitModel& model, const std::vector<int>& gpus);

/// Fig. 3: Fock-exchange time across the optimization stages.
Table fig3(const SummitModel& model, int ngpu = 72, int cpu_cores = 3072);

/// Fig. 6: RK4 vs PT-CN wall time for a 50 as advance.
Table fig6(const SummitModel& model, const std::vector<int>& gpus);

/// Fig. 7(a): strong scaling of the total step time and components
/// (communication included).
Table fig7a(const SummitModel& model, const std::vector<int>& gpus);

/// Fig. 7(b): strong scaling of the pure computation per component.
Table fig7b(const SummitModel& model, const std::vector<int>& gpus);

/// Fig. 8: weak scaling, 48..1536 atoms with #GPUs = Natom/2, vs ideal N^2.
Table fig8(const SummitMachine& machine, const std::vector<std::size_t>& natoms);

/// Fig. 9: per-SCF stacked component contributions.
Table fig9(const SummitModel& model, const std::vector<int>& gpus);

/// Fig. 10: strong scaling of MPI operations, memcpy, and compute.
Table fig10(const SummitModel& model, const std::vector<int>& gpus);

/// §6 power comparison: 12 GPU nodes vs 73 CPU nodes at iso-power.
Table power_comparison(const SummitModel& model, int ngpu = 72, int cpu_cores = 3072);

}  // namespace pwdft::perf
