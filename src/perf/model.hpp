#pragma once

/// \file model.hpp
/// Discrete performance model of PT-CN hybrid rt-TDDFT on a Summit-like
/// machine. Maps the operation schedule of Algs. 1-3 (FLOP and byte counts
/// per phase, paper §7) onto the machine rates of machine.hpp, reproducing
/// the paper's Tables 1-2 and Figs. 3 and 6-10. See DESIGN.md for the
/// substitution rationale and EXPERIMENTS.md for paper-vs-model numbers.

#include <string>
#include <vector>

#include "perf/machine.hpp"
#include "perf/workload.hpp"

namespace pwdft::perf {

/// Per-SCF component times in seconds (the rows of paper Table 1).
struct ScfBreakdown {
  double fock_mpi = 0.0;
  double fock_comp = 0.0;
  double local_semilocal = 0.0;
  double resid_alltoallv = 0.0;
  double resid_allreduce = 0.0;
  double resid_comp = 0.0;
  double anderson_memcpy = 0.0;
  double anderson_comp = 0.0;
  double density_comp = 0.0;
  double density_allreduce = 0.0;
  double others = 0.0;

  double fock_total() const { return fock_mpi + fock_comp; }
  double hpsi_total() const { return fock_total() + local_semilocal; }
  double resid_total() const { return resid_alltoallv + resid_allreduce + resid_comp; }
  double anderson_total() const { return anderson_memcpy + anderson_comp; }
  double density_total() const { return density_comp + density_allreduce; }
  double per_scf() const {
    return hpsi_total() + resid_total() + anderson_total() + density_total() + others;
  }
};

/// Per-step (50 as) communication/memcpy/compute totals (paper Table 2).
struct StepCommBreakdown {
  double memcpy = 0.0;
  double alltoallv = 0.0;
  double allreduce = 0.0;
  double bcast = 0.0;
  double allgatherv = 0.0;
  double compute = 0.0;
  double mpi_total() const { return alltoallv + allreduce + bcast + allgatherv; }
};

/// One bar of the paper's Fig. 3 optimization-stage study.
struct FockStage {
  std::string name;
  double seconds = 0.0;  ///< Fock-exchange wall time per SCF
};

class SummitModel {
 public:
  SummitModel(SummitMachine machine, Workload workload)
      : m_(machine), w_(workload) {}

  const SummitMachine& machine() const { return m_; }
  const Workload& workload() const { return w_; }

  // ---- Fock exchange operator (Alg. 2) ----
  /// Compute time of one Fock application per rank.
  double fock_compute_per_apply(int ngpu, bool batched = true) const;
  /// Raw (un-hidden) broadcast time of one application.
  double fock_bcast_raw_per_apply(int ngpu, bool single_precision) const;
  /// Measured-equivalent broadcast time after compute hiding (Table 1 row).
  double fock_bcast_measured_per_apply(int ngpu) const;
  /// Local + semi-local H*psi time per application.
  double local_semilocal_per_apply(int ngpu) const;

  // ---- full PT-CN step ----
  ScfBreakdown scf_breakdown(int ngpu) const;
  /// Total wall time of one PT-CN step (= one 50 as advance), Table 1 row.
  double ptcn_step_total(int ngpu) const;
  StepCommBreakdown comm_breakdown(int ngpu) const;

  // ---- baselines ----
  /// RK4 advancing the same 50 as: 100 steps x 4 H applications with the
  /// pre-optimization communication path (double precision, no overlap).
  double rk4_50as_total(int ngpu) const;
  /// CPU-only PWDFT PT-CN step on `ncores` cores (paper: 8874 s at 3072).
  double cpu_step_total(int ncores) const;

  // ---- aggregates ----
  double total_flop_per_step() const;
  double gpu_power_w(int ngpu) const;
  double cpu_power_w(int ncores) const;
  int cpu_nodes(int ncores) const;
  /// Memory per rank for PT-CN incl. 20 Anderson copies (paper §7, GB).
  double anderson_memory_gb_per_rank(int ngpu) const;

  /// Full §7-style memory breakdown per rank (GB).
  struct MemoryBreakdown {
    double wavefunctions_gpu = 0.0;    ///< Psi, HPsi, Psi_half, residual
    double fock_buffers_gpu = 0.0;     ///< broadcast + batched pair buffers
    double projectors_gpu = 0.0;       ///< replicated nonlocal projectors
    double density_vars_gpu = 0.0;     ///< rho, V_H, V_xc, ... (replicated)
    double anderson_host = 0.0;        ///< 20 wavefunction copies in DRAM
    double gpu_total() const {
      return wavefunctions_gpu + fock_buffers_gpu + projectors_gpu + density_vars_gpu;
    }
  };
  MemoryBreakdown memory_breakdown(int ngpu) const;

  /// Fig. 3: Fock wall time per SCF across the optimization stages.
  std::vector<FockStage> fock_stages(int ngpu, int cpu_cores) const;

 private:
  double fft_flop(double n) const;
  SummitMachine m_;
  Workload w_;
};

/// Admission-control cost of a queued job: model-seconds for `steps` PT-CN
/// steps of workload `w` on one model GPU. The serve::JobEngine compares
/// these against its concurrent-cost budget, so only the ratios between
/// jobs matter and the machine constants cancel out of scheduling
/// decisions (a 2x2x2-cell laser sweep costs 8x a unit-cell SCF probe).
double job_cost(const SummitMachine& m, const Workload& w, int steps);

}  // namespace pwdft::perf
