#include "perf/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace pwdft::perf {

PipelineResult simulate_fock_pipeline(const SummitMachine& machine, const Workload& workload,
                                      int ngpu, const PipelineOptions& opt) {
  PWDFT_CHECK(ngpu >= 1, "timeline: ngpu must be positive");
  const std::size_t nb = opt.bands ? opt.bands : workload.ne;

  // Per-band durations: wire transfer, host<->device staging, and the
  // compute slice (all pair solves against this broadcast band).
  const double msg = workload.wfc_bytes(opt.single_precision);
  const double t_bcast = msg / machine.nic_rank_bw();
  const double t_stage = msg / (machine.nvlink_bw * machine.nvlink_eff);
  const double pairs_per_band =
      static_cast<double>(workload.ne) / static_cast<double>(ngpu);
  const double flop_pair = 2.0 * machine.fft_flop_per_point * workload.ng *
                           std::log2(workload.ng);
  const double t_pair = (flop_pair / (machine.gpu_peak_flops * machine.fft_flop_eff) +
                         6.0 * 16.0 * workload.ng / (machine.gpu_hbm_bw * machine.kernel_bw_eff)) *
                        machine.fock_overhead;
  const double t_compute = pairs_per_band * t_pair;

  PipelineResult res;
  double comm_free = 0.0;     // when the network channel is next available
  double compute_free = 0.0;  // when the compute stream is next available
  std::vector<double> ready(nb, 0.0);

  for (std::size_t i = 0; i < nb; ++i) {
    // Broadcast band i. Without overlap the broadcast waits for all prior
    // compute (fully serialized schedule).
    double b0 = comm_free;
    if (!opt.overlap) b0 = std::max(b0, compute_free);
    const double b1 = b0 + t_bcast;
    res.events.push_back({PipelineEvent::Kind::kBcast, i, b0, b1});
    comm_free = b1;

    // Staging copy to the device. With CUDA-aware MPI (paper Fig. 2) the
    // copy synchronizes with the compute stream: it must wait for compute
    // to drain and blocks it while running.
    double s0 = b1;
    if (opt.sync_staging) s0 = std::max(s0, compute_free);
    const double s1 = s0 + t_stage;
    res.events.push_back({PipelineEvent::Kind::kStaging, i, s0, s1});
    if (opt.sync_staging) compute_free = std::max(compute_free, s1);
    comm_free = std::max(comm_free, s1);
    ready[i] = s1;

    // Compute slice for band i.
    const double c0 = std::max(compute_free, ready[i]);
    const double c1 = c0 + t_compute;
    res.events.push_back({PipelineEvent::Kind::kCompute, i, c0, c1});
    compute_free = c1;
  }

  res.total_time = compute_free;
  res.compute_busy = static_cast<double>(nb) * t_compute;
  res.comm_busy = static_cast<double>(nb) * (t_bcast + t_stage);
  res.exposed_comm = res.total_time - res.compute_busy;
  return res;
}

std::string render_timeline(const PipelineResult& result, std::size_t max_bands,
                            double seconds_per_char) {
  PWDFT_CHECK(seconds_per_char > 0.0, "timeline: bad scale");
  std::ostringstream os;
  auto lane = [&](PipelineEvent::Kind kind, char symbol, const char* label) {
    std::string row;
    for (const auto& e : result.events) {
      if (e.kind != kind || e.band >= max_bands) continue;
      const auto c0 = static_cast<std::size_t>(e.start / seconds_per_char);
      const auto c1 = std::max(c0 + 1, static_cast<std::size_t>(e.end / seconds_per_char));
      if (row.size() < c1) row.resize(c1, ' ');
      for (std::size_t c = c0; c < c1; ++c) row[c] = symbol;
    }
    os << label << " |" << row << "\n";
  };
  lane(PipelineEvent::Kind::kBcast, 'B', "net  ");
  lane(PipelineEvent::Kind::kStaging, 's', "stage");
  lane(PipelineEvent::Kind::kCompute, 'C', "gpu  ");
  return os.str();
}

}  // namespace pwdft::perf
