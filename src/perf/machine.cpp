#include "perf/machine.hpp"

// Calibration notes (values in machine.hpp):
//
// All scaling behaviour in the model is derived from hardware rates and the
// algorithm's operation counts (paper §7). Eight residual coefficients are
// fitted once against anchor rows of the paper's Table 1/2 for the 1536-atom
// silicon system and then held fixed for every other system size and GPU
// count:
//
//  - fft_flop_per_point (6.0): effective FLOP of a 3-D CUFFT per point per
//    log2(N); chosen so the per-step FLOP matches the paper's NVPROF count
//    of 3.87e16 within ~10%.
//  - fock_overhead (1.38): ratio of the measured per-pair Poisson-solve time
//    (Table 1, 36 GPUs: 90.99 s / (3072^2/36) pairs = 347 us) to the
//    bandwidth+FLOP lower bound (252 us).
//  - fock_band_fixed_s: per-band fixed cost visible in the 3072-GPU row
//    where each rank holds a single band.
//  - gemm_eff (0.25): from the residual-computation row (includes the
//    pack/unpack traffic around the GEMMs).
//  - allreduce_bw (0.55 GB/s): from the flat ~0.52-0.67 s overlap-matrix
//    Allreduce row (144 MB payload).
//  - nvlink_eff (0.43): from the Anderson-mixing CPU-GPU copy row.
//  - bcast_floor_* / bcast_tree_coef / bcast_hide_eff: from the Fock MPI row;
//    see model.cpp (fock_bcast_measured) for the functional form.
//  - cpu_core_fft_flops (1.1 GF/s): from the CPU reference (8874 s per step
//    on 3072 cores, ~95% Fock).

namespace pwdft::perf {}  // namespace pwdft::perf
