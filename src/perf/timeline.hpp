#pragma once

/// \file timeline.hpp
/// Event-level simulation of the Fock-exchange broadcast pipeline (Alg. 2
/// with the §3.2 step-5 overlap). This is the executable counterpart of the
/// paper's Fig. 2 profiling discussion: with CUDA-aware MPI_Bcast, Spectrum
/// MPI inserts synchronized host staging copies that break the overlap of
/// communication and computation; staging explicitly + broadcasting from
/// the host restores a clean two-channel pipeline.

#include <string>
#include <vector>

#include "perf/machine.hpp"
#include "perf/workload.hpp"

namespace pwdft::perf {

struct PipelineEvent {
  enum class Kind { kBcast, kStaging, kCompute };
  Kind kind;
  std::size_t band = 0;
  double start = 0.0;
  double end = 0.0;
};

struct PipelineOptions {
  bool overlap = true;          ///< prefetch next band during compute
  bool sync_staging = false;    ///< staging copy blocks the compute stream
                                ///< (the CUDA-aware MPI behaviour of Fig. 2)
  bool single_precision = true;
  std::size_t bands = 0;        ///< 0 = full workload band count
};

struct PipelineResult {
  std::vector<PipelineEvent> events;
  double total_time = 0.0;
  double compute_busy = 0.0;   ///< sum of compute-event durations
  double comm_busy = 0.0;      ///< sum of bcast + staging durations
  double exposed_comm = 0.0;   ///< total_time - compute_busy
  /// Fraction of communication hidden behind computation, in [0, 1].
  double overlap_efficiency() const {
    return comm_busy <= 0.0 ? 1.0
                            : std::max(0.0, 1.0 - exposed_comm / comm_busy);
  }
};

/// Simulates one Fock application's per-band schedule on two resources
/// (network channel, GPU compute stream) for one rank of `ngpu`.
PipelineResult simulate_fock_pipeline(const SummitMachine& machine, const Workload& workload,
                                      int ngpu, const PipelineOptions& opt);

/// ASCII Gantt rendering of the first `max_bands` bands (for the bench).
std::string render_timeline(const PipelineResult& result, std::size_t max_bands,
                            double seconds_per_char);

}  // namespace pwdft::perf
