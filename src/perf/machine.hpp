#pragma once

/// \file machine.hpp
/// Description of a Summit-like machine (paper §5) plus the small set of
/// calibrated efficiency factors the performance model uses. Hardware
/// numbers come straight from the paper; calibration factors are fitted
/// once against Table 1/2 anchor rows and documented in machine.cpp.

namespace pwdft::perf {

struct SummitMachine {
  // ----- hardware, paper §5 -----
  double gpu_peak_flops = 7.8e12;    ///< V100 double precision
  double gpu_hbm_bw = 900e9;         ///< bytes/s
  double nvlink_bw = 50e9;           ///< CPU<->GPU per GPU, bytes/s
  double nic_bw_per_socket = 12.5e9; ///< dual-rail EDR, per socket
  int gpus_per_node = 6;
  int ranks_per_socket = 3;          ///< paper: 3 MPI tasks per socket
  int cpu_cores_per_socket = 22;
  double cpu_socket_power_w = 190.0;
  double gpu_power_w = 300.0;
  /// Usable cores per node for the CPU version (paper: 3072 cores ~ 73 nodes).
  double cpu_cores_per_node_used = 42.0;

  // ----- measured efficiencies quoted in the paper (§7) -----
  double fft_flop_eff = 0.11;   ///< CUFFT fraction of peak
  double kernel_bw_eff = 0.90;  ///< custom kernels: fraction of HBM bandwidth
  double nic_utilization = 0.527;  ///< Bcast receive-side NIC utilization

  // ----- calibrated factors (see machine.cpp for the fit description) -----
  double fft_flop_per_point = 6.0;   ///< FLOP = c * N log2 N per 3-D FFT
  double fock_overhead = 1.38;       ///< launch/sync multiplier on pair solves
  double fock_band_fixed_s = 117e-6; ///< per-band fixed cost per apply (s)
  double batch_penalty = 2.5;        ///< band-by-band (unbatched) slowdown
  double gemm_eff = 0.25;            ///< effective GEMM efficiency incl. pack
  double allreduce_bw = 0.55e9;      ///< effective ring-allreduce rate (B/s)
  double nvlink_eff = 0.43;          ///< achieved fraction of NVLink
  double bcast_floor_36gpu_s = 0.71; ///< per-apply Bcast floor at 36 GPUs
  double bcast_floor_exp = 0.45;     ///< floor growth exponent in #GPUs
  double bcast_tree_coef = 0.13;     ///< extra per log2(P/768) beyond 768 GPUs
  double bcast_hide_eff = 0.80;      ///< fraction of compute usable to hide comm
  double cpu_core_fft_flops = 1.31e9; ///< effective per-core FFT rate (POWER9)
  double others_base_s = 1.1;        ///< non-scaling "others" per SCF (Si1536)
  double others_per_gpu_s = 41.4;    ///< scaled part: this value / #GPUs
  double others_log_s = 0.06;        ///< slow growth with log2(#GPUs)
  double memcpy_stage_gpu_s = 800.0; ///< Fock/residual staging, GPU*s per step
  double memcpy_fixed_s = 1.5;       ///< non-scaling memcpy per step

  /// Effective per-rank Bcast receive bandwidth (paper §7 measures 2.2 GB/s).
  double nic_rank_bw() const {
    return nic_bw_per_socket * nic_utilization / ranks_per_socket;
  }

  static SummitMachine defaults() { return {}; }
};

}  // namespace pwdft::perf
