#include "perf/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pwdft::perf {

namespace {
double log2d(double x) { return std::log2(x); }
}  // namespace

double SummitModel::fft_flop(double n) const {
  return m_.fft_flop_per_point * n * log2d(n);
}

double SummitModel::fock_compute_per_apply(int ngpu, bool batched) const {
  PWDFT_CHECK(ngpu >= 1, "model: ngpu must be positive");
  const double pairs = static_cast<double>(w_.ne) * static_cast<double>(w_.ne) /
                       static_cast<double>(ngpu);
  // Per pair: forward + inverse FFT on the wavefunction grid plus the
  // pointwise kernels (pair density, kernel multiply, accumulation).
  const double t_flop = 2.0 * fft_flop(w_.ng) / (m_.gpu_peak_flops * m_.fft_flop_eff);
  const double t_bw = 6.0 * 16.0 * w_.ng / (m_.gpu_hbm_bw * m_.kernel_bw_eff);
  double t_pair = (t_flop + t_bw) * m_.fock_overhead;
  double t_fixed = m_.fock_band_fixed_s;
  if (!batched) {
    // Band-by-band launches cannot saturate HBM and multiply launch counts
    // (paper §3.2 step 2).
    t_pair *= m_.batch_penalty;
    t_fixed *= 4.0;
  }
  return pairs * t_pair + static_cast<double>(w_.ne) * t_fixed;
}

double SummitModel::fock_bcast_raw_per_apply(int ngpu, bool single_precision) const {
  // Every rank receives all Ne wavefunctions per application (paper §7:
  // 15.36 GB per node at single precision for Si1536).
  const double volume = w_.fock_bcast_bytes_per_rank(single_precision);
  const double tree =
      1.0 + std::max(0.0, m_.bcast_tree_coef * log2d(static_cast<double>(ngpu) / 768.0));
  return volume / m_.nic_rank_bw() * tree;
}

double SummitModel::fock_bcast_measured_per_apply(int ngpu) const {
  // Two regimes (fitted against the Table 1 "Fock exchange operator MPI"
  // row, see machine.cpp): a software/latency floor that grows slowly with
  // the communicator size, and the bandwidth term left exposed after the
  // prefetch pipeline hides up to bcast_hide_eff of the compute time.
  const double floor = m_.bcast_floor_36gpu_s * (static_cast<double>(w_.ne) / 3072.0) *
                       std::pow(static_cast<double>(ngpu) / 36.0, m_.bcast_floor_exp);
  const double raw = fock_bcast_raw_per_apply(ngpu, /*single_precision=*/true);
  const double hidden = m_.bcast_hide_eff * fock_compute_per_apply(ngpu);
  return std::max(floor, raw - hidden);
}

double SummitModel::local_semilocal_per_apply(int ngpu) const {
  // Per band: two dense-grid FFTs, the pointwise potential multiply, and
  // the sparse nonlocal projectors (bandwidth bound).
  const double t_fft = 2.0 * fft_flop(w_.ndense) / (m_.gpu_peak_flops * m_.fft_flop_eff);
  const double t_bw = 6.0 * 16.0 * w_.ndense / (m_.gpu_hbm_bw * m_.kernel_bw_eff);
  const double per_band = (t_fft + t_bw) * m_.fock_overhead;
  return static_cast<double>(w_.ne) / static_cast<double>(ngpu) * per_band;
}

ScfBreakdown SummitModel::scf_breakdown(int ngpu) const {
  PWDFT_CHECK(ngpu >= 1, "model: ngpu must be positive");
  const double np = ngpu;
  const double ne = static_cast<double>(w_.ne);
  ScfBreakdown b;

  b.fock_comp = fock_compute_per_apply(ngpu);
  b.fock_mpi = fock_bcast_measured_per_apply(ngpu);
  b.local_semilocal = local_semilocal_per_apply(ngpu);

  // Residual (Alg. 3): 4 wavefunction transposes (3 in + 1 out, single
  // precision), the overlap-matrix Allreduce, and two GEMMs + BLAS1.
  const double a2av_bytes = 4.0 * w_.ng * ne * 8.0 / np;
  b.resid_alltoallv = a2av_bytes / m_.nic_rank_bw();
  const double s_bytes = ne * ne * 16.0;
  b.resid_allreduce = 2.0 * s_bytes / m_.allreduce_bw * (0.8 + 0.04 * log2d(np));
  const double gemm_flop = 2.0 * 8.0 * w_.ng * ne * ne / np;
  b.resid_comp = gemm_flop / (m_.gpu_peak_flops * m_.gemm_eff);

  // Anderson mixing: per band, up to `depth` history copies move over
  // NVLink (paper §3.4 keeps the history in host memory), plus the small
  // least-squares work (bandwidth bound on the overlap evaluations).
  const double nb_loc = ne / np;
  const double and_bytes = 2.0 * nb_loc * static_cast<double>(w_.anderson_depth) * w_.ng * 16.0;
  b.anderson_memcpy = and_bytes / (m_.nvlink_bw * m_.nvlink_eff);
  b.anderson_comp = 82.8 / np * (ne / 3072.0) * (w_.ng / 648000.0);

  // Density: one dense FFT + accumulation per band, then a 8*Ndense-byte
  // Allreduce (paper: ~40 MB for Si1536).
  const double dens_band = (fft_flop(w_.ndense) / (m_.gpu_peak_flops * m_.fft_flop_eff) +
                            3.0 * 16.0 * w_.ndense / (m_.gpu_hbm_bw * m_.kernel_bw_eff));
  b.density_comp = ne / np * dens_band;
  b.density_allreduce = 2.0 * w_.ndense * 8.0 / m_.allreduce_bw * (0.8 + 0.04 * log2d(np));

  // "Others" (paper §3.4): Hartree/XC and density-variable broadcasts,
  // parallelized on the CPU side; a flat part, a 1/P part, slow log growth.
  const double dens_scale = w_.ndense / 5184000.0;
  b.others = m_.others_base_s * dens_scale + m_.others_per_gpu_s * dens_scale / np +
             m_.others_log_s * log2d(np);
  return b;
}

double SummitModel::ptcn_step_total(int ngpu) const {
  const ScfBreakdown b = scf_breakdown(ngpu);
  // 22 SCF iterations + 2 extra Fock-bearing H applications (initial
  // residual Rn and the energy evaluation) + orthogonalization.
  const double extra_applies = static_cast<double>(w_.fock_applies - w_.nscf);
  const double ortho = 0.017 + 0.10;  // Cholesky (paper: 0.017 s) + rotation
  return w_.nscf * b.per_scf() + extra_applies * b.hpsi_total() + ortho;
}

StepCommBreakdown SummitModel::comm_breakdown(int ngpu) const {
  const ScfBreakdown b = scf_breakdown(ngpu);
  StepCommBreakdown c;
  const double napply = static_cast<double>(w_.fock_applies);
  const double np = ngpu;

  c.bcast = napply * fock_bcast_measured_per_apply(ngpu) +
            1.5 * (w_.ndense / 5184000.0);  // density-variable broadcasts
  c.alltoallv = w_.nscf * b.resid_alltoallv + 2.0 * (4.0 * w_.ng * static_cast<double>(w_.ne) *
                                                     8.0 / np / m_.nic_rank_bw());
  c.allreduce = w_.nscf * (b.resid_allreduce + b.density_allreduce);
  c.allgatherv = 1.0 * (w_.ndense / 5184000.0) * (0.5 + 0.1 * log2d(np));
  c.memcpy = w_.nscf * b.anderson_memcpy + m_.memcpy_stage_gpu_s * (w_.ne / 3072.0) *
                                               (w_.ng / 648000.0) / np +
             m_.memcpy_fixed_s;
  c.compute = ptcn_step_total(ngpu) - c.mpi_total() - c.memcpy;
  return c;
}

double SummitModel::rk4_50as_total(int ngpu) const {
  // RK4 with dt = 0.5 as: 100 steps per 50 as, 4 H applications each,
  // density/potential rebuilt per stage. The RK4 code path predates the
  // communication optimizations: double-precision broadcasts, no overlap.
  const ScfBreakdown b = scf_breakdown(ngpu);
  const double nsteps = w_.dt_as / w_.rk4_dt_as;
  const double per_apply = fock_compute_per_apply(ngpu) + local_semilocal_per_apply(ngpu) +
                           fock_bcast_raw_per_apply(ngpu, /*single_precision=*/false);
  const double per_stage_misc = b.density_total();
  return nsteps * (4.0 * (per_apply + per_stage_misc) + b.others);
}

double SummitModel::cpu_step_total(int ncores) const {
  PWDFT_CHECK(ncores >= 1, "model: ncores must be positive");
  // Fock dominates (~95%); the remainder is scaled from the paper's CPU run.
  const double pairs = static_cast<double>(w_.ne) * static_cast<double>(w_.ne) /
                       static_cast<double>(ncores);
  const double t_pair = 2.0 * fft_flop(w_.ng) / m_.cpu_core_fft_flops;
  const double fock_per_apply = pairs * t_pair;
  const double napply = static_cast<double>(w_.fock_applies);
  return napply * fock_per_apply / 0.95;
}

double SummitModel::total_flop_per_step() const {
  const double ne = static_cast<double>(w_.ne);
  const double napply = static_cast<double>(w_.fock_applies);
  const double fock = napply * ne * ne * (2.0 * fft_flop(w_.ng) + 6.0 * 2.0 * w_.ng);
  const double local = napply * ne * (2.0 * fft_flop(w_.ndense) + 6.0 * 2.0 * w_.ndense);
  const double gemm = w_.nscf * 2.0 * 8.0 * w_.ng * ne * ne;
  const double density = (w_.nscf + 2.0) * ne * (fft_flop(w_.ndense) + 2.0 * w_.ndense);
  return fock + local + gemm + density;
}

double SummitModel::gpu_power_w(int ngpu) const {
  const int nodes = (ngpu + m_.gpus_per_node - 1) / m_.gpus_per_node;
  return nodes * (m_.gpus_per_node * m_.gpu_power_w + 2.0 * m_.cpu_socket_power_w);
}

int SummitModel::cpu_nodes(int ncores) const {
  return static_cast<int>(std::lround(static_cast<double>(ncores) / m_.cpu_cores_per_node_used));
}

double SummitModel::cpu_power_w(int ncores) const {
  return cpu_nodes(ncores) * 2.0 * m_.cpu_socket_power_w;
}

double SummitModel::anderson_memory_gb_per_rank(int ngpu) const {
  const double nb_loc = static_cast<double>(w_.ne) / static_cast<double>(ngpu);
  // depth copies of the local wavefunctions, double precision complex.
  return static_cast<double>(w_.anderson_depth) * nb_loc * w_.ng * 16.0 / 1e9;
}

SummitModel::MemoryBreakdown SummitModel::memory_breakdown(int ngpu) const {
  MemoryBreakdown m;
  const double nb_loc = static_cast<double>(w_.ne) / static_cast<double>(ngpu);
  const double wfc_bytes = w_.ng * 16.0;
  // Psi, H Psi, Psi_half, residual (+ the real-space block in the Fock
  // apply) — five wavefunction-sized blocks of local bands.
  m.wavefunctions_gpu = 5.0 * nb_loc * wfc_bytes / 1e9;
  // One broadcast band (double-buffered) + an 8-wide pair-density batch on
  // the wavefunction grid.
  m.fock_buffers_gpu = (2.0 + 8.0) * w_.ng * 16.0 / 1e9;
  // Paper §3.2: 432 MB of nonlocal projectors for 1536 atoms, replicated on
  // every rank — 281 kB per atom.
  m.projectors_gpu = 432e6 / 1536.0 * static_cast<double>(w_.natoms) / 1e9;
  // rho, V_H, V_xc, V_loc, eps_xc, workspace on the dense grid, replicated
  // per rank (paper §3.4 keeps density-related variables on each task).
  m.density_vars_gpu = 6.0 * w_.ndense * 8.0 / 1e9;
  m.anderson_host = 2.0 * anderson_memory_gb_per_rank(ngpu);  // Psi & residual history
  return m;
}

std::vector<FockStage> SummitModel::fock_stages(int ngpu, int cpu_cores) const {
  std::vector<FockStage> stages;
  const double cpu = cpu_step_total(cpu_cores) * 0.95 / static_cast<double>(w_.fock_applies);
  stages.push_back({"CPU (" + std::to_string(cpu_cores) + " cores)", cpu});

  // Staging copies through the host before CUDA-aware MPI (step 3) move the
  // received volume once more over NVLink.
  const double staging =
      w_.fock_bcast_bytes_per_rank(false) / (m_.nvlink_bw * m_.nvlink_eff);

  const double band_by_band = fock_compute_per_apply(ngpu, /*batched=*/false) +
                              fock_bcast_raw_per_apply(ngpu, false) + staging;
  stages.push_back({"GPU band-by-band", band_by_band});

  const double batched = fock_compute_per_apply(ngpu, /*batched=*/true) +
                         fock_bcast_raw_per_apply(ngpu, false) + staging;
  stages.push_back({"+ batched FFT", batched});

  const double cuda_aware = fock_compute_per_apply(ngpu) + fock_bcast_raw_per_apply(ngpu, false);
  stages.push_back({"+ CUDA-aware MPI", cuda_aware});

  const double sp = fock_compute_per_apply(ngpu) + fock_bcast_raw_per_apply(ngpu, true);
  stages.push_back({"+ single-precision MPI", sp});

  const double overlap = fock_compute_per_apply(ngpu) + fock_bcast_measured_per_apply(ngpu);
  stages.push_back({"+ overlap comm/compute", overlap});
  return stages;
}

double job_cost(const SummitMachine& m, const Workload& w, int steps) {
  return SummitModel(m, w).ptcn_step_total(1) * static_cast<double>(std::max(steps, 1));
}

}  // namespace pwdft::perf
