#include "perf/report.hpp"

#include <cmath>

namespace pwdft::perf {

std::vector<int> paper_gpu_counts() { return {36, 72, 144, 288, 384, 768, 1536, 3072}; }

Table table1(const SummitModel& model, const std::vector<int>& gpus, int cpu_cores) {
  std::vector<std::string> header{"component"};
  for (int g : gpus) header.push_back(std::to_string(g));
  Table t(header);

  std::vector<ScfBreakdown> b;
  b.reserve(gpus.size());
  for (int g : gpus) b.push_back(model.scf_breakdown(g));

  auto row = [&](const std::string& name, auto getter, int prec = 3) {
    t.add_row();
    t.add_cell(name);
    for (std::size_t i = 0; i < gpus.size(); ++i) t.add_cell(getter(b[i], gpus[i]), prec);
  };

  row("Fock exchange MPI", [](const ScfBreakdown& x, int) { return x.fock_mpi; });
  row("Fock exchange computation", [](const ScfBreakdown& x, int) { return x.fock_comp; });
  row("Fock exchange total", [](const ScfBreakdown& x, int) { return x.fock_total(); });
  row("Local and semi-local", [](const ScfBreakdown& x, int) { return x.local_semilocal; });
  row("HPsi total", [](const ScfBreakdown& x, int) { return x.hpsi_total(); });
  row("Wavefunction Alltoallv", [](const ScfBreakdown& x, int) { return x.resid_alltoallv; });
  row("<Psi|Psi> Allreduce", [](const ScfBreakdown& x, int) { return x.resid_allreduce; });
  row("Residual computation", [](const ScfBreakdown& x, int) { return x.resid_comp; });
  row("Residual total", [](const ScfBreakdown& x, int) { return x.resid_total(); });
  row("Anderson memcpy", [](const ScfBreakdown& x, int) { return x.anderson_memcpy; });
  row("Anderson computation", [](const ScfBreakdown& x, int) { return x.anderson_comp; });
  row("Anderson total", [](const ScfBreakdown& x, int) { return x.anderson_total(); });
  row("Density computation", [](const ScfBreakdown& x, int) { return x.density_comp; });
  row("Density Allreduce", [](const ScfBreakdown& x, int) { return x.density_allreduce; });
  row("Density total", [](const ScfBreakdown& x, int) { return x.density_total(); });
  row("Others", [](const ScfBreakdown& x, int) { return x.others; });
  row("per SCF time", [](const ScfBreakdown& x, int) { return x.per_scf(); }, 2);

  const double cpu_total = model.cpu_step_total(cpu_cores);
  t.add_row();
  t.add_cell("Total time");
  for (int g : gpus) t.add_cell(model.ptcn_step_total(g), 1);
  t.add_row();
  t.add_cell("Total speedup vs CPU");
  for (int g : gpus) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << cpu_total / model.ptcn_step_total(g) << "x";
    t.add_cell(os.str());
  }
  t.add_row();
  t.add_cell("HPsi percentage");
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    std::ostringstream os;
    const double frac = (model.workload().fock_applies *
                         b[i].hpsi_total()) /
                        model.ptcn_step_total(gpus[i]) * 100.0;
    os << std::fixed << std::setprecision(1) << frac << "%";
    t.add_cell(os.str());
  }
  return t;
}

Table table2(const SummitModel& model, const std::vector<int>& gpus) {
  std::vector<std::string> header{"per-step time (s)"};
  for (int g : gpus) header.push_back(std::to_string(g));
  Table t(header);

  std::vector<StepCommBreakdown> c;
  c.reserve(gpus.size());
  for (int g : gpus) c.push_back(model.comm_breakdown(g));

  auto row = [&](const std::string& name, auto getter) {
    t.add_row();
    t.add_cell(name);
    for (const auto& x : c) t.add_cell(getter(x), 2);
  };
  row("CPU-GPU memory copy", [](const StepCommBreakdown& x) { return x.memcpy; });
  row("MPI_Alltoallv", [](const StepCommBreakdown& x) { return x.alltoallv; });
  row("MPI_Allreduce", [](const StepCommBreakdown& x) { return x.allreduce; });
  row("MPI_Bcast", [](const StepCommBreakdown& x) { return x.bcast; });
  row("MPI_AllGatherv", [](const StepCommBreakdown& x) { return x.allgatherv; });
  row("MPI total", [](const StepCommBreakdown& x) { return x.mpi_total(); });
  row("Computational time", [](const StepCommBreakdown& x) { return x.compute; });
  return t;
}

Table fig3(const SummitModel& model, int ngpu, int cpu_cores) {
  Table t({"stage", "Fock time per SCF (s)", "speedup vs CPU"});
  const auto stages = model.fock_stages(ngpu, cpu_cores);
  const double cpu = stages.front().seconds;
  for (const auto& s : stages) {
    t.add_row();
    t.add_cell(s.name);
    t.add_cell(s.seconds, 2);
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << cpu / s.seconds << "x";
    t.add_cell(os.str());
  }
  return t;
}

Table fig6(const SummitModel& model, const std::vector<int>& gpus) {
  Table t({"GPUs", "RK4 (s per 50 as)", "PT-CN (s per 50 as)", "PT-CN speedup"});
  for (int g : gpus) {
    const double rk4 = model.rk4_50as_total(g);
    const double pt = model.ptcn_step_total(g);
    t.add_row();
    t.add_cell(g);
    t.add_cell(rk4, 1);
    t.add_cell(pt, 1);
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << rk4 / pt << "x";
    t.add_cell(os.str());
  }
  return t;
}

Table fig7a(const SummitModel& model, const std::vector<int>& gpus) {
  Table t({"GPUs", "total", "HPsi", "residual", "anderson", "density", "others", "ideal"});
  const double base = model.ptcn_step_total(gpus.front());
  for (int g : gpus) {
    const auto b = model.scf_breakdown(g);
    const int n = model.workload().nscf;
    t.add_row();
    t.add_cell(g);
    t.add_cell(model.ptcn_step_total(g), 1);
    t.add_cell((n + 2) * b.hpsi_total(), 1);
    t.add_cell(n * b.resid_total(), 2);
    t.add_cell(n * b.anderson_total(), 2);
    t.add_cell(n * b.density_total(), 2);
    t.add_cell(n * b.others, 2);
    t.add_cell(base * gpus.front() / g, 1);
  }
  return t;
}

Table fig7b(const SummitModel& model, const std::vector<int>& gpus) {
  Table t({"GPUs", "Fock comp", "local", "residual comp", "anderson comp", "density comp"});
  for (int g : gpus) {
    const auto b = model.scf_breakdown(g);
    t.add_row();
    t.add_cell(g);
    t.add_cell(b.fock_comp, 2);
    t.add_cell(b.local_semilocal, 3);
    t.add_cell(b.resid_comp, 3);
    t.add_cell(b.anderson_comp, 3);
    t.add_cell(b.density_comp, 4);
  }
  return t;
}

Table fig8(const SummitMachine& machine, const std::vector<std::size_t>& natoms) {
  Table t({"atoms", "GPUs", "time per 50 as (s)", "ideal O(N^2)"});
  // Anchor the ideal-scaling line at the largest system, as in the paper.
  const std::size_t n_ref = natoms.back();
  SummitModel ref(machine, Workload::silicon(n_ref));
  const double t_ref = ref.ptcn_step_total(static_cast<int>(n_ref / 2));
  for (std::size_t n : natoms) {
    SummitModel m(machine, Workload::silicon(n));
    const int g = static_cast<int>(n / 2);
    t.add_row();
    t.add_cell(n);
    t.add_cell(g);
    t.add_cell(m.ptcn_step_total(g), 2);
    const double ratio = static_cast<double>(n) / static_cast<double>(n_ref);
    t.add_cell(t_ref * ratio * ratio, 2);
  }
  return t;
}

Table fig9(const SummitModel& model, const std::vector<int>& gpus) {
  Table t({"GPUs", "HPsi", "residual", "density", "anderson", "others", "per-SCF total"});
  for (int g : gpus) {
    const auto b = model.scf_breakdown(g);
    t.add_row();
    t.add_cell(g);
    t.add_cell(b.hpsi_total(), 2);
    t.add_cell(b.resid_total(), 2);
    t.add_cell(b.density_total(), 3);
    t.add_cell(b.anderson_total(), 3);
    t.add_cell(b.others, 2);
    t.add_cell(b.per_scf(), 2);
  }
  return t;
}

Table fig10(const SummitModel& model, const std::vector<int>& gpus) {
  Table t({"GPUs", "MPI Bcast", "memcpy", "Alltoallv", "Allreduce", "compute"});
  for (int g : gpus) {
    const auto c = model.comm_breakdown(g);
    t.add_row();
    t.add_cell(g);
    t.add_cell(c.bcast, 1);
    t.add_cell(c.memcpy, 1);
    t.add_cell(c.alltoallv, 2);
    t.add_cell(c.allreduce, 2);
    t.add_cell(c.compute, 1);
  }
  return t;
}

Table power_comparison(const SummitModel& model, int ngpu, int cpu_cores) {
  Table t({"configuration", "nodes", "power (W)", "step time (s)", "speedup"});
  const double cpu_time = model.cpu_step_total(cpu_cores);
  const double gpu_time = model.ptcn_step_total(ngpu);
  const int gpu_nodes = (ngpu + 5) / 6;
  t.add_row();
  t.add_cell("CPU, " + std::to_string(cpu_cores) + " cores");
  t.add_cell(model.cpu_nodes(cpu_cores));
  t.add_cell(model.cpu_power_w(cpu_cores), 0);
  t.add_cell(cpu_time, 1);
  t.add_cell("1.0x");
  t.add_row();
  t.add_cell("GPU, " + std::to_string(ngpu) + " GPUs");
  t.add_cell(gpu_nodes);
  t.add_cell(model.gpu_power_w(ngpu), 0);
  t.add_cell(gpu_time, 1);
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << cpu_time / gpu_time << "x";
  t.add_cell(os.str());
  return t;
}

}  // namespace pwdft::perf
