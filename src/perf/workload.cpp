#include "perf/workload.hpp"

#include "common/check.hpp"

namespace pwdft::perf {

Workload Workload::silicon(std::size_t natoms) {
  PWDFT_CHECK(natoms >= 8 && natoms % 8 == 0, "Workload: silicon systems come in 8-atom cells");
  Workload w;
  w.natoms = natoms;
  w.ne = 2 * natoms;  // 4 valence electrons per atom, doubly occupied bands
  // 15 grid points per 10.26-Bohr cell edge at Ecut = 10 Ha => 15^3 * ncells.
  w.ng = 3375.0 * static_cast<double>(natoms) / 8.0;
  w.ndense = 8.0 * w.ng;  // density grid doubles each dimension
  return w;
}

}  // namespace pwdft::perf
