#pragma once

/// \file exec.hpp
/// Process-wide execution engine: a persistent fork-join thread pool plus a
/// per-thread workspace arena of reusable buffers.
///
/// The paper's performance story (§3.2) is batching the O(Ne^2) Poisson-like
/// FFT solves of the Fock operator and overlapping them with communication.
/// On this CPU substrate the analogue is (a) executing batch members across a
/// persistent pool instead of a serial loop and (b) never allocating in the
/// band loops: every hot-path buffer is drawn from a thread-local arena that
/// grows monotonically and is reused across calls.
///
/// Concurrency contract (the full contract, including the determinism
/// guarantee and the fixed reduction orders used by the band loops, is
/// documented in docs/threading.md):
///   - parallel_for is a blocking fork-join: it returns after fn has covered
///     [0, n) exactly once. Chunks are claimed dynamically, but every index
///     is processed by exactly one thread running the same serial code, so
///     results are bit-identical to a serial loop whenever iterations write
///     disjoint data.
///   - parallel_for may be called concurrently from several threads (e.g.
///     multiple ThreadComm ranks sharing the process): one caller wins the
///     pool, the others run their loop inline. Nested parallel_for inside a
///     worker also runs inline. Either way the semantics are unchanged.
///   - Reductions must never accumulate in chunk-claim order (which depends
///     on scheduling): band loops write per-band or per-chunk partials into
///     disjoint buffers and reduce them in a fixed, thread-count-independent
///     order, keeping results bit-identical at any engine width.
///   - run_async / TaskGroup submit tasks to an elastic helper lane that may
///     block (collectives) without starving compute workers; used to overlap
///     communication (orbital broadcasts, wavefunction transposes) with the
///     Fock band loop (paper §3.2 step 5). A parallel_for issued from an
///     async task always runs inline: background work never wins the pool
///     away from the compute it overlaps with.
///   - workspace() returns a thread-local arena; buffers are valid until the
///     same slot is requested again on the same thread. Distinct slots never
///     alias, so nested routines are safe as long as they use their own slots.
///     A task submitted to the async lane sees the *helper thread's* arena,
///     never the submitter's.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace pwdft::exec {

class TaskGraph;

/// Persistent fork-join pool. `threads` counts the caller: a pool of size 1
/// has no workers and runs everything inline.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency including the calling thread (>= 1).
  std::size_t size() const { return workers_.size() + 1; }

  using RangeFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  /// Runs fn(ctx, begin, end) over a disjoint cover of [0, n). Blocking.
  /// `grain` is the minimum chunk length (tune so a chunk amortizes the
  /// dispatch cost). Allocation-free on the hot path. If a chunk throws, the
  /// first exception is rethrown on the calling thread after all threads
  /// quiesce (remaining chunks may be skipped).
  void parallel_for_raw(std::size_t n, RangeFn fn, void* ctx, std::size_t grain = 1);

  template <class F>
  void parallel_for(std::size_t n, F&& f, std::size_t grain = 1) {
    using Fn = std::remove_reference_t<F>;
    parallel_for_raw(
        n,
        [](void* ctx, std::size_t b, std::size_t e) { (*static_cast<Fn*>(ctx))(b, e); },
        const_cast<void*>(static_cast<const void*>(&f)), grain);
  }

  /// Enqueues a task on the pool's async lane. Used for communication
  /// prefetch: tasks may block (e.g. on a collective) without starving the
  /// compute workers. The lane grows one persistent helper thread per
  /// concurrently pending task (several ThreadComm ranks may each park a
  /// blocking broadcast here at once), and helpers are cached for reuse, so
  /// the steady state spawns no threads.
  std::future<void> run_async(std::function<void()> task);

  /// Executes a sealed TaskGraph: one wake of the pool, workers claim ready
  /// nodes until the graph drains. Falls back to a serial in-order run in
  /// exactly the situations parallel_for runs inline (no workers, nested,
  /// async lane, another caller owns the pool). Normally called through
  /// TaskGraph::replay.
  void run_graph(TaskGraph& graph, void* ctx);

  /// Dispatch instrumentation: pool-backed jobs started since construction
  /// (inline/serial executions do not count). A fused operator pipeline
  /// shows up as exactly one graph job and zero range jobs per call —
  /// tests/test_exec.cpp pins the one-wake contract through these.
  std::uint64_t range_jobs() const { return range_jobs_.load(std::memory_order_relaxed); }
  std::uint64_t graph_jobs() const { return graph_jobs_.load(std::memory_order_relaxed); }

 private:
  void worker_loop();
  void async_loop();
  void run_chunks();

  // Job descriptor, mutated only under wake_mutex_ while job_active_ is
  // false; read by workers only between their in_flight_ bracket. A job is
  // either a chunked range (fn_/ctx_/n_, graph_ == nullptr) or a task-graph
  // replay (graph_ != nullptr). A chunk that throws stores the first
  // exception in job_error_ (under wake_mutex_) and stops further claims;
  // the caller rethrows it after quiescence (graph jobs store errors in the
  // graph itself).
  TaskGraph* graph_ = nullptr;
  RangeFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  std::size_t nchunks_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> range_jobs_{0};
  std::atomic<std::uint64_t> graph_jobs_{0};
  std::exception_ptr job_error_;

  std::mutex job_mutex_;  ///< serializes parallel_for callers
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::uint64_t generation_ = 0;
  bool job_active_ = false;
  int in_flight_ = 0;
  bool stop_ = false;

  std::vector<std::thread> workers_;

  std::vector<std::thread> async_threads_;
  std::mutex async_mutex_;
  std::condition_variable async_cv_;
  std::deque<std::packaged_task<void()>> async_queue_;
  std::size_t async_idle_ = 0;  ///< helpers parked in wait
  bool async_stop_ = false;
};

/// A persistent, replayable DAG of fixed work nodes — the dispatch engine
/// for pipelines that re-execute an identical stage structure many times
/// (the batched FFT axis passes, the fused sphere<->grid transforms, and
/// the whole-operator pipelines of fft::Fft3D::run_pipeline: Hamiltonian
/// apply, density accumulation, Fock pair solves). Nodes are general
/// compute payloads, not FFT-specific: anything expressible as "serial
/// code against ctx + a fixed payload word" can be a node, including
/// interior (mid-graph) stages between FFT passes.
///
/// Motivation: a multi-stage pipeline built from parallel_for calls pays one
/// pool wake plus one full barrier per stage, every call. A TaskGraph is
/// built once (nodes + edges), sealed, and then replayed arbitrarily often:
/// each replay wakes the pool exactly once, workers claim nodes from a
/// pre-sized ready ring as their dependency counters drain, and successive
/// stages of independent chains overlap instead of meeting at global
/// barriers. Replay performs no heap allocation and no range partitioning —
/// the node layout is fixed at seal() time.
///
/// Build phase (single-threaded):
///   - add_node(fn) appends a node; ids are assigned in call order.
///   - add_edge(before, after) requires before < after, so the id order is a
///     topological order by construction (no cycles possible) and the serial
///     fallback can simply run nodes in id order.
///   - seal() freezes the graph (dedupes edges, builds the successor table,
///     allocates the replay state). After seal() the graph is immutable.
///
/// Replay:
///   - replay(ctx) executes every node exactly once, respecting edges; `ctx`
///     is passed to each node, so one graph serves many data sets.
///   - Determinism: like parallel_for, every node is the same serial code at
///     any engine width; nodes that run concurrently must write disjoint
///     data. Scheduling order varies, results do not (docs/threading.md).
///   - Re-entrancy matches parallel_for: a replay from inside a worker, from
///     the async lane, or while another thread owns the pool runs the nodes
///     serially in id order — identical results either way. Two threads may
///     replay the *same* graph concurrently (with their own ctx): at most
///     one wins the pool, the rest run serially; node callables must
///     therefore be stateless apart from ctx and thread-local workspace.
///   - A node that throws: remaining nodes may be skipped, the first
///     exception is rethrown on the replaying caller, and the graph stays
///     reusable (the next replay resets all state).
class TaskGraph {
 public:
  using NodeId = std::uint32_t;
  using NodeFn = std::function<void(void* ctx)>;
  /// Raw-pointer node form: fn(ctx, payload) with a fixed 64-bit payload
  /// frozen at build time. Avoids a std::function allocation per node —
  /// graph builders that stamp out many homogeneous nodes (per-batch hook
  /// nodes, gates) pass one static trampoline plus a packed payload
  /// (e.g. stage << 32 | batch) instead of N closures.
  using RawNodeFn = void (*)(void* ctx, std::uint64_t payload);

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Appends a node (build phase). Returns its id.
  NodeId add_node(NodeFn fn);
  /// Appends a raw-pointer node carrying `payload` (build phase).
  NodeId add_node(RawNodeFn fn, std::uint64_t payload);
  /// Appends an empty gate node depending on every id in `preds`: the
  /// all-to-all join between consecutive stages of one pipeline chain.
  NodeId add_gate(std::span<const NodeId> preds);
  /// Declares that `before` must complete before `after` starts (build
  /// phase). Requires before < after; duplicate edges are deduped at seal().
  void add_edge(NodeId before, NodeId after);
  /// Freezes the graph and allocates the replay state. Required before
  /// replay(); no further add_node/add_edge afterwards.
  void seal();
  bool sealed() const { return sealed_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Width of the widest dependency level (computed at seal()): an upper
  /// bound on how many nodes can ever be runnable at once, used to cap how
  /// many workers a replay wakes.
  std::size_t max_parallelism() const { return max_parallelism_; }

  /// Executes every node once, respecting edges. Blocking; see class docs.
  void replay(void* ctx = nullptr);

 private:
  friend class ThreadPool;
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  /// Resets counters/ring and publishes the roots (caller of a pool-backed
  /// replay, before waking workers).
  void reset_replay(void* ctx);
  /// Claim-execute loop run by the replaying caller and every woken worker.
  void work();
  void exec_node(std::uint32_t id);
  /// Serial fallback: runs nodes in id order (a topological order) against
  /// `ctx` without touching the shared replay state.
  void run_serial(void* ctx);
  std::exception_ptr take_error();

  struct Node {
    NodeFn fn;                     ///< closure form (empty when raw is set)
    RawNodeFn raw = nullptr;       ///< raw form: raw(ctx, payload)
    std::uint64_t payload = 0;
    std::uint32_t deps = 0;        ///< in-edge count (init value of remaining_)
    std::uint32_t succ_begin = 0;  ///< CSR range into succ_
    std::uint32_t succ_end = 0;
  };
  static void invoke(Node& nd, void* ctx) { nd.raw ? nd.raw(ctx, nd.payload) : nd.fn(ctx); }
  std::vector<Node> nodes_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;  ///< build buffer
  std::vector<std::uint32_t> succ_;
  std::vector<std::uint32_t> roots_;
  // Replay state (valid only during a pool-backed replay, which the pool's
  // job mutex serializes): remaining_ holds per-node outstanding dependency
  // counts; ready_ is a one-shot MPMC ring — every node is pushed exactly
  // once when its count drains, so capacity num_nodes() suffices, claim
  // slots are handed out by fetch_add, and a claimed-but-unpublished slot is
  // awaited by spinning (bounded: its publisher is already executing).
  std::unique_ptr<std::atomic<std::uint32_t>[]> remaining_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> ready_;
  std::atomic<std::uint32_t> push_{0};
  std::atomic<std::uint32_t> claim_{0};
  std::atomic<bool> cancel_{false};
  void* ctx_ = nullptr;
  std::exception_ptr error_;  ///< guarded by error_mutex_
  std::mutex error_mutex_;
  std::size_t max_parallelism_ = 0;
  bool sealed_ = false;
};

/// Dependency handle over tasks submitted to the engine's async lane: the
/// unit of pipelining for communication/compute overlap (paper §3.2 step 5).
/// Typical shape:
///
///   exec::TaskGroup tg;
///   tg.run([&] { transpose.band_to_g(overlap_comm, psi, psi_g, sp); });
///   ham.apply(psi, hpsi, comm);   // Fock band loop runs concurrently
///   tg.wait();                    // psi_g is ready past this point
///
/// Tasks run on the elastic async lane, so they may block (e.g. on a
/// collective) without starving the fork-join workers. wait() joins every
/// submitted task and rethrows the first stored exception; the destructor
/// joins too (discarding errors), so a TaskGroup can never leak a running
/// task past its scope. Not thread-safe: one owner thread submits and waits.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  /// Blocks until all tasks finish; errors are swallowed (call wait() first
  /// if you need them).
  ~TaskGroup();

  /// Submits `task` to the pool's async lane.
  void run(std::function<void()> task);

  /// Joins all submitted tasks, then rethrows the first exception any of
  /// them stored. Afterwards the group is empty and reusable.
  void wait();

  /// True when no submitted task is outstanding.
  bool empty() const { return futures_.empty(); }

 private:
  std::vector<std::future<void>> futures_;
};

/// The process-wide engine. Created on first use with num_threads() threads.
ThreadPool& pool();

/// Current engine width. Defaults to PWDFT_NUM_THREADS if set (honored up
/// to 64), else std::thread::hardware_concurrency() clamped to [1, 16].
std::size_t num_threads();

/// Rebuilds the engine with `n` threads (>= 1). Must not be called while any
/// parallel_for or async task is in flight.
void set_num_threads(std::size_t n);

/// Drops the inherited engine in a fork()ed child. The child inherits the
/// parent's ThreadPool object but none of its worker threads, so the first
/// parallel_for would hang forever on workers that do not exist. Call this
/// immediately after fork() (par::SocketGroup does): it abandons the dead
/// pool without joining it — joining threads that never existed in this
/// process would itself hang — and the next pool() use lazily builds a
/// fresh one. Single-threaded-child use only; never call it in the parent.
void reinit_after_fork();

/// Scheduling-policy hook: when true (the default), TaskGraph::replay runs
/// serially on an oversubscribed pool (engine width > hardware
/// concurrency) instead of waking workers that have no CPU to run on.
/// Tests disable it so the parallel replay machinery is exercised — and
/// TSan-checked — even on single-core CI boxes. Never changes results.
void set_graph_serial_when_oversubscribed(bool enabled);

/// Convenience: pool().parallel_for.
template <class F>
void parallel_for(std::size_t n, F&& f, std::size_t grain = 1) {
  pool().parallel_for(n, std::forward<F>(f), grain);
}

/// parallel_for over the flattened column-major domain [0, ncols*col_len),
/// re-split at column boundaries: `f(col, r0, len)` covers rows
/// [r0, r0+len) of column `col`, with every flat index visited exactly
/// once. Centralizes the chunk/column index arithmetic so the bit-identity
/// argument of each caller rests only on its own per-element loop.
template <class F>
void parallel_for_cols(std::size_t ncols, std::size_t col_len, F&& f,
                       std::size_t grain = 4096) {
  parallel_for(
      ncols * col_len,
      [&](std::size_t b, std::size_t e) {
        std::size_t t = b;
        while (t < e) {
          const std::size_t col = t / col_len;
          const std::size_t r0 = t - col * col_len;
          const std::size_t len = std::min(col_len - r0, e - t);
          f(col, r0, len);
          t += len;
        }
      },
      grain);
}

/// Nested-split decision for hybrid band×line scheduling (docs/threading.md).
///
/// A band loop whose per-band body runs its FFTs through nested (inline)
/// parallel_for calls saturates the engine only while it has at least one
/// band per thread. When `outer_tasks` (bands, or band×batch pairs) is below
/// the engine width, the caller should switch to its line-parallel
/// formulation: either batch all bands' FFT lines into one joint
/// (band × line) parallel_for, or run the band loop serially so each nested
/// batched FFT wins the whole pool.
///
/// The decision depends on the engine width, so the two formulations MUST
/// be bit-identical (same per-line kernels, same per-element operation
/// order, same reduction trees) — enforced by tests/test_band_parallel.cpp,
/// which pins both paths against each other.
inline bool prefer_line_split(std::size_t outer_tasks) {
  return outer_tasks < pool().size();
}

/// Named arena slots. Each (thread, slot, element-type) triple is an
/// independent monotonically-growing buffer; two routines may only share a
/// slot if their lifetimes never overlap on one thread.
enum class Slot : std::size_t {
  // fft: per-line scratch used inside Fft3D axis passes (leaf level).
  fft_line,
  fft_work,
  // grid/ham: dense- and wfc-grid scratch.
  grid_a,
  grid_b,
  coeffs_a,
  // Density band loop: chunk-indexed partial accumulators (deterministic
  // reduction, see docs/threading.md) and the batched real-space grids of
  // the hybrid band×line path.
  rho_part,
  rho_grids,
  // Hamiltonian::apply hybrid band×line path: batched dense-grid blocks.
  ham_grids,
  ham_vlocs,
  ham_coeffs,
  // Fock operator band loop.
  fock_pair,
  fock_fetch,  ///< 2x band_window ping-pong broadcast buffers
  fock_wire,
  fock_coeffs,
  fock_psi_real,
  fock_acc,
  fock_win,  ///< per-band window contributions before the ordered reduction
  // Wavefunction transpose pack/unpack wire buffers.
  trans_send,
  trans_recv,
  // HierComm staged ordered allreduce: grid-level and world-level gathered
  // partial vectors (parallel/hier_comm.cpp).
  hier_group,
  hier_world,
  // Fock dynamic band rebalance: redistributed input block, its
  // accumulator, and the shuffled-back contribution block.
  fock_bal_psi,
  fock_bal_y,
  fock_bal_back,
  // Per-band norm/scalar slots (LOBPCG residuals, CN residual norms).
  band_norms,
  // LOBPCG per-iteration blocks.
  lob_r,
  lob_w,
  lob_s,
  lob_hs,
  lob_hw,
  lob_xnew,
  lob_hxnew,
  // PT-CN / CN propagators.
  pt_ga,
  pt_gb,
  pt_gc,
  cn_r,
  // ACE compressed exchange apply (ham/ace.cpp): G-layout psi block, the
  // Xi^H psi projection matrix, the -Xi P contribution, and its band-layout
  // image. Dedicated slots — AceOperator::apply_add runs inside
  // Hamiltonian::apply while pt_*/ham_* blocks may be live.
  ace_ga,
  ace_gb,
  ace_p,
  ace_band,
  mix_f,
  // AndersonMixer::mix internals (Gram system + real-vector staging), so a
  // whole SCF iteration stays allocation-free (tests/test_alloc_free.cpp).
  mix_gram,
  mix_rhs,
  mix_real,
  // RK4 stages.
  rk4_k1,
  rk4_k2,
  rk4_k3,
  rk4_k4,
  rk4_stage,
  count
};

/// Per-thread arena. Buffers grow and are never shrunk, so steady-state use
/// performs zero heap allocations.
class Workspace {
 public:
  /// Complex buffer of exactly n elements (contents unspecified).
  std::span<Complex> cbuf(Slot s, std::size_t n);
  /// double buffer of exactly n elements (contents unspecified).
  std::span<double> rbuf(Slot s, std::size_t n);
  /// complex<float> buffer (single-precision comm wire, paper §3.2 step 4).
  std::span<std::complex<float>> fbuf(Slot s, std::size_t n);
  /// Matrix reshaped to rows x cols, reusing capacity. Only elements the
  /// caller writes are meaningful.
  CMatrix& cmat(Slot s, std::size_t rows, std::size_t cols);

  /// Total bytes currently reserved by this arena (instrumentation).
  std::size_t bytes_reserved() const;

 private:
  static constexpr std::size_t kSlots = static_cast<std::size_t>(Slot::count);
  std::vector<Complex> c_[kSlots];
  std::vector<double> r_[kSlots];
  std::vector<std::complex<float>> f_[kSlots];
  CMatrix m_[kSlots];
};

/// The calling thread's arena.
Workspace& workspace();

}  // namespace pwdft::exec
