#pragma once

/// \file types.hpp
/// Fundamental scalar types and physical constants (Hartree atomic units).
///
/// Everything in PT-PWDFT is expressed in Hartree atomic units:
/// energy in Hartree, length in Bohr, time in a.u. (1 a.u. = 24.188843 as).

#include <complex>
#include <cstddef>
#include <cstdint>

namespace pwdft {

using Real = double;
using Complex = std::complex<double>;
using Index = std::ptrdiff_t;

namespace constants {

/// Bohr radii per Angstrom.
inline constexpr double bohr_per_angstrom = 1.8897259886;
/// Electron-volt in Hartree.
inline constexpr double hartree_per_ev = 1.0 / 27.211386245988;
/// Attoseconds per atomic unit of time.
inline constexpr double as_per_au_time = 24.188843265857;
/// Femtoseconds per atomic unit of time.
inline constexpr double fs_per_au_time = as_per_au_time * 1e-3;
/// Speed of light in atomic units (fine structure constant inverse).
inline constexpr double speed_of_light_au = 137.035999084;
/// Planck constant times speed of light, in eV * nm (for photon energies).
inline constexpr double hc_ev_nm = 1239.841984;
inline constexpr double pi = 3.14159265358979323846;
inline constexpr double two_pi = 2.0 * pi;
inline constexpr double four_pi = 4.0 * pi;

/// Photon energy in Hartree for a vacuum wavelength given in nm.
inline constexpr double photon_energy_ha(double wavelength_nm) {
  return hc_ev_nm / wavelength_nm * hartree_per_ev;
}

/// Convert a duration in attoseconds to atomic units of time.
inline constexpr double attoseconds_to_au(double t_as) { return t_as / as_per_au_time; }

/// Convert a duration in femtoseconds to atomic units of time.
inline constexpr double femtoseconds_to_au(double t_fs) { return t_fs / fs_per_au_time; }

}  // namespace constants

/// Imaginary unit as a Complex.
inline constexpr Complex imag_unit{0.0, 1.0};

}  // namespace pwdft
