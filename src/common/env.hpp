#pragma once

/// \file env.hpp
/// Strict parsing of PWDFT_* environment variables.
///
/// The scheduling and algorithm knobs (docs/PERFORMANCE.md) are resolved
/// from the environment at option-construction time. A malformed value must
/// fail loudly, exactly like PWDFT_FFT_KERNEL always has: a typo
/// (`PWDFT_MTS_INTERVAL=four`, `PWDFT_ACE=On`) that silently resolves to
/// "off" or "default" runs the wrong configuration through an entire
/// experiment. Every helper here therefore throws pwdft::Error — naming the
/// variable and the accepted forms — on anything it cannot parse exactly;
/// an unset variable yields the caller's default.

#include <string>

namespace pwdft::env {

/// Boolean knob. Accepts (case-insensitive) 1/on/true/yes and 0/off/false/no;
/// unset returns `fallback`; anything else throws pwdft::Error.
bool flag(const char* name, bool fallback);

/// Integer knob. Accepts a full-string base-10 integer in [min, max]; unset
/// returns `fallback` (which need not lie in the range); a malformed or
/// out-of-range value throws pwdft::Error.
long integer(const char* name, long fallback, long min, long max);

/// String knob. Unset returns `fallback`; a set-but-empty value throws
/// pwdft::Error (an empty path or address is always a typo, and silently
/// treating it as "default" is the lenience this header exists to remove).
std::string text(const char* name, const std::string& fallback);

}  // namespace pwdft::env
