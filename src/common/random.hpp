#pragma once

/// \file random.hpp
/// Deterministic random number generation. All stochastic initialization in
/// the library flows through Rng so runs are reproducible given a seed.

#include <random>

#include "common/types.hpp"

namespace pwdft {

/// Seeded pseudo-random generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : gen_(seed) {}

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }
  /// Standard complex normal (independent N(0,1/sqrt(2)) components).
  Complex complex_normal() {
    const double s = 1.0 / 1.4142135623730951;
    return {normal(0.0, s), normal(0.0, s)};
  }
  std::uint64_t integer() { return gen_(); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace pwdft
