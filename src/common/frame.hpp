#pragma once

/// \file frame.hpp
/// Shared binary-frame codec and socket transport.
///
/// Two subsystems speak length-prefixed, FNV-1a-checksummed frames over
/// sockets: the serve front-end (src/serve/wire.cpp) and the multi-process
/// communicator (src/parallel/socket_comm.cpp). Both use the identical
/// layout, differing only in the magic prefix, protocol version, message
/// type range, and payload cap — the `Protocol` descriptor below. Keeping
/// the codec here means the two byte formats cannot drift: one encoder, one
/// decoder, one checksum discipline.
///
/// Frame layout (all integers little-endian):
///
///   offset  0  8 bytes  magic: 7-byte protocol prefix + ('0' + version)
///   offset  8  u32      message type
///   offset 12  u64      payload length n (validated against the cap
///                       BEFORE any allocation)
///   offset 20  n bytes  payload
///   offset 20+n u64     FNV-1a-64 over bytes [0, 20+n)
///
/// Decoding is total: every failure mode maps to a typed IoStatus — never
/// an exception, never a crash — because frames arrive from untrusted
/// peers. Callers translate IoStatus into their own error domain
/// (serve::ErrorCode, par::CommError).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pwdft::frame {

constexpr std::uint64_t kHeaderBytes = 8 + 4 + 8;
constexpr std::uint64_t kFooterBytes = 8;

/// Typed outcome of every codec and transport operation. Each caller maps
/// these onto its own wire-stable error enum; this one is in-process only.
enum class IoStatus : int {
  kOk = 0,
  kClosed,            ///< clean EOF at a frame boundary
  kTruncated,         ///< EOF or read failure mid-frame
  kBadMagic,          ///< foreign or corrupt magic prefix
  kBadType,           ///< message type outside the protocol's range
  kVersionMismatch,   ///< right protocol, wrong version byte
  kTooLarge,          ///< declared payload length above the cap
  kTrailingBytes,     ///< in-memory decode: bytes after the footer
  kChecksumMismatch,  ///< frame arrived whole but the FNV-1a digest differs
  kTimeout,           ///< SO_RCVTIMEO / SO_SNDTIMEO expired mid-operation
  kIoError,           ///< any other syscall failure
};

const char* io_status_name(IoStatus s);

/// Same FNV-1a-64 as io/checkpoint.cpp: one hashing discipline per repo.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void update(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
};

void pack_u32(std::uint32_t v, std::uint8_t out[4]);
void pack_u64(std::uint64_t v, std::uint8_t out[8]);
std::uint32_t unpack_u32(const std::uint8_t in[4]);
std::uint64_t unpack_u64(const std::uint8_t in[8]);

/// One frame dialect: which 7-character magic it answers to, which version
/// byte, which message-type values are meaningful, and how large a declared
/// payload may be before it is rejected as corrupt or hostile.
struct Protocol {
  const char* magic_prefix;   ///< exactly 7 characters
  std::uint32_t version;      ///< encoded as the single byte '0' + version
  std::uint32_t min_type;
  std::uint32_t max_type;
  std::uint64_t max_payload;
};

void write_header(std::uint8_t out[kHeaderBytes], const Protocol& proto, std::uint32_t type,
                  std::uint64_t payload_len);

/// Magic + version + type-range + length sanity of a raw header.
IoStatus parse_header(const std::uint8_t hdr[kHeaderBytes], const Protocol& proto,
                      std::uint32_t* type, std::uint64_t* payload_len);

/// Assembles magic + header + payload + checksum into one buffer.
std::vector<std::uint8_t> encode(const Protocol& proto, std::uint32_t type,
                                 const std::uint8_t* payload, std::size_t payload_len);

/// Decodes a whole in-memory frame. The buffer must contain exactly one
/// frame; anything after the footer is kTrailingBytes.
IoStatus decode(const Protocol& proto, const std::uint8_t* data, std::size_t size,
                std::uint32_t* type, std::vector<std::uint8_t>* payload);

// --- fd transport ----------------------------------------------------------

/// Write loop; MSG_NOSIGNAL so a vanished peer yields EPIPE, not SIGPIPE.
/// kTimeout when a send timeout (SO_SNDTIMEO) expires, kClosed when the
/// peer reset or closed the connection, kIoError otherwise.
IoStatus write_all(int fd, const std::uint8_t* p, std::size_t n);

/// Reads exactly n bytes. 1 = got them, 0 = clean EOF before the first
/// byte, -1 = error or EOF mid-read, -2 = receive timeout (SO_RCVTIMEO).
int read_exact(int fd, std::uint8_t* p, std::size_t n);

IoStatus send_frame(int fd, const Protocol& proto, std::uint32_t type,
                    const std::uint8_t* payload, std::size_t payload_len);

/// Reads one frame. kClosed on a clean EOF at a frame boundary, kTruncated
/// on EOF mid-frame, kTimeout when the receive timeout expires, and the
/// decode errors above for malformed bytes. On failure the stream position
/// is undefined; the caller should drop the connection.
IoStatus recv_frame(int fd, const Protocol& proto, std::uint32_t* type,
                    std::vector<std::uint8_t>* payload);

// --- addresses -------------------------------------------------------------
// "unix:<path>" (filesystem socket) or "tcp:<host>:<port>" with a numeric
// IPv4 host or "localhost"; "tcp:127.0.0.1:0" binds an ephemeral port.

struct Listener {
  int fd = -1;
  std::string address;    ///< resolved form (ephemeral port filled in)
  std::string unix_path;  ///< non-empty for unix sockets; caller unlinks
};

/// Binds + listens; throws pwdft::Error on an unparseable address or a
/// failed syscall (standing up a listener is an environment error).
Listener listen_on(const std::string& address);

/// Connects; throws pwdft::Error on failure for the same reason.
int dial(const std::string& address);

/// Non-throwing connect: -1 and a reason on failure. Retry loops (a peer's
/// listener may not exist yet during a multi-process rendezvous) need the
/// failure as a value, not an exception per attempt.
int try_dial(const std::string& address, std::string* why);

}  // namespace pwdft::frame
