#pragma once

/// \file table.hpp
/// Console/CSV table formatting used by the benchmark harnesses to print
/// paper-style rows (Table 1, Table 2, figure series).

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace pwdft {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with a fixed precision. The first added row is the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Starts a new row; returns the row index.
  std::size_t add_row() {
    rows_.emplace_back();
    return rows_.size() - 1;
  }
  void add_cell(std::string value) {
    PWDFT_CHECK(!rows_.empty(), "add_row() before add_cell()");
    rows_.back().push_back(std::move(value));
  }
  void add_cell(double value, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    add_cell(os.str());
  }
  void add_cell(std::size_t value) { add_cell(std::to_string(value)); }
  void add_cell(int value) { add_cell(std::to_string(value)); }

  /// Row-at-once convenience: each argument becomes one cell.
  template <typename... Args>
  void row(Args&&... args) {
    add_row();
    (add_cell(std::forward<Args>(args)), ...);
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto grow = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());
    };
    grow(header_);
    for (const auto& r : rows_) grow(r);
    auto emit = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(width[c]) + 2)
           << (c < r.size() ? r[c] : "");
      }
      os << "\n";
    };
    emit(header_);
    std::vector<std::string> rule;
    for (auto w : width) rule.push_back(std::string(w, '-'));
    emit(rule);
    for (const auto& r : rows_) emit(r);
  }

  void write_csv(const std::string& path) const {
    std::ofstream f(path);
    PWDFT_CHECK(f.good(), "cannot open " << path);
    auto emit = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c) f << (c ? "," : "") << r[c];
      f << "\n";
    };
    emit(header_);
    for (const auto& r : rows_) emit(r);
  }

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pwdft
