#pragma once

/// \file check.hpp
/// Error handling: PWDFT_CHECK for user-facing precondition violations
/// (always active, throws pwdft::Error) and PWDFT_ASSERT for internal
/// invariants (active unless NDEBUG).

#include <sstream>
#include <stdexcept>
#include <string>

namespace pwdft {

/// Exception thrown on any failed PWDFT_CHECK.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* cond, const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

/// Builds the optional message from a streamed expression.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace pwdft

/// Always-active check; use for preconditions on public API boundaries.
#define PWDFT_CHECK(cond, ...)                                                 \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::pwdft::detail::throw_check_failure(                                    \
          #cond, __FILE__, __LINE__,                                           \
          (::pwdft::detail::MessageBuilder{} << "" __VA_ARGS__).str());        \
    }                                                                          \
  } while (false)

/// Internal invariant; compiled out when NDEBUG is defined.
#ifdef NDEBUG
#define PWDFT_ASSERT(cond, ...) \
  do {                          \
  } while (false)
#else
#define PWDFT_ASSERT(cond, ...) PWDFT_CHECK(cond, __VA_ARGS__)
#endif
