#include "common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string_view>

#include "common/check.hpp"

namespace pwdft::env {

namespace {

std::string lower(std::string_view v) {
  std::string out(v);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

bool flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (!raw) return fallback;
  const std::string v = lower(raw);
  if (v == "1" || v == "on" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "off" || v == "false" || v == "no") return false;
  PWDFT_CHECK(false, "" << name << "='" << raw
                         << "' is not a boolean; use 1/on/true/yes or 0/off/false/no (or unset "
                            "it for the default)");
  return fallback;  // unreachable: the check above always throws
}

long integer(const char* name, long fallback, long min, long max) {
  const char* raw = std::getenv(name);
  if (!raw) return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  // Full-string match only: strtol's leading-whitespace skip and partial
  // parses ("4x") are exactly the lenience this helper exists to remove.
  PWDFT_CHECK(!std::isspace(static_cast<unsigned char>(raw[0])) && end != raw &&
                  *end == '\0' && errno != ERANGE,
              "" << name << "='" << raw << "' is not an integer (or unset it for the default)");
  PWDFT_CHECK(v >= min && v <= max,
              "" << name << "=" << v << " is out of range [" << min << ", " << max << "]");
  return v;
}

std::string text(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (!raw) return fallback;
  PWDFT_CHECK(raw[0] != '\0',
              "" << name << " is set but empty (set a value or unset it for the default)");
  return raw;
}

}  // namespace pwdft::env
