#include "common/frame.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace pwdft::frame {

static_assert(std::endian::native == std::endian::little,
              "frame format is little-endian; big-endian hosts need byte swaps");

const char* io_status_name(IoStatus s) {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kClosed: return "closed";
    case IoStatus::kTruncated: return "truncated";
    case IoStatus::kBadMagic: return "bad magic";
    case IoStatus::kBadType: return "bad message type";
    case IoStatus::kVersionMismatch: return "version mismatch";
    case IoStatus::kTooLarge: return "frame too large";
    case IoStatus::kTrailingBytes: return "trailing bytes";
    case IoStatus::kChecksumMismatch: return "checksum mismatch";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kIoError: return "io error";
  }
  return "unknown";
}

void pack_u64(std::uint64_t v, std::uint8_t out[8]) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

std::uint64_t unpack_u64(const std::uint8_t in[8]) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

void pack_u32(std::uint32_t v, std::uint8_t out[4]) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

std::uint32_t unpack_u32(const std::uint8_t in[4]) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

void write_header(std::uint8_t out[kHeaderBytes], const Protocol& proto, std::uint32_t type,
                  std::uint64_t payload_len) {
  std::memcpy(out, proto.magic_prefix, 7);
  out[7] = static_cast<std::uint8_t>('0' + proto.version);
  pack_u32(type, out + 8);
  pack_u64(payload_len, out + 12);
}

IoStatus parse_header(const std::uint8_t hdr[kHeaderBytes], const Protocol& proto,
                      std::uint32_t* type, std::uint64_t* payload_len) {
  if (std::memcmp(hdr, proto.magic_prefix, 7) != 0) return IoStatus::kBadMagic;
  if (hdr[7] != static_cast<std::uint8_t>('0' + proto.version))
    return IoStatus::kVersionMismatch;
  const std::uint32_t t = unpack_u32(hdr + 8);
  if (t < proto.min_type || t > proto.max_type) return IoStatus::kBadType;
  *type = t;
  *payload_len = unpack_u64(hdr + 12);
  if (*payload_len > proto.max_payload) return IoStatus::kTooLarge;
  return IoStatus::kOk;
}

std::vector<std::uint8_t> encode(const Protocol& proto, std::uint32_t type,
                                 const std::uint8_t* payload, std::size_t payload_len) {
  std::vector<std::uint8_t> out(kHeaderBytes + payload_len + kFooterBytes);
  write_header(out.data(), proto, type, payload_len);
  if (payload_len > 0) std::memcpy(out.data() + kHeaderBytes, payload, payload_len);
  Fnv1a hash;
  hash.update(out.data(), kHeaderBytes + payload_len);
  pack_u64(hash.h, out.data() + kHeaderBytes + payload_len);
  return out;
}

IoStatus decode(const Protocol& proto, const std::uint8_t* data, std::size_t size,
                std::uint32_t* type, std::vector<std::uint8_t>* payload) {
  if (size < kHeaderBytes + kFooterBytes) return IoStatus::kTruncated;
  std::uint64_t payload_len = 0;
  const IoStatus hdr = parse_header(data, proto, type, &payload_len);
  if (hdr != IoStatus::kOk) return hdr;
  const std::uint64_t want = kHeaderBytes + payload_len + kFooterBytes;
  if (size < want) return IoStatus::kTruncated;
  if (size > want) return IoStatus::kTrailingBytes;
  Fnv1a hash;
  hash.update(data, kHeaderBytes + payload_len);
  if (unpack_u64(data + kHeaderBytes + payload_len) != hash.h)
    return IoStatus::kChecksumMismatch;
  payload->assign(data + kHeaderBytes, data + kHeaderBytes + payload_len);
  return IoStatus::kOk;
}

// --- fd transport ----------------------------------------------------------

IoStatus write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
      if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kClosed;
      return IoStatus::kIoError;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return IoStatus::kOk;
}

int read_exact(int fd, std::uint8_t* p, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
      return -1;
    }
    if (r == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

IoStatus send_frame(int fd, const Protocol& proto, std::uint32_t type,
                    const std::uint8_t* payload, std::size_t payload_len) {
  const std::vector<std::uint8_t> f = encode(proto, type, payload, payload_len);
  return write_all(fd, f.data(), f.size());
}

IoStatus recv_frame(int fd, const Protocol& proto, std::uint32_t* type,
                    std::vector<std::uint8_t>* payload) {
  std::uint8_t hdr[kHeaderBytes];
  const int got = read_exact(fd, hdr, sizeof hdr);
  if (got == 0) return IoStatus::kClosed;
  if (got == -2) return IoStatus::kTimeout;
  if (got < 0) return IoStatus::kTruncated;
  std::uint64_t payload_len = 0;
  const IoStatus e = parse_header(hdr, proto, type, &payload_len);
  if (e != IoStatus::kOk) return e;
  payload->assign(payload_len, 0);
  if (payload_len > 0) {
    const int body = read_exact(fd, payload->data(), payload_len);
    if (body == -2) return IoStatus::kTimeout;
    if (body != 1) return IoStatus::kTruncated;
  }
  std::uint8_t footer[kFooterBytes];
  const int foot = read_exact(fd, footer, sizeof footer);
  if (foot == -2) return IoStatus::kTimeout;
  if (foot != 1) return IoStatus::kTruncated;
  Fnv1a hash;
  hash.update(hdr, sizeof hdr);
  hash.update(payload->data(), payload->size());
  if (unpack_u64(footer) != hash.h) return IoStatus::kChecksumMismatch;
  return IoStatus::kOk;
}

// --- addresses -------------------------------------------------------------

namespace {

struct ParsedAddr {
  bool is_unix = false;
  std::string path;  ///< unix
  std::string host;  ///< tcp, numeric or "localhost"
  std::uint16_t port = 0;
};

ParsedAddr parse_address(const std::string& address) {
  ParsedAddr a;
  if (address.rfind("unix:", 0) == 0) {
    a.is_unix = true;
    a.path = address.substr(5);
    PWDFT_CHECK(!a.path.empty(), "net: empty unix socket path in '" << address << "'");
    PWDFT_CHECK(a.path.size() < sizeof(sockaddr_un{}.sun_path),
                "net: unix socket path too long: " << a.path);
    return a;
  }
  PWDFT_CHECK(address.rfind("tcp:", 0) == 0,
              "net: address '" << address << "' is neither unix:<path> nor tcp:<host>:<port>");
  const std::string rest = address.substr(4);
  const std::size_t colon = rest.rfind(':');
  PWDFT_CHECK(colon != std::string::npos && colon > 0 && colon + 1 < rest.size(),
              "net: tcp address '" << address << "' is not tcp:<host>:<port>");
  a.host = rest.substr(0, colon);
  if (a.host == "localhost") a.host = "127.0.0.1";
  const std::string port_s = rest.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_s.c_str(), &end, 10);
  PWDFT_CHECK(end && *end == '\0' && port >= 0 && port <= 65535,
              "net: bad tcp port '" << port_s << "' in '" << address << "'");
  a.port = static_cast<std::uint16_t>(port);
  return a;
}

sockaddr_in tcp_sockaddr(const ParsedAddr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(a.port);
  PWDFT_CHECK(::inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) == 1,
              "net: '" << a.host << "' is not a numeric IPv4 address (or localhost)");
  return sa;
}

sockaddr_un unix_sockaddr(const ParsedAddr& a) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  std::memcpy(sa.sun_path, a.path.c_str(), a.path.size() + 1);
  return sa;
}

}  // namespace

Listener listen_on(const std::string& address) {
  const ParsedAddr a = parse_address(address);
  Listener l;
  if (a.is_unix) {
    l.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PWDFT_CHECK(l.fd >= 0, "net: socket() failed: " << std::strerror(errno));
    ::unlink(a.path.c_str());  // stale socket from a killed process
    const sockaddr_un sa = unix_sockaddr(a);
    PWDFT_CHECK(::bind(l.fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) == 0,
                "net: bind(" << a.path << ") failed: " << std::strerror(errno));
    l.unix_path = a.path;
    l.address = address;
  } else {
    l.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PWDFT_CHECK(l.fd >= 0, "net: socket() failed: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(l.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in sa = tcp_sockaddr(a);
    PWDFT_CHECK(::bind(l.fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) == 0,
                "net: bind(" << address << ") failed: " << std::strerror(errno));
    socklen_t len = sizeof sa;
    PWDFT_CHECK(::getsockname(l.fd, reinterpret_cast<sockaddr*>(&sa), &len) == 0,
                "net: getsockname failed: " << std::strerror(errno));
    l.address = "tcp:" + a.host + ":" + std::to_string(ntohs(sa.sin_port));
  }
  PWDFT_CHECK(::listen(l.fd, 64) == 0,
              "net: listen(" << l.address << ") failed: " << std::strerror(errno));
  return l;
}

int try_dial(const std::string& address, std::string* why) {
  const ParsedAddr a = parse_address(address);
  const int fd = ::socket(a.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  PWDFT_CHECK(fd >= 0, "net: socket() failed: " << std::strerror(errno));
  int rc;
  if (a.is_unix) {
    const sockaddr_un sa = unix_sockaddr(a);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  } else {
    const sockaddr_in sa = tcp_sockaddr(a);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  }
  if (rc != 0) {
    if (why) *why = std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int dial(const std::string& address) {
  std::string why;
  const int fd = try_dial(address, &why);
  PWDFT_CHECK(fd >= 0, "net: connect(" << address << ") failed: " << why);
  return fd;
}

}  // namespace pwdft::frame
