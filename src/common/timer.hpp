#pragma once

/// \file timer.hpp
/// Wall-clock timers and a cumulative per-phase timer registry used by the
/// propagators to produce component breakdowns analogous to the paper's
/// Table 1 / Fig. 9.

#include <chrono>
#include <map>
#include <string>

namespace pwdft {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase durations, e.g. "fock", "residual", "density".
class TimerRegistry {
 public:
  void add(const std::string& name, double seconds) { acc_[name] += seconds; }
  double total(const std::string& name) const {
    auto it = acc_.find(name);
    return it == acc_.end() ? 0.0 : it->second;
  }
  const std::map<std::string, double>& all() const { return acc_; }
  void clear() { acc_.clear(); }

 private:
  std::map<std::string, double> acc_;
};

/// RAII guard adding elapsed time to a registry entry on destruction.
class ScopedTimer {
 public:
  ScopedTimer(TimerRegistry& reg, std::string name) : reg_(reg), name_(std::move(name)) {}
  ~ScopedTimer() { reg_.add(name_, timer_.seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerRegistry& reg_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace pwdft
