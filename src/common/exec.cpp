#include "common/exec.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/check.hpp"

namespace pwdft::exec {

namespace {

/// Set on pool workers so nested parallel_for runs inline instead of
/// deadlocking on the pool it is already executing on.
thread_local bool tl_in_worker = false;

/// Set on the thread that currently owns a parallel_for job: try_lock on a
/// mutex the thread already holds is undefined behavior, so a nested
/// parallel_for from inside the owning caller's own chunks must bail to the
/// inline path before touching job_mutex_.
thread_local bool tl_owns_job = false;

/// Set on async-lane helpers: a background task (broadcast prefetch,
/// overlapped transpose pack) must never win the fork-join pool away from
/// the main compute it is overlapping with, so its parallel_for runs
/// inline.
thread_local bool tl_in_async = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  PWDFT_CHECK(threads >= 1, "ThreadPool: need at least one thread");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
  {
    std::lock_guard<std::mutex> lk(async_mutex_);
    async_stop_ = true;
  }
  async_cv_.notify_all();
  for (auto& t : async_threads_) t.join();
}

void ThreadPool::run_chunks() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= nchunks_) break;
    const std::size_t b = i * chunk_;
    const std::size_t e = std::min(n_, b + chunk_);
    try {
      fn_(ctx_, b, e);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(wake_mutex_);
        if (!job_error_) job_error_ = std::current_exception();
      }
      next_.store(nchunks_, std::memory_order_relaxed);  // stop further claims
    }
  }
}

void ThreadPool::worker_loop() {
  tl_in_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(wake_mutex_);
      wake_cv_.wait(lk, [&] { return stop_ || (job_active_ && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      ++in_flight_;
    }
    run_chunks();
    {
      std::lock_guard<std::mutex> lk(wake_mutex_);
      --in_flight_;
    }
    idle_cv_.notify_one();
  }
}

void ThreadPool::parallel_for_raw(std::size_t n, RangeFn fn, void* ctx, std::size_t grain) {
  if (n == 0) return;
  // Inline when there is nothing to fork to, when called from inside a
  // worker (nested), or when another thread currently owns the pool
  // (concurrent ThreadComm ranks): semantics are identical either way.
  if (workers_.empty() || tl_in_worker || tl_owns_job || tl_in_async ||
      !job_mutex_.try_lock()) {
    fn(ctx, 0, n);
    return;
  }
  tl_owns_job = true;

  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    fn_ = fn;
    ctx_ = ctx;
    n_ = n;
    const std::size_t target = std::max<std::size_t>(1, n / (4 * size()));
    chunk_ = std::max(std::max<std::size_t>(1, grain), target);
    nchunks_ = (n + chunk_ - 1) / chunk_;
    next_.store(0, std::memory_order_relaxed);
    job_error_ = nullptr;
    ++generation_;
    job_active_ = true;
  }
  wake_cv_.notify_all();

  run_chunks();  // caller participates; chunk errors land in job_error_

  // When run_chunks returns, every chunk has been claimed; workers still
  // executing a claimed chunk are counted by in_flight_, and their writes
  // are published by the wake_mutex_ bracket around the decrement.
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(wake_mutex_);
    idle_cv_.wait(lk, [&] { return in_flight_ == 0; });
    err = job_error_;
    job_error_ = nullptr;
    job_active_ = false;
  }
  tl_owns_job = false;
  job_mutex_.unlock();
  if (err) std::rethrow_exception(err);
}

std::future<void> ThreadPool::run_async(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lk(async_mutex_);
    PWDFT_CHECK(!async_stop_, "ThreadPool: run_async after shutdown");
    async_queue_.push_back(std::move(pt));
    // Every parked helper can drain exactly one pending task; tasks beyond
    // that could wait forever behind a *blocking* task (e.g. a collective
    // broadcast that needs another rank's task to run to complete), so spawn
    // a helper whenever pending tasks exceed parked helpers.
    if (async_queue_.size() > async_idle_)
      async_threads_.emplace_back([this] { async_loop(); });
  }
  async_cv_.notify_one();
  return fut;
}

void ThreadPool::async_loop() {
  tl_in_async = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lk(async_mutex_);
      ++async_idle_;
      async_cv_.wait(lk, [&] { return async_stop_ || !async_queue_.empty(); });
      --async_idle_;
      if (async_queue_.empty()) return;  // stop requested and drained
      task = std::move(async_queue_.front());
      async_queue_.pop_front();
    }
    task();
  }
}

TaskGroup::~TaskGroup() {
  for (auto& f : futures_) {
    if (!f.valid()) continue;
    try {
      f.get();
    } catch (...) {
      // Destructor path: the owner is already unwinding (or forgot to call
      // wait()); the error must not escape.
    }
  }
}

void TaskGroup::run(std::function<void()> task) {
  futures_.push_back(pool().run_async(std::move(task)));
}

void TaskGroup::wait() {
  std::exception_ptr first;
  for (auto& f : futures_) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  futures_.clear();
  if (first) std::rethrow_exception(first);
}

namespace {

std::size_t default_threads() {
  if (const char* env = std::getenv("PWDFT_NUM_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return std::min<std::size_t>(static_cast<std::size_t>(v), 64);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 16);
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
// Lock-free fast path for pool(): parallel_for is called from the hottest
// loops, so reads must not serialize on g_pool_mutex.
std::atomic<ThreadPool*> g_pool_ptr{nullptr};

}  // namespace

ThreadPool& pool() {
  if (ThreadPool* p = g_pool_ptr.load(std::memory_order_acquire)) return *p;
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(default_threads());
    g_pool_ptr.store(g_pool.get(), std::memory_order_release);
  }
  return *g_pool;
}

std::size_t num_threads() { return pool().size(); }

void set_num_threads(std::size_t n) {
  PWDFT_CHECK(n >= 1, "set_num_threads: need at least one thread");
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  g_pool_ptr.store(nullptr, std::memory_order_release);
  g_pool.reset();  // join old workers before spawning the new pool
  g_pool = std::make_unique<ThreadPool>(n);
  g_pool_ptr.store(g_pool.get(), std::memory_order_release);
}

std::span<Complex> Workspace::cbuf(Slot s, std::size_t n) {
  auto& v = c_[static_cast<std::size_t>(s)];
  if (v.size() < n) v.resize(n);
  return {v.data(), n};
}

std::span<double> Workspace::rbuf(Slot s, std::size_t n) {
  auto& v = r_[static_cast<std::size_t>(s)];
  if (v.size() < n) v.resize(n);
  return {v.data(), n};
}

std::span<std::complex<float>> Workspace::fbuf(Slot s, std::size_t n) {
  auto& v = f_[static_cast<std::size_t>(s)];
  if (v.size() < n) v.resize(n);
  return {v.data(), n};
}

CMatrix& Workspace::cmat(Slot s, std::size_t rows, std::size_t cols) {
  CMatrix& m = m_[static_cast<std::size_t>(s)];
  m.reshape(rows, cols);
  return m;
}

std::size_t Workspace::bytes_reserved() const {
  std::size_t b = 0;
  for (std::size_t i = 0; i < kSlots; ++i) {
    b += c_[i].capacity() * sizeof(Complex);
    b += r_[i].capacity() * sizeof(double);
    b += f_[i].capacity() * sizeof(std::complex<float>);
    b += m_[i].size() * sizeof(Complex);
  }
  return b;
}

Workspace& workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace pwdft::exec
