#include "common/exec.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/check.hpp"
#include "common/env.hpp"

namespace pwdft::exec {

namespace {

/// Set on pool workers so nested parallel_for runs inline instead of
/// deadlocking on the pool it is already executing on.
thread_local bool tl_in_worker = false;

/// Set on the thread that currently owns a parallel_for job: try_lock on a
/// mutex the thread already holds is undefined behavior, so a nested
/// parallel_for from inside the owning caller's own chunks must bail to the
/// inline path before touching job_mutex_.
thread_local bool tl_owns_job = false;

/// Set on async-lane helpers: a background task (broadcast prefetch,
/// overlapped transpose pack) must never win the fork-join pool away from
/// the main compute it is overlapping with, so its parallel_for runs
/// inline.
thread_local bool tl_in_async = false;

/// See set_graph_serial_when_oversubscribed.
std::atomic<bool> g_graph_serial_oversub{true};

}  // namespace

void set_graph_serial_when_oversubscribed(bool enabled) {
  g_graph_serial_oversub.store(enabled, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  PWDFT_CHECK(threads >= 1, "ThreadPool: need at least one thread");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
  {
    std::lock_guard<std::mutex> lk(async_mutex_);
    async_stop_ = true;
  }
  async_cv_.notify_all();
  for (auto& t : async_threads_) t.join();
}

void ThreadPool::run_chunks() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= nchunks_) break;
    const std::size_t b = i * chunk_;
    const std::size_t e = std::min(n_, b + chunk_);
    try {
      fn_(ctx_, b, e);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(wake_mutex_);
        if (!job_error_) job_error_ = std::current_exception();
      }
      next_.store(nchunks_, std::memory_order_relaxed);  // stop further claims
    }
  }
}

void ThreadPool::worker_loop() {
  tl_in_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    TaskGraph* graph = nullptr;
    {
      std::unique_lock<std::mutex> lk(wake_mutex_);
      wake_cv_.wait(lk, [&] { return stop_ || (job_active_ && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      graph = graph_;
      ++in_flight_;
    }
    if (graph) {
      graph->work();
    } else {
      run_chunks();
    }
    {
      std::lock_guard<std::mutex> lk(wake_mutex_);
      --in_flight_;
    }
    idle_cv_.notify_one();
  }
}

void ThreadPool::parallel_for_raw(std::size_t n, RangeFn fn, void* ctx, std::size_t grain) {
  if (n == 0) return;
  // Inline when there is nothing to fork to, when called from inside a
  // worker (nested), or when another thread currently owns the pool
  // (concurrent ThreadComm ranks): semantics are identical either way.
  if (workers_.empty() || tl_in_worker || tl_owns_job || tl_in_async ||
      !job_mutex_.try_lock()) {
    fn(ctx, 0, n);
    return;
  }
  tl_owns_job = true;
  range_jobs_.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    graph_ = nullptr;
    fn_ = fn;
    ctx_ = ctx;
    n_ = n;
    const std::size_t target = std::max<std::size_t>(1, n / (4 * size()));
    chunk_ = std::max(std::max<std::size_t>(1, grain), target);
    nchunks_ = (n + chunk_ - 1) / chunk_;
    next_.store(0, std::memory_order_relaxed);
    job_error_ = nullptr;
    ++generation_;
    job_active_ = true;
  }
  wake_cv_.notify_all();

  run_chunks();  // caller participates; chunk errors land in job_error_

  // When run_chunks returns, every chunk has been claimed; workers still
  // executing a claimed chunk are counted by in_flight_, and their writes
  // are published by the wake_mutex_ bracket around the decrement.
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(wake_mutex_);
    idle_cv_.wait(lk, [&] { return in_flight_ == 0; });
    err = job_error_;
    job_error_ = nullptr;
    job_active_ = false;
  }
  tl_owns_job = false;
  job_mutex_.unlock();
  if (err) std::rethrow_exception(err);
}

void ThreadPool::run_graph(TaskGraph& graph, void* ctx) {
  // Same inline conditions as parallel_for_raw: with no pool available the
  // serial in-order run (id order is topological) has identical semantics.
  // A replay additionally knows its whole schedule up front, so it also
  // chooses the serial run when the pool is oversubscribed (more threads
  // than the hardware runs concurrently): forking there pays context-switch
  // and wake costs without adding real parallelism — the dominant effect
  // for the small-grid replays the graph targets. Results are identical
  // either way (docs/threading.md).
  static const std::size_t hw = std::thread::hardware_concurrency();
  const bool oversubscribed = hw != 0 && size() > hw &&
                              g_graph_serial_oversub.load(std::memory_order_relaxed);
  if (workers_.empty() || tl_in_worker || tl_owns_job || tl_in_async || oversubscribed ||
      !job_mutex_.try_lock()) {
    graph.run_serial(ctx);
    return;
  }
  tl_owns_job = true;
  graph_jobs_.fetch_add(1, std::memory_order_relaxed);
  graph.reset_replay(ctx);

  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    graph_ = &graph;
    ++generation_;
    job_active_ = true;
  }
  // The single wake of this replay — but only as many workers as the graph
  // can ever feed simultaneously (its widest level); the caller covers one
  // lane itself.
  const std::size_t wake =
      std::min(workers_.size(), graph.max_parallelism() > 0 ? graph.max_parallelism() - 1 : 0);
  if (wake >= workers_.size()) {
    wake_cv_.notify_all();
  } else {
    for (std::size_t i = 0; i < wake; ++i) wake_cv_.notify_one();
  }

  graph.work();  // caller participates; node errors land in the graph

  {
    std::unique_lock<std::mutex> lk(wake_mutex_);
    idle_cv_.wait(lk, [&] { return in_flight_ == 0; });
    graph_ = nullptr;
    job_active_ = false;
  }
  tl_owns_job = false;
  job_mutex_.unlock();
  if (std::exception_ptr err = graph.take_error()) std::rethrow_exception(err);
}

TaskGraph::NodeId TaskGraph::add_node(NodeFn fn) {
  PWDFT_CHECK(!sealed_, "TaskGraph: add_node after seal()");
  PWDFT_CHECK(fn, "TaskGraph: node callable must be non-empty");
  PWDFT_CHECK(nodes_.size() + 1 < kEmpty, "TaskGraph: too many nodes");
  nodes_.push_back(Node{std::move(fn), nullptr, 0, 0, 0, 0});
  return static_cast<NodeId>(nodes_.size() - 1);
}

TaskGraph::NodeId TaskGraph::add_node(RawNodeFn fn, std::uint64_t payload) {
  PWDFT_CHECK(!sealed_, "TaskGraph: add_node after seal()");
  PWDFT_CHECK(fn != nullptr, "TaskGraph: raw node function must be non-null");
  PWDFT_CHECK(nodes_.size() + 1 < kEmpty, "TaskGraph: too many nodes");
  nodes_.push_back(Node{{}, fn, payload, 0, 0, 0});
  return static_cast<NodeId>(nodes_.size() - 1);
}

TaskGraph::NodeId TaskGraph::add_gate(std::span<const NodeId> preds) {
  const NodeId gate = add_node([](void*, std::uint64_t) {}, 0);
  for (const NodeId p : preds) add_edge(p, gate);
  return gate;
}

void TaskGraph::add_edge(NodeId before, NodeId after) {
  PWDFT_CHECK(!sealed_, "TaskGraph: add_edge after seal()");
  PWDFT_CHECK(after < nodes_.size(), "TaskGraph: edge endpoint out of range");
  PWDFT_CHECK(before < after,
              "TaskGraph: edges must go from a lower to a higher node id "
              "(ids are the topological order)");
  edges_.emplace_back(before, after);
}

void TaskGraph::seal() {
  PWDFT_CHECK(!sealed_, "TaskGraph: seal() called twice");
  // Duplicate edges would double-count a dependency and leave the successor
  // waiting on a decrement that never comes.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  const std::size_t n = nodes_.size();
  std::vector<std::uint32_t> out_count(n, 0);
  for (const auto& [b, a] : edges_) {
    ++out_count[b];
    ++nodes_[a].deps;
  }
  succ_.resize(edges_.size());
  std::uint32_t off = 0;
  for (std::size_t i = 0; i < n; ++i) {
    nodes_[i].succ_begin = off;
    nodes_[i].succ_end = off;
    off += out_count[i];
  }
  for (const auto& [b, a] : edges_) succ_[nodes_[b].succ_end++] = a;
  for (std::size_t i = 0; i < n; ++i)
    if (nodes_[i].deps == 0) roots_.push_back(static_cast<std::uint32_t>(i));
  // Widest dependency level: level(i) = 1 + max level over predecessors,
  // computable in one pass since ids are already topologically ordered.
  {
    std::vector<std::uint32_t> level(n, 0);
    for (const auto& [b, a] : edges_) level[a] = std::max(level[a], level[b] + 1);
    std::vector<std::size_t> width;
    for (std::size_t i = 0; i < n; ++i) {
      if (level[i] >= width.size()) width.resize(level[i] + 1, 0);
      max_parallelism_ = std::max(max_parallelism_, ++width[level[i]]);
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();
  if (n > 0) {
    remaining_ = std::make_unique<std::atomic<std::uint32_t>[]>(n);
    ready_ = std::make_unique<std::atomic<std::uint32_t>[]>(n);
  }
  sealed_ = true;
}

void TaskGraph::replay(void* ctx) {
  PWDFT_CHECK(sealed_, "TaskGraph: seal() before replay()");
  if (nodes_.empty()) return;
  pool().run_graph(*this, ctx);
}

void TaskGraph::reset_replay(void* ctx) {
  // Serialized by the pool's job mutex: at most one pool-backed replay of
  // any graph is in flight (serial fallback runs touch none of this state).
  const std::uint32_t n = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    remaining_[i].store(nodes_[i].deps, std::memory_order_relaxed);
    ready_[i].store(kEmpty, std::memory_order_relaxed);
  }
  cancel_.store(false, std::memory_order_relaxed);
  claim_.store(0, std::memory_order_relaxed);
  ctx_ = ctx;
  std::uint32_t p = 0;
  for (const std::uint32_t r : roots_) ready_[p++].store(r, std::memory_order_relaxed);
  push_.store(p, std::memory_order_relaxed);
  // Workers observe all of the above through the wake_mutex_ bracket that
  // publishes the job.
}

void TaskGraph::work() {
  const auto total = static_cast<std::uint32_t>(nodes_.size());
  for (;;) {
    const std::uint32_t slot = claim_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= total) return;
    // Every replay pushes exactly `total` entries (each node once, when its
    // counter drains), so slot < total is eventually published — its
    // publisher is a node already claimed by another thread. Spin-wait; the
    // acyclicity of the graph rules out a cycle of waiters (see the no-
    // deadlock argument in docs/threading.md). A cancelled replay (node
    // threw) stops publishing, so bail out on the flag instead.
    std::uint32_t id;
    while ((id = ready_[slot].load(std::memory_order_acquire)) == kEmpty) {
      if (cancel_.load(std::memory_order_relaxed)) return;
      std::this_thread::yield();
    }
    exec_node(id);
  }
}

void TaskGraph::exec_node(std::uint32_t id) {
  Node& nd = nodes_[id];
  if (cancel_.load(std::memory_order_relaxed)) return;  // error path: skip bodies
  try {
    invoke(nd, ctx_);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(error_mutex_);
      if (!error_) error_ = std::current_exception();
    }
    cancel_.store(true, std::memory_order_release);
    return;  // successors are never pushed; waiters exit via cancel_
  }
  for (std::uint32_t s = nd.succ_begin; s < nd.succ_end; ++s) {
    const std::uint32_t succ = succ_[s];
    // acq_rel: the final decrement observes every predecessor's writes and
    // the release-publish below carries them to whichever thread claims the
    // slot.
    if (remaining_[succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::uint32_t slot = push_.fetch_add(1, std::memory_order_relaxed);
      ready_[slot].store(succ, std::memory_order_release);
    }
  }
}

void TaskGraph::run_serial(void* ctx) {
  for (Node& nd : nodes_) invoke(nd, ctx);
}

std::exception_ptr TaskGraph::take_error() {
  std::lock_guard<std::mutex> lk(error_mutex_);
  std::exception_ptr err = error_;
  error_ = nullptr;
  return err;
}

std::future<void> ThreadPool::run_async(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lk(async_mutex_);
    PWDFT_CHECK(!async_stop_, "ThreadPool: run_async after shutdown");
    async_queue_.push_back(std::move(pt));
    // Every parked helper can drain exactly one pending task; tasks beyond
    // that could wait forever behind a *blocking* task (e.g. a collective
    // broadcast that needs another rank's task to run to complete), so spawn
    // a helper whenever pending tasks exceed parked helpers.
    if (async_queue_.size() > async_idle_)
      async_threads_.emplace_back([this] { async_loop(); });
  }
  async_cv_.notify_one();
  return fut;
}

void ThreadPool::async_loop() {
  tl_in_async = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lk(async_mutex_);
      ++async_idle_;
      async_cv_.wait(lk, [&] { return async_stop_ || !async_queue_.empty(); });
      --async_idle_;
      if (async_queue_.empty()) return;  // stop requested and drained
      task = std::move(async_queue_.front());
      async_queue_.pop_front();
    }
    task();
  }
}

TaskGroup::~TaskGroup() {
  for (auto& f : futures_) {
    if (!f.valid()) continue;
    try {
      f.get();
    } catch (...) {
      // Destructor path: the owner is already unwinding (or forgot to call
      // wait()); the error must not escape.
    }
  }
}

void TaskGroup::run(std::function<void()> task) {
  futures_.push_back(pool().run_async(std::move(task)));
}

void TaskGroup::wait() {
  std::exception_ptr first;
  for (auto& f : futures_) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  futures_.clear();
  if (first) std::rethrow_exception(first);
}

namespace {

std::size_t default_threads() {
  // Strict parse (common/env.hpp): PWDFT_NUM_THREADS=sixteen used to atol
  // to 0 and silently fall back to hardware concurrency.
  const long v = env::integer("PWDFT_NUM_THREADS", 0, 1, 64);
  if (v >= 1) return static_cast<std::size_t>(v);
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 16);
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
// Lock-free fast path for pool(): parallel_for is called from the hottest
// loops, so reads must not serialize on g_pool_mutex.
std::atomic<ThreadPool*> g_pool_ptr{nullptr};

}  // namespace

ThreadPool& pool() {
  if (ThreadPool* p = g_pool_ptr.load(std::memory_order_acquire)) return *p;
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(default_threads());
    g_pool_ptr.store(g_pool.get(), std::memory_order_release);
  }
  return *g_pool;
}

std::size_t num_threads() { return pool().size(); }

void set_num_threads(std::size_t n) {
  PWDFT_CHECK(n >= 1, "set_num_threads: need at least one thread");
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  g_pool_ptr.store(nullptr, std::memory_order_release);
  g_pool.reset();  // join old workers before spawning the new pool
  g_pool = std::make_unique<ThreadPool>(n);
  g_pool_ptr.store(g_pool.get(), std::memory_order_release);
}

void reinit_after_fork() {
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  g_pool_ptr.store(nullptr, std::memory_order_release);
  // Deliberately leak instead of reset(): the destructor joins worker
  // threads, and in a fork()ed child those threads were never created — a
  // join would block forever. The leak is one pool object per child
  // process, reclaimed at _exit.
  (void)g_pool.release();
}

std::span<Complex> Workspace::cbuf(Slot s, std::size_t n) {
  auto& v = c_[static_cast<std::size_t>(s)];
  if (v.size() < n) v.resize(n);
  return {v.data(), n};
}

std::span<double> Workspace::rbuf(Slot s, std::size_t n) {
  auto& v = r_[static_cast<std::size_t>(s)];
  if (v.size() < n) v.resize(n);
  return {v.data(), n};
}

std::span<std::complex<float>> Workspace::fbuf(Slot s, std::size_t n) {
  auto& v = f_[static_cast<std::size_t>(s)];
  if (v.size() < n) v.resize(n);
  return {v.data(), n};
}

CMatrix& Workspace::cmat(Slot s, std::size_t rows, std::size_t cols) {
  CMatrix& m = m_[static_cast<std::size_t>(s)];
  m.reshape(rows, cols);
  return m;
}

std::size_t Workspace::bytes_reserved() const {
  std::size_t b = 0;
  for (std::size_t i = 0; i < kSlots; ++i) {
    b += c_[i].capacity() * sizeof(Complex);
    b += r_[i].capacity() * sizeof(double);
    b += f_[i].capacity() * sizeof(std::complex<float>);
    b += m_[i].size() * sizeof(Complex);
  }
  return b;
}

Workspace& workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace pwdft::exec
