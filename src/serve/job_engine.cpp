#include "serve/job_engine.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/env.hpp"
#include "io/checkpoint.hpp"
#include "perf/model.hpp"

namespace pwdft::serve {

namespace {

// --- TimePoint <-> flat doubles (trace persistence via io::save_blob) ------

constexpr std::size_t kPointDoubles = 11;

void encode_point(const td::TimePoint& p, double* out) {
  out[0] = p.t;
  out[1] = p.current[0];
  out[2] = p.current[1];
  out[3] = p.current[2];
  out[4] = p.n_excited;
  out[5] = p.energy;
  out[6] = static_cast<double>(p.scf_iterations);
  out[7] = p.rho_error;
  out[8] = p.wall_seconds;
  out[9] = p.exchange_refreshed ? 1.0 : 0.0;
  out[10] = p.mts_drift;
}

td::TimePoint decode_point(const double* in) {
  td::TimePoint p;
  p.t = in[0];
  p.current = {in[1], in[2], in[3]};
  p.n_excited = in[4];
  p.energy = in[5];
  p.scf_iterations = static_cast<int>(in[6]);
  p.rho_error = in[7];
  p.wall_seconds = in[8];
  p.exchange_refreshed = in[9] != 0.0;
  p.mts_drift = in[10];
  return p;
}

std::vector<double> encode_trace(const std::vector<td::TimePoint>& trace) {
  std::vector<double> flat(trace.size() * kPointDoubles);
  for (std::size_t i = 0; i < trace.size(); ++i) encode_point(trace[i], &flat[i * kPointDoubles]);
  return flat;
}

std::vector<td::TimePoint> decode_trace(const std::vector<double>& flat) {
  PWDFT_CHECK(flat.size() % kPointDoubles == 0,
              "serve: trace blob has " << flat.size() << " doubles, not a multiple of "
                                       << kPointDoubles);
  std::vector<td::TimePoint> trace(flat.size() / kPointDoubles);
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i] = decode_point(&flat[i * kPointDoubles]);
  return trace;
}

}  // namespace

std::size_t serve_slots_env_default() {
  return static_cast<std::size_t>(env::integer("PWDFT_SERVE_SLOTS", 2, 1, 64));
}

/// Full per-job record; JobStatus is the copyable slice handed to callers.
struct JobEngine::Job {
  JobId id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::vector<td::TimePoint> trace;
  std::uint64_t steps_done = 0;
  double model_cost = 0.0;
  double scf_energy = 0.0;
  std::string error;
  bool preempt_requested = false;
  std::uint64_t submit_order = 0;  ///< FIFO tiebreak within a priority

  std::string gs_path;     ///< ground-state orbitals (excitation reference)
  std::string psi_path;    ///< latest propagation snapshot
  std::string trace_path;  ///< trace recorded up to that snapshot

  JobStatus to_status() const {
    JobStatus s;
    s.state = state;
    s.trace = trace;
    s.steps_done = steps_done;
    s.model_cost = model_cost;
    s.scf_energy = scf_energy;
    s.error = error;
    return s;
  }
};

double JobEngine::cost_estimate(const JobSpec& spec) {
  const std::size_t natoms = 8 * static_cast<std::size_t>(spec.sim.cells[0]) *
                             spec.sim.cells[1] * spec.sim.cells[2];
  return perf::job_cost(perf::SummitMachine{}, perf::Workload::silicon(natoms),
                        spec.kind == JobKind::kScf ? 1 : spec.steps);
}

JobEngine::JobEngine(JobEngineOptions opt) : opt_(std::move(opt)) {}

JobEngine::~JobEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;  // pump_locked admits nothing more
  }
  for (std::thread& t : threads_) t.join();
}

JobId JobEngine::submit(JobSpec spec) {
  PWDFT_CHECK(!spec.name.empty(), "serve: jobs must be named (names key checkpoint files)");
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& j : jobs_)
    PWDFT_CHECK(j->spec.name != spec.name,
                "serve: duplicate job name '" << spec.name << "'");
  auto job = std::make_unique<Job>();
  job->id = jobs_.size();
  job->model_cost = cost_estimate(spec);
  job->submit_order = jobs_.size();
  const std::string base = opt_.checkpoint_dir + "/" + spec.name;
  job->gs_path = base + ".gs.ckpt";
  job->psi_path = base + ".psi.ckpt";
  job->trace_path = base + ".trace.ckpt";
  job->spec = std::move(spec);
  jobs_.push_back(std::move(job));
  const JobId id = jobs_.back()->id;
  pump_locked();
  return id;
}

void JobEngine::preempt(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  PWDFT_CHECK(id < jobs_.size(), "serve: unknown job id " << id);
  Job& job = *jobs_[id];
  job.preempt_requested = true;
  if (job.state == JobState::kQueued) {
    job.state = JobState::kPreempted;
    cv_.notify_all();
  }
}

JobId JobEngine::resume(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  PWDFT_CHECK(id < jobs_.size(), "serve: unknown job id " << id);
  Job& job = *jobs_[id];
  PWDFT_CHECK(job.state == JobState::kPreempted || job.state == JobState::kFailed,
              "serve: job '" << job.spec.name << "' is not preempted/failed");
  job.state = JobState::kQueued;
  job.preempt_requested = false;
  job.error.clear();
  pump_locked();
  return id;
}

JobStatus JobEngine::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  PWDFT_CHECK(id < jobs_.size(), "serve: unknown job id " << id);
  cv_.wait(lock, [&] {
    const JobState s = jobs_[id]->state;
    return s != JobState::kQueued && s != JobState::kRunning;
  });
  return jobs_[id]->to_status();
}

void JobEngine::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    for (const auto& j : jobs_)
      if (j->state == JobState::kQueued || j->state == JobState::kRunning) return false;
    return true;
  });
}

JobStatus JobEngine::status(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  PWDFT_CHECK(id < jobs_.size(), "serve: unknown job id " << id);
  return jobs_[id]->to_status();
}

void JobEngine::pump_locked() {
  if (shutdown_) return;
  for (;;) {
    if (running_ >= opt_.max_running) return;
    // Highest priority first, then submission order: deterministic given
    // the same submission/completion sequence.
    Job* next = nullptr;
    for (const auto& j : jobs_) {
      if (j->state != JobState::kQueued) continue;
      if (!next || j->spec.priority > next->spec.priority ||
          (j->spec.priority == next->spec.priority && j->submit_order < next->submit_order))
        next = j.get();
    }
    if (!next) return;
    // The cost gate never starves: an over-budget job runs once the engine
    // drains (admitted alone).
    if (opt_.cost_budget > 0.0 && running_ > 0 &&
        running_cost_ + next->model_cost > opt_.cost_budget)
      return;
    next->state = JobState::kRunning;
    ++running_;
    running_cost_ += next->model_cost;
    threads_.emplace_back([this, job = next] { run_job(*job); });
  }
}

std::shared_ptr<const ham::PlanewaveSetup> JobEngine::setup_for(
    const core::SimulationOptions& sim) {
  std::lock_guard<std::mutex> lock(setup_mu_);
  for (const auto& [key, setup] : setups_) {
    if (key.cells[0] == sim.cells[0] && key.cells[1] == sim.cells[1] &&
        key.cells[2] == sim.cells[2] && key.ecut == sim.ecut &&
        key.dense_factor == sim.dense_factor)
      return setup;
  }
  auto setup = std::make_shared<const ham::PlanewaveSetup>(
      crystal::Crystal::silicon_supercell(sim.cells[0], sim.cells[1], sim.cells[2]), sim.ecut,
      sim.dense_factor);
  setups_.emplace_back(SetupKey{{sim.cells[0], sim.cells[1], sim.cells[2]}, sim.ecut,
                                sim.dense_factor},
                       setup);
  return setup;
}

void JobEngine::run_job(Job& job) {
  std::vector<td::TimePoint> trace;
  std::uint64_t steps_done = 0;
  double scf_energy = 0.0;
  std::string error;
  bool preempted = false;

  try {
    core::Simulation sim(setup_for(job.spec.sim), job.spec.sim);

    // Resume state: non-empty when a usable snapshot pair exists.
    CMatrix psi_gs;
    double t0 = 0.0;
    std::uint64_t step0 = 0;
    bool resuming = false;
    if (job.spec.checkpoint_every > 0) {
      try {
        io::CheckpointMeta meta_gs = io::load_wavefunctions(job.gs_path, psi_gs);
        CMatrix psi_ckpt;
        const io::CheckpointMeta meta = io::load_wavefunctions(job.psi_path, psi_ckpt, &meta_gs);
        std::vector<double> flat;
        io::load_blob(job.trace_path, flat);
        trace = decode_trace(flat);
        sim.restore_wavefunctions(psi_ckpt);
        t0 = meta.time_au;
        step0 = meta.step;
        steps_done = step0;
        resuming = true;
      } catch (const Error&) {
        // No (or unreadable) snapshot: start from scratch. A torn file is
        // impossible by construction (atomic saves), but a checkpoint from
        // before the job's first snapshot simply does not exist yet.
        trace.clear();
        psi_gs = CMatrix();
        resuming = false;
      }
    }

    if (!resuming) {
      const scf::ScfResult scf = sim.ground_state();
      scf_energy = scf.energy.total();
      if (job.spec.checkpoint_every > 0 && job.spec.kind != JobKind::kScf) {
        // Ground-state orbitals: the excitation reference every resume
        // needs, and the compatibility stamp for later snapshots.
        io::save_wavefunctions(
            job.gs_path,
            io::CheckpointMeta::from_setup(sim.setup(), sim.wavefunctions().cols(), 0.0, 0),
            sim.wavefunctions());
      }
    }

    if (job.spec.kind != JobKind::kScf && steps_done < static_cast<std::uint64_t>(job.spec.steps)) {
      const auto field = job.spec.build_field();
      core::PropagateOptions prop;
      prop.integrator = core::Integrator::kPtCn;
      prop.dt_as = job.spec.dt_as;
      prop.steps = static_cast<int>(job.spec.steps - steps_done);
      prop.field = field.get();
      prop.ptcn = job.spec.ptcn;
      prop.record_energy = job.spec.record_energy;
      prop.t0 = t0;
      prop.step0 = step0;
      prop.record_initial = !resuming;
      if (resuming) prop.psi0_reference = &psi_gs;
      prop.on_step = [&](std::uint64_t step, const std::vector<td::TimePoint>& live,
                         const CMatrix& psi, double t) {
        steps_done = step;
        if (job.spec.checkpoint_every > 0 && step % job.spec.checkpoint_every == 0 &&
            step < static_cast<std::uint64_t>(job.spec.steps)) {
          // Snapshot = psi + trace-so-far, both atomic. `trace` holds the
          // pre-resume prefix, `live` what this propagate() recorded, so
          // the blob is always the full history from t = 0.
          const auto meta = io::CheckpointMeta::from_setup(sim.setup(), psi.cols(), t, step);
          io::save_wavefunctions(job.psi_path, meta, psi);
          std::vector<td::TimePoint> full = trace;
          full.insert(full.end(), live.begin(), live.end());
          io::save_blob(job.trace_path, meta, encode_trace(full));
        }
        // Preemption is checked after the cadence snapshot (a kill request
        // stops the job at this boundary, not mid-write), but nothing else
        // is persisted: anything since the last on-cadence snapshot is
        // lost, exactly as in a real kill.
        std::lock_guard<std::mutex> lock(mu_);
        if (jobs_[job.id]->preempt_requested) {
          preempted = true;
          return false;
        }
        return true;
      };
      auto live = sim.propagate(prop);
      trace.insert(trace.end(), live.begin(), live.end());
    } else if (job.spec.kind != JobKind::kScf) {
      // Resumed at or past the requested horizon: nothing to do.
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  std::lock_guard<std::mutex> lock(mu_);
  Job& j = *jobs_[job.id];
  j.trace = std::move(trace);
  j.steps_done = steps_done;
  if (scf_energy != 0.0) j.scf_energy = scf_energy;
  if (!error.empty()) {
    j.state = JobState::kFailed;
    j.error = std::move(error);
  } else {
    j.state = preempted ? JobState::kPreempted : JobState::kDone;
  }
  --running_;
  running_cost_ -= j.model_cost;
  pump_locked();
  cv_.notify_all();
}

}  // namespace pwdft::serve
