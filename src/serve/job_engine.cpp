#include "serve/job_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/check.hpp"
#include "common/env.hpp"
#include "io/checkpoint.hpp"
#include "perf/model.hpp"
#include "serve/wire.hpp"

namespace pwdft::serve {

namespace {

constexpr const char* kSpecSuffix = ".spec.ckpt";

JobStatus unknown_job_status(JobId id) {
  JobStatus s;
  s.error = ErrorCode::kUnknownJob;
  s.message = "unknown job id " + std::to_string(id);
  return s;
}

}  // namespace

JobEngineOptions JobEngineOptions::from_env() {
  JobEngineOptions o;
  o.max_running = static_cast<std::size_t>(env::integer("PWDFT_SERVE_SLOTS", 2, 1, 64));
  o.checkpoint_dir = env::text("PWDFT_SERVE_CKPT_DIR", o.checkpoint_dir);
  o.recover_on_start = env::flag("PWDFT_SERVE_RECOVER", false);
  return o;
}

/// Full per-job record; JobStatus is the copyable slice handed to callers.
struct JobEngine::Job {
  JobId id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::vector<td::TimePoint> trace;
  std::uint64_t steps_done = 0;  ///< published live at step boundaries
  double model_cost = 0.0;
  double scf_energy = 0.0;
  std::uint32_t preemptions = 0;  ///< scheduler evictions suffered
  ErrorCode error = ErrorCode::kOk;
  std::string message;
  bool preempt_requested = false;
  bool cancel_requested = false;
  bool evict_requested = false;   ///< scheduler-initiated preemption
  std::uint64_t submit_order = 0;  ///< FIFO tiebreak within a priority

  std::string spec_path;   ///< durable JobSpec (restart-recovery key)
  std::string gs_path;     ///< ground-state orbitals (excitation reference)
  std::string psi_path;    ///< latest propagation snapshot
  std::string trace_path;  ///< trace recorded up to that snapshot

  void set_paths(const std::string& dir) {
    const std::string base = dir + "/" + spec.name;
    spec_path = base + kSpecSuffix;
    gs_path = base + ".gs.ckpt";
    psi_path = base + ".psi.ckpt";
    trace_path = base + ".trace.ckpt";
  }

  /// Removes the durable spec (job no longer restart-recoverable).
  void drop_spec_file() const { std::remove(spec_path.c_str()); }
  /// Removes every on-disk artifact (cancel semantics).
  void drop_all_files() const {
    drop_spec_file();
    std::remove(gs_path.c_str());
    std::remove(psi_path.c_str());
    std::remove(trace_path.c_str());
  }

  JobStatus to_status() const {
    JobStatus s;
    s.state = state;
    s.trace = trace;
    s.steps_done = steps_done;
    s.model_cost = model_cost;
    s.scf_energy = scf_energy;
    s.preemptions = preemptions;
    s.error = error;
    s.message = message;
    return s;
  }
};

double JobEngine::cost_estimate(const JobSpec& spec) {
  const std::size_t natoms = 8 * static_cast<std::size_t>(spec.sim.cells[0]) *
                             spec.sim.cells[1] * spec.sim.cells[2];
  return perf::job_cost(perf::SummitMachine{}, perf::Workload::silicon(natoms),
                        spec.kind == JobKind::kScf ? 1 : spec.steps);
}

JobEngine::JobEngine(JobEngineOptions opt) : opt_(std::move(opt)) {
  if (opt_.recover_on_start) recover();
}

void JobEngine::begin_shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;  // pump_locked admits nothing more
  cv_.notify_all();  // unblock wait/wait_progress/wait_all
}

JobEngine::~JobEngine() {
  begin_shutdown();
  for (std::thread& t : threads_) t.join();
}

SubmitResult JobEngine::register_locked(JobSpec spec, bool persist_spec) {
  if (shutdown_) return {ErrorCode::kShutdown, 0, "engine is shutting down"};
  std::string why;
  if (spec.validate(&why) != ErrorCode::kOk) return {ErrorCode::kInvalidSpec, 0, why};
  for (const auto& j : jobs_)
    if (j->spec.name == spec.name)
      return {ErrorCode::kDuplicateName, j->id, "duplicate job name '" + spec.name + "'"};
  auto job = std::make_unique<Job>();
  job->id = jobs_.size();
  job->model_cost = cost_estimate(spec);
  job->submit_order = jobs_.size();
  job->spec = std::move(spec);
  job->set_paths(opt_.checkpoint_dir);
  if (persist_spec) {
    // The durable spec is what recover() replays after a process restart;
    // a job that cannot be made durable is not accepted at all.
    try {
      wire::save_spec_file(job->spec_path, job->spec);
    } catch (const Error& e) {
      return {ErrorCode::kIoError, 0, e.what()};
    }
  }
  jobs_.push_back(std::move(job));
  const JobId id = jobs_.back()->id;
  pump_locked();
  return {ErrorCode::kOk, id, {}};
}

SubmitResult JobEngine::submit(JobSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  return register_locked(std::move(spec), /*persist_spec=*/true);
}

std::vector<JobId> JobEngine::recover() {
  // Collect candidate names first (sorted: recovery order — and therefore
  // id assignment — is deterministic, not directory-iteration order).
  std::vector<std::string> names;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(opt_.checkpoint_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string fname = it->path().filename().string();
    if (fname.size() > std::char_traits<char>::length(kSpecSuffix) &&
        fname.ends_with(kSpecSuffix))
      names.push_back(fname.substr(0, fname.size() - std::char_traits<char>::length(kSpecSuffix)));
  }
  std::sort(names.begin(), names.end());

  std::vector<JobId> ids;
  for (const std::string& name : names) {
    JobSpec spec;
    const std::string path = opt_.checkpoint_dir + "/" + name + kSpecSuffix;
    if (wire::load_spec_file(path, &spec) != ErrorCode::kOk) continue;
    if (spec.name != name) continue;  // snapshot must match its own key
    std::lock_guard<std::mutex> lock(mu_);
    bool known = false;
    for (const auto& j : jobs_)
      if (j->spec.name == name) known = true;
    if (known) continue;
    const SubmitResult r = register_locked(std::move(spec), /*persist_spec=*/false);
    if (r.ok()) ids.push_back(r.id);
  }
  return ids;
}

ErrorCode JobEngine::preempt(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= jobs_.size()) return ErrorCode::kUnknownJob;
  Job& job = *jobs_[id];
  if (is_terminal(job.state)) return ErrorCode::kOk;  // already stopped
  job.preempt_requested = true;
  if (job.state == JobState::kQueued) {
    job.state = JobState::kPreempted;
    cv_.notify_all();
  }
  return ErrorCode::kOk;
}

ErrorCode JobEngine::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= jobs_.size()) return ErrorCode::kUnknownJob;
  Job& job = *jobs_[id];
  if (job.state == JobState::kCancelled) return ErrorCode::kOk;
  if (job.state == JobState::kDone) return ErrorCode::kOk;  // finished first
  job.cancel_requested = true;
  if (job.state != JobState::kRunning) {
    // Queued or already-stopped (preempted/failed): cancel takes effect now.
    job.state = JobState::kCancelled;
    job.drop_all_files();
    cv_.notify_all();
  }
  return ErrorCode::kOk;  // a running job lands in kCancelled at its next boundary
}

SubmitResult JobEngine::resume(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= jobs_.size())
    return {ErrorCode::kUnknownJob, 0, "unknown job id " + std::to_string(id)};
  Job& job = *jobs_[id];
  if (job.state == JobState::kQueued || job.state == JobState::kRunning)
    return {ErrorCode::kAlreadyActive, job.id,
            "job '" + job.spec.name + "' is still " + state_name(job.state)};
  if (job.state == JobState::kDone) return {ErrorCode::kOk, job.id, {}};  // idempotent
  if (job.state == JobState::kCancelled)
    return {ErrorCode::kNotResumable, job.id, "job '" + job.spec.name + "' was cancelled"};
  job.state = JobState::kQueued;
  job.preempt_requested = false;
  job.evict_requested = false;
  job.error = ErrorCode::kOk;
  job.message.clear();
  pump_locked();
  return {ErrorCode::kOk, job.id, {}};
}

SubmitResult JobEngine::resume(const std::string& name) {
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool found = false;
    for (const auto& j : jobs_)
      if (j->spec.name == name) {
        id = j->id;
        found = true;
      }
    if (!found) return {ErrorCode::kUnknownJob, 0, "no job named '" + name + "'"};
  }
  return resume(id);
}

JobStatus JobEngine::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (id >= jobs_.size()) return unknown_job_status(id);
  cv_.wait(lock, [&] { return shutdown_ || is_terminal(jobs_[id]->state); });
  JobStatus s = jobs_[id]->to_status();
  if (!is_terminal(s.state)) {
    s.error = ErrorCode::kShutdown;
    s.message = "engine shut down before the job finished";
  }
  return s;
}

JobStatus JobEngine::wait_progress(JobId id, std::uint64_t seen_steps) {
  std::unique_lock<std::mutex> lock(mu_);
  if (id >= jobs_.size()) return unknown_job_status(id);
  cv_.wait(lock, [&] {
    return shutdown_ || is_terminal(jobs_[id]->state) || jobs_[id]->steps_done != seen_steps;
  });
  JobStatus s = jobs_[id]->to_status();
  if (!is_terminal(s.state) && shutdown_) {
    s.error = ErrorCode::kShutdown;
    s.message = "engine shut down before the job finished";
  }
  return s;
}

void JobEngine::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    if (shutdown_) return true;
    for (const auto& j : jobs_)
      if (j->state == JobState::kQueued || j->state == JobState::kRunning) return false;
    return true;
  });
}

JobStatus JobEngine::status(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= jobs_.size()) return unknown_job_status(id);
  return jobs_[id]->to_status();
}

std::optional<JobId> JobEngine::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& j : jobs_)
    if (j->spec.name == name) return j->id;
  return std::nullopt;
}

std::size_t JobEngine::job_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

void JobEngine::pump_locked() {
  if (shutdown_) return;
  for (;;) {
    // Highest priority first, then submission order: deterministic given
    // the same submission/completion sequence.
    Job* next = nullptr;
    for (const auto& j : jobs_) {
      if (j->state != JobState::kQueued) continue;
      if (!next || j->spec.priority > next->spec.priority ||
          (j->spec.priority == next->spec.priority && j->submit_order < next->submit_order))
        next = j.get();
    }
    if (!next) return;
    if (running_ >= opt_.max_running) {
      // Scheduler preemption: a starved higher-priority job evicts the
      // cheapest running job of strictly lower priority. The victim stops
      // cooperatively at its next step boundary with crash semantics (work
      // since its last snapshot is lost) and is requeued, so it resumes
      // from its newest checkpoint once a slot frees up again.
      Job* victim = nullptr;
      for (const auto& j : jobs_) {
        if (j->state != JobState::kRunning) continue;
        if (j->preempt_requested || j->cancel_requested || j->evict_requested) continue;
        if (j->spec.priority >= next->spec.priority) continue;
        if (!victim || j->model_cost < victim->model_cost) victim = j.get();
      }
      if (victim) victim->evict_requested = true;
      return;
    }
    // The cost gate never starves: an over-budget job runs once the engine
    // drains (admitted alone).
    if (opt_.cost_budget > 0.0 && running_ > 0 &&
        running_cost_ + next->model_cost > opt_.cost_budget)
      return;
    next->state = JobState::kRunning;
    ++running_;
    running_cost_ += next->model_cost;
    threads_.emplace_back([this, job = next] { run_job(*job); });
  }
}

std::shared_ptr<const ham::PlanewaveSetup> JobEngine::setup_for(
    const core::SimulationOptions& sim) {
  std::lock_guard<std::mutex> lock(setup_mu_);
  for (const auto& [key, setup] : setups_) {
    if (key.cells[0] == sim.cells[0] && key.cells[1] == sim.cells[1] &&
        key.cells[2] == sim.cells[2] && key.ecut == sim.ecut &&
        key.dense_factor == sim.dense_factor)
      return setup;
  }
  auto setup = std::make_shared<const ham::PlanewaveSetup>(
      crystal::Crystal::silicon_supercell(sim.cells[0], sim.cells[1], sim.cells[2]), sim.ecut,
      sim.dense_factor);
  setups_.emplace_back(SetupKey{{sim.cells[0], sim.cells[1], sim.cells[2]}, sim.ecut,
                                sim.dense_factor},
                       setup);
  return setup;
}

void JobEngine::run_job(Job& job) {
  std::vector<td::TimePoint> trace;
  std::uint64_t steps_done = 0;
  double scf_energy = 0.0;
  std::string error;
  enum class Stop { kNone, kPreempt, kCancel, kEvict };
  Stop stop = Stop::kNone;

  try {
    core::Simulation sim(setup_for(job.spec.sim), job.spec.sim);

    // Resume state: non-empty when a usable snapshot pair exists.
    CMatrix psi_gs;
    double t0 = 0.0;
    std::uint64_t step0 = 0;
    bool resuming = false;
    if (job.spec.checkpoint_every > 0) {
      try {
        io::CheckpointMeta meta_gs = io::load_wavefunctions(job.gs_path, psi_gs);
        CMatrix psi_ckpt;
        const io::CheckpointMeta meta = io::load_wavefunctions(job.psi_path, psi_ckpt, &meta_gs);
        std::vector<double> flat;
        io::load_blob(job.trace_path, flat);
        trace = wire::unflatten_trace(flat);
        sim.restore_wavefunctions(psi_ckpt);
        t0 = meta.time_au;
        step0 = meta.step;
        steps_done = step0;
        resuming = true;
      } catch (const Error&) {
        // No (or unreadable) snapshot: start from scratch. A torn file is
        // impossible by construction (atomic saves), but a checkpoint from
        // before the job's first snapshot simply does not exist yet.
        trace.clear();
        psi_gs = CMatrix();
        resuming = false;
      }
    }

    if (!resuming) {
      const scf::ScfResult scf = sim.ground_state();
      scf_energy = scf.energy.total();
      {
        // Publish the ground-state energy while the job is still running,
        // so streamed statuses carry it.
        std::lock_guard<std::mutex> lock(mu_);
        jobs_[job.id]->scf_energy = scf_energy;
      }
      if (job.spec.checkpoint_every > 0 && job.spec.kind != JobKind::kScf) {
        // Ground-state orbitals: the excitation reference every resume
        // needs, and the compatibility stamp for later snapshots.
        io::save_wavefunctions(
            job.gs_path,
            io::CheckpointMeta::from_setup(sim.setup(), sim.wavefunctions().cols(), 0.0, 0),
            sim.wavefunctions());
      }
    }

    if (job.spec.kind != JobKind::kScf && steps_done < static_cast<std::uint64_t>(job.spec.steps)) {
      const auto field = job.spec.build_field();
      core::PropagateOptions prop;
      prop.integrator = core::Integrator::kPtCn;
      prop.dt_as = job.spec.dt_as;
      prop.steps = static_cast<int>(job.spec.steps - steps_done);
      prop.field = field.get();
      prop.ptcn = job.spec.ptcn;
      prop.record_energy = job.spec.record_energy;
      prop.t0 = t0;
      prop.step0 = step0;
      prop.record_initial = !resuming;
      if (resuming) prop.psi0_reference = &psi_gs;
      prop.on_step = [&](std::uint64_t step, const std::vector<td::TimePoint>& live,
                         const CMatrix& psi, double t) {
        steps_done = step;
        if (job.spec.checkpoint_every > 0 && step % job.spec.checkpoint_every == 0 &&
            step < static_cast<std::uint64_t>(job.spec.steps)) {
          // Snapshot = psi + trace-so-far, both atomic. `trace` holds the
          // pre-resume prefix, `live` what this propagate() recorded, so
          // the blob is always the full history from t = 0.
          const auto meta = io::CheckpointMeta::from_setup(sim.setup(), psi.cols(), t, step);
          io::save_wavefunctions(job.psi_path, meta, psi);
          std::vector<td::TimePoint> full = trace;
          full.insert(full.end(), live.begin(), live.end());
          io::save_blob(job.trace_path, meta, wire::flatten_trace(full));
        }
        // Stop requests are checked after the cadence snapshot (a kill
        // lands at this boundary, not mid-write), and live progress is
        // published only now — an observer that sees steps_done == k knows
        // snapshot k is already on disk. Nothing else is persisted:
        // anything since the last on-cadence snapshot is lost, exactly as
        // in a real kill. Request priority: cancel > client preempt >
        // scheduler eviction.
        std::lock_guard<std::mutex> lock(mu_);
        Job& j = *jobs_[job.id];
        j.steps_done = step;
        if (j.cancel_requested)
          stop = Stop::kCancel;
        else if (j.preempt_requested)
          stop = Stop::kPreempt;
        else if (j.evict_requested)
          stop = Stop::kEvict;
        cv_.notify_all();
        return stop == Stop::kNone;
      };
      auto live = sim.propagate(prop);
      trace.insert(trace.end(), live.begin(), live.end());
    } else if (job.spec.kind != JobKind::kScf) {
      // Resumed at or past the requested horizon: nothing to do.
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  std::lock_guard<std::mutex> lock(mu_);
  Job& j = *jobs_[job.id];
  j.trace = std::move(trace);
  j.steps_done = steps_done;
  if (scf_energy != 0.0) j.scf_energy = scf_energy;
  if (!error.empty()) {
    j.state = JobState::kFailed;
    j.error = ErrorCode::kJobFailed;
    j.message = std::move(error);
  } else if (stop == Stop::kCancel || j.cancel_requested) {
    // A cancel that landed too late to stop the run still wins: the caller
    // asked for the job to be gone.
    j.state = JobState::kCancelled;
    j.drop_all_files();
  } else if (stop == Stop::kEvict) {
    // Scheduler preemption: straight back into the queue; the next
    // admission resumes from the newest snapshot.
    j.state = JobState::kQueued;
    j.evict_requested = false;
    ++j.preemptions;
  } else if (stop == Stop::kPreempt || j.preempt_requested) {
    j.state = JobState::kPreempted;
  } else {
    j.state = JobState::kDone;
    j.drop_spec_file();  // no longer restart-recoverable work
  }
  --running_;
  running_cost_ -= j.model_cost;
  pump_locked();
  cv_.notify_all();
}

}  // namespace pwdft::serve
