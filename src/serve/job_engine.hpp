#pragma once

/// \file job_engine.hpp
/// Multi-tenant job engine: a long-lived service that accepts a queue of
/// typed simulation jobs (serve/job.hpp — the examples/ workloads), runs
/// them concurrently on the shared process-wide exec pool, and checkpoints
/// running trajectories so a killed or preempted job resumes bit-exactly.
///
/// Scheduling. Queued jobs are admitted highest-priority-first (FIFO within
/// a priority) subject to two limits: a running-slot cap (max_running, env
/// PWDFT_SERVE_SLOTS) and a cost budget — each job is priced by the
/// calibrated performance model (perf::job_cost on its Workload), and the
/// sum of admitted costs stays under cost_budget. A job too expensive for
/// an empty engine is admitted alone rather than starved. Each admitted job
/// runs on its own engine-owned std::thread: per docs/threading.md,
/// concurrent parallel_for callers race for the pool and losers run inline,
/// so tenants interleave at operator granularity and every trajectory stays
/// bit-identical to its solo run (the async lane is NOT used here — work
/// submitted there can never win the pool).
///
/// Sharing. Tenants with the same cell/cutoff share one PlanewaveSetup
/// (engine-level cache) and — through fft::shared_engine — the same Fft3D
/// instances, so a newly admitted tenant replays the graph caches its
/// predecessors already built instead of rewarming them.
///
/// Crash safety. Every checkpoint_every steps a job atomically snapshots
/// its wavefunctions and recorded trace (io::checkpoint, v2 format:
/// tmp+rename, checksummed). preempt() stops a job cooperatively at the
/// next step boundary WITHOUT a fresh snapshot — deliberately equivalent to
/// a kill: work since the last snapshot is lost. resume() re-queues the job
/// to continue from its newest snapshot; because a PT-CN step is a pure
/// function of (psi, t) at the default exchange cadence, the stitched
/// trajectory is bit-identical to an uninterrupted run (tests/test_serve.cpp
/// pins this). Resume exactness requires the default per-step exchange
/// refresh (MTS off), which JobSpec does not expose.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/job.hpp"

namespace pwdft::serve {

/// PWDFT_SERVE_SLOTS resolution (strict parse, range [1, 64]); default 2.
std::size_t serve_slots_env_default();

struct JobEngineOptions {
  /// Maximum concurrently running jobs.
  std::size_t max_running = serve_slots_env_default();
  /// Maximum summed perf::job_cost (model-seconds) of concurrently running
  /// jobs; 0 disables the cost gate. See the scheduling notes above.
  double cost_budget = 0.0;
  /// Directory for checkpoint files (`<dir>/<job-name>.{gs,psi,trace}.ckpt`).
  std::string checkpoint_dir = "/tmp";
};

using JobId = std::size_t;

class JobEngine {
 public:
  explicit JobEngine(JobEngineOptions opt = {});
  /// Joins every worker; queued jobs that never started stay kQueued.
  ~JobEngine();
  JobEngine(const JobEngine&) = delete;
  JobEngine& operator=(const JobEngine&) = delete;

  /// Enqueues a job and starts it immediately if admission allows.
  /// Job names must be unique within the engine (they key checkpoints).
  JobId submit(JobSpec spec);

  /// Cooperative kill: a queued job is marked preempted before it starts; a
  /// running job stops at its next step boundary, keeping only state saved
  /// at its last checkpoint (crash semantics — no farewell snapshot).
  void preempt(JobId id);

  /// Re-queues a preempted (or failed) job. If a checkpoint exists the job
  /// continues from it; otherwise it restarts from scratch. Returns the
  /// same id.
  JobId resume(JobId id);

  /// Blocks until the job leaves the queued/running states.
  JobStatus wait(JobId id);
  /// Blocks until no job is queued or running.
  void wait_all();
  /// Non-blocking snapshot.
  JobStatus status(JobId id) const;

  /// The admission price of a spec (perf::job_cost of its workload).
  static double cost_estimate(const JobSpec& spec);

 private:
  struct Job;

  /// Starts every queued job the admission rules allow. Caller holds mu_.
  void pump_locked();
  /// Worker-thread body for one admitted job.
  void run_job(Job& job);
  /// Engine-level PlanewaveSetup cache (keyed by cells/ecut/dense_factor).
  std::shared_ptr<const ham::PlanewaveSetup> setup_for(const core::SimulationOptions& sim);

  JobEngineOptions opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<std::thread> threads_;
  std::size_t running_ = 0;
  double running_cost_ = 0.0;
  bool shutdown_ = false;

  struct SetupKey {
    int cells[3];
    double ecut;
    int dense_factor;
  };
  std::mutex setup_mu_;
  std::vector<std::pair<SetupKey, std::shared_ptr<const ham::PlanewaveSetup>>> setups_;
};

}  // namespace pwdft::serve
