#pragma once

/// \file job_engine.hpp
/// Multi-tenant job engine: a long-lived service that accepts a queue of
/// typed simulation jobs (serve/job.hpp — the examples/ workloads), runs
/// them concurrently on the shared process-wide exec pool, and checkpoints
/// running trajectories so a killed or preempted job resumes bit-exactly.
/// serve::Server puts the versioned wire protocol (serve/wire.hpp) in
/// front of this API; every method here reports failures as typed
/// serve::ErrorCode values so in-process callers and remote clients see
/// the same results.
///
/// Scheduling. Queued jobs are admitted highest-priority-first (FIFO within
/// a priority) subject to two limits: a running-slot cap (max_running, env
/// PWDFT_SERVE_SLOTS via JobEngineOptions::from_env) and a cost budget —
/// each job is priced by the calibrated performance model (perf::job_cost
/// on its Workload), and the sum of admitted costs stays under cost_budget.
/// A job too expensive for an empty engine is admitted alone rather than
/// starved. When every slot is busy and a *higher-priority* job is queued,
/// the scheduler preempts: the cheapest running job with a strictly lower
/// priority is stopped cooperatively at its next step boundary (crash
/// semantics — work since its last snapshot is lost) and requeued, freeing
/// the slot. Each admitted job runs on its own engine-owned std::thread:
/// per docs/threading.md, concurrent parallel_for callers race for the pool
/// and losers run inline, so tenants interleave at operator granularity and
/// every trajectory stays bit-identical to its solo run (the async lane is
/// NOT used here — work submitted there can never win the pool).
///
/// Sharing. Tenants with the same cell/cutoff share one PlanewaveSetup
/// (engine-level cache) and — through fft::shared_engine — the same Fft3D
/// instances, so a newly admitted tenant replays the graph caches its
/// predecessors already built instead of rewarming them.
///
/// Crash safety — in-process AND across process restarts. Every submitted
/// job's spec is persisted to `<dir>/<name>.spec.ckpt` (the wire codec
/// doubles as the durability codec) and removed when the job completes.
/// Every checkpoint_every steps a running job atomically snapshots its
/// wavefunctions and recorded trace (io::checkpoint, v2 format: tmp+rename,
/// checksummed). preempt() stops a job cooperatively at the next step
/// boundary WITHOUT a fresh snapshot — deliberately equivalent to a kill:
/// work since the last snapshot is lost. resume() re-queues the job to
/// continue from its newest snapshot; because a PT-CN step is a pure
/// function of (psi, t) at the default exchange cadence, the stitched
/// trajectory is bit-identical to an uninterrupted run (tests/test_serve.cpp
/// pins this; JobSpec::validate rejects checkpointed MTS jobs). recover()
/// rescans the checkpoint directory after a process restart — e.g. a
/// `kill -9` of the serving process — and re-registers every job whose spec
/// snapshot is still on disk, so each interrupted trajectory continues from
/// its newest snapshot bit-identically (tests/test_server.cpp pins the
/// kill-mid-run → restart → bit-identical path end to end).

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/job.hpp"

namespace pwdft::serve {

struct JobEngineOptions {
  /// Maximum concurrently running jobs.
  std::size_t max_running = 2;
  /// Maximum summed perf::job_cost (model-seconds) of concurrently running
  /// jobs; 0 disables the cost gate. See the scheduling notes above.
  double cost_budget = 0.0;
  /// Directory for per-job files: `<dir>/<name>.spec.ckpt` (durable spec),
  /// `.gs/.psi/.trace.ckpt` (snapshots).
  std::string checkpoint_dir = "/tmp";
  /// Scan checkpoint_dir in the constructor and re-register every job with
  /// a spec snapshot (see recover()). The restart mode of a crashed server.
  bool recover_on_start = false;

  /// The one resolution point for every serve engine env knob (strict
  /// env:: parsing — a typo fails loudly): PWDFT_SERVE_SLOTS (max_running,
  /// [1, 64], default 2), PWDFT_SERVE_CKPT_DIR (checkpoint_dir), and
  /// PWDFT_SERVE_RECOVER (recover_on_start, default off).
  static JobEngineOptions from_env();
};

using JobId = std::size_t;

class JobEngine {
 public:
  explicit JobEngine(JobEngineOptions opt = {});
  /// Joins every worker; queued jobs that never started stay kQueued.
  ~JobEngine();
  JobEngine(const JobEngine&) = delete;
  JobEngine& operator=(const JobEngine&) = delete;

  /// Validates, durably records, and enqueues a job, starting it
  /// immediately if admission allows. Job names must be unique within the
  /// engine (they key checkpoint files).
  SubmitResult submit(JobSpec spec);

  /// Cooperative kill: a queued job is marked preempted before it starts; a
  /// running job stops at its next step boundary, keeping only state saved
  /// at its last checkpoint (crash semantics — no farewell snapshot).
  ErrorCode preempt(JobId id);

  /// Permanent stop: like preempt, but the job lands in kCancelled, its
  /// durable spec and snapshots are deleted, and it can never be resumed.
  /// Cancelling an already-terminal job is an idempotent kOk.
  ErrorCode cancel(JobId id);

  /// Re-queues a preempted (or failed) job. If a checkpoint exists the job
  /// continues from it; otherwise it restarts from scratch. Returns the
  /// same id.
  SubmitResult resume(JobId id);

  /// Resume by checkpoint key, idempotently: a queued/running job is
  /// rejected with kAlreadyActive (never a duplicate run against the same
  /// checkpoint files), a kDone job is a no-op kOk, a cancelled job is
  /// kNotResumable. Always reports the original job's id.
  SubmitResult resume(const std::string& name);

  /// Re-registers every job with a `<name>.spec.ckpt` in checkpoint_dir
  /// (skipping names already known, newest-snapshot resume semantics as
  /// resume()). Returns the ids actually re-registered, in sorted-name
  /// order. Unreadable or corrupt spec files are skipped — recovery of the
  /// healthy jobs must not be hostage to one torn file.
  std::vector<JobId> recover();

  /// Blocks until the job is terminal (kShutdown-flagged status if the
  /// engine shuts down first; kUnknownJob for a bad id).
  JobStatus wait(JobId id);
  /// Blocks until the job's steps_done differs from `seen_steps` or the job
  /// is terminal — the server's per-step streaming primitive (live progress
  /// is published at every propagation step boundary, after that step's
  /// snapshot is on disk).
  JobStatus wait_progress(JobId id, std::uint64_t seen_steps);
  /// Blocks until no job is queued or running.
  void wait_all();
  /// Non-blocking snapshot.
  JobStatus status(JobId id) const;
  /// Id lookup by job name.
  std::optional<JobId> find(const std::string& name) const;
  /// Number of jobs ever registered (ids are [0, job_count)).
  std::size_t job_count() const;

  /// Begins shutdown without joining: nothing further is admitted (already
  /// running jobs drain to their natural end) and every blocked wait*()
  /// returns a kShutdown-flagged status. Queued jobs stay kQueued with
  /// their durable specs on disk — exactly the state recover() replays.
  /// The destructor still joins; calling this first makes it a drain.
  void begin_shutdown();

  /// The admission price of a spec (perf::job_cost of its workload).
  static double cost_estimate(const JobSpec& spec);

 private:
  struct Job;

  /// Starts every queued job the admission rules allow, and requests a
  /// scheduler preemption when a higher-priority job is starved by a full
  /// engine. Caller holds mu_.
  void pump_locked();
  /// Worker-thread body for one admitted job.
  void run_job(Job& job);
  /// Registers a validated spec as a queued job. Caller holds mu_.
  SubmitResult register_locked(JobSpec spec, bool persist_spec);
  /// Engine-level PlanewaveSetup cache (keyed by cells/ecut/dense_factor).
  std::shared_ptr<const ham::PlanewaveSetup> setup_for(const core::SimulationOptions& sim);

  JobEngineOptions opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<std::thread> threads_;
  std::size_t running_ = 0;
  double running_cost_ = 0.0;
  bool shutdown_ = false;

  struct SetupKey {
    int cells[3];
    double ecut;
    int dense_factor;
  };
  std::mutex setup_mu_;
  std::vector<std::pair<SetupKey, std::shared_ptr<const ham::PlanewaveSetup>>> setups_;
};

}  // namespace pwdft::serve
