#pragma once

/// \file server.hpp
/// serve::Server — the network front-end of the job engine. It binds one
/// listening socket ("unix:<path>" or "tcp:<host>:<port>", wire::listen_on),
/// accepts connections on a dedicated thread, and speaks the versioned frame
/// protocol of serve/wire.hpp on one thread per connection, translating each
/// request frame into the matching JobEngine call:
///
///   kHello          → version handshake (kHelloOk | kError kVersionMismatch)
///   kSubmit         → engine.submit       → kSubmitOk | kError
///   kStatusReq      → engine.status       → kStatus (final) | kError
///   kWaitReq        → engine.wait         → terminal kStatus | kError
///   kStreamReq      → engine.wait_progress loop → one kStatus per step
///                     boundary, the last flagged final
///   kPreemptReq     → engine.preempt      → kAck
///   kCancelReq      → engine.cancel       → kAck
///   kResumeReq      → engine.resume(id)   → kSubmitOk | kError
///   kResumeNameReq  → engine.resume(name) → kSubmitOk | kError
///
/// Frames arrive from untrusted peers: every malformed frame (bad magic,
/// foreign version, oversized length, checksum mismatch, short payload,
/// trailing bytes) is answered with a typed kError frame and the connection
/// is dropped — after a framing error the stream position is undefined, so
/// resynchronizing would mean guessing. A request the engine rejects
/// (duplicate name, unknown id, invalid spec…) is NOT a framing error: the
/// typed result goes back and the connection stays up.
///
/// stop() is a drain, not a kill: the listener closes, connections are shut
/// down, running jobs finish their current run, and queued jobs stay on
/// disk as durable specs — the state JobEngine::recover() replays after a
/// restart. A real crash (kill -9) skips all of this and recovery works the
/// same way; tests/test_server.cpp pins that path.

#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/job_engine.hpp"
#include "serve/wire.hpp"

namespace pwdft::serve {

struct ServerOptions {
  /// wire::listen_on address. "tcp:127.0.0.1:0" picks an ephemeral port;
  /// the resolved address is Server::address().
  std::string listen = "unix:/tmp/pwdft-serve.sock";
  JobEngineOptions engine;

  /// Everything the serve front-end reads from the environment, resolved in
  /// one place: PWDFT_SERVE_LISTEN (listen address) plus the engine knobs
  /// of JobEngineOptions::from_env (PWDFT_SERVE_SLOTS,
  /// PWDFT_SERVE_CKPT_DIR, PWDFT_SERVE_RECOVER).
  static ServerOptions from_env();
};

class Server {
 public:
  /// Binds, recovers (when opt.engine.recover_on_start), and starts
  /// accepting. Throws pwdft::Error on an unusable address — server startup
  /// is an environment error, unlike anything a peer can send.
  explicit Server(ServerOptions opt);
  ~Server();  ///< stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Resolved listen address (ephemeral tcp port filled in) — what a
  /// Client dials.
  const std::string& address() const { return listener_.address; }

  /// The engine behind the socket, for in-process co-tenants and tests.
  JobEngine& engine() { return engine_; }

  /// Drain shutdown (see file comment). Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Dispatches one request frame; false ends the connection.
  bool handle(int fd, const wire::Frame& frame);

  ServerOptions opt_;
  JobEngine engine_;
  wire::Listener listener_;
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::vector<int> conn_fds_;  ///< fds with a live handler thread
  std::vector<std::thread> conn_threads_;
  bool stopping_ = false;  // guarded by conns_mu_
};

}  // namespace pwdft::serve
