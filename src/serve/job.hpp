#pragma once

/// \file job.hpp
/// Typed job descriptions for the multi-tenant serve::JobEngine: the
/// workloads of examples/ (ground-state SCF probes, delta-kick absorption
/// runs, laser-excitation sweeps) expressed as owned, queueable values. A
/// JobSpec carries everything needed to (re)build its simulation from
/// scratch — no pointers into caller state — so a job can be resumed from a
/// checkpoint by a process that has never seen the original submission.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "serve/error.hpp"
#include "td/field.hpp"
#include "td/observables.hpp"

namespace pwdft::serve {

/// Owned external-field description (PropagateOptions only borrows a
/// td::ExternalField; queued jobs must own theirs). build() reconstructs
/// the identical field object on every run, which is what makes a resumed
/// trajectory see bit-identical a(t).
struct FieldSpec {
  enum class Kind { kNone, kDeltaKick, kLaser };
  Kind kind = Kind::kNone;
  grid::Vec3 kick{1.0e-3, 0.0, 0.0};  ///< kDeltaKick amplitude (a.u.)
  double laser_e0 = 0.01;             ///< kLaser peak field (paper pulse)

  std::unique_ptr<td::ExternalField> build() const {
    switch (kind) {
      case Kind::kDeltaKick:
        return std::make_unique<td::DeltaKick>(kick);
      case Kind::kLaser:
        return std::make_unique<td::LaserPulse>(td::LaserPulse::paper_pulse(laser_e0));
      case Kind::kNone:
        break;
    }
    return std::make_unique<td::ZeroField>();
  }
};

/// The workload archetypes of examples/. kScf runs the ground state only;
/// the time-dependent kinds propagate after it.
enum class JobKind { kScf, kAbsorption, kLaser };

struct JobSpec {
  std::string name;  ///< unique per engine; names the checkpoint files
  JobKind kind = JobKind::kScf;
  core::SimulationOptions sim;
  double dt_as = 50.0;  ///< PT-CN step (paper value)
  int steps = 0;        ///< propagation steps (ignored for kScf)
  FieldSpec field;
  td::PtCnOptions ptcn{};  ///< dt is overridden from dt_as
  bool record_energy = true;
  /// Higher runs first among queued jobs; FIFO within a priority.
  int priority = 0;
  /// Snapshot cadence in steps (psi + trace written atomically through
  /// io::checkpoint). 0 disables checkpointing (the job then always
  /// restarts from scratch after a kill).
  std::uint64_t checkpoint_every = 1;

  /// Builds the field matching `kind` (absorption = delta kick, laser =
  /// paper pulse, SCF/none = zero field).
  std::unique_ptr<td::ExternalField> build_field() const {
    FieldSpec f = field;
    if (kind == JobKind::kScf) f.kind = FieldSpec::Kind::kNone;
    if (kind == JobKind::kAbsorption && f.kind == FieldSpec::Kind::kNone)
      f.kind = FieldSpec::Kind::kDeltaKick;
    if (kind == JobKind::kLaser && f.kind == FieldSpec::Kind::kNone)
      f.kind = FieldSpec::Kind::kLaser;
    return f.build();
  }

  /// Structural validation shared by the engine and the wire front-end: a
  /// spec a remote peer hands us must be safe to run *and* safe to use as a
  /// checkpoint-file key. Returns kOk or kInvalidSpec; when `why` is
  /// non-null it receives a one-line reason.
  ErrorCode validate(std::string* why = nullptr) const;
};

enum class JobState { kQueued, kRunning, kDone, kPreempted, kFailed, kCancelled };

constexpr bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kPreempted || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

constexpr const char* state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kPreempted: return "preempted";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Snapshot of one job's progress, returned by JobEngine::status/wait and
/// streamed over the wire. `error` != kOk marks either a failed lookup
/// (kUnknownJob, kShutdown — the rest of the fields are then meaningless)
/// or, with state == kFailed, the job's own failure (kJobFailed + message).
struct JobStatus {
  JobState state = JobState::kQueued;
  /// Recorded trajectory: for finished jobs the full trace; for preempted
  /// jobs everything recorded up to the stop (resume stitches the rest).
  /// Streamed intermediate statuses omit it (wire cost).
  std::vector<td::TimePoint> trace;
  std::uint64_t steps_done = 0;  ///< propagation steps completed (live)
  double model_cost = 0.0;       ///< perf::job_cost admission estimate
  double scf_energy = 0.0;       ///< ground-state total energy (Ha)
  std::uint32_t preemptions = 0; ///< times the scheduler evicted this job
  ErrorCode error = ErrorCode::kOk;
  std::string message;           ///< human-readable detail for `error`
  bool ok() const { return error == ErrorCode::kOk; }
};

/// Typed result of submit/resume: the id is valid only when ok().
struct SubmitResult {
  ErrorCode error = ErrorCode::kOk;
  std::size_t id = 0;
  std::string message;
  bool ok() const { return error == ErrorCode::kOk; }
};

}  // namespace pwdft::serve
