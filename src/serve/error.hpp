#pragma once

/// \file error.hpp
/// Typed failure reporting for the serve layer. Every way a serve request
/// can fail — an invalid JobSpec, an unknown job id, a malformed network
/// frame — has one ErrorCode, and the same code travels both paths: an
/// in-process JobEngine caller reads it from a SubmitResult/JobStatus, a
/// remote client reads the identical value out of a wire error frame. The
/// codes are part of the wire protocol (serve/wire.hpp), so values are
/// stable: append, never renumber.

#include <cstdint>

namespace pwdft::serve {

enum class ErrorCode : std::uint32_t {
  kOk = 0,
  // --- request-level failures (engine + wire) -----------------------------
  kInvalidSpec = 1,      ///< JobSpec::validate() rejected the spec
  kDuplicateName = 2,    ///< a job with this name already exists
  kUnknownJob = 3,       ///< no job with this id/name
  kNotResumable = 4,     ///< resume of a cancelled job
  kAlreadyActive = 5,    ///< resume-by-name while the original is queued/running
  kShutdown = 6,         ///< engine/server is shutting down
  kJobFailed = 7,        ///< the simulation threw; message carries what()
  // --- wire-level failures (frame parsing / transport) ---------------------
  kBadFrame = 8,         ///< bad magic, unknown message type, malformed payload
  kVersionMismatch = 9,  ///< frame or handshake protocol version not ours
  kChecksumMismatch = 10, ///< FNV-1a footer does not match the frame bytes
  kTruncated = 11,       ///< connection dropped / file ended mid-frame
  kFrameTooLarge = 12,   ///< declared payload exceeds the receiver's limit
  kIoError = 13,         ///< socket/disk syscall failure
  kClosed = 14,          ///< peer closed the connection at a frame boundary
};

/// Stable lowercase identifier for logs and wire-error messages.
constexpr const char* error_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidSpec: return "invalid-spec";
    case ErrorCode::kDuplicateName: return "duplicate-name";
    case ErrorCode::kUnknownJob: return "unknown-job";
    case ErrorCode::kNotResumable: return "not-resumable";
    case ErrorCode::kAlreadyActive: return "already-active";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kJobFailed: return "job-failed";
    case ErrorCode::kBadFrame: return "bad-frame";
    case ErrorCode::kVersionMismatch: return "version-mismatch";
    case ErrorCode::kChecksumMismatch: return "checksum-mismatch";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kFrameTooLarge: return "frame-too-large";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kClosed: return "closed";
  }
  return "unknown";
}

}  // namespace pwdft::serve
