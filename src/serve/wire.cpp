#include "serve/wire.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/check.hpp"
#include "common/frame.hpp"

namespace pwdft::serve::wire {

namespace {

static_assert(kFrameHeaderBytes == frame::kHeaderBytes &&
                  kFrameFooterBytes == frame::kFooterBytes,
              "serve frames use the shared frame layout");

/// The serve dialect of the shared frame codec (common/frame.hpp). The
/// byte format predates the shared module; the prefix and version byte are
/// wire-stable.
frame::Protocol protocol(std::uint64_t max_payload) {
  return {"PWDFTNW", kProtocolVersion, static_cast<std::uint32_t>(MsgType::kHello),
          static_cast<std::uint32_t>(MsgType::kSpecSnapshot), max_payload};
}

/// Collapses the shared transport statuses onto the wire-stable serve error
/// enum. kTimeout cannot occur (serve sets no socket timeouts) but maps to
/// kIoError rather than a default: the switch stays total.
ErrorCode to_error(frame::IoStatus s) {
  switch (s) {
    case frame::IoStatus::kOk: return ErrorCode::kOk;
    case frame::IoStatus::kClosed: return ErrorCode::kClosed;
    case frame::IoStatus::kTruncated: return ErrorCode::kTruncated;
    case frame::IoStatus::kBadMagic: return ErrorCode::kBadFrame;
    case frame::IoStatus::kBadType: return ErrorCode::kBadFrame;
    case frame::IoStatus::kVersionMismatch: return ErrorCode::kVersionMismatch;
    case frame::IoStatus::kTooLarge: return ErrorCode::kFrameTooLarge;
    case frame::IoStatus::kTrailingBytes: return ErrorCode::kBadFrame;
    case frame::IoStatus::kChecksumMismatch: return ErrorCode::kChecksumMismatch;
    case frame::IoStatus::kTimeout: return ErrorCode::kIoError;
    case frame::IoStatus::kIoError: return ErrorCode::kIoError;
  }
  return ErrorCode::kIoError;
}

}  // namespace

// --- cursors ---------------------------------------------------------------

void PutBuf::u32(std::uint32_t v) {
  std::uint8_t b[4];
  frame::pack_u32(v, b);
  b_.insert(b_.end(), b, b + 4);
}

void PutBuf::u64(std::uint64_t v) {
  std::uint8_t b[8];
  frame::pack_u64(v, b);
  b_.insert(b_.end(), b, b + 8);
}

void PutBuf::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void PutBuf::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  b_.insert(b_.end(), s.begin(), s.end());
}

bool GetBuf::take(std::size_t n) {
  if (!ok_ || n > n_ - pos_) {
    ok_ = false;
    return false;
  }
  pos_ += n;
  return true;
}

std::uint8_t GetBuf::u8() {
  const std::size_t at = pos_;
  return take(1) ? p_[at] : 0;
}

std::uint32_t GetBuf::u32() {
  const std::size_t at = pos_;
  return take(4) ? frame::unpack_u32(p_ + at) : 0;
}

std::uint64_t GetBuf::u64() {
  const std::size_t at = pos_;
  return take(8) ? frame::unpack_u64(p_ + at) : 0;
}

double GetBuf::f64() { return std::bit_cast<double>(u64()); }

std::string GetBuf::str() {
  const std::uint32_t len = u32();
  const std::size_t at = pos_;
  if (!take(len)) return {};
  return std::string(reinterpret_cast<const char*>(p_ + at), len);
}

// --- frame codec -----------------------------------------------------------

std::vector<std::uint8_t> encode_frame(MsgType type, const std::vector<std::uint8_t>& payload) {
  return frame::encode(protocol(kMaxFramePayload), static_cast<std::uint32_t>(type),
                       payload.data(), payload.size());
}

ErrorCode decode_frame(const std::uint8_t* data, std::size_t size, Frame* out,
                       std::uint64_t max_payload) {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  const frame::IoStatus s = frame::decode(protocol(max_payload), data, size, &type, &payload);
  if (s != frame::IoStatus::kOk) return to_error(s);
  out->type = static_cast<MsgType>(type);
  out->payload = std::move(payload);
  return ErrorCode::kOk;
}

// --- message payload codecs ------------------------------------------------

void put_spec(PutBuf& out, const JobSpec& spec) {
  out.str(spec.name);
  out.u32(static_cast<std::uint32_t>(spec.kind));
  out.i32(spec.priority);
  out.f64(spec.dt_as);
  out.i64(spec.steps);
  out.u64(spec.checkpoint_every);
  out.boolean(spec.record_energy);
  out.u32(static_cast<std::uint32_t>(spec.field.kind));
  for (int d = 0; d < 3; ++d) out.f64(spec.field.kick[d]);
  out.f64(spec.field.laser_e0);
  for (int d = 0; d < 3; ++d) out.i32(spec.sim.cells[d]);
  out.f64(spec.sim.ecut);
  out.i32(spec.sim.dense_factor);
  out.boolean(spec.sim.hybrid);
  out.boolean(spec.sim.nonlocal);
  out.boolean(spec.sim.use_ace);
  out.i32(spec.sim.ace_refresh);
  out.u64(spec.sim.seed);
  out.boolean(spec.sim.hybrid_params.enabled);
  out.f64(spec.sim.hybrid_params.alpha);
  out.f64(spec.sim.hybrid_params.omega);
  out.i32(spec.sim.scf.max_iter);
  out.f64(spec.sim.scf.tol_rho);
  out.f64(spec.sim.scf.mix_beta);
  out.u64(spec.sim.scf.anderson_depth);
  out.i32(spec.sim.scf.lobpcg.max_iter);
  out.f64(spec.sim.scf.lobpcg.tol);
  out.boolean(spec.sim.scf.lobpcg.verbose);
  out.i32(spec.sim.scf.hybrid_outer_max);
  out.f64(spec.sim.scf.hybrid_outer_tol);
  out.boolean(spec.sim.scf.verbose);
  out.f64(spec.ptcn.dt);
  out.f64(spec.ptcn.rho_tol);
  out.i32(spec.ptcn.max_scf);
  out.u64(spec.ptcn.anderson_depth);
  out.f64(spec.ptcn.anderson_beta);
  out.boolean(spec.ptcn.sp_comm);
  out.boolean(spec.ptcn.overlap_transpose);
  out.i32(spec.ptcn.mts_interval);
  out.f64(spec.ptcn.mts_drift_tol);
}

bool get_spec(GetBuf& in, JobSpec* spec) {
  JobSpec s;
  s.name = in.str();
  s.kind = static_cast<JobKind>(in.u32());
  s.priority = in.i32();
  s.dt_as = in.f64();
  s.steps = static_cast<int>(in.i64());
  s.checkpoint_every = in.u64();
  s.record_energy = in.boolean();
  s.field.kind = static_cast<FieldSpec::Kind>(in.u32());
  for (int d = 0; d < 3; ++d) s.field.kick[d] = in.f64();
  s.field.laser_e0 = in.f64();
  for (int d = 0; d < 3; ++d) s.sim.cells[d] = in.i32();
  s.sim.ecut = in.f64();
  s.sim.dense_factor = in.i32();
  s.sim.hybrid = in.boolean();
  s.sim.nonlocal = in.boolean();
  s.sim.use_ace = in.boolean();
  s.sim.ace_refresh = in.i32();
  s.sim.seed = in.u64();
  s.sim.hybrid_params.enabled = in.boolean();
  s.sim.hybrid_params.alpha = in.f64();
  s.sim.hybrid_params.omega = in.f64();
  s.sim.scf.max_iter = in.i32();
  s.sim.scf.tol_rho = in.f64();
  s.sim.scf.mix_beta = in.f64();
  s.sim.scf.anderson_depth = in.u64();
  s.sim.scf.lobpcg.max_iter = in.i32();
  s.sim.scf.lobpcg.tol = in.f64();
  s.sim.scf.lobpcg.verbose = in.boolean();
  s.sim.scf.hybrid_outer_max = in.i32();
  s.sim.scf.hybrid_outer_tol = in.f64();
  s.sim.scf.verbose = in.boolean();
  s.ptcn.dt = in.f64();
  s.ptcn.rho_tol = in.f64();
  s.ptcn.max_scf = in.i32();
  s.ptcn.anderson_depth = in.u64();
  s.ptcn.anderson_beta = in.f64();
  s.ptcn.sp_comm = in.boolean();
  s.ptcn.overlap_transpose = in.boolean();
  s.ptcn.mts_interval = in.i32();
  s.ptcn.mts_drift_tol = in.f64();
  if (!in.ok()) return false;
  *spec = std::move(s);
  return true;
}

void put_status(PutBuf& out, const JobStatus& status) {
  out.u32(static_cast<std::uint32_t>(status.state));
  out.u32(static_cast<std::uint32_t>(status.error));
  out.str(status.message);
  out.u64(status.steps_done);
  out.f64(status.model_cost);
  out.f64(status.scf_energy);
  out.u32(status.preemptions);
  const std::vector<double> flat = flatten_trace(status.trace);
  out.u64(status.trace.size());
  for (const double v : flat) out.f64(v);
}

bool get_status(GetBuf& in, JobStatus* status) {
  JobStatus s;
  s.state = static_cast<JobState>(in.u32());
  s.error = static_cast<ErrorCode>(in.u32());
  s.message = in.str();
  s.steps_done = in.u64();
  s.model_cost = in.f64();
  s.scf_energy = in.f64();
  s.preemptions = in.u32();
  const std::uint64_t count = in.u64();
  // Size-check against the remaining bytes is implicit: each failed read
  // latches !ok(), so a hostile count cannot drive a huge allocation before
  // the first miss.
  std::vector<double> flat;
  flat.reserve(in.ok() ? std::min<std::uint64_t>(count * kTracePointDoubles, 1 << 20) : 0);
  for (std::uint64_t i = 0; i < count && in.ok(); ++i)
    for (std::size_t d = 0; d < kTracePointDoubles; ++d) flat.push_back(in.f64());
  if (!in.ok()) return false;
  s.trace = unflatten_trace(flat);
  *status = std::move(s);
  return true;
}

// --- trace <-> flat doubles ------------------------------------------------

std::vector<double> flatten_trace(const std::vector<td::TimePoint>& trace) {
  std::vector<double> flat(trace.size() * kTracePointDoubles);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const td::TimePoint& p = trace[i];
    double* out = &flat[i * kTracePointDoubles];
    out[0] = p.t;
    out[1] = p.current[0];
    out[2] = p.current[1];
    out[3] = p.current[2];
    out[4] = p.n_excited;
    out[5] = p.energy;
    out[6] = static_cast<double>(p.scf_iterations);
    out[7] = p.rho_error;
    out[8] = p.wall_seconds;
    out[9] = p.exchange_refreshed ? 1.0 : 0.0;
    out[10] = p.mts_drift;
  }
  return flat;
}

std::vector<td::TimePoint> unflatten_trace(const std::vector<double>& flat) {
  PWDFT_CHECK(flat.size() % kTracePointDoubles == 0,
              "serve: trace blob has " << flat.size() << " doubles, not a multiple of "
                                       << kTracePointDoubles);
  std::vector<td::TimePoint> trace(flat.size() / kTracePointDoubles);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double* in = &flat[i * kTracePointDoubles];
    td::TimePoint& p = trace[i];
    p.t = in[0];
    p.current = {in[1], in[2], in[3]};
    p.n_excited = in[4];
    p.energy = in[5];
    p.scf_iterations = static_cast<int>(in[6]);
    p.rho_error = in[7];
    p.wall_seconds = in[8];
    p.exchange_refreshed = in[9] != 0.0;
    p.mts_drift = in[10];
  }
  return trace;
}

// --- fd transport ----------------------------------------------------------

ErrorCode send_frame(int fd, MsgType type, const std::vector<std::uint8_t>& payload) {
  const frame::IoStatus s = frame::send_frame(fd, protocol(kMaxFramePayload),
                                              static_cast<std::uint32_t>(type), payload.data(),
                                              payload.size());
  // Any transport failure (peer gone mid-write included) stays kIoError,
  // the pre-refactor contract.
  return s == frame::IoStatus::kOk ? ErrorCode::kOk : ErrorCode::kIoError;
}

ErrorCode recv_frame(int fd, Frame* out, std::uint64_t max_payload) {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  const frame::IoStatus s = frame::recv_frame(fd, protocol(max_payload), &type, &payload);
  if (s != frame::IoStatus::kOk) return to_error(s);
  out->type = static_cast<MsgType>(type);
  out->payload = std::move(payload);
  return ErrorCode::kOk;
}

// --- addresses -------------------------------------------------------------

Listener listen_on(const std::string& address) {
  frame::Listener fl = frame::listen_on(address);
  Listener l;
  l.fd = fl.fd;
  l.address = std::move(fl.address);
  l.unix_path = std::move(fl.unix_path);
  return l;
}

int dial(const std::string& address) { return frame::dial(address); }

// --- durable spec snapshots ------------------------------------------------

void save_spec_file(const std::string& path, const JobSpec& spec) {
  PutBuf payload;
  put_spec(payload, spec);
  const std::vector<std::uint8_t> frame_bytes =
      encode_frame(MsgType::kSpecSnapshot, payload.bytes());
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    PWDFT_CHECK(f.good(), "serve: cannot open " << tmp << " for writing");
    f.write(reinterpret_cast<const char*>(frame_bytes.data()),
            static_cast<std::streamsize>(frame_bytes.size()));
    f.flush();
    PWDFT_CHECK(f.good(), "serve: short write to " << tmp);
  }
  PWDFT_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
              "serve: cannot rename " << tmp << " to " << path);
}

ErrorCode load_spec_file(const std::string& path, JobSpec* spec, std::string* why) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    if (why) *why = "cannot open " + path;
    return ErrorCode::kIoError;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  Frame fr;
  // A spec is a few hundred bytes; cap well below the transport limit.
  const ErrorCode e = decode_frame(bytes.data(), bytes.size(), &fr, 1 << 20);
  if (e != ErrorCode::kOk) {
    if (why) *why = std::string(error_name(e)) + " in " + path;
    return e;
  }
  if (fr.type != MsgType::kSpecSnapshot) {
    if (why) *why = "not a spec snapshot: " + path;
    return ErrorCode::kBadFrame;
  }
  GetBuf in(fr.payload);
  JobSpec s;
  if (!get_spec(in, &s) || !in.exhausted()) {
    if (why) *why = "malformed spec payload in " + path;
    return ErrorCode::kBadFrame;
  }
  const ErrorCode v = s.validate(why);
  if (v != ErrorCode::kOk) return v;
  *spec = std::move(s);
  return ErrorCode::kOk;
}

}  // namespace pwdft::serve::wire
