#include "serve/wire.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/check.hpp"

namespace pwdft::serve::wire {

namespace {

static_assert(std::endian::native == std::endian::little,
              "wire format is little-endian; big-endian hosts need byte swaps");

// Same FNV-1a-64 as io/checkpoint.cpp: one hashing discipline per repo.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void update(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
};

void pack_u64(std::uint64_t v, std::uint8_t out[8]) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

std::uint64_t unpack_u64(const std::uint8_t in[8]) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

void pack_u32(std::uint32_t v, std::uint8_t out[4]) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

std::uint32_t unpack_u32(const std::uint8_t in[4]) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

constexpr char kMagicPrefix[7] = {'P', 'W', 'D', 'F', 'T', 'N', 'W'};

void write_header(std::uint8_t out[kFrameHeaderBytes], MsgType type, std::uint64_t payload_len) {
  std::memcpy(out, kMagicPrefix, 7);
  out[7] = static_cast<std::uint8_t>('0' + kProtocolVersion);
  pack_u32(static_cast<std::uint32_t>(type), out + 8);
  pack_u64(payload_len, out + 12);
}

/// Magic + version + length sanity of a raw header. Fills type/payload_len.
ErrorCode parse_header(const std::uint8_t hdr[kFrameHeaderBytes], std::uint64_t max_payload,
                       MsgType* type, std::uint64_t* payload_len) {
  if (std::memcmp(hdr, kMagicPrefix, 7) != 0) return ErrorCode::kBadFrame;
  if (hdr[7] != static_cast<std::uint8_t>('0' + kProtocolVersion))
    return ErrorCode::kVersionMismatch;
  const std::uint32_t t = unpack_u32(hdr + 8);
  if (t < static_cast<std::uint32_t>(MsgType::kHello) ||
      t > static_cast<std::uint32_t>(MsgType::kSpecSnapshot))
    return ErrorCode::kBadFrame;
  *type = static_cast<MsgType>(t);
  *payload_len = unpack_u64(hdr + 12);
  if (*payload_len > max_payload) return ErrorCode::kFrameTooLarge;
  return ErrorCode::kOk;
}

}  // namespace

// --- cursors ---------------------------------------------------------------

void PutBuf::u32(std::uint32_t v) {
  std::uint8_t b[4];
  pack_u32(v, b);
  b_.insert(b_.end(), b, b + 4);
}

void PutBuf::u64(std::uint64_t v) {
  std::uint8_t b[8];
  pack_u64(v, b);
  b_.insert(b_.end(), b, b + 8);
}

void PutBuf::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void PutBuf::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  b_.insert(b_.end(), s.begin(), s.end());
}

bool GetBuf::take(std::size_t n) {
  if (!ok_ || n > n_ - pos_) {
    ok_ = false;
    return false;
  }
  pos_ += n;
  return true;
}

std::uint8_t GetBuf::u8() {
  const std::size_t at = pos_;
  return take(1) ? p_[at] : 0;
}

std::uint32_t GetBuf::u32() {
  const std::size_t at = pos_;
  return take(4) ? unpack_u32(p_ + at) : 0;
}

std::uint64_t GetBuf::u64() {
  const std::size_t at = pos_;
  return take(8) ? unpack_u64(p_ + at) : 0;
}

double GetBuf::f64() { return std::bit_cast<double>(u64()); }

std::string GetBuf::str() {
  const std::uint32_t len = u32();
  const std::size_t at = pos_;
  if (!take(len)) return {};
  return std::string(reinterpret_cast<const char*>(p_ + at), len);
}

// --- frame codec -----------------------------------------------------------

std::vector<std::uint8_t> encode_frame(MsgType type, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out(kFrameHeaderBytes + payload.size() + kFrameFooterBytes);
  write_header(out.data(), type, payload.size());
  std::memcpy(out.data() + kFrameHeaderBytes, payload.data(), payload.size());
  Fnv1a hash;
  hash.update(out.data(), kFrameHeaderBytes + payload.size());
  pack_u64(hash.h, out.data() + kFrameHeaderBytes + payload.size());
  return out;
}

ErrorCode decode_frame(const std::uint8_t* data, std::size_t size, Frame* out,
                       std::uint64_t max_payload) {
  if (size < kFrameHeaderBytes + kFrameFooterBytes) return ErrorCode::kTruncated;
  MsgType type;
  std::uint64_t payload_len = 0;
  const ErrorCode hdr = parse_header(data, max_payload, &type, &payload_len);
  if (hdr != ErrorCode::kOk) return hdr;
  const std::uint64_t want = kFrameHeaderBytes + payload_len + kFrameFooterBytes;
  if (size < want) return ErrorCode::kTruncated;
  if (size > want) return ErrorCode::kBadFrame;  // trailing bytes
  Fnv1a hash;
  hash.update(data, kFrameHeaderBytes + payload_len);
  if (unpack_u64(data + kFrameHeaderBytes + payload_len) != hash.h)
    return ErrorCode::kChecksumMismatch;
  out->type = type;
  out->payload.assign(data + kFrameHeaderBytes, data + kFrameHeaderBytes + payload_len);
  return ErrorCode::kOk;
}

// --- message payload codecs ------------------------------------------------

void put_spec(PutBuf& out, const JobSpec& spec) {
  out.str(spec.name);
  out.u32(static_cast<std::uint32_t>(spec.kind));
  out.i32(spec.priority);
  out.f64(spec.dt_as);
  out.i64(spec.steps);
  out.u64(spec.checkpoint_every);
  out.boolean(spec.record_energy);
  out.u32(static_cast<std::uint32_t>(spec.field.kind));
  for (int d = 0; d < 3; ++d) out.f64(spec.field.kick[d]);
  out.f64(spec.field.laser_e0);
  for (int d = 0; d < 3; ++d) out.i32(spec.sim.cells[d]);
  out.f64(spec.sim.ecut);
  out.i32(spec.sim.dense_factor);
  out.boolean(spec.sim.hybrid);
  out.boolean(spec.sim.nonlocal);
  out.boolean(spec.sim.use_ace);
  out.i32(spec.sim.ace_refresh);
  out.u64(spec.sim.seed);
  out.boolean(spec.sim.hybrid_params.enabled);
  out.f64(spec.sim.hybrid_params.alpha);
  out.f64(spec.sim.hybrid_params.omega);
  out.i32(spec.sim.scf.max_iter);
  out.f64(spec.sim.scf.tol_rho);
  out.f64(spec.sim.scf.mix_beta);
  out.u64(spec.sim.scf.anderson_depth);
  out.i32(spec.sim.scf.lobpcg.max_iter);
  out.f64(spec.sim.scf.lobpcg.tol);
  out.boolean(spec.sim.scf.lobpcg.verbose);
  out.i32(spec.sim.scf.hybrid_outer_max);
  out.f64(spec.sim.scf.hybrid_outer_tol);
  out.boolean(spec.sim.scf.verbose);
  out.f64(spec.ptcn.dt);
  out.f64(spec.ptcn.rho_tol);
  out.i32(spec.ptcn.max_scf);
  out.u64(spec.ptcn.anderson_depth);
  out.f64(spec.ptcn.anderson_beta);
  out.boolean(spec.ptcn.sp_comm);
  out.boolean(spec.ptcn.overlap_transpose);
  out.i32(spec.ptcn.mts_interval);
  out.f64(spec.ptcn.mts_drift_tol);
}

bool get_spec(GetBuf& in, JobSpec* spec) {
  JobSpec s;
  s.name = in.str();
  s.kind = static_cast<JobKind>(in.u32());
  s.priority = in.i32();
  s.dt_as = in.f64();
  s.steps = static_cast<int>(in.i64());
  s.checkpoint_every = in.u64();
  s.record_energy = in.boolean();
  s.field.kind = static_cast<FieldSpec::Kind>(in.u32());
  for (int d = 0; d < 3; ++d) s.field.kick[d] = in.f64();
  s.field.laser_e0 = in.f64();
  for (int d = 0; d < 3; ++d) s.sim.cells[d] = in.i32();
  s.sim.ecut = in.f64();
  s.sim.dense_factor = in.i32();
  s.sim.hybrid = in.boolean();
  s.sim.nonlocal = in.boolean();
  s.sim.use_ace = in.boolean();
  s.sim.ace_refresh = in.i32();
  s.sim.seed = in.u64();
  s.sim.hybrid_params.enabled = in.boolean();
  s.sim.hybrid_params.alpha = in.f64();
  s.sim.hybrid_params.omega = in.f64();
  s.sim.scf.max_iter = in.i32();
  s.sim.scf.tol_rho = in.f64();
  s.sim.scf.mix_beta = in.f64();
  s.sim.scf.anderson_depth = in.u64();
  s.sim.scf.lobpcg.max_iter = in.i32();
  s.sim.scf.lobpcg.tol = in.f64();
  s.sim.scf.lobpcg.verbose = in.boolean();
  s.sim.scf.hybrid_outer_max = in.i32();
  s.sim.scf.hybrid_outer_tol = in.f64();
  s.sim.scf.verbose = in.boolean();
  s.ptcn.dt = in.f64();
  s.ptcn.rho_tol = in.f64();
  s.ptcn.max_scf = in.i32();
  s.ptcn.anderson_depth = in.u64();
  s.ptcn.anderson_beta = in.f64();
  s.ptcn.sp_comm = in.boolean();
  s.ptcn.overlap_transpose = in.boolean();
  s.ptcn.mts_interval = in.i32();
  s.ptcn.mts_drift_tol = in.f64();
  if (!in.ok()) return false;
  *spec = std::move(s);
  return true;
}

void put_status(PutBuf& out, const JobStatus& status) {
  out.u32(static_cast<std::uint32_t>(status.state));
  out.u32(static_cast<std::uint32_t>(status.error));
  out.str(status.message);
  out.u64(status.steps_done);
  out.f64(status.model_cost);
  out.f64(status.scf_energy);
  out.u32(status.preemptions);
  const std::vector<double> flat = flatten_trace(status.trace);
  out.u64(status.trace.size());
  for (const double v : flat) out.f64(v);
}

bool get_status(GetBuf& in, JobStatus* status) {
  JobStatus s;
  s.state = static_cast<JobState>(in.u32());
  s.error = static_cast<ErrorCode>(in.u32());
  s.message = in.str();
  s.steps_done = in.u64();
  s.model_cost = in.f64();
  s.scf_energy = in.f64();
  s.preemptions = in.u32();
  const std::uint64_t count = in.u64();
  // Size-check against the remaining bytes is implicit: each failed read
  // latches !ok(), so a hostile count cannot drive a huge allocation before
  // the first miss.
  std::vector<double> flat;
  flat.reserve(in.ok() ? std::min<std::uint64_t>(count * kTracePointDoubles, 1 << 20) : 0);
  for (std::uint64_t i = 0; i < count && in.ok(); ++i)
    for (std::size_t d = 0; d < kTracePointDoubles; ++d) flat.push_back(in.f64());
  if (!in.ok()) return false;
  s.trace = unflatten_trace(flat);
  *status = std::move(s);
  return true;
}

// --- trace <-> flat doubles ------------------------------------------------

std::vector<double> flatten_trace(const std::vector<td::TimePoint>& trace) {
  std::vector<double> flat(trace.size() * kTracePointDoubles);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const td::TimePoint& p = trace[i];
    double* out = &flat[i * kTracePointDoubles];
    out[0] = p.t;
    out[1] = p.current[0];
    out[2] = p.current[1];
    out[3] = p.current[2];
    out[4] = p.n_excited;
    out[5] = p.energy;
    out[6] = static_cast<double>(p.scf_iterations);
    out[7] = p.rho_error;
    out[8] = p.wall_seconds;
    out[9] = p.exchange_refreshed ? 1.0 : 0.0;
    out[10] = p.mts_drift;
  }
  return flat;
}

std::vector<td::TimePoint> unflatten_trace(const std::vector<double>& flat) {
  PWDFT_CHECK(flat.size() % kTracePointDoubles == 0,
              "serve: trace blob has " << flat.size() << " doubles, not a multiple of "
                                       << kTracePointDoubles);
  std::vector<td::TimePoint> trace(flat.size() / kTracePointDoubles);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double* in = &flat[i * kTracePointDoubles];
    td::TimePoint& p = trace[i];
    p.t = in[0];
    p.current = {in[1], in[2], in[3]};
    p.n_excited = in[4];
    p.energy = in[5];
    p.scf_iterations = static_cast<int>(in[6]);
    p.rho_error = in[7];
    p.wall_seconds = in[8];
    p.exchange_refreshed = in[9] != 0.0;
    p.mts_drift = in[10];
  }
  return trace;
}

// --- fd transport ----------------------------------------------------------

namespace {

/// write loop; MSG_NOSIGNAL so a vanished peer yields EPIPE, not SIGPIPE.
bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads exactly n bytes. 1 = got them, 0 = clean EOF before the first
/// byte, -1 = error or EOF mid-read.
int read_exact(int fd, std::uint8_t* p, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

ErrorCode send_frame(int fd, MsgType type, const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  return write_all(fd, frame.data(), frame.size()) ? ErrorCode::kOk : ErrorCode::kIoError;
}

ErrorCode recv_frame(int fd, Frame* out, std::uint64_t max_payload) {
  std::uint8_t hdr[kFrameHeaderBytes];
  const int got = read_exact(fd, hdr, sizeof hdr);
  if (got == 0) return ErrorCode::kClosed;
  if (got < 0) return ErrorCode::kTruncated;
  MsgType type;
  std::uint64_t payload_len = 0;
  const ErrorCode e = parse_header(hdr, max_payload, &type, &payload_len);
  if (e != ErrorCode::kOk) return e;
  std::vector<std::uint8_t> payload(payload_len);
  if (payload_len > 0 && read_exact(fd, payload.data(), payload_len) != 1)
    return ErrorCode::kTruncated;
  std::uint8_t footer[kFrameFooterBytes];
  if (read_exact(fd, footer, sizeof footer) != 1) return ErrorCode::kTruncated;
  Fnv1a hash;
  hash.update(hdr, sizeof hdr);
  hash.update(payload.data(), payload.size());
  if (unpack_u64(footer) != hash.h) return ErrorCode::kChecksumMismatch;
  out->type = type;
  out->payload = std::move(payload);
  return ErrorCode::kOk;
}

// --- addresses -------------------------------------------------------------

namespace {

struct ParsedAddr {
  bool is_unix = false;
  std::string path;  ///< unix
  std::string host;  ///< tcp, numeric or "localhost"
  std::uint16_t port = 0;
};

ParsedAddr parse_address(const std::string& address) {
  ParsedAddr a;
  if (address.rfind("unix:", 0) == 0) {
    a.is_unix = true;
    a.path = address.substr(5);
    PWDFT_CHECK(!a.path.empty(), "serve: empty unix socket path in '" << address << "'");
    PWDFT_CHECK(a.path.size() < sizeof(sockaddr_un{}.sun_path),
                "serve: unix socket path too long: " << a.path);
    return a;
  }
  PWDFT_CHECK(address.rfind("tcp:", 0) == 0,
              "serve: address '" << address << "' is neither unix:<path> nor tcp:<host>:<port>");
  const std::string rest = address.substr(4);
  const std::size_t colon = rest.rfind(':');
  PWDFT_CHECK(colon != std::string::npos && colon > 0 && colon + 1 < rest.size(),
              "serve: tcp address '" << address << "' is not tcp:<host>:<port>");
  a.host = rest.substr(0, colon);
  if (a.host == "localhost") a.host = "127.0.0.1";
  const std::string port_s = rest.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_s.c_str(), &end, 10);
  PWDFT_CHECK(end && *end == '\0' && port >= 0 && port <= 65535,
              "serve: bad tcp port '" << port_s << "' in '" << address << "'");
  a.port = static_cast<std::uint16_t>(port);
  return a;
}

sockaddr_in tcp_sockaddr(const ParsedAddr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(a.port);
  PWDFT_CHECK(::inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) == 1,
              "serve: '" << a.host << "' is not a numeric IPv4 address (or localhost)");
  return sa;
}

sockaddr_un unix_sockaddr(const ParsedAddr& a) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  std::memcpy(sa.sun_path, a.path.c_str(), a.path.size() + 1);
  return sa;
}

}  // namespace

Listener listen_on(const std::string& address) {
  const ParsedAddr a = parse_address(address);
  Listener l;
  if (a.is_unix) {
    l.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PWDFT_CHECK(l.fd >= 0, "serve: socket() failed: " << std::strerror(errno));
    ::unlink(a.path.c_str());  // stale socket from a killed server
    const sockaddr_un sa = unix_sockaddr(a);
    PWDFT_CHECK(::bind(l.fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) == 0,
                "serve: bind(" << a.path << ") failed: " << std::strerror(errno));
    l.unix_path = a.path;
    l.address = address;
  } else {
    l.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PWDFT_CHECK(l.fd >= 0, "serve: socket() failed: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(l.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in sa = tcp_sockaddr(a);
    PWDFT_CHECK(::bind(l.fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) == 0,
                "serve: bind(" << address << ") failed: " << std::strerror(errno));
    socklen_t len = sizeof sa;
    PWDFT_CHECK(::getsockname(l.fd, reinterpret_cast<sockaddr*>(&sa), &len) == 0,
                "serve: getsockname failed: " << std::strerror(errno));
    l.address = "tcp:" + a.host + ":" + std::to_string(ntohs(sa.sin_port));
  }
  PWDFT_CHECK(::listen(l.fd, 64) == 0,
              "serve: listen(" << l.address << ") failed: " << std::strerror(errno));
  return l;
}

int dial(const std::string& address) {
  const ParsedAddr a = parse_address(address);
  int fd = -1;
  if (a.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PWDFT_CHECK(fd >= 0, "serve: socket() failed: " << std::strerror(errno));
    const sockaddr_un sa = unix_sockaddr(a);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
      const int err = errno;
      ::close(fd);
      PWDFT_CHECK(false, "serve: connect(" << address << ") failed: " << std::strerror(err));
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PWDFT_CHECK(fd >= 0, "serve: socket() failed: " << std::strerror(errno));
    const sockaddr_in sa = tcp_sockaddr(a);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
      const int err = errno;
      ::close(fd);
      PWDFT_CHECK(false, "serve: connect(" << address << ") failed: " << std::strerror(err));
    }
  }
  return fd;
}

// --- durable spec snapshots ------------------------------------------------

void save_spec_file(const std::string& path, const JobSpec& spec) {
  PutBuf payload;
  put_spec(payload, spec);
  const std::vector<std::uint8_t> frame = encode_frame(MsgType::kSpecSnapshot, payload.bytes());
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    PWDFT_CHECK(f.good(), "serve: cannot open " << tmp << " for writing");
    f.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
    f.flush();
    PWDFT_CHECK(f.good(), "serve: short write to " << tmp);
  }
  PWDFT_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
              "serve: cannot rename " << tmp << " to " << path);
}

ErrorCode load_spec_file(const std::string& path, JobSpec* spec, std::string* why) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    if (why) *why = "cannot open " + path;
    return ErrorCode::kIoError;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  Frame frame;
  // A spec is a few hundred bytes; cap well below the transport limit.
  const ErrorCode e = decode_frame(bytes.data(), bytes.size(), &frame, 1 << 20);
  if (e != ErrorCode::kOk) {
    if (why) *why = std::string(error_name(e)) + " in " + path;
    return e;
  }
  if (frame.type != MsgType::kSpecSnapshot) {
    if (why) *why = "not a spec snapshot: " + path;
    return ErrorCode::kBadFrame;
  }
  GetBuf in(frame.payload);
  JobSpec s;
  if (!get_spec(in, &s) || !in.exhausted()) {
    if (why) *why = "malformed spec payload in " + path;
    return ErrorCode::kBadFrame;
  }
  const ErrorCode v = s.validate(why);
  if (v != ErrorCode::kOk) return v;
  *spec = std::move(s);
  return ErrorCode::kOk;
}

}  // namespace pwdft::serve::wire
