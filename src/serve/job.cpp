#include "serve/job.hpp"

namespace pwdft::serve {

namespace {

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '.' || c == '_' || c == '-';
}

ErrorCode reject(std::string* why, const char* reason) {
  if (why) *why = reason;
  return ErrorCode::kInvalidSpec;
}

}  // namespace

ErrorCode JobSpec::validate(std::string* why) const {
  // The name keys checkpoint files under the engine's checkpoint_dir, and
  // arrives over the network: restrict it to a flat filename alphabet so a
  // remote peer can never point the engine outside its directory.
  if (name.empty()) return reject(why, "job name is empty (names key checkpoint files)");
  if (name.size() > 128) return reject(why, "job name longer than 128 characters");
  if (name[0] == '.') return reject(why, "job name starts with '.'");
  for (const char c : name)
    if (!name_char_ok(c))
      return reject(why, "job name has characters outside [A-Za-z0-9._-]");
  if (kind != JobKind::kScf && kind != JobKind::kAbsorption && kind != JobKind::kLaser)
    return reject(why, "unknown job kind");
  if (field.kind != FieldSpec::Kind::kNone && field.kind != FieldSpec::Kind::kDeltaKick &&
      field.kind != FieldSpec::Kind::kLaser)
    return reject(why, "unknown field kind");
  if (steps < 0) return reject(why, "steps is negative");
  if (steps > 1000000) return reject(why, "steps exceeds 1000000");
  if (!(dt_as > 0.0)) return reject(why, "dt_as must be positive");
  if (priority < -1000000 || priority > 1000000) return reject(why, "priority out of range");
  for (int d = 0; d < 3; ++d) {
    if (sim.cells[d] < 1) return reject(why, "supercell count below 1");
    if (sim.cells[d] > 64) return reject(why, "supercell count above 64");
  }
  if (!(sim.ecut > 0.0)) return reject(why, "ecut must be positive");
  if (sim.dense_factor < 1 || sim.dense_factor > 8)
    return reject(why, "dense_factor out of [1, 8]");
  if (sim.scf.max_iter < 1) return reject(why, "scf.max_iter below 1");
  // Resume is bit-exact only at the default per-step exchange cadence
  // (MTS-aware resume is a ROADMAP follow-on): a checkpointed job must not
  // freeze exchange across steps.
  if (checkpoint_every > 0 && ptcn.mts_interval > 0)
    return reject(why, "mts_interval > 0 is not resumable; disable MTS or set checkpoint_every=0");
  return ErrorCode::kOk;
}

}  // namespace pwdft::serve
