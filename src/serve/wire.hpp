#pragma once

/// \file wire.hpp
/// Versioned binary wire protocol for the serve front-end: the frame and
/// payload codecs shared by serve::Server, serve::Client, and the engine's
/// durable JobSpec snapshots. The format follows the checkpoint-v2
/// discipline of src/io: an 8-byte magic whose last byte is the protocol
/// version, every field serialized individually in fixed-width
/// little-endian (never a raw struct image), and a trailing FNV-1a-64
/// checksum over everything before it, validated before any payload is
/// interpreted.
///
/// Frame layout (all integers little-endian):
///
///   offset  0  8 bytes  magic: 'P''W''D''F''T''N''W' + ('0' + version)
///   offset  8  u32      message type (MsgType)
///   offset 12  u64      payload length n
///   offset 20  n bytes  payload (per-message codec below)
///   offset 20+n u64     FNV-1a-64 over bytes [0, 20+n)
///
/// Decoding is total: every failure mode (bad magic, foreign version,
/// oversized length, short read, checksum mismatch, payload overrun or
/// trailing bytes) maps to a typed serve::ErrorCode — never an exception,
/// never a crash — because frames arrive from untrusted peers. The same
/// bytes double as the on-disk `<job>.spec.ckpt` snapshot the engine
/// replays after a process restart (save_spec_file/load_spec_file), so the
/// submit codec is also the durability codec.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/error.hpp"
#include "serve/job.hpp"

namespace pwdft::serve::wire {

/// Bumped on any incompatible frame or payload-layout change. A receiver
/// rejects foreign versions with kVersionMismatch instead of guessing.
constexpr std::uint32_t kProtocolVersion = 1;

/// Default cap on a declared payload length: a corrupt or hostile length
/// field must produce a typed error, not a giant allocation.
constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

constexpr std::uint64_t kFrameHeaderBytes = 8 + 4 + 8;
constexpr std::uint64_t kFrameFooterBytes = 8;

/// Message types. Values are wire-stable: append, never renumber.
enum class MsgType : std::uint32_t {
  kHello = 1,          ///< client → server: u32 protocol version
  kHelloOk = 2,        ///< server → client: u32 protocol version
  kSubmit = 3,         ///< JobSpec payload → kSubmitOk | kError
  kSubmitOk = 4,       ///< u64 job id
  kStatusReq = 5,      ///< u64 id → kStatus (final flag always 1)
  kStatus = 6,         ///< u8 final + JobStatus payload
  kWaitReq = 7,        ///< u64 id; blocks server-side → terminal kStatus
  kStreamReq = 8,      ///< u64 id; a kStatus per progress change, last has final=1
  kPreemptReq = 9,     ///< u64 id → kAck
  kCancelReq = 10,     ///< u64 id → kAck
  kResumeReq = 11,     ///< u64 id → kSubmitOk | kError
  kResumeNameReq = 12, ///< string name → kSubmitOk | kError
  kAck = 13,           ///< u32 ErrorCode (kOk on success)
  kError = 14,         ///< u32 ErrorCode + string message
  kSpecSnapshot = 15,  ///< JobSpec payload; the on-disk spec-file frame
};

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

// --- payload cursors -------------------------------------------------------

/// Little-endian payload builder. i32/i64 travel as their two's-complement
/// bit patterns; f64 as the IEEE-754 image (std::bit_cast), so encode →
/// decode is bit-exact — the property the restart-resume path relies on.
class PutBuf {
 public:
  void u8(std::uint8_t v) { b_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s);
  const std::vector<std::uint8_t>& bytes() const { return b_; }

 private:
  std::vector<std::uint8_t> b_;
};

/// Bounds-checked payload reader. An overrun latches !ok() and every later
/// read returns zero values; callers check ok() (and exhausted(), to reject
/// trailing bytes) once at the end instead of after every field.
class GetBuf {
 public:
  GetBuf(const std::uint8_t* data, std::size_t size) : p_(data), n_(size) {}
  explicit GetBuf(const std::vector<std::uint8_t>& v) : GetBuf(v.data(), v.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();

  bool ok() const { return ok_; }
  bool exhausted() const { return ok_ && pos_ == n_; }

 private:
  bool take(std::size_t n);  ///< advances pos_ or latches the failure
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- frame codec over byte buffers -----------------------------------------

/// Assembles magic + header + payload + checksum into one buffer.
std::vector<std::uint8_t> encode_frame(MsgType type, const std::vector<std::uint8_t>& payload);

/// Decodes a whole in-memory frame (spec files, tests). The buffer must
/// contain exactly one frame; trailing bytes are kBadFrame.
ErrorCode decode_frame(const std::uint8_t* data, std::size_t size, Frame* out,
                       std::uint64_t max_payload = kMaxFramePayload);

// --- message payload codecs ------------------------------------------------

void put_spec(PutBuf& out, const JobSpec& spec);
/// Field-by-field decode; false on overrun (caller maps to kBadFrame).
/// Performance knobs that are server-side configuration (FockOptions, FFT
/// dispatch/pipeline) are not on the wire — results are bit-identical
/// across those modes, so the server's own resolution applies.
bool get_spec(GetBuf& in, JobSpec* spec);

void put_status(PutBuf& out, const JobStatus& status);
bool get_status(GetBuf& in, JobStatus* status);

// --- trace <-> flat doubles ------------------------------------------------
// One td::TimePoint = kTracePointDoubles consecutive doubles; shared by the
// wire status codec and the engine's `.trace.ckpt` blob snapshots so both
// round-trip the identical bytes.

constexpr std::size_t kTracePointDoubles = 11;
std::vector<double> flatten_trace(const std::vector<td::TimePoint>& trace);
/// Throws pwdft::Error when the flat size is not a multiple of the point
/// width (a corrupt blob that passed its checksum cannot silently load).
std::vector<td::TimePoint> unflatten_trace(const std::vector<double>& flat);

// --- fd transport ----------------------------------------------------------

/// Writes one frame, restarting on EINTR and suppressing SIGPIPE. kIoError
/// on any syscall failure (including a peer that went away mid-write).
ErrorCode send_frame(int fd, MsgType type, const std::vector<std::uint8_t>& payload);

/// Reads one frame. kClosed on a clean EOF at a frame boundary, kTruncated
/// on EOF mid-frame, and the decode errors above for malformed bytes. On
/// header-level failures the stream position is undefined; the caller
/// should answer with a typed error frame and drop the connection.
ErrorCode recv_frame(int fd, Frame* out, std::uint64_t max_payload = kMaxFramePayload);

// --- addresses -------------------------------------------------------------
// "unix:<path>" (filesystem socket) or "tcp:<host>:<port>" with a numeric
// IPv4 host or "localhost"; "tcp:127.0.0.1:0" binds an ephemeral port.

struct Listener {
  int fd = -1;
  std::string address;    ///< resolved form (ephemeral port filled in)
  std::string unix_path;  ///< non-empty for unix sockets; unlinked on close
};

/// Binds + listens; throws pwdft::Error on an unparseable address or a
/// failed syscall (server startup is an environment error, not a request).
Listener listen_on(const std::string& address);

/// Connects; throws pwdft::Error on failure for the same reason.
int dial(const std::string& address);

// --- durable spec snapshots ------------------------------------------------

/// Atomically writes `spec` as a kSpecSnapshot frame (tmp + rename, the
/// io::checkpoint durability contract). Throws pwdft::Error on I/O failure.
void save_spec_file(const std::string& path, const JobSpec& spec);

/// Loads and fully validates a spec snapshot: frame decode, payload decode,
/// and JobSpec::validate() all typed — a corrupt or foreign file yields an
/// error code, never a crash or a half-initialized spec.
ErrorCode load_spec_file(const std::string& path, JobSpec* spec, std::string* why = nullptr);

}  // namespace pwdft::serve::wire
