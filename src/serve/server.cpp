#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "common/env.hpp"

namespace pwdft::serve {

namespace {

ErrorCode send_error_frame(int fd, ErrorCode code, const std::string& message) {
  wire::PutBuf p;
  p.u32(static_cast<std::uint32_t>(code));
  p.str(message);
  return wire::send_frame(fd, wire::MsgType::kError, p.bytes());
}

ErrorCode send_ack(int fd, ErrorCode code) {
  wire::PutBuf p;
  p.u32(static_cast<std::uint32_t>(code));
  return wire::send_frame(fd, wire::MsgType::kAck, p.bytes());
}

ErrorCode send_submit_result(int fd, const SubmitResult& r) {
  if (!r.ok()) return send_error_frame(fd, r.error, r.message);
  wire::PutBuf p;
  p.u64(r.id);
  return wire::send_frame(fd, wire::MsgType::kSubmitOk, p.bytes());
}

ErrorCode send_status(int fd, bool final, const JobStatus& status) {
  wire::PutBuf p;
  p.u8(final ? 1 : 0);
  wire::put_status(p, status);
  return wire::send_frame(fd, wire::MsgType::kStatus, p.bytes());
}

}  // namespace

ServerOptions ServerOptions::from_env() {
  ServerOptions o;
  o.listen = env::text("PWDFT_SERVE_LISTEN", o.listen);
  o.engine = JobEngineOptions::from_env();
  return o;
}

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)), engine_(opt_.engine), listener_(wire::listen_on(opt_.listen)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Closing the listener makes the blocked accept() fail, ending the accept
  // thread; shutdown() first also unblocks it on platforms where close()
  // alone does not.
  if (listener_.fd >= 0) {
    ::shutdown(listener_.fd, SHUT_RDWR);
    ::close(listener_.fd);
    listener_.fd = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock handler threads parked in engine wait*() calls, then kick their
  // sockets so blocked recv_frame() calls return. Handlers close their own
  // fds on the way out.
  engine_.begin_shutdown();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conn_threads_) t.join();
  if (!listener_.unix_path.empty()) std::remove(listener_.unix_path.c_str());
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listener_.fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  wire::Frame frame;

  // Version handshake first: a peer speaking a different protocol learns so
  // from a typed kError frame instead of a mysteriously dropped socket.
  bool ok = false;
  const ErrorCode hrc = wire::recv_frame(fd, &frame);
  if (hrc != ErrorCode::kOk) {
    if (hrc != ErrorCode::kClosed)
      send_error_frame(fd, hrc, std::string("malformed frame: ") + error_name(hrc));
  } else if (frame.type != wire::MsgType::kHello) {
    send_error_frame(fd, ErrorCode::kBadFrame, "expected a hello frame first");
  } else {
    wire::GetBuf in(frame.payload);
    const std::uint32_t version = in.u32();
    if (!in.exhausted()) {
      send_error_frame(fd, ErrorCode::kBadFrame, "malformed hello payload");
    } else if (version != wire::kProtocolVersion) {
      send_error_frame(fd, ErrorCode::kVersionMismatch,
                       "server speaks protocol version " +
                           std::to_string(wire::kProtocolVersion) + ", client sent " +
                           std::to_string(version));
    } else {
      wire::PutBuf p;
      p.u32(wire::kProtocolVersion);
      ok = wire::send_frame(fd, wire::MsgType::kHelloOk, p.bytes()) == ErrorCode::kOk;
    }
  }

  while (ok) {
    const ErrorCode rc = wire::recv_frame(fd, &frame);
    if (rc == ErrorCode::kClosed) break;  // peer hung up cleanly
    if (rc != ErrorCode::kOk) {
      // Malformed frame: answer with the typed error, then drop — the
      // stream position is undefined after a framing failure.
      send_error_frame(fd, rc, std::string("malformed frame: ") + error_name(rc));
      break;
    }
    if (!handle(fd, frame)) break;
  }

  ::close(fd);
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (std::size_t i = 0; i < conn_fds_.size(); ++i)
    if (conn_fds_[i] == fd) {
      conn_fds_.erase(conn_fds_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
}

bool Server::handle(int fd, const wire::Frame& frame) {
  using wire::MsgType;
  wire::GetBuf in(frame.payload);
  switch (frame.type) {
    case MsgType::kSubmit: {
      JobSpec spec;
      if (!wire::get_spec(in, &spec) || !in.exhausted()) break;
      return send_submit_result(fd, engine_.submit(std::move(spec))) == ErrorCode::kOk;
    }
    case MsgType::kStatusReq: {
      const JobId id = in.u64();
      if (!in.exhausted()) break;
      const JobStatus s = engine_.status(id);
      if (s.error == ErrorCode::kUnknownJob)
        return send_error_frame(fd, s.error, s.message) == ErrorCode::kOk;
      return send_status(fd, /*final=*/true, s) == ErrorCode::kOk;
    }
    case MsgType::kWaitReq: {
      const JobId id = in.u64();
      if (!in.exhausted()) break;
      const JobStatus s = engine_.wait(id);
      if (s.error == ErrorCode::kUnknownJob)
        return send_error_frame(fd, s.error, s.message) == ErrorCode::kOk;
      return send_status(fd, /*final=*/true, s) == ErrorCode::kOk;
    }
    case MsgType::kStreamReq: {
      const JobId id = in.u64();
      if (!in.exhausted()) break;
      JobStatus s = engine_.status(id);
      if (s.error == ErrorCode::kUnknownJob)
        return send_error_frame(fd, s.error, s.message) == ErrorCode::kOk;
      // Current snapshot immediately, then one frame per progress change;
      // live progress is published per step boundary, so this streams every
      // step without polling.
      for (;;) {
        const bool final = is_terminal(s.state) || s.error == ErrorCode::kShutdown;
        if (send_status(fd, final, s) != ErrorCode::kOk) return false;
        if (final) return true;
        s = engine_.wait_progress(id, s.steps_done);
      }
    }
    case MsgType::kPreemptReq: {
      const JobId id = in.u64();
      if (!in.exhausted()) break;
      return send_ack(fd, engine_.preempt(id)) == ErrorCode::kOk;
    }
    case MsgType::kCancelReq: {
      const JobId id = in.u64();
      if (!in.exhausted()) break;
      return send_ack(fd, engine_.cancel(id)) == ErrorCode::kOk;
    }
    case MsgType::kResumeReq: {
      const JobId id = in.u64();
      if (!in.exhausted()) break;
      return send_submit_result(fd, engine_.resume(id)) == ErrorCode::kOk;
    }
    case MsgType::kResumeNameReq: {
      const std::string name = in.str();
      if (!in.ok() || !in.exhausted()) break;
      return send_submit_result(fd, engine_.resume(name)) == ErrorCode::kOk;
    }
    default:
      send_error_frame(fd, ErrorCode::kBadFrame,
                       "unexpected message type " +
                           std::to_string(static_cast<std::uint32_t>(frame.type)));
      return false;
  }
  // A request whose payload did not decode cleanly (overrun or trailing
  // bytes) is a framing error: typed answer, then drop.
  send_error_frame(fd, ErrorCode::kBadFrame, "malformed request payload");
  return false;
}

}  // namespace pwdft::serve
