#include "serve/client.hpp"

#include <unistd.h>

#include <utility>

#include "common/check.hpp"

namespace pwdft::serve {

namespace {

/// Decodes a kError frame; falls back to kBadFrame when even that payload
/// is malformed.
void decode_error(const wire::Frame& frame, ErrorCode* code, std::string* message) {
  wire::GetBuf in(frame.payload);
  const auto c = static_cast<ErrorCode>(in.u32());
  std::string m = in.str();
  if (!in.exhausted()) {
    *code = ErrorCode::kBadFrame;
    *message = "malformed error frame from server";
    return;
  }
  *code = c;
  *message = std::move(m);
}

SubmitResult submit_reply(ErrorCode rc, const wire::Frame& frame) {
  SubmitResult r;
  if (rc != ErrorCode::kOk) {
    r.error = rc;
    r.message = std::string("transport failure: ") + error_name(rc);
    return r;
  }
  if (frame.type == wire::MsgType::kError) {
    decode_error(frame, &r.error, &r.message);
    return r;
  }
  wire::GetBuf in(frame.payload);
  const std::uint64_t id = in.u64();
  if (frame.type != wire::MsgType::kSubmitOk || !in.exhausted()) {
    r.error = ErrorCode::kBadFrame;
    r.message = "unexpected reply frame";
    return r;
  }
  r.id = static_cast<std::size_t>(id);
  return r;
}

/// Decodes a kStatus frame into (final, status); false on malformed bytes.
bool decode_status(const wire::Frame& frame, bool* final, JobStatus* status) {
  if (frame.type != wire::MsgType::kStatus) return false;
  wire::GetBuf in(frame.payload);
  *final = in.u8() != 0;
  return wire::get_status(in, status) && in.exhausted();
}

JobStatus status_reply(ErrorCode rc, const wire::Frame& frame) {
  JobStatus s;
  if (rc != ErrorCode::kOk) {
    s.error = rc;
    s.message = std::string("transport failure: ") + error_name(rc);
    return s;
  }
  if (frame.type == wire::MsgType::kError) {
    decode_error(frame, &s.error, &s.message);
    return s;
  }
  bool final = false;
  if (!decode_status(frame, &final, &s)) {
    s = JobStatus{};
    s.error = ErrorCode::kBadFrame;
    s.message = "unexpected reply frame";
  }
  return s;
}

ErrorCode ack_reply(ErrorCode rc, const wire::Frame& frame) {
  if (rc != ErrorCode::kOk) return rc;
  if (frame.type == wire::MsgType::kError) {
    ErrorCode code = ErrorCode::kBadFrame;
    std::string ignored;
    decode_error(frame, &code, &ignored);
    return code;
  }
  wire::GetBuf in(frame.payload);
  const auto code = static_cast<ErrorCode>(in.u32());
  if (frame.type != wire::MsgType::kAck || !in.exhausted()) return ErrorCode::kBadFrame;
  return code;
}

}  // namespace

Client::Client(const std::string& address) : fd_(wire::dial(address)) {
  wire::PutBuf hello;
  hello.u32(wire::kProtocolVersion);
  ErrorCode rc = wire::send_frame(fd_, wire::MsgType::kHello, hello.bytes());
  wire::Frame reply;
  if (rc == ErrorCode::kOk) rc = wire::recv_frame(fd_, &reply);
  if (rc != ErrorCode::kOk) {
    close();
    PWDFT_CHECK(false, "handshake with " << address << " failed: " << error_name(rc));
  }
  if (reply.type != wire::MsgType::kHelloOk) {
    ErrorCode code = ErrorCode::kBadFrame;
    std::string message = "unexpected handshake reply";
    if (reply.type == wire::MsgType::kError) decode_error(reply, &code, &message);
    close();
    PWDFT_CHECK(false, "server at " << address << " rejected handshake (" << error_name(code)
                                    << "): " << message);
  }
  wire::GetBuf in(reply.payload);
  const std::uint32_t version = in.u32();
  if (!in.exhausted() || version != wire::kProtocolVersion) {
    close();
    PWDFT_CHECK(false, "server at " << address << " speaks protocol version " << version
                                    << ", this client speaks " << wire::kProtocolVersion);
  }
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ErrorCode Client::roundtrip(wire::MsgType type, const std::vector<std::uint8_t>& payload,
                            wire::Frame* reply) {
  if (fd_ < 0) return ErrorCode::kClosed;
  const ErrorCode rc = wire::send_frame(fd_, type, payload);
  if (rc != ErrorCode::kOk) return rc;
  return wire::recv_frame(fd_, reply);
}

ErrorCode Client::id_request(wire::MsgType type, std::size_t id, wire::Frame* reply) {
  wire::PutBuf p;
  p.u64(id);
  return roundtrip(type, p.bytes(), reply);
}

SubmitResult Client::submit(const JobSpec& spec) {
  wire::PutBuf p;
  wire::put_spec(p, spec);
  wire::Frame reply;
  return submit_reply(roundtrip(wire::MsgType::kSubmit, p.bytes(), &reply), reply);
}

JobStatus Client::status(std::size_t id) {
  wire::Frame reply;
  return status_reply(id_request(wire::MsgType::kStatusReq, id, &reply), reply);
}

JobStatus Client::wait(std::size_t id) {
  wire::Frame reply;
  return status_reply(id_request(wire::MsgType::kWaitReq, id, &reply), reply);
}

ErrorCode Client::preempt(std::size_t id) {
  wire::Frame reply;
  return ack_reply(id_request(wire::MsgType::kPreemptReq, id, &reply), reply);
}

ErrorCode Client::cancel(std::size_t id) {
  wire::Frame reply;
  return ack_reply(id_request(wire::MsgType::kCancelReq, id, &reply), reply);
}

SubmitResult Client::resume(std::size_t id) {
  wire::Frame reply;
  return submit_reply(id_request(wire::MsgType::kResumeReq, id, &reply), reply);
}

SubmitResult Client::resume(const std::string& name) {
  wire::PutBuf p;
  p.str(name);
  wire::Frame reply;
  return submit_reply(roundtrip(wire::MsgType::kResumeNameReq, p.bytes(), &reply), reply);
}

JobStatus Client::stream(std::size_t id,
                         const std::function<void(const JobStatus&)>& on_update) {
  wire::Frame reply;
  ErrorCode rc = id_request(wire::MsgType::kStreamReq, id, &reply);
  for (;;) {
    JobStatus s = status_reply(rc, reply);
    if (!s.ok() && s.error != ErrorCode::kShutdown) return s;  // typed failure ends the stream
    bool final = true;
    decode_status(reply, &final, &s);  // re-read the final flag (validated above)
    if (on_update) on_update(s);
    if (final) return s;
    rc = (fd_ < 0) ? ErrorCode::kClosed : wire::recv_frame(fd_, &reply);
  }
}

}  // namespace pwdft::serve
