#pragma once

/// \file client.hpp
/// serve::Client — the remote counterpart of the in-process JobEngine API.
/// One Client is one connection: the constructor dials the server address,
/// performs the version handshake, and every method is a request/response
/// round-trip in serve/wire.hpp frames. Methods mirror the engine's typed
/// signatures (SubmitResult / JobStatus / ErrorCode), so a caller moved
/// from in-process to remote sees identical results — transport failures
/// surface as the additional codes kIoError / kClosed / kBadFrame /
/// kVersionMismatch in the same fields, never as exceptions.
///
/// A Client is NOT thread-safe: it owns one socket with strictly
/// alternating request/response traffic. Give each thread its own Client.

#include <cstdint>
#include <functional>
#include <string>

#include "serve/job.hpp"
#include "serve/wire.hpp"

namespace pwdft::serve {

class Client {
 public:
  /// Dials and performs the kHello handshake. Throws pwdft::Error when the
  /// address is unusable (environment error); a handshake the *server*
  /// rejects — version mismatch — is also thrown, since no later call can
  /// succeed.
  explicit Client(const std::string& address);
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Remote JobEngine::submit.
  SubmitResult submit(const JobSpec& spec);
  /// Remote JobEngine::status (kUnknownJob in the error field for bad ids).
  JobStatus status(std::size_t id);
  /// Remote JobEngine::wait — blocks server-side until terminal.
  JobStatus wait(std::size_t id);
  /// Remote JobEngine::preempt / cancel.
  ErrorCode preempt(std::size_t id);
  ErrorCode cancel(std::size_t id);
  /// Remote JobEngine::resume overloads.
  SubmitResult resume(std::size_t id);
  SubmitResult resume(const std::string& name);

  /// Streams live statuses: `on_update` fires once per received snapshot
  /// (one per propagation step boundary) and the final status is returned.
  /// A transport failure ends the stream with the typed code in the
  /// returned status.
  JobStatus stream(std::size_t id, const std::function<void(const JobStatus&)>& on_update);

  /// Closes the connection; every later call returns kClosed. Idempotent.
  void close();

 private:
  /// One request/response round-trip; kOk means `*reply` holds a frame.
  ErrorCode roundtrip(wire::MsgType type, const std::vector<std::uint8_t>& payload,
                      wire::Frame* reply);
  /// Round-trip carrying just a job id (the common request shape).
  ErrorCode id_request(wire::MsgType type, std::size_t id, wire::Frame* reply);

  int fd_ = -1;
};

}  // namespace pwdft::serve
