// Absorption spectrum of bulk silicon from a delta-kick rt-TDDFT run
// (Yabana-Bertsch linear response): apply a small vector-potential step,
// record the macroscopic current with PT-CN, and Fourier-transform into
// the dielectric function. This is the canonical first application of any
// rt-TDDFT code and exercises kick + propagation + observables.

#include <cstdio>
#include <fstream>

#include "core/simulation.hpp"

int main() {
  using namespace pwdft;
  core::SimulationOptions opt;
  opt.ecut = 4.0;
  opt.dense_factor = 1;
  opt.hybrid = true;
  opt.scf.tol_rho = 1e-7;
  opt.scf.lobpcg.max_iter = 6;
  opt.scf.hybrid_outer_max = 5;

  std::printf("Delta-kick absorption spectrum: Si8, hybrid functional\n");
  core::Simulation sim(opt);
  sim.ground_state();

  const double kappa = 5e-3;
  const td::DeltaKick kick({0.0, 0.0, kappa}, -1.0);

  core::PropagateOptions popt;
  popt.integrator = core::Integrator::kPtCn;
  popt.dt_as = 25.0;
  popt.steps = 60;  // ~1.5 fs of response (demo length)
  popt.field = &kick;
  popt.record_energy = false;
  popt.record_excitation = false;
  popt.ptcn.rho_tol = 1e-7;

  std::printf("propagating %d PT-CN steps of %.0f as after a kappa=%.0e kick...\n",
              popt.steps, popt.dt_as, kappa);
  auto trace = sim.propagate(popt);

  const double eta = 0.02;  // damping ~ finite propagation window
  const double wmax = 1.0;  // Ha (~27 eV)
  auto spectrum = td::dielectric_from_kick(trace, kappa, eta, wmax, 100);

  std::ofstream csv("absorption_spectrum.csv");
  csv << "omega_ev,eps_re,eps_im\n";
  // The finite window leaves a spurious low-frequency (Drude-like) tail in
  // Im eps; report the interband feature above 2 eV.
  double peak_w = 0.0, peak = -1e9;
  for (const auto& s : spectrum) {
    const double ev = s.omega / constants::hartree_per_ev;
    csv << ev << "," << s.eps_re << "," << s.eps_im << "\n";
    if (ev > 2.0 && s.eps_im > peak) {
      peak = s.eps_im;
      peak_w = ev;
    }
  }
  std::printf("\nIm eps interband peak at %.2f eV (height %.2f); full series in "
              "absorption_spectrum.csv\n",
              peak_w, peak);
  std::printf("(with the short demo window the resonances are broad; extend `steps`\n"
              "for sharper features — each fs costs ~40 PT-CN steps.)\n");
  return 0;
}
