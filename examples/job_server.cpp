// Multi-tenant job server demo: a serve::JobEngine runs a mixed batch of
// simulation jobs — a ground-state SCF probe, a delta-kick absorption run,
// and two laser excitations — concurrently on the shared thread pool, with
// admission control from the calibrated performance model. One laser job is
// killed mid-propagation (crash semantics: only its periodic checkpoint
// survives) and resumed; its stitched trajectory is compared bit-for-bit
// against an uninterrupted solo run.
//
// Tenants with the same cell/cutoff share one PlanewaveSetup and (through
// fft::shared_engine) the same warmed FFT graph caches. Checkpoints are the
// crash-safe v2 format of io/checkpoint.hpp: atomic tmp+rename writes,
// field-by-field versioned header, checksummed payload. Every engine call
// reports failures as typed serve::ErrorCode values — what a remote
// serve::Client sees too (see examples/serve_server.cpp).

#include <cstdio>
#include <filesystem>
#include <string>

#include "serve/job_engine.hpp"

using namespace pwdft;

namespace {

serve::JobSpec base_job(const std::string& name, serve::JobKind kind, int steps) {
  serve::JobSpec spec;
  spec.name = name;
  spec.kind = kind;
  spec.sim.cells[0] = spec.sim.cells[1] = spec.sim.cells[2] = 1;  // Si8
  spec.sim.ecut = 4.0;
  spec.sim.dense_factor = 1;
  spec.sim.scf.tol_rho = 1e-7;
  spec.sim.scf.lobpcg.max_iter = 6;
  spec.sim.scf.hybrid_outer_max = 6;
  spec.steps = steps;
  spec.ptcn.rho_tol = 1e-6;
  spec.checkpoint_every = 1;
  return spec;
}

void print_status(const char* name, const serve::JobStatus& s) {
  std::printf("  %-10s %-10s cost %8.1f model-s, %3llu steps, %3zu samples",
              name, serve::state_name(s.state), s.model_cost,
              static_cast<unsigned long long>(s.steps_done), s.trace.size());
  if (!s.trace.empty())
    std::printf(", final E = %.6f Ha, j_z = %.3e", s.trace.back().energy,
                s.trace.back().current[2]);
  if (s.scf_energy != 0.0) std::printf(", E_scf = %.6f Ha", s.scf_energy);
  if (!s.ok())
    std::printf(" (%s: %s)", serve::error_name(s.error), s.message.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  const std::string dir = "/tmp/pwdft_job_server_demo";
  std::filesystem::create_directories(dir);

  serve::JobEngineOptions eopt;
  eopt.max_running = 4;
  eopt.checkpoint_dir = dir;
  serve::JobEngine engine(eopt);

  auto scf = base_job("scf-probe", serve::JobKind::kScf, 0);
  auto absorb = base_job("absorption", serve::JobKind::kAbsorption, 3);
  auto laser_a = base_job("laser-a", serve::JobKind::kLaser, 3);
  laser_a.field.laser_e0 = 0.02;
  auto laser_b = base_job("laser-b", serve::JobKind::kLaser, 3);
  laser_b.field.laser_e0 = 0.05;
  laser_b.priority = 1;  // jumps the queue ahead of earlier submissions

  std::printf("job server: submitting 4 mixed tenants (engine slots: %zu)\n",
              eopt.max_running);
  std::printf("  admission prices (perf::job_cost): scf %.1f, absorption %.1f, laser %.1f\n",
              serve::JobEngine::cost_estimate(scf), serve::JobEngine::cost_estimate(absorb),
              serve::JobEngine::cost_estimate(laser_a));

  const auto id_scf = engine.submit(scf);
  const auto id_abs = engine.submit(absorb);
  const auto id_a = engine.submit(laser_a);
  const auto id_b = engine.submit(laser_b);
  if (!id_scf.ok() || !id_abs.ok() || !id_a.ok() || !id_b.ok()) {
    std::printf("submission failed: %s\n", id_b.message.c_str());
    return 1;
  }

  // A typed rejection, not an exception: duplicate names are refused because
  // they key the checkpoint files.
  const auto dup = engine.submit(laser_a);
  std::printf("  resubmitting laser-a -> %s (%s)\n", serve::error_name(dup.error),
              dup.message.c_str());

  // Kill laser-b mid-propagation: it stops at its next step boundary with
  // only the periodic snapshot on disk, exactly like a preempted allocation.
  engine.preempt(id_b.id);
  auto killed = engine.wait(id_b.id);
  std::printf("\nlaser-b killed mid-run:\n");
  print_status("laser-b", killed);

  std::printf("\nresuming laser-b from %s/laser-b.psi.ckpt ...\n", dir.c_str());
  engine.resume(std::string("laser-b"));
  engine.wait_all();

  std::printf("\nall jobs drained:\n");
  print_status("scf-probe", engine.status(id_scf.id));
  print_status("absorption", engine.status(id_abs.id));
  print_status("laser-a", engine.status(id_a.id));
  const auto resumed = engine.status(id_b.id);
  print_status("laser-b", resumed);

  // Verify the restart: an uninterrupted solo run of the same spec must
  // match the stitched kill+resume trajectory bit-for-bit.
  std::printf("\nverifying kill+resume against an uninterrupted run ...\n");
  serve::JobEngineOptions vopt;
  vopt.checkpoint_dir = dir;
  serve::JobEngine verify(vopt);
  auto solo = laser_b;
  solo.name = "laser-b-solo";
  solo.priority = 0;
  const auto ref = verify.wait(verify.submit(solo).id);

  bool identical = ref.state == serve::JobState::kDone &&
                   resumed.state == serve::JobState::kDone &&
                   ref.trace.size() == resumed.trace.size();
  if (identical) {
    for (std::size_t i = 0; i < ref.trace.size(); ++i) {
      const auto& a = ref.trace[i];
      const auto& b = resumed.trace[i];
      identical = identical && a.t == b.t && a.energy == b.energy &&
                  a.n_excited == b.n_excited && a.current[0] == b.current[0] &&
                  a.current[1] == b.current[1] && a.current[2] == b.current[2] &&
                  a.scf_iterations == b.scf_iterations && a.rho_error == b.rho_error;
    }
  }
  std::printf("kill+resume trajectory %s the uninterrupted run\n",
              identical ? "is bit-identical to" : "DIFFERS from");

  std::filesystem::remove_all(dir);
  return identical ? 0 : 1;
}
