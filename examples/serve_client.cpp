// Remote job submission CLI: the serve::Client end of the wire protocol,
// driving a live serve_server over a unix or tcp socket.
//
//   serve_client <address> scf <name>
//   serve_client <address> absorption <name> <steps>
//   serve_client <address> laser <name> <steps> <e0>
//   serve_client <address> status <id>
//   serve_client <address> wait <id>
//   serve_client <address> stream <id>        # one line per step boundary
//   serve_client <address> preempt <id>
//   serve_client <address> cancel <id>
//   serve_client <address> resume <name>
//
// <address> is "unix:<path>" or "tcp:<host>:<port>". Every engine rejection
// (duplicate name, unknown id, invalid spec, resume of a cancelled job…)
// comes back as the same typed serve::ErrorCode an in-process caller sees.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/client.hpp"

using namespace pwdft;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: serve_client <address> scf|absorption|laser <name> [steps] [e0]\n"
               "       serve_client <address> status|wait|stream|preempt|cancel <id>\n"
               "       serve_client <address> resume <name>\n");
  return 2;
}

serve::JobSpec base_job(const std::string& name, serve::JobKind kind, int steps) {
  serve::JobSpec spec;
  spec.name = name;
  spec.kind = kind;
  spec.sim.cells[0] = spec.sim.cells[1] = spec.sim.cells[2] = 1;  // Si8
  spec.sim.ecut = 4.0;
  spec.sim.dense_factor = 1;
  spec.sim.scf.tol_rho = 1e-7;
  spec.sim.scf.lobpcg.max_iter = 6;
  spec.sim.scf.hybrid_outer_max = 6;
  spec.steps = steps;
  spec.ptcn.rho_tol = 1e-6;
  spec.checkpoint_every = 1;
  return spec;
}

void print_status(const serve::JobStatus& s) {
  std::printf("state %-10s steps %llu, %zu trace points", serve::state_name(s.state),
              static_cast<unsigned long long>(s.steps_done), s.trace.size());
  if (s.scf_energy != 0.0) std::printf(", E_scf = %.6f Ha", s.scf_energy);
  if (!s.trace.empty())
    std::printf(", final E = %.6f Ha, j_z = %.3e", s.trace.back().energy,
                s.trace.back().current[2]);
  if (s.preemptions > 0) std::printf(", evicted %u time(s)", s.preemptions);
  if (!s.ok()) std::printf(" [%s: %s]", serve::error_name(s.error), s.message.c_str());
  std::printf("\n");
}

int report_submit(const serve::SubmitResult& r) {
  if (!r.ok()) {
    std::fprintf(stderr, "rejected: %s: %s\n", serve::error_name(r.error), r.message.c_str());
    return 1;
  }
  std::printf("job id %zu\n", r.id);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string address = argv[1];
  const std::string cmd = argv[2];
  const std::string arg = argv[3];

  serve::Client client(address);

  if (cmd == "scf") return report_submit(client.submit(base_job(arg, serve::JobKind::kScf, 0)));
  if (cmd == "absorption") {
    if (argc < 5) return usage();
    return report_submit(
        client.submit(base_job(arg, serve::JobKind::kAbsorption, std::atoi(argv[4]))));
  }
  if (cmd == "laser") {
    if (argc < 6) return usage();
    auto spec = base_job(arg, serve::JobKind::kLaser, std::atoi(argv[4]));
    spec.field.laser_e0 = std::atof(argv[5]);
    return report_submit(client.submit(spec));
  }
  if (cmd == "resume") return report_submit(client.resume(arg));

  const auto id = static_cast<std::size_t>(std::strtoull(arg.c_str(), nullptr, 10));
  if (cmd == "status") {
    print_status(client.status(id));
    return 0;
  }
  if (cmd == "wait") {
    const auto s = client.wait(id);
    print_status(s);
    return s.state == serve::JobState::kDone ? 0 : 1;
  }
  if (cmd == "stream") {
    const auto s = client.stream(id, [](const serve::JobStatus& live) { print_status(live); });
    return s.state == serve::JobState::kDone ? 0 : 1;
  }
  if (cmd == "preempt" || cmd == "cancel") {
    const auto code = cmd == "preempt" ? client.preempt(id) : client.cancel(id);
    std::printf("%s\n", serve::error_name(code));
    return code == serve::ErrorCode::kOk ? 0 : 1;
  }
  return usage();
}
