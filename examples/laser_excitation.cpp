// Laser-driven carrier excitation: the workload class the paper's intro
// motivates (exciton excitation / charge transfer needs hybrid rt-TDDFT at
// scale). A 380 nm pulse pumps bulk silicon; we track the number of excited
// electrons and the absorbed energy along the PT-CN trajectory.
//
// For a one-core demo the pulse is compressed into a ~2.4 fs window (the
// paper runs 30 fs on Summit); the physics pipeline is identical.

#include <cstdio>
#include <fstream>

#include "core/simulation.hpp"

int main() {
  using namespace pwdft;
  core::SimulationOptions opt;
  opt.ecut = 4.0;
  opt.dense_factor = 1;
  opt.hybrid = true;
  opt.scf.tol_rho = 1e-7;
  opt.scf.lobpcg.max_iter = 6;
  opt.scf.hybrid_outer_max = 5;

  std::printf("Laser excitation: Si8, hybrid functional, 380 nm pulse\n");
  core::Simulation sim(opt);
  auto gs = sim.ground_state();
  std::printf("ground-state energy: %.6f Ha\n\n", gs.energy.total());

  // Compressed pulse: center 1.2 fs, width 0.35 fs, strong field so the
  // short window still deposits measurable energy.
  const double t0 = constants::femtoseconds_to_au(1.2);
  const double sigma = constants::femtoseconds_to_au(0.35);
  const td::LaserPulse pulse(380.0, 0.05, t0, sigma, {0.0, 0.0, 1.0},
                             constants::femtoseconds_to_au(3.0));

  core::PropagateOptions popt;
  popt.integrator = core::Integrator::kPtCn;
  popt.dt_as = 50.0;  // the paper's PT-CN step
  popt.steps = 48;    // 2.4 fs
  popt.field = &pulse;
  popt.ptcn.rho_tol = 1e-6;

  auto trace = sim.propagate(popt);

  std::ofstream csv("laser_excitation.csv");
  csv << "t_fs,E_z,n_excited,energy_ha,scf_iters\n";
  std::printf("%8s %12s %12s %12s %6s\n", "t (fs)", "E_z(t)", "n_excited", "dE (Ha)", "SCF");
  const double e0 = trace.front().energy;
  for (const auto& p : trace) {
    const double t_fs = p.t * constants::fs_per_au_time;
    const double ez = pulse.efield(p.t)[2];
    csv << t_fs << "," << ez << "," << p.n_excited << "," << p.energy << ","
        << p.scf_iterations << "\n";
    if (static_cast<int>(t_fs * 10) % 2 == 0) {
      std::printf("%8.2f %12.4e %12.4e %12.4e %6d\n", t_fs, ez, p.n_excited, p.energy - e0,
                  p.scf_iterations);
    }
  }
  std::printf("\nfinal: %.4e electrons excited, %.4e Ha absorbed (8 atoms)\n",
              trace.back().n_excited, trace.back().energy - e0);
  std::printf("full trace in laser_excitation.csv\n");
  return 0;
}
