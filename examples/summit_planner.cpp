// Capacity planner built on the Summit performance model: answers the
// paper's own planning questions ("how many GPUs for a 1000-atom hybrid
// rt-TDDFT run? what does a femtosecond cost? is memory a bottleneck?")
// and explores the paper's conclusion that better NICs would extend the
// scaling limit.
//
// Usage: summit_planner [natoms] [ngpus]   (defaults: 1536 768)

#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "perf/model.hpp"

int main(int argc, char** argv) {
  using namespace pwdft;
  const std::size_t natoms = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1536;
  const int ngpus = argc > 2 ? std::atoi(argv[2]) : 768;

  perf::SummitMachine machine = perf::SummitMachine::defaults();
  perf::SummitModel model(machine, perf::Workload::silicon(natoms));

  std::printf("== PT-CN hybrid rt-TDDFT on Summit: %zu Si atoms, %d GPUs ==\n\n", natoms,
              ngpus);
  const double step = model.ptcn_step_total(ngpus);
  std::printf("one 50 as PT-CN step:  %10.1f s\n", step);
  std::printf("one femtosecond:       %10.2f h   (paper Si1536@768: ~1.5 h/fs)\n",
              step * 20.0 / 3600.0);
  std::printf("30 fs trajectory:      %10.1f h\n", step * 600.0 / 3600.0);
  std::printf("Anderson memory/rank:  %10.1f GB  (host memory per node: 512 GB)\n",
              model.anderson_memory_gb_per_rank(ngpus));
  std::printf("node power:            %10.0f W\n\n", model.gpu_power_w(ngpus));

  std::printf("== Where does the time go? (per SCF iteration) ==\n\n");
  const auto b = model.scf_breakdown(ngpus);
  Table t({"component", "seconds", "share"});
  auto row = [&](const char* name, double v) {
    t.add_row();
    t.add_cell(name);
    t.add_cell(v, 3);
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << 100.0 * v / b.per_scf() << "%";
    t.add_cell(os.str());
  };
  row("Fock exchange (compute)", b.fock_comp);
  row("Fock exchange (MPI)", b.fock_mpi);
  row("local + semi-local", b.local_semilocal);
  row("residual (Alg. 3)", b.resid_total());
  row("Anderson mixing", b.anderson_total());
  row("density", b.density_total());
  row("others", b.others);
  t.print();

  std::printf("\n== What if the network were faster? (paper's conclusion) ==\n\n");
  Table t2({"NIC bandwidth", "best GPUs", "best step (s)"});
  for (double factor : {1.0, 2.0, 4.0}) {
    perf::SummitMachine m2 = machine;
    m2.nic_bw_per_socket = machine.nic_bw_per_socket * factor;
    perf::SummitModel model2(m2, perf::Workload::silicon(natoms));
    int best_g = 36;
    double best_t = 1e30;
    for (int g : {36, 72, 144, 288, 384, 768, 1536, 3072, 6144}) {
      const double v = model2.ptcn_step_total(g);
      if (v < best_t) {
        best_t = v;
        best_g = g;
      }
    }
    t2.add_row();
    std::ostringstream os;
    os << factor << "x (" << m2.nic_bw_per_socket / 1e9 << " GB/s/socket)";
    t2.add_cell(os.str());
    t2.add_cell(best_g);
    t2.add_cell(best_t, 1);
  }
  t2.print();
  std::printf("\n\"we expect the parallel performance could scale further with improved\n"
              "network bandwidth on future supercomputers\" -- paper, section 8.\n");
  return 0;
}
