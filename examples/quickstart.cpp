// Quickstart: hybrid-functional ground state of bulk silicon followed by a
// few PT-CN rt-TDDFT steps under the paper's 380 nm laser pulse.
//
// Defaults use a reduced cutoff so the example finishes in about a minute
// on one core; pass --paper to run the full Ecut = 10 Ha / dense-grid
// setting of the paper (slow on a laptop, exact parameter-for-parameter).

#include <cstdio>
#include <cstring>

#include "core/simulation.hpp"

int main(int argc, char** argv) {
  using namespace pwdft;
  const bool paper = (argc > 1 && std::strcmp(argv[1], "--paper") == 0);

  core::SimulationOptions opt;
  opt.cells[0] = opt.cells[1] = opt.cells[2] = 1;  // Si8
  opt.ecut = paper ? 10.0 : 4.0;
  opt.dense_factor = paper ? 2 : 1;
  opt.hybrid = true;  // HSE-style screened exchange, alpha=0.25, omega=0.11
  opt.scf.tol_rho = 1e-7;
  opt.scf.lobpcg.max_iter = 6;
  opt.scf.hybrid_outer_max = 6;

  std::printf("PT-PWDFT quickstart: Si8, Ecut = %.1f Ha, hybrid functional\n", opt.ecut);
  core::Simulation sim(opt);
  std::printf("planewaves: %zu, bands: %zu, wfc grid: %zux%zux%zu\n", sim.setup().n_g(),
              sim.setup().n_bands(), sim.setup().wfc_grid.dims()[0],
              sim.setup().wfc_grid.dims()[1], sim.setup().wfc_grid.dims()[2]);

  auto gs = sim.ground_state();
  std::printf("\nground state (%d SCF + %d hybrid outer iterations):\n", gs.scf_iterations,
              gs.outer_iterations);
  std::printf("  E_total   = %12.6f Ha\n", gs.energy.total());
  std::printf("  E_kinetic = %12.6f  E_Hartree = %12.6f\n", gs.energy.kinetic,
              gs.energy.hartree);
  std::printf("  E_xc(LDA) = %12.6f  E_X(Fock) = %12.6f\n", gs.energy.xc, gs.energy.fock);
  std::printf("  E_ewald   = %12.6f  E_nl      = %12.6f\n", gs.energy.ewald,
              gs.energy.nonlocal_ps);
  std::printf("  highest occupied eigenvalue: %.4f Ha\n", gs.eigenvalues.back());

  // Propagate with the paper's 380 nm pulse, PT-CN at dt = 50 as.
  const auto pulse = td::LaserPulse::paper_pulse(0.02);
  core::PropagateOptions popt;
  popt.integrator = core::Integrator::kPtCn;
  popt.dt_as = 50.0;
  popt.steps = paper ? 10 : 5;
  popt.field = &pulse;
  popt.ptcn.rho_tol = 1e-6;  // paper stopping criterion

  std::printf("\nPT-CN propagation, dt = 50 as, 380 nm pulse:\n");
  std::printf("%8s %12s %12s %8s %10s\n", "t (as)", "E (Ha)", "j_z (a.u.)", "SCF", "wall (s)");
  auto trace = sim.propagate(popt);
  for (const auto& p : trace) {
    std::printf("%8.1f %12.6f %12.3e %8d %10.2f\n", p.t * constants::as_per_au_time, p.energy,
                p.current[2], p.scf_iterations, p.wall_seconds);
  }
  std::printf("\ndone. (PT-CN takes ~50 as steps where RK4 would need ~0.5 as; see\n"
              "bench/real_ptcn_vs_rk4 for the measured speedup.)\n");
  return 0;
}
