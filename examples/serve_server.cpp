// Long-lived serving daemon: binds the wire-protocol front-end on a socket
// and runs submitted jobs until interrupted. Configuration comes from the
// environment (one resolution point, strict parsing):
//
//   PWDFT_SERVE_LISTEN    unix:<path> | tcp:<host>:<port>   (default unix:/tmp/pwdft-serve.sock)
//   PWDFT_SERVE_SLOTS     concurrent running jobs, [1, 64]  (default 2)
//   PWDFT_SERVE_CKPT_DIR  checkpoint directory              (default /tmp)
//   PWDFT_SERVE_RECOVER   on/off — re-register and resume every interrupted
//                         job found in the checkpoint dir   (default off)
//
// An optional argv[1] overrides the listen address. Drive it with
// examples/serve_client.cpp. Crash-restart drill:
//
//   PWDFT_SERVE_CKPT_DIR=/tmp/ckpt ./serve_server &
//   ./serve_client unix:/tmp/pwdft-serve.sock laser long-run 200 0.02
//   kill -9 %1     # mid-run: only durable specs + snapshots survive
//   PWDFT_SERVE_CKPT_DIR=/tmp/ckpt PWDFT_SERVE_RECOVER=on ./serve_server &
//   # the job continues from its newest snapshot, bit-identically

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "serve/server.hpp"

namespace {
std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  auto opt = pwdft::serve::ServerOptions::from_env();
  if (argc > 1) opt.listen = argv[1];
  const std::size_t slots = opt.engine.max_running;
  const std::string ckpt_dir = opt.engine.checkpoint_dir;
  const bool recovering = opt.engine.recover_on_start;

  pwdft::serve::Server server(std::move(opt));
  std::printf("serve_server: listening on %s (slots %zu, checkpoints in %s)\n",
              server.address().c_str(), slots, ckpt_dir.c_str());
  if (recovering)
    std::printf("serve_server: recovered %zu interrupted job(s) from %s\n",
                server.engine().job_count(), ckpt_dir.c_str());

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop.load()) std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("serve_server: draining (running jobs finish, queued jobs stay durable)\n");
  server.stop();
  return 0;
}
