// Regenerates the analysis behind paper Fig. 2 / §3.2 step 5: the Fock
// broadcast pipeline with (a) CUDA-aware MPI, whose implicit synchronized
// staging copies disrupt comm/compute overlap, and (b) explicit
// asynchronous staging + host broadcast, which hides the communication
// behind the pair-solve computation. Prints an ASCII Gantt of the first
// bands and the per-application totals across GPU counts.

#include <cstdio>

#include "common/table.hpp"
#include "perf/timeline.hpp"

int main() {
  using namespace pwdft;
  const auto machine = perf::SummitMachine::defaults();
  const auto workload = perf::Workload::silicon(1536);

  std::printf("== Fig. 2 analysis: Fock broadcast pipeline, Si1536, 768 GPUs ==\n\n");
  for (bool sync : {true, false}) {
    perf::PipelineOptions opt;
    opt.overlap = true;
    opt.sync_staging = sync;
    opt.bands = 8;
    const auto r = perf::simulate_fock_pipeline(machine, workload, 768, opt);
    std::printf("%s (first 8 bands, B=broadcast, s=staging, C=compute):\n",
                sync ? "CUDA-aware MPI (synchronized staging)"
                     : "explicit async staging + host Bcast");
    std::printf("%s\n", perf::render_timeline(r, 8, r.total_time / 70.0).c_str());
  }

  std::printf("== Per-application totals (full 3072 bands) ==\n\n");
  Table t({"GPUs", "sync staging (s)", "async staging (s)", "async overlap eff."});
  for (int g : {36, 144, 768, 1536, 3072}) {
    perf::PipelineOptions opt;
    opt.overlap = true;
    opt.sync_staging = true;
    const auto rs = perf::simulate_fock_pipeline(machine, workload, g, opt);
    opt.sync_staging = false;
    const auto ra = perf::simulate_fock_pipeline(machine, workload, g, opt);
    t.add_row();
    t.add_cell(g);
    t.add_cell(rs.total_time, 2);
    t.add_cell(ra.total_time, 2);
    std::ostringstream os;
    os << std::fixed << std::setprecision(0) << ra.overlap_efficiency() * 100.0 << "%";
    t.add_cell(os.str());
  }
  t.print();
  std::printf("\n(paper §3.2: \"the MPI communication and GPU computation can overlap\n"
              "perfectly\" once the staging copy is issued explicitly; at 768 GPUs\n"
              "about half of the raw broadcast time remains exposed, §7)\n");
  return 0;
}
