// Regenerates paper Fig. 3: Fock-exchange wall time across the GPU
// optimization stages of §3.2 (CPU baseline -> band-by-band CUFFT ->
// batched -> CUDA-aware MPI -> single-precision MPI -> comm/compute
// overlap), for Si1536 with 72 GPUs vs 3072 CPU cores.
//
// A second section runs the *real* ablation on this machine: the same
// option flags of ham::FockOperator (batched / band-by-band, SP comm,
// overlap) on a small silicon system, demonstrating that every code path
// is executable and numerically equivalent.
//
// `--json <path>` writes the real-ablation rows as bench_json.hpp records
// (benchmark "fock_ablation", throughput = pair solves per second) for the
// CI perf-smoke artifact.

#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "ham/fock.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "perf/report.hpp"

namespace {

pwdft::CMatrix random_block(const pwdft::ham::PlanewaveSetup& setup, std::size_t nb) {
  using namespace pwdft;
  Rng rng(3);
  CMatrix psi(setup.n_g(), nb);
  for (std::size_t i = 0; i < psi.size(); ++i) psi.data()[i] = rng.complex_normal();
  CMatrix s = linalg::overlap(psi, psi);
  linalg::potrf_lower(s);
  linalg::trsm_right_lower_conj(psi, s);
  return psi;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pwdft;
  const std::string json_path = benchjson::consume_json_flag(&argc, argv);
  benchjson::Writer json;
  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  std::printf("== Fig. 3: Fock-exchange optimization stages (model, Si1536, 72 GPUs) ==\n");
  std::printf("(paper: final GPU version ~7x faster than 3072-core CPU at iso-power)\n\n");
  perf::fig3(model, 72, 3072).print();

  std::printf("\n== Real ablation on this machine: Si8, Ecut 6 Ha ==\n");
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 6.0, 1);
  const std::size_t nb = 16;
  CMatrix phi = random_block(setup, nb);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  Table t({"configuration", "apply time (s)", "pair solves"});
  auto run = [&](const char* name, ham::FockOptions fopt) {
    ham::FockOperator fock(setup, xc::HybridParams{true, 0.25, 0.11}, fopt);
    fock.set_orbitals(phi, occ, bands, comm);
    CMatrix y(setup.n_g(), nb, Complex{0, 0});
    fock.apply_add(phi, y, comm);  // warm-up
    y.fill(Complex{0, 0});
    const std::uint64_t solves_before = fock.pair_solves();
    WallTimer timer;
    fock.apply_add(phi, y, comm);
    const double secs = timer.seconds();
    const double solves = static_cast<double>(fock.pair_solves() - solves_before);
    t.add_row();
    t.add_cell(name);
    t.add_cell(secs, 4);
    t.add_cell(std::to_string(static_cast<std::uint64_t>(solves)));
    json.add("fock_ablation", name, secs, secs > 0.0 ? solves / secs : 0.0);
  };
  ham::FockOptions band_by_band;
  band_by_band.batched = false;
  run("band-by-band", band_by_band);
  ham::FockOptions batched;
  batched.batched = true;
  batched.batch_size = 8;
  run("batched (bs=8)", batched);
  ham::FockOptions sp = batched;
  sp.single_precision_comm = true;
  run("batched + SP comm", sp);
  ham::FockOptions ovl = sp;
  ovl.overlap = true;
  run("batched + SP + overlap", ovl);
  t.print();
  std::printf("\n(on one rank the comm options are no-ops; their numerical\n"
              " equivalence is asserted in tests/test_fock.cpp and the\n"
              " distributed behaviour in tests/test_distributed.cpp)\n");
  if (!json_path.empty()) json.write(json_path);
  return 0;
}
