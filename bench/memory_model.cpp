// Regenerates the paper's §7 memory analysis: per-rank GPU memory (16 GB
// V100 budget) and host memory for the 20-deep Anderson wavefunction
// history (512 GB/node budget), across GPU counts and system sizes.
// Paper quotes: one Si1536 wavefunction = 10 MB; < 20 GB Anderson history
// per rank at 36 GPUs (< 120 GB per node); 432 MB of replicated nonlocal
// projectors.

#include <cstdio>

#include "common/table.hpp"
#include "perf/model.hpp"

int main() {
  using namespace pwdft;
  const auto machine = perf::SummitMachine::defaults();

  std::printf("== Memory model, Si1536 (paper section 7) ==\n");
  std::printf("one wavefunction: %.1f MB double precision (paper: 10 MB)\n\n",
              perf::Workload::silicon(1536).ng * 16.0 / 1e6);

  perf::SummitModel model(machine, perf::Workload::silicon(1536));
  Table t({"GPUs", "GPU wfc (GB)", "GPU Fock buf", "GPU projectors", "GPU density",
           "GPU total", "host Anderson (GB)", "host/node (GB)"});
  for (int g : {36, 72, 144, 288, 768, 1536, 3072}) {
    const auto m = model.memory_breakdown(g);
    t.add_row();
    t.add_cell(g);
    t.add_cell(m.wavefunctions_gpu, 2);
    t.add_cell(m.fock_buffers_gpu, 2);
    t.add_cell(m.projectors_gpu, 2);
    t.add_cell(m.density_vars_gpu, 2);
    t.add_cell(m.gpu_total(), 2);
    t.add_cell(m.anderson_host, 1);
    t.add_cell(m.anderson_host * 6.0, 1);
  }
  t.print();

  std::printf("\nFeasibility: GPU total must stay below 16 GB (V100), host Anderson\n"
              "x 6 ranks below 512 GB/node. At 36 GPUs the history uses ~%.0f GB per\n"
              "node (paper: < 120 GB), which is why it lives in host memory and is\n"
              "streamed band-by-band over NVLink during the mixing (paper §3.4).\n",
              model.memory_breakdown(36).anderson_host * 6.0);

  std::printf("\n== Weak-scaling memory: GPUs = Natom/2 ==\n\n");
  Table t2({"atoms", "GPUs", "GPU total (GB)", "host Anderson (GB)"});
  for (std::size_t n : {48u, 192u, 768u, 1536u}) {
    perf::SummitModel m(machine, perf::Workload::silicon(n));
    const auto mb = m.memory_breakdown(static_cast<int>(n / 2));
    t2.add_row();
    t2.add_cell(n);
    t2.add_cell(static_cast<int>(n / 2));
    t2.add_cell(mb.gpu_total(), 2);
    t2.add_cell(mb.anderson_host, 2);
  }
  t2.print();
  return 0;
}
