#pragma once

/// \file bench_json.hpp
/// Machine-readable benchmark records shared by the bench harnesses.
///
/// Harnesses that support `--json <path>` (micro_kernels,
/// fig3_fock_optimizations) append records of the schema
///
///   [{"benchmark": "...", "config": "...", "wall_s": 1.2e-4,
///     "throughput": 3.4e7}, ...]
///
/// — the same schema as the committed repo-root baseline
/// (BENCH_taskgraph.json) that bench/compare_bench.py gates the CI
/// perf-smoke job on. `wall_s` is seconds per iteration (0 for derived
/// ratio records); `throughput` is items/s, or the dimensionless ratio for
/// derived records (higher is better in both cases — the comparator only
/// looks at throughput). Baseline records may additionally carry
/// "track": true (gated) and "floor": <min throughput> (absolute
/// acceptance bound); harness output never emits those fields.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace pwdft::benchjson {

struct Record {
  std::string benchmark;  ///< harness-stable kernel name (no arg suffix)
  std::string config;     ///< "key:value/key:value" argument string
  double wall_s = 0.0;
  double throughput = 0.0;
};

class Writer {
 public:
  void add(std::string benchmark, std::string config, double wall_s, double throughput) {
    records_.push_back(
        {std::move(benchmark), std::move(config), wall_s, throughput});
  }

  const std::vector<Record>& records() const { return records_; }

  void write(const std::string& path) const {
    std::ofstream f(path);
    PWDFT_CHECK(f.good(), "bench --json: cannot open " << path);
    f << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      f << "  {\"benchmark\": \"" << escape(r.benchmark) << "\", \"config\": \""
        << escape(r.config) << "\", \"wall_s\": " << fmt(r.wall_s)
        << ", \"throughput\": " << fmt(r.throughput) << "}"
        << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    f << "]\n";
    PWDFT_CHECK(f.good(), "bench --json: write to " << path << " failed");
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }
  static std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
  }

  std::vector<Record> records_;
};

/// Strips `--json <path>` (or `--json=<path>`) from argv, compacting it in
/// place and updating *argc. Returns the path, or "" when the flag is
/// absent. Call before handing argv to any other argument parser.
inline std::string consume_json_flag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

}  // namespace pwdft::benchjson
