// Regenerates paper Fig. 7: strong scaling of the PT-CN step for Si1536.
// (a) total time and per-component times including MPI and memcpy;
// (b) pure computation per component (near-ideal scaling in the paper).

#include <cstdio>

#include "perf/report.hpp"

int main() {
  using namespace pwdft;
  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  const std::vector<int> gpus{36, 72, 144, 288, 384, 768, 1536, 3072};

  std::printf("== Fig. 7(a): strong scaling, total + components per step (s) ==\n");
  std::printf("(paper: near-ideal below 384 GPUs, MPI-dominated past 768)\n\n");
  perf::fig7a(model, gpus).print();

  std::printf("\n== Fig. 7(b): computation-only per SCF (s, comm excluded) ==\n\n");
  perf::fig7b(model, gpus).print();
  return 0;
}
