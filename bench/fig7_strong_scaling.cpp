// Regenerates paper Fig. 7: strong scaling of the PT-CN step for Si1536.
// (a) total time and per-component times including MPI and memcpy;
// (b) pure computation per component (near-ideal scaling in the paper).
//
// `--json <path>` writes the model-derived step times as bench_json.hpp
// trajectory records (benchmark "fig7_step_time", throughput = steps/s)
// for the CI perf-smoke artifact.

// The model tables are followed by a *measured* strong-scaling point: one
// real hybrid PT-CN step on 1 and 2 OS processes over the SocketComm
// loopback mesh (Si8, reduced cutoff), written as untracked
// "fig7_socket_step_time" records.

#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "perf/report.hpp"
#include "socket_step.hpp"

int main(int argc, char** argv) {
  using namespace pwdft;
  const std::string json_path = benchjson::consume_json_flag(&argc, argv);
  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  const std::vector<int> gpus{36, 72, 144, 288, 384, 768, 1536, 3072};

  std::printf("== Fig. 7(a): strong scaling, total + components per step (s) ==\n");
  std::printf("(paper: near-ideal below 384 GPUs, MPI-dominated past 768)\n\n");
  perf::fig7a(model, gpus).print();

  std::printf("\n== Fig. 7(b): computation-only per SCF (s, comm excluded) ==\n\n");
  perf::fig7b(model, gpus).print();

  std::printf("\n== Measured: PT-CN step over SocketComm loopback (Si8, Ecut 3) ==\n");
  std::printf("(strong scaling: 16 bands total, ranks are forked OS processes)\n\n");
  std::vector<std::pair<int, double>> socket_times;
  for (int np : {1, 2}) {
    const double s = benchsock::socket_ptcn_step_seconds(np, /*nb=*/16);
    if (s > 0) std::printf("  %d process(es): %.3f s/step\n", np, s);
    socket_times.emplace_back(np, s);
  }

  if (!json_path.empty()) {
    benchjson::Writer json;
    const double t36 = model.ptcn_step_total(36);
    for (int g : gpus) {
      const double t = model.ptcn_step_total(g);
      json.add("fig7_step_time", "gpus:" + std::to_string(g), t, t > 0 ? 1.0 / t : 0.0);
      // Strong-scaling efficiency vs the 36-GPU anchor (1.0 = ideal).
      json.add("fig7_parallel_efficiency", "gpus:" + std::to_string(g), 0.0,
               t > 0 ? (t36 * 36.0) / (t * g) : 0.0);
    }
    for (const auto& [np, s] : socket_times)
      if (s > 0)
        json.add("fig7_socket_step_time", "procs:" + std::to_string(np), s, 1.0 / s);
    json.write(json_path);
  }
  return 0;
}
