// Regenerates paper Fig. 7: strong scaling of the PT-CN step for Si1536.
// (a) total time and per-component times including MPI and memcpy;
// (b) pure computation per component (near-ideal scaling in the paper).
//
// `--json <path>` writes the model-derived step times as bench_json.hpp
// trajectory records (benchmark "fig7_step_time", throughput = steps/s)
// for the CI perf-smoke artifact.

#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "perf/report.hpp"

int main(int argc, char** argv) {
  using namespace pwdft;
  const std::string json_path = benchjson::consume_json_flag(&argc, argv);
  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  const std::vector<int> gpus{36, 72, 144, 288, 384, 768, 1536, 3072};

  std::printf("== Fig. 7(a): strong scaling, total + components per step (s) ==\n");
  std::printf("(paper: near-ideal below 384 GPUs, MPI-dominated past 768)\n\n");
  perf::fig7a(model, gpus).print();

  std::printf("\n== Fig. 7(b): computation-only per SCF (s, comm excluded) ==\n\n");
  perf::fig7b(model, gpus).print();

  if (!json_path.empty()) {
    benchjson::Writer json;
    const double t36 = model.ptcn_step_total(36);
    for (int g : gpus) {
      const double t = model.ptcn_step_total(g);
      json.add("fig7_step_time", "gpus:" + std::to_string(g), t, t > 0 ? 1.0 / t : 0.0);
      // Strong-scaling efficiency vs the 36-GPU anchor (1.0 = ideal).
      json.add("fig7_parallel_efficiency", "gpus:" + std::to_string(g), 0.0,
               t > 0 ? (t36 * 36.0) / (t * g) : 0.0);
    }
    json.write(json_path);
  }
  return 0;
}
