// Serving front-end overhead: submission latency and status round-trip
// throughput through the full wire stack (client frame encode -> unix
// socket -> server decode -> engine call -> durable spec write -> reply),
// measured against a live serve::Server on a loopback socket.
//
// The engine is pinned to one slot and blocked by a running SCF probe, so
// every measured submit is pure front-end + admission work (validate,
// persist the spec, enqueue, reply) with no simulation time mixed in —
// that's the quantity a batch driver feeding thousands of trajectories
// (the paper's serving regime) cares about.
//
//   bench_serve [--json out.json]
//
// JSON records (bench_json.hpp schema; gated floor-style in
// BENCH_scaling.json — loopback ops/s is machine-dependent, so the
// committed baseline is a conservative acceptance bound, not a measured
// medium):
//   serve_submit_roundtrip  transport:unix/jobs:64      submits/s
//   serve_status_roundtrip  transport:unix/requests:256 requests/s

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_json.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace pwdft;
using Clock = std::chrono::steady_clock;

namespace {

serve::JobSpec tiny_job(const std::string& name, serve::JobKind kind, int steps) {
  serve::JobSpec spec;
  spec.name = name;
  spec.kind = kind;
  spec.sim.cells[0] = spec.sim.cells[1] = spec.sim.cells[2] = 1;
  spec.sim.ecut = 3.0;
  spec.sim.dense_factor = 1;
  spec.sim.scf.lobpcg.max_iter = 6;
  spec.sim.scf.hybrid_outer_max = 5;
  spec.steps = steps;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchjson::consume_json_flag(&argc, argv);

  const std::string dir = "/tmp/pwdft_bench_serve";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  serve::ServerOptions sopt;
  sopt.listen = "unix:" + dir + "/serve.sock";
  sopt.engine.max_running = 1;
  sopt.engine.checkpoint_dir = dir;
  serve::Server server(sopt);
  serve::Client client(server.address());

  // Occupy the single slot so the measured submissions only enqueue.
  const auto blocker = client.submit(tiny_job("blocker", serve::JobKind::kScf, 0));
  if (!blocker.ok()) {
    std::fprintf(stderr, "blocker submission failed: %s\n", blocker.message.c_str());
    return 1;
  }

  constexpr int kJobs = 64;
  const auto t0 = Clock::now();
  for (int i = 0; i < kJobs; ++i) {
    const auto r = client.submit(
        tiny_job("queued-" + std::to_string(i), serve::JobKind::kAbsorption, 10));
    if (!r.ok()) {
      std::fprintf(stderr, "submission %d failed: %s\n", i, r.message.c_str());
      return 1;
    }
  }
  const double submit_s = std::chrono::duration<double>(Clock::now() - t0).count();
  const double submit_thr = kJobs / submit_s;

  constexpr int kRequests = 256;
  const auto t1 = Clock::now();
  for (int i = 0; i < kRequests; ++i) {
    const auto s = client.status(blocker.id);
    if (s.error == serve::ErrorCode::kUnknownJob) {
      std::fprintf(stderr, "status round-trip %d failed\n", i);
      return 1;
    }
  }
  const double status_s = std::chrono::duration<double>(Clock::now() - t1).count();
  const double status_thr = kRequests / status_s;

  // The queued jobs never run: cancel them (which also deletes their
  // durable specs) and let the blocker drain in the server destructor.
  for (std::size_t id = blocker.id + 1; id <= blocker.id + kJobs; ++id) client.cancel(id);

  std::printf("bench_serve: wire-protocol front-end on %s\n", server.address().c_str());
  std::printf("  submit round-trip: %d jobs in %.3f s  ->  %.0f submits/s (%.1f us each)\n",
              kJobs, submit_s, submit_thr, 1e6 * submit_s / kJobs);
  std::printf("  status round-trip: %d reqs in %.3f s  ->  %.0f requests/s (%.1f us each)\n",
              kRequests, status_s, status_thr, 1e6 * status_s / kRequests);

  if (!json_path.empty()) {
    benchjson::Writer w;
    w.add("serve_submit_roundtrip", "transport:unix/jobs:64", submit_s / kJobs, submit_thr);
    w.add("serve_status_roundtrip", "transport:unix/requests:256", status_s / kRequests,
          status_thr);
    w.write(json_path);
    std::printf("  wrote %s\n", json_path.c_str());
  }

  server.stop();
  std::filesystem::remove_all(dir);
  return 0;
}
