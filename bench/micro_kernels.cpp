// google-benchmark microkernels for the primitives behind the paper's cost
// model: 1-D/3-D FFTs (the Fock operator is NG-point FFT bound), batched vs
// band-by-band FFT submission (paper §3.2 step 2), fork-join vs persistent
// task-graph dispatch, overlap-matrix GEMMs (Alg. 3), single-precision wire
// conversion (step 4), and one full Fock pair solve.
//
// Carries its own main(): `--json <path>` additionally writes the runs (and
// derived speedup records such as taskgraph_speedup / simd_speedup) in the
// bench_json.hpp schema for the CI perf gate (bench/compare_bench.py).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/exec.hpp"
#include "common/random.hpp"
#include "fft/fft3d.hpp"
#include "grid/transforms.hpp"
#include "ham/density.hpp"
#include "ham/fock.hpp"
#include "ham/hamiltonian.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace {

using namespace pwdft;

std::vector<Complex> random_vec(std::size_t n) {
  Rng rng(7);
  std::vector<Complex> v(n);
  for (auto& x : v) x = rng.complex_normal();
  return v;
}

void BM_Fft1D(benchmark::State& state) {
  const std::size_t n = state.range(0);
  fft::FftPlan1D plan(n);
  auto in = random_vec(n);
  std::vector<Complex> out(n), work(n);
  for (auto _ : state) {
    plan.execute(in.data(), 1, out.data(), work.data(), -1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Fft1D)->Arg(15)->Arg(60)->Arg(90)->Arg(120);

void BM_RadixKernelSweep(benchmark::State& state) {
  // Scalar vs SIMD radix kernels on batched contiguous lines — the
  // single-thread inner loop of every 3-D axis pass, isolated from
  // threading and cache effects by streaming 64 resident lines.
  // Arg(0): line length; Arg(1): 0 = scalar kernel, 1 = SIMD kernel.
  // Compare rows at equal n to read off the SIMD speedup (acceptance:
  // >= 1.3x on radix-2/4 dominated lengths; see bench/README.md).
  const std::size_t n = state.range(0);
  const auto kernel =
      state.range(1) == 0 ? fft::RadixKernel::kScalar : fft::RadixKernel::kSimd;
  fft::FftPlan1D plan(n, kernel);
  const std::size_t lines = 64;
  auto data = random_vec(n * lines);
  std::vector<Complex> out(n), work(n);
  for (auto _ : state) {
    for (std::size_t l = 0; l < lines; ++l) {
      plan.execute(data.data() + l * n, 1, out.data(), work.data(), -1);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * n * lines);
}
BENCHMARK(BM_RadixKernelSweep)
    ->ArgsProduct({{16, 32, 60, 64, 90, 120, 128}, {0, 1}})
    ->ArgNames({"n", "simd"});


// Repeated in-place unnormalized forwards overflow to inf/NaN within a few
// iterations, and non-finite arithmetic runs ~2.5x slower, corrupting the
// measurement. Rescaling by 1/sqrt(N) after each transform keeps the RMS
// exactly constant (Parseval) at a cost identical across configurations.
void rescale(pwdft::Complex* data, std::size_t n, double inv_sqrt_n) {
  for (std::size_t i = 0; i < n; ++i) data[i] *= inv_sqrt_n;
}

void BM_Fft3D(benchmark::State& state) {
  exec::set_num_threads(1);  // serial baseline, independent of suite order
  const std::size_t n = state.range(0);
  fft::Fft3D fft({n, n, n});
  auto data = random_vec(fft.size());
  const double s = 1.0 / std::sqrt(static_cast<double>(fft.size()));
  for (auto _ : state) {
    fft.forward(data.data());
    rescale(data.data(), fft.size(), s);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * fft.size());
}
BENCHMARK(BM_Fft3D)->Arg(15)->Arg(30);

void BM_Fft3DRadixKernel(benchmark::State& state) {
  // End-to-end 3-D effect of the radix kernel on the Si8 wavefunction grid.
  exec::set_num_threads(1);
  const auto kernel =
      state.range(0) == 0 ? fft::RadixKernel::kScalar : fft::RadixKernel::kSimd;
  fft::Fft3D fft({15, 15, 15}, kernel);
  auto data = random_vec(fft.size());
  const double s = 1.0 / std::sqrt(static_cast<double>(fft.size()));
  for (auto _ : state) {
    fft.forward(data.data());
    rescale(data.data(), fft.size(), s);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * fft.size());
}
BENCHMARK(BM_Fft3DRadixKernel)->Arg(0)->Arg(1)->ArgNames({"simd"});

void BM_Fft3DBatched(benchmark::State& state) {
  // Batched submission (one plan, contiguous batch) vs the loop in
  // BM_Fft3D; the GPU version gains bandwidth here, the CPU version gains
  // plan reuse.
  exec::set_num_threads(1);  // serial baseline, independent of suite order
  fft::Fft3D fft({15, 15, 15});
  const std::size_t nb = state.range(0);
  auto data = random_vec(fft.size() * nb);
  const double s = 1.0 / std::sqrt(static_cast<double>(fft.size()));
  for (auto _ : state) {
    fft.forward_many(data.data(), nb);
    rescale(data.data(), fft.size() * nb, s);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * fft.size() * nb);
}
BENCHMARK(BM_Fft3DBatched)->Arg(1)->Arg(8);

void BM_Fft3DBatchedThreaded(benchmark::State& state) {
  // The execution-engine sweep: threads x batch on the Si8 wavefunction
  // grid. Arg(0) = engine width (1 reproduces the serial seed path, the
  // batch loop then runs inline), Arg(1) = batch size. Compare rows at
  // equal batch to read off the threading speedup.
  const std::size_t threads = state.range(0);
  const std::size_t nb = state.range(1);
  exec::set_num_threads(threads);
  fft::Fft3D fft({15, 15, 15});
  auto data = random_vec(fft.size() * nb);
  const double s = 1.0 / std::sqrt(static_cast<double>(fft.size()));
  for (auto _ : state) {
    fft.forward_many(data.data(), nb);
    rescale(data.data(), fft.size() * nb, s);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * fft.size() * nb);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["batch"] = static_cast<double>(nb);
  exec::set_num_threads(1);
}
BENCHMARK(BM_Fft3DBatchedThreaded)
    ->ArgsProduct({{1, 2, 4}, {1, 4, 8, 16}})
    ->ArgNames({"threads", "batch"})
    ->UseRealTime();

void BM_Fft3DDispatch(benchmark::State& state) {
  // Fork-join vs persistent-task-graph dispatch on small batched grids —
  // the per-call overhead the TaskGraph exists to remove. Fork-join pays
  // one pool wake plus one full barrier per axis pass (three per
  // transform); the graph replay pays one wake total, and batch members
  // pipeline through the passes with no global barrier. Compare graph:1
  // against graph:0 at equal (threads, n, batch); the derived
  // taskgraph_speedup records feed the perf gate (BENCH_taskgraph.json:
  // committed baseline 1.39x on the 16^3 transform at 4 threads, CI floor
  // 1.0 = never slower than fork-join).
  const auto path = state.range(0) ? fft::ExecPath::kTaskGraph : fft::ExecPath::kForkJoin;
  const std::size_t threads = state.range(1);
  const std::size_t n = state.range(2);
  const std::size_t nb = state.range(3);
  exec::set_num_threads(threads);
  fft::Fft3D fft({n, n, n}, fft::RadixKernel::kAuto, path);
  auto data = random_vec(fft.size() * nb);
  const double s = 1.0 / std::sqrt(static_cast<double>(fft.size()));
  fft.forward_many(data.data(), nb);  // build the cached graph outside timing
  rescale(data.data(), fft.size() * nb, s);
  for (auto _ : state) {
    fft.forward_many(data.data(), nb);
    rescale(data.data(), fft.size() * nb, s);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * fft.size() * nb);
  exec::set_num_threads(1);
}
BENCHMARK(BM_Fft3DDispatch)
    ->ArgsProduct({{0, 1}, {1, 4}, {16}, {1, 2, 4, 8}})
    ->ArgNames({"graph", "threads", "n", "batch"})
    ->UseRealTime();

void BM_OperatorPipeline(benchmark::State& state) {
  // Whole-operator pipelines vs staged dispatch on the narrow-band hot
  // paths: pipeline:1 runs the operator as ONE cached-graph replay
  // (Fft3D::run_pipeline), pipeline:0 as the legacy per-stage batched
  // dispatches. op:0 = semi-local Hamiltonian::apply (scatter → inverse
  // passes → V·ψ + nonlocal → forward passes → gather → kinetic+add),
  // op:1 = compute_density (scatter → inverse passes → chained |ψ|²
  // accumulation → ordered reduction). nb = 2 bands < threads keeps the
  // block narrow so the band×line split — and with it the pipeline —
  // engages. Compare pipeline:1 against pipeline:0 at equal (op, threads);
  // the derived pipeline_speedup records feed the perf gate (floor 1.0:
  // fusing the stages must never be slower than staging them).
  const auto mode =
      state.range(0) ? fft::PipelineMode::kFused : fft::PipelineMode::kStaged;
  const bool density_op = state.range(1) != 0;
  const std::size_t threads = state.range(2);
  exec::set_num_threads(threads);
  // Small grids (Si8 at reduced cutoff): the regime where per-stage
  // dispatch overhead is the dominant cost the pipeline removes.
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 4.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  const std::size_t nb = 2;
  Rng rng(13);
  CMatrix psi(setup.n_g(), nb);
  for (std::size_t i = 0; i < psi.size(); ++i) psi.data()[i] = rng.complex_normal();
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  ham::HamiltonianOptions opt;
  opt.hybrid.enabled = false;  // isolate the local pipeline (Fock has its own)
  opt.op_pipeline = mode;
  ham::Hamiltonian h(setup, species, opt);
  CMatrix y;
  if (density_op) {
    (void)ham::compute_density(setup, h.fft_dense(), psi, occ, comm, true, mode);
    for (auto _ : state) {
      auto rho = ham::compute_density(setup, h.fft_dense(), psi, occ, comm, true, mode);
      benchmark::DoNotOptimize(rho.data());
    }
  } else {
    h.apply(psi, y, comm);  // warm-up: builds the cached pipeline graph
    for (auto _ : state) {
      h.apply(psi, y, comm);
      benchmark::DoNotOptimize(y.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * nb);
  exec::set_num_threads(1);
}
BENCHMARK(BM_OperatorPipeline)
    ->ArgsProduct({{0, 1}, {0, 1}, {4}})
    ->ArgNames({"pipeline", "op", "threads"})
    ->UseRealTime();

void BM_SphereToGridTwoStep(benchmark::State& state) {
  // Baseline conversion: scatter then full inverse FFT (the seed path).
  exec::set_num_threads(1);
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 10.0, 2);
  fft::Fft3D fft(setup.dense_grid.dims());
  auto coeffs = random_vec(setup.n_g());
  std::vector<Complex> grid(setup.n_dense());
  for (auto _ : state) {
    grid::GSphere::scatter(coeffs, setup.map_dense(), grid);
    fft.inverse(grid.data());
    benchmark::DoNotOptimize(grid.data());
  }
  state.SetItemsProcessed(state.iterations() * setup.n_dense());
}
BENCHMARK(BM_SphereToGridTwoStep);

void BM_SphereToGridFused(benchmark::State& state) {
  // Fused scatter + partial-pass inverse FFT: the axis-0 pass skips x-lines
  // with no sphere support (~8x fewer on the 2x dense grid).
  exec::set_num_threads(1);
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 10.0, 2);
  fft::Fft3D fft(setup.dense_grid.dims());
  auto coeffs = random_vec(setup.n_g());
  std::vector<Complex> grid(setup.n_dense());
  for (auto _ : state) {
    grid::sphere_to_grid(fft, setup.smap_dense, coeffs, grid);
    benchmark::DoNotOptimize(grid.data());
  }
  state.SetItemsProcessed(state.iterations() * setup.n_dense());
  state.counters["x_fill"] = setup.smap_dense.x_fill();
}
BENCHMARK(BM_SphereToGridFused);

void BM_OverlapGemm(benchmark::State& state) {
  // S = Psi^H Psi for NG x Ne blocks (Alg. 3 step 2).
  const std::size_t ng = 3375, nb = state.range(0);
  CMatrix x(ng, nb);
  Rng rng(9);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.complex_normal();
  CMatrix s(nb, nb);
  for (auto _ : state) {
    linalg::gemm('C', 'N', Complex{1, 0}, x, x, Complex{0, 0}, s);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() * ng * nb * nb);
}
BENCHMARK(BM_OverlapGemm)->Arg(16)->Arg(32);

void BM_SinglePrecisionWireConversion(benchmark::State& state) {
  // The §3.2 step-4 conversion: complex<double> -> complex<float> -> back.
  const std::size_t n = 648000 / 8;  // one Si192-scale wavefunction
  auto buf = random_vec(n);
  std::vector<std::complex<float>> wire(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) wire[i] = std::complex<float>(buf[i]);
    for (std::size_t i = 0; i < n; ++i) buf[i] = Complex(wire[i]);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_SinglePrecisionWireConversion);

void BM_FockPairSolve(benchmark::State& state) {
  // One Poisson-like pair solve of Eq. 3 on the Si8 wavefunction grid:
  // pair density, forward FFT, kernel multiply, inverse FFT, accumulate.
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 10.0, 1);
  fft::Fft3D fft(setup.wfc_grid.dims());
  const std::size_t nw = setup.n_wfc();
  auto a = random_vec(nw), b = random_vec(nw);
  std::vector<Complex> pair(nw), acc(nw);
  std::vector<double> kernel(nw, 1.0);
  for (auto _ : state) {
    for (std::size_t i = 0; i < nw; ++i) pair[i] = std::conj(a[i]) * b[i];
    fft.forward(pair.data());
    for (std::size_t i = 0; i < nw; ++i) pair[i] *= kernel[i];
    fft.inverse(pair.data());
    for (std::size_t i = 0; i < nw; ++i) acc[i] += a[i] * pair[i];
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FockPairSolve);

void BM_FullFockApply(benchmark::State& state) {
  // Complete Alg. 2 application on Si8 at reduced cutoff.
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 4.0, 1);
  const std::size_t nb = 16;
  Rng rng(11);
  CMatrix phi(setup.n_g(), nb);
  for (std::size_t i = 0; i < phi.size(); ++i) phi.data()[i] = rng.complex_normal();
  CMatrix s = linalg::overlap(phi, phi);
  linalg::potrf_lower(s);
  linalg::trsm_right_lower_conj(phi, s);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  ham::FockOperator fock(setup, xc::HybridParams{true, 0.25, 0.11});
  fock.set_orbitals(phi, occ, par::BlockPartition(nb, 1), comm);
  CMatrix y(setup.n_g(), nb);
  for (auto _ : state) {
    y.fill(Complex{0, 0});
    fock.apply_add(phi, y, comm);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * nb * nb);
}
BENCHMARK(BM_FullFockApply);

/// Console reporter that additionally collects every finished run for the
/// --json writer. Counters are finalized (rates divided by time) before
/// reporters see them, so items_per_second can be copied through.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(pwdft::benchjson::Writer* w) : writer_(w) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      if (run.run_type == Run::RT_Aggregate) continue;  // keep raw runs only
      std::string name = run.benchmark_name();
      // Drop the time-modifier suffix ("/real_time") so configs stay stable
      // keys whether or not a benchmark uses UseRealTime().
      for (const char* suffix : {"/real_time", "/process_time"}) {
        const std::size_t at = name.rfind(suffix);
        if (at != std::string::npos && at + std::strlen(suffix) == name.size())
          name.resize(at);
      }
      const std::size_t slash = name.find('/');
      const std::string bench = name.substr(0, slash);
      const std::string config = slash == std::string::npos ? "" : name.substr(slash + 1);
      const double wall_s =
          run.iterations > 0 ? run.real_accumulated_time / static_cast<double>(run.iterations)
                             : 0.0;
      const auto it = run.counters.find("items_per_second");
      const double throughput = it != run.counters.end() ? it->second.value : 0.0;
      writer_->add(bench, config, wall_s, throughput);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  pwdft::benchjson::Writer* writer_;
};

/// Adds "<out_name>" ratio records: the mean throughput over all
/// "<bench>/.../<key>:1/..." runs of one config divided by the mean of the
/// matching "<key>:0" runs. The mean (not median) keeps the occasional
/// scheduler-thrash spike that IS part of each dispatch path's real cost;
/// run the harness with --benchmark_repetitions and
/// --benchmark_enable_random_interleaving so system drift averages into
/// both sides. The config of the derived record is the shared remainder
/// ("threads:4/n:16/batch:8").
void derive_speedups(pwdft::benchjson::Writer& w, const std::string& bench,
                     const std::string& key, const std::string& out_name) {
  const std::string on = key + ":1";
  const std::string off = key + ":0";
  const auto records = w.records();  // copy: w.add below invalidates views
  auto strip = [](std::string cfg, const std::string& tok) {
    const std::size_t p = cfg.find(tok);
    if (p == std::string::npos) return cfg;
    std::size_t b = p, e = p + tok.size();
    if (e < cfg.size() && cfg[e] == '/') ++e;        // "tok/rest" -> "rest"
    else if (b > 0 && cfg[b - 1] == '/') --b;        // "rest/tok" -> "rest"
    return cfg.erase(b, e - b);
  };
  // config (with the key token stripped) -> {on-walls, off-walls}. Ratios
  // come from mean wall seconds (not mean throughput, whose reciprocal
  // weighting would discount the spikes).
  std::map<std::string, std::array<std::vector<double>, 2>> by_cfg;
  for (const auto& r : records) {
    if (r.benchmark != bench || r.wall_s <= 0.0) continue;
    if (r.config.find(on) != std::string::npos)
      by_cfg[strip(r.config, on)][1].push_back(r.wall_s);
    else if (r.config.find(off) != std::string::npos)
      by_cfg[strip(r.config, off)][0].push_back(r.wall_s);
  }
  auto mean = [](const std::vector<double>& v) {
    double acc = 0.0;
    for (const double x : v) acc += x;
    return acc / static_cast<double>(v.size());
  };
  for (auto& [cfg, wall] : by_cfg) {
    if (wall[0].empty() || wall[1].empty()) continue;
    w.add(out_name, cfg, 0.0, mean(wall[0]) / mean(wall[1]));  // speedup of "on"
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = pwdft::benchjson::consume_json_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    pwdft::benchjson::Writer writer;
    CollectingReporter reporter(&writer);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    derive_speedups(writer, "BM_Fft3DDispatch", "graph", "taskgraph_speedup");
    derive_speedups(writer, "BM_RadixKernelSweep", "simd", "simd_speedup");
    derive_speedups(writer, "BM_Fft3DRadixKernel", "simd", "fft3d_simd_speedup");
    derive_speedups(writer, "BM_OperatorPipeline", "pipeline", "pipeline_speedup");
    writer.write(json_path);
  }
  benchmark::Shutdown();
  return 0;
}
