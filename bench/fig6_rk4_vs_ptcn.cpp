// Regenerates paper Fig. 6: wall clock time for simulating the 1536-atom
// silicon system for 50 attoseconds using RK4 (dt = 0.5 as) and PT-CN
// (dt = 50 as), across GPU counts. Paper: PT-CN is ~20x faster at 36 GPUs
// and ~30x at 768 GPUs.

#include <cstdio>

#include "perf/report.hpp"

int main() {
  using namespace pwdft;
  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  std::printf("== Fig. 6: RK4 vs PT-CN, 50 as of Si1536 dynamics ==\n");
  std::printf("(paper: RK4 ~ 4e4 s at 36 GPUs; PT-CN 2453.8 s -> 260.9 s at 768)\n\n");
  perf::fig6(model, {36, 72, 144, 288, 384, 768}).print();
  std::printf("\nThe measured small-system equivalent runs in bench/real_ptcn_vs_rk4.\n");
  return 0;
}
