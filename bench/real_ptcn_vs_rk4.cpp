// The real-numerics counterpart of Fig. 6: measures the actual wall time of
// PT-CN (dt = 50 as) against RK4 (dt = 0.5 as) advancing the same hybrid
// rt-TDDFT system by 50 attoseconds on this machine (Si8, reduced cutoff so
// the run finishes in seconds). The paper's 20-30x speedup comes from the
// same mechanism exercised here: ~100x fewer Fock-bearing H applications
// per unit time, paid back by ~22 SCF iterations per PT-CN step.

#include <cstdio>

#include "common/timer.hpp"
#include "common/table.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace pwdft;
  core::SimulationOptions opt;
  opt.ecut = 4.0;
  opt.dense_factor = 1;
  opt.hybrid = true;
  opt.scf.max_iter = 40;
  opt.scf.tol_rho = 1e-7;
  opt.scf.lobpcg.max_iter = 6;
  opt.scf.hybrid_outer_max = 5;

  std::printf("== Real measurement: PT-CN vs RK4, Si8 (Ecut 4 Ha), 50 as ==\n");
  core::Simulation sim(opt);
  {
    WallTimer t;
    sim.ground_state();
    std::printf("hybrid ground state: %.1f s\n\n", t.seconds());
  }

  const td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);

  Table t({"integrator", "dt (as)", "steps", "wall (s)", "SCF iters", "Fock applies"});
  double t_ptcn = 0.0, t_rk4 = 0.0;

  {
    core::Simulation s2(opt);
    s2.ground_state();
    core::PropagateOptions p;
    p.integrator = core::Integrator::kPtCn;
    p.dt_as = 50.0;
    p.steps = 1;
    p.field = &kick;
    p.record_energy = false;
    p.record_excitation = false;
    p.ptcn.rho_tol = 1e-6;  // paper stopping criterion
    p.ptcn.max_scf = 60;
    WallTimer timer;
    auto trace = s2.propagate(p);
    t_ptcn = timer.seconds();
    t.add_row();
    t.add_cell("PT-CN");
    t.add_cell(50.0, 1);
    t.add_cell(1);
    t.add_cell(t_ptcn, 2);
    t.add_cell(trace[1].scf_iterations);
    t.add_cell(trace[1].scf_iterations + 1);
  }
  {
    core::Simulation s3(opt);
    s3.ground_state();
    core::PropagateOptions p;
    p.integrator = core::Integrator::kRk4;
    p.dt_as = 0.5;
    p.steps = 100;
    p.field = &kick;
    p.record_energy = false;
    p.record_excitation = false;
    WallTimer timer;
    s3.propagate(p);
    t_rk4 = timer.seconds();
    t.add_row();
    t.add_cell("RK4");
    t.add_cell(0.5, 1);
    t.add_cell(100);
    t.add_cell(t_rk4, 2);
    t.add_cell(0);
    t.add_cell(400);
  }
  t.print();
  std::printf("\nmeasured PT-CN speedup: %.1fx (paper at scale: 20-30x; the small\n"
              "system spends relatively more time outside the Fock operator)\n",
              t_rk4 / t_ptcn);
  return 0;
}
