#pragma once

/// \file socket_step.hpp
/// Real multi-process PT-CN step measurement over SocketComm loopback,
/// shared by the fig7/fig8 scaling harnesses: forks `np` OS processes,
/// rendezvouses them through a unix-socket mesh (par::SocketGroup), runs
/// one hybrid PT-CN step with the bands block-distributed, and returns
/// rank 0's measured step wall time. This is the same collective path the
/// paper times on Summit, shrunk to Si8 and loopback sockets — the
/// numbers position the socket backend against the thread backend, they
/// do not reproduce the paper's absolute scale.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/random.hpp"
#include "common/timer.hpp"
#include "ham/hamiltonian.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "parallel/socket_comm.hpp"
#include "td/field.hpp"
#include "td/ptcn.hpp"

namespace pwdft::benchsock {

/// One hybrid PT-CN step on `np` forked ranks over SocketComm; returns
/// rank 0's step seconds, or a negative value if the run could not execute
/// (no fork/socket support in the sandbox, non-convergence, ...). Never
/// throws: scaling harnesses must keep producing their model tables even
/// where multi-process execution is unavailable.
inline double socket_ptcn_step_seconds(int np, std::size_t nb, double ecut = 3.0) {
  char path_tmpl[] = "/tmp/pwdft_bench_XXXXXX";
  const int tmp_fd = ::mkstemp(path_tmpl);
  if (tmp_fd < 0) return -1.0;
  ::close(tmp_fd);
  const std::string result_path = path_tmpl;

  double seconds = -1.0;
  try {
    // Deterministic orthonormal start, sliced per rank inside the children.
    ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), ecut, 1);
    CMatrix psi(setup.n_g(), nb);
    {
      Rng rng(61);
      const auto& g2 = setup.sphere.g2();
      for (std::size_t j = 0; j < nb; ++j)
        for (std::size_t i = 0; i < setup.n_g(); ++i)
          psi(i, j) = rng.complex_normal() / (1.0 + g2[i]);
      CMatrix s = linalg::overlap(psi, psi);
      linalg::potrf_lower(s);
      linalg::trsm_right_lower_conj(psi, s);
    }
    std::vector<double> occ(nb, 2.0);

    par::SocketGroup::run(np, [&](par::Comm& c) {
      ham::PlanewaveSetup s(crystal::Crystal::silicon_supercell(1, 1, 1), ecut, 1);
      ham::HamiltonianOptions hopt;
      hopt.hybrid.enabled = true;
      hopt.hybrid.alpha = 0.25;
      hopt.hybrid.omega = 0.11;
      hopt.use_nonlocal = true;
      auto species = pseudo::PseudoSpecies::silicon(true);
      ham::Hamiltonian hamiltonian(s, species, hopt);
      par::BlockPartition bands(nb, np);
      CMatrix psi_loc(s.n_g(), bands.count(c.rank()));
      for (std::size_t j = 0; j < psi_loc.cols(); ++j)
        for (std::size_t i = 0; i < s.n_g(); ++i)
          psi_loc(i, j) = psi(i, bands.offset(c.rank()) + j);

      td::PtCnOptions opt;
      opt.dt = 1.0;
      opt.rho_tol = 1e-7;
      opt.max_scf = 60;
      opt.sp_comm = false;
      td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
      td::PtCnPropagator prop(hamiltonian, bands, opt, np);
      WallTimer t;
      const auto rep = prop.step(psi_loc, occ, 0.0, kick, c);
      const double step_s = t.seconds();
      PWDFT_CHECK(rep.converged, "socket bench: PT-CN step did not converge");
      if (c.rank() == 0) {
        std::FILE* f = std::fopen(result_path.c_str(), "w");
        PWDFT_CHECK(f != nullptr, "socket bench: cannot write " << result_path);
        std::fprintf(f, "%.9f\n", step_s);
        std::fclose(f);
      }
    });

    if (std::FILE* f = std::fopen(result_path.c_str(), "r")) {
      if (std::fscanf(f, "%lf", &seconds) != 1) seconds = -1.0;
      std::fclose(f);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "socket loopback measurement skipped: %s\n", e.what());
    seconds = -1.0;
  }
  ::unlink(result_path.c_str());
  return seconds;
}

}  // namespace pwdft::benchsock
