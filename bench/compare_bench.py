#!/usr/bin/env python3
"""Perf-regression gate over bench_json.hpp records.

Usage:
    compare_bench.py --baseline BENCH_taskgraph.json \
        --current micro.json [fig3.json ...] [--max-regression 0.30]

The baseline is a committed JSON array of {benchmark, config, wall_s,
throughput} records (see bench/README.md). Records carrying "track": true
are gated:

  - the record must be present in (the union of) the current files,
    matched by (benchmark, config);
  - current.throughput must be >= baseline.throughput * (1 - max_regression)
    (throughput is items/s or a dimensionless speedup ratio — higher is
    better in both cases);
  - when the baseline record carries "floor": F, current.throughput must
    also be >= F (an absolute acceptance bound, e.g. 1.3 for the SIMD
    radix speedups, 1.0 — never slower than fork-join — for the
    task-graph dispatch speedup).

Untracked records are trajectory data: reported, never gated. Exit status 0
when every tracked record passes, 1 otherwise.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise SystemExit(f"{path}: expected a JSON array of records")
    for r in data:
        if "benchmark" not in r or "config" not in r:
            raise SystemExit(f"{path}: record missing benchmark/config: {r}")
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True, nargs="+")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="tolerated fractional throughput drop (default 0.30)")
    args = ap.parse_args()

    baseline = load_records(args.baseline)
    current = {}
    for path in args.current:
        for r in load_records(path):
            current[(r["benchmark"], r["config"])] = r

    tracked = [r for r in baseline if r.get("track")]
    if not tracked:
        raise SystemExit(f"{args.baseline}: no tracked records — nothing to gate")

    failures = []
    width = max(len(f"{r['benchmark']}/{r['config']}") for r in tracked)
    print(f"perf gate: {len(tracked)} tracked record(s), "
          f"max regression {args.max_regression:.0%}")
    for r in tracked:
        key = (r["benchmark"], r["config"])
        name = f"{r['benchmark']}/{r['config']}"
        cur = current.get(key)
        if cur is None:
            failures.append(f"{name}: missing from current results")
            print(f"  FAIL {name:<{width}}  (missing)")
            continue
        base_thr = float(r.get("throughput", 0.0))
        cur_thr = float(cur.get("throughput", 0.0))
        limit = base_thr * (1.0 - args.max_regression)
        floor = float(r["floor"]) if "floor" in r else None
        ok = cur_thr >= limit and (floor is None or cur_thr >= floor)
        ratio = cur_thr / base_thr if base_thr > 0 else float("nan")
        floor_s = f", floor {floor:g}" if floor is not None else ""
        print(f"  {'ok  ' if ok else 'FAIL'} {name:<{width}}  "
              f"baseline {base_thr:.4g}  current {cur_thr:.4g}  "
              f"({ratio:.2f}x of baseline{floor_s})")
        if not ok:
            if cur_thr < limit:
                failures.append(
                    f"{name}: throughput {cur_thr:.4g} < {limit:.4g} "
                    f"(baseline {base_thr:.4g} - {args.max_regression:.0%})")
            if floor is not None and cur_thr < floor:
                failures.append(f"{name}: throughput {cur_thr:.4g} < floor {floor:g}")

    if failures:
        print(f"\n{len(failures)} perf-gate failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
