// Regenerates paper Fig. 4: (a) the atomic configuration of the test
// systems and (b) the 380 nm external laser field over the 30 fs window.

#include <cstdio>

#include "common/table.hpp"
#include "crystal/crystal.hpp"
#include "td/field.hpp"

int main() {
  using namespace pwdft;

  std::printf("== Fig. 4(a): silicon test systems (paper section 4) ==\n\n");
  Table systems({"cells", "atoms", "bands (Ne)", "electrons"});
  const int configs[6][3] = {{1, 2, 3}, {2, 2, 3}, {2, 3, 4}, {4, 3, 4}, {4, 4, 6}, {4, 6, 8}};
  for (const auto& c : configs) {
    const auto cr = crystal::Crystal::silicon_supercell(c[0], c[1], c[2]);
    systems.add_row();
    systems.add_cell(std::to_string(c[0]) + "x" + std::to_string(c[1]) + "x" +
                     std::to_string(c[2]));
    systems.add_cell(cr.n_atoms());
    systems.add_cell(cr.n_occupied_bands());
    systems.add_cell(cr.n_electrons(), 0);
  }
  systems.print();

  std::printf("\n== Fig. 4(b): 380 nm laser pulse, 30 fs window ==\n");
  const auto pulse = td::LaserPulse::paper_pulse(0.01);
  std::printf("photon energy: %.3f eV (380 nm)\n\n", pulse.photon_energy_ev());
  Table t({"t (fs)", "E_z (a.u.)", "A_z (a.u.)"});
  for (int i = 0; i <= 60; ++i) {
    const double t_fs = 0.5 * i;
    const double t_au = constants::femtoseconds_to_au(t_fs);
    t.add_row();
    t.add_cell(t_fs, 2);
    t.add_cell(pulse.efield(t_au)[2], 6);
    t.add_cell(pulse.vector_potential(t_au)[2], 6);
  }
  t.print();
  t.write_csv("fig4_laser_field.csv");
  std::printf("\nseries written to fig4_laser_field.csv\n");
  return 0;
}
