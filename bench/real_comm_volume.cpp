// Validates the paper's §7 communication-volume analysis against *measured*
// traffic from the executable implementation: runs the Fock operator
// (Alg. 2) and the residual pipeline (Alg. 3) on 4 thread-backed ranks and
// compares the per-rank byte counts recorded by the vmpi layer with the
// closed-form volumes the performance model uses.

#include <cstdio>

#include "common/random.hpp"
#include "common/table.hpp"
#include "ham/fock.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "parallel/thread_comm.hpp"
#include "td/ptcn.hpp"

int main() {
  using namespace pwdft;
  const int np = 4;
  const std::size_t nb = 16;
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 4.0, 1);

  Rng rng(3);
  CMatrix psi(setup.n_g(), nb);
  for (std::size_t i = 0; i < psi.size(); ++i) psi.data()[i] = rng.complex_normal();
  {
    CMatrix s = linalg::overlap(psi, psi);
    linalg::potrf_lower(s);
    linalg::trsm_right_lower_conj(psi, s);
  }
  std::vector<double> occ(nb, 2.0);

  auto stats = par::ThreadGroup::run(np, [&](par::Comm& c) {
    ham::PlanewaveSetup s(crystal::Crystal::silicon_supercell(1, 1, 1), 4.0, 1);
    par::BlockPartition bands(nb, np);
    CMatrix psi_loc(s.n_g(), bands.count(c.rank()));
    for (std::size_t j = 0; j < psi_loc.cols(); ++j)
      for (std::size_t i = 0; i < s.n_g(); ++i)
        psi_loc(i, j) = psi(i, bands.offset(c.rank()) + j);

    // One Fock application (Alg. 2).
    ham::FockOptions fopt;
    fopt.single_precision_comm = true;
    ham::FockOperator fock(s, xc::HybridParams{true, 0.25, 0.11}, fopt);
    fock.set_orbitals(psi_loc, occ, bands, c);
    CMatrix y(s.n_g(), psi_loc.cols(), Complex{0, 0});
    fock.apply_add(psi_loc, y, c);

    // One residual evaluation (Alg. 3): 3 inputs + 1 output transpose.
    par::WavefunctionTranspose tr(par::BlockPartition(s.n_g(), np), bands);
    CMatrix r = td::pt_residual(tr, c, psi_loc, y, &psi_loc, Complex{1, 0},
                                Complex{0, 1}, Complex{1, 0}, /*sp_comm=*/true);
  });

  par::BlockPartition bands(nb, np), gvecs(setup.n_g(), np);
  std::printf("== Measured vs predicted per-rank communication (Si8, %d ranks) ==\n", np);
  std::printf("paper formulas (section 7): Bcast volume = (Ne - Ne_loc) x NG_wfc x 8 B (SP);\n");
  std::printf("Alltoallv = 4 transposes of the (NG x Ne)/P coefficient block.\n\n");
  Table t({"rank", "Bcast bytes", "Bcast predicted", "A2Av bytes", "A2Av predicted",
           "Allreduce bytes"});
  for (int r = 0; r < np; ++r) {
    const std::size_t bcast_pred =
        (nb - bands.count(r)) * setup.n_wfc() * 8;  // complex<float>
    std::size_t a2av_pred = 0;
    for (int s2 = 0; s2 < np; ++s2) {
      if (s2 == r) continue;
      // band_to_g receives other ranks' bands on my rows; g_to_band receives
      // my bands on other ranks' rows; 3 forward + 1 backward transposes.
      a2av_pred += 3 * bands.count(s2) * gvecs.count(r) * 8;
      a2av_pred += 1 * bands.count(r) * gvecs.count(s2) * 8;
    }
    t.add_row();
    t.add_cell(r);
    t.add_cell(std::to_string(stats[r].get(par::CommOp::kBcast).bytes));
    t.add_cell(std::to_string(bcast_pred));
    t.add_cell(std::to_string(stats[r].get(par::CommOp::kAlltoallv).bytes));
    t.add_cell(std::to_string(a2av_pred));
    t.add_cell(std::to_string(stats[r].get(par::CommOp::kAllreduce).bytes));
  }
  t.print();

  std::printf("\nScaled to the paper's Si1536 (Ne = 3072, NG = 648000, SP): each rank\n"
              "receives ~%.2f GB per Fock application (paper section 7: 15.36 GB/node\n"
              "counted with all 6 ranks of a node).\n",
              3072.0 * 648000.0 * 8.0 / 1e9);
  return 0;
}
