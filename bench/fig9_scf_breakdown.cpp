// Regenerates paper Fig. 9: the total time of a single SCF iteration and
// the contribution of each component (HPsi, residual, density evaluation,
// Anderson mixing, others) across GPU counts for Si1536.

#include <cstdio>

#include "perf/report.hpp"

int main() {
  using namespace pwdft;
  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  std::printf("== Fig. 9: single-SCF component contributions (s), Si1536 ==\n");
  std::printf("(paper: HPsi dominates everywhere; 'others' does not scale and\n"
              " grows from 2.6%% of an SCF at 36 GPUs to ~15%% at 768)\n\n");
  perf::fig9(model, {36, 72, 144, 288, 768}).print();
  return 0;
}
