// Ablation from the paper's introduction: PT-CN with the direct Fock
// operator vs PT-CN with the adaptively compressed exchange (ACE) operator
// (Lin 2016; Jia & Lin 2019 showed PT+ACE wins on CPUs, while the paper
// finds direct PT alone is the better fit for Summit GPUs), plus ACE under
// multiple time stepping (MTS: the exchange operator is frozen across
// PWDFT_MTS_INTERVAL steps instead of rebuilt every step). All three paths
// run for real on Si8; we report wall time per PT-CN step and emit
// bench_json.hpp records, including the derived `ace_speedup` and
// `mts_speedup` ratios that BENCH_taskgraph.json tracks in CI:
//
//   ablation_ace --json ace.json
//
//   ace_speedup = t_direct / t_ace(mts:1)   -- compressed vs pair-solve apply
//   mts_speedup = t_ace(mts:1) / t_ace(mts:4) -- amortizing the rebuild
//
// On this CPU engine each PT-CN inner iteration applies H exactly once, so
// the direct path pays a full O(nb^2) pair-solve sweep per iteration while
// ACE pays one sweep per *rebuild* and two tall GEMMs per apply — the
// CPU-side economics that made Jia & Lin prefer PT+ACE before Summit.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/simulation.hpp"

namespace {

struct Mode {
  const char* label;   // table row
  const char* config;  // JSON config key
  bool use_ace;
  int mts_interval;
};

struct Result {
  double gs_s = 0.0;
  double step_s = 0.0;  // mean wall per PT-CN step (record overhead excluded)
  int scf_iters = 0;    // summed over all steps
};

constexpr int kSteps = 4;

Result run_mode(const Mode& m) {
  using namespace pwdft;
  core::SimulationOptions opt;
  opt.ecut = 4.0;
  opt.dense_factor = 1;
  opt.hybrid = true;
  opt.use_ace = m.use_ace;
  opt.scf.max_iter = 40;
  opt.scf.tol_rho = 1e-7;
  opt.scf.lobpcg.max_iter = 6;
  opt.scf.hybrid_outer_max = 5;

  core::Simulation sim(opt);
  WallTimer tg;
  sim.ground_state();
  Result r;
  r.gs_s = tg.seconds();

  const td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  core::PropagateOptions p;
  p.dt_as = 50.0;
  p.steps = kSteps;
  p.field = &kick;
  p.record_energy = false;
  p.record_excitation = false;
  p.ptcn.rho_tol = 1e-6;
  p.ptcn.max_scf = 60;
  p.ptcn.mts_interval = m.mts_interval;
  const auto trace = sim.propagate(p);
  for (std::size_t s = 1; s < trace.size(); ++s) {
    r.step_s += trace[s].wall_seconds;
    r.scf_iters += trace[s].scf_iterations;
  }
  r.step_s /= kSteps;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pwdft;
  const std::string json_path = benchjson::consume_json_flag(&argc, argv);

  const Mode modes[] = {
      {"direct (Alg. 2)", "path:direct/mts:0", false, 0},
      {"ACE, rebuild every step", "path:ace/mts:1", true, 1},
      {"ACE + MTS (k = 4)", "path:ace/mts:4", true, 4},
  };

  benchjson::Writer json;
  Table t({"exchange path", "ground state (s)", "PT-CN step (s)", "SCF iters"});
  std::vector<Result> results;
  for (const Mode& m : modes) {
    const Result r = run_mode(m);
    results.push_back(r);
    t.add_row();
    t.add_cell(m.label);
    t.add_cell(r.gs_s, 1);
    t.add_cell(r.step_s, 3);
    t.add_cell(r.scf_iters);
    json.add("ablation_ace", m.config, r.step_s, 1.0 / r.step_s);
  }

  const double ace_speedup = results[0].step_s / results[1].step_s;
  const double mts_speedup = results[1].step_s / results[2].step_s;
  json.add("ace_speedup", "vs:direct/mts:1", 0.0, ace_speedup);
  json.add("mts_speedup", "mts:4/vs:1", 0.0, mts_speedup);

  std::printf("== Ablation: direct Fock vs ACE vs ACE+MTS inside PT-CN (Si8, Ecut 4 Ha) ==\n\n");
  t.print();
  std::printf(
      "\nace_speedup (direct / ACE mts:1):  %.2fx\n"
      "mts_speedup (ACE mts:1 / mts:4):   %.2fx\n"
      "\nEach PT-CN inner iteration applies H once. The direct path performs a\n"
      "full pair-solve exchange sweep per iteration; ACE performs one sweep per\n"
      "rebuild (here: per step, or per k = 4 steps under MTS) and two tall\n"
      "GEMMs per apply. On CPUs the compressed apply wins -- Jia & Lin's\n"
      "PT+ACE finding -- while the paper's Summit GPUs invert the economics\n"
      "(section 1: \"the PT formulation alone leads to more efficient\n"
      "implementation\"), which is why both paths stay selectable via\n"
      "PWDFT_ACE / PWDFT_MTS_INTERVAL.\n",
      ace_speedup, mts_speedup);

  if (!json_path.empty()) {
    json.write(json_path);
    std::printf("\nwrote %zu records to %s\n", json.records().size(), json_path.c_str());
  }
  return 0;
}
