// Ablation from the paper's introduction: PT-CN with the direct Fock
// operator vs PT-CN with the adaptively compressed exchange (ACE) operator
// (Lin 2016; Jia & Lin 2019 showed PT+ACE wins on CPUs, while the paper
// finds direct PT alone is the better fit for Summit GPUs). Here we run
// both paths for real on Si8 and report wall time per PT-CN step, plus the
// model's view of why direct wins when every SCF iteration performs exactly
// one exchange-bearing H application.

#include <cstdio>

#include "common/timer.hpp"
#include "common/table.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace pwdft;

  Table t({"exchange path", "ground state (s)", "PT-CN step (s)", "SCF iters"});
  for (bool use_ace : {false, true}) {
    core::SimulationOptions opt;
    opt.ecut = 4.0;
    opt.dense_factor = 1;
    opt.hybrid = true;
    opt.use_ace = use_ace;
    opt.scf.max_iter = 40;
    opt.scf.tol_rho = 1e-7;
    opt.scf.lobpcg.max_iter = 6;
    opt.scf.hybrid_outer_max = 5;

    core::Simulation sim(opt);
    WallTimer tg;
    sim.ground_state();
    const double t_gs = tg.seconds();

    const td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
    core::PropagateOptions p;
    p.dt_as = 50.0;
    p.steps = 1;
    p.field = &kick;
    p.record_energy = false;
    p.record_excitation = false;
    p.ptcn.rho_tol = 1e-6;
    p.ptcn.max_scf = 60;
    WallTimer ts;
    auto trace = sim.propagate(p);
    t.add_row();
    t.add_cell(use_ace ? "ACE-compressed" : "direct (Alg. 2)");
    t.add_cell(t_gs, 1);
    t.add_cell(ts.seconds(), 2);
    t.add_cell(trace[1].scf_iterations);
  }
  std::printf("== Ablation: direct Fock vs ACE inside PT-CN (Si8, Ecut 4 Ha) ==\n\n");
  t.print();
  std::printf(
      "\nIn PT-CN each SCF iteration refreshes the exchange orbitals and applies\n"
      "H once, so ACE pays its construction cost (one full Alg. 2 apply) without\n"
      "amortizing it -- the paper's finding that on Summit \"the PT formulation\n"
      "alone leads to more efficient implementation\" (section 1). ACE wins only\n"
      "when one frozen exchange operator serves many H applications (e.g. the\n"
      "LOBPCG inner iterations of the ground-state solver).\n");
  return 0;
}
