// Regenerates paper Fig. 8: weak scaling over silicon systems of 48 to
// 1536 atoms with the GPU count set to half the atom count, against the
// ideal O(N^2) line anchored at the largest system. Paper observations:
// 192 atoms / 96 GPUs run 50 as in ~16 s; small systems sit above the
// anchored N^2 line because Fock exchange does not yet dominate.

#include <cstdio>

#include "perf/report.hpp"

int main() {
  using namespace pwdft;
  std::printf("== Fig. 8: weak scaling, 50 as step time, GPUs = Natom/2 ==\n\n");
  perf::fig8(perf::SummitMachine::defaults(), {48, 96, 192, 384, 768, 1536}).print();

  perf::SummitModel m192(perf::SummitMachine::defaults(), perf::Workload::silicon(192));
  const double per_fs = m192.ptcn_step_total(96) * (1000.0 / 50.0);
  std::printf("\n192 atoms at 96 GPUs: %.1f s per fs (paper: ~5 min/fs), so a\n"
              "picosecond of dynamics is ~%.1f days (paper: ~4 days).\n",
              per_fs, per_fs * 1000.0 / 86400.0);
  return 0;
}
