// Regenerates paper Fig. 8: weak scaling over silicon systems of 48 to
// 1536 atoms with the GPU count set to half the atom count, against the
// ideal O(N^2) line anchored at the largest system. Paper observations:
// 192 atoms / 96 GPUs run 50 as in ~16 s; small systems sit above the
// anchored N^2 line because Fock exchange does not yet dominate.
//
// `--json <path>` writes the model-derived step times as bench_json.hpp
// trajectory records (benchmark "fig8_step_time", throughput = steps/s)
// for the CI perf-smoke artifact.

// The model table is followed by a *measured* weak-scaling point: one real
// hybrid PT-CN step over the SocketComm loopback mesh with the per-rank
// band count held at 8 (1 process x 8 bands, 2 processes x 16 bands),
// written as untracked "fig8_socket_step_time" records.

#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "perf/report.hpp"
#include "socket_step.hpp"

int main(int argc, char** argv) {
  using namespace pwdft;
  const std::string json_path = benchjson::consume_json_flag(&argc, argv);
  std::printf("== Fig. 8: weak scaling, 50 as step time, GPUs = Natom/2 ==\n\n");
  const std::vector<std::size_t> natoms{48, 96, 192, 384, 768, 1536};
  perf::fig8(perf::SummitMachine::defaults(), natoms).print();

  perf::SummitModel m192(perf::SummitMachine::defaults(), perf::Workload::silicon(192));
  const double per_fs = m192.ptcn_step_total(96) * (1000.0 / 50.0);
  std::printf("\n192 atoms at 96 GPUs: %.1f s per fs (paper: ~5 min/fs), so a\n"
              "picosecond of dynamics is ~%.1f days (paper: ~4 days).\n",
              per_fs, per_fs * 1000.0 / 86400.0);

  std::printf("\n== Measured: weak scaling over SocketComm loopback (Si8, Ecut 3) ==\n");
  std::printf("(8 bands per rank; ranks are forked OS processes)\n\n");
  std::vector<std::pair<int, double>> socket_times;
  for (int np : {1, 2}) {
    const double s = benchsock::socket_ptcn_step_seconds(np, /*nb=*/8 * np);
    if (s > 0) std::printf("  %d process(es) x 8 bands: %.3f s/step\n", np, s);
    socket_times.emplace_back(np, s);
  }

  if (!json_path.empty()) {
    benchjson::Writer json;
    for (std::size_t n : natoms) {
      perf::SummitModel m(perf::SummitMachine::defaults(), perf::Workload::silicon(n));
      const double t = m.ptcn_step_total(int(n / 2));
      json.add("fig8_step_time",
               "natoms:" + std::to_string(n) + "/gpus:" + std::to_string(n / 2), t,
               t > 0 ? 1.0 / t : 0.0);
    }
    for (const auto& [np, s] : socket_times)
      if (s > 0)
        json.add("fig8_socket_step_time",
                 "procs:" + std::to_string(np) + "/bands:" + std::to_string(8 * np), s,
                 1.0 / s);
    json.write(json_path);
  }
  return 0;
}
