// Gauge ablation (the paper's core algorithmic claim, §2): propagate the
// same kicked silicon system with (a) PT-CN, (b) plain Crank-Nicolson in
// the Schrodinger gauge, and (c) RK4, at increasing time steps, and report
// SCF iteration counts / convergence. The parallel transport term is what
// lets the implicit solver take ~50 as steps with ~22 SCF iterations.

#include <cstdio>

#include "common/table.hpp"
#include "core/simulation.hpp"
#include "td/cn.hpp"

int main() {
  using namespace pwdft;

  auto make_sim = [] {
    core::SimulationOptions opt;
    opt.ecut = 4.0;
    opt.dense_factor = 1;
    opt.hybrid = false;  // semi-local keeps the dt sweep quick
    opt.scf.max_iter = 50;
    opt.scf.tol_rho = 1e-8;
    opt.scf.lobpcg.max_iter = 6;
    return core::Simulation(opt);
  };

  std::printf("== Gauge ablation: PT-CN vs plain CN, kicked Si8 ==\n\n");
  Table t({"dt (as)", "PT-CN SCF iters", "PT-CN converged", "CN SCF iters", "CN converged"});
  const td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  par::SerialComm comm;

  for (double dt_as : {5.0, 12.5, 25.0, 50.0}) {
    const double dt = constants::attoseconds_to_au(dt_as);

    core::Simulation sim_pt = make_sim();
    sim_pt.ground_state();
    CMatrix psi_pt = sim_pt.wavefunctions();
    td::PtCnOptions popt;
    popt.dt = dt;
    popt.rho_tol = 1e-7;
    popt.max_scf = 100;
    td::PtCnPropagator pt(sim_pt.hamiltonian(), par::BlockPartition(psi_pt.cols(), 1), popt, 1);
    auto rp = pt.step(psi_pt, sim_pt.occupations(), 0.0, kick, comm);

    core::Simulation sim_cn = make_sim();
    sim_cn.ground_state();
    CMatrix psi_cn = sim_cn.wavefunctions();
    td::CnOptions copt;
    copt.dt = dt;
    copt.rho_tol = 1e-7;
    copt.max_scf = 100;
    td::CnPropagator cn(sim_cn.hamiltonian(), par::BlockPartition(psi_cn.cols(), 1), copt, 1);
    auto rc = cn.step(psi_cn, sim_cn.occupations(), 0.0, kick, comm);

    t.add_row();
    t.add_cell(dt_as, 1);
    t.add_cell(rp.scf_iterations);
    t.add_cell(rp.converged ? "yes" : "NO");
    t.add_cell(rc.scf_iterations);
    t.add_cell(rc.converged ? "yes" : "NO");
  }
  t.print();
  std::printf(
      "\nThe PT term Psi (Psi^H H Psi) removes the fast trivial phases, so the\n"
      "implicit SCF converges in few iterations even at 50 as (paper: ~22 SCF\n"
      "per step on Si1536). Plain CN degrades with dt and is the reason prior\n"
      "planewave rt-TDDFT stayed in the sub-attosecond regime with RK4.\n");
  return 0;
}
