// Regenerates paper Fig. 10: strong scaling of the communication
// operations (MPI_Bcast, CPU-GPU memcpy, MPI_Alltoallv, MPI_Allreduce)
// against the computation time, per PT-CN step for Si1536.

#include <cstdio>

#include "perf/report.hpp"

int main() {
  using namespace pwdft;
  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  std::printf("== Fig. 10: MPI / memcpy / compute per step (s), Si1536 ==\n");
  std::printf("(paper: compute falls ~1/P; Bcast grows and crosses compute\n"
              " past ~1536 GPUs; Allreduce is flat; Alltoallv shrinks)\n\n");
  perf::fig10(model, {36, 72, 144, 288, 384, 768, 1536, 3072}).print();
  return 0;
}
