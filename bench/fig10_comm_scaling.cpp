// Regenerates paper Fig. 10: strong scaling of the communication
// operations (MPI_Bcast, CPU-GPU memcpy, MPI_Alltoallv, MPI_Allreduce)
// against the computation time, per PT-CN step for Si1536.
//
// A second section *measures* the PR's communication machinery on this
// machine with thread-backed ranks:
//
//   - comm_overlap_speedup: mean per-rank per-step latency of the
//     transpose-at-point-of-use schedule (the pre-overlap PT-CN) over the
//     packed-now/parked-exchange/unpack-at-wait schedule (par::
//     TransposeOverlap). Thread-backed ranks exchange via memcpy with zero
//     wire latency — and on-CPU byte shuffling cannot be hidden behind
//     on-CPU compute — so the exchange runs through a decorator comm that
//     sleeps a fixed wire time per Alltoallv, emulating the off-CPU
//     DMA/network time of a real interconnect. The speedup is therefore a
//     scheduling measurement: it exceeds 1 only if the exchange genuinely
//     proceeds on the async lane while the caller computes (a serialized
//     implementation would pay the wire time on the critical path in both
//     modes and score ~1.0).
//   - comm_volume_2d: per-rank Alltoallv bytes of the flat P-rank
//     wavefunction transpose over the band-grouped (HierComm) grid
//     transpose of the same global block. Deterministic: counted by the
//     CommStats layer, not timed.
//   - band_rebalance_gain: max per-rank pair-solve cost of the uniform
//     band layout over the par::CostPartition::balance layout under a
//     deterministically skewed cost vector (the FockOperator
//     debug_set_rank_cost hook feeds the same vector). Deterministic.
//
// `--json <path>` writes the measured rows as bench_json.hpp records; the
// committed BENCH_scaling.json baseline tracks them in the CI perf-smoke
// gate (bench/compare_bench.py).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "ham/fock.hpp"
#include "parallel/hier_comm.hpp"
#include "parallel/overlap.hpp"
#include "parallel/thread_comm.hpp"
#include "parallel/transpose.hpp"
#include "perf/report.hpp"

namespace {

using namespace pwdft;

/// Deterministic FLOP sink standing in for the H*psi compute that the
/// transpose exchange hides behind. `units` scales the work.
double busy_work(std::size_t units) {
  double acc = 1.0;
  for (std::size_t u = 0; u < units; ++u)
    for (int i = 0; i < 2048; ++i) acc = acc * 1.0000000001 + 1e-12;
  return acc;
}

/// Comm decorator that charges a fixed wire time (an off-CPU sleep) per
/// Alltoallv before delegating — the stand-in for the DMA/network latency
/// thread-backed ranks do not have. Everything else passes through.
class SimWireComm final : public par::Comm {
 public:
  SimWireComm(par::Comm& parent, std::chrono::microseconds wire)
      : parent_(&parent), wire_(wire) {}
  SimWireComm(std::unique_ptr<par::Comm> owned, std::chrono::microseconds wire)
      : owned_(std::move(owned)), parent_(owned_.get()), wire_(wire) {}

  int rank() const override { return parent_->rank(); }
  int size() const override { return parent_->size(); }
  void barrier() override { parent_->barrier(); }
  void bcast_bytes(void* data, std::size_t bytes, int root) override {
    parent_->bcast_bytes(data, bytes, root);
  }
  void allreduce_sum(double* data, std::size_t count) override {
    parent_->allreduce_sum(data, count);
  }
  void allreduce_sum(Complex* data, std::size_t count) override {
    parent_->allreduce_sum(data, count);
  }
  void alltoallv_bytes(const unsigned char* send, const std::size_t* send_counts,
                       const std::size_t* send_displs, unsigned char* recv,
                       const std::size_t* recv_counts,
                       const std::size_t* recv_displs) override {
    std::this_thread::sleep_for(wire_);
    parent_->alltoallv_bytes(send, send_counts, send_displs, recv, recv_counts, recv_displs);
  }
  void allgatherv_bytes(const unsigned char* send, std::size_t send_bytes, unsigned char* recv,
                        const std::size_t* recv_counts,
                        const std::size_t* recv_displs) override {
    parent_->allgatherv_bytes(send, send_bytes, recv, recv_counts, recv_displs);
  }
  void send_bytes(const void* data, std::size_t bytes, int dest, int tag) override {
    parent_->send_bytes(data, bytes, dest, tag);
  }
  void recv_bytes(void* data, std::size_t bytes, int src, int tag) override {
    parent_->recv_bytes(data, bytes, src, tag);
  }
  std::unique_ptr<par::Comm> dup() override {
    return std::make_unique<SimWireComm>(parent_->dup(), wire_);
  }
  std::unique_ptr<par::Comm> split(int color, int key) override {
    return std::make_unique<SimWireComm>(parent_->split(color, key), wire_);
  }

 private:
  std::unique_ptr<par::Comm> owned_;
  par::Comm* parent_;
  std::chrono::microseconds wire_;
};

/// Mean per-rank per-step latency (seconds) of `steps` transpose+compute
/// steps on `np` thread-backed ranks. Rank r computes (r+1)*kUnits units —
/// the skew the overlap hides. With band_groups > 1 the transposes run on
/// the grid() communicators of a HierComm (each band group transposes its
/// band slice over fewer ranks).
double mean_step_latency(int np, int band_groups, bool overlap, int steps,
                         std::size_t ng, std::size_t nb) {
  constexpr std::size_t kUnits = 480;
  constexpr std::chrono::microseconds kWire{3000};
  std::vector<double> total(np, 0.0);
  par::ThreadGroup::run(np, [&](par::Comm& c) {
    par::HierComm h(c, band_groups);
    const par::BlockPartition groups = h.group_bands(nb);
    const std::size_t nb_group = groups.count(h.band_group());
    par::BlockPartition bands(nb_group, h.n_grid_ranks());
    par::BlockPartition gvecs(ng, h.n_grid_ranks());
    par::WavefunctionTranspose tr(gvecs, bands);
    SimWireComm wire(h.grid(), kWire);
    Rng rng(11 + c.rank());
    CMatrix band_local(ng, bands.count(h.grid_rank()));
    for (std::size_t i = 0; i < band_local.size(); ++i)
      band_local.data()[i] = rng.complex_normal();
    CMatrix g_local;
    par::TransposeOverlap ovl(overlap);
    const std::size_t units = kUnits * std::size_t(c.rank() + 1);
    volatile double sink = 0.0;

    // Warm-up step: allocate wires, fault in buffers, spin up the lane.
    if (overlap) {
      ovl.start_band_to_g(tr, wire, band_local, g_local, false);
      ovl.wait();
    } else {
      tr.band_to_g(wire, band_local, g_local, false);
    }
    double local = 0.0;
    for (int s = 0; s < steps; ++s) {
      c.barrier();
      WallTimer t;
      if (overlap) {
        // Overlapped schedule: pack now, exchange rides the async lane
        // behind the compute, unpack at the point of use.
        ovl.start_band_to_g(tr, wire, band_local, g_local, false);
        sink = busy_work(units);
        ovl.wait();
      } else {
        // Pre-overlap schedule: the transpose sits at its point of use,
        // after the compute — the wire time lands on the critical path and
        // every rank additionally waits out the slowest rank's arrival
        // inside the rendezvous.
        sink = busy_work(units);
        tr.band_to_g(wire, band_local, g_local, false);
      }
      local += t.seconds();
    }
    (void)sink;
    total[c.rank()] = local;
  });
  double mean = 0.0;
  for (double v : total) mean += v;
  return mean / (double(np) * steps);
}

/// Per-rank-0 Alltoallv receive bytes of one band_to_g transpose of an
/// (ng x nb) block: flat over np ranks vs grid-grouped over np/groups.
std::size_t transpose_recv_bytes(int np, int band_groups, std::size_t ng, std::size_t nb) {
  auto stats = par::ThreadGroup::run(np, [&](par::Comm& c) {
    par::HierComm h(c, band_groups);
    const par::BlockPartition groups = h.group_bands(nb);
    par::BlockPartition bands(groups.count(h.band_group()), h.n_grid_ranks());
    par::BlockPartition gvecs(ng, h.n_grid_ranks());
    par::WavefunctionTranspose tr(gvecs, bands);
    CMatrix band_local(ng, bands.count(h.grid_rank()), Complex{1.0, 0.0});
    CMatrix g_local;
    tr.band_to_g(h.grid(), band_local, g_local, false);
    h.merge_substats();
    c.stats().merge(h.stats());
  });
  return stats[0].get(par::CommOp::kAlltoallv).bytes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pwdft;
  const std::string json_path = benchjson::consume_json_flag(&argc, argv);
  benchjson::Writer json;

  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  std::printf("== Fig. 10: MPI / memcpy / compute per step (s), Si1536 ==\n");
  std::printf("(paper: compute falls ~1/P; Bcast grows and crosses compute\n"
              " past ~1536 GPUs; Allreduce is flat; Alltoallv shrinks)\n\n");
  perf::fig10(model, {36, 72, 144, 288, 384, 768, 1536, 3072}).print();

  // Model-derived trajectory records (untracked).
  for (int g : {36, 72, 144, 288, 384, 768, 1536, 3072}) {
    const auto b = model.comm_breakdown(g);
    json.add("fig10_mpi_total", "gpus:" + std::to_string(g), b.mpi_total(),
             b.mpi_total() > 0 ? 1.0 / b.mpi_total() : 0.0);
    json.add("fig10_compute", "gpus:" + std::to_string(g), b.compute,
             b.compute > 0 ? 1.0 / b.compute : 0.0);
  }

  // ---- Measured: comm/compute overlap on thread-backed ranks. ----
  const std::size_t ng = 4096, nb = 16;
  const int steps = 12;
  std::printf("\n== Measured: transpose overlap, per-rank per-step latency ==\n");
  std::printf("(wire time emulated with a 3 ms off-CPU sleep per Alltoallv;\n"
              " the sync schedule pays it on the critical path, the overlapped\n"
              " schedule hides it behind the skewed compute on the async lane)\n\n");
  Table t({"config", "sync (ms)", "overlap (ms)", "speedup"});
  struct Case {
    int np, groups;
    const char* config;
  };
  for (const Case cs : {Case{2, 1, "ranks:2"}, Case{4, 1, "ranks:4"},
                        Case{4, 2, "ranks:4/layout:2x2"}}) {
    const double off = mean_step_latency(cs.np, cs.groups, false, steps, ng, nb);
    const double on = mean_step_latency(cs.np, cs.groups, true, steps, ng, nb);
    const double speedup = on > 0 ? off / on : 0.0;
    t.row(cs.config, off * 1e3, on * 1e3, speedup);
    json.add("comm_overlap_speedup", cs.config, on, speedup);
  }
  t.print();

  // ---- Deterministic: 2D layout communication volume. ----
  {
    const std::size_t flat = transpose_recv_bytes(4, 1, ng, nb);
    const std::size_t grid = transpose_recv_bytes(4, 2, ng, nb);
    const double ratio = grid > 0 ? double(flat) / double(grid) : 0.0;
    std::printf("\n== Deterministic: per-rank transpose Alltoallv bytes ==\n");
    std::printf("flat 4 ranks: %zu B; 2x2 grid comm: %zu B; ratio %.3f\n"
                "(band groups shrink the rendezvous and the wire volume)\n",
                flat, grid, ratio);
    json.add("comm_volume_2d", "ranks:4/groups:2", 0.0, ratio);
  }

  // ---- Deterministic: dynamic band rebalance gain. ----
  {
    // Skewed per-rank cost measurement (rank 0 is 4x slower), smeared over
    // the uniform layout exactly as FockOperator::update_balance does.
    const int np = 4;
    const std::size_t nbands = 16;
    par::BlockPartition bands(nbands, np);
    std::vector<double> rank_cost{4.0, 1.0, 1.0, 1.0};
    std::vector<double> col_cost(nbands);
    for (std::size_t j = 0; j < nbands; ++j) {
      const int owner = bands.owner(j);
      col_cost[j] = rank_cost[owner] / double(bands.count(owner));
    }
    auto load = [&](const par::CostPartition& p) {
      double worst = 0.0;
      for (int r = 0; r < np; ++r) {
        double s = 0.0;
        for (std::size_t j = p.offset(r); j < p.offset(r) + p.count(r); ++j) s += col_cost[j];
        worst = std::max(worst, s);
      }
      return worst;
    };
    const par::CostPartition uniform(bands);
    const auto balanced = par::CostPartition::balance(col_cost, np);
    const double gain = load(balanced) > 0 ? load(uniform) / load(balanced) : 0.0;
    std::printf("\n== Deterministic: band rebalance, max per-rank cost ==\n");
    std::printf("uniform %.3f; balanced %.3f; gain %.3f (greedy CostPartition\n"
                "rebalance of a 4x-skewed measured cost vector, %zu bands)\n",
                load(uniform), load(balanced), gain, nbands);
    json.add("band_rebalance_gain", "ranks:4/skew:4x", 0.0, gain);
  }

  if (!json_path.empty()) json.write(json_path);
  return 0;
}
