// Regenerates paper Table 1: wall-clock breakdown of the computationally
// intensive components for the 1536-atom silicon system, 36..3072 GPUs,
// plus the §6 power comparison. Values come from the calibrated Summit
// performance model (src/perf); see EXPERIMENTS.md for paper-vs-model.

#include <cstdio>

#include "perf/report.hpp"

int main() {
  using namespace pwdft;
  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  const auto gpus = perf::paper_gpu_counts();

  std::printf("== Table 1: per-SCF component times (s), Si1536, PT-CN ==\n");
  std::printf("(paper anchors: per-SCF 101.36 s @36 GPUs, total 2453.8 s; "
              "best total 260.9 s @768 GPUs, 34x vs 3072-core CPU)\n\n");
  perf::table1(model, gpus).print();

  std::printf("\n== Power comparison (paper section 6) ==\n");
  perf::power_comparison(model, 72, 3072).print();

  std::printf("\nTotal FLOP per TDDFT step (model): %.3g (paper NVPROF: 3.87e16)\n",
              model.total_flop_per_step());
  std::printf("Anderson history memory per rank @36 GPUs: %.1f GB (paper: <20 GB)\n",
              model.anderson_memory_gb_per_rank(36));
  return 0;
}
