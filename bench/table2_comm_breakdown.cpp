// Regenerates paper Table 2: per-step MPI / CPU-GPU memcpy / compute
// breakdown for Si1536 across GPU counts.

#include <cstdio>

#include "perf/report.hpp"

int main() {
  using namespace pwdft;
  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  std::printf("== Table 2: MPI / memcpy / compute per PT-CN step (s), Si1536 ==\n");
  std::printf("(paper anchors @36 GPUs: memcpy 60.8, Alltoallv 20.97, Allreduce 11.5,\n"
              " Bcast 18.78, compute 2341.4; Bcast grows to 193.9 @3072 GPUs)\n\n");
  perf::table2(model, perf::paper_gpu_counts()).print();
  return 0;
}
