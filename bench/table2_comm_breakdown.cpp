// Regenerates paper Table 2: per-step MPI / CPU-GPU memcpy / compute
// breakdown for Si1536 across GPU counts.
//
// `--json <path>` writes the model-derived component times as
// bench_json.hpp trajectory records (one record per GPU count per
// component, throughput = 1/seconds) for the CI perf-smoke artifact.

#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "perf/report.hpp"

int main(int argc, char** argv) {
  using namespace pwdft;
  const std::string json_path = benchjson::consume_json_flag(&argc, argv);
  perf::SummitModel model(perf::SummitMachine::defaults(), perf::Workload::silicon(1536));
  std::printf("== Table 2: MPI / memcpy / compute per PT-CN step (s), Si1536 ==\n");
  std::printf("(paper anchors @36 GPUs: memcpy 60.8, Alltoallv 20.97, Allreduce 11.5,\n"
              " Bcast 18.78, compute 2341.4; Bcast grows to 193.9 @3072 GPUs)\n\n");
  perf::table2(model, perf::paper_gpu_counts()).print();

  if (!json_path.empty()) {
    benchjson::Writer json;
    for (int g : perf::paper_gpu_counts()) {
      const auto b = model.comm_breakdown(g);
      const std::string cfg = "gpus:" + std::to_string(g);
      auto rec = [&](const char* name, double s) {
        json.add(std::string("table2_") + name, cfg, s, s > 0 ? 1.0 / s : 0.0);
      };
      rec("memcpy", b.memcpy);
      rec("alltoallv", b.alltoallv);
      rec("allreduce", b.allreduce);
      rec("bcast", b.bcast);
      rec("compute", b.compute);
    }
    json.write(json_path);
  }
  return 0;
}
