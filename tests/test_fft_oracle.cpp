// Independent ground-truth oracle for the FFT stack, exercised with BOTH
// radix kernels (scalar and SIMD) forced at plan time. Nothing here reuses
// plan machinery as its own reference: every property is checked against a
// naive O(n^2) DFT built from cos/sin, or against an algebraic identity
// (round trip, Parseval, circular shift), or against the unmasked full
// transform (for the partial-pass sphere path, on randomized masks). This
// is the layer a radix-kernel rewrite is validated against.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.hpp"
#include "fft/fft3d.hpp"
#include "fft/fft_plan.hpp"
#include "grid/transforms.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

using fft::Fft3D;
using fft::FftPlan1D;
using fft::RadixKernel;

std::vector<Complex> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = rng.complex_normal();
  return v;
}

double max_abs_diff(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

std::vector<Complex> plan_execute(const FftPlan1D& plan, const std::vector<Complex>& x,
                                  int sign) {
  std::vector<Complex> out(plan.size()), work(plan.size());
  plan.execute(x.data(), 1, out.data(), work.data(), sign);
  return out;
}

/// Mixed radix 2/3/4/5 sizes, powers, primes (7..31), and prime-composite
/// mixes: everything the factorization chain can produce.
const std::size_t kSizes[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13,
                              15, 16, 17, 18, 20, 24, 25, 27, 29, 30, 31, 36, 40,
                              45, 48, 49, 60, 64, 72, 77, 90, 100, 120};

class FftOracle : public ::testing::TestWithParam<RadixKernel> {};

TEST_P(FftOracle, MatchesNaiveDftBothDirections) {
  for (const std::size_t n : kSizes) {
    FftPlan1D plan(n, GetParam());
    ASSERT_EQ(plan.kernel(), GetParam());
    for (std::uint64_t seed : {1ull, 2ull}) {
      const auto x = random_vec(n, 1000 * n + seed);
      for (int sign : {-1, +1}) {
        const auto got = plan_execute(plan, x, sign);
        const auto want = test::naive_dft(x, sign);
        // The naive reference itself carries O(n*eps) rounding; scale the
        // budget with n and stay far below any real defect (which shows up
        // at O(1)).
        EXPECT_LT(max_abs_diff(got, want), 1e-11 * static_cast<double>(n) + 1e-12)
            << "n=" << n << " sign=" << sign << " seed=" << seed;
      }
    }
  }
}

TEST_P(FftOracle, RoundTripIsIdentityTo1em12) {
  for (const std::size_t n : kSizes) {
    FftPlan1D plan(n, GetParam());
    const auto x = random_vec(n, 31 * n + 5);
    auto fwd = plan_execute(plan, x, -1);
    auto back = plan_execute(plan, fwd, +1);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : back) v *= inv_n;
    EXPECT_LT(max_abs_diff(back, x), 1e-12 * static_cast<double>(n) + 1e-13) << "n=" << n;
  }
}

TEST_P(FftOracle, ParsevalHolds) {
  for (const std::size_t n : kSizes) {
    FftPlan1D plan(n, GetParam());
    const auto x = random_vec(n, 7 * n + 3);
    const auto fx = plan_execute(plan, x, -1);
    double sx = 0.0, sf = 0.0;
    for (const auto& v : x) sx += std::norm(v);
    for (const auto& v : fx) sf += std::norm(v);
    EXPECT_NEAR(sf, static_cast<double>(n) * sx, 1e-11 * static_cast<double>(n) * sx)
        << "n=" << n;
  }
}

TEST_P(FftOracle, CircularShiftBecomesPhaseRamp) {
  // x'[m] = x[(m - s) mod n]  =>  X'[k] = X[k] * exp(-2*pi*i*k*s/n).
  for (const std::size_t n : {12ul, 30ul, 29ul, 60ul}) {
    FftPlan1D plan(n, GetParam());
    const auto x = random_vec(n, 400 + n);
    const std::size_t s = n / 3 + 1;
    std::vector<Complex> xs(n);
    for (std::size_t m = 0; m < n; ++m) xs[(m + s) % n] = x[m];
    const auto fx = plan_execute(plan, x, -1);
    auto fxs = plan_execute(plan, xs, -1);
    for (std::size_t k = 0; k < n; ++k) {
      const double ang = -constants::two_pi * static_cast<double>(k * s) / static_cast<double>(n);
      fxs[k] -= fx[k] * Complex{std::cos(ang), std::sin(ang)};
    }
    double m = 0.0;
    for (const auto& v : fxs) m = std::max(m, std::abs(v));
    EXPECT_LT(m, 1e-11 * static_cast<double>(n)) << "n=" << n;
  }
}

TEST_P(FftOracle, StridedInputMatchesContiguous) {
  for (const std::size_t n : {15ul, 16ul, 29ul}) {
    for (const std::size_t stride : {2ul, 3ul, 7ul}) {
      FftPlan1D plan(n, GetParam());
      const auto x = random_vec(n, 17 * n + stride);
      std::vector<Complex> strided(n * stride, Complex{99.0, -99.0});
      for (std::size_t i = 0; i < n; ++i) strided[i * stride] = x[i];
      std::vector<Complex> out(n), work(n);
      plan.execute(strided.data(), stride, out.data(), work.data(), -1);
      const auto ref = plan_execute(plan, x, -1);
      // Identical serial kernel on identical values: bitwise equal.
      for (std::size_t k = 0; k < n; ++k)
        ASSERT_EQ(out[k], ref[k]) << "n=" << n << " stride=" << stride << " k=" << k;
    }
  }
}

/// Naive separable 3-D reference: a naive 1-D DFT along each axis in turn,
/// sharing no code with FftPlan1D.
std::vector<Complex> naive_dft3(const std::vector<Complex>& x,
                                const std::array<std::size_t, 3>& d, int sign) {
  std::vector<Complex> a = x;
  const std::size_t n0 = d[0], n1 = d[1], n2 = d[2];
  auto line = [&](std::size_t base, std::size_t stride, std::size_t len) {
    std::vector<Complex> in(len);
    for (std::size_t i = 0; i < len; ++i) in[i] = a[base + i * stride];
    const auto out = test::naive_dft(in, sign);
    for (std::size_t i = 0; i < len; ++i) a[base + i * stride] = out[i];
  };
  for (std::size_t z = 0; z < n2; ++z)
    for (std::size_t y = 0; y < n1; ++y) line(n0 * (y + n1 * z), 1, n0);
  for (std::size_t z = 0; z < n2; ++z)
    for (std::size_t x1 = 0; x1 < n0; ++x1) line(x1 + n0 * n1 * z, n0, n1);
  for (std::size_t y = 0; y < n1; ++y)
    for (std::size_t x1 = 0; x1 < n0; ++x1) line(x1 + n0 * y, n0 * n1, n2);
  return a;
}

TEST_P(FftOracle, Fft3DMatchesNaiveSeparableReference) {
  for (const auto& dims : {std::array<std::size_t, 3>{4, 6, 5},
                           std::array<std::size_t, 3>{8, 9, 10},
                           std::array<std::size_t, 3>{7, 4, 3}}) {
    Fft3D fft(dims, GetParam());
    const auto x = random_vec(fft.size(), 90 + dims[0]);
    auto got = x;
    fft.forward(got.data());
    const auto want = naive_dft3(x, dims, -1);
    const double n_total = static_cast<double>(fft.size());
    EXPECT_LT(max_abs_diff(got, want), 1e-11 * n_total)
        << dims[0] << "x" << dims[1] << "x" << dims[2];
  }
}

TEST_P(FftOracle, Fft3DRoundTripAndParseval) {
  Fft3D fft({12, 10, 9}, GetParam());
  const auto x = random_vec(fft.size(), 123);
  auto y = x;
  fft.forward(y.data());
  double sx = 0.0, sf = 0.0;
  for (const auto& v : x) sx += std::norm(v);
  for (const auto& v : y) sf += std::norm(v);
  const double n = static_cast<double>(fft.size());
  EXPECT_NEAR(sf, n * sx, 1e-11 * n * sx);
  fft.inverse_scaled(y.data());
  EXPECT_LT(max_abs_diff(y, x), 1e-12 * n);
}

/// Randomized sphere masks for the partial-pass transforms: the fused path
/// must be bit-identical to scatter + full FFT (inverse) and full FFT +
/// gather (forward) for ANY support set, not just physical spheres.
class MaskedPassOracle : public ::testing::TestWithParam<RadixKernel> {};

TEST_P(MaskedPassOracle, FusedTransformsMatchFullTransformsOnRandomMasks) {
  const std::array<std::size_t, 3> dims{10, 8, 6};
  const std::size_t nw = dims[0] * dims[1] * dims[2];
  Fft3D fft(dims, GetParam());
  Rng rng(2024);
  for (int trial = 0; trial < 4; ++trial) {
    // Random support: ~25% of the grid; trial 3 is the single-point edge.
    std::vector<std::size_t> map;
    if (trial == 3) {
      map.push_back(nw - 1);
    } else {
      for (std::size_t i = 0; i < nw; ++i)
        if (rng.uniform() < 0.25) map.push_back(i);
      if (map.empty()) map.push_back(0);
    }
    grid::SphereMap sm(map, dims);

    // inverse: scatter + fused masked inverse == scatter + full inverse.
    const auto coeffs = random_vec(map.size(), 555 + trial);
    std::vector<Complex> fused(nw), full(nw);
    grid::sphere_to_grid(fft, sm, coeffs, fused);
    grid::GSphere::scatter(coeffs, sm.map, full);
    fft.inverse(full.data());
    for (std::size_t i = 0; i < nw; ++i)
      ASSERT_EQ(fused[i], full[i]) << "trial=" << trial << " i=" << i;

    // forward: fused masked forward + gather == full forward + gather.
    const auto grid_data = random_vec(nw, 777 + trial);
    auto scratch = grid_data;
    std::vector<Complex> got(map.size()), want(map.size());
    grid::grid_to_sphere(fft, sm, scratch, 1.0 / static_cast<double>(nw), got);
    auto work = grid_data;
    fft.forward(work.data());
    grid::GSphere::gather(work, sm.map, 1.0 / static_cast<double>(nw), want);
    for (std::size_t i = 0; i < map.size(); ++i)
      ASSERT_EQ(got[i], want[i]) << "trial=" << trial << " i=" << i;
  }
}

TEST(FftOracleKernels, ScalarAndSimdAgreeToMachinePrecision) {
  // The two kernels share the operation order in the combines and twiddle
  // multiplies but the SIMD leaves use exact butterflies instead of table
  // twiddles, so they agree to final-bit rounding (empirically a few 1e-16
  // per element), not bitwise.
  for (const std::size_t n : {16ul, 60ul, 90ul, 120ul}) {
    FftPlan1D scalar(n, RadixKernel::kScalar);
    FftPlan1D simd(n, RadixKernel::kSimd);
    const auto x = random_vec(n, 5000 + n);
    const auto a = plan_execute(scalar, x, -1);
    const auto b = plan_execute(simd, x, -1);
    EXPECT_LT(max_abs_diff(a, b), 1e-13 * static_cast<double>(n)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, FftOracle,
                         ::testing::Values(RadixKernel::kScalar, RadixKernel::kSimd),
                         [](const auto& info) {
                           return info.param == RadixKernel::kScalar ? "scalar" : "simd";
                         });
INSTANTIATE_TEST_SUITE_P(Kernels, MaskedPassOracle,
                         ::testing::Values(RadixKernel::kScalar, RadixKernel::kSimd),
                         [](const auto& info) {
                           return info.param == RadixKernel::kScalar ? "scalar" : "simd";
                         });

}  // namespace
}  // namespace pwdft
