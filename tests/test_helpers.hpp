#pragma once

/// Shared fixtures for the PT-PWDFT test suite: small silicon problems that
/// run in seconds, deterministic random states, and naive reference kernels.

#include <cmath>
#include <complex>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "crystal/crystal.hpp"
#include "ham/hamiltonian.hpp"
#include "ham/setup.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "pseudo/pseudopotential.hpp"

namespace pwdft::test {

/// Si8 cell at a reduced cutoff: ~500 planewaves, 16 bands; runs in seconds.
inline ham::PlanewaveSetup make_si8_setup(double ecut = 4.0, int dense_factor = 1) {
  return ham::PlanewaveSetup(crystal::Crystal::silicon_supercell(1, 1, 1), ecut, dense_factor);
}

inline ham::HamiltonianOptions fast_hybrid_options() {
  ham::HamiltonianOptions opt;
  opt.hybrid.enabled = true;
  opt.hybrid.alpha = 0.25;
  opt.hybrid.omega = 0.11;
  opt.use_nonlocal = true;
  return opt;
}

/// Deterministic random orthonormal block of `nb` orbitals.
inline CMatrix random_orthonormal(const ham::PlanewaveSetup& setup, std::size_t nb,
                                  std::uint64_t seed = 7) {
  Rng rng(seed);
  CMatrix psi(setup.n_g(), nb);
  const auto& g2 = setup.sphere.g2();
  for (std::size_t j = 0; j < nb; ++j)
    for (std::size_t i = 0; i < setup.n_g(); ++i)
      psi(i, j) = rng.complex_normal() / (1.0 + g2[i]);
  CMatrix s = linalg::overlap(psi, psi);
  linalg::potrf_lower(s);
  linalg::trsm_right_lower_conj(psi, s);
  return psi;
}

/// Naive O(n^2) reference DFT, sign=-1 forward convention.
inline std::vector<Complex> naive_dft(const std::vector<Complex>& x, int sign) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex{0, 0});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t m = 0; m < n; ++m) {
      const double ang = sign * constants::two_pi * static_cast<double>(k * m) /
                         static_cast<double>(n);
      out[k] += x[m] * Complex{std::cos(ang), std::sin(ang)};
    }
  }
  return out;
}

inline double max_abs_diff(const CMatrix& a, const CMatrix& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

/// Extracts the local band slice of a full wavefunction block.
inline CMatrix band_slice(const CMatrix& psi_full, const par::BlockPartition& bands, int rank) {
  CMatrix out(psi_full.rows(), bands.count(rank));
  for (std::size_t j = 0; j < out.cols(); ++j)
    for (std::size_t i = 0; i < out.rows(); ++i)
      out(i, j) = psi_full(i, bands.offset(rank) + j);
  return out;
}

}  // namespace pwdft::test
