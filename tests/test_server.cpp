#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "serve_test_util.hpp"

namespace pwdft {
namespace {

using serve_test::CkptDir;
using serve_test::expect_traces_identical;
using serve_test::solo_trace;
using serve_test::tiny_job;

// --- wire codec ------------------------------------------------------------

TEST(WireProtocol, SpecFrameRoundTripsBitExact) {
  auto spec = tiny_job("wire.spec-1", serve::JobKind::kLaser, 7);
  spec.field.laser_e0 = 0.0375;
  spec.priority = -3;
  spec.checkpoint_every = 2;
  spec.sim.seed = 1234;

  serve::wire::PutBuf p;
  serve::wire::put_spec(p, spec);
  const auto bytes = serve::wire::encode_frame(serve::wire::MsgType::kSubmit, p.bytes());

  serve::wire::Frame frame;
  ASSERT_EQ(serve::wire::decode_frame(bytes.data(), bytes.size(), &frame),
            serve::ErrorCode::kOk);
  EXPECT_EQ(frame.type, serve::wire::MsgType::kSubmit);
  serve::wire::GetBuf in(frame.payload);
  serve::JobSpec back;
  ASSERT_TRUE(serve::wire::get_spec(in, &back));
  EXPECT_TRUE(in.exhausted());

  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(back.steps, spec.steps);
  EXPECT_EQ(back.checkpoint_every, spec.checkpoint_every);
  EXPECT_EQ(back.dt_as, spec.dt_as);  // bitwise: doubles travel as images
  EXPECT_EQ(back.field.kind, spec.field.kind);
  EXPECT_EQ(back.field.laser_e0, spec.field.laser_e0);
  EXPECT_EQ(back.sim.cells[0], spec.sim.cells[0]);
  EXPECT_EQ(back.sim.ecut, spec.sim.ecut);
  EXPECT_EQ(back.sim.hybrid, spec.sim.hybrid);
  EXPECT_EQ(back.sim.seed, spec.sim.seed);
  EXPECT_EQ(back.sim.scf.tol_rho, spec.sim.scf.tol_rho);
  EXPECT_EQ(back.ptcn.rho_tol, spec.ptcn.rho_tol);
  EXPECT_EQ(back.validate(), serve::ErrorCode::kOk);
}

TEST(WireProtocol, StatusFrameRoundTripsTraceBitwise) {
  serve::JobStatus status;
  status.state = serve::JobState::kPreempted;
  status.steps_done = 5;
  status.model_cost = 12.5;
  status.scf_energy = -31.0625;
  status.preemptions = 2;
  status.error = serve::ErrorCode::kOk;
  status.message = "checkpointed at step 5";
  status.trace.resize(2);
  status.trace[0].t = 0.0625;
  status.trace[0].current = {1e-3, -2e-3, 3e-3};
  status.trace[0].n_excited = 0.015625;
  status.trace[0].energy = -31.25;
  status.trace[0].scf_iterations = 4;
  status.trace[0].rho_error = 1e-8;
  status.trace[0].exchange_refreshed = true;
  status.trace[1].t = 0.125;
  status.trace[1].mts_drift = 5e-9;

  serve::wire::PutBuf p;
  serve::wire::put_status(p, status);
  serve::wire::GetBuf in(p.bytes());
  serve::JobStatus back;
  ASSERT_TRUE(serve::wire::get_status(in, &back));
  EXPECT_TRUE(in.exhausted());

  EXPECT_EQ(back.state, status.state);
  EXPECT_EQ(back.steps_done, status.steps_done);
  EXPECT_EQ(back.model_cost, status.model_cost);
  EXPECT_EQ(back.scf_energy, status.scf_energy);
  EXPECT_EQ(back.preemptions, status.preemptions);
  EXPECT_EQ(back.error, status.error);
  EXPECT_EQ(back.message, status.message);
  expect_traces_identical(back.trace, status.trace, "status trace");
}

// The fuzz pin of the satellite list: EVERY truncation and EVERY single-byte
// corruption of a valid frame must yield a typed error — never kOk, never a
// crash, never a giant allocation.
TEST(WireProtocol, EveryTruncationAndByteFlipIsRejectedTyped) {
  serve::wire::PutBuf p;
  serve::wire::put_spec(p, tiny_job("fuzzed", serve::JobKind::kAbsorption, 3));
  const auto bytes = serve::wire::encode_frame(serve::wire::MsgType::kSubmit, p.bytes());
  serve::wire::Frame frame;

  for (std::size_t n = 0; n < bytes.size(); ++n)
    EXPECT_NE(serve::wire::decode_frame(bytes.data(), n, &frame), serve::ErrorCode::kOk)
        << "truncation to " << n << " bytes";

  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupt = bytes;
    corrupt[i] ^= 0x5a;
    EXPECT_NE(serve::wire::decode_frame(corrupt.data(), corrupt.size(), &frame),
              serve::ErrorCode::kOk)
        << "byte flip at offset " << i;
  }

  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_NE(serve::wire::decode_frame(trailing.data(), trailing.size(), &frame),
            serve::ErrorCode::kOk);

  // The specific failure taxonomy on the header fields.
  auto bad = bytes;
  bad[0] = 'X';  // magic
  EXPECT_EQ(serve::wire::decode_frame(bad.data(), bad.size(), &frame),
            serve::ErrorCode::kBadFrame);
  bad = bytes;
  bad[7] = '0' + serve::wire::kProtocolVersion + 1;  // version byte
  EXPECT_EQ(serve::wire::decode_frame(bad.data(), bad.size(), &frame),
            serve::ErrorCode::kVersionMismatch);
  bad = bytes;
  bad[bad.size() - 1] ^= 1;  // checksum
  EXPECT_EQ(serve::wire::decode_frame(bad.data(), bad.size(), &frame),
            serve::ErrorCode::kChecksumMismatch);
  // A hostile payload length never allocates: cap enforced before use.
  bad = bytes;
  bad[18] = 0xff;  // high byte of the u64 length field
  EXPECT_EQ(serve::wire::decode_frame(bad.data(), bad.size(), &frame),
            serve::ErrorCode::kFrameTooLarge);
}

TEST(WireProtocol, SpecFileSurvivesRoundTripAndRejectsCorruption) {
  CkptDir dir("spec_file_roundtrip");
  const std::string path = dir.path + "/job.spec.ckpt";
  const auto spec = tiny_job("durable", serve::JobKind::kLaser, 4);
  serve::wire::save_spec_file(path, spec);

  serve::JobSpec back;
  ASSERT_EQ(serve::wire::load_spec_file(path, &back), serve::ErrorCode::kOk);
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.dt_as, spec.dt_as);

  std::string why;
  EXPECT_EQ(serve::wire::load_spec_file(dir.path + "/absent.spec.ckpt", &back, &why),
            serve::ErrorCode::kIoError);

  // Corrupt one byte on disk: typed rejection, exactly as over the network.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 30, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, 30, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  EXPECT_NE(serve::wire::load_spec_file(path, &back, &why), serve::ErrorCode::kOk);
}

// --- loopback client <-> server --------------------------------------------

TEST(JobServer, LoopbackSubmitStreamPreemptResumeCancelOverTcp) {
  const auto spec_abs = tiny_job("abs", serve::JobKind::kAbsorption, 2);
  const auto ref_abs = solo_trace(spec_abs);
  auto spec_laser = tiny_job("laser", serve::JobKind::kLaser, 3);
  spec_laser.field.laser_e0 = 0.05;
  spec_laser.checkpoint_every = 1;
  const auto ref_laser = solo_trace(spec_laser);

  CkptDir dir("loopback_tcp");
  serve::ServerOptions sopt;
  sopt.listen = "tcp:127.0.0.1:0";
  sopt.engine.max_running = 2;
  sopt.engine.checkpoint_dir = dir.path;
  serve::Server server(sopt);
  ASSERT_NE(server.address(), "tcp:127.0.0.1:0") << "ephemeral port must be resolved";

  serve::Client client(server.address());

  // Submit + stream: one status per step boundary, final one terminal, and
  // the remote trace is bit-identical to the solo run.
  const auto sub = client.submit(spec_abs);
  ASSERT_TRUE(sub.ok()) << sub.message;
  std::size_t updates = 0;
  std::uint64_t last_steps = 0;
  const auto done = client.stream(sub.id, [&](const serve::JobStatus& s) {
    ++updates;
    EXPECT_GE(s.steps_done, last_steps);  // progress is monotone
    last_steps = s.steps_done;
  });
  ASSERT_EQ(done.state, serve::JobState::kDone) << done.message;
  EXPECT_GE(updates, 2u);  // at least one live snapshot plus the final one
  EXPECT_EQ(done.steps_done, 2u);
  expect_traces_identical(done.trace, ref_abs, "streamed absorption");

  // Typed engine rejections pass through the wire unchanged.
  EXPECT_EQ(client.submit(spec_abs).error, serve::ErrorCode::kDuplicateName);
  serve::JobSpec hostile = spec_abs;
  hostile.name = "../escape";
  EXPECT_EQ(client.submit(hostile).error, serve::ErrorCode::kInvalidSpec);
  EXPECT_EQ(client.status(999).error, serve::ErrorCode::kUnknownJob);
  EXPECT_EQ(client.preempt(999), serve::ErrorCode::kUnknownJob);
  EXPECT_EQ(client.resume(std::string("nope")).error, serve::ErrorCode::kUnknownJob);

  // Preempt mid-run, resume by name, finish bit-identically — all remote.
  const auto lsub = client.submit(spec_laser);
  ASSERT_TRUE(lsub.ok()) << lsub.message;
  EXPECT_EQ(client.preempt(lsub.id), serve::ErrorCode::kOk);
  auto killed = client.wait(lsub.id);
  ASSERT_EQ(killed.state, serve::JobState::kPreempted) << killed.message;
  EXPECT_LT(killed.steps_done, 3u);
  const auto res = client.resume(std::string("laser"));
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_EQ(res.id, lsub.id);
  const auto ldone = client.wait(lsub.id);
  ASSERT_EQ(ldone.state, serve::JobState::kDone) << ldone.message;
  expect_traces_identical(ldone.trace, ref_laser, "remote preempt+resume");

  // Cancel: terminal state kCancelled, resume refused, all typed.
  const auto csub = client.submit(tiny_job("doomed", serve::JobKind::kAbsorption, 1));
  ASSERT_TRUE(csub.ok());
  EXPECT_EQ(client.cancel(csub.id), serve::ErrorCode::kOk);
  const auto cst = client.wait(csub.id);
  EXPECT_EQ(cst.state, serve::JobState::kCancelled);
  EXPECT_EQ(client.resume(std::string("doomed")).error, serve::ErrorCode::kNotResumable);
}

TEST(JobServer, UnixSocketLoopbackRunsScfJob) {
  CkptDir dir("loopback_unix");
  serve::ServerOptions sopt;
  sopt.listen = "unix:" + dir.path + "/serve.sock";
  sopt.engine.checkpoint_dir = dir.path;
  serve::Server server(sopt);
  EXPECT_EQ(server.address(), sopt.listen);

  serve::Client client(server.address());
  const auto sub = client.submit(tiny_job("probe", serve::JobKind::kScf, 0));
  ASSERT_TRUE(sub.ok()) << sub.message;
  const auto st = client.wait(sub.id);
  ASSERT_EQ(st.state, serve::JobState::kDone) << st.message;
  EXPECT_TRUE(std::isfinite(st.scf_energy));
  EXPECT_LT(st.scf_energy, 0.0);
}

// Malformed traffic from a hostile or broken peer: every failure mode is
// answered with a typed kError frame, then the connection is dropped.
TEST(JobServer, MalformedFramesAreRejectedWithTypedErrors) {
  CkptDir dir("malformed");
  serve::ServerOptions sopt;
  sopt.listen = "unix:" + dir.path + "/serve.sock";
  sopt.engine.checkpoint_dir = dir.path;
  serve::Server server(sopt);

  const auto read_error = [](int fd) {
    serve::wire::Frame reply;
    EXPECT_EQ(serve::wire::recv_frame(fd, &reply), serve::ErrorCode::kOk);
    EXPECT_EQ(reply.type, serve::wire::MsgType::kError);
    serve::wire::GetBuf in(reply.payload);
    const auto code = static_cast<serve::ErrorCode>(in.u32());
    in.str();  // message
    EXPECT_TRUE(in.exhausted());
    return code;
  };
  const auto handshake = [](int fd) {
    serve::wire::PutBuf hello;
    hello.u32(serve::wire::kProtocolVersion);
    ASSERT_EQ(serve::wire::send_frame(fd, serve::wire::MsgType::kHello, hello.bytes()),
              serve::ErrorCode::kOk);
    serve::wire::Frame reply;
    ASSERT_EQ(serve::wire::recv_frame(fd, &reply), serve::ErrorCode::kOk);
    ASSERT_EQ(reply.type, serve::wire::MsgType::kHelloOk);
  };

  // Garbage instead of a hello: kBadFrame, connection closed.
  {
    const int fd = serve::wire::dial(server.address());
    const std::vector<std::uint8_t> garbage(64, 0xab);
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(garbage.size()));
    EXPECT_EQ(read_error(fd), serve::ErrorCode::kBadFrame);
    // The server dropped the connection (it closes with our unsent garbage
    // still unread, so this may surface as a reset rather than a clean EOF).
    serve::wire::Frame reply;
    const auto after = serve::wire::recv_frame(fd, &reply);
    EXPECT_TRUE(after == serve::ErrorCode::kClosed || after == serve::ErrorCode::kTruncated)
        << error_name(after);
    ::close(fd);
  }

  // Foreign protocol version in the hello: kVersionMismatch.
  {
    const int fd = serve::wire::dial(server.address());
    serve::wire::PutBuf hello;
    hello.u32(99);
    ASSERT_EQ(serve::wire::send_frame(fd, serve::wire::MsgType::kHello, hello.bytes()),
              serve::ErrorCode::kOk);
    EXPECT_EQ(read_error(fd), serve::ErrorCode::kVersionMismatch);
    ::close(fd);
  }

  // Valid handshake, then a bit-flipped request: kChecksumMismatch.
  {
    const int fd = serve::wire::dial(server.address());
    handshake(fd);
    serve::wire::PutBuf req;
    req.u64(0);
    auto bytes = serve::wire::encode_frame(serve::wire::MsgType::kStatusReq, req.bytes());
    bytes[serve::wire::kFrameHeaderBytes] ^= 0x10;  // first payload byte
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
    EXPECT_EQ(read_error(fd), serve::ErrorCode::kChecksumMismatch);
    ::close(fd);
  }

  // Valid handshake, then a frame cut off mid-payload: kTruncated.
  {
    const int fd = serve::wire::dial(server.address());
    handshake(fd);
    serve::wire::PutBuf req;
    req.u64(0);
    const auto bytes = serve::wire::encode_frame(serve::wire::MsgType::kStatusReq, req.bytes());
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size() - 5, MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size() - 5));
    ::shutdown(fd, SHUT_WR);
    EXPECT_EQ(read_error(fd), serve::ErrorCode::kTruncated);
    ::close(fd);
  }

  // The server is still healthy after all of that.
  serve::Client client(server.address());
  EXPECT_EQ(client.status(0).error, serve::ErrorCode::kUnknownJob);
}

// --- kill -9 the whole process, restart, resume -----------------------------

serve::JobSpec child_spec_a() {
  auto spec = tiny_job("restart.a", serve::JobKind::kLaser, 3);
  spec.field.laser_e0 = 0.05;
  spec.checkpoint_every = 1;
  return spec;
}

serve::JobSpec child_spec_b() {
  auto spec = tiny_job("restart.b", serve::JobKind::kAbsorption, 3);
  spec.checkpoint_every = 1;
  return spec;
}

// Child-process body (runs only under --gtest_filter from the test below):
// submit both jobs, then SIGKILL ourselves once each has at least one
// snapshot on disk. Live progress is published only AFTER the cadence
// snapshot is written, so observing steps_done >= 1 guarantees snapshot 1
// exists — the kill always lands mid-trajectory with recoverable state.
TEST(JobServerChildProcess, RunJobsUntilKilled) {
  const char* dir = std::getenv("PWDFT_SERVE_TEST_CHILD_DIR");
  if (!dir) GTEST_SKIP() << "child-process helper; driven by the restart test";
  serve::JobEngineOptions eopt;
  eopt.max_running = 2;
  eopt.checkpoint_dir = dir;
  serve::JobEngine engine(eopt);
  const auto a = engine.submit(child_spec_a());
  const auto b = engine.submit(child_spec_b());
  ASSERT_TRUE(a.ok() && b.ok());
  for (;;) {
    const auto sa = engine.status(a.id);
    const auto sb = engine.status(b.id);
    // A job that went terminal before its first snapshot is a bug, not a
    // kill window: exit cleanly so the parent reports it instead of hanging.
    if (serve::is_terminal(sa.state) || serve::is_terminal(sb.state)) ::_exit(3);
    if (sa.steps_done >= 1 && sb.steps_done >= 1) ::raise(SIGKILL);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// The restart acceptance pin: kill -9 a server process with two running
// jobs, restart with the same checkpoint dir, and every job resumes and
// completes with a trajectory bit-identical to an uninterrupted run.
TEST(JobServer, KillNineThenRestartResumesEveryJobBitIdentically) {
  const auto ref_a = solo_trace(child_spec_a());
  const auto ref_b = solo_trace(child_spec_b());

  CkptDir dir("kill9_restart");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("PWDFT_SERVE_TEST_CHILD_DIR", dir.path.c_str(), 1);
    ::execl("/proc/self/exe", "test_server",
            "--gtest_filter=JobServerChildProcess.RunJobsUntilKilled",
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child must die by its own SIGKILL, not exit cleanly "
                                    << "(exit status " << wstatus << ")";
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Restart: a fresh server over the same checkpoint dir re-registers both
  // interrupted jobs from their durable specs and finishes them.
  serve::ServerOptions sopt;
  sopt.listen = "unix:" + dir.path + "/serve.sock";
  sopt.engine.max_running = 2;
  sopt.engine.checkpoint_dir = dir.path;
  sopt.engine.recover_on_start = true;
  serve::Server server(sopt);
  EXPECT_EQ(server.engine().job_count(), 2u);

  const auto id_a = server.engine().find("restart.a");
  const auto id_b = server.engine().find("restart.b");
  ASSERT_TRUE(id_a && id_b);

  serve::Client client(server.address());
  const auto done_a = client.wait(*id_a);
  ASSERT_EQ(done_a.state, serve::JobState::kDone) << done_a.message;
  EXPECT_EQ(done_a.steps_done, 3u);
  expect_traces_identical(done_a.trace, ref_a, "restarted job a");

  const auto done_b = client.wait(*id_b);
  ASSERT_EQ(done_b.state, serve::JobState::kDone) << done_b.message;
  EXPECT_EQ(done_b.steps_done, 3u);
  expect_traces_identical(done_b.trace, ref_b, "restarted job b");
}

}  // namespace
}  // namespace pwdft
