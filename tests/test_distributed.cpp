#include <gtest/gtest.h>

#include "comm_conformance.hpp"
#include "ham/density.hpp"
#include "ham/fock.hpp"
#include "parallel/hier_comm.hpp"
#include "parallel/thread_comm.hpp"
#include "parallel/transpose.hpp"
#include "scf/scf.hpp"
#include "td/field.hpp"
#include "td/observables.hpp"
#include "td/ptcn.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

/// Builds the per-rank context (setup + Hamiltonian); every rank owns its
/// own FFT plans and Hamiltonian, exactly as every MPI rank of PWDFT does.
struct RankContext {
  explicit RankContext(double ecut = 3.0, bool hybrid = true)
      : setup(test::make_si8_setup(ecut, 1)),
        species(pseudo::PseudoSpecies::silicon(true)),
        options(make_opt(hybrid)),
        hamiltonian(setup, species, options) {}
  static ham::HamiltonianOptions make_opt(bool hybrid) {
    auto o = test::fast_hybrid_options();
    o.hybrid.enabled = hybrid;
    return o;
  }
  ham::PlanewaveSetup setup;
  pseudo::PseudoSpecies species;
  ham::HamiltonianOptions options;
  ham::Hamiltonian hamiltonian;
};

class DistributedRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistributedRanks, FockApplyMatchesSerialBitwise) {
  const int np = GetParam();
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, nb, 3);
  auto x = test::random_orthonormal(setup, nb, 5);
  std::vector<double> occ(nb, 2.0);

  // Serial reference.
  par::SerialComm serial;
  ham::FockOperator fock_ref(setup, xc::HybridParams{true, 0.25, 0.11});
  fock_ref.set_orbitals(phi, occ, par::BlockPartition(nb, 1), serial);
  CMatrix y_ref(setup.n_g(), nb, Complex{0, 0});
  fock_ref.apply_add(x, y_ref, serial);

  par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, true);
    par::BlockPartition bands(nb, np);
    CMatrix phi_loc = test::band_slice(phi, bands, c.rank());
    CMatrix x_loc = test::band_slice(x, bands, c.rank());
    ham::FockOperator fock(ctx.setup, xc::HybridParams{true, 0.25, 0.11});
    fock.set_orbitals(phi_loc, occ, bands, c);
    CMatrix y_loc(ctx.setup.n_g(), x_loc.cols(), Complex{0, 0});
    fock.apply_add(x_loc, y_loc, c);
    CMatrix y_expect = test::band_slice(y_ref, bands, c.rank());
    // Double-precision broadcast preserves every bit; the pair loop order
    // per local band is identical to serial.
    EXPECT_LT(test::max_abs_diff(y_loc, y_expect), 1e-14);
  });
}

TEST_P(DistributedRanks, FockSinglePrecisionCommStaysAccurate) {
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "SP path only converts on the wire";
  const std::size_t nb = 6;
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, nb, 7);
  std::vector<double> occ(nb, 2.0);

  par::SerialComm serial;
  ham::FockOperator fock_ref(setup, xc::HybridParams{true, 0.25, 0.11});
  fock_ref.set_orbitals(phi, occ, par::BlockPartition(nb, 1), serial);
  CMatrix y_ref(setup.n_g(), nb, Complex{0, 0});
  fock_ref.apply_add(phi, y_ref, serial);

  par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, true);
    par::BlockPartition bands(nb, np);
    ham::FockOptions fopt;
    fopt.single_precision_comm = true;  // paper §3.2 optimization 4
    ham::FockOperator fock(ctx.setup, xc::HybridParams{true, 0.25, 0.11}, fopt);
    CMatrix phi_loc = test::band_slice(phi, bands, c.rank());
    fock.set_orbitals(phi_loc, occ, bands, c);
    CMatrix y_loc(ctx.setup.n_g(), phi_loc.cols(), Complex{0, 0});
    fock.apply_add(phi_loc, y_loc, c);
    CMatrix y_expect = test::band_slice(y_ref, bands, c.rank());
    // Float rounding on the wire, double compute: error stays ~1e-7
    // ("negligible changes in the accuracy", paper §3.2).
    EXPECT_LT(test::max_abs_diff(y_loc, y_expect), 5e-6);
    EXPECT_GT(test::max_abs_diff(y_loc, y_expect), 0.0);
  });
}

TEST_P(DistributedRanks, FockOverlapPipelineMatchesSerial) {
  const int np = GetParam();
  const std::size_t nb = 6;
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, nb, 9);
  std::vector<double> occ(nb, 2.0);

  par::SerialComm serial;
  ham::FockOperator fock_ref(setup, xc::HybridParams{true, 0.25, 0.11});
  fock_ref.set_orbitals(phi, occ, par::BlockPartition(nb, 1), serial);
  CMatrix y_ref(setup.n_g(), nb, Complex{0, 0});
  fock_ref.apply_add(phi, y_ref, serial);

  par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, true);
    par::BlockPartition bands(nb, np);
    ham::FockOptions fopt;
    fopt.overlap = true;  // prefetch next band's Bcast during compute
    ham::FockOperator fock(ctx.setup, xc::HybridParams{true, 0.25, 0.11}, fopt);
    CMatrix phi_loc = test::band_slice(phi, bands, c.rank());
    fock.set_orbitals(phi_loc, occ, bands, c);
    CMatrix y_loc(ctx.setup.n_g(), phi_loc.cols(), Complex{0, 0});
    fock.apply_add(phi_loc, y_loc, c);
    CMatrix y_expect = test::band_slice(y_ref, bands, c.rank());
    EXPECT_LT(test::max_abs_diff(y_loc, y_expect), 1e-14);
  });
}

TEST_P(DistributedRanks, BcastVolumeMatchesPaperFormula) {
  // Paper §3.2: total Fock broadcast volume is Np * NG * Ne; equivalently
  // each rank receives (Ne - Ne_local) * NG coefficients per application.
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "no wire traffic on one rank";
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, nb, 11);
  std::vector<double> occ(nb, 2.0);
  const std::size_t nw = setup.n_wfc();

  auto stats = par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, true);
    par::BlockPartition bands(nb, np);
    ham::FockOperator fock(ctx.setup, xc::HybridParams{true, 0.25, 0.11});
    CMatrix phi_loc = test::band_slice(phi, bands, c.rank());
    fock.set_orbitals(phi_loc, occ, bands, c);
    CMatrix y_loc(ctx.setup.n_g(), phi_loc.cols(), Complex{0, 0});
    fock.apply_add(phi_loc, y_loc, c);
  });
  for (int r = 0; r < np; ++r) {
    par::BlockPartition bands(nb, np);
    const std::size_t expect = (nb - bands.count(r)) * nw * sizeof(Complex);
    EXPECT_EQ(stats[r].get(par::CommOp::kBcast).bytes, expect) << "rank " << r;
    EXPECT_EQ(stats[r].get(par::CommOp::kBcast).calls, nb);
  }
}

TEST_P(DistributedRanks, PtResidualMatchesSerial) {
  const int np = GetParam();
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, nb, 13);
  auto hpsi = test::random_orthonormal(setup, nb, 15);
  auto half = test::random_orthonormal(setup, nb, 17);

  par::SerialComm serial;
  par::WavefunctionTranspose tr1(par::BlockPartition(setup.n_g(), 1),
                                 par::BlockPartition(nb, 1));
  const Complex ch{0.0, 0.5};
  CMatrix r_ref = td::pt_residual(tr1, serial, psi, hpsi, &half, Complex{1, 0}, ch,
                                  Complex{1, 0}, false);

  par::ThreadGroup::run(np, [&](par::Comm& c) {
    auto setup_loc = test::make_si8_setup(3.0, 1);
    par::BlockPartition bands(nb, np);
    par::WavefunctionTranspose tr(par::BlockPartition(setup_loc.n_g(), np), bands);
    CMatrix psi_loc = test::band_slice(psi, bands, c.rank());
    CMatrix hpsi_loc = test::band_slice(hpsi, bands, c.rank());
    CMatrix half_loc = test::band_slice(half, bands, c.rank());
    CMatrix r = td::pt_residual(tr, c, psi_loc, hpsi_loc, &half_loc, Complex{1, 0}, ch,
                                Complex{1, 0}, false);
    CMatrix r_expect = test::band_slice(r_ref, bands, c.rank());
    EXPECT_LT(test::max_abs_diff(r, r_expect), 1e-10);
  });
}

TEST_P(DistributedRanks, OrthonormalizeMatchesSerial) {
  const int np = GetParam();
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, nb, 19);
  for (std::size_t i = 0; i < setup.n_g(); ++i) psi(i, 2) += 0.3 * psi(i, 0);

  par::SerialComm serial;
  par::WavefunctionTranspose tr1(par::BlockPartition(setup.n_g(), 1),
                                 par::BlockPartition(nb, 1));
  CMatrix psi_ref = psi;
  td::orthonormalize(tr1, serial, psi_ref, false);

  par::ThreadGroup::run(np, [&](par::Comm& c) {
    auto setup_loc = test::make_si8_setup(3.0, 1);
    par::BlockPartition bands(nb, np);
    par::WavefunctionTranspose tr(par::BlockPartition(setup_loc.n_g(), np), bands);
    CMatrix psi_loc = test::band_slice(psi, bands, c.rank());
    td::orthonormalize(tr, c, psi_loc, false);
    CMatrix expect = test::band_slice(psi_ref, bands, c.rank());
    EXPECT_LT(test::max_abs_diff(psi_loc, expect), 1e-10);
  });
}

TEST_P(DistributedRanks, FullPtCnStepMatchesSerialDensity) {
  const int np = GetParam();
  const std::size_t nb = 16;
  // Serial reference: one hybrid PT-CN step from a deterministic state.
  RankContext ref_ctx(3.0, true);
  auto psi_init = test::random_orthonormal(ref_ctx.setup, nb, 21);
  std::vector<double> occ(nb, 2.0);
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);

  td::PtCnOptions opt;
  opt.dt = 1.0;
  opt.rho_tol = 1e-8;
  opt.max_scf = 80;
  opt.sp_comm = false;

  par::SerialComm serial;
  CMatrix psi_ref = psi_init;
  td::PtCnPropagator prop_ref(ref_ctx.hamiltonian, par::BlockPartition(nb, 1), opt, 1);
  auto rep_ref = prop_ref.step(psi_ref, occ, 0.0, kick, serial);
  ASSERT_TRUE(rep_ref.converged);
  auto rho_ref = ham::compute_density(ref_ctx.setup, ref_ctx.hamiltonian.fft_dense(), psi_ref,
                                      occ, serial);

  par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, true);
    par::BlockPartition bands(nb, np);
    CMatrix psi_loc = test::band_slice(psi_init, bands, c.rank());
    td::PtCnPropagator prop(ctx.hamiltonian, bands, opt, np);
    auto rep = prop.step(psi_loc, occ, 0.0, kick, c);
    EXPECT_TRUE(rep.converged);
    std::span<const double> occ_loc(occ.data() + bands.offset(c.rank()),
                                    bands.count(c.rank()));
    auto rho = ham::compute_density(ctx.setup, ctx.hamiltonian.fft_dense(), psi_loc, occ_loc, c);
    // Allreduce summation order differs from serial; the converged fixed
    // point is the same to about the SCF tolerance.
    EXPECT_LT(ham::density_error(ctx.setup, rho, rho_ref), 5e-6);
  });
}

TEST_P(DistributedRanks, ExcitedElectronsMatchesSerial) {
  const int np = GetParam();
  const std::size_t nb = 6;
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi0 = test::random_orthonormal(setup, nb, 23);
  auto psi1 = test::random_orthonormal(setup, nb, 25);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm serial;
  const double ref =
      td::excited_electrons(setup, par::BlockPartition(nb, 1), psi0, psi1, occ, serial);
  par::ThreadGroup::run(np, [&](par::Comm& c) {
    auto setup_loc = test::make_si8_setup(3.0, 1);
    par::BlockPartition bands(nb, np);
    const double v = td::excited_electrons(setup_loc, bands,
                                           test::band_slice(psi0, bands, c.rank()),
                                           test::band_slice(psi1, bands, c.rank()), occ, c);
    EXPECT_NEAR(v, ref, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(Np, DistributedRanks, ::testing::Values(1, 2, 3, 4));

/// Band-group x grid-rank layouts of the hierarchical communicator
/// (paper §3.1, Fig. 1). Every test pins results across the 2D layouts
/// against the flat (1D) layout at the same world size — bitwise where the
/// determinism contract promises it.
struct HierLayout {
  int band_groups;
  int grid_ranks;
  int np() const { return band_groups * grid_ranks; }
};

class HierLayouts : public ::testing::TestWithParam<HierLayout> {};

TEST_P(HierLayouts, DensityAllreduceBitwiseMatchesFlat) {
  // The density Allreduce is the reduction that must stay bit-identical
  // when it runs through HierComm's staged (grid -> band -> ordered fold)
  // path instead of the flat rendezvous.
  const auto layout = GetParam();
  const int np = layout.np();
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, nb, 31);
  std::vector<double> occ(nb, 2.0);

  std::vector<std::vector<double>> rho_flat(np), rho_hier(np);
  par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, false);
    par::BlockPartition bands(nb, np);
    CMatrix psi_loc = test::band_slice(psi, bands, c.rank());
    std::span<const double> occ_loc(occ.data() + bands.offset(c.rank()), bands.count(c.rank()));
    rho_flat[c.rank()] =
        ham::compute_density(ctx.setup, ctx.hamiltonian.fft_dense(), psi_loc, occ_loc, c);
    par::HierComm h(c, layout.band_groups);
    rho_hier[c.rank()] =
        ham::compute_density(ctx.setup, ctx.hamiltonian.fft_dense(), psi_loc, occ_loc, h);
  });
  for (int r = 0; r < np; ++r) {
    ASSERT_EQ(rho_hier[r].size(), rho_flat[r].size());
    for (std::size_t i = 0; i < rho_flat[r].size(); ++i)
      EXPECT_EQ(rho_hier[r][i], rho_flat[r][i]) << "rank " << r << " i " << i;
  }
}

TEST_P(HierLayouts, GridTransposeMatchesSlicedReference) {
  // Within one band group the wavefunction transpose runs on grid() — a
  // P_g-rank rendezvous — and the groups transpose concurrently. The result
  // must be the exact slice of the group's band block.
  const auto layout = GetParam();
  const int np = layout.np();
  const std::size_t ng = 30, nb = 8;
  CMatrix full(ng, nb);
  Rng rng(53);
  for (std::size_t i = 0; i < full.size(); ++i) full.data()[i] = rng.complex_normal();

  par::ThreadGroup::run(np, [&](par::Comm& c) {
    par::HierComm h(c, layout.band_groups);
    const par::BlockPartition groups = h.group_bands(nb);
    // My group's band slice of the global block.
    CMatrix group_full(ng, groups.count(h.band_group()));
    for (std::size_t j = 0; j < group_full.cols(); ++j)
      for (std::size_t i = 0; i < ng; ++i)
        group_full(i, j) = full(i, groups.offset(h.band_group()) + j);

    par::BlockPartition bands(group_full.cols(), h.n_grid_ranks());
    par::BlockPartition gvecs(ng, h.n_grid_ranks());
    par::WavefunctionTranspose tr(gvecs, bands);
    CMatrix band_local = test::band_slice(group_full, bands, h.grid_rank());
    CMatrix g_local, back;
    tr.band_to_g(h.grid(), band_local, g_local, false);
    ASSERT_EQ(g_local.rows(), gvecs.count(h.grid_rank()));
    ASSERT_EQ(g_local.cols(), group_full.cols());
    for (std::size_t j = 0; j < g_local.cols(); ++j)
      for (std::size_t i = 0; i < g_local.rows(); ++i)
        EXPECT_EQ(g_local(i, j), group_full(gvecs.offset(h.grid_rank()) + i, j));
    tr.g_to_band(h.grid(), g_local, back, false);
    for (std::size_t i = 0; i < back.size(); ++i)
      EXPECT_EQ(back.data()[i], band_local.data()[i]);
    h.merge_substats();
  });
}

TEST_P(HierLayouts, FullPtCnStepOnHierCommBitwiseMatchesFlat) {
  // The whole propagator — density, Fock broadcasts, overlap transposes,
  // Anderson, orthonormalization — run on the hierarchical communicator
  // must reproduce the flat layout bit for bit (the staged allreduce is the
  // only reduction whose path changes, and it is order-preserving).
  const auto layout = GetParam();
  const int np = layout.np();
  const std::size_t nb = 8;
  RankContext ref_ctx(3.0, true);
  auto psi_init = test::random_orthonormal(ref_ctx.setup, nb, 33);
  std::vector<double> occ(nb, 2.0);
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  td::PtCnOptions opt;
  opt.dt = 1.0;
  opt.rho_tol = 1e-7;
  opt.max_scf = 60;
  opt.sp_comm = false;

  std::vector<CMatrix> psi_flat(np), psi_hier(np);
  par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, true);
    par::BlockPartition bands(nb, np);
    CMatrix psi_loc = test::band_slice(psi_init, bands, c.rank());
    td::PtCnPropagator prop(ctx.hamiltonian, bands, opt, np);
    auto rep = prop.step(psi_loc, occ, 0.0, kick, c);
    EXPECT_TRUE(rep.converged);
    psi_flat[c.rank()] = std::move(psi_loc);
  });
  par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, true);
    par::BlockPartition bands(nb, np);
    CMatrix psi_loc = test::band_slice(psi_init, bands, c.rank());
    par::HierComm h(c, layout.band_groups);
    td::PtCnPropagator prop(ctx.hamiltonian, bands, opt, np);
    auto rep = prop.step(psi_loc, occ, 0.0, kick, h);
    EXPECT_TRUE(rep.converged);
    psi_hier[c.rank()] = std::move(psi_loc);
  });
  for (int r = 0; r < np; ++r) {
    ASSERT_EQ(psi_hier[r].size(), psi_flat[r].size());
    for (std::size_t i = 0; i < psi_flat[r].size(); ++i)
      EXPECT_EQ(psi_hier[r].data()[i], psi_flat[r].data()[i]) << "rank " << r;
  }
}

TEST_P(HierLayouts, AceBuildAndApplyBitwiseMatchesFlat) {
  // ACE build (exact Fock apply + transposes + small Allreduce) and
  // apply_add (two transposes + one Allreduce) on the hierarchical
  // communicator must reproduce the flat layout bit for bit: HierComm's
  // staged allreduce is order-preserving and the transposes are exact
  // permutations, so the serial dense algebra sees identical inputs.
  const auto layout = GetParam();
  const int np = layout.np();
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, nb, 41);
  auto x = test::random_orthonormal(setup, nb, 43);
  std::vector<double> occ(nb, 2.0);

  auto run = [&](bool hier, std::vector<CMatrix>& out) {
    par::ThreadGroup::run(np, [&](par::Comm& c) {
      RankContext ctx(3.0, true);
      par::BlockPartition bands(nb, np);
      CMatrix phi_loc = test::band_slice(phi, bands, c.rank());
      CMatrix x_loc = test::band_slice(x, bands, c.rank());
      ham::FockOperator fock(ctx.setup, xc::HybridParams{true, 0.25, 0.11});
      ham::AceOperator ace(ctx.setup);
      CMatrix y_loc(ctx.setup.n_g(), x_loc.cols(), Complex{0, 0});
      if (hier) {
        par::HierComm h(c, layout.band_groups);
        fock.set_orbitals(phi_loc, occ, bands, h);
        ace.build(fock, phi_loc, h);
        ace.apply_add(x_loc, y_loc, h);
      } else {
        fock.set_orbitals(phi_loc, occ, bands, c);
        ace.build(fock, phi_loc, c);
        ace.apply_add(x_loc, y_loc, c);
      }
      out[c.rank()] = std::move(y_loc);
    });
  };
  std::vector<CMatrix> y_flat(np), y_hier(np);
  run(false, y_flat);
  run(true, y_hier);
  for (int r = 0; r < np; ++r) {
    ASSERT_EQ(y_hier[r].size(), y_flat[r].size());
    for (std::size_t i = 0; i < y_flat[r].size(); ++i)
      EXPECT_EQ(y_hier[r].data()[i], y_flat[r].data()[i]) << "rank " << r;
  }
}

TEST_P(HierLayouts, AceMtsPtCnStepOnHierCommBitwiseMatchesFlat) {
  // The ACE-mode PT-CN step under MTS (projector rebuild at step start,
  // frozen compressed applies through the inner loop) across layouts: the
  // drift monitor's Allreduce, the ACE build/apply collectives, and every
  // legacy reduction must keep the trajectory bit-identical to flat.
  const auto layout = GetParam();
  const int np = layout.np();
  const std::size_t nb = 8;
  RankContext ref_ctx(3.0, true);
  auto psi_init = test::random_orthonormal(ref_ctx.setup, nb, 47);
  std::vector<double> occ(nb, 2.0);
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  td::PtCnOptions opt;
  opt.dt = 1.0;
  opt.rho_tol = 1e-6;
  opt.max_scf = 60;
  opt.sp_comm = false;
  opt.mts_interval = 2;  // second step runs the frozen-exchange path
  opt.mts_drift_tol = 1e9;

  auto make_ctx_opt = [] {
    auto o = RankContext::make_opt(true);
    o.use_ace = true;
    return o;
  };
  auto run = [&](bool hier, std::vector<CMatrix>& out) {
    par::ThreadGroup::run(np, [&](par::Comm& c) {
      ham::PlanewaveSetup setup_loc = test::make_si8_setup(3.0, 1);
      auto species = pseudo::PseudoSpecies::silicon(true);
      ham::Hamiltonian hamiltonian(setup_loc, species, make_ctx_opt());
      par::BlockPartition bands(nb, np);
      CMatrix psi_loc = test::band_slice(psi_init, bands, c.rank());
      td::PtCnPropagator prop(hamiltonian, bands, opt, np);
      std::unique_ptr<par::HierComm> h;
      par::Comm* use = &c;
      if (hier) {
        h = std::make_unique<par::HierComm>(c, layout.band_groups);
        use = h.get();
      }
      auto r0 = prop.step(psi_loc, occ, 0.0, kick, *use);
      auto r1 = prop.step(psi_loc, occ, 1.0, kick, *use);
      EXPECT_TRUE(r0.exchange_refreshed);
      EXPECT_FALSE(r1.exchange_refreshed);
      out[c.rank()] = std::move(psi_loc);
    });
  };
  std::vector<CMatrix> psi_flat(np), psi_hier(np);
  run(false, psi_flat);
  run(true, psi_hier);
  for (int r = 0; r < np; ++r) {
    ASSERT_EQ(psi_hier[r].size(), psi_flat[r].size());
    for (std::size_t i = 0; i < psi_flat[r].size(); ++i)
      EXPECT_EQ(psi_hier[r].data()[i], psi_flat[r].data()[i]) << "rank " << r;
  }
}

TEST_P(HierLayouts, FockRebalanceShufflePathBitwise) {
  // Force a skewed cost measurement so the rebalanced apply really shuffles
  // columns, and pin the result against the static layout bit for bit (the
  // per-column arithmetic and the broadcast sequence are layout-invariant).
  const auto layout = GetParam();
  const int np = layout.np();
  if (np == 1) GTEST_SKIP() << "no columns move on one rank";
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, nb, 35);
  auto x = test::random_orthonormal(setup, nb, 37);
  std::vector<double> occ(nb, 2.0);

  // Static reference at the same rank count.
  std::vector<CMatrix> y_static(np);
  par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, true);
    par::BlockPartition bands(nb, np);
    ham::FockOperator fock(ctx.setup, xc::HybridParams{true, 0.25, 0.11});
    fock.set_orbitals(test::band_slice(phi, bands, c.rank()), occ, bands, c);
    CMatrix x_loc = test::band_slice(x, bands, c.rank());
    CMatrix y(ctx.setup.n_g(), x_loc.cols(), Complex{0, 0});
    fock.apply_add(x_loc, y, c);
    y_static[c.rank()] = std::move(y);
  });

  // Skewed measured costs: rank 0 claims most of the time, so balance must
  // hand columns away from it.
  std::vector<double> skew(np, 1.0);
  skew[0] = 6.0;
  par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, true);
    par::BlockPartition bands(nb, np);
    ham::FockOptions fopt;
    fopt.band_rebalance = true;
    ham::FockOperator fock(ctx.setup, xc::HybridParams{true, 0.25, 0.11}, fopt);
    fock.set_orbitals(test::band_slice(phi, bands, c.rank()), occ, bands, c);
    fock.debug_set_rank_cost(skew);
    CMatrix x_loc = test::band_slice(x, bands, c.rank());
    CMatrix y(ctx.setup.n_g(), x_loc.cols(), Complex{0, 0});
    par::HierComm h(c, layout.band_groups);
    fock.apply_add(x_loc, y, h);
    // The shuffle path must actually have run: the solved layout differs
    // from the uniform one.
    const auto& bal = fock.rebalance_partition();
    EXPECT_FALSE(bal == par::CostPartition(bands));
    EXPECT_LT(bal.count(0), bands.count(0));
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_EQ(y.data()[i], y_static[c.rank()].data()[i]);
  });
}

INSTANTIATE_TEST_SUITE_P(Grid, HierLayouts,
                         ::testing::Values(HierLayout{1, 4}, HierLayout{2, 2},
                                           HierLayout{4, 1}, HierLayout{2, 1},
                                           HierLayout{1, 1}),
                         [](const ::testing::TestParamInfo<HierLayout>& info) {
                           return "Layout" + std::to_string(info.param.band_groups) + "x" +
                                  std::to_string(info.param.grid_ranks);
                         });

/// Multi-process acceptance: the full hybrid PT-CN step with the ranks in
/// separate OS processes over SocketComm — flat and through HierComm (2x1
/// band groups and 1x2 grid ranks) — must be bit-identical to the same
/// step on ThreadComm. The thread-backed reference wavefunctions are
/// computed in the parent before the fork, so every child reads them
/// copy-on-write; any mismatch fails the child, which fails the parent
/// through SocketGroup's exit-code contract.
struct SocketPtCnCase {
  int band_groups;  ///< 0 = flat SocketComm (no HierComm wrapper)
};

class SocketPtCn : public ::testing::TestWithParam<SocketPtCnCase> {};

TEST_P(SocketPtCn, FullHybridStepBitwiseMatchesThreadComm) {
  const int np = 2;
  const int bg = GetParam().band_groups;
  const std::size_t nb = 8;
  RankContext ref_ctx(3.0, true);
  auto psi_init = test::random_orthonormal(ref_ctx.setup, nb, 61);
  std::vector<double> occ(nb, 2.0);
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  td::PtCnOptions opt;
  opt.dt = 1.0;
  opt.rho_tol = 1e-7;
  opt.max_scf = 60;
  opt.sp_comm = false;

  std::vector<CMatrix> psi_ref(np);
  par::ThreadGroup::run(np, [&](par::Comm& c) {
    RankContext ctx(3.0, true);
    par::BlockPartition bands(nb, np);
    CMatrix psi_loc = test::band_slice(psi_init, bands, c.rank());
    td::PtCnPropagator prop(ctx.hamiltonian, bands, opt, np);
    auto rep = prop.step(psi_loc, occ, 0.0, kick, c);
    EXPECT_TRUE(rep.converged);
    psi_ref[c.rank()] = std::move(psi_loc);
  });
  ASSERT_FALSE(::testing::Test::HasFailure());

  test::run_backend(
      test::CommBackend::kSocket, np,
      [&](par::Comm& c) {
        RankContext ctx(3.0, true);
        par::BlockPartition bands(nb, np);
        CMatrix psi_loc = test::band_slice(psi_init, bands, c.rank());
        td::PtCnPropagator prop(ctx.hamiltonian, bands, opt, np);
        std::unique_ptr<par::HierComm> h;
        par::Comm* use = &c;
        if (bg > 0) {
          h = std::make_unique<par::HierComm>(c, bg);
          use = h.get();
        }
        auto rep = prop.step(psi_loc, occ, 0.0, kick, *use);
        EXPECT_TRUE(rep.converged);
        const CMatrix& expect = psi_ref[c.rank()];
        ASSERT_EQ(psi_loc.size(), expect.size());
        for (std::size_t i = 0; i < expect.size(); ++i) {
          ASSERT_EQ(psi_loc.data()[i], expect.data()[i])
              << "rank " << c.rank() << " element " << i;
        }
      },
      /*timeout_sec=*/600);
}

INSTANTIATE_TEST_SUITE_P(TwoProcess, SocketPtCn,
                         ::testing::Values(SocketPtCnCase{0}, SocketPtCnCase{2},
                                           SocketPtCnCase{1}),
                         [](const ::testing::TestParamInfo<SocketPtCnCase>& info) {
                           return info.param.band_groups == 0
                                      ? std::string("Flat")
                                      : "Hier" + std::to_string(info.param.band_groups) + "x" +
                                            std::to_string(2 / info.param.band_groups);
                         });

}  // namespace
}  // namespace pwdft
