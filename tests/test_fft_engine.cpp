// Regression tests for the thread-parallel batched FFT engine:
//  - batched transforms bit-identical to the serial per-grid path at every
//    thread count (1, 2, 4) and for odd batch sizes,
//  - fused sphere<->grid transforms bit-identical to the two-step
//    scatter + full-FFT path,
//  - one shared Fft3D instance used concurrently by several ThreadComm
//    ranks (the seed's latent line_out_/work_ corruption hazard).

#include <gtest/gtest.h>

#include <thread>

#include "common/exec.hpp"
#include "common/random.hpp"
#include "fft/fft3d.hpp"
#include "grid/gsphere.hpp"
#include "grid/lattice.hpp"
#include "grid/transforms.hpp"
#include "parallel/thread_comm.hpp"

namespace pwdft {
namespace {

using fft::Fft3D;

std::vector<Complex> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = rng.complex_normal();
  return v;
}

struct ThreadGuard {
  ~ThreadGuard() { exec::set_num_threads(1); }
};

bool bitwise_equal(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;  // -0.0 == 0.0 is fine; any rounding drift is not
  return true;
}

TEST(FftEngine, BatchedBitIdenticalAcrossThreadCountsAndOddBatches) {
  ThreadGuard guard;
  Fft3D fft({12, 10, 6});
  for (std::size_t nb : {1u, 3u, 5u, 7u}) {
    const auto input = random_vec(fft.size() * nb, 40 + nb);

    // Serial per-grid reference at one thread.
    exec::set_num_threads(1);
    auto ref = input;
    for (std::size_t b = 0; b < nb; ++b) fft.forward(ref.data() + b * fft.size());

    for (std::size_t nt : {1u, 2u, 4u}) {
      exec::set_num_threads(nt);
      auto batch = input;
      fft.forward_many(batch.data(), nb);
      EXPECT_TRUE(bitwise_equal(batch, ref)) << "forward nb=" << nb << " nt=" << nt;

      auto inv = ref;
      fft.inverse_many(inv.data(), nb);
      exec::set_num_threads(1);
      auto inv_ref = ref;
      for (std::size_t b = 0; b < nb; ++b) fft.inverse(inv_ref.data() + b * fft.size());
      EXPECT_TRUE(bitwise_equal(inv, inv_ref)) << "inverse nb=" << nb << " nt=" << nt;
    }
  }
}

TEST(FftEngine, SingleTransformBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Fft3D fft({15, 15, 15});
  const auto input = random_vec(fft.size(), 77);
  exec::set_num_threads(1);
  auto ref = input;
  fft.forward(ref.data());
  for (std::size_t nt : {2u, 4u}) {
    exec::set_num_threads(nt);
    auto x = input;
    fft.forward(x.data());
    EXPECT_TRUE(bitwise_equal(x, ref)) << "nt=" << nt;
  }
}

class FusedTransforms : public ::testing::Test {
 protected:
  FusedTransforms()
      : lat_(grid::Lattice::orthorhombic(7.0, 8.0, 9.0)),
        wfc_grid_(grid::FftGrid::for_gmax(lat_, std::sqrt(2.0 * 4.0))),
        sphere_(lat_, 4.0, wfc_grid_),
        smap_(sphere_.map_to(wfc_grid_), wfc_grid_.dims()),
        fft_(wfc_grid_.dims()) {}

  grid::Lattice lat_;
  grid::FftGrid wfc_grid_;
  grid::GSphere sphere_;
  grid::SphereMap smap_;
  Fft3D fft_;
};

TEST_F(FusedTransforms, SphereMapMasksAreConsistent) {
  const auto dims = wfc_grid_.dims();
  EXPECT_EQ(smap_.map.size(), sphere_.size());
  EXPECT_FALSE(smap_.x_lines.empty());
  EXPECT_FALSE(smap_.z_lines.empty());
  EXPECT_LE(smap_.x_lines.size(), dims[1] * dims[2]);
  EXPECT_LE(smap_.z_lines.size(), dims[0] * dims[1]);
  EXPECT_GT(smap_.x_fill(), 0.0);
  EXPECT_LE(smap_.x_fill(), 1.0);
  // Axis-1 masks: the forward mask must cover (x, z) for every sphere x at
  // every z, the inverse mask every x on every sphere z-plane.
  EXPECT_GT(smap_.y_fill_fwd(), 0.0);
  EXPECT_LE(smap_.y_fill_fwd(), 1.0);
  EXPECT_LE(smap_.y_lines_fwd.size(), dims[0] * dims[2]);
  EXPECT_LE(smap_.y_lines_inv.size(), dims[0] * dims[2]);
  for (auto m : smap_.map) {
    const std::uint32_t xl = static_cast<std::uint32_t>(m / dims[0]);
    EXPECT_TRUE(std::binary_search(smap_.x_lines.begin(), smap_.x_lines.end(), xl));
    const std::uint32_t zl = static_cast<std::uint32_t>(m % (dims[0] * dims[1]));
    EXPECT_TRUE(std::binary_search(smap_.z_lines.begin(), smap_.z_lines.end(), zl));
    const std::size_t x = m % dims[0];
    const std::size_t z = m / (dims[0] * dims[1]);
    for (std::size_t zz = 0; zz < dims[2]; ++zz) {
      const std::uint32_t yl = static_cast<std::uint32_t>(x + dims[0] * zz);
      EXPECT_TRUE(std::binary_search(smap_.y_lines_fwd.begin(), smap_.y_lines_fwd.end(), yl));
    }
    for (std::size_t xx = 0; xx < dims[0]; ++xx) {
      const std::uint32_t yl = static_cast<std::uint32_t>(xx + dims[0] * z);
      EXPECT_TRUE(std::binary_search(smap_.y_lines_inv.begin(), smap_.y_lines_inv.end(), yl));
    }
  }
}

TEST_F(FusedTransforms, SphereToGridMatchesTwoStepBitwise) {
  ThreadGuard guard;
  const std::size_t ng = sphere_.size(), nw = wfc_grid_.size();
  const auto coeffs = random_vec(ng, 3);

  exec::set_num_threads(1);
  std::vector<Complex> two_step(nw);
  grid::GSphere::scatter(coeffs, smap_.map, two_step);
  fft_.inverse(two_step.data());

  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    std::vector<Complex> fused(nw);
    grid::sphere_to_grid(fft_, smap_, coeffs, fused);
    EXPECT_TRUE(bitwise_equal(fused, two_step)) << "nt=" << nt;
  }
}

TEST_F(FusedTransforms, GridToSphereMatchesTwoStepBitwise) {
  ThreadGuard guard;
  const std::size_t ng = sphere_.size(), nw = wfc_grid_.size();
  const auto grid_data = random_vec(nw, 4);
  const double scale = 1.0 / static_cast<double>(nw);

  exec::set_num_threads(1);
  auto work = grid_data;
  fft_.forward(work.data());
  std::vector<Complex> two_step(ng);
  grid::GSphere::gather(work, smap_.map, scale, two_step);

  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    auto scratch = grid_data;
    std::vector<Complex> fused(ng);
    grid::grid_to_sphere(fft_, smap_, scratch, scale, fused);
    ASSERT_EQ(fused.size(), two_step.size());
    for (std::size_t i = 0; i < ng; ++i)
      EXPECT_EQ(fused[i], two_step[i]) << "nt=" << nt << " i=" << i;
  }
}

TEST_F(FusedTransforms, BatchedColumnsMatchPerColumn) {
  ThreadGuard guard;
  exec::set_num_threads(2);
  const std::size_t ng = sphere_.size(), nw = wfc_grid_.size(), ncol = 3;
  CMatrix coeffs(ng, ncol);
  Rng rng(9);
  for (std::size_t i = 0; i < coeffs.size(); ++i) coeffs.data()[i] = rng.complex_normal();

  CMatrix grids;
  grid::sphere_to_grid_many(fft_, smap_, coeffs, grids);
  ASSERT_EQ(grids.rows(), nw);
  ASSERT_EQ(grids.cols(), ncol);
  for (std::size_t j = 0; j < ncol; ++j) {
    std::vector<Complex> one(nw);
    grid::sphere_to_grid(fft_, smap_, {coeffs.col(j), ng}, one);
    for (std::size_t i = 0; i < nw; ++i) ASSERT_EQ(grids.col(j)[i], one[i]);
  }

  // Round trip through the batched gather: recovers coeffs * nw / nw.
  CMatrix back;
  grid::grid_to_sphere_many(fft_, smap_, grids, 1.0 / static_cast<double>(nw), back);
  ASSERT_EQ(back.rows(), ng);
  for (std::size_t j = 0; j < ncol; ++j)
    for (std::size_t i = 0; i < ng; ++i)
      EXPECT_NEAR(std::abs(back.col(j)[i] - coeffs.col(j)[i]), 0.0, 1e-10);
}

TEST(FftEngine, SharedInstanceAcrossThreadCommRanksIsSafe) {
  // The seed's Fft3D had mutable per-instance scratch: two ranks sharing one
  // instance would corrupt each other's lines. The engine is now stateless;
  // run the exact hazard scenario and demand bit-exact results.
  ThreadGuard guard;
  exec::set_num_threads(2);
  Fft3D shared_fft({12, 10, 8});
  const int nranks = 4;
  const std::size_t n = shared_fft.size();

  std::vector<std::vector<Complex>> inputs(nranks), expected(nranks), outputs(nranks);
  for (int r = 0; r < nranks; ++r) {
    inputs[r] = random_vec(n, 500 + r);
    expected[r] = inputs[r];
  }
  {
    exec::set_num_threads(1);
    Fft3D ref_fft({12, 10, 8});
    for (int r = 0; r < nranks; ++r) {
      for (int rep = 0; rep < 3; ++rep) {
        ref_fft.forward(expected[r].data());
        ref_fft.inverse_scaled(expected[r].data());
      }
      ref_fft.forward(expected[r].data());
    }
  }

  exec::set_num_threads(2);
  par::ThreadGroup::run(nranks, [&](par::Comm& comm) {
    const int r = comm.rank();
    outputs[r] = inputs[r];
    for (int rep = 0; rep < 3; ++rep) {
      shared_fft.forward(outputs[r].data());
      shared_fft.inverse_scaled(outputs[r].data());
    }
    shared_fft.forward(outputs[r].data());
  });

  for (int r = 0; r < nranks; ++r) {
    ASSERT_EQ(outputs[r].size(), expected[r].size());
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(outputs[r][i], expected[r][i]) << "rank " << r << " i " << i;
  }
}

}  // namespace
}  // namespace pwdft
