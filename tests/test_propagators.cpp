#include <gtest/gtest.h>

#include "ham/density.hpp"
#include "ham/energy.hpp"
#include "linalg/blas.hpp"
#include "scf/scf.hpp"
#include "td/field.hpp"
#include "td/observables.hpp"
#include "td/ptcn.hpp"
#include "td/rk4.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

constexpr double kDt50as = 50.0 / constants::as_per_au_time;

struct TdFixture {
  explicit TdFixture(double ecut = 3.0, bool hybrid = true, std::size_t nb = 16)
      : setup(test::make_si8_setup(ecut, 1)),
        species(pseudo::PseudoSpecies::silicon(true)),
        options(make_opt(hybrid)),
        hamiltonian(setup, species, options),
        bands(nb, 1),
        occ(nb, 2.0) {}

  static ham::HamiltonianOptions make_opt(bool hybrid) {
    auto o = test::fast_hybrid_options();
    o.hybrid.enabled = hybrid;
    return o;
  }

  /// Converged ground state (cached per fixture instance).
  CMatrix ground_state(double tol = 1e-8) {
    scf::GroundStateSolver solver(setup, hamiltonian);
    CMatrix psi = solver.initial_guess(occ.size(), 42);
    scf::ScfOptions opt;
    opt.max_iter = 60;
    opt.tol_rho = tol;
    opt.lobpcg.max_iter = 6;
    opt.hybrid_outer_max = 6;
    opt.hybrid_outer_tol = 1e-8;
    solver.solve(psi, occ, opt);
    return psi;
  }

  double total_energy(const CMatrix& psi) {
    par::SerialComm comm;
    auto rho = ham::compute_density(setup, hamiltonian.fft_dense(), psi, occ, comm);
    hamiltonian.update_density(rho);
    if (hamiltonian.hybrid_enabled())
      hamiltonian.set_exchange_orbitals(psi, occ, bands, comm);
    return ham::compute_energy(hamiltonian, psi, occ, rho, comm).total();
  }

  std::vector<double> density(const CMatrix& psi) {
    par::SerialComm comm;
    return ham::compute_density(setup, hamiltonian.fft_dense(), psi, occ, comm);
  }

  ham::PlanewaveSetup setup;
  pseudo::PseudoSpecies species;
  ham::HamiltonianOptions options;
  ham::Hamiltonian hamiltonian;
  par::BlockPartition bands;
  std::vector<double> occ;
};

double orthonormality_defect(const CMatrix& psi) {
  CMatrix s = linalg::overlap(psi, psi);
  double d = 0.0;
  for (std::size_t i = 0; i < s.rows(); ++i)
    for (std::size_t j = 0; j < s.cols(); ++j)
      d = std::max(d, std::abs(s(i, j) - (i == j ? Complex{1, 0} : Complex{0, 0})));
  return d;
}

TEST(PtResidual, MatchesDirectFormula) {
  TdFixture f(3.0, false, 6);
  auto psi = test::random_orthonormal(f.setup, 6, 3);
  auto hpsi = test::random_orthonormal(f.setup, 6, 5);
  auto half = test::random_orthonormal(f.setup, 6, 7);
  par::SerialComm comm;
  par::WavefunctionTranspose tr(par::BlockPartition(f.setup.n_g(), 1),
                                par::BlockPartition(6, 1));
  const Complex c_h{0.0, 1.0};
  CMatrix r = td::pt_residual(tr, comm, psi, hpsi, &half, Complex{1, 0}, c_h, Complex{1, 0},
                              /*sp_comm=*/false);

  CMatrix s = linalg::overlap(psi, hpsi);
  CMatrix rot(f.setup.n_g(), 6);
  linalg::gemm('N', 'N', Complex{1, 0}, psi, s, Complex{0, 0}, rot);
  CMatrix expect(f.setup.n_g(), 6);
  for (std::size_t i = 0; i < expect.size(); ++i)
    expect.data()[i] = psi.data()[i] + c_h * (hpsi.data()[i] - rot.data()[i]) - half.data()[i];
  EXPECT_LT(test::max_abs_diff(r, expect), 1e-11);
}

TEST(Orthonormalize, ProducesOrthonormalBlockAndPreservesSpan) {
  TdFixture f(3.0, false, 5);
  auto psi = test::random_orthonormal(f.setup, 5, 9);
  // Perturb away from orthonormality.
  for (std::size_t i = 0; i < f.setup.n_g(); ++i) psi(i, 1) += 0.2 * psi(i, 0);
  par::SerialComm comm;
  par::WavefunctionTranspose tr(par::BlockPartition(f.setup.n_g(), 1),
                                par::BlockPartition(5, 1));
  const CMatrix before = psi;
  td::orthonormalize(tr, comm, psi, false);
  EXPECT_LT(orthonormality_defect(psi), 1e-10);
  // Span is preserved: projection of new onto old has full rank (Cholesky
  // transform is triangular, so column k mixes only bands <= k).
  CMatrix mix = linalg::overlap(before, psi);
  EXPECT_GT(std::abs(mix(0, 0)), 0.5);
}

TEST(PtCn, StationaryOnGroundState) {
  TdFixture f(3.0, true);
  CMatrix psi = f.ground_state(1e-9);
  const CMatrix psi0 = psi;
  const double e0 = f.total_energy(psi);

  td::PtCnOptions opt;
  opt.dt = kDt50as;
  opt.rho_tol = 1e-9;
  opt.max_scf = 40;
  td::PtCnPropagator prop(f.hamiltonian, f.bands, opt, 1);
  td::ZeroField field;
  par::SerialComm comm;
  for (int s = 0; s < 3; ++s) {
    auto rep = prop.step(psi, f.occ, s * opt.dt, field, comm);
    EXPECT_TRUE(rep.converged);
  }
  // Eigenstates only pick up phases; density and energy are unchanged and
  // no electrons are excited.
  const double e1 = f.total_energy(psi);
  EXPECT_NEAR(e1, e0, 5e-6 * std::abs(e0));
  par::SerialComm comm2;
  EXPECT_NEAR(td::excited_electrons(f.setup, f.bands, psi0, psi, f.occ, comm2), 0.0, 1e-4);
  // The default single-precision transposes (paper §3.3) bound the
  // orthonormalization accuracy at the float level.
  EXPECT_LT(orthonormality_defect(psi), 1e-6);
}

TEST(PtCn, ConservesEnergyWithoutFieldFromExcitedState) {
  TdFixture f(3.0, true);
  CMatrix psi = f.ground_state(1e-9);
  // Kick the system once, then propagate with no field: after the kick the
  // total energy must be conserved by the integrator.
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);  // constant a for all t >= 0
  td::PtCnOptions opt;
  opt.dt = kDt50as / 2.0;
  opt.rho_tol = 1e-9;
  opt.max_scf = 60;
  td::PtCnPropagator prop(f.hamiltonian, f.bands, opt, 1);
  par::SerialComm comm;

  // Energy in the kicked frame at t=0+ (a enters via the kinetic term).
  f.hamiltonian.set_vector_potential(kick.vector_potential(0.0));
  auto rho = f.density(psi);
  f.hamiltonian.update_density(rho);
  f.hamiltonian.set_exchange_orbitals(psi, f.occ, f.bands, comm);
  const double e0 = ham::compute_energy(f.hamiltonian, psi, f.occ, rho, comm).total();

  double t = 0.0;
  for (int s = 0; s < 3; ++s) {
    prop.step(psi, f.occ, t, kick, comm);
    t += opt.dt;
  }
  f.hamiltonian.set_vector_potential(kick.vector_potential(t));
  rho = f.density(psi);
  f.hamiltonian.update_density(rho);
  f.hamiltonian.set_exchange_orbitals(psi, f.occ, f.bands, comm);
  const double e1 = ham::compute_energy(f.hamiltonian, psi, f.occ, rho, comm).total();
  EXPECT_NEAR(e1, e0, 2e-4 * std::abs(e0));
}

TEST(PtCn, MatchesRk4ReferenceDynamics) {
  // The headline algorithmic claim (paper §6): PT-CN with a ~100x larger
  // step reproduces the RK4 dynamics. Drive Si8 with a kick and compare
  // densities and currents at t = 24 as.
  TdFixture f_pt(3.0, true);
  TdFixture f_rk(3.0, true);
  CMatrix psi_pt = f_pt.ground_state(1e-9);
  CMatrix psi_rk = psi_pt;

  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  const double t_final = 1.0;  // a.u. ~ 24 as

  td::PtCnOptions popt;
  popt.dt = t_final / 2.0;  // two PT-CN steps (~12 as each)
  popt.rho_tol = 1e-9;
  popt.max_scf = 80;
  popt.sp_comm = false;  // keep the comparison limited by time discretization
  td::PtCnPropagator pt(f_pt.hamiltonian, f_pt.bands, popt, 1);
  par::SerialComm comm;
  double t = 0.0;
  for (int s = 0; s < 2; ++s) {
    pt.step(psi_pt, f_pt.occ, t, kick, comm);
    t += popt.dt;
  }

  td::Rk4Propagator rk(f_rk.hamiltonian, f_rk.bands, td::Rk4Options{t_final / 50.0});
  t = 0.0;
  for (int s = 0; s < 50; ++s) {
    rk.step(psi_rk, f_rk.occ, t, kick, comm);
    t += t_final / 50.0;
  }

  // Densities agree although the orbitals live in different gauges.
  auto rho_pt = f_pt.density(psi_pt);
  auto rho_rk = f_rk.density(psi_rk);
  EXPECT_LT(ham::density_error(f_pt.setup, rho_pt, rho_rk), 5e-5);

  const grid::Vec3 a = kick.vector_potential(t_final);
  const auto j_pt = td::compute_current(f_pt.setup, psi_pt, f_pt.occ, a, comm);
  const auto j_rk = td::compute_current(f_rk.setup, psi_rk, f_rk.occ, a, comm);
  EXPECT_NEAR(j_pt[2], j_rk[2], 5e-6 + 0.02 * std::abs(j_rk[2]));

  // ... while the orbitals themselves differ: that IS the PT gauge.
  CMatrix s_cross = linalg::overlap(psi_pt, psi_rk);
  double offdiag = 0.0;
  for (std::size_t i = 0; i < s_cross.rows(); ++i)
    for (std::size_t j = 0; j < s_cross.cols(); ++j)
      if (i != j) offdiag = std::max(offdiag, std::abs(s_cross(i, j)));
  double diag_dev = 0.0;
  for (std::size_t i = 0; i < s_cross.rows(); ++i)
    diag_dev = std::max(diag_dev, std::abs(std::abs(s_cross(i, i)) - 1.0));
  EXPECT_GT(offdiag + diag_dev, 1e-6);
}

TEST(PtCn, SecondOrderConvergenceInTimeStep) {
  TdFixture base(3.0, false);  // semi-local only keeps the sweep cheap
  CMatrix psi0 = base.ground_state(1e-9);
  td::DeltaKick kick({0.0, 0.0, 0.03}, -1.0);
  const double t_final = 2.0;
  par::SerialComm comm;

  auto run_ptcn = [&](double dt) {
    TdFixture f(3.0, false);
    CMatrix psi = psi0;
    td::PtCnOptions opt;
    opt.dt = dt;
    opt.rho_tol = 1e-12;
    opt.max_scf = 100;
    td::PtCnPropagator prop(f.hamiltonian, f.bands, opt, 1);
    double t = 0.0;
    while (t < t_final - 1e-9) {
      prop.step(psi, f.occ, t, kick, comm);
      t += dt;
    }
    return f.density(psi);
  };

  // RK4 reference with a tiny step.
  TdFixture fr(3.0, false);
  CMatrix psi_ref = psi0;
  td::Rk4Propagator rk(fr.hamiltonian, fr.bands, td::Rk4Options{0.02});
  for (int s = 0; s < 100; ++s) rk.step(psi_ref, fr.occ, s * 0.02, kick, comm);
  auto rho_ref = fr.density(psi_ref);

  const double e_coarse = ham::density_error(base.setup, run_ptcn(1.0), rho_ref);
  const double e_fine = ham::density_error(base.setup, run_ptcn(0.5), rho_ref);
  // Crank-Nicolson: halving dt should reduce the error ~4x; accept [2.5, 8].
  EXPECT_GT(e_coarse / e_fine, 2.5);
  EXPECT_LT(e_coarse / e_fine, 8.0);
}

TEST(PtCn, ScfCountAndFockAppliesAreReported) {
  TdFixture f(3.0, true);
  CMatrix psi = f.ground_state(1e-8);
  td::DeltaKick kick({0.0, 0.0, 0.01}, -1.0);
  td::PtCnOptions opt;
  opt.dt = kDt50as;
  opt.rho_tol = 1e-7;
  opt.max_scf = 40;
  td::PtCnPropagator prop(f.hamiltonian, f.bands, opt, 1);
  par::SerialComm comm;
  auto rep = prop.step(psi, f.occ, 0.0, kick, comm);
  EXPECT_TRUE(rep.converged);
  EXPECT_GE(rep.scf_iterations, 1);
  EXPECT_LT(rep.scf_iterations, opt.max_scf);
  EXPECT_EQ(rep.fock_applies, rep.scf_iterations + 1);
  EXPECT_LT(rep.rho_error, opt.rho_tol);
}

TEST(Rk4, PreservesOrthonormalityForSmallSteps) {
  TdFixture f(3.0, false);
  CMatrix psi = f.ground_state(1e-8);
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  td::Rk4Propagator rk(f.hamiltonian, f.bands, td::Rk4Options{0.02});
  par::SerialComm comm;
  for (int s = 0; s < 20; ++s) rk.step(psi, f.occ, s * 0.02, kick, comm);
  EXPECT_LT(orthonormality_defect(psi), 1e-6);
}

TEST(Rk4, UnstableForLargeTimeStep) {
  // The stability constraint that motivates PT-CN (paper §2): pushing RK4
  // to tens of attoseconds diverges. dt=1.2 a.u. ~ 29 as.
  TdFixture f(3.0, false);
  CMatrix psi = f.ground_state(1e-7);
  td::Rk4Propagator rk(f.hamiltonian, f.bands, td::Rk4Options{1.2});
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  par::SerialComm comm;
  for (int s = 0; s < 12; ++s) rk.step(psi, f.occ, s * 1.2, kick, comm);
  // Norm blow-up signals instability. Divergence to non-finite values also
  // counts (and NaNs would otherwise be masked by max() comparisons).
  const double norm = linalg::nrm2({psi.data(), psi.size()});
  const double defect = orthonormality_defect(psi);
  EXPECT_TRUE(!std::isfinite(norm) || defect > 1e-2)
      << "norm = " << norm << ", defect = " << defect;
}

TEST(PtCn, StableAtFiftyAttosecondSteps) {
  // Same step-size regime where RK4 explodes: PT-CN stays bounded
  // (paper: PT-CN runs at 50 as). Use the kicked system and check
  // orthonormality and density positivity after several steps.
  TdFixture f(3.0, false);
  CMatrix psi = f.ground_state(1e-8);
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  td::PtCnOptions opt;
  opt.dt = kDt50as;  // 2.07 a.u.
  opt.rho_tol = 1e-8;
  opt.max_scf = 60;
  td::PtCnPropagator prop(f.hamiltonian, f.bands, opt, 1);
  par::SerialComm comm;
  double t = 0.0;
  for (int s = 0; s < 5; ++s) {
    auto rep = prop.step(psi, f.occ, t, kick, comm);
    EXPECT_TRUE(rep.converged) << "step " << s;
    t += opt.dt;
  }
  EXPECT_LT(orthonormality_defect(psi), 1e-6);  // float-level: SP transposes
  auto rho = f.density(psi);
  for (double v : rho) EXPECT_GE(v, -1e-12);
}

}  // namespace
}  // namespace pwdft
