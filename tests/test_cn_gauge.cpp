// The gauge ablation: plain Crank-Nicolson (Schrodinger gauge) vs PT-CN.
// The parallel transport term Psi (Psi^H H Psi) removes the trivial phase
// dynamics; without it the fixed-point SCF needs far more iterations (or
// fails) at the 10-50 as steps the paper runs (paper §2: "the parallel
// transport gauge yields the slowest possible dynamics").

#include <gtest/gtest.h>

#include "ham/density.hpp"
#include "scf/scf.hpp"
#include "td/cn.hpp"
#include "td/ptcn.hpp"
#include "td/rk4.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

struct GaugeFixture {
  GaugeFixture()
      : setup(test::make_si8_setup(3.0, 1)),
        species(pseudo::PseudoSpecies::silicon(true)),
        options(make_opt()),
        hamiltonian(setup, species, options),
        bands(16, 1),
        occ(16, 2.0) {}
  static ham::HamiltonianOptions make_opt() {
    auto o = test::fast_hybrid_options();
    o.hybrid.enabled = false;  // semi-local: keeps the sweep cheap
    return o;
  }
  CMatrix ground_state() {
    scf::GroundStateSolver solver(setup, hamiltonian);
    CMatrix psi = solver.initial_guess(16, 42);
    scf::ScfOptions opt;
    opt.max_iter = 50;
    opt.tol_rho = 1e-8;
    opt.lobpcg.max_iter = 6;
    solver.solve(psi, occ, opt);
    return psi;
  }
  ham::PlanewaveSetup setup;
  pseudo::PseudoSpecies species;
  ham::HamiltonianOptions options;
  ham::Hamiltonian hamiltonian;
  par::BlockPartition bands;
  std::vector<double> occ;
};

TEST(CnGauge, MatchesPtCnDensityAtSmallStep) {
  // At small dt both integrators converge to the same density evolution
  // (the gauge only changes the orbital representation).
  GaugeFixture fa, fb;
  CMatrix psi_pt = fa.ground_state();
  CMatrix psi_cn = psi_pt;
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  par::SerialComm comm;

  td::PtCnOptions popt;
  popt.dt = 0.25;
  popt.rho_tol = 1e-9;
  popt.max_scf = 80;
  popt.sp_comm = false;  // double-precision pipeline for the tight tolerance
  td::PtCnPropagator pt(fa.hamiltonian, fa.bands, popt, 1);

  td::CnOptions copt;
  copt.dt = 0.25;
  copt.rho_tol = 1e-9;
  copt.max_scf = 80;
  td::CnPropagator cn(fb.hamiltonian, fb.bands, copt, 1);

  double t = 0.0;
  for (int s = 0; s < 4; ++s) {
    auto r1 = pt.step(psi_pt, fa.occ, t, kick, comm);
    auto r2 = cn.step(psi_cn, fb.occ, t, kick, comm);
    ASSERT_TRUE(r1.converged);
    ASSERT_TRUE(r2.converged);
    t += 0.25;
  }
  auto rho_pt = ham::compute_density(fa.setup, fa.hamiltonian.fft_dense(), psi_pt, fa.occ, comm);
  auto rho_cn = ham::compute_density(fb.setup, fb.hamiltonian.fft_dense(), psi_cn, fb.occ, comm);
  // Both integrators are O(dt^2) with different error constants (the gauge
  // changes the discrete propagator); densities agree to that order.
  EXPECT_LT(ham::density_error(fa.setup, rho_pt, rho_cn), 2e-5);
}

TEST(CnGauge, PtNeedsFewerScfIterationsAtLargeStep) {
  // The headline property: at the paper's 50 as step the PT gauge converges
  // the SCF while the plain gauge struggles (more iterations or failure).
  GaugeFixture fa, fb;
  CMatrix psi_pt = fa.ground_state();
  CMatrix psi_cn = psi_pt;
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  par::SerialComm comm;
  const double dt50as = 50.0 / constants::as_per_au_time;

  td::PtCnOptions popt;
  popt.dt = dt50as;
  popt.rho_tol = 1e-7;
  popt.max_scf = 100;
  popt.sp_comm = false;
  td::PtCnPropagator pt(fa.hamiltonian, fa.bands, popt, 1);

  td::CnOptions copt;
  copt.dt = dt50as;
  copt.rho_tol = 1e-7;
  copt.max_scf = 100;
  td::CnPropagator cn(fb.hamiltonian, fb.bands, copt, 1);

  int pt_iters = 0, cn_iters = 0;
  bool cn_ok = true;
  double t = 0.0;
  for (int s = 0; s < 2; ++s) {
    auto r1 = pt.step(psi_pt, fa.occ, t, kick, comm);
    ASSERT_TRUE(r1.converged) << "PT-CN must converge at 50 as";
    pt_iters += r1.scf_iterations;
    auto r2 = cn.step(psi_cn, fb.occ, t, kick, comm);
    cn_ok = cn_ok && r2.converged;
    cn_iters += r2.scf_iterations;
    t += dt50as;
  }
  // Either CN failed outright, or it needed substantially more iterations
  // (~2x on this small gapped system; the gap widens with system size as
  // the occupied spectral spread grows).
  if (cn_ok) {
    EXPECT_GT(static_cast<double>(cn_iters), pt_iters * 1.5)
        << "PT " << pt_iters << " vs CN " << cn_iters;
  } else {
    SUCCEED() << "plain CN diverged at 50 as, PT-CN converged (" << pt_iters << " iters)";
  }
}

TEST(CnGauge, CnResidualNeedsNoCollectives) {
  // Structural difference: the plain CN residual is band-local, so a step
  // performs no Alltoallv beyond orthonormalization. (The PT gauge buys its
  // bigger steps with the overlap-matrix machinery of Alg. 3.)
  GaugeFixture f;
  CMatrix psi = f.ground_state();
  td::CnOptions copt;
  copt.dt = 0.1;
  copt.rho_tol = 1e-8;
  copt.max_scf = 30;
  td::CnPropagator cn(f.hamiltonian, f.bands, copt, 1);
  par::SerialComm comm;
  td::ZeroField field;
  auto rep = cn.step(psi, f.occ, 0.0, field, comm);
  EXPECT_TRUE(rep.converged);
  EXPECT_GE(rep.scf_iterations, 1);
}

}  // namespace
}  // namespace pwdft
