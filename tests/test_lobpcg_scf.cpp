#include <gtest/gtest.h>

#include "ham/density.hpp"
#include "linalg/heig.hpp"
#include "scf/lobpcg.hpp"
#include "scf/scf.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

TEST(Lobpcg, FindsLowestEigenpairsOfDenseHermitian) {
  const std::size_t n = 60, nb = 4;
  Rng rng(3);
  CMatrix h(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i <= j; ++i) {
      const Complex v = rng.complex_normal();
      h(i, j) = v;
      h(j, i) = std::conj(v);
    }
    h(j, j) = Complex{h(j, j).real() + double(j) * 0.5, 0.0};
  }

  std::vector<double> ev_ref;
  CMatrix v_ref;
  linalg::heig(h, ev_ref, v_ref);

  auto apply = [&](const CMatrix& x, CMatrix& y) {
    y.resize(n, x.cols());
    linalg::gemm('N', 'N', Complex{1, 0}, h, x, Complex{0, 0}, y);
  };
  CMatrix x(n, nb);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.complex_normal();

  scf::LobpcgOptions opt;
  opt.max_iter = 200;
  opt.tol = 1e-9;
  auto res = scf::lobpcg(apply, {}, x, opt);
  ASSERT_TRUE(res.converged);
  for (std::size_t j = 0; j < nb; ++j) EXPECT_NEAR(res.eigenvalues[j], ev_ref[j], 1e-6);
}

TEST(Lobpcg, ResultColumnsAreOrthonormalRitzVectors) {
  const std::size_t n = 40, nb = 3;
  Rng rng(5);
  CMatrix h(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) {
      const Complex v = (i == j) ? Complex{double(j), 0.0} : 0.05 * rng.complex_normal();
      h(i, j) = v;
      h(j, i) = std::conj(v);
    }
  auto apply = [&](const CMatrix& x, CMatrix& y) {
    y.resize(n, x.cols());
    linalg::gemm('N', 'N', Complex{1, 0}, h, x, Complex{0, 0}, y);
  };
  CMatrix x(n, nb);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.complex_normal();
  scf::LobpcgOptions opt;
  opt.max_iter = 100;
  opt.tol = 1e-10;
  auto res = scf::lobpcg(apply, {}, x, opt);
  ASSERT_TRUE(res.converged);
  CMatrix s = linalg::overlap(x, x);
  for (std::size_t i = 0; i < nb; ++i)
    for (std::size_t j = 0; j < nb; ++j)
      EXPECT_NEAR(std::abs(s(i, j) - (i == j ? Complex{1, 0} : Complex{0, 0})), 0.0, 1e-8);
  // Eigenvalues of this near-diagonal matrix: close to 0,1,2.
  for (std::size_t j = 0; j < nb; ++j) EXPECT_NEAR(res.eigenvalues[j], double(j), 0.1);
}

TEST(Lobpcg, PreconditionerAcceleratesPlanewaveProblem) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  auto opt_h = test::fast_hybrid_options();
  opt_h.hybrid.enabled = false;
  ham::Hamiltonian hamiltonian(setup, species, opt_h);
  std::vector<double> rho(setup.n_dense(), 32.0 / setup.volume());
  hamiltonian.update_density(rho);

  par::SerialComm comm;
  auto apply = [&](const CMatrix& x, CMatrix& y) { hamiltonian.apply(x, y, comm); };

  scf::LobpcgOptions opt;
  opt.max_iter = 40;
  opt.tol = 1e-6;

  CMatrix x1 = test::random_orthonormal(setup, 8, 3);
  auto res_pre = scf::lobpcg(apply, hamiltonian.kinetic(), x1, opt);
  CMatrix x2 = test::random_orthonormal(setup, 8, 3);
  auto res_no = scf::lobpcg(apply, {}, x2, opt);

  // Preconditioned runs should reach a (much) smaller residual in the same
  // iteration budget.
  EXPECT_LT(res_pre.max_residual, res_no.max_residual * 1.01);
  EXPECT_LT(res_pre.max_residual, 5e-4);
}

class ScfFixture : public ::testing::Test {
 protected:
  scf::ScfOptions fast_options(double tol = 1e-7) const {
    scf::ScfOptions opt;
    opt.max_iter = 40;
    opt.tol_rho = tol;
    opt.mix_beta = 0.5;
    opt.lobpcg.max_iter = 6;
    opt.lobpcg.tol = 1e-9;
    opt.hybrid_outer_max = 6;
    opt.hybrid_outer_tol = 1e-6;
    return opt;
  }
};

TEST_F(ScfFixture, LdaGroundStateConverges) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  auto opt_h = test::fast_hybrid_options();
  opt_h.hybrid.enabled = false;
  ham::Hamiltonian hamiltonian(setup, species, opt_h);
  scf::GroundStateSolver solver(setup, hamiltonian);
  auto psi = solver.initial_guess(16, 42);
  std::vector<double> occ(16, 2.0);
  auto res = solver.solve(psi, occ, fast_options());
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.rho_error, 1e-6);
  EXPECT_TRUE(std::isfinite(res.energy.total()));
  // Valence eigenvalues of bulk Si sit well below the vacuum level.
  EXPECT_LT(res.eigenvalues.front(), 0.0);
  // Eigenvalues ascending.
  for (std::size_t i = 1; i < res.eigenvalues.size(); ++i)
    EXPECT_LE(res.eigenvalues[i - 1], res.eigenvalues[i] + 1e-10);
}

TEST_F(ScfFixture, GroundStateDeterministicAcrossRuns) {
  auto run = [&]() {
    auto setup = test::make_si8_setup(4.0, 1);
    auto species = pseudo::PseudoSpecies::silicon(true);
    auto opt_h = test::fast_hybrid_options();
    opt_h.hybrid.enabled = false;
    ham::Hamiltonian hamiltonian(setup, species, opt_h);
    scf::GroundStateSolver solver(setup, hamiltonian);
    auto psi = solver.initial_guess(16, 42);
    std::vector<double> occ(16, 2.0);
    auto res = solver.solve(psi, occ, fast_options());
    return res.energy.total();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST_F(ScfFixture, HybridGroundStateConvergesAndLowersGap) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  ham::Hamiltonian hamiltonian(setup, species, test::fast_hybrid_options());
  scf::GroundStateSolver solver(setup, hamiltonian);
  auto psi = solver.initial_guess(16, 42);
  std::vector<double> occ(16, 2.0);
  auto res = solver.solve(psi, occ, fast_options(1e-6));
  EXPECT_GT(res.outer_iterations, 0);
  EXPECT_LT(res.energy.fock, 0.0);
  EXPECT_TRUE(std::isfinite(res.energy.total()));
}

TEST_F(ScfFixture, EnergyExtensiveAcrossSupercells) {
  auto energy_per_atom = [&](int nz) {
    auto setup =
        ham::PlanewaveSetup(crystal::Crystal::silicon_supercell(1, 1, nz), 3.0, 1);
    auto species = pseudo::PseudoSpecies::silicon(true);
    auto opt_h = test::fast_hybrid_options();
    opt_h.hybrid.enabled = false;
    ham::Hamiltonian hamiltonian(setup, species, opt_h);
    scf::GroundStateSolver solver(setup, hamiltonian);
    auto psi = solver.initial_guess(setup.n_bands(), 42);
    std::vector<double> occ(setup.n_bands(), 2.0);
    auto res = solver.solve(psi, occ, fast_options(1e-6));
    return res.energy.total() / static_cast<double>(setup.crystal.n_atoms());
  };
  const double e1 = energy_per_atom(1);
  const double e2 = energy_per_atom(2);
  // Gamma-only sampling differs between cells; allow a few percent.
  EXPECT_NEAR(e1, e2, 0.05 * std::abs(e1));
}

TEST_F(ScfFixture, InitialGuessIsOrthonormal) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  auto opt_h = test::fast_hybrid_options();
  ham::Hamiltonian hamiltonian(setup, species, opt_h);
  scf::GroundStateSolver solver(setup, hamiltonian);
  auto psi = solver.initial_guess(10, 7);
  CMatrix s = linalg::overlap(psi, psi);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 10; ++j)
      EXPECT_NEAR(std::abs(s(i, j) - (i == j ? Complex{1, 0} : Complex{0, 0})), 0.0, 1e-10);
}

}  // namespace
}  // namespace pwdft
