#include <gtest/gtest.h>

#include "perf/timeline.hpp"

namespace pwdft {
namespace {

using perf::PipelineOptions;
using perf::simulate_fock_pipeline;
using perf::SummitMachine;
using perf::Workload;

perf::PipelineResult run(int ngpu, bool overlap, bool sync_staging,
                         std::size_t bands = 64) {
  PipelineOptions opt;
  opt.overlap = overlap;
  opt.sync_staging = sync_staging;
  opt.bands = bands;
  return simulate_fock_pipeline(SummitMachine::defaults(), Workload::silicon(1536), ngpu, opt);
}

TEST(Timeline, EventsAreWellFormedAndOrdered) {
  const auto r = run(768, true, false);
  ASSERT_EQ(r.events.size(), 3u * 64u);
  for (const auto& e : r.events) {
    EXPECT_LT(e.start, e.end);
    EXPECT_GE(e.start, 0.0);
    EXPECT_LE(e.end, r.total_time + 1e-12);
  }
  // Per band: bcast ends before staging ends before compute ends.
  for (std::size_t b = 0; b < 64; ++b) {
    const auto& bc = r.events[3 * b];
    const auto& st = r.events[3 * b + 1];
    const auto& cp = r.events[3 * b + 2];
    EXPECT_LE(bc.end, st.start + 1e-12);
    EXPECT_LE(st.end, cp.start + 1e-12);
  }
}

TEST(Timeline, OverlapHidesCommunicationWhenComputeDominates) {
  // At 36 GPUs compute per band is much longer than the broadcast, so the
  // overlapped pipeline hides nearly all communication.
  const auto r = run(36, true, false);
  EXPECT_GT(r.overlap_efficiency(), 0.9);
  // Total is essentially compute plus the first band's fill-in.
  EXPECT_LT(r.total_time, r.compute_busy * 1.05);
}

TEST(Timeline, NoOverlapSerializesEverything) {
  const auto r = run(36, false, false);
  EXPECT_NEAR(r.total_time, r.compute_busy + r.comm_busy, 1e-9 * r.total_time);
  EXPECT_LT(r.overlap_efficiency(), 0.05);
}

TEST(Timeline, SyncStagingDisruptsOverlap) {
  // The paper's Fig. 2 observation: the CUDA-aware MPI staging copies
  // synchronize with the compute stream, so overlap degrades relative to
  // explicit asynchronous staging. The effect shows in the
  // compute-dominated regime (few GPUs), where the synchronized copies
  // lengthen the critical path band by band.
  const auto async_staging = run(36, true, false);
  const auto sync_staging = run(36, true, true);
  EXPECT_GT(sync_staging.total_time, async_staging.total_time * 1.001);
  EXPECT_LT(sync_staging.overlap_efficiency(), async_staging.overlap_efficiency());
}

TEST(Timeline, ExposedCommGrowsWithGpuCount) {
  // More GPUs -> less compute per band to hide the (constant) broadcast.
  const auto r36 = run(36, true, false);
  const auto r3072 = run(3072, true, false);
  EXPECT_LT(r36.exposed_comm / r36.total_time, r3072.exposed_comm / r3072.total_time);
}

TEST(Timeline, FullWorkloadMatchesModelScale) {
  // Full 3072-band pipeline at 768 GPUs: the total should be in the
  // neighbourhood of the Table 1 Fock total (computation + exposed comm).
  PipelineOptions opt;
  opt.overlap = true;
  opt.sync_staging = false;
  const auto r = simulate_fock_pipeline(SummitMachine::defaults(), Workload::silicon(1536), 768,
                                        opt);
  EXPECT_GT(r.total_time, 4.0);   // paper: 8.1 s Fock total per SCF
  EXPECT_LT(r.total_time, 20.0);
}

TEST(Timeline, RenderProducesThreeLanes) {
  const auto r = run(144, true, false, 8);
  const std::string txt = perf::render_timeline(r, 8, r.total_time / 60.0);
  EXPECT_NE(txt.find("net"), std::string::npos);
  EXPECT_NE(txt.find("gpu"), std::string::npos);
  EXPECT_NE(txt.find('B'), std::string::npos);
  EXPECT_NE(txt.find('C'), std::string::npos);
}

}  // namespace
}  // namespace pwdft
