// Golden-value physics regression: a small-silicon hybrid ground state plus
// a 5-step PT-CN propagation with frozen in-source reference values. The
// FFT oracle (tests/test_fft_oracle.cpp) proves the transforms against an
// independent DFT; this layer proves the *physics pipeline on top of them*
// — a kernel or scheduling change that silently perturbs the total energy,
// the band eigenvalues, or the current (dipole-velocity) trace fails tier-1
// instead of only showing up in the benches.
//
// Tolerances: the engine is bit-identical at any thread count
// (docs/threading.md), so width never moves these numbers. The scalar and
// SIMD radix kernels agree to final-bit rounding (exact butterfly leaves
// vs table twiddles); through the converged SCF fixed points the measured
// cross-kernel spread is ~1e-8 Ha on energies and ~3e-10 a.u. on currents,
// an order or more inside the tolerances — which still catch any real
// physics change (those move these digits at 1e-4 or more).
//
// Regenerate after an *intended* physics change with:
//   PWDFT_GOLDEN_PRINT=1 ./build/test_physics_golden

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/simulation.hpp"
#include "td/field.hpp"

namespace pwdft {
namespace {

core::SimulationOptions golden_options() {
  core::SimulationOptions opt;
  opt.cells[0] = opt.cells[1] = opt.cells[2] = 1;  // Si8
  opt.ecut = 3.0;
  opt.dense_factor = 1;
  opt.hybrid = true;
  opt.scf.tol_rho = 1e-7;
  opt.scf.lobpcg.max_iter = 6;
  opt.scf.hybrid_outer_max = 3;
  opt.scf.hybrid_outer_tol = 1e-7;
  opt.seed = 42;
  return opt;
}

constexpr double kKick = 0.02;  ///< delta-kick amplitude along z at t = 0+
constexpr int kSteps = 5;

core::PropagateOptions golden_propagation(const td::ExternalField& field) {
  core::PropagateOptions popt;
  popt.integrator = core::Integrator::kPtCn;
  popt.dt_as = 50.0;
  popt.steps = kSteps;
  popt.field = &field;
  popt.ptcn.rho_tol = 1e-7;
  return popt;
}

// ---- Frozen reference values (regeneration note above) ------------------
// Generated 2026-07 with both kernels (scalar and SIMD agree to all printed
// digits). Ground state: Si8, Ecut = 3 Ha, LDA phase + 3 hybrid outers.
constexpr double kTotalEnergy = -30.5278743911242;  // Ha
constexpr std::size_t kNumBands = 16;
constexpr double kEigenvalues[kNumBands] = {
    -0.204579247614072,  -0.0624837381320679, -0.0624837380346080,
    -0.0619853658915997, -0.0619853658788842, -0.0619853658479276,
    -0.0612893049079709, 0.0288956073557961,  0.0288956073643569,
    0.0288956074039492,  0.0295719049834277,  0.0295719050207155,
    0.0295719050475380,  0.136547214441234,   0.136547214441776,
    0.136547214444076,
};
// PT-CN trace under the z delta kick: j_z(t) (the dipole-velocity trace)
// and total energy per step, samples at t = 0, dt, ..., 5 dt. The t = 0
// sample already sees the kick (a = kappa for t >= 0), so its energy sits
// Ne * kappa^2 / 2 above the ground state.
constexpr double kCurrentZ[kSteps + 1] = {
    0.000592357617755711,  0.000451272319331256,  0.000149435185281872,
    -0.000156139562711248, -0.000447543982032571, -0.000732890965190251,
};
constexpr double kEnergyTrace[kSteps + 1] = {
    -30.5214743911242, -30.5214743521994, -30.5214744066879,
    -30.5214745144787, -30.5214747144030, -30.5214751456382,
};

// ACE-mode ground state: the compressed operator drives the inner LOBPCG,
// so three hybrid outers land within ~5e-6 Ha of the pair-solve fixed point
// (both loops would meet at the same point as outers -> infinity; the frozen
// constant pins the 3-outer trajectory exactly).
constexpr double kAceTotalEnergy = -30.5278690536373;  // Ha
// ACE-mode MTS propagation (use_ace on, PT-CN mts_interval = 2, drift bound
// disabled so the cadence alone schedules the rebuilds): the exchange
// operator is frozen through every inner iteration and across every second
// step. At this deliberately large dt (50 as) the frozen operator lags the
// orbitals enough that the trace visibly departs from the exact one (~1e-4
// on currents, a few mHa of energy drift) — the frozen constants pin that
// approximation so a change to the refresh machinery cannot hide in it.
// Same delta kick, samples at t = 0, dt, ..., 5 dt.
constexpr double kCurrentZAceMts[kSteps + 1] = {
    0.000592357617755709,  0.000407722210573941, 3.53967472141115e-05,
    -0.000200116135489659, -0.000453019842178321, -0.000676123222235212,
};
constexpr double kEnergyTraceAceMts[kSteps + 1] = {
    -30.5214690536373, -30.5226794660583, -30.5253395971300,
    -30.5260750864209, -30.5279655678913, -30.5285402381442,
};
// Forced-early-refresh continuation (2 more steps with mts_interval = 100
// and a zero drift tolerance, so the monitored bound — not the cadence —
// triggers the rebuild on every step).
constexpr double kCurrentZAceForced[3] = {
    -0.000676123222235212, -0.000876843110967922, -0.00104159349792582,
};
/// How far ACE/MTS results may sit from the *exact* references: the ACE
/// ground state after 3 outers (energy / eigenvalues), and the MTS current
/// trace vs the per-inner-iteration exact trace. Looser than the frozen
/// self-gates above by design — these bound the approximation, the frozen
/// constants pin the implementation.
constexpr double kAceVsExactEnergyTol = 1e-5;    ///< Ha
constexpr double kAceVsExactEigvalTol = 5e-5;    ///< Ha
constexpr double kMtsVsExactCurrentTol = 2e-4;   ///< a.u.

constexpr double kEnergyTol = 5e-7;   ///< Ha
constexpr double kEigvalTol = 5e-7;   ///< Ha
constexpr double kCurrentTol = 1e-8;  ///< a.u.

struct GoldenRun {
  scf::ScfResult gs;
  std::vector<td::TimePoint> trace;
};

const GoldenRun& golden_run() {
  static const GoldenRun run = [] {
    core::Simulation sim(golden_options());
    GoldenRun r;
    r.gs = sim.ground_state();
    td::DeltaKick kick({0.0, 0.0, kKick}, 0.0);
    r.trace = sim.propagate(golden_propagation(kick));
    if (std::getenv("PWDFT_GOLDEN_PRINT")) {
      std::printf("kTotalEnergy = %.15g;\n", r.gs.energy.total());
      std::printf("kEigenvalues[%zu] = {\n", r.gs.eigenvalues.size());
      for (double e : r.gs.eigenvalues) std::printf("    %.15g,\n", e);
      std::printf("};\nkCurrentZ = {\n");
      for (const auto& p : r.trace) std::printf("    %.15g,\n", p.current[2]);
      std::printf("};\nkEnergyTrace = {\n");
      for (const auto& p : r.trace) std::printf("    %.15g,\n", p.energy);
      std::printf("};\n");
    }
    return r;
  }();
  return run;
}

/// ACE-mode run: same golden problem with exchange applied through the
/// compressed operator. The ground state must land on the SAME frozen
/// energy/eigenvalue references as the exact run (ACE is exact on the
/// registered orbital span, and every SCF outer step refreshes the
/// projectors); the MTS propagation gates its own frozen traces.
struct AceGoldenRun {
  scf::ScfResult gs;
  std::vector<td::TimePoint> mts_trace;     ///< 5 steps, mts_interval = 2
  std::vector<td::TimePoint> forced_trace;  ///< 2 steps, drift bound forces refresh
};

const AceGoldenRun& ace_golden_run() {
  static const AceGoldenRun run = [] {
    auto opt = golden_options();
    opt.use_ace = true;
    core::Simulation sim(opt);
    AceGoldenRun r;
    r.gs = sim.ground_state();
    td::DeltaKick kick({0.0, 0.0, kKick}, 0.0);
    auto popt = golden_propagation(kick);
    popt.ptcn.mts_interval = 2;
    popt.ptcn.mts_drift_tol = 1e9;  // cadence-only schedule; the bound is gated below
    r.mts_trace = sim.propagate(popt);
    popt.steps = 2;
    popt.ptcn.mts_interval = 100;
    popt.ptcn.mts_drift_tol = 0.0;  // every step trips the monitored bound
    r.forced_trace = sim.propagate(popt);
    if (std::getenv("PWDFT_GOLDEN_PRINT")) {
      std::printf("kAceTotalEnergy = %.15g;\nkCurrentZAceMts = {\n", r.gs.energy.total());
      for (const auto& p : r.mts_trace) std::printf("    %.15g,\n", p.current[2]);
      std::printf("};\nkEnergyTraceAceMts = {\n");
      for (const auto& p : r.mts_trace) std::printf("    %.15g,\n", p.energy);
      std::printf("};\nkCurrentZAceForced = {\n");
      for (const auto& p : r.forced_trace) std::printf("    %.15g,\n", p.current[2]);
      std::printf("};\n");
    }
    return r;
  }();
  return run;
}

TEST(PhysicsGolden, GroundStateTotalEnergy) {
  const auto& run = golden_run();
  EXPECT_TRUE(run.gs.converged);
  EXPECT_NEAR(run.gs.energy.total(), kTotalEnergy, kEnergyTol);
}

TEST(PhysicsGolden, GroundStateBandEigenvalues) {
  const auto& run = golden_run();
  ASSERT_EQ(run.gs.eigenvalues.size(), kNumBands);
  for (std::size_t j = 0; j < kNumBands; ++j)
    EXPECT_NEAR(run.gs.eigenvalues[j], kEigenvalues[j], kEigvalTol) << "band " << j;
}

TEST(PhysicsGolden, PtCnCurrentTraceUnderKick) {
  const auto& run = golden_run();
  ASSERT_EQ(run.trace.size(), static_cast<std::size_t>(kSteps) + 1);
  for (std::size_t s = 0; s < run.trace.size(); ++s)
    EXPECT_NEAR(run.trace[s].current[2], kCurrentZ[s], kCurrentTol) << "step " << s;
  // The kick must actually excite a current (the trace is not trivially 0).
  EXPECT_GT(std::abs(run.trace[1].current[2]), 1e-5);
}

TEST(PhysicsGolden, PtCnEnergyTraceUnderKick) {
  const auto& run = golden_run();
  for (std::size_t s = 0; s < run.trace.size(); ++s)
    EXPECT_NEAR(run.trace[s].energy, kEnergyTrace[s], kEnergyTol) << "step " << s;
  // PT-CN conserves the post-kick energy to the SCF tolerance.
  for (std::size_t s = 2; s < run.trace.size(); ++s)
    EXPECT_NEAR(run.trace[s].energy, run.trace[1].energy, 1e-5) << "step " << s;
}

TEST(PhysicsGolden, AceGroundStateTracksExactExchange) {
  // The frozen ACE constant gates the implementation at the tight tolerance;
  // the exact-exchange references gate the *approximation* at the looser
  // bounds (ACE is exact on the registered span, so the two fixed points
  // differ only by the unfinished outer-loop tail).
  const auto& run = ace_golden_run();
  EXPECT_TRUE(run.gs.converged);
  EXPECT_NEAR(run.gs.energy.total(), kAceTotalEnergy, kEnergyTol);
  EXPECT_NEAR(run.gs.energy.total(), kTotalEnergy, kAceVsExactEnergyTol);
  ASSERT_EQ(run.gs.eigenvalues.size(), kNumBands);
  for (std::size_t j = 0; j < kNumBands; ++j)
    EXPECT_NEAR(run.gs.eigenvalues[j], kEigenvalues[j], kAceVsExactEigvalTol) << "band " << j;
}

TEST(PhysicsGolden, AceMtsCurrentAndEnergyTraceUnderKick) {
  const auto& run = ace_golden_run();
  ASSERT_EQ(run.mts_trace.size(), static_cast<std::size_t>(kSteps) + 1);
  for (std::size_t s = 0; s < run.mts_trace.size(); ++s) {
    EXPECT_NEAR(run.mts_trace[s].current[2], kCurrentZAceMts[s], kCurrentTol) << "step " << s;
    EXPECT_NEAR(run.mts_trace[s].energy, kEnergyTraceAceMts[s], kEnergyTol) << "step " << s;
  }
  // The frozen-exchange approximation must stay within a bounded band of the
  // exact trace: MTS is a controlled approximation, not new physics.
  for (std::size_t s = 0; s < run.mts_trace.size(); ++s)
    EXPECT_NEAR(run.mts_trace[s].current[2], kCurrentZ[s], kMtsVsExactCurrentTol) << "step " << s;
}

TEST(PhysicsGolden, AceMtsRefreshFollowsCadence) {
  // mts_interval = 2 with the drift bound disabled: steps 1, 3, 5 rebuild the
  // exchange operator, steps 2 and 4 run frozen (trace[0] is the t = 0 sample).
  const auto& run = ace_golden_run();
  ASSERT_EQ(run.mts_trace.size(), static_cast<std::size_t>(kSteps) + 1);
  EXPECT_FALSE(run.mts_trace[0].exchange_refreshed);
  for (std::size_t s = 1; s < run.mts_trace.size(); ++s) {
    EXPECT_EQ(run.mts_trace[s].exchange_refreshed, s % 2 == 1) << "step " << s;
    if (!run.mts_trace[s].exchange_refreshed)
      EXPECT_GT(run.mts_trace[s].mts_drift, 0.0) << "step " << s;
  }
}

TEST(PhysicsGolden, AceMtsDriftBoundForcesEarlyRefresh) {
  // Continuation with mts_interval = 100 but a zero drift tolerance: the
  // cadence alone would freeze for 100 steps, so every observed rebuild is
  // the monitored bound firing.
  const auto& run = ace_golden_run();
  ASSERT_EQ(run.forced_trace.size(), 3u);
  for (std::size_t s = 1; s < run.forced_trace.size(); ++s)
    EXPECT_TRUE(run.forced_trace[s].exchange_refreshed) << "step " << s;
  for (std::size_t s = 0; s < run.forced_trace.size(); ++s)
    EXPECT_NEAR(run.forced_trace[s].current[2], kCurrentZAceForced[s], kCurrentTol) << "step " << s;
}

}  // namespace
}  // namespace pwdft
