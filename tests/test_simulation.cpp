#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace pwdft {
namespace {

core::SimulationOptions tiny_options(bool hybrid = true) {
  core::SimulationOptions opt;
  opt.cells[0] = opt.cells[1] = opt.cells[2] = 1;
  opt.ecut = 3.0;
  opt.dense_factor = 1;
  opt.hybrid = hybrid;
  opt.scf.max_iter = 40;
  opt.scf.tol_rho = 1e-7;
  opt.scf.lobpcg.max_iter = 6;
  opt.scf.hybrid_outer_max = 5;
  opt.scf.hybrid_outer_tol = 1e-6;
  return opt;
}

TEST(Simulation, GroundStateThenPtCnWithLaser) {
  core::Simulation sim(tiny_options());
  auto gs = sim.ground_state();
  EXPECT_TRUE(std::isfinite(gs.energy.total()));
  EXPECT_LT(gs.energy.fock, 0.0);
  EXPECT_EQ(sim.occupations().size(), 16u);

  const auto pulse = td::LaserPulse::paper_pulse(0.05);
  core::PropagateOptions popt;
  popt.integrator = core::Integrator::kPtCn;
  popt.dt_as = 50.0;
  popt.steps = 2;
  popt.field = &pulse;
  popt.ptcn.rho_tol = 1e-7;
  popt.ptcn.max_scf = 40;
  auto trace = sim.propagate(popt);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].t, 0.0);
  EXPECT_NEAR(trace[1].t, 50.0 / constants::as_per_au_time, 1e-10);
  for (const auto& p : trace) {
    EXPECT_TRUE(std::isfinite(p.energy));
    EXPECT_GE(p.n_excited, -1e-6);
  }
  EXPECT_GT(trace[1].scf_iterations, 0);
}

TEST(Simulation, RequiresGroundStateBeforePropagation) {
  core::Simulation sim(tiny_options());
  core::PropagateOptions popt;
  EXPECT_THROW(sim.propagate(popt), Error);
}

TEST(Simulation, NoFieldKeepsSystemQuiescent) {
  core::Simulation sim(tiny_options());
  sim.ground_state();
  core::PropagateOptions popt;
  popt.steps = 1;
  popt.dt_as = 50.0;
  popt.ptcn.rho_tol = 1e-8;
  auto trace = sim.propagate(popt);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_NEAR(trace[1].n_excited, 0.0, 1e-3);
  EXPECT_NEAR(trace[1].energy, trace[0].energy,
              1e-4 * std::abs(trace[0].energy));
}

TEST(Simulation, Rk4PathRuns) {
  auto opt = tiny_options(false);  // semi-local only keeps RK4 cheap
  core::Simulation sim(opt);
  sim.ground_state();
  const td::DeltaKick kick({0.0, 0.0, 0.01}, -1.0);
  core::PropagateOptions popt;
  popt.integrator = core::Integrator::kRk4;
  popt.dt_as = 0.5;
  popt.steps = 3;
  popt.field = &kick;
  popt.record_energy = false;
  auto trace = sim.propagate(popt);
  ASSERT_EQ(trace.size(), 4u);
  // The kick drives a current.
  EXPECT_GT(std::abs(trace[3].current[2]), 0.0);
}

TEST(Simulation, CurrentEnergyIsConsistentWithScfResult) {
  core::Simulation sim(tiny_options());
  auto gs = sim.ground_state();
  const auto e = sim.current_energy();
  EXPECT_NEAR(e.total(), gs.energy.total(), 1e-6 * std::abs(gs.energy.total()));
}

}  // namespace
}  // namespace pwdft
