#include <gtest/gtest.h>

#include "fft/fft3d.hpp"
#include "pseudo/local_pot.hpp"
#include "pseudo/nonlocal.hpp"
#include "pseudo/pseudopotential.hpp"
#include "test_helpers.hpp"
#include "xc/hybrid.hpp"
#include "xc/lda.hpp"

namespace pwdft {
namespace {

using pseudo::LocalParams;
using pseudo::PseudoSpecies;

TEST(LocalPseudo, FormFactorLimitMatchesG0Value) {
  const LocalParams p;
  // The G=0 convention removes the *bare* Coulomb divergence -4 pi Z/G^2
  // (it cancels against Hartree + Ewald), so v(G) + 4 pi Z/G^2 -> v(G=0).
  const double g2 = 1e-6;
  const double with_coulomb_removed =
      pseudo::local_form_factor(p, g2) + constants::four_pi * p.zval / g2;
  EXPECT_NEAR(with_coulomb_removed, pseudo::local_form_factor_g0(p), 1e-4);
}

TEST(LocalPseudo, RealSpaceFormIsBoundedAndDecays) {
  const LocalParams p;
  EXPECT_TRUE(std::isfinite(pseudo::local_potential_r(p, 0.0)));
  EXPECT_NEAR(pseudo::local_potential_r(p, 50.0), -p.zval / 50.0, 1e-10);
  // Matches -Z/r at large r (erf -> 1, gaussian -> 0).
  EXPECT_NEAR(pseudo::local_potential_r(p, 12.0), -p.zval / 12.0, 1e-8);
}

TEST(LocalPseudo, FormFactorMatchesRadialQuadrature) {
  // Independent check of the analytic Fourier transform:
  // v(G) = 4 pi / G * Integral r sin(Gr) v(r) dr (for the full potential,
  // using the identity on the short-range part plus known erf transform).
  const LocalParams p;
  const double g = 1.2, g2 = g * g;
  // Numerically transform v(r) + Z erf(sqrt(a) r)/r (pure short range).
  const double dr = 1e-3;
  double integral = 0.0;
  for (double r = dr / 2; r < 12.0; r += dr) {
    const double vsr = (p.v1 + p.v2 * r * r) * std::exp(-p.alpha * r * r);
    integral += r * std::sin(g * r) * vsr * dr;
  }
  const double v_sr = constants::four_pi / g * integral;
  const double v_analytic = pseudo::local_form_factor(p, g2) +
                            std::exp(-g2 / (4.0 * p.alpha)) * constants::four_pi * p.zval / g2;
  EXPECT_NEAR(v_sr, v_analytic, 1e-6 * std::abs(v_analytic) + 1e-9);
}

TEST(LocalPotential, MeanValueEqualsG0Coefficient) {
  auto setup = test::make_si8_setup(4.0, 1);
  const auto species = PseudoSpecies::silicon(false);
  const auto v = pseudo::build_local_potential(setup.crystal, species, setup.dense_grid);
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  const double expect = pseudo::local_form_factor_g0(species.local) *
                        static_cast<double>(setup.crystal.n_atoms()) / setup.volume();
  EXPECT_NEAR(mean, expect, 1e-10 * std::abs(expect) + 1e-12);
}

TEST(LocalPotential, TranslationByGridPointShiftsValues) {
  auto setup = test::make_si8_setup(4.0, 1);
  const auto species = PseudoSpecies::silicon(false);
  const auto dims = setup.dense_grid.dims();
  const auto v0 = pseudo::build_local_potential(setup.crystal, species, setup.dense_grid);
  const grid::Vec3 shift{1.0 / static_cast<double>(dims[0]), 0.0, 0.0};
  const auto crystal_shifted = setup.crystal.translated(shift);
  const auto v1 = pseudo::build_local_potential(crystal_shifted, species, setup.dense_grid);
  // v1(x) == v0(x-1) along the first axis.
  for (std::size_t z = 0; z < dims[2]; ++z)
    for (std::size_t y = 0; y < dims[1]; ++y)
      for (std::size_t x = 0; x < dims[0]; ++x) {
        const std::size_t i1 = x + dims[0] * (y + dims[1] * z);
        const std::size_t x0 = (x + dims[0] - 1) % dims[0];
        const std::size_t i0 = x0 + dims[0] * (y + dims[1] * z);
        EXPECT_NEAR(v1[i1], v0[i0], 1e-8);
      }
}

TEST(LocalPotential, PeriodicImagesSumRealSpaceCheck) {
  // At a point far from all atoms the potential should be close to the sum
  // of -Z/r Coulomb tails (plus the uniform G=0 convention offset); here we
  // just check the potential is attractive (negative) near an atom and
  // finite everywhere.
  auto setup = test::make_si8_setup(6.0, 2);
  const auto species = PseudoSpecies::silicon(false);
  const auto v = pseudo::build_local_potential(setup.crystal, species, setup.dense_grid);
  double vmin = 1e9, vmax = -1e9;
  for (double x : v) {
    vmin = std::min(vmin, x);
    vmax = std::max(vmax, x);
  }
  EXPECT_LT(vmin, -0.3);  // deep near nuclei
  EXPECT_TRUE(std::isfinite(vmax));
}

TEST(Nonlocal, ProjectorsAreNormalized) {
  auto setup = test::make_si8_setup(4.0, 1);
  const auto species = PseudoSpecies::silicon(true);
  pseudo::NonlocalProjectors nl(setup.crystal, species, setup.dense_grid,
                                setup.crystal.lattice());
  // 8 atoms x (1 s + 3 p) = 32 projectors.
  EXPECT_EQ(nl.n_projectors(), 32u);
  const double w = setup.weight_dense();
  for (const auto& p : nl.projectors()) {
    double n2 = 0.0;
    for (double v : p.val) n2 += v * v;
    EXPECT_NEAR(n2 * w, 1.0, 1e-10);
  }
  EXPECT_GT(nl.storage_bytes(), 0u);
}

TEST(Nonlocal, ApplyIsHermitian) {
  auto setup = test::make_si8_setup(4.0, 1);
  const auto species = PseudoSpecies::silicon(true);
  pseudo::NonlocalProjectors nl(setup.crystal, species, setup.dense_grid,
                                setup.crystal.lattice());
  const std::size_t nd = setup.n_dense();
  Rng rng(17);
  std::vector<Complex> a(nd), b(nd), va(nd, Complex{0, 0}), vb(nd, Complex{0, 0});
  for (auto& v : a) v = rng.complex_normal();
  for (auto& v : b) v = rng.complex_normal();
  const double w = setup.weight_dense();
  nl.apply_add(a, va, w);
  nl.apply_add(b, vb, w);
  Complex lhs{0, 0}, rhs{0, 0};
  for (std::size_t i = 0; i < nd; ++i) {
    lhs += std::conj(a[i]) * vb[i];
    rhs += std::conj(va[i]) * b[i];
  }
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * (1.0 + std::abs(lhs)));
}

TEST(Nonlocal, EnergyMatchesApplyQuadrature) {
  auto setup = test::make_si8_setup(4.0, 1);
  const auto species = PseudoSpecies::silicon(true);
  pseudo::NonlocalProjectors nl(setup.crystal, species, setup.dense_grid,
                                setup.crystal.lattice());
  const std::size_t nd = setup.n_dense();
  Rng rng(19);
  std::vector<Complex> a(nd), va(nd, Complex{0, 0});
  for (auto& v : a) v = rng.complex_normal();
  const double w = setup.weight_dense();
  nl.apply_add(a, va, w);
  Complex quad{0, 0};
  for (std::size_t i = 0; i < nd; ++i) quad += std::conj(a[i]) * va[i];
  EXPECT_NEAR(nl.energy_contribution(a, w), (quad * w).real(),
              1e-9 * (1.0 + std::abs(quad)));
}

TEST(Nonlocal, PProjectorAnnihilatesConstants) {
  auto setup = test::make_si8_setup(4.0, 1);
  PseudoSpecies sp;
  sp.local = LocalParams{};
  sp.channels.push_back(pseudo::ProjectorChannel{1, 1.2, 0.4, 4.5});
  pseudo::NonlocalProjectors nl(setup.crystal, sp, setup.dense_grid, setup.crystal.lattice());
  const std::size_t nd = setup.n_dense();
  std::vector<Complex> ones(nd, Complex{1.0, 0.0});
  // <beta_p | const> ~ 0 by odd parity up to grid discretization (the atoms
  // do not sit on grid points, so cancellation is not exact).
  EXPECT_NEAR(nl.energy_contribution(ones, setup.weight_dense()), 0.0, 1e-3);
}

class LdaDensities : public ::testing::TestWithParam<double> {};

TEST_P(LdaDensities, PotentialIsFunctionalDerivative) {
  const double rho = GetParam();
  const double h = 1e-6 * rho;
  const auto lo = xc::lda_pz(rho - h);
  const auto hi = xc::lda_pz(rho + h);
  const double dfdn = ((rho + h) * hi.eps - (rho - h) * lo.eps) / (2.0 * h);
  EXPECT_NEAR(xc::lda_pz(rho).vxc, dfdn, 1e-5 * std::abs(dfdn));
}

TEST_P(LdaDensities, ExchangeCorrelationIsNegative) {
  const auto p = xc::lda_pz(GetParam());
  EXPECT_LT(p.eps, 0.0);
  EXPECT_LT(p.vxc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Densities, LdaDensities,
                         ::testing::Values(1e-3, 0.01, 0.03, 0.1, 0.3, 1.0, 5.0));

TEST(Lda, ZeroDensityIsSafe) {
  const auto p = xc::lda_pz(0.0);
  EXPECT_EQ(p.eps, 0.0);
  EXPECT_EQ(p.vxc, 0.0);
}

TEST(Lda, ArrayMatchesScalar) {
  std::vector<double> rho{0.0, 0.01, 0.2, 2.0};
  std::vector<double> eps(4), vxc(4);
  xc::lda_pz(rho, eps, vxc);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto p = xc::lda_pz(rho[i]);
    EXPECT_DOUBLE_EQ(eps[i], p.eps);
    EXPECT_DOUBLE_EQ(vxc[i], p.vxc);
  }
}

TEST(Lda, KnownExchangeValue) {
  // At rho corresponding to rs=1 the exchange energy density is
  // eps_x = -3/(4 pi rs) (9 pi/4)^{1/3} ~ -0.45817 Ha.
  const double rs = 1.0;
  const double rho = 3.0 / (constants::four_pi * rs * rs * rs);
  const double eps_x = -0.75 * std::cbrt(3.0 / constants::pi) * std::cbrt(rho);
  EXPECT_NEAR(eps_x, -0.45817, 1e-4);
}

TEST(HybridKernel, ScreenedLimitIsFinite) {
  const double omega = 0.11;
  EXPECT_NEAR(xc::exchange_kernel(0.0, omega), constants::pi / (omega * omega), 1e-10);
  // Continuity near zero.
  EXPECT_NEAR(xc::exchange_kernel(1e-10, omega), xc::exchange_kernel(0.0, omega), 1e-4);
}

TEST(HybridKernel, ScreenedBelowBareAndConverging) {
  const double omega = 0.11;
  for (double g2 : {0.1, 0.5, 1.0, 4.0, 20.0}) {
    const double bare = constants::four_pi / g2;
    const double scr = xc::exchange_kernel(g2, omega);
    EXPECT_LT(scr, bare + 1e-14);
    EXPECT_GT(scr, 0.0);
  }
  // At large G screening is irrelevant.
  EXPECT_NEAR(xc::exchange_kernel(100.0, omega), constants::four_pi / 100.0, 1e-8);
}

TEST(HybridKernel, BareKernelConvention) {
  EXPECT_EQ(xc::exchange_kernel(0.0, -1.0), 0.0);
  EXPECT_NEAR(xc::exchange_kernel(2.0, -1.0), constants::four_pi / 2.0, 1e-12);
}

}  // namespace
}  // namespace pwdft
