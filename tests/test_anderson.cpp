#include <gtest/gtest.h>

#include "common/random.hpp"
#include "scf/anderson.hpp"

namespace pwdft {
namespace {

using scf::AndersonMixer;

/// Linear fixed point x = A x + b with spectral radius < 1.
struct LinearProblem {
  CMatrix a;
  std::vector<Complex> b;
  std::vector<Complex> g(const std::vector<Complex>& x) const {
    const std::size_t n = b.size();
    std::vector<Complex> out = b;
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) out[i] += a(i, j) * x[j];
    return out;
  }
};

LinearProblem make_problem(std::size_t n, double spectral_scale, std::uint64_t seed) {
  Rng rng(seed);
  LinearProblem p;
  p.a.resize(n, n);
  for (std::size_t i = 0; i < p.a.size(); ++i)
    p.a.data()[i] = rng.complex_normal() * (spectral_scale / std::sqrt(double(n)));
  p.b.resize(n);
  for (auto& v : p.b) v = rng.complex_normal();
  return p;
}

double fixed_point_residual(const LinearProblem& p, const std::vector<Complex>& x) {
  auto gx = p.g(x);
  double r = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) r += std::norm(gx[i] - x[i]);
  return std::sqrt(r);
}

TEST(Anderson, SolvesLinearFixedPointInFewIterations) {
  // With full history, Anderson on a linear problem is GMRES-like: the
  // residual should be tiny after ~n+2 iterations.
  const std::size_t n = 5;
  auto p = make_problem(n, 0.8, 3);
  AndersonMixer mixer(n, 10, 0.5);
  std::vector<Complex> x(n, Complex{0, 0});
  for (int it = 0; it < 8; ++it) {
    auto gx = p.g(x);
    std::vector<Complex> f(n);
    for (std::size_t i = 0; i < n; ++i) f[i] = gx[i] - x[i];
    mixer.mix(x, f, x);
  }
  EXPECT_LT(fixed_point_residual(p, x), 1e-9);
}

TEST(Anderson, BeatsPlainMixingOnIllConditionedProblem) {
  const std::size_t n = 8;
  auto p = make_problem(n, 0.95, 7);
  const int iters = 12;

  std::vector<Complex> x_plain(n, Complex{0, 0});
  const double beta = 0.5;
  for (int it = 0; it < iters; ++it) {
    auto gx = p.g(x_plain);
    for (std::size_t i = 0; i < n; ++i) x_plain[i] += beta * (gx[i] - x_plain[i]);
  }

  AndersonMixer mixer(n, 8, beta);
  std::vector<Complex> x_and(n, Complex{0, 0});
  for (int it = 0; it < iters; ++it) {
    auto gx = p.g(x_and);
    std::vector<Complex> f(n);
    for (std::size_t i = 0; i < n; ++i) f[i] = gx[i] - x_and[i];
    mixer.mix(x_and, f, x_and);
  }
  EXPECT_LT(fixed_point_residual(p, x_and), 0.1 * fixed_point_residual(p, x_plain));
}

TEST(Anderson, DepthOneReducesToDampedMixingFirstStep) {
  const std::size_t n = 4;
  AndersonMixer mixer(n, 3, 0.3);
  std::vector<Complex> x(n, Complex{1.0, 0.0}), f(n, Complex{0.5, 0.0}), out(n);
  mixer.mix(x, f, out);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(out[i] - Complex{1.15, 0.0}), 0.0, 1e-14);
}

TEST(Anderson, TruncatedHistoryStillConverges) {
  const std::size_t n = 10;
  auto p = make_problem(n, 0.9, 11);
  AndersonMixer mixer(n, 3, 0.5);  // depth far below n
  std::vector<Complex> x(n, Complex{0, 0});
  for (int it = 0; it < 60; ++it) {
    auto gx = p.g(x);
    std::vector<Complex> f(n);
    for (std::size_t i = 0; i < n; ++i) f[i] = gx[i] - x[i];
    mixer.mix(x, f, x);
  }
  // Truncated history converges linearly rather than GMRES-finitely; after
  // 60 iterations the residual should be far below the plain-mixing level.
  EXPECT_LT(fixed_point_residual(p, x), 1e-4);
  EXPECT_LE(mixer.history_size(), 3u);
}

TEST(Anderson, ResetClearsHistory) {
  const std::size_t n = 4;
  AndersonMixer mixer(n, 5, 0.3);
  std::vector<Complex> x(n, Complex{1, 0}), f(n, Complex{1, 0}), out(n);
  mixer.mix(x, f, out);
  mixer.mix(out, f, out);
  EXPECT_GT(mixer.history_size(), 0u);
  mixer.reset();
  EXPECT_EQ(mixer.history_size(), 0u);
  // After reset the first step is plain damped mixing again.
  std::vector<Complex> y(n, Complex{2, 0}), fy(n, Complex{1, 0}), out2(n);
  mixer.mix(y, fy, out2);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(out2[i] - Complex{2.3, 0.0}), 0.0, 1e-14);
}

TEST(Anderson, RealWrapperMatchesComplexPath) {
  const std::size_t n = 6;
  AndersonMixer m1(n, 4, 0.4);
  AndersonMixer m2(n, 4, 0.4);
  Rng rng(13);
  std::vector<double> xr(n), fr(n), outr(n);
  std::vector<Complex> xc(n), fc(n), outc(n);
  for (std::size_t i = 0; i < n; ++i) {
    xr[i] = rng.normal();
    fr[i] = rng.normal();
    xc[i] = Complex{xr[i], 0.0};
    fc[i] = Complex{fr[i], 0.0};
  }
  m1.mix_real(xr, fr, outr);
  m2.mix(xc, fc, outc);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(outr[i], outc[i].real(), 1e-13);
}

TEST(Anderson, SurvivesDegenerateHistory) {
  // Feeding identical iterates twice produces zero difference columns; the
  // Tikhonov regularization must keep the solve well posed.
  const std::size_t n = 5;
  AndersonMixer mixer(n, 4, 0.5);
  std::vector<Complex> x(n, Complex{1, 0}), f(n, Complex{0.2, 0}), out(n);
  mixer.mix(x, f, out);
  EXPECT_NO_THROW(mixer.mix(x, f, out));   // same point again
  EXPECT_NO_THROW(mixer.mix(out, f, out));
  for (const auto& v : out) EXPECT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
}

TEST(Anderson, RejectsSizeMismatch) {
  AndersonMixer mixer(4, 3, 0.5);
  std::vector<Complex> x(4), f(3), out(4);
  EXPECT_THROW(mixer.mix(x, f, out), Error);
}

}  // namespace
}  // namespace pwdft
