#include <gtest/gtest.h>

#include <numeric>

#include "common/exec.hpp"
#include "parallel/comm.hpp"
#include "parallel/distribution.hpp"
#include "parallel/thread_comm.hpp"
#include "parallel/transpose.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

using par::BlockPartition;
using par::Comm;
using par::CommOp;
using par::ThreadGroup;

class RankCounts : public ::testing::TestWithParam<int> {};

TEST_P(RankCounts, RanksSeeCorrectIdentity) {
  const int np = GetParam();
  std::vector<int> seen(np, -1);
  ThreadGroup::run(np, [&](Comm& c) {
    EXPECT_EQ(c.size(), np);
    seen[c.rank()] = c.rank();
  });
  for (int r = 0; r < np; ++r) EXPECT_EQ(seen[r], r);
}

TEST_P(RankCounts, BcastDeliversFromEveryRoot) {
  const int np = GetParam();
  ThreadGroup::run(np, [&](Comm& c) {
    for (int root = 0; root < np; ++root) {
      std::vector<double> buf(16, c.rank() == root ? 3.25 * root : -1.0);
      c.bcast(buf.data(), buf.size(), root);
      for (double v : buf) EXPECT_EQ(v, 3.25 * root);
    }
  });
}

TEST_P(RankCounts, AllreduceSumsDoubles) {
  const int np = GetParam();
  ThreadGroup::run(np, [&](Comm& c) {
    std::vector<double> v(8);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = c.rank() + double(i);
    c.allreduce_sum(v.data(), v.size());
    const double rank_sum = np * (np - 1) / 2.0;
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(v[i], rank_sum + np * double(i));
  });
}

TEST_P(RankCounts, AllreduceSumsComplex) {
  const int np = GetParam();
  ThreadGroup::run(np, [&](Comm& c) {
    Complex v{1.0, double(c.rank())};
    c.allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v.real(), double(np));
    EXPECT_DOUBLE_EQ(v.imag(), np * (np - 1) / 2.0);
  });
}

TEST_P(RankCounts, AlltoallvRoutesBlocks) {
  const int np = GetParam();
  ThreadGroup::run(np, [&](Comm& c) {
    const int me = c.rank();
    // Rank r sends one byte-tagged double to every rank.
    std::vector<double> send(np), recv(np);
    for (int r = 0; r < np; ++r) send[r] = 100.0 * me + r;
    std::vector<std::size_t> counts(np, sizeof(double)), displs(np);
    for (int r = 0; r < np; ++r) displs[r] = r * sizeof(double);
    c.alltoallv_bytes(reinterpret_cast<unsigned char*>(send.data()), counts.data(),
                      displs.data(), reinterpret_cast<unsigned char*>(recv.data()), counts.data(),
                      displs.data());
    for (int r = 0; r < np; ++r) EXPECT_DOUBLE_EQ(recv[r], 100.0 * r + me);
  });
}

TEST_P(RankCounts, AllgathervConcatenates) {
  const int np = GetParam();
  ThreadGroup::run(np, [&](Comm& c) {
    const int me = c.rank();
    std::vector<double> mine(static_cast<std::size_t>(me) + 1, double(me));
    std::vector<std::size_t> counts(np), displs(np);
    std::size_t off = 0;
    for (int r = 0; r < np; ++r) {
      counts[r] = (r + 1) * sizeof(double);
      displs[r] = off;
      off += counts[r];
    }
    std::vector<double> all(off / sizeof(double));
    c.allgatherv_bytes(reinterpret_cast<unsigned char*>(mine.data()), mine.size() * sizeof(double),
                       reinterpret_cast<unsigned char*>(all.data()), counts.data(), displs.data());
    std::size_t k = 0;
    for (int r = 0; r < np; ++r)
      for (int i = 0; i <= r; ++i) EXPECT_DOUBLE_EQ(all[k++], double(r));
  });
}

INSTANTIATE_TEST_SUITE_P(Np, RankCounts, ::testing::Values(1, 2, 3, 4, 6));

TEST(ThreadComm, SendRecvPingPong) {
  ThreadGroup::run(2, [&](Comm& c) {
    double v = 0.0;
    if (c.rank() == 0) {
      v = 42.5;
      c.send_bytes(&v, sizeof(v), 1, 7);
      c.recv_bytes(&v, sizeof(v), 1, 8);
      EXPECT_DOUBLE_EQ(v, 43.5);
    } else {
      c.recv_bytes(&v, sizeof(v), 0, 7);
      EXPECT_DOUBLE_EQ(v, 42.5);
      v += 1.0;
      c.send_bytes(&v, sizeof(v), 0, 8);
    }
  });
}

TEST(ThreadComm, StatsCountReceiveSideBytes) {
  auto stats = ThreadGroup::run(3, [&](Comm& c) {
    std::vector<double> buf(100, double(c.rank()));
    c.bcast(buf.data(), buf.size(), 0);
  });
  EXPECT_EQ(stats[0].get(CommOp::kBcast).bytes, 0u);  // root sends
  EXPECT_EQ(stats[1].get(CommOp::kBcast).bytes, 800u);
  EXPECT_EQ(stats[2].get(CommOp::kBcast).bytes, 800u);
  EXPECT_EQ(stats[1].get(CommOp::kBcast).calls, 1u);
}

TEST(ThreadComm, ExceptionFromRankPropagates) {
  EXPECT_THROW(ThreadGroup::run(2,
                                [&](Comm& c) {
                                  // Both ranks throw before any collective, so
                                  // no rank is left waiting at a barrier.
                                  if (c.size() == 2) throw Error("rank failure");
                                }),
               Error);
}

TEST(ThreadComm, DupCreatesIndependentRendezvousDomain) {
  // Collectives on the duplicate must not interleave with collectives on
  // the parent even when each rank issues them from two different threads
  // concurrently (the transpose-overlap shape of the PT-CN propagator).
  const int np = 3;
  ThreadGroup::run(np, [&](Comm& c) {
    auto dup = c.dup();
    EXPECT_EQ(dup->rank(), c.rank());
    EXPECT_EQ(dup->size(), c.size());
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<double> a(64, double(c.rank() + 1));
      std::vector<double> b(64, 10.0 * (c.rank() + 1));
      exec::TaskGroup tg;
      tg.run([&] { dup->allreduce_sum(a.data(), a.size()); });
      c.allreduce_sum(b.data(), b.size());
      tg.wait();
      EXPECT_DOUBLE_EQ(a[0], 1.0 + 2.0 + 3.0);
      EXPECT_DOUBLE_EQ(b[0], 10.0 + 20.0 + 30.0);
    }
  });
}

TEST(SerialComm, DupIsSerial) {
  par::SerialComm c;
  auto dup = c.dup();
  EXPECT_EQ(dup->size(), 1);
  std::vector<double> v(4, 2.0);
  dup->allreduce_sum(v.data(), v.size());
  EXPECT_DOUBLE_EQ(v[0], 2.0);
}

TEST(CommStats, MergeFoldsCounts) {
  par::CommStats a, b;
  a.add(CommOp::kBcast, 100, 0.5);
  b.add(CommOp::kBcast, 50, 0.25);
  b.add(CommOp::kAlltoallv, 10, 0.1);
  a.merge(b);
  EXPECT_EQ(a.get(CommOp::kBcast).calls, 2u);
  EXPECT_EQ(a.get(CommOp::kBcast).bytes, 150u);
  EXPECT_EQ(a.get(CommOp::kAlltoallv).bytes, 10u);
}

TEST(SerialComm, CollectivesAreLocal) {
  par::SerialComm c;
  EXPECT_EQ(c.size(), 1);
  std::vector<double> v(4, 2.0);
  c.allreduce_sum(v.data(), v.size());
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  c.bcast(v.data(), v.size(), 0);
  EXPECT_DOUBLE_EQ(v[3], 2.0);
  EXPECT_THROW(c.send_bytes(v.data(), 8, 0, 0), Error);
}

TEST(BlockPartition, CountsAndOffsetsAreConsistent) {
  for (std::size_t total : {0ul, 1ul, 7ul, 16ul, 33ul}) {
    for (int parts : {1, 2, 3, 5, 8}) {
      BlockPartition p(total, parts);
      std::size_t acc = 0;
      for (int r = 0; r < parts; ++r) {
        EXPECT_EQ(p.offset(r), acc);
        acc += p.count(r);
      }
      EXPECT_EQ(acc, total);
      // Near-equal: max-min <= 1.
      std::size_t mn = total + 1, mx = 0;
      for (int r = 0; r < parts; ++r) {
        mn = std::min(mn, p.count(r));
        mx = std::max(mx, p.count(r));
      }
      EXPECT_LE(mx - mn, 1u);
    }
  }
}

TEST(BlockPartition, OwnerInvertsOffsets) {
  BlockPartition p(29, 4);
  for (std::size_t i = 0; i < 29; ++i) {
    const int r = p.owner(i);
    EXPECT_GE(i, p.offset(r));
    EXPECT_LT(i, p.offset(r) + p.count(r));
  }
}

class TransposeRanks : public ::testing::TestWithParam<int> {};

TEST_P(TransposeRanks, BandToGAndBackIsIdentity) {
  const int np = GetParam();
  const std::size_t ng = 37, nb = 10;
  CMatrix full(ng, nb);
  Rng rng(13);
  for (std::size_t i = 0; i < full.size(); ++i) full.data()[i] = rng.complex_normal();

  ThreadGroup::run(np, [&](Comm& c) {
    BlockPartition bands(nb, np), gvecs(ng, np);
    par::WavefunctionTranspose tr(gvecs, bands);
    CMatrix band_local = test::band_slice(full, bands, c.rank());

    CMatrix g_local;
    tr.band_to_g(c, band_local, g_local, /*single_precision=*/false);
    // The G layout must hold every band's rows in this rank's row range.
    EXPECT_EQ(g_local.rows(), gvecs.count(c.rank()));
    EXPECT_EQ(g_local.cols(), nb);
    for (std::size_t j = 0; j < nb; ++j)
      for (std::size_t i = 0; i < g_local.rows(); ++i)
        EXPECT_EQ(g_local(i, j), full(gvecs.offset(c.rank()) + i, j));

    CMatrix back;
    tr.g_to_band(c, g_local, back, /*single_precision=*/false);
    EXPECT_NEAR(test::max_abs_diff(back, band_local), 0.0, 0.0);
  });
}

TEST_P(TransposeRanks, SinglePrecisionRoundTripWithinFloatEps) {
  const int np = GetParam();
  const std::size_t ng = 24, nb = 6;
  CMatrix full(ng, nb);
  Rng rng(14);
  for (std::size_t i = 0; i < full.size(); ++i) full.data()[i] = rng.complex_normal();
  ThreadGroup::run(np, [&](Comm& c) {
    BlockPartition bands(nb, np), gvecs(ng, np);
    par::WavefunctionTranspose tr(gvecs, bands);
    CMatrix band_local = test::band_slice(full, bands, c.rank());
    CMatrix g_local, back;
    tr.band_to_g(c, band_local, g_local, true);
    tr.g_to_band(c, g_local, back, true);
    EXPECT_LT(test::max_abs_diff(back, band_local), 1e-6);
  });
}

INSTANTIATE_TEST_SUITE_P(Np, TransposeRanks, ::testing::Values(1, 2, 3, 4));

TEST(Transpose, AlltoallvVolumeMatchesFormula) {
  // Paper §3.3: the residual-related transposes move NG*Ne coefficients
  // split across ranks; each rank receives the complement of its own block.
  const int np = 3;
  const std::size_t ng = 30, nb = 6;
  CMatrix full(ng, nb, Complex{1.0, 0.0});
  auto stats = ThreadGroup::run(np, [&](Comm& c) {
    BlockPartition bands(nb, np), gvecs(ng, np);
    par::WavefunctionTranspose tr(gvecs, bands);
    CMatrix band_local = test::band_slice(full, bands, c.rank());
    CMatrix g_local;
    tr.band_to_g(c, band_local, g_local, false);
  });
  for (int r = 0; r < np; ++r) {
    BlockPartition bands(nb, np), gvecs(ng, np);
    const std::size_t expect =
        (nb - bands.count(r)) * gvecs.count(r) * sizeof(Complex) +
        bands.count(r) * (ng - gvecs.count(r)) * 0;  // receive side counts rows it gets
    // Received bytes = sum over other ranks of (their bands x my rows).
    std::size_t recv = 0;
    for (int s = 0; s < np; ++s)
      if (s != r) recv += bands.count(s) * gvecs.count(r) * sizeof(Complex);
    (void)expect;
    EXPECT_EQ(stats[r].get(CommOp::kAlltoallv).bytes, recv);
  }
}

}  // namespace
}  // namespace pwdft
