#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "common/exec.hpp"
#include "parallel/comm.hpp"
#include "parallel/distribution.hpp"
#include "parallel/hier_comm.hpp"
#include "parallel/overlap.hpp"
#include "parallel/thread_comm.hpp"
#include "parallel/transpose.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

using par::BlockPartition;
using par::Comm;
using par::CommOp;
using par::ThreadGroup;

class RankCounts : public ::testing::TestWithParam<int> {};

TEST_P(RankCounts, RanksSeeCorrectIdentity) {
  const int np = GetParam();
  std::vector<int> seen(np, -1);
  ThreadGroup::run(np, [&](Comm& c) {
    EXPECT_EQ(c.size(), np);
    seen[c.rank()] = c.rank();
  });
  for (int r = 0; r < np; ++r) EXPECT_EQ(seen[r], r);
}

TEST_P(RankCounts, BcastDeliversFromEveryRoot) {
  const int np = GetParam();
  ThreadGroup::run(np, [&](Comm& c) {
    for (int root = 0; root < np; ++root) {
      std::vector<double> buf(16, c.rank() == root ? 3.25 * root : -1.0);
      c.bcast(buf.data(), buf.size(), root);
      for (double v : buf) EXPECT_EQ(v, 3.25 * root);
    }
  });
}

TEST_P(RankCounts, AllreduceSumsDoubles) {
  const int np = GetParam();
  ThreadGroup::run(np, [&](Comm& c) {
    std::vector<double> v(8);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = c.rank() + double(i);
    c.allreduce_sum(v.data(), v.size());
    const double rank_sum = np * (np - 1) / 2.0;
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(v[i], rank_sum + np * double(i));
  });
}

TEST_P(RankCounts, AllreduceSumsComplex) {
  const int np = GetParam();
  ThreadGroup::run(np, [&](Comm& c) {
    Complex v{1.0, double(c.rank())};
    c.allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v.real(), double(np));
    EXPECT_DOUBLE_EQ(v.imag(), np * (np - 1) / 2.0);
  });
}

TEST_P(RankCounts, AlltoallvRoutesBlocks) {
  const int np = GetParam();
  ThreadGroup::run(np, [&](Comm& c) {
    const int me = c.rank();
    // Rank r sends one byte-tagged double to every rank.
    std::vector<double> send(np), recv(np);
    for (int r = 0; r < np; ++r) send[r] = 100.0 * me + r;
    std::vector<std::size_t> counts(np, sizeof(double)), displs(np);
    for (int r = 0; r < np; ++r) displs[r] = r * sizeof(double);
    c.alltoallv_bytes(reinterpret_cast<unsigned char*>(send.data()), counts.data(),
                      displs.data(), reinterpret_cast<unsigned char*>(recv.data()), counts.data(),
                      displs.data());
    for (int r = 0; r < np; ++r) EXPECT_DOUBLE_EQ(recv[r], 100.0 * r + me);
  });
}

TEST_P(RankCounts, AllgathervConcatenates) {
  const int np = GetParam();
  ThreadGroup::run(np, [&](Comm& c) {
    const int me = c.rank();
    std::vector<double> mine(static_cast<std::size_t>(me) + 1, double(me));
    std::vector<std::size_t> counts(np), displs(np);
    std::size_t off = 0;
    for (int r = 0; r < np; ++r) {
      counts[r] = (r + 1) * sizeof(double);
      displs[r] = off;
      off += counts[r];
    }
    std::vector<double> all(off / sizeof(double));
    c.allgatherv_bytes(reinterpret_cast<unsigned char*>(mine.data()), mine.size() * sizeof(double),
                       reinterpret_cast<unsigned char*>(all.data()), counts.data(), displs.data());
    std::size_t k = 0;
    for (int r = 0; r < np; ++r)
      for (int i = 0; i <= r; ++i) EXPECT_DOUBLE_EQ(all[k++], double(r));
  });
}

INSTANTIATE_TEST_SUITE_P(Np, RankCounts, ::testing::Values(1, 2, 3, 4, 6));

TEST(ThreadComm, SendRecvPingPong) {
  ThreadGroup::run(2, [&](Comm& c) {
    double v = 0.0;
    if (c.rank() == 0) {
      v = 42.5;
      c.send_bytes(&v, sizeof(v), 1, 7);
      c.recv_bytes(&v, sizeof(v), 1, 8);
      EXPECT_DOUBLE_EQ(v, 43.5);
    } else {
      c.recv_bytes(&v, sizeof(v), 0, 7);
      EXPECT_DOUBLE_EQ(v, 42.5);
      v += 1.0;
      c.send_bytes(&v, sizeof(v), 0, 8);
    }
  });
}

TEST(ThreadComm, StatsCountReceiveSideBytes) {
  auto stats = ThreadGroup::run(3, [&](Comm& c) {
    std::vector<double> buf(100, double(c.rank()));
    c.bcast(buf.data(), buf.size(), 0);
  });
  EXPECT_EQ(stats[0].get(CommOp::kBcast).bytes, 0u);  // root sends
  EXPECT_EQ(stats[1].get(CommOp::kBcast).bytes, 800u);
  EXPECT_EQ(stats[2].get(CommOp::kBcast).bytes, 800u);
  EXPECT_EQ(stats[1].get(CommOp::kBcast).calls, 1u);
}

TEST(ThreadComm, ExceptionFromRankPropagates) {
  EXPECT_THROW(ThreadGroup::run(2,
                                [&](Comm& c) {
                                  // Both ranks throw before any collective, so
                                  // no rank is left waiting at a barrier.
                                  if (c.size() == 2) throw Error("rank failure");
                                }),
               Error);
}

TEST(ThreadComm, DupCreatesIndependentRendezvousDomain) {
  // Collectives on the duplicate must not interleave with collectives on
  // the parent even when each rank issues them from two different threads
  // concurrently (the transpose-overlap shape of the PT-CN propagator).
  const int np = 3;
  ThreadGroup::run(np, [&](Comm& c) {
    auto dup = c.dup();
    EXPECT_EQ(dup->rank(), c.rank());
    EXPECT_EQ(dup->size(), c.size());
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<double> a(64, double(c.rank() + 1));
      std::vector<double> b(64, 10.0 * (c.rank() + 1));
      exec::TaskGroup tg;
      tg.run([&] { dup->allreduce_sum(a.data(), a.size()); });
      c.allreduce_sum(b.data(), b.size());
      tg.wait();
      EXPECT_DOUBLE_EQ(a[0], 1.0 + 2.0 + 3.0);
      EXPECT_DOUBLE_EQ(b[0], 10.0 + 20.0 + 30.0);
    }
  });
}

TEST(ThreadComm, SplitPartitionsByColorWithKeyOrder) {
  const int np = 6;
  ThreadGroup::run(np, [&](Comm& c) {
    // Even/odd colors; key reverses the parent order inside each group.
    const int color = c.rank() % 2;
    auto sub = c.split(color, /*key=*/-c.rank());
    EXPECT_EQ(sub->size(), 3);
    // Ranks {4,2,0} / {5,3,1} in key order.
    EXPECT_EQ(sub->rank(), (np - 2 - c.rank() + color) / 2);
    // Group collectives see only the group: sum of parent ranks.
    double v = c.rank();
    sub->allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v, color == 0 ? 0.0 + 2.0 + 4.0 : 1.0 + 3.0 + 5.0);
  });
}

TEST(ThreadComm, SplitGroupsRunCollectivesConcurrently) {
  // Two color groups must be able to sit in *different* collectives at the
  // same time — the property HierComm relies on for concurrent band-group
  // transposes.
  const int np = 4;
  ThreadGroup::run(np, [&](Comm& c) {
    auto sub = c.split(c.rank() / 2, c.rank());
    for (int rep = 0; rep < 10; ++rep) {
      if (c.rank() < 2) {
        double v = 1.0;
        sub->allreduce_sum(&v, 1);
        EXPECT_DOUBLE_EQ(v, 2.0);
      } else {
        std::vector<double> v(32, double(c.rank()));
        sub->bcast(v.data(), v.size(), 0);
        EXPECT_DOUBLE_EQ(v[0], 2.0);
      }
    }
    c.barrier();
  });
}

TEST(SerialComm, SplitIsSerial) {
  par::SerialComm c;
  auto sub = c.split(7, 0);
  EXPECT_EQ(sub->size(), 1);
  EXPECT_EQ(sub->rank(), 0);
}

TEST(HierComm, LayoutMapsRowMajor) {
  const int np = 6, nbg = 3;
  ThreadGroup::run(np, [&](Comm& c) {
    par::HierComm h(c, nbg);
    EXPECT_EQ(h.size(), np);
    EXPECT_EQ(h.rank(), c.rank());
    EXPECT_EQ(h.n_band_groups(), nbg);
    EXPECT_EQ(h.n_grid_ranks(), 2);
    EXPECT_EQ(h.band_group(), c.rank() / 2);
    EXPECT_EQ(h.grid_rank(), c.rank() % 2);
    EXPECT_EQ(h.grid().rank(), h.grid_rank());
    EXPECT_EQ(h.band().rank(), h.band_group());
    // grid() connects exactly my band group's world ranks.
    double v = c.rank();
    h.grid().allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v, 2.0 * (c.rank() / 2) * 2 + 1.0);
    // band() connects the same grid slot across groups.
    double w = c.rank();
    h.band().allreduce_sum(&w, 1);
    EXPECT_DOUBLE_EQ(w, 3.0 * (c.rank() % 2) + 0.0 + 2.0 + 4.0);
  });
}

TEST(HierComm, StagedAllreduceBitwiseMatchesFlat) {
  // The staged (grid allgather -> band allgather -> world-rank-ordered
  // fold) reduction must produce the identical bits as the flat rendezvous
  // allreduce — the contract that keeps densities and overlap matrices
  // bit-identical across 1D and 2D layouts.
  const int np = 4;
  const std::size_t n = 257;  // odd length exercises the fold tail
  for (int nbg : {1, 2, 4}) {
    ThreadGroup::run(np, [&](Comm& c) {
      Rng rng(100 + c.rank());
      std::vector<double> flat(n), staged(n);
      for (std::size_t i = 0; i < n; ++i) flat[i] = staged[i] = rng.normal();
      par::HierComm h(c, nbg);
      c.allreduce_sum(flat.data(), n);
      h.allreduce_sum(staged.data(), n);
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(flat[i], staged[i]);

      std::vector<Complex> cf(17), cs(17);
      for (std::size_t i = 0; i < cf.size(); ++i) cf[i] = cs[i] = rng.complex_normal();
      c.allreduce_sum(cf.data(), cf.size());
      h.allreduce_sum(cs.data(), cs.size());
      for (std::size_t i = 0; i < cf.size(); ++i) EXPECT_EQ(cf[i], cs[i]);
    });
  }
}

TEST(HierComm, SubstatsFoldIntoWorldRecord) {
  const int np = 4;
  ThreadGroup::run(np, [&](Comm& c) {
    par::HierComm h(c, 2);
    std::vector<double> v(8, 1.0);
    h.allreduce_sum(v.data(), v.size());
    EXPECT_EQ(h.stats().get(CommOp::kAllreduce).calls, 1u);
    h.merge_substats();
    // The two allgather hops now show in the hier record.
    EXPECT_EQ(h.stats().get(CommOp::kAllgatherv).calls, 2u);
  });
}

TEST(HierComm, BandGroupsFromEnvRejectsNonDivisorsLoudly) {
  unsetenv("PWDFT_BAND_GROUPS");
  EXPECT_EQ(par::HierComm::band_groups_from_env(8), 1);
  setenv("PWDFT_BAND_GROUPS", "2", 1);
  EXPECT_EQ(par::HierComm::band_groups_from_env(8), 2);
  // A layout request that cannot be honored must not silently run the flat
  // layout: non-divisors, out-of-range counts, and garbage all throw.
  setenv("PWDFT_BAND_GROUPS", "3", 1);  // does not divide 8
  EXPECT_THROW(par::HierComm::band_groups_from_env(8), Error);
  setenv("PWDFT_BAND_GROUPS", "16", 1);  // more groups than ranks
  EXPECT_THROW(par::HierComm::band_groups_from_env(8), Error);
  setenv("PWDFT_BAND_GROUPS", "0", 1);
  EXPECT_THROW(par::HierComm::band_groups_from_env(8), Error);
  setenv("PWDFT_BAND_GROUPS", "two", 1);
  EXPECT_THROW(par::HierComm::band_groups_from_env(8), Error);
  unsetenv("PWDFT_BAND_GROUPS");
}

TEST(SerialComm, DupIsSerial) {
  par::SerialComm c;
  auto dup = c.dup();
  EXPECT_EQ(dup->size(), 1);
  std::vector<double> v(4, 2.0);
  dup->allreduce_sum(v.data(), v.size());
  EXPECT_DOUBLE_EQ(v[0], 2.0);
}

TEST(CommStats, MergeFoldsCounts) {
  par::CommStats a, b;
  a.add(CommOp::kBcast, 100, 0.5);
  b.add(CommOp::kBcast, 50, 0.25);
  b.add(CommOp::kAlltoallv, 10, 0.1);
  a.merge(b);
  EXPECT_EQ(a.get(CommOp::kBcast).calls, 2u);
  EXPECT_EQ(a.get(CommOp::kBcast).bytes, 150u);
  EXPECT_EQ(a.get(CommOp::kAlltoallv).bytes, 10u);
}

TEST(SerialComm, CollectivesAreLocal) {
  par::SerialComm c;
  EXPECT_EQ(c.size(), 1);
  std::vector<double> v(4, 2.0);
  c.allreduce_sum(v.data(), v.size());
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  c.bcast(v.data(), v.size(), 0);
  EXPECT_DOUBLE_EQ(v[3], 2.0);
  EXPECT_THROW(c.send_bytes(v.data(), 8, 0, 0), Error);
}

TEST(BlockPartition, CountsAndOffsetsAreConsistent) {
  for (std::size_t total : {0ul, 1ul, 7ul, 16ul, 33ul}) {
    for (int parts : {1, 2, 3, 5, 8}) {
      BlockPartition p(total, parts);
      std::size_t acc = 0;
      for (int r = 0; r < parts; ++r) {
        EXPECT_EQ(p.offset(r), acc);
        acc += p.count(r);
      }
      EXPECT_EQ(acc, total);
      // Near-equal: max-min <= 1.
      std::size_t mn = total + 1, mx = 0;
      for (int r = 0; r < parts; ++r) {
        mn = std::min(mn, p.count(r));
        mx = std::max(mx, p.count(r));
      }
      EXPECT_LE(mx - mn, 1u);
    }
  }
}

TEST(BlockPartition, OwnerInvertsOffsets) {
  BlockPartition p(29, 4);
  for (std::size_t i = 0; i < 29; ++i) {
    const int r = p.owner(i);
    EXPECT_GE(i, p.offset(r));
    EXPECT_LT(i, p.offset(r) + p.count(r));
  }
}

class TransposeRanks : public ::testing::TestWithParam<int> {};

TEST_P(TransposeRanks, BandToGAndBackIsIdentity) {
  const int np = GetParam();
  const std::size_t ng = 37, nb = 10;
  CMatrix full(ng, nb);
  Rng rng(13);
  for (std::size_t i = 0; i < full.size(); ++i) full.data()[i] = rng.complex_normal();

  ThreadGroup::run(np, [&](Comm& c) {
    BlockPartition bands(nb, np), gvecs(ng, np);
    par::WavefunctionTranspose tr(gvecs, bands);
    CMatrix band_local = test::band_slice(full, bands, c.rank());

    CMatrix g_local;
    tr.band_to_g(c, band_local, g_local, /*single_precision=*/false);
    // The G layout must hold every band's rows in this rank's row range.
    EXPECT_EQ(g_local.rows(), gvecs.count(c.rank()));
    EXPECT_EQ(g_local.cols(), nb);
    for (std::size_t j = 0; j < nb; ++j)
      for (std::size_t i = 0; i < g_local.rows(); ++i)
        EXPECT_EQ(g_local(i, j), full(gvecs.offset(c.rank()) + i, j));

    CMatrix back;
    tr.g_to_band(c, g_local, back, /*single_precision=*/false);
    EXPECT_NEAR(test::max_abs_diff(back, band_local), 0.0, 0.0);
  });
}

TEST_P(TransposeRanks, SinglePrecisionRoundTripWithinFloatEps) {
  const int np = GetParam();
  const std::size_t ng = 24, nb = 6;
  CMatrix full(ng, nb);
  Rng rng(14);
  for (std::size_t i = 0; i < full.size(); ++i) full.data()[i] = rng.complex_normal();
  ThreadGroup::run(np, [&](Comm& c) {
    BlockPartition bands(nb, np), gvecs(ng, np);
    par::WavefunctionTranspose tr(gvecs, bands);
    CMatrix band_local = test::band_slice(full, bands, c.rank());
    CMatrix g_local, back;
    tr.band_to_g(c, band_local, g_local, true);
    tr.g_to_band(c, g_local, back, true);
    EXPECT_LT(test::max_abs_diff(back, band_local), 1e-6);
  });
}

INSTANTIATE_TEST_SUITE_P(Np, TransposeRanks, ::testing::Values(1, 2, 3, 4));

TEST(Transpose, AlltoallvVolumeMatchesFormula) {
  // Paper §3.3: the residual-related transposes move NG*Ne coefficients
  // split across ranks; each rank receives the complement of its own block.
  const int np = 3;
  const std::size_t ng = 30, nb = 6;
  CMatrix full(ng, nb, Complex{1.0, 0.0});
  auto stats = ThreadGroup::run(np, [&](Comm& c) {
    BlockPartition bands(nb, np), gvecs(ng, np);
    par::WavefunctionTranspose tr(gvecs, bands);
    CMatrix band_local = test::band_slice(full, bands, c.rank());
    CMatrix g_local;
    tr.band_to_g(c, band_local, g_local, false);
  });
  for (int r = 0; r < np; ++r) {
    BlockPartition bands(nb, np), gvecs(ng, np);
    const std::size_t expect =
        (nb - bands.count(r)) * gvecs.count(r) * sizeof(Complex) +
        bands.count(r) * (ng - gvecs.count(r)) * 0;  // receive side counts rows it gets
    // Received bytes = sum over other ranks of (their bands x my rows).
    std::size_t recv = 0;
    for (int s = 0; s < np; ++s)
      if (s != r) recv += bands.count(s) * gvecs.count(r) * sizeof(Complex);
    (void)expect;
    EXPECT_EQ(stats[r].get(CommOp::kAlltoallv).bytes, recv);
  }
}

TEST(CostPartition, IdentityMatchesBlockPartition) {
  BlockPartition b(11, 3);
  par::CostPartition p(b);
  EXPECT_EQ(p.total(), b.total());
  EXPECT_EQ(p.parts(), b.parts());
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(p.count(r), b.count(r));
    EXPECT_EQ(p.offset(r), b.offset(r));
  }
  for (std::size_t j = 0; j < 11; ++j) EXPECT_EQ(p.owner(j), b.owner(j));
  EXPECT_TRUE(p == par::CostPartition(b));
}

TEST(CostPartition, BalanceEvensSkewedCosts) {
  // One expensive item: balance must isolate it and spread the rest.
  std::vector<double> costs{8, 1, 1, 1, 1, 1, 1, 1};
  auto p = par::CostPartition::balance(costs, 4);
  auto load = [&](int part) {
    double s = 0.0;
    for (std::size_t j = p.offset(part); j < p.offset(part) + p.count(part); ++j) s += costs[j];
    return s;
  };
  // Contiguous, ordered, complete, non-empty.
  std::size_t covered = 0;
  double max_load = 0.0;
  for (int part = 0; part < 4; ++part) {
    EXPECT_GT(p.count(part), 0u);
    EXPECT_EQ(p.offset(part), covered);
    covered += p.count(part);
    max_load = std::max(max_load, load(part));
  }
  EXPECT_EQ(covered, costs.size());
  // Uniform split puts {8,1} on part 0 (load 9); balance can't beat the
  // single 8-cost item but must not exceed it.
  EXPECT_DOUBLE_EQ(max_load, 8.0);
}

TEST(CostPartition, BalanceUniformCostsIsUniform) {
  std::vector<double> costs(12, 1.0);
  auto p = par::CostPartition::balance(costs, 4);
  for (int part = 0; part < 4; ++part) EXPECT_EQ(p.count(part), 3u);
}

TEST(CostPartition, BalanceFallsBackOnDegenerateCosts) {
  std::vector<double> zeros(6, 0.0);
  auto p = par::CostPartition::balance(zeros, 3);
  EXPECT_TRUE(p == par::CostPartition(BlockPartition(6, 3)));
}

TEST(CostPartition, OwnerIsConsistentWithOffsets) {
  Rng rng(17);
  std::vector<double> costs(23);
  for (auto& x : costs) x = rng.uniform(0.1, 4.0);
  auto p = par::CostPartition::balance(costs, 5);
  for (std::size_t j = 0; j < costs.size(); ++j) {
    const int owner = p.owner(j);
    EXPECT_GE(j, p.offset(owner));
    EXPECT_LT(j, p.offset(owner) + p.count(owner));
  }
}

TEST(Redistribute, ColumnsRoundTripBitwise) {
  const int np = 3;
  const std::size_t rows = 5, nb = 7;
  CMatrix full(rows, nb);
  Rng rng(23);
  for (std::size_t i = 0; i < full.size(); ++i) full.data()[i] = rng.complex_normal();
  // Skewed target layout: counts {1, 2, 4}.
  std::vector<double> costs{5, 1, 1, 1, 1, 1, 1};
  const par::CostPartition from{BlockPartition(nb, np)};
  const auto to = par::CostPartition::balance(costs, np);
  ThreadGroup::run(np, [&](Comm& c) {
    CMatrix mine(rows, from.count(c.rank()));
    for (std::size_t j = 0; j < mine.cols(); ++j)
      for (std::size_t i = 0; i < rows; ++i)
        mine(i, j) = full(i, from.offset(c.rank()) + j);
    CMatrix shuffled, back;
    par::redistribute_columns(c, from, to, mine, shuffled);
    ASSERT_EQ(shuffled.cols(), to.count(c.rank()));
    for (std::size_t j = 0; j < shuffled.cols(); ++j)
      for (std::size_t i = 0; i < rows; ++i)
        EXPECT_EQ(shuffled(i, j), full(i, to.offset(c.rank()) + j));
    par::redistribute_columns(c, to, from, shuffled, back);
    ASSERT_EQ(back.cols(), mine.cols());
    for (std::size_t i = 0; i < back.size(); ++i) EXPECT_EQ(back.data()[i], mine.data()[i]);
  });
}

TEST(Overlap, EnvDefaultParsesKnob) {
  unsetenv("PWDFT_COMM_OVERLAP");
  EXPECT_TRUE(par::comm_overlap_env_default());
  setenv("PWDFT_COMM_OVERLAP", "0", 1);
  EXPECT_FALSE(par::comm_overlap_env_default());
  setenv("PWDFT_COMM_OVERLAP", "off", 1);
  EXPECT_FALSE(par::comm_overlap_env_default());
  setenv("PWDFT_COMM_OVERLAP", "1", 1);
  EXPECT_TRUE(par::comm_overlap_env_default());
  unsetenv("PWDFT_COMM_OVERLAP");
}

TEST(Overlap, AsyncTransposeMatchesSynchronousBitwise) {
  // The packed-now / parked-exchange / unpack-at-wait path must produce the
  // identical bits as the synchronous transpose, in both directions, while
  // the parent communicator stays busy with unrelated collectives.
  const int np = 4;
  const std::size_t ng = 33, nb = 6;
  CMatrix full(ng, nb);
  Rng rng(41);
  for (std::size_t i = 0; i < full.size(); ++i) full.data()[i] = rng.complex_normal();
  for (bool sp : {false, true}) {
    ThreadGroup::run(np, [&](Comm& c) {
      BlockPartition bands(nb, np), gvecs(ng, np);
      par::WavefunctionTranspose tr(gvecs, bands);
      CMatrix band_local = test::band_slice(full, bands, c.rank());

      CMatrix g_sync;
      tr.band_to_g(c, band_local, g_sync, sp);

      par::TransposeOverlap ovl(true);
      CMatrix g_async;
      ovl.start_band_to_g(tr, c, band_local, g_async, sp);
      // Keep the parent comm busy while the exchange is in flight.
      for (int rep = 0; rep < 5; ++rep) {
        double v = 1.0;
        c.allreduce_sum(&v, 1);
      }
      ovl.wait();
      ASSERT_EQ(g_async.rows(), g_sync.rows());
      ASSERT_EQ(g_async.cols(), g_sync.cols());
      for (std::size_t i = 0; i < g_sync.size(); ++i)
        EXPECT_EQ(g_async.data()[i], g_sync.data()[i]);

      CMatrix band_sync, band_async;
      tr.g_to_band(c, g_sync, band_sync, sp);
      ovl.start_g_to_band(tr, c, g_sync, band_async, sp);
      c.barrier();
      ovl.wait();
      for (std::size_t i = 0; i < band_sync.size(); ++i)
        EXPECT_EQ(band_async.data()[i], band_sync.data()[i]);

      // Disabled instance falls back to the synchronous path.
      par::TransposeOverlap off(false);
      CMatrix g_off;
      off.start_band_to_g(tr, c, band_local, g_off, sp);
      off.wait();
      for (std::size_t i = 0; i < g_sync.size(); ++i)
        EXPECT_EQ(g_off.data()[i], g_sync.data()[i]);
    });
  }
}

TEST(Overlap, TwoStreamsInFlightConcurrently) {
  // PT-CN keeps a psi stream and a half stream airborne at once; each
  // instance owns its communicator and wires, so both exchanges may be
  // pending simultaneously.
  const int np = 3;
  const std::size_t ng = 20, nb = 5;
  CMatrix a_full(ng, nb), b_full(ng, nb);
  Rng rng(47);
  for (std::size_t i = 0; i < a_full.size(); ++i) a_full.data()[i] = rng.complex_normal();
  for (std::size_t i = 0; i < b_full.size(); ++i) b_full.data()[i] = rng.complex_normal();
  ThreadGroup::run(np, [&](Comm& c) {
    BlockPartition bands(nb, np), gvecs(ng, np);
    par::WavefunctionTranspose tr(gvecs, bands);
    CMatrix a_local = test::band_slice(a_full, bands, c.rank());
    CMatrix b_local = test::band_slice(b_full, bands, c.rank());
    CMatrix a_ref, b_ref;
    tr.band_to_g(c, a_local, a_ref, false);
    tr.band_to_g(c, b_local, b_ref, false);

    par::TransposeOverlap s1(true), s2(true);
    CMatrix a_g, b_g;
    s1.start_band_to_g(tr, c, a_local, a_g, false);
    s2.start_band_to_g(tr, c, b_local, b_g, false);
    c.barrier();
    s2.wait();
    s1.wait();
    for (std::size_t i = 0; i < a_ref.size(); ++i) EXPECT_EQ(a_g.data()[i], a_ref.data()[i]);
    for (std::size_t i = 0; i < b_ref.size(); ++i) EXPECT_EQ(b_g.data()[i], b_ref.data()[i]);
    s1.fold_stats(c);
    s2.fold_stats(c);
    // The overlap traffic lands in the parent's record after folding.
    EXPECT_GT(c.stats().get(CommOp::kAlltoallv).bytes, 0u);
  });
}

}  // namespace
}  // namespace pwdft
