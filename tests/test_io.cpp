#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/checkpoint.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

struct TempPath {
  explicit TempPath(const char* name) : path(std::string("/tmp/pwdft_ckpt_") + name) {}
  ~TempPath() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Checkpoint, WavefunctionRoundTripPreservesBits) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 6, 3);
  const auto meta = io::CheckpointMeta::from_setup(setup, 6, 1.25, 17);

  TempPath p("psi.bin");
  io::save_wavefunctions(p.path, meta, psi);
  CMatrix loaded;
  const auto got = io::load_wavefunctions(p.path, loaded, &meta);
  EXPECT_EQ(got.step, 17u);
  EXPECT_DOUBLE_EQ(got.time_au, 1.25);
  ASSERT_EQ(loaded.rows(), psi.rows());
  ASSERT_EQ(loaded.cols(), psi.cols());
  EXPECT_EQ(test::max_abs_diff(loaded, psi), 0.0);
}

TEST(Checkpoint, DensityRoundTrip) {
  auto setup = test::make_si8_setup(3.0, 1);
  Rng rng(5);
  std::vector<double> rho(setup.n_dense());
  for (auto& v : rho) v = rng.uniform(0.0, 1.0);
  const auto meta = io::CheckpointMeta::from_setup(setup, 6, 0.0, 0);

  TempPath p("rho.bin");
  io::save_density(p.path, meta, rho);
  std::vector<double> loaded;
  io::load_density(p.path, loaded, &meta);
  ASSERT_EQ(loaded.size(), rho.size());
  for (std::size_t i = 0; i < rho.size(); ++i) EXPECT_EQ(loaded[i], rho[i]);
}

TEST(Checkpoint, RejectsWrongMagic) {
  TempPath p("bad.bin");
  std::ofstream f(p.path, std::ios::binary);
  f << "NOTACKPTxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
  f.close();
  CMatrix psi;
  EXPECT_THROW(io::load_wavefunctions(p.path, psi), Error);
}

TEST(Checkpoint, RejectsTruncatedPayload) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 7);
  const auto meta = io::CheckpointMeta::from_setup(setup, 4, 0.0, 0);
  TempPath p("trunc.bin");
  io::save_wavefunctions(p.path, meta, psi);
  // Chop the file.
  std::ifstream in(p.path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(p.path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  CMatrix loaded;
  EXPECT_THROW(io::load_wavefunctions(p.path, loaded), Error);
}

TEST(Checkpoint, RejectsIncompatibleRun) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 9);
  const auto meta = io::CheckpointMeta::from_setup(setup, 4, 0.0, 0);
  TempPath p("mismatch.bin");
  io::save_wavefunctions(p.path, meta, psi);

  io::CheckpointMeta other = meta;
  other.n_bands = 8;  // restart with a different band count
  CMatrix loaded;
  EXPECT_THROW(io::load_wavefunctions(p.path, loaded, &other), Error);
  other = meta;
  other.ecut = 5.0;
  EXPECT_THROW(io::load_wavefunctions(p.path, loaded, &other), Error);
}

TEST(Checkpoint, MissingFileThrows) {
  CMatrix psi;
  EXPECT_THROW(io::load_wavefunctions("/tmp/pwdft_does_not_exist.bin", psi), Error);
}

TEST(Checkpoint, MetadataShapeMismatchOnSaveThrows) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 11);
  auto meta = io::CheckpointMeta::from_setup(setup, 6, 0.0, 0);  // wrong band count
  TempPath p("shape.bin");
  EXPECT_THROW(io::save_wavefunctions(p.path, meta, psi), Error);
}

}  // namespace
}  // namespace pwdft
