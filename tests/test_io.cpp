#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/checkpoint.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

struct TempPath {
  explicit TempPath(const char* name) : path(std::string("/tmp/pwdft_ckpt_") + name) {}
  ~TempPath() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Checkpoint, WavefunctionRoundTripPreservesBits) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 6, 3);
  const auto meta = io::CheckpointMeta::from_setup(setup, 6, 1.25, 17);

  TempPath p("psi.bin");
  io::save_wavefunctions(p.path, meta, psi);
  CMatrix loaded;
  const auto got = io::load_wavefunctions(p.path, loaded, &meta);
  EXPECT_EQ(got.step, 17u);
  EXPECT_DOUBLE_EQ(got.time_au, 1.25);
  ASSERT_EQ(loaded.rows(), psi.rows());
  ASSERT_EQ(loaded.cols(), psi.cols());
  EXPECT_EQ(test::max_abs_diff(loaded, psi), 0.0);
}

TEST(Checkpoint, DensityRoundTrip) {
  auto setup = test::make_si8_setup(3.0, 1);
  Rng rng(5);
  std::vector<double> rho(setup.n_dense());
  for (auto& v : rho) v = rng.uniform(0.0, 1.0);
  const auto meta = io::CheckpointMeta::from_setup(setup, 6, 0.0, 0);

  TempPath p("rho.bin");
  io::save_density(p.path, meta, rho);
  std::vector<double> loaded;
  io::load_density(p.path, loaded, &meta);
  ASSERT_EQ(loaded.size(), rho.size());
  for (std::size_t i = 0; i < rho.size(); ++i) EXPECT_EQ(loaded[i], rho[i]);
}

TEST(Checkpoint, RejectsWrongMagic) {
  TempPath p("bad.bin");
  std::ofstream f(p.path, std::ios::binary);
  f << "NOTACKPTxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
  f.close();
  CMatrix psi;
  EXPECT_THROW(io::load_wavefunctions(p.path, psi), Error);
}

TEST(Checkpoint, RejectsTruncatedPayload) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 7);
  const auto meta = io::CheckpointMeta::from_setup(setup, 4, 0.0, 0);
  TempPath p("trunc.bin");
  io::save_wavefunctions(p.path, meta, psi);
  // Chop the file.
  std::ifstream in(p.path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(p.path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  CMatrix loaded;
  EXPECT_THROW(io::load_wavefunctions(p.path, loaded), Error);
}

TEST(Checkpoint, RejectsIncompatibleRun) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 9);
  const auto meta = io::CheckpointMeta::from_setup(setup, 4, 0.0, 0);
  TempPath p("mismatch.bin");
  io::save_wavefunctions(p.path, meta, psi);

  io::CheckpointMeta other = meta;
  other.n_bands = 8;  // restart with a different band count
  CMatrix loaded;
  EXPECT_THROW(io::load_wavefunctions(p.path, loaded, &other), Error);
  other = meta;
  other.ecut = 5.0;
  EXPECT_THROW(io::load_wavefunctions(p.path, loaded, &other), Error);
}

TEST(Checkpoint, MissingFileThrows) {
  CMatrix psi;
  EXPECT_THROW(io::load_wavefunctions("/tmp/pwdft_does_not_exist.bin", psi), Error);
}

TEST(Checkpoint, MetadataShapeMismatchOnSaveThrows) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 11);
  auto meta = io::CheckpointMeta::from_setup(setup, 6, 0.0, 0);  // wrong band count
  TempPath p("shape.bin");
  EXPECT_THROW(io::save_wavefunctions(p.path, meta, psi), Error);
}

// --- Fault suite for the v2 crash-safe format ------------------------------

namespace fault {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

}  // namespace fault

// Simulated crash mid-save: a torn partial write lands at `<path>.tmp`, never
// at the final path, so the previous good snapshot stays loadable bit-for-bit.
TEST(CheckpointFault, InterruptedSaveKeepsOldSnapshotLoadable) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi_old = test::random_orthonormal(setup, 4, 21);
  const auto meta = io::CheckpointMeta::from_setup(setup, 4, 2.5, 50);
  TempPath p("crash.bin");
  io::save_wavefunctions(p.path, meta, psi_old);

  // Crash simulation: a newer save died after writing half its bytes to the
  // temp file (the only file an interrupted Writer ever touches).
  const std::string good = fault::slurp(p.path);
  fault::spit(p.path + ".tmp", good.substr(0, good.size() / 2));

  CMatrix loaded;
  const auto got = io::load_wavefunctions(p.path, loaded, &meta);
  EXPECT_EQ(got.step, 50u);
  EXPECT_EQ(test::max_abs_diff(loaded, psi_old), 0.0);
  std::remove((p.path + ".tmp").c_str());
}

TEST(CheckpointFault, SaveLeavesNoTempFileBehind) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 23);
  const auto meta = io::CheckpointMeta::from_setup(setup, 4, 0.0, 0);
  TempPath p("notmp.bin");
  io::save_wavefunctions(p.path, meta, psi);
  std::ifstream tmp(p.path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
}

// Every single-bit flip anywhere in the file — magic, header, payload, or
// checksum — must be rejected; sampled stride keeps the test fast.
TEST(CheckpointFault, RejectsBitFlipsAnywhere) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 3, 31);
  const auto meta = io::CheckpointMeta::from_setup(setup, 3, 0.0, 4);
  TempPath p("flip.bin");
  io::save_wavefunctions(p.path, meta, psi);
  const std::string good = fault::slurp(p.path);

  for (std::size_t byte = 0; byte < good.size(); byte += 97) {
    std::string bad = good;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x10);
    fault::spit(p.path, bad);
    CMatrix loaded;
    EXPECT_THROW(io::load_wavefunctions(p.path, loaded), Error) << "flip at byte " << byte;
  }
}

TEST(CheckpointFault, RejectsTrailingGarbage) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 3, 33);
  const auto meta = io::CheckpointMeta::from_setup(setup, 3, 0.0, 0);
  TempPath p("trail.bin");
  io::save_wavefunctions(p.path, meta, psi);
  fault::spit(p.path, fault::slurp(p.path) + "junk");
  CMatrix loaded;
  EXPECT_THROW(io::load_wavefunctions(p.path, loaded), Error);
}

TEST(CheckpointFault, RejectsTruncationAtEveryRegion) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 3, 35);
  const auto meta = io::CheckpointMeta::from_setup(setup, 3, 0.0, 0);
  TempPath p("trunc2.bin");
  io::save_wavefunctions(p.path, meta, psi);
  const std::string good = fault::slurp(p.path);
  // Mid-magic, mid-header, mid-payload, mid-checksum.
  for (const std::size_t keep : {4ul, 30ul, good.size() / 2, good.size() - 3}) {
    fault::spit(p.path, good.substr(0, keep));
    CMatrix loaded;
    EXPECT_THROW(io::load_wavefunctions(p.path, loaded), Error) << "kept " << keep << " bytes";
  }
}

TEST(CheckpointFault, RejectsUnknownFormatVersion) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 3, 37);
  const auto meta = io::CheckpointMeta::from_setup(setup, 3, 0.0, 0);
  TempPath p("ver.bin");
  io::save_wavefunctions(p.path, meta, psi);
  std::string bad = fault::slurp(p.path);
  bad[7] = '9';  // version byte of the magic
  fault::spit(p.path, bad);
  CMatrix loaded;
  try {
    io::load_wavefunctions(p.path, loaded);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported format version"), std::string::npos);
  }
}

TEST(CheckpointFault, RejectsWrongFamilyMagic) {
  auto setup = test::make_si8_setup(3.0, 1);
  Rng rng(3);
  std::vector<double> rho(setup.n_dense());
  for (auto& v : rho) v = rng.uniform(0.0, 1.0);
  const auto meta = io::CheckpointMeta::from_setup(setup, 3, 0.0, 0);
  TempPath p("family.bin");
  io::save_density(p.path, meta, rho);
  // A density file is not a wavefunction file even though both parse as v2.
  CMatrix psi;
  EXPECT_THROW(io::load_wavefunctions(p.path, psi), Error);
}

// Legacy v1 snapshot (raw-struct header, no checksum) still loads.
TEST(CheckpointFault, ReadsLegacyV1Wavefunctions) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 41);
  const auto meta = io::CheckpointMeta::from_setup(setup, 4, 3.75, 9);
  static_assert(sizeof(io::CheckpointMeta) == 48);

  TempPath p("v1.bin");
  {
    std::ofstream f(p.path, std::ios::binary);
    f.write("PWDFTPS1", 8);
    f.write(reinterpret_cast<const char*>(&meta), sizeof(meta));
    f.write(reinterpret_cast<const char*>(psi.data()),
            static_cast<std::streamsize>(psi.size() * sizeof(Complex)));
  }
  CMatrix loaded;
  const auto got = io::load_wavefunctions(p.path, loaded, &meta);
  EXPECT_EQ(got.step, 9u);
  EXPECT_DOUBLE_EQ(got.time_au, 3.75);
  EXPECT_EQ(test::max_abs_diff(loaded, psi), 0.0);
}

TEST(CheckpointFault, BlobRoundTripAndFaults) {
  auto setup = test::make_si8_setup(3.0, 1);
  const auto meta = io::CheckpointMeta::from_setup(setup, 4, 1.0, 2);
  std::vector<double> data = {1.0, -2.5, 3.25, 0.0, 1e-300, 7.75};
  TempPath p("blob.bin");
  io::save_blob(p.path, meta, data);

  std::vector<double> loaded;
  const auto got = io::load_blob(p.path, loaded);
  EXPECT_EQ(got.step, 2u);
  ASSERT_EQ(loaded.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(loaded[i], data[i]);

  std::string bad = fault::slurp(p.path);
  bad[bad.size() - 20] = static_cast<char>(bad[bad.size() - 20] ^ 0x01);
  fault::spit(p.path, bad);
  EXPECT_THROW(io::load_blob(p.path, loaded), Error);
}

}  // namespace
}  // namespace pwdft
