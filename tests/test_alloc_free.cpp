// Verifies the workspace-arena contract: after a warm-up call, the hot paths
// (FockOperator::apply_add band loop, compute_density, hartree_potential,
// Hamiltonian::apply, AndersonMixer::mix and the per-band PT-CN mixing loop)
// perform no per-call heap allocations beyond their documented return
// values. Allocation counting works by overriding the global operator new
// for this test binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "common/exec.hpp"
#include "common/random.hpp"
#include "ham/density.hpp"
#include "ham/fock.hpp"
#include "ham/hamiltonian.hpp"
#include "ham/hartree.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "parallel/comm.hpp"
#include "scf/anderson.hpp"
#include "td/band_ops.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t sz) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pwdft {
namespace {

class AllocFreeHotPaths : public ::testing::Test {
 protected:
  AllocFreeHotPaths()
      : setup_(crystal::Crystal::silicon_supercell(1, 1, 1), 4.0, 1),
        species_(pseudo::PseudoSpecies::silicon(false)) {}

  static void SetUpTestSuite() { exec::set_num_threads(1); }

  /// Allocations performed by fn().
  template <class Fn>
  static std::size_t allocations(Fn&& fn) {
    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    fn();
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  }

  CMatrix orthonormal_block(std::size_t nb, std::uint64_t seed) {
    Rng rng(seed);
    CMatrix phi(setup_.n_g(), nb);
    for (std::size_t i = 0; i < phi.size(); ++i) phi.data()[i] = rng.complex_normal();
    CMatrix s = linalg::overlap(phi, phi);
    linalg::potrf_lower(s);
    linalg::trsm_right_lower_conj(phi, s);
    return phi;
  }

  ham::PlanewaveSetup setup_;
  pseudo::PseudoSpecies species_;
};

TEST_F(AllocFreeHotPaths, FockApplyAddAllocatesNothingAfterWarmup) {
  const std::size_t nb = 4;
  par::SerialComm comm;
  ham::FockOperator fock(setup_, xc::HybridParams{true, 0.25, 0.11});
  CMatrix phi = orthonormal_block(nb, 11);
  std::vector<double> occ(nb, 2.0);
  fock.set_orbitals(phi, occ, par::BlockPartition(nb, 1), comm);
  CMatrix y(setup_.n_g(), nb, Complex{0.0, 0.0});

  fock.apply_add(phi, y, comm);  // warm up every arena slot
  fock.apply_add(phi, y, comm);
  const std::size_t n_alloc = allocations([&] { fock.apply_add(phi, y, comm); });
  EXPECT_EQ(n_alloc, 0u) << "FockOperator::apply_add must draw all band-loop "
                            "buffers from the workspace arena";
}

TEST_F(AllocFreeHotPaths, ComputeDensityAllocatesOnlyTheResult) {
  const std::size_t nb = 4;
  par::SerialComm comm;
  CMatrix psi = orthonormal_block(nb, 13);
  std::vector<double> occ(nb, 2.0);
  fft::Fft3D fft_dense(setup_.dense_grid.dims());

  (void)ham::compute_density(setup_, fft_dense, psi, occ, comm);  // warm up
  const std::size_t n_alloc = allocations(
      [&] { (void)ham::compute_density(setup_, fft_dense, psi, occ, comm); });
  // The returned rho vector is the only permitted allocation.
  EXPECT_LE(n_alloc, 1u);
}

TEST_F(AllocFreeHotPaths, HartreePotentialAllocatesOnlyTheResult) {
  par::SerialComm comm;
  CMatrix psi = orthonormal_block(2, 17);
  std::vector<double> occ(2, 2.0);
  fft::Fft3D fft_dense(setup_.dense_grid.dims());
  auto rho = ham::compute_density(setup_, fft_dense, psi, occ, comm);

  (void)ham::hartree_potential(setup_, fft_dense, rho);  // warm up
  const std::size_t n_alloc =
      allocations([&] { (void)ham::hartree_potential(setup_, fft_dense, rho); });
  EXPECT_LE(n_alloc, 1u);
}

TEST_F(AllocFreeHotPaths, AndersonMixAllocatesNothingAfterWarmup) {
  // The mixer's Gram system and update loop run directly on the ring-buffer
  // history columns with arena scratch — the last allocating step of a PT-CN
  // SCF iteration (ROADMAP follow-up).
  const std::size_t n = 256, depth = 4;
  scf::AndersonMixer mixer(n, depth, 0.4);
  Rng rng(23);
  std::vector<Complex> x(n), f(n);
  for (auto& v : x) v = rng.complex_normal();
  for (auto& v : f) v = rng.complex_normal();
  // Warm until the history ring and the arena Gram system reach full depth.
  for (std::size_t it = 0; it < depth + 2; ++it) {
    mixer.mix(x, f, x);
    for (auto& v : f) v *= 0.9;  // keep difference columns nonzero
  }
  const std::size_t n_alloc = allocations([&] { mixer.mix(x, f, x); });
  EXPECT_EQ(n_alloc, 0u) << "AndersonMixer::mix must draw its Gram system "
                            "from the workspace arena";
}

TEST_F(AllocFreeHotPaths, PerBandAndersonMixingLoopIsAllocationFree) {
  const std::size_t ng = setup_.n_g(), nb = 4;
  std::vector<std::unique_ptr<scf::AndersonMixer>> mixers;
  for (std::size_t j = 0; j < nb; ++j)
    mixers.push_back(std::make_unique<scf::AndersonMixer>(ng, 8, 0.2));
  Rng rng(29);
  CMatrix r(ng, nb), x(ng, nb);
  for (std::size_t i = 0; i < r.size(); ++i) r.data()[i] = rng.complex_normal();
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.complex_normal();
  for (int it = 0; it < 10; ++it) {
    td::detail::anderson_mix_bands(mixers, r, x);
    for (std::size_t i = 0; i < r.size(); ++i) r.data()[i] *= 0.9;
  }
  const std::size_t n_alloc =
      allocations([&] { td::detail::anderson_mix_bands(mixers, r, x); });
  EXPECT_EQ(n_alloc, 0u);
}

TEST_F(AllocFreeHotPaths, HamiltonianLocalApplyIsArenaBacked) {
  par::SerialComm comm;
  ham::HamiltonianOptions opt;
  opt.hybrid.enabled = false;
  opt.use_nonlocal = false;
  ham::Hamiltonian h(setup_, species_, opt);
  CMatrix psi = orthonormal_block(4, 19);
  std::vector<double> occ(4, 2.0);
  auto rho = ham::compute_density(setup_, h.fft_dense(), psi, occ, comm);
  h.update_density(rho);

  CMatrix y;
  h.apply(psi, y, comm);  // warm up (y sized here)
  h.apply(psi, y, comm);
  const std::size_t n_alloc = allocations([&] { h.apply(psi, y, comm); });
  EXPECT_EQ(n_alloc, 0u);
}

}  // namespace
}  // namespace pwdft
